#include "power/model.hh"

namespace hmtx::power
{

namespace
{

// --- 22 nm technology constants ------------------------------------------
// Calibrated against the paper's McPAT/CACTI outputs (Table 3); see
// EXPERIMENTS.md for the anchor-point comparison.

/** Effective SRAM area per bit including array overhead, mm^2. A 22 nm
 *  6T cell is ~0.092 um^2; x1.35 covers decoders/sense-amps/wiring. */
constexpr double kSramMm2PerBit = 0.092e-6 * 1.35;

/** Area of one Alpha-21264-class out-of-order core at 22 nm. */
constexpr double kCoreAreaMm2 = 12.0;

/** Fixed uncore area (bus, memory controller, clocking, I/O). */
constexpr double kUncoreAreaMm2 = 21.0;

/** Fixed logic area of the HMTX extensions beyond the VID bits:
 *  cascaded comparators per way (§4.5), SLA buffers (§5.1), and the
 *  commit/abort control. */
constexpr double kHmtxLogicAreaMm2 = 3.1;

/** Extra metadata bits per line with HMTX: two 6-bit VIDs (§6.4). */
constexpr unsigned kHmtxBitsPerLine = 12;

/** Tag + state metadata bits per line in the base machine. */
constexpr unsigned kBaseMetaBitsPerLine = 44;

// Leakage densities per component class, W/mm^2. Cores leak harder
// than SRAM with power gating and low-standby-power cells applied
// (§6.4 "power gating and low L2 cache standby power are utilized").
constexpr double kCoreLeakWPerMm2 = 0.066;
constexpr double kSramLeakWPerMm2 = 0.056;
constexpr double kUncoreLeakWPerMm2 = 0.012;
constexpr double kHmtxLogicLeakWPerMm2 = 0.022;

// Dynamic energy per event, joules.
constexpr double kEnergyPerInstr = 2.6e-9;  // whole-core switching
constexpr double kCoreIdleW = 0.85;         // clocked but stalled
constexpr double kEnergyL1Access = 0.05e-9;
constexpr double kEnergyL2Access = 0.55e-9;
constexpr double kEnergyMemAccess = 6.0e-9;
constexpr double kEnergyBusTxn = 0.35e-9;
constexpr double kEnergyVidCompareFast = 2.0e-12;
constexpr double kEnergyVidCompareCascade = 6.5e-12;
constexpr double kEnergySla = 0.2e-9;

} // namespace

PowerModel::PowerModel(const sim::MachineConfig& cfg,
                       bool hmtxExtensions)
    : cfg_(cfg), hmtx_(hmtxExtensions)
{
    const double lineBits = 8.0 * kLineBytes + kBaseMetaBitsPerLine;
    const double l1Lines =
        static_cast<double>(cfg.l1SizeKB) * 1024 / kLineBytes;
    const double l2Lines =
        static_cast<double>(cfg.l2SizeKB) * 1024 / kLineBytes;
    const double totalLines = l1Lines * cfg.numCores + l2Lines;

    area_.coresMm2 = kCoreAreaMm2 * cfg.numCores;
    area_.l1Mm2 =
        l1Lines * cfg.numCores * lineBits * kSramMm2PerBit;
    area_.l2Mm2 = l2Lines * lineBits * kSramMm2PerBit;
    area_.uncoreMm2 = kUncoreAreaMm2;
    if (hmtx_) {
        area_.hmtxExtraMm2 =
            totalLines * kHmtxBitsPerLine * kSramMm2PerBit +
            kHmtxLogicAreaMm2;
    }

    leakage_ = area_.coresMm2 * kCoreLeakWPerMm2 +
        (area_.l1Mm2 + area_.l2Mm2) * kSramLeakWPerMm2 +
        area_.uncoreMm2 * kUncoreLeakWPerMm2;
    if (hmtx_) {
        leakage_ +=
            (area_.hmtxExtraMm2 - kHmtxLogicAreaMm2) *
                kSramLeakWPerMm2 +
            kHmtxLogicAreaMm2 * kHmtxLogicLeakWPerMm2;
    }
}

PowerResult
PowerModel::evaluate(const sim::SysStats& stats,
                     std::uint64_t instructions,
                     std::uint64_t comparisons,
                     std::uint64_t cascaded, Tick cycles) const
{
    PowerResult r;
    r.areaMm2 = area_.totalMm2();
    r.leakageW = leakage_;
    r.timeSec = static_cast<double>(cycles) / kClockHz;
    if (r.timeSec <= 0)
        return r;

    double dynJ = 0;
    dynJ += static_cast<double>(instructions) * kEnergyPerInstr;
    dynJ += static_cast<double>(stats.l1Hits + stats.l1Misses) *
        kEnergyL1Access;
    dynJ += static_cast<double>(stats.snoopHits) * kEnergyL2Access;
    dynJ += static_cast<double>(stats.memFetches +
                                stats.writebacks) *
        kEnergyMemAccess;
    dynJ += static_cast<double>(stats.busTxns) * kEnergyBusTxn;
    if (hmtx_) {
        dynJ += static_cast<double>(comparisons - cascaded) *
            kEnergyVidCompareFast;
        dynJ += static_cast<double>(cascaded) *
            kEnergyVidCompareCascade;
        dynJ += static_cast<double>(stats.slaNeeded) * kEnergySla;
    }
    // Idle clocking of cores that are not retiring instructions.
    const double busyCoreSeconds =
        static_cast<double>(instructions) / kClockHz;
    const double totalCoreSeconds = r.timeSec * cfg_.numCores;
    const double idleSeconds =
        totalCoreSeconds > busyCoreSeconds
            ? totalCoreSeconds - busyCoreSeconds
            : 0.0;
    dynJ += idleSeconds * kCoreIdleW;

    r.dynamicW = dynJ / r.timeSec;
    r.energyJ = (r.dynamicW + r.leakageW) * r.timeSec;
    return r;
}

} // namespace hmtx::power
