/**
 * @file
 * Analytical area/power/energy model in the spirit of McPAT/CACTI
 * (§6.4, Table 3), at the 22 nm node.
 */

#ifndef HMTX_POWER_MODEL_HH
#define HMTX_POWER_MODEL_HH

#include <cstdint>

#include "core/types.hh"
#include "sim/config.hh"
#include "sim/stats.hh"

namespace hmtx::power
{

/** Area breakdown of the modeled chip, in mm^2. */
struct AreaBreakdown
{
    double coresMm2 = 0;
    double l1Mm2 = 0;
    double l2Mm2 = 0;
    double uncoreMm2 = 0;
    /** Extra 12 bits/line plus cascaded comparators and SLA buffers
     *  (§4.5, §5.1, §6.4). Zero without the HMTX extensions. */
    double hmtxExtraMm2 = 0;

    double
    totalMm2() const
    {
        return coresMm2 + l1Mm2 + l2Mm2 + uncoreMm2 + hmtxExtraMm2;
    }
};

/** Power/energy evaluation of one simulated run. */
struct PowerResult
{
    double areaMm2 = 0;
    double leakageW = 0;
    double dynamicW = 0;
    double energyJ = 0;
    double timeSec = 0;
};

/**
 * First-order model: SRAM area scales with bit count, leakage with
 * area per component class, and dynamic power integrates per-event
 * energies (instructions, cache levels, bus, memory, VID comparators,
 * SLA traffic) over the run's activity counts. The free constants are
 * calibrated against the paper's McPAT anchor points — 107.1 mm^2 /
 * 5.515 W leakage for the commodity 4-core machine and 111.1 mm^2 /
 * 5.607 W with the HMTX extensions (Table 3) — so the *relative*
 * costs of the extensions match the paper.
 */
class PowerModel
{
  public:
    /**
     * @param cfg            machine geometry (Table 2)
     * @param hmtxExtensions model the HMTX hardware additions
     */
    PowerModel(const sim::MachineConfig& cfg, bool hmtxExtensions);

    /** Chip area breakdown. */
    AreaBreakdown area() const { return area_; }

    /** Total leakage in watts. */
    double leakageW() const { return leakage_; }

    /**
     * Evaluates a finished run.
     *
     * @param stats        memory-system activity counters
     * @param instructions dynamic instructions across all cores
     * @param comparisons  VID comparator activations (fast path)
     * @param cascaded     VID comparator cascades (§4.5)
     * @param cycles       run length in cycles
     */
    PowerResult evaluate(const sim::SysStats& stats,
                         std::uint64_t instructions,
                         std::uint64_t comparisons,
                         std::uint64_t cascaded, Tick cycles) const;

    /** Clock frequency in Hz (Table 2: 2.0 GHz). */
    static constexpr double kClockHz = 2.0e9;

  private:
    sim::MachineConfig cfg_;
    bool hmtx_;
    AreaBreakdown area_;
    double leakage_ = 0;
};

} // namespace hmtx::power

#endif // HMTX_POWER_MODEL_HH
