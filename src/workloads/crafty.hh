/**
 * @file
 * 186.crafty proxy: game-tree search with highly unpredictable
 * branches.
 */

#ifndef HMTX_WORKLOADS_CRAFTY_HH
#define HMTX_WORKLOADS_CRAFTY_HH

#include "workloads/worklist.hh"

namespace hmtx::workloads
{

/**
 * crafty is a chess engine dominated by alpha-beta search. Each proxy
 * iteration searches one root position: a fixed-depth, fixed-width
 * alpha-beta over shared read-only move and evaluation tables, with
 * pruning decisions that depend on hashed position values — the
 * source of the highest branch-misprediction rate in Table 1
 * (5.59%). Principal variations are written to a per-iteration
 * region.
 */
class CraftyWorkload : public ChasedListWorkload
{
  public:
    struct Params
    {
        std::uint64_t positions = 60;
        unsigned depth = 4;
        unsigned width = 5;
        std::uint64_t seed = 186;
    };

    /** Constructs with default parameters. */
    CraftyWorkload();
    explicit CraftyWorkload(Params p) : p_(p) {}

    std::string name() const override { return "186.crafty"; }
    std::uint64_t iterations() const override { return p_.positions; }
    double hotLoopFraction() const override { return 0.995; }
    unsigned minRwSetPerIter() const override { return 1; }

    void setup(runtime::Machine& m) override;
    sim::Task<void> stage2(runtime::MemIf& mem,
                           std::uint64_t iter) override;
    std::uint64_t checksum(runtime::Machine& m) override;

  private:
    Params p_;
    static constexpr unsigned kMoveTable = 64;
    static constexpr unsigned kEvalTable = 1024;
    Addr moves_ = 0; // read-only
    Addr evals_ = 0; // read-only
    IterRegion pv_;  // per-iteration principal variation + score
};

} // namespace hmtx::workloads

#endif // HMTX_WORKLOADS_CRAFTY_HH
