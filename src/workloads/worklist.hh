/**
 * @file
 * Base class for benchmark workloads whose stage 1 chases a linked
 * work list (the canonical DSWP sequential stage, Figure 3).
 */

#ifndef HMTX_WORKLOADS_WORKLIST_HH
#define HMTX_WORKLOADS_WORKLIST_HH

#include <vector>

#include "runtime/workload.hh"
#include "workloads/common.hh"

namespace hmtx::workloads
{

/**
 * Stage 1 walks a linked list of work descriptors (one per hot-loop
 * iteration) and publishes each iteration's payload to stage 2 through
 * the versioned IterSlots buffer. Subclasses implement the stage-2
 * work on the payload. The list nodes are scattered in memory so the
 * traversal is a pointer chase — the loop-carried dependence that
 * makes these loops DSWP-shaped rather than DOALL.
 */
class ChasedListWorkload : public runtime::LoopWorkload
{
  public:
    sim::Task<void> stage1(runtime::MemIf& mem,
                           std::uint64_t iter) override;

  protected:
    /**
     * Builds the work list with one node carrying payloads[i] for
     * iteration i. Call from setup().
     */
    void initWorkList(runtime::Machine& m,
                      const std::vector<std::uint64_t>& payloads);

    /** Stage 2 entry: the payload stage 1 published for @p iter. */
    sim::Task<std::uint64_t> fetchWork(runtime::MemIf& mem,
                                       std::uint64_t iter);

  private:
    IterSlots slots_;
    std::vector<Addr> order_; // host mirror for abort recovery
    std::vector<std::uint64_t> payloads_;
};

} // namespace hmtx::workloads

#endif // HMTX_WORKLOADS_WORKLIST_HH
