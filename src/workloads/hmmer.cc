#include "workloads/hmmer.hh"

namespace hmtx::workloads
{

HmmerWorkload::HmmerWorkload() : p_() {}

void
HmmerWorkload::setup(runtime::Machine& m)
{
    auto& mem = m.sys().memory();
    const unsigned S = p_.states;

    emit_ = m.heap().allocWords(std::size_t{S} * kAlphabet);
    trans_ = m.heap().allocWords(std::size_t{S} * 3);
    for (unsigned s = 0; s < S; ++s) {
        for (unsigned a = 0; a < kAlphabet; ++a)
            mem.write(emit_ + (s * kAlphabet + a) * 8,
                      mix64(p_.seed ^ (s * 31 + a)) & 0x3ff, 8);
        // Match transitions dominate insert transitions, so the
        // recurrence's max almost always selects the match path
        // (hmmer's 1.03% misprediction rate in Table 1).
        mem.write(trans_ + s * 24, 512 + (mix64(p_.seed ^ s) & 63),
                  8);
        mem.write(trans_ + s * 24 + 8, mix64(p_.seed ^ ~s) & 63, 8);
        mem.write(trans_ + s * 24 + 16, 0, 8);
    }

    seqs_ = m.heap().allocWords(p_.sequences * p_.seqLen);
    for (std::uint64_t q = 0; q < p_.sequences; ++q)
        for (unsigned i = 0; i < p_.seqLen; ++i)
            mem.write(seqs_ + (q * p_.seqLen + i) * 8,
                      mix64(p_.seed ^ (q << 10) ^ i) % kAlphabet, 8);

    rows_.init(m, p_.sequences, 2 * S);
    scores_.init(m, p_.sequences, 1);

    std::vector<std::uint64_t> payloads(p_.sequences);
    for (std::uint64_t q = 0; q < p_.sequences; ++q)
        payloads[q] = q;
    initWorkList(m, payloads);
}

sim::Task<void>
HmmerWorkload::stage2(runtime::MemIf& mem, std::uint64_t iter)
{
    std::uint64_t q = co_await fetchWork(mem, iter);
    const unsigned S = p_.states;
    const Addr seq = seqs_ + q * p_.seqLen * 8;
    const Addr rowBase = rows_.at(q);

    // Initialize row 0.
    for (unsigned s = 0; s < S; ++s)
        co_await mem.store(rowBase + s * 8, s == 0 ? 1000 : 0);

    for (unsigned i = 1; i <= p_.seqLen; ++i) {
        std::uint64_t sym = co_await mem.load(seq + (i - 1) * 8);
        const Addr prev = rowBase + ((i - 1) % 2) * S * 8;
        const Addr cur = rowBase + (i % 2) * S * 8;
        for (unsigned s = 0; s < S; ++s) {
            // Match / insert / delete predecessors.
            std::uint64_t vm = co_await mem.load(
                prev + (s == 0 ? S - 1 : s - 1) * 8);
            std::uint64_t vi = co_await mem.load(prev + s * 8);
            std::uint64_t tM = co_await mem.load(trans_ + s * 24);
            std::uint64_t tI =
                co_await mem.load(trans_ + s * 24 + 8);
            std::uint64_t e = co_await mem.load(
                emit_ + (s * kAlphabet + sym) * 8);
            std::uint64_t best;
            bool fromMatch = vm + tM >= vi + tI;
            co_await mem.branch(0x900, fromMatch);
            best = fromMatch ? vm + tM : vi + tI;
            co_await mem.store(cur + s * 8, (best + e) / 2);
            co_await mem.compute(1);
        }
    }

    // Final score: max over the last row.
    const Addr last = rowBase + (p_.seqLen % 2) * S * 8;
    std::uint64_t score = 0;
    for (unsigned s = 0; s < S; ++s) {
        std::uint64_t v = co_await mem.load(last + s * 8);
        if (v > score)
            score = v;
    }
    co_await mem.store(scores_.at(q), score);
}

std::uint64_t
HmmerWorkload::checksum(runtime::Machine& m)
{
    std::uint64_t sum = 0;
    for (std::uint64_t q = 0; q < p_.sequences; ++q)
        sum = mix64(sum ^ m.sys().memory().read(scores_.at(q), 8));
    return sum;
}

} // namespace hmtx::workloads
