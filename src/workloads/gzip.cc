#include "workloads/gzip.hh"

namespace hmtx::workloads
{

GzipWorkload::GzipWorkload() : p_() {}

void
GzipWorkload::setup(runtime::Machine& m)
{
    auto& mem = m.sys().memory();
    const std::uint64_t totalWords = p_.blocks * p_.wordsPerBlock;

    input_ = m.heap().allocWords(totalWords);
    // Compressible input: long runs mixed with noise.
    std::uint64_t w = 0;
    for (std::uint64_t i = 0; i < totalWords; ++i) {
        if (i % 16 == 0)
            w = mix64(p_.seed ^ (i / 16)) & 0xffff;
        mem.write(input_ + i * 8, w, 8);
    }

    tables_.init(m, p_.blocks, p_.tableEntries);
    output_.init(m, p_.blocks, p_.wordsPerBlock + 1);
    outLen_ = m.heap().allocLines(p_.blocks);

    std::vector<std::uint64_t> payloads(p_.blocks);
    for (std::uint64_t b = 0; b < p_.blocks; ++b)
        payloads[b] = b;
    initWorkList(m, payloads);
}

sim::Task<void>
GzipWorkload::stage2(runtime::MemIf& mem, std::uint64_t iter)
{
    std::uint64_t block = co_await fetchWork(mem, iter);
    const Addr in = input_ + block * p_.wordsPerBlock * 8;
    const Addr table = tables_.at(block);
    const Addr out = output_.at(block);

    std::uint64_t emitted = 0;
    std::uint64_t prev = 0;
    for (std::uint64_t pos = 0; pos < p_.wordsPerBlock; ++pos) {
        std::uint64_t cur = co_await mem.load(in + pos * 8);
        std::uint64_t hash =
            mix64(cur ^ (prev << 1)) % p_.tableEntries;
        // Probe: the entry packs (tag | position | value digest); a
        // wrong tag means "empty" (tables are reused across runs).
        std::uint64_t entry = co_await mem.load(table + hash * 8);
        bool match = (entry >> 48) == (block & 0xffff) &&
            (entry & 0xffffffffull) == (cur & 0xffffffffull);
        co_await mem.branch(0x500, match);
        if (match) {
            // Emit a back-reference token.
            std::uint64_t dist = pos - ((entry >> 32) & 0xffff);
            co_await mem.store(out + emitted * 8,
                               0x8000000000000000ull | dist);
        } else {
            // Install and emit a literal.
            std::uint64_t ne = (std::uint64_t{block & 0xffff} << 48) |
                ((pos & 0xffff) << 32) | (cur & 0xffffffffull);
            co_await mem.store(table + hash * 8, ne);
            co_await mem.store(out + emitted * 8, cur);
        }
        ++emitted;
        prev = cur;
        co_await mem.compute(2);
    }
    co_await mem.store(outLen_ + block * kLineBytes, emitted);
}

std::uint64_t
GzipWorkload::checksum(runtime::Machine& m)
{
    std::uint64_t sum = 0;
    auto& mem = m.sys().memory();
    for (std::uint64_t b = 0; b < p_.blocks; ++b) {
        const Addr out = output_.at(b);
        std::uint64_t n =
            mem.read(outLen_ + b * kLineBytes, 8);
        sum = mix64(sum ^ n);
        for (std::uint64_t i = 0; i < std::min(n, p_.wordsPerBlock);
             ++i)
            sum = mix64(sum ^ mem.read(out + i * 8, 8));
    }
    return sum;
}

} // namespace hmtx::workloads
