#include "workloads/parser.hh"

#include "sim/rng.hh"

namespace hmtx::workloads
{

ParserWorkload::ParserWorkload() : p_() {}

void
ParserWorkload::setup(runtime::Machine& m)
{
    auto& mem = m.sys().memory();
    sim::Rng rng(p_.seed);

    // Dictionary: vocabulary words distributed over hash buckets,
    // chained through a shuffled node pool.
    std::vector<Addr> nodes(p_.vocabulary);
    for (auto& n : nodes)
        n = m.heap().alloc(24, 8);
    for (std::size_t i = p_.vocabulary; i > 1; --i)
        std::swap(nodes[i - 1], nodes[rng.range(i)]);

    buckets_ = m.heap().allocWords(p_.buckets);
    std::vector<Addr> bucketHead(p_.buckets, 0);
    for (unsigned wid = 0; wid < p_.vocabulary; ++wid) {
        unsigned b = mix64(p_.seed ^ wid) % p_.buckets;
        Addr n = nodes[wid];
        mem.write(n + 0, bucketHead[b], 8);
        mem.write(n + 8, wid, 8);
        mem.write(n + 16, mix64(wid * 0x9e37) & 0xffff, 8);
        bucketHead[b] = n;
    }
    for (unsigned b = 0; b < p_.buckets; ++b)
        mem.write(buckets_ + b * 8, bucketHead[b], 8);

    // Sentences: arrays of word ids.
    sentences_ = m.heap().allocWords(p_.sentences *
                                     p_.wordsPerSentence);
    for (std::uint64_t s = 0; s < p_.sentences; ++s)
        for (std::uint64_t w = 0; w < p_.wordsPerSentence; ++w)
            mem.write(sentences_ +
                          (s * p_.wordsPerSentence + w) * 8,
                      mix64(p_.seed ^ (s << 16) ^ w) % p_.vocabulary,
                      8);

    parses_.init(m, p_.sentences, p_.wordsPerSentence + 1);

    std::vector<std::uint64_t> payloads(p_.sentences);
    for (std::uint64_t s = 0; s < p_.sentences; ++s)
        payloads[s] = s;
    initWorkList(m, payloads);
}

sim::Task<void>
ParserWorkload::stage2(runtime::MemIf& mem, std::uint64_t iter)
{
    std::uint64_t s = co_await fetchWork(mem, iter);
    const Addr sent = sentences_ + s * p_.wordsPerSentence * 8;
    const Addr parse = parses_.at(s);

    std::uint64_t prevLex = 0;
    std::uint64_t linkScore = 0;
    for (std::uint64_t w = 0; w < p_.wordsPerSentence; ++w) {
        std::uint64_t wid = co_await mem.load(sent + w * 8);
        unsigned b = mix64(p_.seed ^ wid) % p_.buckets;
        Addr node = co_await mem.load(buckets_ + b * 8);
        std::uint64_t lex = 0;
        // Chain walk until the word is found.
        while (node != 0) {
            std::uint64_t nid = co_await mem.load(node + 8);
            if (nid == wid) {
                lex = co_await mem.load(node + 16);
                break;
            }
            node = co_await mem.load(node + 0);
        }
        // Dictionary words are essentially always found: a heavily
        // biased branch (parser's 1.05% rate in Table 1).
        co_await mem.branch(0x700, lex != 0);
        // Linkage: score this word against its predecessor.
        std::uint64_t link = mix64(lex ^ (prevLex << 1)) & 0xff;
        linkScore += link;
        co_await mem.store(parse + w * 8, (lex << 16) | link);
        prevLex = lex;
        co_await mem.compute(2);
    }
    co_await mem.store(parse + p_.wordsPerSentence * 8, linkScore);
}

std::uint64_t
ParserWorkload::checksum(runtime::Machine& m)
{
    std::uint64_t sum = 0;
    for (std::uint64_t s = 0; s < p_.sentences; ++s) {
        Addr parse = parses_.at(s);
        sum = mix64(sum ^ m.sys().memory().read(
                              parse + p_.wordsPerSentence * 8, 8));
        for (std::uint64_t w = 0; w < p_.wordsPerSentence; w += 17)
            sum = mix64(sum ^
                        m.sys().memory().read(parse + w * 8, 8));
    }
    return sum;
}

} // namespace hmtx::workloads
