/**
 * @file
 * Sharded KV/OLTP serving engine: millions of mtx-scale request
 * transactions against a banked hash table, with streaming tail-latency
 * statistics.
 *
 * This is the serving-side counterpart of the loop workloads: instead
 * of a fixed iteration space executed by the runtime's PS-DSWP/worklist
 * executors, requests arrive on an *open loop* — per-core bursty
 * arrival processes draw keys from a Zipfian popularity law and issue
 * point-gets, read-modify-writes, two-key transfers, and small scans
 * as MTXs against a shared hash table in simulated memory. The engine
 * drives CacheSystem directly with the lane-clock cost model of the
 * crossover bench (an access charges its own lane; commits, aborts and
 * serialized fallback accesses synchronize every lane), so the four
 * commit modes and both fabrics are directly comparable under load.
 *
 * Throughput discipline (DESIGN.md §15): the request path performs no
 * host heap allocation and keeps no per-request state after commit.
 * Requests are staged in fixed per-core rings carved from a
 * runtime::ScratchArena and refilled in batches; latencies stream into
 * the fixed-bucket log-scale histogram of sim::ServeStats (exact
 * nearest-rank p50/p99/p999, O(1) per retire), so memory footprint is
 * independent of the request count — the smoke test pins
 * scratchHighWater across run lengths to prove it.
 */

#ifndef HMTX_WORKLOADS_KV_SERVE_HH
#define HMTX_WORKLOADS_KV_SERVE_HH

#include <cstdint>
#include <vector>

#include "core/tx_policy.hh"
#include "sim/config.hh"
#include "sim/stats.hh"

namespace hmtx::workloads
{

/** Knobs of one serving run (the bench sweeps a subset of these). */
struct KvServeParams
{
    /** Total requests to serve across all cores. */
    std::uint64_t requests = 100000;
    /** Hash-table buckets; one cache line each (7 value slots). */
    std::uint64_t tableBuckets = 4096;
    /** Distinct keys; popularity follows the Zipfian law below. */
    std::uint64_t keys = 16384;
    /** Zipfian skew theta (0 = uniform; YCSB ~0.99; sweep to 1.2). */
    double zipfTheta = 0.9;
    /** Fraction of point requests that read-modify-write their slot. */
    double writeRatio = 0.5;
    /** Fraction of requests that are two-key transfers. */
    double transferShare = 0.15;
    /** Fraction of requests that are strided range updates ("scans"):
     *  read + write one slot of scanBuckets buckets spaced scanStride
     *  apart. These are the capacity axis of the serving mix — the
     *  strided write set piles into few cache sets, so bounded
     *  machines overflow (best-effort capacity-aborts into the
     *  fallback lock, limited-set trips its K bound) while unbounded
     *  HMTX spills to the overflow table and keeps pipelining. */
    double scanShare = 0.05;
    /** Buckets touched by a scan (> limitedSetK forces the bounded
     *  limited-set machine onto the non-speculative path; more than
     *  the smallest cache's associativity at a colliding stride makes
     *  a lone scan overflow the hierarchy). */
    unsigned scanBuckets = 12;
    /** Bucket stride of a scan; a multiple of every cache's set count
     *  focuses the whole range update onto one set per level. */
    unsigned scanStride = 16;
    /** Mean inter-arrival gap per core, cycles (open loop). */
    std::uint64_t arrivalMeanGap = 64;
    /** ON-fraction of the bursty arrival process in (0, 1]; 1 means a
     *  smooth open loop, smaller means the same offered load arrives
     *  compressed into heavy-tailed ON periods. */
    double burstDuty = 1.0;
    /** Pareto shape of the ON-period length (requests). */
    double burstAlpha = 1.5;
    std::uint64_t seed = 1;
    /** Per-core request ring capacity (requests staged per refill). */
    unsigned ringCap = 64;
    /** Global flushes tolerated per batch before the run FATALs. */
    unsigned maxAttempts = 64;
    /** Flushes per batch after which non-btx modes drain the oldest
     *  transaction alone (livelock-free forward progress). */
    unsigned drainAfter = 8;
    /** Also keep every latency sample (O(n) memory — tests and the
     *  naive-vs-streaming profile only; production runs stream). */
    bool recordLatencies = false;
    /** Replay committed writes through a host-side oracle and verify
     *  the final memory image against it. */
    bool oracleCheck = true;
};

/** Everything one serving run produced. */
struct KvServeResult
{
    sim::ServeStats serve;
    /** Max lane clock once every request committed (cycles). */
    std::uint64_t makespan = 0;
    sim::SysStats sys;
    TxModeStats tx;
    /** Final memory image matched the sequential oracle. */
    bool oracleOk = true;
    /** Host wall-clock of the serving loop (throughput profile). */
    double hostSeconds = 0.0;
    /** Peak bytes across all per-core scratch arenas — must be
     *  independent of KvServeParams::requests. */
    std::size_t scratchHighWater = 0;
    /** Only populated when recordLatencies is set. */
    std::vector<std::uint64_t> recordedLatencies;
};

/**
 * Runs one serving cell to completion. Deterministic for a given
 * (config, params) pair. Aborts the process if a batch exceeds
 * KvServeParams::maxAttempts global flushes (a livelock would
 * otherwise spin forever) or an illegal configuration slips through.
 */
KvServeResult runKvServe(const sim::MachineConfig& cfg,
                         const KvServeParams& p);

} // namespace hmtx::workloads

#endif // HMTX_WORKLOADS_KV_SERVE_HH
