#include "workloads/crafty.hh"

namespace hmtx::workloads
{

CraftyWorkload::CraftyWorkload() : p_() {}

void
CraftyWorkload::setup(runtime::Machine& m)
{
    auto& mem = m.sys().memory();
    moves_ = m.heap().allocWords(kMoveTable);
    evals_ = m.heap().allocWords(kEvalTable);
    for (unsigned i = 0; i < kMoveTable; ++i)
        mem.write(moves_ + i * 8, mix64(p_.seed ^ i) | 1, 8);
    for (unsigned i = 0; i < kEvalTable; ++i)
        mem.write(evals_ + i * 8,
                  mix64(p_.seed ^ 0xE0E0 ^ i) & 0xffff, 8);

    pv_.init(m, p_.positions, p_.depth + 1);

    std::vector<std::uint64_t> payloads(p_.positions);
    for (std::uint64_t i = 0; i < p_.positions; ++i)
        payloads[i] = mix64(p_.seed ^ (i << 8)) | 1; // root position
    initWorkList(m, payloads);
}

sim::Task<void>
CraftyWorkload::stage2(runtime::MemIf& mem, std::uint64_t iter)
{
    std::uint64_t root = co_await fetchWork(mem, iter);

    // Iterative alpha-beta over a width^depth tree, explicit stack.
    struct Frame
    {
        std::uint64_t pos;
        unsigned nextMove;
        std::int64_t best;
    };
    std::vector<Frame> stack;
    // Depth is bounded, so reserving keeps references into the stack
    // valid across push_back.
    stack.reserve(p_.depth + 2);
    stack.push_back({root, 0, -1'000'000});
    std::int64_t rootBest = -1'000'000;
    std::uint64_t bestMove = 0;
    std::int64_t alpha = -1'000'000;

    while (!stack.empty()) {
        Frame& f = stack.back();
        if (f.nextMove >= p_.width) {
            std::int64_t v = -f.best;
            stack.pop_back();
            if (stack.empty())
                break;
            Frame& parent = stack.back();
            if (v > parent.best)
                parent.best = v;
            continue;
        }
        unsigned mi =
            (f.pos + f.nextMove * 17) % kMoveTable;
        std::uint64_t mv = co_await mem.load(moves_ + mi * 8);
        ++f.nextMove;
        std::uint64_t child = mix64(f.pos ^ mv);

        if (stack.size() > p_.depth) {
            // Leaf: evaluate.
            std::int64_t e = static_cast<std::int64_t>(
                co_await mem.load(evals_ +
                                  (child % kEvalTable) * 8));
            if (e > f.best)
                f.best = e;
            // Pruning decision: depends on hashed evaluation —
            // essentially unpredictable (crafty's 5.59% rate).
            bool prune = (e & 15) == 0 && f.best > alpha;
            co_await mem.branch(0x600, prune);
            if (prune)
                f.nextMove = p_.width;
            continue;
        }
        bool expand = (child & 3) != 0 || f.nextMove == 1;
        co_await mem.branch(0x610, expand);
        if (expand)
            stack.push_back({child, 0, -1'000'000});
        co_await mem.compute(2);
        if (stack.size() == 1 && f.best > rootBest) {
            rootBest = f.best;
            bestMove = mv;
        }
    }

    Addr out = pv_.at(iter);
    co_await mem.store(out, static_cast<std::uint64_t>(rootBest));
    co_await mem.store(out + 8, bestMove);
}

std::uint64_t
CraftyWorkload::checksum(runtime::Machine& m)
{
    std::uint64_t sum = 0;
    for (std::uint64_t i = 0; i < p_.positions; ++i) {
        Addr out = pv_.at(i);
        sum = mix64(sum ^ m.sys().memory().read(out, 8));
        sum = mix64(sum ^ m.sys().memory().read(out + 8, 8));
    }
    return sum;
}

} // namespace hmtx::workloads
