/**
 * @file
 * 164.gzip proxy: LZ77-style block compression.
 */

#ifndef HMTX_WORKLOADS_GZIP_HH
#define HMTX_WORKLOADS_GZIP_HH

#include "workloads/worklist.hh"

namespace hmtx::workloads
{

/**
 * gzip's deflate loop hashes 3-byte prefixes, probes a hash chain for
 * matches, and emits literals or (length, distance) pairs. The proxy
 * compresses one block per iteration: a rolling hash over the block's
 * words probes a per-block hash table (tag-checked, so stale entries
 * read as empty), and every position emits a token into the block's
 * output region. Match/no-match branches are data-dependent, matching
 * gzip's moderate misprediction rate in Table 1.
 */
class GzipWorkload : public ChasedListWorkload
{
  public:
    struct Params
    {
        std::uint64_t blocks = 32;
        std::uint64_t wordsPerBlock = 1600; // 8-byte words per block
        unsigned tableEntries = 256;
        std::uint64_t seed = 164;
    };

    /** Constructs with default parameters. */
    GzipWorkload();
    explicit GzipWorkload(Params p) : p_(p) {}

    std::string name() const override { return "164.gzip"; }
    std::uint64_t iterations() const override { return p_.blocks; }
    double hotLoopFraction() const override { return 0.984; }
    unsigned minRwSetPerIter() const override { return 2; }

    void setup(runtime::Machine& m) override;
    sim::Task<void> stage2(runtime::MemIf& mem,
                           std::uint64_t iter) override;
    std::uint64_t checksum(runtime::Machine& m) override;

  private:
    Params p_;
    Addr input_ = 0;
    IterRegion tables_; // per-block hash tables
    IterRegion output_; // per-block token streams
    Addr outLen_ = 0;  // per-block token counts
};

} // namespace hmtx::workloads

#endif // HMTX_WORKLOADS_GZIP_HH
