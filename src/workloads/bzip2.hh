/**
 * @file
 * 256.bzip2 proxy: block-sorting compression with the largest
 * read/write sets of Figure 9.
 */

#ifndef HMTX_WORKLOADS_BZIP2_HH
#define HMTX_WORKLOADS_BZIP2_HH

#include "workloads/worklist.hh"

namespace hmtx::workloads
{

/**
 * bzip2 transforms large blocks (sort, MTF, RLE), streaming through
 * megabytes per transaction. The proxy processes one block per
 * iteration with the same phase structure: a counting pass builds a
 * per-block byte histogram, a prefix-sum turns it into sort buckets, a
 * permutation pass writes the reordered block, and an RLE pass
 * compresses runs into the output region. Every word of the block is
 * read and written, giving the largest per-TX combined set of the
 * suite, as Figure 9 shows for bzip2.
 */
class Bzip2Workload : public ChasedListWorkload
{
  public:
    struct Params
    {
        std::uint64_t blocks = 10;
        std::uint64_t wordsPerBlock = 4096; // 32 KB per block
        std::uint64_t seed = 256;
    };

    /** Constructs with default parameters. */
    Bzip2Workload();
    explicit Bzip2Workload(Params p) : p_(p) {}

    std::string name() const override { return "256.bzip2"; }
    std::uint64_t iterations() const override { return p_.blocks; }
    double hotLoopFraction() const override { return 0.985; }
    unsigned minRwSetPerIter() const override { return 2; }

    void setup(runtime::Machine& m) override;
    sim::Task<void> stage2(runtime::MemIf& mem,
                           std::uint64_t iter) override;
    std::uint64_t checksum(runtime::Machine& m) override;

  protected:
    static constexpr unsigned kBucketCount = 256;
    Params p_;
    Addr input_ = 0;
    IterRegion counts_; // per-block histograms
    IterRegion sorted_; // per-block permuted data
    IterRegion rle_;    // per-block RLE output
    Addr rleLen_ = 0;
};

} // namespace hmtx::workloads

#endif // HMTX_WORKLOADS_BZIP2_HH
