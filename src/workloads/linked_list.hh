/**
 * @file
 * The linked-list traversal workload of Figures 1, 3 and 5: a pointer
 * chase (stage 1) feeding a per-node work function (stage 2).
 */

#ifndef HMTX_WORKLOADS_LINKED_LIST_HH
#define HMTX_WORKLOADS_LINKED_LIST_HH

#include <vector>

#include "runtime/workload.hh"
#include "workloads/common.hh"

namespace hmtx::workloads
{

/**
 * while (node) { w = work(node); node = node->next; }
 *
 * The nodes are scattered through simulated memory so stage 1 is a
 * genuine pointer chase. Stage 2's work function hashes the node's
 * payload for a configurable number of rounds (with data-dependent
 * branches) and writes the result into the node — later read by the
 * host-side checksum. Used by the quickstart example, the Figure 1
 * schedule bench, and the runtime tests.
 */
class LinkedListWorkload : public runtime::LoopWorkload
{
  public:
    struct Params
    {
        std::uint64_t nodes = 64;
        /** Hash rounds per node in the work function. */
        unsigned workRounds = 12;
        /** Extra compute in stage 1 (traversal-side processing). */
        unsigned stage1Rounds = 0;
        std::uint64_t seed = 1;
    };

    /** Constructs with default parameters. */
    LinkedListWorkload();
    explicit LinkedListWorkload(Params p) : p_(p) {}

    std::string name() const override { return "linked_list"; }
    runtime::Paradigm paradigm() const override
    {
        return runtime::Paradigm::PsDswp;
    }
    std::uint64_t iterations() const override { return p_.nodes; }
    unsigned minRwSetPerIter() const override { return 1; }

    void setup(runtime::Machine& m) override;
    sim::Task<void> stage1(runtime::MemIf& mem,
                           std::uint64_t iter) override;
    sim::Task<void> stage2(runtime::MemIf& mem,
                           std::uint64_t iter) override;
    std::uint64_t checksum(runtime::Machine& m) override;

  private:
    /** Node layout: [0]=next, [8]=value, [16]=result. */
    static constexpr unsigned kNextOff = 0;
    static constexpr unsigned kValueOff = 8;
    static constexpr unsigned kResultOff = 16;

    Params p_;
    Addr head_ = 0;
    IterSlots slots_;
    std::vector<Addr> order_; // host mirror for recovery & checksum
    runtime::Machine* m_ = nullptr;
};

} // namespace hmtx::workloads

#endif // HMTX_WORKLOADS_LINKED_LIST_HH
