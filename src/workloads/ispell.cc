#include "workloads/ispell.hh"

#include "sim/rng.hh"

namespace hmtx::workloads
{

IspellWorkload::IspellWorkload() : p_() {}

void
IspellWorkload::setup(runtime::Machine& m)
{
    auto& mem = m.sys().memory();
    sim::Rng rng(p_.seed);

    // Dictionary: chained hash of the vocabulary.
    std::vector<Addr> nodes(p_.vocabulary);
    for (auto& n : nodes)
        n = m.heap().alloc(16, 8);
    buckets_ = m.heap().allocWords(p_.buckets);
    std::vector<Addr> head(p_.buckets, 0);
    for (unsigned w = 0; w < p_.vocabulary; ++w) {
        std::uint64_t wordSig = mix64(p_.seed ^ (w * 2654435761ull));
        unsigned b = wordSig % p_.buckets;
        mem.write(nodes[w] + 0, head[b], 8);
        mem.write(nodes[w] + 8, wordSig, 8);
        head[b] = nodes[w];
    }
    for (unsigned b = 0; b < p_.buckets; ++b)
        mem.write(buckets_ + b * 8, head[b], 8);

    verdicts_.init(m, p_.words, 1);

    // Input stream: mostly dictionary words, some misspellings.
    std::vector<std::uint64_t> payloads(p_.words);
    for (std::uint64_t i = 0; i < p_.words; ++i) {
        if (rng.uniform() < p_.missRate) {
            payloads[i] = mix64(p_.seed ^ 0xBAD ^ i) | 1;
        } else {
            unsigned w = rng.range(p_.vocabulary);
            payloads[i] = mix64(p_.seed ^ (w * 2654435761ull));
        }
    }
    initWorkList(m, payloads);
}

sim::Task<std::uint64_t>
IspellWorkload::probe(runtime::MemIf& mem, std::uint64_t word,
                      Addr pc)
{
    unsigned b = word % p_.buckets;
    Addr node = co_await mem.load(buckets_ + b * 8);
    std::uint64_t found = 0;
    while (node != 0) {
        std::uint64_t sig = co_await mem.load(node + 8);
        if (sig == word) {
            found = 1;
            break;
        }
        node = co_await mem.load(node + 0);
    }
    // Distinct sites: the main probe is almost always a hit, the
    // near-miss variant probes almost always miss.
    co_await mem.branch(pc, found != 0);
    co_return found;
}

sim::Task<void>
IspellWorkload::stage2(runtime::MemIf& mem, std::uint64_t iter)
{
    std::uint64_t word = co_await fetchWork(mem, iter);
    co_await mem.compute(4); // hash the word

    std::uint64_t found = co_await probe(mem, word, 0xA00);
    std::uint64_t verdict = found;
    if (!found) {
        // Near-miss pass: try a few single-edit variants.
        for (unsigned v = 1; v <= 4 && !verdict; ++v) {
            std::uint64_t variant = mix64(word ^ v);
            co_await mem.compute(2);
            if (co_await probe(mem, variant, 0xA40))
                verdict = v + 1;
        }
    }
    co_await mem.store(verdicts_.at(iter), verdict);
}

std::uint64_t
IspellWorkload::checksum(runtime::Machine& m)
{
    std::uint64_t sum = 0;
    for (std::uint64_t i = 0; i < p_.words; ++i)
        sum = mix64(sum ^
                    m.sys().memory().read(verdicts_.at(i), 8));
    return sum;
}

} // namespace hmtx::workloads
