/**
 * @file
 * 456.hmmer proxy: profile-HMM Viterbi dynamic programming.
 */

#ifndef HMTX_WORKLOADS_HMMER_HH
#define HMTX_WORKLOADS_HMMER_HH

#include "workloads/worklist.hh"

namespace hmtx::workloads
{

/**
 * hmmer scores protein sequences against a profile HMM with the
 * Viterbi recurrence. Each proxy iteration scores one sequence: a
 * row-by-row DP over (sequence position x model state) with
 * match/insert/delete predecessors read from the previous row and
 * emission scores from the shared read-only model tables. DP rows
 * live in per-iteration buffers; the final score lands in a result
 * array. The recurrence's max-selection branches are mostly
 * predictable, matching hmmer's low misprediction rate in Table 1.
 */
class HmmerWorkload : public ChasedListWorkload
{
  public:
    struct Params
    {
        std::uint64_t sequences = 120;
        unsigned seqLen = 20;
        unsigned states = 10;
        std::uint64_t seed = 456;
    };

    /** Constructs with default parameters. */
    HmmerWorkload();
    explicit HmmerWorkload(Params p) : p_(p) {}

    std::string name() const override { return "456.hmmer"; }
    std::uint64_t iterations() const override { return p_.sequences; }
    double hotLoopFraction() const override { return 1.0; }
    unsigned minRwSetPerIter() const override { return 1; }

    void setup(runtime::Machine& m) override;
    sim::Task<void> stage2(runtime::MemIf& mem,
                           std::uint64_t iter) override;
    std::uint64_t checksum(runtime::Machine& m) override;

  private:
    static constexpr unsigned kAlphabet = 16;
    Params p_;
    Addr emit_ = 0;   // states x alphabet emission scores (read-only)
    Addr trans_ = 0;  // states x 3 transition scores (read-only)
    Addr seqs_ = 0;   // sequence symbols
    IterRegion rows_;   // per-iteration DP row double-buffers
    IterRegion scores_; // per-sequence results
};

} // namespace hmtx::workloads

#endif // HMTX_WORKLOADS_HMMER_HH
