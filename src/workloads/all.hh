/**
 * @file
 * Factory for the full benchmark suite of §6.
 */

#ifndef HMTX_WORKLOADS_ALL_HH
#define HMTX_WORKLOADS_ALL_HH

#include <memory>
#include <string>
#include <vector>

#include "runtime/workload.hh"

namespace hmtx::workloads
{

/**
 * Creates the 8 evaluated benchmarks (7 SPEC + ispell) in Table 1
 * order, at the default scaled-down sizes.
 */
std::vector<std::unique_ptr<runtime::LoopWorkload>> makeSuite();

/** Creates one benchmark by its Table 1 name (e.g. "130.li");
 *  returns nullptr for unknown names. */
std::unique_ptr<runtime::LoopWorkload>
makeByName(const std::string& name);

/** Names of the 6 benchmarks with an SMTX comparison (§6.1: crafty
 *  and ispell have none). */
bool hasSmtxComparison(const std::string& name);

} // namespace hmtx::workloads

#endif // HMTX_WORKLOADS_ALL_HH
