#include "workloads/li.hh"

#include "sim/rng.hh"

namespace hmtx::workloads
{

LiWorkload::LiWorkload() : p_() {}

void
LiWorkload::setup(runtime::Machine& m)
{
    auto& mem = m.sys().memory();
    sim::Rng rng(p_.seed);

    results_ = m.heap().allocLines(p_.expressions);
    exprHeads_.clear();

    std::vector<std::uint64_t> payloads;
    for (std::uint64_t e = 0; e < p_.expressions; ++e) {
        // Build this expression's cons chain: contiguous storage,
        // shuffled linkage (two 32-byte cells per line).
        Addr heap = m.heap().alloc(p_.cellsPerExpr * 32, kLineBytes);
        std::vector<Addr> cells(p_.cellsPerExpr);
        for (std::uint64_t c = 0; c < p_.cellsPerExpr; ++c)
            cells[c] = heap + c * 32;
        for (std::uint64_t c = p_.cellsPerExpr; c > 1; --c)
            std::swap(cells[c - 1], cells[rng.range(c)]);
        for (std::uint64_t c = 0; c < p_.cellsPerExpr; ++c) {
            Addr cdr = c + 1 < p_.cellsPerExpr ? cells[c + 1] : 0;
            mem.write(cells[c] + 0, mix64(p_.seed ^ (e << 20) ^ c),
                      8);
            mem.write(cells[c] + 8, cdr, 8);
            mem.write(cells[c] + 16, 0, 8);
        }
        exprHeads_.push_back(cells.front());
        payloads.push_back(cells.front());
    }
    initWorkList(m, payloads);
}

sim::Task<void>
LiWorkload::stage2(runtime::MemIf& mem, std::uint64_t iter)
{
    Addr head = co_await fetchWork(mem, iter);

    // Eval passes: interpreters re-traverse structures; three
    // walks fold different operator chains over the cons values.
    std::uint64_t acc = 0;
    for (unsigned pass = 0; pass < 3; ++pass) {
        Addr cell = head;
        unsigned op = pass;
        while (cell != 0) {
            std::uint64_t car = co_await mem.load(cell + 0);
            switch (op) {
              case 0: acc += car; break;
              case 1: acc ^= car; break;
              case 2: acc = mix64(acc + car); break;
            }
            op = (op + 1) % 3;
            co_await mem.branch(0x400, (car & 31) == 0);
            cell = co_await mem.load(cell + 8);
            co_await mem.compute(1);
        }
    }

    // GC-style sweep: mark every reachable cell.
    Addr cell = head;
    std::uint64_t live = 0;
    while (cell != 0) {
        co_await mem.store(cell + 16, (iter << 32) | 1);
        ++live;
        cell = co_await mem.load(cell + 8);
    }

    co_await mem.store(results_ + iter * kLineBytes,
                       mix64(acc ^ live));
}

std::uint64_t
LiWorkload::checksum(runtime::Machine& m)
{
    std::uint64_t sum = 0;
    for (std::uint64_t e = 0; e < p_.expressions; ++e)
        sum = mix64(sum ^ m.sys().memory().read(
                              results_ + e * kLineBytes, 8));
    // Fold in a sample of mark words so the sweep is validated too.
    for (Addr h : exprHeads_)
        sum = mix64(sum ^ m.sys().memory().read(h + 16, 8));
    return sum;
}

} // namespace hmtx::workloads
