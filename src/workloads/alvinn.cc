#include "workloads/alvinn.hh"

namespace hmtx::workloads
{

AlvinnWorkload::AlvinnWorkload() : p_() {}

namespace
{

/** Fixed-point activation: a cheap saturating ramp. */
constexpr std::int64_t
activate(std::int64_t x)
{
    if (x > 4096)
        return 4096;
    if (x < -4096)
        return -4096;
    return x;
}

} // namespace

void
AlvinnWorkload::setup(runtime::Machine& m)
{
    auto& mem = m.sys().memory();
    const unsigned in = p_.inputs, hid = p_.hidden, out = p_.outputs;

    w1_ = m.heap().allocWords(std::size_t{hid} * in);
    w2_ = m.heap().allocWords(std::size_t{out} * hid);
    for (unsigned j = 0; j < hid; ++j)
        for (unsigned k = 0; k < in; ++k)
            mem.write(w1_ + (j * in + k) * 8,
                      (mix64(p_.seed ^ (j * 131 + k)) & 0xff) - 128,
                      8);
    for (unsigned o = 0; o < out; ++o)
        for (unsigned j = 0; j < hid; ++j)
            mem.write(w2_ + (o * hid + j) * 8,
                      (mix64(p_.seed ^ 0x9000 ^ (o * 131 + j)) &
                       0xff) - 128,
                      8);

    patStride_ = in + out; // inputs followed by targets
    patterns_ = m.heap().allocWords(std::size_t{p_.patterns} *
                                    patStride_);
    for (std::uint64_t p = 0; p < p_.patterns; ++p) {
        for (unsigned k = 0; k < in; ++k)
            mem.write(patterns_ + (p * patStride_ + k) * 8,
                      (mix64(p_.seed ^ (p * 977 + k)) & 0x7f), 8);
        for (unsigned o = 0; o < out; ++o)
            mem.write(patterns_ + (p * patStride_ + in + o) * 8,
                      (mix64(p_.seed ^ 0x7777 ^ (p * 977 + o)) &
                       0x3f),
                      8);
    }

    deltaStride_ = out + hid;
    deltas_.init(m, p_.patterns, deltaStride_);

    std::vector<std::uint64_t> payloads(p_.patterns);
    for (std::uint64_t p = 0; p < p_.patterns; ++p)
        payloads[p] = patterns_ + p * patStride_ * 8;
    initWorkList(m, payloads);
}

sim::Task<void>
AlvinnWorkload::stage2(runtime::MemIf& mem, std::uint64_t iter)
{
    const unsigned in = p_.inputs, hid = p_.hidden, out = p_.outputs;
    Addr pat = co_await fetchWork(mem, iter);

    // Forward pass: hidden layer.
    std::vector<std::int64_t> h(hid);
    for (unsigned j = 0; j < hid; ++j) {
        std::int64_t sum = 0;
        for (unsigned k = 0; k < in; ++k) {
            std::int64_t w = static_cast<std::int64_t>(
                co_await mem.load(w1_ + (j * in + k) * 8));
            std::int64_t x = static_cast<std::int64_t>(
                co_await mem.load(pat + k * 8));
            sum += static_cast<std::int64_t>(
                       static_cast<std::int32_t>(w)) *
                static_cast<std::int64_t>(
                       static_cast<std::int32_t>(x));
            if (k % 8 == 7)
                co_await mem.compute(2);
        }
        h[j] = activate(sum >> 6);
        // Activation-nonzero check: essentially always taken, so
        // alvinn's regular loops predict near-perfectly (0.245% in
        // Table 1).
        co_await mem.branch(0x300, sum != 0);
    }

    // Forward pass: output layer, plus error against the target.
    for (unsigned o = 0; o < out; ++o) {
        std::int64_t sum = 0;
        for (unsigned j = 0; j < hid; ++j) {
            std::int64_t w = static_cast<std::int64_t>(
                co_await mem.load(w2_ + (o * hid + j) * 8));
            sum += static_cast<std::int64_t>(
                       static_cast<std::int32_t>(w)) *
                h[j];
        }
        std::int64_t y = activate(sum >> 8);
        std::int64_t t = static_cast<std::int64_t>(
            co_await mem.load(pat + (in + o) * 8));
        std::int64_t err = t - y;
        co_await mem.store(deltas_.at(iter, o),
                           static_cast<std::uint64_t>(err));
        co_await mem.branch(0x310, (err & 1) == (err & 1));
    }

    // Backward pass: per-pattern hidden deltas.
    for (unsigned j = 0; j < hid; ++j) {
        std::int64_t acc = 0;
        for (unsigned o = 0; o < out; ++o) {
            std::int64_t w = static_cast<std::int64_t>(
                co_await mem.load(w2_ + (o * hid + j) * 8));
            acc += static_cast<std::int64_t>(
                       static_cast<std::int32_t>(w)) ^
                h[j];
        }
        co_await mem.store(deltas_.at(iter, out + j),
                           static_cast<std::uint64_t>(acc));
    }
}

std::uint64_t
AlvinnWorkload::checksum(runtime::Machine& m)
{
    std::uint64_t sum = 0;
    for (std::uint64_t p = 0; p < p_.patterns; ++p)
        for (unsigned k = 0; k < deltaStride_; ++k)
            sum = mix64(sum ^ m.sys().memory().read(
                                  deltas_.at(p, k), 8));
    return sum;
}

} // namespace hmtx::workloads
