#include "workloads/linked_list.hh"

#include "sim/rng.hh"

namespace hmtx::workloads
{

LinkedListWorkload::LinkedListWorkload() : p_() {}

void
LinkedListWorkload::setup(runtime::Machine& m)
{
    m_ = &m;
    slots_.init(m);
    sim::Rng rng(p_.seed);

    // Allocate the nodes, then link them in a shuffled order so the
    // traversal really chases pointers across the address space.
    std::vector<Addr> nodes;
    nodes.reserve(p_.nodes);
    for (std::uint64_t i = 0; i < p_.nodes; ++i)
        nodes.push_back(m.heap().allocLines(1));
    for (std::uint64_t i = p_.nodes; i > 1; --i)
        std::swap(nodes[i - 1], nodes[rng.range(i)]);

    order_ = nodes;
    head_ = nodes.front();
    for (std::uint64_t i = 0; i < p_.nodes; ++i) {
        Addr next = (i + 1 < p_.nodes) ? nodes[i + 1] : 0;
        m.sys().memory().write(nodes[i] + kNextOff, next, 8);
        m.sys().memory().write(nodes[i] + kValueOff,
                               mix64(p_.seed ^ i), 8);
        m.sys().memory().write(nodes[i] + kResultOff, 0, 8);
    }
}

sim::Task<void>
LinkedListWorkload::stage1(runtime::MemIf& mem, std::uint64_t iter)
{
    // order_ mirrors the link order (setup chains nodes[i] ->
    // nodes[i+1]), so indexing it is value-identical to chasing a
    // loop-carried cursor — and leaves the stage body free of host
    // state, which lets the parallel engine stage it off-thread and
    // keeps abort recovery trivially consistent.
    Addr node = order_[iter];
    // Publish the node to stage 2 through versioned memory (Fig. 3b:
    // "producedNode = node").
    co_await mem.store(slots_.slot(iter), node);
    Addr next = co_await mem.load(node + kNextOff);
    if (p_.stage1Rounds > 0)
        co_await mem.compute(p_.stage1Rounds);
    co_await mem.branch(0x100, next != 0); // while (node) back-edge
}

sim::Task<void>
LinkedListWorkload::stage2(runtime::MemIf& mem, std::uint64_t iter)
{
    // Fig. 3c: "node = producedNode" — sees stage 1's uncommitted
    // store of this same transaction.
    Addr node = co_await mem.load(slots_.slot(iter));
    std::uint64_t h = co_await mem.load(node + kValueOff);
    for (unsigned r = 0; r < p_.workRounds; ++r) {
        h = mix64(h + r);
        co_await mem.compute(3);
        if (r % 4 == 3)
            co_await mem.branch(0x200, (h & 1) != 0);
    }
    co_await mem.store(node + kResultOff, h);
}

std::uint64_t
LinkedListWorkload::checksum(runtime::Machine& m)
{
    std::uint64_t sum = 0;
    for (Addr n : order_)
        sum = mix64(sum ^ m.sys().memory().read(n + kResultOff, 8));
    return sum;
}

} // namespace hmtx::workloads
