/**
 * @file
 * 130.li proxy: a lisp-interpreter-flavoured workload with the largest
 * per-transaction access counts of Table 1.
 */

#ifndef HMTX_WORKLOADS_LI_HH
#define HMTX_WORKLOADS_LI_HH

#include "workloads/worklist.hh"

namespace hmtx::workloads
{

/**
 * xlisp spends its time evaluating expressions over cons cells and
 * garbage collecting them. Each iteration of the proxy evaluates one
 * top-level expression: it walks a long per-expression cons-cell list
 * (car = value, cdr = next), folds an operator chain over the values
 * (eval pass), then sweeps the same cells writing mark words (GC
 * pass) and finally stores the result. The cell chains are shuffled
 * through memory, giving the irregular pointer-chasing behaviour and
 * the very large per-TX read/write sets the paper reports for li.
 */
class LiWorkload : public ChasedListWorkload
{
  public:
    struct Params
    {
        std::uint64_t expressions = 12;
        std::uint64_t cellsPerExpr = 1400;
        std::uint64_t seed = 130;
    };

    /** Constructs with default parameters. */
    LiWorkload();
    explicit LiWorkload(Params p) : p_(p) {}

    std::string name() const override { return "130.li"; }
    std::uint64_t iterations() const override
    {
        return p_.expressions;
    }
    double hotLoopFraction() const override { return 1.0; }
    unsigned minRwSetPerIter() const override { return 2; }

    void setup(runtime::Machine& m) override;
    sim::Task<void> stage2(runtime::MemIf& mem,
                           std::uint64_t iter) override;
    std::uint64_t checksum(runtime::Machine& m) override;

  private:
    /** Cell layout (32 B): [0]=car, [8]=cdr, [16]=mark, [24]=pad. */
    Params p_;
    Addr results_ = 0;
    std::vector<Addr> exprHeads_;
};

} // namespace hmtx::workloads

#endif // HMTX_WORKLOADS_LI_HH
