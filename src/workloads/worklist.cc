#include "workloads/worklist.hh"

#include "sim/rng.hh"

namespace hmtx::workloads
{

void
ChasedListWorkload::initWorkList(
    runtime::Machine& m, const std::vector<std::uint64_t>& payloads)
{
    payloads_ = payloads;
    slots_.init(m);
    sim::Rng rng(0x11aa22bb);

    std::vector<Addr> nodes;
    nodes.reserve(payloads.size());
    for (std::size_t i = 0; i < payloads.size(); ++i)
        nodes.push_back(m.heap().allocLines(1));
    for (std::size_t i = payloads.size(); i > 1; --i)
        std::swap(nodes[i - 1], nodes[rng.range(i)]);

    order_ = nodes;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        Addr next = i + 1 < nodes.size() ? nodes[i + 1] : 0;
        m.sys().memory().write(nodes[i], next, 8);
        m.sys().memory().write(nodes[i] + 8, payloads[i], 8);
    }
}

sim::Task<void>
ChasedListWorkload::stage1(runtime::MemIf& mem, std::uint64_t iter)
{
    // order_ mirrors the link order (initWorkList chains nodes[i] ->
    // nodes[i+1]), so indexing it is value-identical to chasing a
    // loop-carried cursor. Keeping the stage body free of host state
    // makes it safe under DOALL's concurrent stage-1 invocations,
    // abort-recovery restarts at arbitrary iterations, and the
    // parallel engine's off-thread staging alike.
    Addr node = order_[iter];
    std::uint64_t payload = co_await mem.load(node + 8);
    co_await mem.store(slots_.slot(iter), payload);
    Addr next = co_await mem.load(node);
    co_await mem.branch(0x10, next != 0);
}

sim::Task<std::uint64_t>
ChasedListWorkload::fetchWork(runtime::MemIf& mem, std::uint64_t iter)
{
    co_return co_await mem.load(slots_.slot(iter));
}

} // namespace hmtx::workloads
