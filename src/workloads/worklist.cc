#include "workloads/worklist.hh"

#include "sim/rng.hh"

namespace hmtx::workloads
{

void
ChasedListWorkload::initWorkList(
    runtime::Machine& m, const std::vector<std::uint64_t>& payloads)
{
    payloads_ = payloads;
    slots_.init(m);
    sim::Rng rng(0x11aa22bb);

    std::vector<Addr> nodes;
    nodes.reserve(payloads.size());
    for (std::size_t i = 0; i < payloads.size(); ++i)
        nodes.push_back(m.heap().allocLines(1));
    for (std::size_t i = payloads.size(); i > 1; --i)
        std::swap(nodes[i - 1], nodes[rng.range(i)]);

    order_ = nodes;
    for (std::size_t i = 0; i < nodes.size(); ++i) {
        Addr next = i + 1 < nodes.size() ? nodes[i + 1] : 0;
        m.sys().memory().write(nodes[i], next, 8);
        m.sys().memory().write(nodes[i] + 8, payloads[i], 8);
    }
    cursor_ = nodes.empty() ? 0 : nodes.front();
    nextIter_ = 0;
}

sim::Task<void>
ChasedListWorkload::stage1(runtime::MemIf& mem, std::uint64_t iter)
{
    // Derive this iteration's node locally. Under DOALL several
    // workers run stage 1 concurrently, so (cursor_, nextIter_) is
    // only a hint: it must be read as a consistent pair and never
    // half-updated, or a concurrent worker would chase the wrong
    // node. (Also covers abort-recovery restarts at an arbitrary
    // iteration.)
    Addr node = (iter == nextIter_) ? cursor_ : order_[iter];
    std::uint64_t payload = co_await mem.load(node + 8);
    co_await mem.store(slots_.slot(iter), payload);
    Addr next = co_await mem.load(node);
    co_await mem.branch(0x10, next != 0);
    cursor_ = next;
    nextIter_ = iter + 1;
}

sim::Task<std::uint64_t>
ChasedListWorkload::fetchWork(runtime::MemIf& mem, std::uint64_t iter)
{
    co_return co_await mem.load(slots_.slot(iter));
}

} // namespace hmtx::workloads
