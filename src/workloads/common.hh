/**
 * @file
 * Shared helpers for benchmark workloads.
 */

#ifndef HMTX_WORKLOADS_COMMON_HH
#define HMTX_WORKLOADS_COMMON_HH

#include <cstdint>

#include "core/types.hh"
#include "runtime/machine.hh"
#include "runtime/memif.hh"

namespace hmtx::workloads
{

/**
 * The cross-stage communication buffer of Figure 3: stage 1 stores the
 * work item for iteration i into a slot, and stage 2 of the same
 * transaction loads it through HMTX's versioned memory (no explicit
 * queue operations, §3.2).
 *
 * One slot per in-flight iteration (modulo kSlots) keeps the idiom
 * valid under the SMTX substitution as well, where worker processes
 * share the simulated memory directly (see DESIGN.md); kSlots exceeds
 * the deepest possible pipeline (VID window of 63 plus queue slack).
 */
class IterSlots
{
  public:
    /** Slots available; must exceed the maximum pipeline depth. */
    static constexpr std::uint64_t kSlots = 128;

    /**
     * Allocates the slot array. Each slot occupies a full cache line
     * (so concurrent transactions never build version chains on a
     * shared slot line); @p words must be <= 8.
     */
    void
    init(runtime::Machine& m, unsigned words = 1)
    {
        (void)words;
        base_ = m.heap().allocLines(kSlots);
    }

    /** Address of @p word of iteration @p iter's slot. */
    Addr
    slot(std::uint64_t iter, unsigned word = 0) const
    {
        return base_ + (iter % kSlots) * kLineBytes + word * 8;
    }

  private:
    Addr base_ = 0;
};

/**
 * A per-iteration region of simulated memory whose per-iteration
 * chunks are cache-line disjoint. Concurrent transactions may write
 * only to line-disjoint data: a line written by transaction i and
 * later stored by transaction j < i is a (correctly detected)
 * dependence violation, so per-iteration outputs that shared a line
 * would cause spurious aborts under PS-DSWP/DOALL.
 */
class IterRegion
{
  public:
    /** Allocates @p iters chunks of @p words 64-bit words each,
     *  rounded up to whole cache lines. */
    void
    init(runtime::Machine& m, std::uint64_t iters, unsigned words)
    {
        stride_ = (std::uint64_t{words} * 8 + kLineBytes - 1) /
            kLineBytes * kLineBytes;
        base_ = m.heap().alloc(iters * stride_, kLineBytes);
    }

    /** Address of @p word in iteration @p iter's chunk. */
    Addr
    at(std::uint64_t iter, std::uint64_t word = 0) const
    {
        return base_ + iter * stride_ + word * 8;
    }

  private:
    Addr base_ = 0;
    std::uint64_t stride_ = 0;
};

/** Cheap deterministic 64-bit mixer for synthetic data and hashing. */
constexpr std::uint64_t
mix64(std::uint64_t x)
{
    x ^= x >> 33;
    x *= 0xff51afd7ed558ccdull;
    x ^= x >> 33;
    x *= 0xc4ceb9fe1a85ec53ull;
    x ^= x >> 33;
    return x;
}

} // namespace hmtx::workloads

#endif // HMTX_WORKLOADS_COMMON_HH
