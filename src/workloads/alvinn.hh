/**
 * @file
 * 052.alvinn proxy: neural-network training, the one DOALL benchmark
 * of Table 1.
 */

#ifndef HMTX_WORKLOADS_ALVINN_HH
#define HMTX_WORKLOADS_ALVINN_HH

#include "workloads/worklist.hh"

namespace hmtx::workloads
{

/**
 * ALVINN trains a small feed-forward network on road images. The
 * proxy runs one training pattern per iteration: a fixed-point
 * forward pass through input->hidden->output layers over shared
 * (read-only) weight matrices, then a backward pass writing
 * per-pattern weight-delta vectors. Iterations are independent
 * (deltas are accumulated after the loop, as in batched training), so
 * the loop is DOALL (Table 1). Regular dense loops give it the low
 * branch and misprediction rates the paper reports.
 */
class AlvinnWorkload : public ChasedListWorkload
{
  public:
    struct Params
    {
        std::uint64_t patterns = 48;
        unsigned inputs = 32;
        unsigned hidden = 32;
        unsigned outputs = 8;
        std::uint64_t seed = 52;
    };

    /** Constructs with default parameters. */
    AlvinnWorkload();
    explicit AlvinnWorkload(Params p) : p_(p) {}

    std::string name() const override { return "052.alvinn"; }
    runtime::Paradigm paradigm() const override
    {
        return runtime::Paradigm::Doall;
    }
    std::uint64_t iterations() const override { return p_.patterns; }
    double hotLoopFraction() const override { return 0.855; }
    unsigned minRwSetPerIter() const override { return 2; }

    void setup(runtime::Machine& m) override;
    sim::Task<void> stage2(runtime::MemIf& mem,
                           std::uint64_t iter) override;
    std::uint64_t checksum(runtime::Machine& m) override;

  private:
    Params p_;
    Addr w1_ = 0;      // hidden x inputs weights (read-only)
    Addr w2_ = 0;      // outputs x hidden weights (read-only)
    Addr patterns_ = 0; // per-pattern inputs + targets
    IterRegion deltas_; // per-pattern delta output region
    unsigned patStride_ = 0;
    unsigned deltaStride_ = 0;
};

} // namespace hmtx::workloads

#endif // HMTX_WORKLOADS_ALVINN_HH
