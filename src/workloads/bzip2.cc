#include "workloads/bzip2.hh"

namespace hmtx::workloads
{

Bzip2Workload::Bzip2Workload() : p_() {}

void
Bzip2Workload::setup(runtime::Machine& m)
{
    auto& mem = m.sys().memory();
    const std::uint64_t total = p_.blocks * p_.wordsPerBlock;

    input_ = m.heap().allocWords(total);
    for (std::uint64_t i = 0; i < total; ++i) {
        // Text-like distribution: few distinct symbols, long runs.
        std::uint64_t sym = mix64(p_.seed ^ (i >> 5)) % 97;
        mem.write(input_ + i * 8, sym, 8);
    }

    counts_.init(m, p_.blocks, kBucketCount);
    sorted_.init(m, p_.blocks, p_.wordsPerBlock);
    rle_.init(m, p_.blocks, p_.wordsPerBlock + 1);
    rleLen_ = m.heap().allocLines(p_.blocks);

    std::vector<std::uint64_t> payloads(p_.blocks);
    for (std::uint64_t b = 0; b < p_.blocks; ++b)
        payloads[b] = b;
    initWorkList(m, payloads);
}

sim::Task<void>
Bzip2Workload::stage2(runtime::MemIf& mem, std::uint64_t iter)
{
    std::uint64_t b = co_await fetchWork(mem, iter);
    const std::uint64_t n = p_.wordsPerBlock;
    const Addr in = input_ + b * n * 8;
    const Addr cnt = counts_.at(b);
    const Addr sorted = sorted_.at(b);
    const Addr out = rle_.at(b);

    // Phase 1: counting pass (histogram of the low byte).
    for (std::uint64_t i = 0; i < n; ++i) {
        std::uint64_t w = co_await mem.load(in + i * 8);
        unsigned bucket = w & 0xff;
        std::uint64_t c = co_await mem.load(cnt + bucket * 8);
        co_await mem.store(cnt + bucket * 8, c + 1);
    }

    // Phase 2: exclusive prefix sum over the histogram.
    std::uint64_t run = 0;
    for (unsigned s = 0; s < kBucketCount; ++s) {
        std::uint64_t c = co_await mem.load(cnt + s * 8);
        co_await mem.store(cnt + s * 8, run);
        run += c;
    }

    // Phase 3: stable counting-sort permutation.
    for (std::uint64_t i = 0; i < n; ++i) {
        std::uint64_t w = co_await mem.load(in + i * 8);
        unsigned bucket = w & 0xff;
        std::uint64_t dst = co_await mem.load(cnt + bucket * 8);
        co_await mem.store(cnt + bucket * 8, dst + 1);
        co_await mem.store(sorted + dst * 8, w);
    }

    // Phase 4: RLE over the sorted block.
    std::uint64_t emitted = 0;
    std::uint64_t prev = ~std::uint64_t{0};
    std::uint64_t runLen = 0;
    for (std::uint64_t i = 0; i < n; ++i) {
        std::uint64_t w = co_await mem.load(sorted + i * 8);
        bool same = w == prev;
        co_await mem.branch(0x800, same);
        if (same) {
            ++runLen;
        } else {
            if (runLen > 0)
                co_await mem.store(out + emitted++ * 8,
                                   (prev << 16) | runLen);
            prev = w;
            runLen = 1;
        }
    }
    if (runLen > 0)
        co_await mem.store(out + emitted++ * 8,
                           (prev << 16) | runLen);
    co_await mem.store(rleLen_ + b * kLineBytes, emitted);
}

std::uint64_t
Bzip2Workload::checksum(runtime::Machine& m)
{
    std::uint64_t sum = 0;
    auto& mem = m.sys().memory();
    for (std::uint64_t b = 0; b < p_.blocks; ++b) {
        std::uint64_t n = mem.read(rleLen_ + b * kLineBytes, 8);
        sum = mix64(sum ^ n);
        const Addr out = rle_.at(b);
        for (std::uint64_t i = 0; i < n; ++i)
            sum = mix64(sum ^ mem.read(out + i * 8, 8));
    }
    return sum;
}

} // namespace hmtx::workloads
