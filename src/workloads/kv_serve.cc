/**
 * @file
 * KV/OLTP serving engine implementation. See kv_serve.hh for the
 * model; the execution loop mirrors the crossover bench's lane-clock
 * pipeline (bench/ext_mode_crossover.cc) with three additions: open-
 * loop arrivals, a drain-oldest recovery mode that guarantees forward
 * progress without the best-effort fallback lock, and a
 * non-speculative path for transactions whose footprint can never fit
 * the limited-set bound.
 */

#include "workloads/kv_serve.hh"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <unordered_map>

#include "runtime/alloc.hh"
#include "sim/cache_system.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"

namespace hmtx::workloads
{
namespace
{

/** SplitMix64 finalizer: the table's bucket/slot hash. */
std::uint64_t
mix64(std::uint64_t z)
{
    z += 0x9e3779b97f4a7c15ull;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

enum class ReqKind : std::uint8_t
{
    PointGet,
    Rmw,
    Transfer,
    Scan,
};

/** One staged request (ring entry; trivially destructible POD). */
struct Request
{
    std::uint64_t key = 0;
    std::uint64_t key2 = 0;
    /** Absolute arrival cycle on the owning core's open loop. */
    std::uint64_t arrival = 0;
    std::uint32_t rid = 0;
    ReqKind kind = ReqKind::PointGet;
};

/** One straight-line transaction instruction. */
struct TxInstr
{
    bool isStore;
    Addr addr;
    std::uint64_t value;
};

/** Longest body: a scan reads two words of each scanned bucket. */
constexpr unsigned kMaxBody = 2 * 12 + 4;

/** One in-flight transaction on a core (arena-carved POD). */
struct Flight
{
    Request req;
    TxInstr body[kMaxBody];
    unsigned len = 0;
    unsigned progress = 0;
    unsigned footprintLines = 0;
    Vid vid = 0;
    bool active = false;
    bool committed = false;
    /** Runs non-speculatively (limited-set footprint overflow). */
    bool nonSpec = false;
    /** Holds the best-effort fallback lock (accesses serialized). */
    bool underLock = false;
};

/** Per-core ring + bursty open-loop generator state. */
struct CoreLane
{
    Request* ring = nullptr;
    unsigned ringHead = 0;
    unsigned ringCount = 0;
    Flight* fl = nullptr;
    /** Requests this core still has to generate. */
    std::uint64_t toGenerate = 0;
    /** Arrival clock of the generator (cycles). */
    std::uint64_t genClock = 0;
    /** Requests left in the current heavy-tailed ON period. */
    std::uint64_t onLeft = 0;
};

/** Per-core lane clocks with global synchronization points. */
class LaneClock
{
  public:
    explicit LaneClock(unsigned cores) : t_(cores, 0) {}

    std::uint64_t
    maxT() const
    {
        std::uint64_t m = 0;
        for (std::uint64_t v : t_)
            m = std::max(m, v);
        return m;
    }

    std::uint64_t at(unsigned core) const { return t_[core]; }

    void local(unsigned core, std::uint64_t cyc) { t_[core] += cyc; }

    /** Waits the core out until @p when (idle gap returned). */
    std::uint64_t
    waitUntil(unsigned core, std::uint64_t when)
    {
        if (t_[core] >= when)
            return 0;
        const std::uint64_t idle = when - t_[core];
        t_[core] = when;
        return idle;
    }

    /** Global event (commit, abort, serialized access): every lane
     *  waits for the slowest, then all advance together. */
    void
    global(std::uint64_t cyc)
    {
        const std::uint64_t m = maxT() + cyc;
        for (std::uint64_t& v : t_)
            v = m;
    }

  private:
    std::vector<std::uint64_t> t_;
};

class Engine
{
  public:
    Engine(const sim::MachineConfig& cfg, const KvServeParams& p)
        : cfg_(cfg), p_(p), sys_(eq_, cfg), lanes_(cfg.numCores),
          zipf_(p.keys, p.zipfTheta),
          onLen_(2.0, 512.0, p.burstAlpha <= 1e-3 ? 1.5 : p.burstAlpha)
    {
        if (p_.tableBuckets == 0 || p_.keys == 0 || p_.ringCap == 0) {
            std::fprintf(stderr, "FATAL: kv_serve: empty table, key "
                                 "space, or ring\n");
            std::abort();
        }
        runtime::SimAllocator salloc;
        tableBase_ = salloc.allocLines(p_.tableBuckets);
    }

    KvServeResult run();

  private:
    Addr headerAddr(std::uint64_t bucket) const
    {
        return tableBase_ + bucket * kLineBytes;
    }

    std::uint64_t bucketOf(std::uint64_t key) const
    {
        return mix64(key) % p_.tableBuckets;
    }

    /** Slot word of @p key inside its bucket line: words 1..7 (word 0
     *  is the bucket header). Collisions are absorbed by the oracle,
     *  which is keyed by slot address, not by key. */
    Addr slotAddr(std::uint64_t key) const
    {
        const std::uint64_t slot = 1 + mix64(key * 0x9e3779b97f4a7c15ull + 5) % 7;
        return headerAddr(bucketOf(key)) + slot * 8;
    }

    /** Deterministic store payload: independent of loaded values, so
     *  replays after aborts are idempotent and a host-side oracle can
     *  predict the final image from the commit order alone. */
    static std::uint64_t valueOf(std::uint32_t rid, unsigned i)
    {
        return mix64((std::uint64_t{rid} << 8) | i);
    }

    void buildBody(Flight& f) const;
    void refillRing(unsigned c);
    bool activate(unsigned c, Vid vid);
    void runBatch(const std::vector<unsigned>& active);
    void commitFlight(Flight& f);

    const sim::MachineConfig cfg_;
    const KvServeParams p_;
    sim::EventQueue eq_;
    sim::CacheSystem sys_;
    LaneClock lanes_;
    sim::ZipfSampler zipf_;
    sim::BoundedParetoSampler onLen_;
    Addr tableBase_ = 0;
    std::vector<runtime::ScratchArena> arenas_;
    std::vector<CoreLane> cores_;
    std::vector<sim::Rng> rngs_;
    std::uint32_t nextRid_ = 0;
    KvServeResult res_;
    std::unordered_map<Addr, std::uint64_t> oracle_;
};

void
Engine::buildBody(Flight& f) const
{
    const Request& r = f.req;
    unsigned n = 0;
    auto load = [&](Addr a) { f.body[n++] = {false, a, 0}; };
    auto store = [&](Addr a, std::uint64_t v) {
        f.body[n++] = {true, a, v};
    };
    switch (r.kind) {
    case ReqKind::PointGet:
        load(headerAddr(bucketOf(r.key)));
        load(slotAddr(r.key));
        break;
    case ReqKind::Rmw:
        load(headerAddr(bucketOf(r.key)));
        load(slotAddr(r.key));
        store(slotAddr(r.key), valueOf(r.rid, 0));
        break;
    case ReqKind::Transfer:
        load(slotAddr(r.key));
        load(slotAddr(r.key2));
        store(slotAddr(r.key), valueOf(r.rid, 0));
        store(slotAddr(r.key2), valueOf(r.rid, 1));
        break;
    case ReqKind::Scan: {
        // Strided range update: read the header and rewrite slot 1 of
        // scanBuckets buckets spaced scanStride apart. The stride
        // concentrates the speculative set onto few cache sets — the
        // capacity pressure that separates bounded from unbounded
        // machines (kv_serve.hh).
        const std::uint64_t b0 = bucketOf(r.key);
        const unsigned span =
            std::min<unsigned>(p_.scanBuckets, 12);
        const std::uint64_t stride =
            p_.scanStride == 0 ? 1 : p_.scanStride;
        for (unsigned j = 0; j < span; ++j) {
            const std::uint64_t b =
                (b0 + j * stride) % p_.tableBuckets;
            load(headerAddr(b));
            store(headerAddr(b) + 8, valueOf(r.rid, j));
        }
        break;
    }
    }
    f.len = n;
    // Distinct-line footprint: decides the limited-set non-spec path.
    Addr lines[kMaxBody];
    unsigned nl = 0;
    for (unsigned i = 0; i < n; ++i) {
        const Addr la = f.body[i].addr & ~static_cast<Addr>(kLineBytes - 1);
        bool seen = false;
        for (unsigned j = 0; j < nl; ++j)
            seen = seen || lines[j] == la;
        if (!seen)
            lines[nl++] = la;
    }
    f.footprintLines = nl;
}

void
Engine::refillRing(unsigned c)
{
    CoreLane& cl = cores_[c];
    sim::Rng& rng = rngs_[c];
    const unsigned n = static_cast<unsigned>(
        std::min<std::uint64_t>(p_.ringCap, cl.toGenerate));
    if (n == 0)
        return;
    for (unsigned i = 0; i < n; ++i) {
        // ON/OFF arrival process: requests of an ON period arrive with
        // their gaps compressed by the duty factor; the matching OFF
        // gap is inserted up front, so the long-run offered load is
        // arrivalMeanGap per request regardless of duty.
        if (cl.onLeft == 0) {
            cl.onLeft = static_cast<std::uint64_t>(
                std::ceil(onLen_(rng)));
            if (p_.burstDuty < 1.0)
                cl.genClock += static_cast<std::uint64_t>(
                    static_cast<double>(cl.onLeft) *
                    static_cast<double>(p_.arrivalMeanGap) *
                    (1.0 - p_.burstDuty));
        }
        --cl.onLeft;
        const double jitter = 0.5 + rng.uniform();
        cl.genClock += static_cast<std::uint64_t>(
            static_cast<double>(p_.arrivalMeanGap) * p_.burstDuty *
            jitter);

        Request& q = cl.ring[i];
        q.arrival = cl.genClock;
        q.rid = nextRid_++;
        q.key = zipf_(rng);
        const double u = rng.uniform();
        if (u < p_.scanShare) {
            q.kind = ReqKind::Scan;
        } else if (u < p_.scanShare + p_.transferShare) {
            q.kind = ReqKind::Transfer;
            q.key2 = zipf_(rng);
        } else {
            q.kind = rng.chance(p_.writeRatio) ? ReqKind::Rmw
                                               : ReqKind::PointGet;
        }
    }
    cl.ringHead = 0;
    cl.ringCount = n;
    cl.toGenerate -= n;
    ++res_.serve.batches;
}

/** Dequeues the next request of core @p c into its flight. Returns
 *  false when the core is out of work. */
bool
Engine::activate(unsigned c, Vid vid)
{
    CoreLane& cl = cores_[c];
    if (cl.ringCount == 0)
        refillRing(c);
    if (cl.ringCount == 0)
        return false;
    Flight& f = *cl.fl;
    f.req = cl.ring[cl.ringHead++];
    --cl.ringCount;
    f.progress = 0;
    f.vid = vid;
    f.active = true;
    f.committed = false;
    f.underLock = false;
    buildBody(f);
    f.nonSpec = cfg_.txMode == TxMode::LimitedSet &&
        f.footprintLines > cfg_.limitedSetK;
    ++res_.serve.requests;
    ++res_.serve.issued;
    if (f.nonSpec)
        ++res_.serve.nonSpecFallbacks;
    // Open loop: a request cannot start before it arrives. The queue
    // delay (arrival long before the lane got free) is what shows up
    // in the tail percentiles under bursts.
    res_.serve.idleCycles += lanes_.waitUntil(c, f.req.arrival);
    return true;
}

void
Engine::commitFlight(Flight& f)
{
    eq_.tryBypass(lanes_.maxT());
    lanes_.global(sys_.commit(f.vid));
    f.committed = true;
    ++res_.serve.committed;
    const std::uint64_t lat = lanes_.maxT() - f.req.arrival;
    res_.serve.latency.record(lat);
    if (p_.recordLatencies)
        res_.recordedLatencies.push_back(lat);
    if (p_.oracleCheck)
        for (unsigned i = 0; i < f.len; ++i)
            if (f.body[i].isStore)
                oracle_[f.body[i].addr] = f.body[i].value;
}

/**
 * Runs one batch (one transaction per active core, consecutive VIDs)
 * to full commitment. Round-robins the bodies; a global flush rewinds
 * every speculative transaction except the best-effort fallback-lock
 * holder and non-speculative limited-set overflows (their progress is
 * committed state). After drainAfter flushes, non-best-effort modes
 * switch to draining the oldest transaction alone, which cannot lose
 * a conflict and therefore guarantees forward progress.
 */
void
Engine::runBatch(const std::vector<unsigned>& active)
{
    std::uint64_t flushes = 0;
    bool drain = false;

    for (;;) {
        bool all = true;
        for (unsigned c : active)
            all = all && cores_[c].fl->committed;
        if (all)
            break;
        if (flushes >= p_.maxAttempts) {
            std::fprintf(stderr,
                         "FATAL: kv_serve batch stuck after %llu "
                         "flushes (mode=%s)\n",
                         static_cast<unsigned long long>(flushes),
                         txModeName(cfg_.txMode));
            std::abort();
        }
        if (!drain && flushes >= p_.drainAfter &&
            cfg_.txMode != TxMode::BestEffort) {
            drain = true;
            ++res_.serve.drains;
        }

        for (unsigned c : active) {
            Flight& f = *cores_[c].fl;
            if (f.committed || f.progress >= f.len)
                continue;
            // Drain mode and the non-spec overflow path both execute
            // only at the head of the VID order: drained transactions
            // so they run alone, non-spec ones so their immediately
            // visible writes land in commit order.
            if ((drain || f.nonSpec) && f.vid != sys_.lcVid() + 1)
                continue;
            const TxInstr& in = f.body[f.progress];
            const Vid accessVid = f.nonSpec ? kNonSpecVid : f.vid;
            // The interconnect stamps fabric contention from the
            // event-queue clock; this engine schedules no events, so
            // jump the clock to the issuing lane's time (a zero-event
            // bypass — the queue is empty). Without this, `now` never
            // moves and every bus acquire queues behind the whole
            // run's accumulated occupancy: makespan goes quadratic in
            // the request count.
            eq_.tryBypass(lanes_.at(c));
            const std::uint64_t fbBefore =
                sys_.txPolicy().stats().fallbackAccesses;
            const std::uint64_t abortsBefore = sys_.stats().aborts;
            sim::AccessResult r = in.isStore
                ? sys_.store(c, in.addr, in.value, 8, accessVid)
                : sys_.load(c, in.addr, 8, accessVid);
            const bool serialized =
                sys_.txPolicy().stats().fallbackAccesses > fbBefore;
            if (serialized)
                lanes_.global(r.latency);
            else
                lanes_.local(c, r.latency);
            // First serialized access: the fallback lock engaged. If
            // the body already made speculative progress, that prefix
            // is ordinary flushable state — the protocol requires the
            // holder to own no speculative lines (any other VID's
            // abort would silently discard the prefix while the
            // serialized suffix commits) — so re-execute the whole
            // request under the lock. Store values are precomputed
            // per request, so the re-run is idempotent.
            bool restarted = false;
            if (serialized && !f.underLock) {
                f.underLock = true;
                if (f.progress > 0) {
                    f.progress = 0;
                    restarted = true;
                    ++res_.serve.lockRestarts;
                }
            }
            if (sys_.stats().aborts > abortsBefore) {
                ++flushes;
                lanes_.global(0);
                const bool held = sys_.txPolicy().fallbackHeld();
                const Vid holder = sys_.txPolicy().fallbackVid();
                for (unsigned k : active) {
                    Flight& g = *cores_[k].fl;
                    if (g.committed || g.nonSpec ||
                        (held && g.vid == holder))
                        continue;
                    if (g.progress > 0 || &g == &f) {
                        g.progress = 0;
                        ++res_.serve.aborted;
                        ++res_.serve.issued;
                    }
                }
                if (!r.aborted && !restarted)
                    ++f.progress; // serialized/non-spec access landed
                break;
            }
            if (!restarted)
                ++f.progress;
        }

        // Commit every head-of-order transaction that finished;
        // commits broadcast, so they synchronize the lanes. The empty
        // commit of a non-spec overflow still advances the window.
        for (unsigned c : active) {
            Flight& f = *cores_[c].fl;
            if (f.committed || f.progress < f.len ||
                f.vid != sys_.lcVid() + 1)
                continue;
            commitFlight(f);
        }
    }
}

KvServeResult
Engine::run()
{
    const auto t0 = std::chrono::steady_clock::now();
    const unsigned n = cfg_.numCores;
    arenas_.reserve(n);
    cores_.resize(n);
    rngs_.reserve(n);
    for (unsigned c = 0; c < n; ++c) {
        arenas_.emplace_back(std::size_t{1} << 13);
        CoreLane& cl = cores_[c];
        cl.ring = arenas_.back().alloc<Request>(p_.ringCap);
        cl.fl = arenas_.back().alloc<Flight>();
        cl.toGenerate = p_.requests / n + (c < p_.requests % n);
        rngs_.emplace_back(p_.seed * 0x9e3779b97f4a7c15ull + c + 1);
    }
    if (p_.recordLatencies)
        res_.recordedLatencies.reserve(p_.requests);

    const Vid maxVid = cfg_.maxVid();
    Vid nextVid = 1;
    std::vector<unsigned> active;
    active.reserve(n);

    for (;;) {
        // Between batches everything is committed, so a window
        // rollover is always legal here (§4.6).
        if (nextVid + n - 1 > maxVid) {
            eq_.tryBypass(lanes_.maxT());
            lanes_.global(sys_.vidReset());
            ++res_.serve.windowResets;
            nextVid = 1;
        }
        active.clear();
        Vid vid = nextVid;
        for (unsigned c = 0; c < n; ++c)
            if (activate(c, vid)) {
                active.push_back(c);
                ++vid;
            }
        if (active.empty())
            break;
        runBatch(active);
        nextVid = vid;
    }

    res_.makespan = lanes_.maxT();
    res_.sys = sys_.stats();
    res_.tx = sys_.txPolicy().stats();
    for (const runtime::ScratchArena& a : arenas_)
        res_.scratchHighWater += a.highWater();
    sys_.checkInvariants();

    if (p_.oracleCheck) {
        sys_.flushDirtyToMemory();
        for (const auto& [addr, want] : oracle_) {
            const std::uint64_t got = sys_.memory().read(addr, 8);
            if (got != want) {
                std::fprintf(
                    stderr,
                    "kv_serve: oracle mismatch at %llx: memory %llx, "
                    "oracle %llx\n",
                    static_cast<unsigned long long>(addr),
                    static_cast<unsigned long long>(got),
                    static_cast<unsigned long long>(want));
                res_.oracleOk = false;
            }
        }
    }

    res_.hostSeconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      t0)
            .count();
    return res_;
}

} // namespace

KvServeResult
runKvServe(const sim::MachineConfig& cfg, const KvServeParams& p)
{
    Engine e(cfg, p);
    return e.run();
}

} // namespace hmtx::workloads
