/**
 * @file
 * 197.parser proxy: dictionary-driven sentence parsing.
 */

#ifndef HMTX_WORKLOADS_PARSER_HH
#define HMTX_WORKLOADS_PARSER_HH

#include "workloads/worklist.hh"

namespace hmtx::workloads
{

/**
 * The link-grammar parser looks every word of a sentence up in a
 * large hash dictionary and then links word pairs. Each proxy
 * iteration parses one sentence: per word, a hash-bucket chain walk
 * through the shared read-only dictionary, then a linkage pass that
 * scores adjacent pairs and writes a per-sentence parse array. Chain
 * walks over a shuffled node pool give the irregular access pattern;
 * Table 1 shows parser with 100% hot-loop coverage and large per-TX
 * access counts, which the sentence length reproduces.
 */
class ParserWorkload : public ChasedListWorkload
{
  public:
    struct Params
    {
        std::uint64_t sentences = 32;
        std::uint64_t wordsPerSentence = 1100;
        unsigned buckets = 1024;
        unsigned vocabulary = 1200;
        std::uint64_t seed = 197;
    };

    /** Constructs with default parameters. */
    ParserWorkload();
    explicit ParserWorkload(Params p) : p_(p) {}

    std::string name() const override { return "197.parser"; }
    std::uint64_t iterations() const override { return p_.sentences; }
    double hotLoopFraction() const override { return 1.0; }
    unsigned minRwSetPerIter() const override { return 2; }

    void setup(runtime::Machine& m) override;
    sim::Task<void> stage2(runtime::MemIf& mem,
                           std::uint64_t iter) override;
    std::uint64_t checksum(runtime::Machine& m) override;

  private:
    /** Dictionary node layout: [0]=next, [8]=wordId, [16]=lexinfo. */
    Params p_;
    Addr buckets_ = 0;   // read-only bucket heads
    Addr sentences_ = 0; // word-id arrays
    IterRegion parses_;  // per-sentence output
};

} // namespace hmtx::workloads

#endif // HMTX_WORKLOADS_PARSER_HH
