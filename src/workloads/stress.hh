/**
 * @file
 * Configurable stress workload for failure-injection testing: a
 * pipeline loop with tunable footprint, branchiness and (crucially)
 * genuine transient dependence violations at a chosen rate.
 */

#ifndef HMTX_WORKLOADS_STRESS_HH
#define HMTX_WORKLOADS_STRESS_HH

#include <algorithm>
#include <set>
#include <vector>

#include "workloads/worklist.hh"

namespace hmtx::workloads
{

/**
 * Each iteration hashes over a private scratch region (footprint and
 * compute knobs) and, with probability conflictRate, commits a real
 * crime once: its stage 2 stores to a shared line that later
 * iterations' stage 1 reads every iteration, after dawdling long
 * enough for those reads to have happened. Every such violation
 * must be detected by the HMTX system and replayed; conflicts do not
 * recur on replay (transient misspeculation, as with control-flow
 * speculation). The final checksum must equal the sequential run's
 * regardless of how many aborts occurred.
 */
class StressWorkload : public ChasedListWorkload
{
  public:
    struct Params
    {
        std::uint64_t iterations = 64;
        /** 64-bit words hashed per iteration (footprint). */
        unsigned scratchWords = 48;
        /** Data-dependent branches per iteration. */
        unsigned branches = 6;
        /** Probability that an iteration injects one violation. */
        double conflictRate = 0.0;
        std::uint64_t seed = 7777;
    };

    /** Constructs with default parameters. */
    StressWorkload();
    explicit StressWorkload(Params p) : p_(p) {}

    std::string name() const override { return "stress"; }
    std::uint64_t iterations() const override
    {
        return p_.iterations;
    }
    unsigned minRwSetPerIter() const override { return 1; }

    void setup(runtime::Machine& m) override;
    sim::Task<void> stage1(runtime::MemIf& mem,
                           std::uint64_t iter) override;
    sim::Task<void> stage2(runtime::MemIf& mem,
                           std::uint64_t iter) override;
    std::uint64_t checksum(runtime::Machine& m) override;

    /** Iterations that injected a violation this run. */
    std::size_t
    conflictsInjected() const
    {
        return static_cast<std::size_t>(
            std::count(fired_.begin(), fired_.end(), char{1}));
    }

  private:
    Params p_;
    Addr shared_ = 0;
    IterRegion scratch_;
    IterRegion results_;
    std::set<std::uint64_t> conflictIters_;
    /** One fired flag per iteration (pre-sized in setup: stage bodies
     *  may run on parallel-engine workers, so they only ever touch
     *  their own iteration's element — never the container shape). */
    std::vector<char> fired_;
};

} // namespace hmtx::workloads

#endif // HMTX_WORKLOADS_STRESS_HH
