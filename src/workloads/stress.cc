#include "workloads/stress.hh"

#include "sim/rng.hh"

namespace hmtx::workloads
{

StressWorkload::StressWorkload() : p_() {}

void
StressWorkload::setup(runtime::Machine& m)
{
    shared_ = m.heap().allocLines(1);
    scratch_.init(m, p_.iterations, p_.scratchWords);
    results_.init(m, p_.iterations, 1);

    // Pre-draw which iterations misspeculate so sequential and
    // parallel runs of separate instances agree on the data (the
    // injected store only fires under parallel execution's first
    // attempt and is excluded from the output).
    sim::Rng rng(p_.seed);
    conflictIters_.clear();
    fired_.assign(p_.iterations, 0);
    for (std::uint64_t i = 2; i + 2 < p_.iterations; ++i)
        if (rng.uniform() < p_.conflictRate)
            conflictIters_.insert(i);

    auto& mem = m.sys().memory();
    for (std::uint64_t i = 0; i < p_.iterations; ++i)
        for (unsigned w = 0; w < p_.scratchWords; ++w)
            mem.write(scratch_.at(i, w), mix64(p_.seed ^ (i << 8) ^ w),
                      8);

    std::vector<std::uint64_t> payloads(p_.iterations);
    for (std::uint64_t i = 0; i < p_.iterations; ++i)
        payloads[i] = i;
    initWorkList(m, payloads);
}

sim::Task<void>
StressWorkload::stage1(runtime::MemIf& mem, std::uint64_t iter)
{
    // The speculated-away dependence: stage 1 reads the shared flag
    // far ahead of where any stage 2 might write it.
    co_await mem.load(shared_);
    co_await ChasedListWorkload::stage1(mem, iter);
}

sim::Task<void>
StressWorkload::stage2(runtime::MemIf& mem, std::uint64_t iter)
{
    std::uint64_t i = co_await fetchWork(mem, iter);

    std::uint64_t h = p_.seed ^ i;
    for (unsigned w = 0; w < p_.scratchWords; ++w) {
        std::uint64_t v = co_await mem.load(scratch_.at(i, w));
        h = mix64(h + v);
        if (p_.branches > 0 &&
            w % std::max(1u, p_.scratchWords / p_.branches) == 0) {
            co_await mem.branch(0xB00 + 4 * (w & 3), (h & 3) != 0);
        }
        co_await mem.store(scratch_.at(i, w), h);
    }
    co_await mem.store(results_.at(i), h);

    if (conflictIters_.count(iter) && fired_[iter] == 0) {
        fired_[iter] = 1;
        // Let later iterations' stage 1 read the shared line first,
        // then violate the dependence. Detected, aborted, replayed —
        // and not repeated on the replay.
        co_await mem.compute(2500);
        co_await mem.store(shared_, 0xBAD0000 + iter);
    }
}

std::uint64_t
StressWorkload::checksum(runtime::Machine& m)
{
    std::uint64_t s = 0;
    for (std::uint64_t i = 0; i < p_.iterations; ++i)
        s = mix64(s ^ m.sys().memory().read(results_.at(i), 8));
    return s;
}

} // namespace hmtx::workloads
