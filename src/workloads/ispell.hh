/**
 * @file
 * ispell (MiBench) proxy: hash-dictionary spell checking with the
 * smallest transactions of Table 1.
 */

#ifndef HMTX_WORKLOADS_ISPELL_HH
#define HMTX_WORKLOADS_ISPELL_HH

#include "workloads/worklist.hh"

namespace hmtx::workloads
{

/**
 * ispell checks each input word against a hashed dictionary and, on a
 * miss, probes a few near-miss variants (transpositions, deletions).
 * One word per iteration gives the tiny per-TX access counts Table 1
 * reports (tens of accesses), which makes ispell the stress test for
 * per-transaction overheads rather than validation volume.
 */
class IspellWorkload : public ChasedListWorkload
{
  public:
    struct Params
    {
        std::uint64_t words = 400;
        unsigned buckets = 2048;
        unsigned vocabulary = 1024;
        /** Fraction of input words that are misspelled. */
        double missRate = 0.04;
        std::uint64_t seed = 1011;
    };

    /** Constructs with default parameters. */
    IspellWorkload();
    explicit IspellWorkload(Params p) : p_(p) {}

    std::string name() const override { return "ispell"; }
    std::uint64_t iterations() const override { return p_.words; }
    double hotLoopFraction() const override { return 0.865; }
    unsigned minRwSetPerIter() const override { return 1; }

    void setup(runtime::Machine& m) override;
    sim::Task<void> stage2(runtime::MemIf& mem,
                           std::uint64_t iter) override;
    std::uint64_t checksum(runtime::Machine& m) override;

  private:
    sim::Task<std::uint64_t> probe(runtime::MemIf& mem,
                                   std::uint64_t word, Addr pc);

    Params p_;
    Addr buckets_ = 0; // read-only dictionary
    IterRegion verdicts_;
};

} // namespace hmtx::workloads

#endif // HMTX_WORKLOADS_ISPELL_HH
