#include "workloads/all.hh"

#include "workloads/alvinn.hh"
#include "workloads/bzip2.hh"
#include "workloads/crafty.hh"
#include "workloads/gzip.hh"
#include "workloads/hmmer.hh"
#include "workloads/ispell.hh"
#include "workloads/li.hh"
#include "workloads/parser.hh"

namespace hmtx::workloads
{

std::vector<std::unique_ptr<runtime::LoopWorkload>>
makeSuite()
{
    std::vector<std::unique_ptr<runtime::LoopWorkload>> v;
    v.push_back(std::make_unique<AlvinnWorkload>());
    v.push_back(std::make_unique<LiWorkload>());
    v.push_back(std::make_unique<GzipWorkload>());
    v.push_back(std::make_unique<CraftyWorkload>());
    v.push_back(std::make_unique<ParserWorkload>());
    v.push_back(std::make_unique<Bzip2Workload>());
    v.push_back(std::make_unique<HmmerWorkload>());
    v.push_back(std::make_unique<IspellWorkload>());
    return v;
}

std::unique_ptr<runtime::LoopWorkload>
makeByName(const std::string& name)
{
    if (name == "052.alvinn")
        return std::make_unique<AlvinnWorkload>();
    if (name == "130.li")
        return std::make_unique<LiWorkload>();
    if (name == "164.gzip")
        return std::make_unique<GzipWorkload>();
    if (name == "186.crafty")
        return std::make_unique<CraftyWorkload>();
    if (name == "197.parser")
        return std::make_unique<ParserWorkload>();
    if (name == "256.bzip2")
        return std::make_unique<Bzip2Workload>();
    if (name == "456.hmmer")
        return std::make_unique<HmmerWorkload>();
    if (name == "ispell")
        return std::make_unique<IspellWorkload>();
    return nullptr;
}

bool
hasSmtxComparison(const std::string& name)
{
    // §6.1: 6 of the 8 benchmarks were also evaluated by SMTX [29];
    // 186.crafty and ispell have no SMTX comparison.
    return name != "186.crafty" && name != "ispell";
}

} // namespace hmtx::workloads
