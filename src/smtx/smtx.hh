/**
 * @file
 * Software multithreaded transactions (SMTX) baseline, modeling the
 * system of Raman et al. [29] that the paper compares against (§2.3,
 * §6): pipeline workers log speculative accesses and forward
 * uncommitted values through software queues to a commit process that
 * occupies a dedicated core and validates/applies everything in
 * program order.
 *
 * Substitution note (see DESIGN.md): the real SMTX isolates workers in
 * forked copy-on-write processes. Here workers share the simulated
 * memory directly — benchmark runs are abort-free (only
 * high-confidence speculation, §6.3), so values are identical — while
 * the *costs* that make SMTX slow are modeled faithfully: one queue
 * record per validated access, one forward per speculative store, a
 * commit process that re-touches every logged location, and the loss
 * of one core to that process.
 */

#ifndef HMTX_SMTX_SMTX_HH
#define HMTX_SMTX_SMTX_HH

#include <cstdint>
#include <deque>
#include <memory>
#include <vector>

#include "runtime/executors.hh"
#include "runtime/memif.hh"
#include "runtime/queue.hh"
#include "runtime/workload.hh"

namespace hmtx::smtx
{

/** How much speculation validation the SMTX version performs (§6.1). */
enum class RwSetMode
{
    /** Expert-minimized read/write sets: only the accesses the
     *  workload declares via minRwSetPerIter() are logged. */
    Minimal,
    /** Every load and store inside the transaction is logged — the
     *  maximal validation the HMTX runs perform. */
    Maximal,
};

/** One logged speculative access, carried host-side alongside the
 *  simulated queue traffic. */
struct SmtxRecord
{
    Addr addr = 0;
    std::uint64_t value = 0;
    bool isStore = false;
    bool endOfIter = false;
};

/**
 * The SMTX runtime: per-producer commit queues, per-worker forwarding
 * queues, and the commit process loop.
 */
class SmtxRuntime
{
  public:
    /**
     * @param m        machine (HMTX extensions disabled)
     * @param workers  replicated worker count
     * @param mode     validation mode
     */
    SmtxRuntime(runtime::Machine& m, unsigned workers, RwSetMode mode);

    RwSetMode mode() const { return mode_; }

    /**
     * Logs one speculative access from producer @p p (0 = stage 1,
     * 1 + w = worker w): a queue push to the commit process plus a few
     * bookkeeping cycles.
     */
    sim::Task<void> log(runtime::ThreadContext& tc, unsigned p,
                        Addr a, std::uint64_t v, bool isStore);

    /** Forwards an uncommitted store to worker @p w's version queue. */
    sim::Task<void> forward(runtime::ThreadContext& tc, unsigned w,
                            Addr a, std::uint64_t v);

    /** Consumes @p count forwarded values on worker @p w, installing
     *  each into the software version buffer. */
    sim::Task<void> consumeForwards(runtime::ThreadContext& tc,
                                    unsigned w, std::uint64_t count);

    /** Marks the end of producer @p p's part of iteration. */
    sim::Task<void> endIter(runtime::ThreadContext& tc, unsigned p);

    /**
     * The commit process (§2.3): drains, in original iteration order,
     * stage 1's records and then the owning worker's records for each
     * iteration, re-touching each location to validate and apply.
     *
     * @param pipeline true for DSWP-style runs (stage 1 + workers);
     *                 false for DOALL runs (workers only)
     */
    sim::Task<void> commitProcess(runtime::ThreadContext& tc,
                                  std::uint64_t iterations,
                                  bool pipeline);

    /**
     * Seeds the commit process's memory image with a snapshot of the
     * committed state (the fork point of real SMTX). Call after
     * workload setup, before execution.
     */
    void snapshotCommitImage();

    /**
     * Value-based misspeculation checks that failed at the commit
     * process: a logged load whose value differs from the committed
     * image at its point in program order (§2.3). Zero on every
     * abort-free run.
     */
    std::uint64_t misspeculations() const { return misspecs_; }

    /** Total records pushed through the commit queues. */
    std::uint64_t records() const { return records_; }

    /** Total uncommitted values forwarded between stages. */
    std::uint64_t forwards() const { return forwards_; }

  private:
    sim::Task<SmtxRecord> pop(runtime::ThreadContext& tc, unsigned p);

    runtime::Machine& m_;
    unsigned workers_;
    RwSetMode mode_;
    /** commitQs_[0] = stage 1, commitQs_[1 + w] = worker w. */
    std::vector<std::unique_ptr<runtime::SimQueue>> commitQs_;
    std::vector<std::deque<SmtxRecord>> sideData_;
    std::vector<std::unique_ptr<runtime::SimQueue>> forwardQs_;
    std::uint64_t records_ = 0;
    std::uint64_t forwards_ = 0;
    std::uint64_t misspecs_ = 0;
};

/**
 * MemIf that performs every access non-speculatively and layers the
 * SMTX validation costs on top per the runtime's mode.
 */
class SmtxMem final : public runtime::MemIf
{
  public:
    /**
     * @param tc       executing thread context
     * @param rt       SMTX runtime
     * @param producer commit-queue producer index (0 = stage 1)
     * @param pendingForwards where stage 1 collects store addresses to
     *        forward to its worker after its part of the iteration
     *        (batched so the consumer can drain concurrently);
     *        nullptr for workers
     */
    SmtxMem(runtime::ThreadContext& tc, SmtxRuntime& rt,
            unsigned producer, std::vector<Addr>* pendingForwards)
        : tc_(tc), rt_(rt), producer_(producer),
          pendingForwards_(pendingForwards)
    {}

    sim::Task<std::uint64_t> load(Addr a, unsigned size = 8) override;
    sim::Task<void> store(Addr a, std::uint64_t v,
                          unsigned size = 8) override;
    sim::Task<void> compute(Cycles c) override;
    sim::Task<bool> branch(Addr pc, bool taken) override;

  private:
    runtime::ThreadContext& tc_;
    SmtxRuntime& rt_;
    unsigned producer_;
    std::vector<Addr>* pendingForwards_;
};

/** Drives a workload under SMTX. */
class SmtxRunner
{
  public:
    /**
     * Runs the workload's paradigm under SMTX on @p cfg's cores: the
     * commit process takes the last core; DSWP paradigms place stage 1
     * on core 0 and workers in between; DOALL uses all remaining cores
     * as workers.
     */
    static runtime::ExecResult run(runtime::LoopWorkload& wl,
                                   const sim::MachineConfig& cfg,
                                   RwSetMode mode);
};

} // namespace hmtx::smtx

#endif // HMTX_SMTX_SMTX_HH
