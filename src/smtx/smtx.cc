#include "smtx/smtx.hh"

#include "runtime/thread_context.hh"

namespace hmtx::smtx
{

namespace
{

/** Bookkeeping cycles per logged record at the producer (hashing the
 *  address, filling the entry). */
constexpr Cycles kLogCpuCycles = 4;

/** Bookkeeping cycles per record at the commit process. */
constexpr Cycles kCommitCpuCycles = 2;

/** Cycles to look an address up in the software version buffer when
 *  consuming a forwarded value. */
constexpr Cycles kVersionLookupCycles = 6;

/**
 * The commit process lives in its own forked process in real SMTX: it
 * validates and applies records against the *committed* memory image,
 * not the worker's working copy. The simulator models that separate
 * image at a fixed address offset, which keeps the commit core's
 * cache/bus traffic realistic without letting mid-transaction replays
 * interfere with a worker's in-flight read-modify-write sequences.
 */
constexpr Addr kCommitImageOffset = Addr{1} << 40;

/** STM read/write barrier costs paid on *every* transactional access
 *  regardless of validation mode: the software MTX must check the
 *  local version buffer before a load and enter stores into it
 *  ("high runtime overheads" of STM, §2.3 / Cascaval et al. [4]). */
constexpr Cycles kStmReadBarrier = 2;
constexpr Cycles kStmWriteBarrier = 4;

} // namespace

SmtxRuntime::SmtxRuntime(runtime::Machine& m, unsigned workers,
                         RwSetMode mode)
    : m_(m), workers_(workers), mode_(mode)
{
    // Commit queues are sized generously: SMTX batches aggressively,
    // and a tiny queue would serialize workers on the commit process
    // even in the minimal mode.
    for (unsigned p = 0; p < 1 + workers; ++p) {
        commitQs_.push_back(
            std::make_unique<runtime::SimQueue>(m, 64));
        sideData_.emplace_back();
    }
    for (unsigned w = 0; w < workers; ++w)
        forwardQs_.push_back(
            std::make_unique<runtime::SimQueue>(m, 64));
}

sim::Task<void>
SmtxRuntime::log(runtime::ThreadContext& tc, unsigned p, Addr a,
                 std::uint64_t v, bool isStore)
{
    ++records_;
    co_await tc.compute(kLogCpuCycles);
    sideData_[p].push_back({a, v, isStore, false});
    co_await commitQs_[p]->produce(tc, a);
}

sim::Task<void>
SmtxRuntime::forward(runtime::ThreadContext& tc, unsigned w, Addr a,
                     std::uint64_t v)
{
    ++forwards_;
    co_await tc.compute(kLogCpuCycles);
    (void)v;
    co_await forwardQs_[w]->produce(tc, a);
}

sim::Task<void>
SmtxRuntime::consumeForwards(runtime::ThreadContext& tc, unsigned w,
                             std::uint64_t count)
{
    for (std::uint64_t i = 0; i < count; ++i) {
        std::uint64_t a = co_await forwardQs_[w]->consume(tc);
        (void)a;
        // Install into the worker's software version buffer.
        co_await tc.compute(kVersionLookupCycles);
    }
}

sim::Task<void>
SmtxRuntime::endIter(runtime::ThreadContext& tc, unsigned p)
{
    sideData_[p].push_back({0, 0, false, true});
    co_await commitQs_[p]->produce(tc, ~std::uint64_t{0});
}

sim::Task<SmtxRecord>
SmtxRuntime::pop(runtime::ThreadContext& tc, unsigned p)
{
    std::uint64_t a = co_await commitQs_[p]->consume(tc);
    (void)a;
    SmtxRecord rec = sideData_[p].front();
    sideData_[p].pop_front();
    co_return rec;
}

void
SmtxRuntime::snapshotCommitImage()
{
    // The commit process forked from the main process: its image
    // starts as an exact copy of the committed state. Reserving room
    // for the copy up front pins the table (no rehash), so the image
    // can be written during the walk itself instead of staging every
    // line through a temporary vector; lines the walk may then visit
    // at >= kCommitImageOffset are skipped by the filter.
    auto& mem = m_.sys().memory();
    mem.reserveLines(2 * mem.touchedLines());
    mem.forEachLine([&](Addr a, const sim::LineData& d) {
        if (a < kCommitImageOffset)
            mem.writeLine(a + kCommitImageOffset, d);
    });
}

sim::Task<void>
SmtxRuntime::commitProcess(runtime::ThreadContext& tc,
                           std::uint64_t iterations, bool pipeline)
{
    for (std::uint64_t i = 0; i < iterations; ++i) {
        if (pipeline) {
            // Stage 1's part of transaction i commits first...
            for (;;) {
                SmtxRecord rec = co_await pop(tc, 0);
                if (rec.endOfIter)
                    break;
                co_await tc.compute(kCommitCpuCycles);
                // Validate (loads) / apply (stores) against the
                // committed image (value-based validation, §2.3).
                if (rec.isStore) {
                    co_await tc.store(rec.addr + kCommitImageOffset,
                                      rec.value);
                } else {
                    std::uint64_t v = co_await tc.load(
                        rec.addr + kCommitImageOffset);
                    if (v != rec.value)
                        ++misspecs_;
                }
            }
        }
        // ...then the owning worker's part.
        unsigned p = 1 + (i % workers_);
        for (;;) {
            SmtxRecord rec = co_await pop(tc, p);
            if (rec.endOfIter)
                break;
            co_await tc.compute(kCommitCpuCycles);
            if (rec.isStore) {
                co_await tc.store(rec.addr + kCommitImageOffset,
                                  rec.value);
            } else {
                std::uint64_t v = co_await tc.load(
                    rec.addr + kCommitImageOffset);
                if (v != rec.value)
                    ++misspecs_;
            }
        }
    }
}

// --- SmtxMem -------------------------------------------------------------

sim::Task<std::uint64_t>
SmtxMem::load(Addr a, unsigned size)
{
    co_await tc_.compute(kStmReadBarrier);
    std::uint64_t v = co_await tc_.load(a, size);
    if (rt_.mode() == RwSetMode::Maximal)
        co_await rt_.log(tc_, producer_, a, v, false);
    co_return v;
}

sim::Task<void>
SmtxMem::store(Addr a, std::uint64_t v, unsigned size)
{
    co_await tc_.compute(kStmWriteBarrier);
    co_await tc_.store(a, v, size);
    if (rt_.mode() == RwSetMode::Maximal) {
        co_await rt_.log(tc_, producer_, a, v, true);
        if (pendingForwards_)
            pendingForwards_->push_back(a);
    }
}

sim::Task<void>
SmtxMem::compute(Cycles c)
{
    co_await tc_.compute(c);
}

sim::Task<bool>
SmtxMem::branch(Addr pc, bool taken)
{
    co_return co_await tc_.branch(pc, taken) != 0;
}

// --- SmtxRunner -----------------------------------------------------------

namespace
{

constexpr std::uint64_t kDone = ~std::uint64_t{0};

struct SmtxShared
{
    SmtxShared(runtime::LoopWorkload& w, runtime::Machine& mach,
               unsigned workers, RwSetMode mode)
        : wl(w), m(mach), rt(mach, workers, mode)
    {}

    runtime::LoopWorkload& wl;
    runtime::Machine& m;
    SmtxRuntime rt;
    std::vector<std::unique_ptr<runtime::SimQueue>> workQs;
};

/** Pipeline stage 1 on core 0. */
sim::Task<void>
smtxStage1(SmtxShared& sh, unsigned workers)
{
    runtime::ThreadContext& tc = sh.m.ctx(0);
    const std::uint64_t n = sh.wl.iterations();
    const unsigned minRw = sh.wl.minRwSetPerIter();
    std::vector<Addr> pending;
    for (std::uint64_t i = 0; i < n; ++i) {
        unsigned w = i % workers;
        pending.clear();
        SmtxMem mem{tc, sh.rt, 0, &pending};
        co_await sh.wl.stage1(mem, i);
        if (sh.rt.mode() == RwSetMode::Minimal) {
            // The expert-minimized version still forwards the few
            // cross-stage values and validates them (§2.3).
            for (unsigned k = 0; k < minRw; ++k) {
                co_await sh.rt.log(tc, 0, 0x100 + 8 * k, 0, false);
                pending.push_back(0x100 + 8 * k);
            }
        }
        co_await sh.rt.endIter(tc, 0);
        // Hand the worker its iteration and forward count first so it
        // drains the forwards concurrently (no back-pressure cycle).
        co_await sh.workQs[w]->produce(tc, i);
        co_await sh.workQs[w]->produce(tc, pending.size());
        for (Addr a : pending)
            co_await sh.rt.forward(tc, w, a, 0);
    }
    for (unsigned w = 0; w < workers; ++w)
        co_await sh.workQs[w]->produce(tc, kDone);
}

/** Pipeline worker w on core 1 + w. */
sim::Task<void>
smtxWorker(SmtxShared& sh, unsigned w)
{
    runtime::ThreadContext& tc = sh.m.ctx(1 + w);
    SmtxMem mem{tc, sh.rt, 1 + w, nullptr};
    const unsigned minRw = sh.wl.minRwSetPerIter();
    for (;;) {
        std::uint64_t i = co_await sh.workQs[w]->consume(tc);
        if (i == kDone)
            break;
        std::uint64_t fwd = co_await sh.workQs[w]->consume(tc);
        // Install stage 1's forwarded uncommitted values into the
        // software version buffer before executing our part (§2.3).
        co_await sh.rt.consumeForwards(tc, w, fwd);
        co_await sh.wl.stage2(mem, i);
        if (sh.rt.mode() == RwSetMode::Minimal) {
            for (unsigned k = 0; k < minRw; ++k)
                co_await sh.rt.log(tc, 1 + w, 0x200 + 8 * k, 0, true);
        }
        co_await sh.rt.endIter(tc, 1 + w);
    }
}

/** DOALL worker w on core w. */
sim::Task<void>
smtxDoallWorker(SmtxShared& sh, unsigned w, unsigned workers)
{
    runtime::ThreadContext& tc = sh.m.ctx(w);
    SmtxMem mem{tc, sh.rt, 1 + w, nullptr};
    const std::uint64_t n = sh.wl.iterations();
    const unsigned minRw = sh.wl.minRwSetPerIter();
    for (std::uint64_t i = w; i < n; i += workers) {
        co_await sh.wl.stage1(mem, i);
        co_await sh.wl.stage2(mem, i);
        if (sh.rt.mode() == RwSetMode::Minimal) {
            for (unsigned k = 0; k < minRw; ++k)
                co_await sh.rt.log(tc, 1 + w, 0x200 + 8 * k, 0, true);
        }
        co_await sh.rt.endIter(tc, 1 + w);
    }
}

sim::Task<void>
smtxCommitTask(SmtxShared& sh, std::uint64_t iters, bool pipeline,
               CoreId core)
{
    runtime::ThreadContext& tc = sh.m.ctx(core);
    co_await sh.rt.commitProcess(tc, iters, pipeline);
}

} // namespace

runtime::ExecResult
SmtxRunner::run(runtime::LoopWorkload& wl,
                const sim::MachineConfig& cfg, RwSetMode mode)
{
    sim::MachineConfig c = cfg;
    c.hmtxEnabled = false; // commodity hardware (§2.3)

    runtime::Machine m(c);
    wl.setup(m);

    const bool pipeline = wl.paradigm() != runtime::Paradigm::Doall;
    // The commit process occupies the last core (§6.2: "SMTX requires
    // the extra commit process, taking up one core's resources").
    const unsigned workers =
        pipeline ? c.numCores - 2 : c.numCores - 1;

    SmtxShared sh(wl, m, workers, mode);
    sh.rt.snapshotCommitImage();
    if (pipeline) {
        for (unsigned w = 0; w < workers; ++w)
            sh.workQs.push_back(
                std::make_unique<runtime::SimQueue>(m, 8));
        m.spawn(smtxStage1(sh, workers));
        for (unsigned w = 0; w < workers; ++w)
            m.spawn(smtxWorker(sh, w));
    } else {
        for (unsigned w = 0; w < workers; ++w)
            m.spawn(smtxDoallWorker(sh, w, workers));
    }
    m.spawn(smtxCommitTask(sh, wl.iterations(), pipeline,
                           c.numCores - 1));
    m.run();

    runtime::ExecResult r;
    r.model = std::string("SMTX ") +
        (mode == RwSetMode::Maximal ? "max R/W" : "min R/W") + " x" +
        std::to_string(workers);
    r.cycles = m.now();
    m.sys().flushDirtyToMemory();
    r.checksum = wl.checksum(m);
    r.stats = m.sys().stats();
    r.indexStats = m.sys().indexStats();
    r.shardStats = m.sys().shardStats();
    r.transactions = wl.iterations();
    r.smtxMisspeculations = sh.rt.misspeculations();
    for (CoreId i = 0; i < c.numCores; ++i) {
        r.instructions += m.ctx(i).instructions();
        r.branches += m.ctx(i).predictor().branches();
        r.mispredicts += m.ctx(i).predictor().mispredicts();
    }
    return r;
}

} // namespace hmtx::smtx
