/**
 * @file
 * CacheSystem lookup half: lazy-commit reconciliation, hit testing,
 * local/remote version search, allocation/eviction, and raw data
 * movement. Per-version protocol decisions are delegated to the pure
 * engine in core/protocol.hh; fabric timing to the Interconnect.
 */

#include <algorithm>
#include <string>

#include "sim/cache_system.hh"

namespace hmtx::sim
{

// --- lookup -----------------------------------------------------------

void
CacheSystem::applyReconcile(Line& l) const
{
    applyView(l, reconcileVersion(viewOf(l), lcVid_));
}

void
CacheSystem::reconcile(Line& l)
{
    const State olds = l.state;
    const bool oldDirty = l.dirty;
    applyReconcile(l);
    if (l.state != olds || l.dirty != oldDirty)
        syncLine(l);
}

void
CacheSystem::reconcileAddr(Cache& c, Addr la)
{
    for (auto& l : c.set(la).lines)
        if (l.state != State::Invalid && l.base == la)
            reconcile(l);
}

bool
CacheSystem::hits(const Line& l, Addr la, Vid a)
{
    if (l.state == State::Invalid || l.base != la)
        return false;
    // Count the VID comparisons the hardware would perform (§4.5).
    if (isSpec(l.state)) {
        cmp_.compare(a, l.tag.mod);
        if (isSpecSuperseded(l.state))
            cmp_.compare(a, l.tag.high);
    }
    return versionServes(viewOf(l), a);
}

Line*
CacheSystem::findLocal(Cache& c, Addr la, Vid a, bool forStore)
{
    // Reconcile and probe in one pass over the set: lazy-commit
    // transitions are strictly per-line, so interleaving them with the
    // probes is equivalent to reconcileAddr() followed by a second
    // scan, at roughly half the cost.
    Line* hit = nullptr;
    for (auto& l : c.set(la).lines) {
        if (l.state != State::Invalid && l.base == la)
            reconcile(l);
        if (hit)
            continue;
        if (forStore && l.state == State::SpecShared)
            continue;
        if (hits(l, la, a))
            hit = &l;
    }
    return hit;
}

CacheSystem::RemoteHit
CacheSystem::findRemote(CoreId self, Addr la, Vid a, bool forStore)
{
    (void)forStore;
    RemoteHit rh;
    forEachSnoopTarget(la, [&](std::size_t ci) {
        Cache& c = caches_[ci];
        const bool isSelf = (ci == self);
        for (auto& l : c.set(la).lines) {
            if (l.state == State::Invalid || l.base != la)
                continue;
            reconcile(l);
            if (l.state == State::Invalid)
                continue;
            // §5.4: speculative versions that miss on VID comparison
            // assert that the line was speculatively modified.
            if (isSpecResponder(l.state) && l.tag.mod > a)
                rh.assertModified = true;
            if (isSelf)
                continue; // the local L1 was already searched
            // S-S copies never respond to snoops (§4.1).
            if (l.state == State::SpecShared)
                continue;
            if (!rh.line && hits(l, la, a)) {
                rh.line = &l;
                rh.cache = &c;
            }
        }
    });
    if (cfg_.unboundedSpecSets && !overflow_.empty()) {
        // A miss (or assert) may be resolved by a spilled version:
        // the hardware walk engine searches the overflow table
        // (§8 / [27]).
        if (auto* vs = overflow_.versionsOf(la)) {
            for (auto& l : vs->lines)
                reconcile(l);
            // Erase reconciled-away versions, keeping metadata and
            // payload planes in lockstep.
            for (std::size_t i = vs->lines.size(); i-- > 0;) {
                if (vs->lines[i].state == State::Invalid) {
                    vs->lines.erase(vs->lines.begin() +
                                    static_cast<std::ptrdiff_t>(i));
                    vs->data.erase(vs->data.begin() +
                                   static_cast<std::ptrdiff_t>(i));
                }
            }
            for (std::size_t i = 0; i < vs->lines.size(); ++i) {
                Line& l = vs->lines[i];
                if (isSpecResponder(l.state) && l.tag.mod > a)
                    rh.assertModified = true;
                if (!rh.line && hits(l, la, a)) {
                    // Refill the version into the requester's L1 and
                    // continue as a normal remote hit. Copy meta and
                    // payload out first: allocate() may evict-spill
                    // and rehash the overflow table under vs.
                    Line copy = l;
                    LineData d = vs->data[i];
                    overflow_.remove(la, i);
                    rh.extraLatency = OverflowTable::kWalkCycles +
                        cfg_.memLatency;
                    ++stats_.specRefills;
                    Line* slot = allocate(caches_[self], la);
                    if (!slot)
                        return rh; // capacity abort during refill
                    *slot = copy;
                    caches_[self].dataOf(*slot) = d;
                    syncLine(*slot);
                    rh.line = slot;
                    rh.cache = &caches_[self];
                    break;
                }
            }
        }
    }
    return rh;
}

// --- allocation & eviction --------------------------------------------

int
CacheSystem::victimClass(const Line& l) const
{
    return hmtx::victimClass(viewOf(l));
}

bool
CacheSystem::foldCopyMark(Addr la, const Line& victim)
{
    // Carriers in preference order: a spec-latest responder (S-E/S-M),
    // a peer latest-version S-S copy, then a non-speculative copy. The
    // last tier matters for lazy/eager symmetry: an eager commit walk
    // reconciles a retired owner to plain S/E while a lazy cell keeps
    // it S-E(0,h), and the evicting copy's mark must survive in both.
    Line* owner = nullptr;
    Line* peer = nullptr;
    Line* plain = nullptr;
    forEachSnoopTarget(la, [&](std::size_t ci) {
        if (owner)
            return;
        for (auto& l : caches_[ci].set(la).lines) {
            if (&l == &victim || l.state == State::Invalid ||
                l.base != la)
                continue;
            if (isSpecLatest(l.state)) {
                owner = &l;
                return;
            }
            if (l.state == State::SpecShared && l.latestCopy)
                peer = &l;
            else if (!isSpec(l.state)) {
                // Prefer the responder copy (E/M/O) over silent S.
                if (!plain || plain->state == State::Shared)
                    plain = &l;
            }
        }
    });
    if (!owner && !peer && cfg_.unboundedSpecSets) {
        if (auto* vs = overflow_.versionsOf(la)) {
            for (auto& l : vs->lines) {
                if (isSpecLatest(l.state)) {
                    owner = &l;
                    break;
                }
            }
        }
    }
    if (Line* dst = owner ? owner : peer) {
        if (victim.tag.high > dst->tag.high) {
            fpClear(*dst); // mark fold without syncLine
            dst->tag.high = victim.tag.high;
            dst->highFromWrongPath = victim.highFromWrongPath;
        }
        return true;
    }
    if (!plain)
        return false;
    // No speculative version of the line exists, so the committed data
    // *is* the latest version and any copy of it may adopt the mark,
    // re-entering the mod==0 speculative encoding a spec load of
    // non-speculative data produces. dirty / mayHaveSharers carry the
    // MOESI facts through the later retire (shareIfSharers lands an
    // ex-O carrier back in O/S, an ex-M one in M).
    // The carrier becomes the version's responder (S-E), never an S-S
    // copy: a copy-class carrier would itself need a responder to fold
    // into when evicted, and its victim class (2 vs 4) must match what
    // a cell that never reconciled the original owner keeps. Ex-S and
    // ex-O carriers note their peers so retire lands them back in a
    // shareable state.
    plain->tag = {kNonSpecVid, victim.tag.high};
    plain->highFromWrongPath = victim.highFromWrongPath;
    if (plain->state == State::Shared || plain->state == State::Owned)
        plain->mayHaveSharers = true;
    plain->state = State::SpecExclusive;
    syncLine(*plain);
    // Same rule as a speculative upgrade of committed data: the now-
    // speculative version may not coexist with plain copies. No marked
    // S-S peers exist here (tier 2 would have carried the mark), so
    // the dropped-mark result is vacuous.
    invalidateNonSpecPeers(la, plain);
    return true;
}

bool
CacheSystem::evict(Cache& c, Line& victim)
{
    reconcile(victim);
    if (victim.state == State::Invalid)
        return true;

    const bool isL2 = (&c == &caches_.back());
    const Addr la = victim.base;

    auto drop = [&victim, this] {
        victim.state = State::Invalid;
        syncLine(victim);
    };

    switch (victim.state) {
      case State::SpecShared:
        // Droppable copies: the owner version still responds. A
        // latest-version copy's highVID is a live local read mark,
        // though (§4.3) — fold it into the responder before the copy
        // dies, or abort conservatively when no speculative responder
        // remains to carry it (§5.4).
        if (victim.latestCopy && victim.tag.high > lcVid_ &&
            !foldCopyMark(la, victim)) {
            ++stats_.capacityAborts;
            triggerAbort(&victim);
            return false;
        }
        drop();
        return true;
      case State::Shared:
      case State::Exclusive:
        if (isL2) {
            drop(); // clean: memory already has the data
            return true;
        }
        break; // L1 victims spill into the shared L2
      case State::Modified:
      case State::Owned:
        if (isL2) {
            mem_.writeLine(la, c.dataOf(victim));
            ++stats_.writebacks;
            drop();
            return true;
        }
        break; // move to L2
      case State::SpecOwned:
        if (victim.tag.mod == kNonSpecVid) {
            // §5.4: the pristine pre-speculation data is committed
            // state and may overflow to memory (from any level — it
            // must not displace S-M/S-E lines, whose loss aborts); an
            // S-M line's snoop assertion recovers it later.
            if (victim.dirty) {
                mem_.writeLine(la, c.dataOf(victim));
                ++stats_.writebacks;
            }
            ++stats_.soOverflowWritebacks;
            drop();
            return true;
        }
        if (isL2) {
            if (cfg_.unboundedSpecSets) {
                overflow_.spill(victim, c.dataOf(victim));
                ++stats_.specSpills;
                drop();
                return true;
            }
            ++stats_.capacityAborts;
            triggerAbort(&victim);
            return false;
        }
        break; // move to L2
      case State::SpecExclusive:
      case State::SpecModified:
        if (isL2) {
            if (cfg_.unboundedSpecSets) {
                // §8 / [27]: spill the version into the
                // memory-resident overflow table instead of aborting.
                trace_.event(TraceEvict, eq_.curTick(),
                             "spill %s(%u,%u) %#llx",
                             std::string(stateName(victim.state))
                                 .c_str(),
                             victim.tag.mod, victim.tag.high,
                             static_cast<unsigned long long>(la));
                overflow_.spill(victim, c.dataOf(victim));
                ++stats_.specSpills;
                drop();
                return true;
            }
            // Speculative state fell out of the last-level cache: the
            // transaction cannot be tracked any more (§5.4).
            ++stats_.capacityAborts;
            triggerAbort(&victim);
            return false;
        }
        break; // move to L2
      case State::Invalid:
        return true;
    }

    // Move the line from an L1 into the shared L2. A committed dirty
    // payload (plain M/O, or the mod==0 speculative encodings — after
    // the reconcile above, committed data always tags mod==0) exists
    // only in the local copy once drop() runs, and the L2 allocation
    // can capacity-abort mid-move; flush it so memory stays the
    // backstop. Uncommitted payloads (mod > LC) are abort-revertible
    // by construction and need no flush.
    Line copy = victim;
    LineData d = c.dataOf(victim);
    if (copy.dirty && copy.tag.mod == kNonSpecVid) {
        mem_.writeLine(la, d);
        ++stats_.writebacks;
    }
    drop();
    Line* slot = allocate(caches_.back(), la);
    if (!slot)
        return false;
    *slot = copy;
    caches_.back().dataOf(*slot) = d;
    syncLine(*slot);
    return true;
}

Line*
CacheSystem::allocateOpt(Cache& c, Addr la)
{
    // Best-effort allocation for optional fills (S-S sharer copies,
    // §5.4 refetches): evict only cheap (non-speculative or copy)
    // victims — displacing responder-class speculative state for a
    // refetchable copy would risk capacity aborts.
    Line* slot = c.freeSlot(la);
    if (!slot) {
        auto& s = c.set(la).lines;
        for (auto& l : s)
            reconcile(l);
        slot = c.freeSlot(la);
        if (!slot) {
            Line* victim = nullptr;
            for (auto& l : s) {
                if (victimClass(l) > 2)
                    continue;
                if (!victim || victimClass(l) < victimClass(*victim) ||
                    (victimClass(l) == victimClass(*victim) &&
                     (l.lastUse < victim->lastUse ||
                      (l.lastUse == victim->lastUse &&
                       l.base < victim->base)))) {
                    victim = &l;
                }
            }
            if (!victim)
                return nullptr;
            std::uint64_t gen = abortGen_;
            if (!evict(c, *victim) || abortGen_ != gen)
                return nullptr;
            slot = victim;
        }
    }
    *slot = Line{};
    slot->base = la;
    slot->lastUse = ++useClock_;
    c.dataOf(*slot).fill(0);
    return slot;
}

Line*
CacheSystem::allocate(Cache& c, Addr la)
{
    Line* slot = c.freeSlot(la);
    if (!slot) {
        auto& s = c.set(la).lines;
        for (auto& l : s)
            reconcile(l);
        slot = c.freeSlot(la);
        if (!slot) {
            // Choose the cheapest victim (lowest class, then LRU,
            // then lowest address). The address tie-break matters:
            // same-tick allocations leave lastUse ties, and without it
            // the winner would depend on physical way order — which
            // varies with reconciliation timing (lazy vs. eager), so
            // replacement would not be a pure function of the set's
            // contents.
            Line* victim = &s.front();
            for (auto& l : s) {
                int vc = victimClass(l);
                int bc = victimClass(*victim);
                if (vc < bc ||
                    (vc == bc && (l.lastUse < victim->lastUse ||
                                  (l.lastUse == victim->lastUse &&
                                   l.base < victim->base)))) {
                    victim = &l;
                }
            }
            std::uint64_t gen = abortGen_;
            if (!evict(c, *victim) || abortGen_ != gen)
                return nullptr;
            slot = victim;
        }
    }
    *slot = Line{};
    slot->base = la;
    slot->lastUse = ++useClock_;
    c.dataOf(*slot).fill(0);
    return slot;
}

// --- data movement -------------------------------------------------------

std::uint64_t
CacheSystem::readData(const Line& l, Addr a, unsigned size) const
{
    const LineData& d = dataOf(l);
    std::uint64_t v = 0;
    unsigned off = lineOffset(a);
    for (unsigned i = 0; i < size; ++i)
        v |= static_cast<std::uint64_t>(d[off + i]) << (8 * i);
    return v;
}

void
CacheSystem::writeData(Line& l, Addr a, std::uint64_t v, unsigned size)
{
    LineData& d = dataOf(l);
    unsigned off = lineOffset(a);
    for (unsigned i = 0; i < size; ++i)
        d[off + i] = static_cast<std::uint8_t>(v >> (8 * i));
}

void
CacheSystem::busAcquire(AccessResult& r, Addr la)
{
    r.latency += net_->acquire(eq_.curTick(), la);
}

} // namespace hmtx::sim
