/**
 * @file
 * gshare branch predictor used by the core model.
 */

#ifndef HMTX_SIM_BRANCH_PREDICTOR_HH
#define HMTX_SIM_BRANCH_PREDICTOR_HH

#include <cstdint>
#include <vector>

#include "core/types.hh"

namespace hmtx::sim
{

/**
 * A gshare predictor (global history XOR PC indexing a table of 2-bit
 * saturating counters). The paper's interest in branch prediction is
 * indirect: mispredictions issue wrong-path loads, which is the problem
 * SLAs (§5.1) solve, and Table 1 reports per-benchmark misprediction
 * rates inside the hot loop.
 */
class BranchPredictor
{
  public:
    /** @param log2Entries table size as a power of two (default 4096) */
    explicit BranchPredictor(unsigned log2Entries = 12)
        : mask_((std::uint64_t{1} << log2Entries) - 1),
          table_(std::size_t{1} << log2Entries, 1)
    {}

    /**
     * Predicts and updates for one conditional branch.
     *
     * @param pc    branch address
     * @param taken actual outcome
     * @return true if the prediction matched the outcome
     */
    bool
    predict(Addr pc, bool taken)
    {
        // Short (6-bit) history: long histories alias heavily on the
        // short warm-up runs the simulator executes.
        std::size_t idx = ((pc >> 2) ^ (history_ & 0x3f)) & mask_;
        std::uint8_t& ctr = table_[idx];
        bool predicted = ctr >= 2;
        if (taken) {
            if (ctr < 3)
                ++ctr;
        } else {
            if (ctr > 0)
                --ctr;
        }
        history_ = ((history_ << 1) | (taken ? 1 : 0)) & mask_;
        ++branches_;
        if (predicted != taken)
            ++mispredicts_;
        return predicted == taken;
    }

    /** Conditional branches predicted. */
    std::uint64_t branches() const { return branches_; }

    /** Mispredictions. */
    std::uint64_t mispredicts() const { return mispredicts_; }

    /** Misprediction rate in [0, 1]. */
    double
    mispredictRate() const
    {
        return branches_ ? static_cast<double>(mispredicts_) / branches_
                         : 0.0;
    }

  private:
    std::uint64_t history_ = 0;
    std::uint64_t mask_;
    std::vector<std::uint8_t> table_;
    std::uint64_t branches_ = 0;
    std::uint64_t mispredicts_ = 0;
};

} // namespace hmtx::sim

#endif // HMTX_SIM_BRANCH_PREDICTOR_HH
