/**
 * @file
 * ShardEngine: bank workers, SPSC command routing, and the epoch
 * barrier. See shard.hh for the determinism argument.
 */

#include "sim/shard.hh"

#include <algorithm>

namespace hmtx::sim
{

ShardEngine::ShardEngine(unsigned banks, bool threaded)
    : threaded_(threaded && banks > 0)
{
    if (banks < 1)
        banks = 1;
    for (unsigned b = 0; b < banks; ++b)
        banks_.emplace_back(kRingCapacity);
    stats_.banks = banks;
    stats_.threaded = threaded_;
    stats_.bankCmds.assign(banks, 0);
    if (threaded_) {
        for (unsigned b = 0; b < banks; ++b)
            banks_[b].worker = std::thread(&ShardEngine::workerLoop,
                                           this, b);
    }
}

ShardEngine::~ShardEngine()
{
    if (!threaded_)
        return;
    for (unsigned b = 0; b < banks(); ++b)
        push(b, {BankCmd::Op::Stop, 0});
    for (auto& bank : banks_)
        if (bank.worker.joinable())
            bank.worker.join();
}

void
ShardEngine::push(unsigned bank, const BankCmd& cmd)
{
    auto& ring = banks_[bank].ring;
    if (ring.tryPush(cmd))
        return;
    // Back-pressure: the ring sized for the common case is full (wide
    // machine, slow bank). Spin-yield until the consumer frees a slot;
    // in inline mode this cannot happen (the caller drains between
    // pushes).
    ++stats_.pushStalls;
    while (!ring.tryPush(cmd))
        std::this_thread::yield();
}

void
ShardEngine::workerLoop(unsigned bank)
{
    auto& ring = banks_[bank].ring;
    for (;;) {
        BankCmd cmd;
        while (!ring.tryPop(cmd))
            ring.waitNonEmpty();
        switch (cmd.op) {
        case BankCmd::Op::Stop:
            return;
        case BankCmd::Op::Barrier:
            done_.fetch_add(1, std::memory_order_release);
            done_.notify_one();
            break;
        default:
            // exec_ was stored before the command was pushed; the
            // ring's release/acquire pair makes it visible here.
            (*exec_)(bank, cmd, banks_[bank].scratch);
            break;
        }
    }
}

void
ShardEngine::runEpoch(const Exec& exec, const std::vector<BankCmd>& cmds)
{
    ++stats_.epochs;
    exec_ = &exec;
    for (auto& bank : banks_)
        bank.scratch = WalkScratch{};

    if (threaded_) {
        // Broadcast command-by-command across the banks so all workers
        // start promptly and back-pressure on one ring cannot starve
        // the others for long.
        for (const BankCmd& cmd : cmds) {
            for (unsigned b = 0; b < banks(); ++b) {
                push(b, cmd);
                ++stats_.bankCmds[b];
            }
        }
        for (unsigned b = 0; b < banks(); ++b)
            push(b, {BankCmd::Op::Barrier, 0});
        doneTarget_ += banks();
        std::uint64_t d = done_.load(std::memory_order_acquire);
        if (d < doneTarget_)
            ++stats_.barrierStalls;
        while (d < doneTarget_) {
            done_.wait(d, std::memory_order_acquire);
            d = done_.load(std::memory_order_acquire);
        }
    } else {
        // Inline schedule: same rings, same per-bank FIFO order, but
        // the coordinator drains each bank itself, in ascending bank
        // order, one command at a time.
        for (unsigned b = 0; b < banks(); ++b) {
            auto& bank = banks_[b];
            for (const BankCmd& cmd : cmds) {
                push(b, cmd);
                ++stats_.bankCmds[b];
                BankCmd c;
                while (bank.ring.tryPop(c))
                    exec(b, c, bank.scratch);
            }
        }
    }

    std::uint64_t hw = 0;
    for (auto& bank : banks_)
        hw = std::max<std::uint64_t>(hw, bank.ring.highWater());
    stats_.ringHighWater = std::max(stats_.ringHighWater, hw);
    exec_ = nullptr;
}

} // namespace hmtx::sim
