/**
 * @file
 * Human-readable report formatting for run statistics.
 */

#ifndef HMTX_SIM_STATS_REPORT_HH
#define HMTX_SIM_STATS_REPORT_HH

#include <cstdio>
#include <string>

#include "sim/config.hh"
#include "sim/stats.hh"

namespace hmtx::sim
{

/**
 * Formats a SysStats snapshot as a gem5-style `name  value  # desc`
 * listing. Used by the benchmark driver example and handy when
 * debugging a run interactively.
 *
 * Each optional diagnostics block (sim.*, config.*) registers through
 * one shared helper — group() plus the RowSink formatter — so every
 * namespace renders identically and adding a block is one print
 * function plus one group() line, not a copy-pasted formatting block.
 */
class StatsReport
{
  public:
    /**
     * @param s     architectural run statistics
     * @param idx   optional simulator-side index diagnostics (snoop
     *              filter / registry effectiveness); printed when
     *              given
     * @param shard optional sharded-engine diagnostics (bank command
     *              routing / epoch barriers); printed when given
     * @param par   optional parallel-engine diagnostics (time windows
     *              / staged retirement); printed when given
     * @param cfg   optional machine config; echoes the commit-mode
     *              axis (TxMode, retry budget, K) so reports are
     *              self-describing
     * @param tx    optional commit-mode policy counters (fallback
     *              serialization, limited-set aborts); printed when
     *              given
     * @param fast  optional zero-event fast-path counters (hits,
     *              generation-tag rejections, event bypasses);
     *              printed when given
     * @param serve optional KV/OLTP serving-engine counters (request
     *              pipeline + latency percentiles); printed when
     *              given
     */
    explicit StatsReport(const SysStats& s,
                         const IndexStats* idx = nullptr,
                         const ShardStats* shard = nullptr,
                         const ParStats* par = nullptr,
                         const MachineConfig* cfg = nullptr,
                         const TxModeStats* tx = nullptr,
                         const FastStats* fast = nullptr,
                         const ServeStats* serve = nullptr)
        : s_(s), idx_(idx), shard_(shard), par_(par), cfg_(cfg),
          tx_(tx), fast_(fast), serve_(serve)
    {}

    /** Writes the report to @p out. */
    void
    print(std::FILE* out = stdout) const
    {
        RowSink sink{out};
        group(sink, cfg_, &printConfig);
        printSys(sink, s_);
        group(sink, idx_, &printIndex);
        group(sink, shard_, &printShard);
        group(sink, par_, &printParallel);
        group(sink, fast_, &printFastPath);
        group(sink, tx_, &printTxMode);
        group(sink, serve_, &printServe);
    }

  private:
    /** Shared row formatter every stats namespace renders through. */
    struct RowSink
    {
        std::FILE* out;

        /** Integer-valued counter row. */
        void
        row(const char* name, double v, const char* desc) const
        {
            std::fprintf(out, "%-28s %14.0f  # %s\n", name, v, desc);
        }

        /** Fractional row (rates, averages, kB). */
        void
        rate(const char* name, double v, const char* desc) const
        {
            std::fprintf(out, "%-28s %14.4f  # %s\n", name, v, desc);
        }

        /** String-valued row (config axes). */
        void
        str(const char* name, const char* v, const char* desc) const
        {
            std::fprintf(out, "%-28s %14s  # %s\n", name, v, desc);
        }
    };

    /**
     * The one registration point for optional stats namespaces:
     * renders @p t through @p fn when present, skips the block
     * entirely when absent.
     */
    template <typename T>
    static void
    group(RowSink& sink, const T* t, void (*fn)(RowSink&, const T&))
    {
        if (t)
            fn(sink, *t);
    }

    static void
    printConfig(RowSink& k, const MachineConfig& cfg)
    {
        k.str("config.txMode", txModeName(cfg.txMode),
              "commit-mode policy (TxPolicy axis)");
        k.row("config.btxMaxRetries", double(cfg.btxMaxRetries),
              "best-effort retries before the fallback lock");
        k.row("config.btxAbortThreshold",
              double(cfg.btxAbortThreshold),
              "total-abort threshold for early fallback (0 = off)");
        k.row("config.limitedSetK", double(cfg.limitedSetK),
              "speculative lines tracked per VID (limited-set)");
    }

    static void
    printSys(RowSink& k, const SysStats& s)
    {
        k.row("mem.loads", double(s.loads), "loads issued");
        k.row("mem.stores", double(s.stores), "stores issued");
        k.row("mem.specLoads", double(s.specLoads),
              "speculative loads (VID != 0)");
        k.row("mem.specStores", double(s.specStores),
              "speculative stores");
        k.row("mem.wrongPathLoads", double(s.wrongPathLoads),
              "squashed wrong-path loads (SS 5.1)");
        k.row("cache.l1Hits", double(s.l1Hits), "L1 hits");
        k.row("cache.l1Misses", double(s.l1Misses), "L1 misses");
        k.rate("cache.l1MissRate",
               s.l1Hits + s.l1Misses
                   ? double(s.l1Misses) / double(s.l1Hits +
                                                 s.l1Misses)
                   : 0.0,
               "L1 miss rate");
        k.row("cache.snoopHits", double(s.snoopHits),
              "hits served by a peer cache or the L2");
        k.row("cache.memFetches", double(s.memFetches),
              "lines fetched from memory");
        k.row("cache.writebacks", double(s.writebacks),
              "dirty lines written back");
        k.row("fabric.busTxns", double(s.busTxns),
              "coherence transactions");
        k.row("fabric.dirLookups", double(s.dirLookups),
              "directory bank lookups (SS 8 fabric)");
        k.row("hmtx.commits", double(s.commits),
              "group commits (SS 4.4)");
        k.row("hmtx.aborts", double(s.aborts),
              "transactional aborts");
        k.row("hmtx.newVersions", double(s.newVersions),
              "speculative line versions created");
        k.row("hmtx.commitCycles", double(s.commitProcessingCycles),
              "memory-system cycles processing commits (SS 5.3)");
        k.row("hmtx.vidResets", double(s.vidResets),
              "VID window resets (SS 4.6)");
        k.row("sla.needed", double(s.slaNeeded),
              "loads needing an acknowledgment (SS 5.1)");
        k.rate("sla.neededRate", s.slaNeededRate(),
               "fraction of speculative loads needing an SLA");
        k.row("sla.avoidedAborts", double(s.avoidedAborts),
              "false aborts avoided by SLAs");
        k.row("overflow.soWritebacks", double(s.soOverflowWritebacks),
              "pristine versions overflowed to memory (SS 5.4)");
        k.row("overflow.soRefetches", double(s.soRefetches),
              "pristine versions recovered from memory (SS 5.4)");
        k.row("overflow.specSpills", double(s.specSpills),
              "speculative lines spilled (unbounded sets, SS 8)");
        k.row("overflow.specRefills", double(s.specRefills),
              "speculative lines refilled (unbounded sets, SS 8)");
        k.row("tx.committed", double(s.committedTxs),
              "committed transactions");
        k.rate("tx.avgReadSetKB", s.avgReadSetKB(),
               "avg read set per transaction, kB (Fig. 9)");
        k.rate("tx.avgWriteSetKB", s.avgWriteSetKB(),
               "avg write set per transaction, kB (Fig. 9)");
        k.rate("tx.avgSpecAccesses", s.avgSpecAccessesPerTx(),
               "avg speculative accesses per transaction (Table 1)");
        k.row("sim.idleCores", double(s.idleCores),
              "cores the execution model left idle");
    }

    static void
    printIndex(RowSink& k, const IndexStats& idx)
    {
        k.row("sim.snoopsVisited", double(idx.snoopsVisited),
              "caches visited by filtered snoops");
        k.row("sim.snoopsFiltered", double(idx.snoopsFiltered),
              "cache snoops skipped by the presence filter");
        k.rate("sim.snoopFilterRate", idx.snoopFilterRate(),
               "fraction of snoop targets filtered out");
        k.row("sim.registryWalks", double(idx.registryWalks),
              "bulk walks served from spec-line registries");
        k.row("sim.registryWalkLines",
              double(idx.registryWalkLines),
              "lines visited by those registry walks");
        k.row("sim.fullScanWalks", double(idx.fullScanWalks),
              "bulk walks that scanned every cache slot");
        k.row("sim.indexCrossChecks", double(idx.crossChecks),
              "full-scan index verifications performed");
    }

    static void
    printShard(RowSink& k, const ShardStats& shard)
    {
        k.row("sim.shard.banks", double(shard.banks),
              "address-hashed banks of the sharded engine");
        k.row("sim.shard.threaded", shard.threaded ? 1.0 : 0.0,
              "1 when dedicated bank workers drained the rings");
        k.row("sim.shard.epochs", double(shard.epochs),
              "epoch barriers executed (one per bulk operation)");
        k.row("sim.shard.cmds", double(shard.totalCmds()),
              "commands routed through the bank SPSC rings");
        std::uint64_t mn = 0, mx = 0;
        if (!shard.bankCmds.empty()) {
            mn = mx = shard.bankCmds[0];
            for (std::uint64_t c : shard.bankCmds) {
                mn = c < mn ? c : mn;
                mx = c > mx ? c : mx;
            }
        }
        k.row("sim.shard.bankCmdsMin", double(mn),
              "commands routed to the least-loaded bank");
        k.row("sim.shard.bankCmdsMax", double(mx),
              "commands routed to the most-loaded bank");
        k.row("sim.shard.ringHighWater",
              double(shard.ringHighWater),
              "max SPSC ring occupancy observed");
        k.row("sim.shard.pushStalls", double(shard.pushStalls),
              "ring-full back-pressure events at the producer");
        k.row("sim.shard.barrierStalls",
              double(shard.barrierStalls),
              "epoch barriers where the coordinator blocked");
    }

    static void
    printParallel(RowSink& k, const ParStats& par)
    {
        k.row("sim.parallel.workers", double(par.workers),
              "host staging threads of the parallel engine");
        k.row("sim.parallel.threaded", par.threaded ? 1.0 : 0.0,
              "1 when stages ran on dedicated worker threads");
        k.row("sim.parallel.windows", double(par.windows),
              "time windows executed (min c2c latency each)");
        k.row("sim.parallel.events", double(par.events),
              "events popped by the coordinator");
        k.rate("sim.parallel.eventsPerWindow",
               par.eventsPerWindow(),
               "mean events retired per time window");
        k.row("sim.parallel.laneEvents", double(par.laneEvents),
              "lane turns dispatched for staging");
        k.row("sim.parallel.sections", double(par.sections),
              "staged workload sections opened");
        k.row("sim.parallel.intents", double(par.intents),
              "memory intents retired in event order");
        k.row("sim.parallel.barrierStalls",
              double(par.barrierStalls),
              "retirements where the coordinator blocked on a "
              "worker");
        k.row("sim.parallel.rollbacks", double(par.rollbacks),
              "speculation rollbacks (always 0: conservative "
              "engine)");
        k.row("sim.parallel.apply.batches",
              double(par.commuteBatches),
              "commute-aware batches committed concurrently");
        k.row("sim.parallel.apply.applied",
              double(par.commuteApplied),
              "intents applied through commute batches");
        k.row("sim.parallel.apply.conflicts",
              double(par.commuteConflicts),
              "batches cut short by a commutativity-class clash");
        k.row("sim.parallel.apply.serialFallbacks",
              double(par.commuteSerialFallbacks),
              "intents retired alone in exact serial order");
    }

    static void
    printFastPath(RowSink& k, const FastStats& fast)
    {
        k.row("sim.fastpath.attempts", double(fast.attempts),
              "accesses probed for the zero-event fast path");
        k.row("sim.fastpath.hits", double(fast.hits()),
              "accesses retired without touching the event queue");
        k.row("sim.fastpath.loadHits", double(fast.loadHits),
              "fast-path load hits");
        k.row("sim.fastpath.storeHits", double(fast.storeHits),
              "fast-path store hits");
        k.row("sim.fastpath.genRejections",
              double(fast.genRejections),
              "probes rejected by a stale generation tag");
        k.row("sim.fastpath.eventBypasses",
              double(fast.eventBypasses),
              "wake-ups retired inline via the queue bypass");
        k.rate("sim.fastpath.hitRate", fast.hitRate(),
               "fraction of probed accesses retired fast");
    }

    static void
    printTxMode(RowSink& k, const TxModeStats& tx)
    {
        k.row("sim.txmode.retryAborts", double(tx.retryAborts),
              "aborts charged against the retry budget");
        k.row("sim.txmode.fallbackEntries",
              double(tx.fallbackEntries),
              "times the serialized fallback lock engaged");
        k.row("sim.txmode.fallbackAccesses",
              double(tx.fallbackAccesses),
              "accesses executed under the fallback lock");
        k.row("sim.txmode.fallbackCommits",
              double(tx.fallbackCommits),
              "commits that released the fallback lock");
        k.row("sim.txmode.fallbackCycles",
              double(tx.fallbackCycles),
              "memory-system cycles of serialized execution");
        k.row("sim.txmode.fallbackWrapRemaps",
              double(tx.fallbackWrapRemaps),
              "VID-window resets absorbed while the lock was held");
        k.row("sim.txmode.earlyFallbacks",
              double(tx.earlyFallbacks),
              "fallbacks taken early via the abort threshold");
        k.row("sim.txmode.limitedSetAborts",
              double(tx.limitedSetAborts),
              "capacity aborts from the K-line set limit");
    }

    static void
    printServe(RowSink& k, const ServeStats& sv)
    {
        k.row("sim.serve.requests", double(sv.requests),
              "serving requests completed");
        k.row("sim.serve.issued", double(sv.issued),
              "transaction attempts started");
        k.row("sim.serve.committed", double(sv.committed),
              "attempts that committed");
        k.row("sim.serve.aborted", double(sv.aborted),
              "attempts ended by an abort (re-issued)");
        k.row("sim.serve.drains", double(sv.drains),
              "serialized oldest-alone drain passes after aborts");
        k.row("sim.serve.lockRestarts", double(sv.lockRestarts),
              "bodies restarted when the fallback lock engaged");
        k.row("sim.serve.nonSpecFallbacks",
              double(sv.nonSpecFallbacks),
              "over-K requests run non-speculatively (ltd)");
        k.row("sim.serve.windowResets", double(sv.windowResets),
              "VID-window resets between request batches");
        k.row("sim.serve.batches", double(sv.batches),
              "generator refill batches injected");
        k.row("sim.serve.idleCycles", double(sv.idleCycles),
              "core cycles idle awaiting open-loop arrivals");
        k.row("sim.serve.latencyP50",
              double(sv.latency.percentile(0.5)),
              "median request latency, cycles");
        k.row("sim.serve.latencyP99",
              double(sv.latency.percentile(0.99)),
              "p99 request latency, cycles");
        k.row("sim.serve.latencyP999",
              double(sv.latency.percentile(0.999)),
              "p999 request latency, cycles");
        k.row("sim.serve.latencyMax", double(sv.latency.max()),
              "max request latency, cycles");
        k.rate("sim.serve.latencyMean", sv.latency.mean(),
               "mean request latency, cycles");
    }

    const SysStats& s_;
    const IndexStats* idx_;
    const ShardStats* shard_;
    const ParStats* par_;
    const MachineConfig* cfg_;
    const TxModeStats* tx_;
    const FastStats* fast_;
    const ServeStats* serve_;
};

} // namespace hmtx::sim

#endif // HMTX_SIM_STATS_REPORT_HH
