/**
 * @file
 * Human-readable report formatting for run statistics.
 */

#ifndef HMTX_SIM_STATS_REPORT_HH
#define HMTX_SIM_STATS_REPORT_HH

#include <cstdio>
#include <string>

#include "sim/config.hh"
#include "sim/stats.hh"

namespace hmtx::sim
{

/**
 * Formats a SysStats snapshot as a gem5-style `name  value  # desc`
 * listing. Used by the benchmark driver example and handy when
 * debugging a run interactively.
 */
class StatsReport
{
  public:
    /**
     * @param s     architectural run statistics
     * @param idx   optional simulator-side index diagnostics (snoop
     *              filter / registry effectiveness); printed when
     *              given
     * @param shard optional sharded-engine diagnostics (bank command
     *              routing / epoch barriers); printed when given
     * @param par   optional parallel-engine diagnostics (time windows
     *              / staged retirement); printed when given
     * @param cfg   optional machine config; echoes the commit-mode
     *              axis (TxMode, retry budget, K) so reports are
     *              self-describing
     * @param tx    optional commit-mode policy counters (fallback
     *              serialization, limited-set aborts); printed when
     *              given
     * @param fast  optional zero-event fast-path counters (hits,
     *              generation-tag rejections, event bypasses);
     *              printed when given
     */
    explicit StatsReport(const SysStats& s,
                         const IndexStats* idx = nullptr,
                         const ShardStats* shard = nullptr,
                         const ParStats* par = nullptr,
                         const MachineConfig* cfg = nullptr,
                         const TxModeStats* tx = nullptr,
                         const FastStats* fast = nullptr)
        : s_(s), idx_(idx), shard_(shard), par_(par), cfg_(cfg),
          tx_(tx), fast_(fast)
    {}

    /** Writes the report to @p out. */
    void
    print(std::FILE* out = stdout) const
    {
        auto row = [&](const char* name, double v,
                       const char* desc) {
            std::fprintf(out, "%-28s %14.0f  # %s\n", name, v, desc);
        };
        auto rate = [&](const char* name, double v,
                        const char* desc) {
            std::fprintf(out, "%-28s %14.4f  # %s\n", name, v, desc);
        };

        if (cfg_) {
            std::fprintf(out, "%-28s %14s  # %s\n", "config.txMode",
                         txModeName(cfg_->txMode),
                         "commit-mode policy (TxPolicy axis)");
            row("config.btxMaxRetries", double(cfg_->btxMaxRetries),
                "best-effort retries before the fallback lock");
            row("config.btxAbortThreshold",
                double(cfg_->btxAbortThreshold),
                "total-abort threshold for early fallback (0 = off)");
            row("config.limitedSetK", double(cfg_->limitedSetK),
                "speculative lines tracked per VID (limited-set)");
        }

        row("mem.loads", double(s_.loads), "loads issued");
        row("mem.stores", double(s_.stores), "stores issued");
        row("mem.specLoads", double(s_.specLoads),
            "speculative loads (VID != 0)");
        row("mem.specStores", double(s_.specStores),
            "speculative stores");
        row("mem.wrongPathLoads", double(s_.wrongPathLoads),
            "squashed wrong-path loads (SS 5.1)");
        row("cache.l1Hits", double(s_.l1Hits), "L1 hits");
        row("cache.l1Misses", double(s_.l1Misses), "L1 misses");
        rate("cache.l1MissRate",
             s_.l1Hits + s_.l1Misses
                 ? double(s_.l1Misses) / double(s_.l1Hits +
                                               s_.l1Misses)
                 : 0.0,
             "L1 miss rate");
        row("cache.snoopHits", double(s_.snoopHits),
            "hits served by a peer cache or the L2");
        row("cache.memFetches", double(s_.memFetches),
            "lines fetched from memory");
        row("cache.writebacks", double(s_.writebacks),
            "dirty lines written back");
        row("fabric.busTxns", double(s_.busTxns),
            "coherence transactions");
        row("fabric.dirLookups", double(s_.dirLookups),
            "directory bank lookups (SS 8 fabric)");
        row("hmtx.commits", double(s_.commits),
            "group commits (SS 4.4)");
        row("hmtx.aborts", double(s_.aborts),
            "transactional aborts");
        row("hmtx.newVersions", double(s_.newVersions),
            "speculative line versions created");
        row("hmtx.commitCycles", double(s_.commitProcessingCycles),
            "memory-system cycles processing commits (SS 5.3)");
        row("hmtx.vidResets", double(s_.vidResets),
            "VID window resets (SS 4.6)");
        row("sla.needed", double(s_.slaNeeded),
            "loads needing an acknowledgment (SS 5.1)");
        rate("sla.neededRate", s_.slaNeededRate(),
             "fraction of speculative loads needing an SLA");
        row("sla.avoidedAborts", double(s_.avoidedAborts),
            "false aborts avoided by SLAs");
        row("overflow.soWritebacks", double(s_.soOverflowWritebacks),
            "pristine versions overflowed to memory (SS 5.4)");
        row("overflow.soRefetches", double(s_.soRefetches),
            "pristine versions recovered from memory (SS 5.4)");
        row("overflow.specSpills", double(s_.specSpills),
            "speculative lines spilled (unbounded sets, SS 8)");
        row("overflow.specRefills", double(s_.specRefills),
            "speculative lines refilled (unbounded sets, SS 8)");
        row("tx.committed", double(s_.committedTxs),
            "committed transactions");
        rate("tx.avgReadSetKB", s_.avgReadSetKB(),
             "avg read set per transaction, kB (Fig. 9)");
        rate("tx.avgWriteSetKB", s_.avgWriteSetKB(),
             "avg write set per transaction, kB (Fig. 9)");
        rate("tx.avgSpecAccesses", s_.avgSpecAccessesPerTx(),
             "avg speculative accesses per transaction (Table 1)");
        row("sim.idleCores", double(s_.idleCores),
            "cores the execution model left idle");

        if (idx_) {
            row("sim.snoopsVisited", double(idx_->snoopsVisited),
                "caches visited by filtered snoops");
            row("sim.snoopsFiltered", double(idx_->snoopsFiltered),
                "cache snoops skipped by the presence filter");
            rate("sim.snoopFilterRate", idx_->snoopFilterRate(),
                 "fraction of snoop targets filtered out");
            row("sim.registryWalks", double(idx_->registryWalks),
                "bulk walks served from spec-line registries");
            row("sim.registryWalkLines",
                double(idx_->registryWalkLines),
                "lines visited by those registry walks");
            row("sim.fullScanWalks", double(idx_->fullScanWalks),
                "bulk walks that scanned every cache slot");
            row("sim.indexCrossChecks", double(idx_->crossChecks),
                "full-scan index verifications performed");
        }

        if (shard_) {
            row("sim.shard.banks", double(shard_->banks),
                "address-hashed banks of the sharded engine");
            row("sim.shard.threaded", shard_->threaded ? 1.0 : 0.0,
                "1 when dedicated bank workers drained the rings");
            row("sim.shard.epochs", double(shard_->epochs),
                "epoch barriers executed (one per bulk operation)");
            row("sim.shard.cmds", double(shard_->totalCmds()),
                "commands routed through the bank SPSC rings");
            std::uint64_t mn = 0, mx = 0;
            if (!shard_->bankCmds.empty()) {
                mn = mx = shard_->bankCmds[0];
                for (std::uint64_t c : shard_->bankCmds) {
                    mn = c < mn ? c : mn;
                    mx = c > mx ? c : mx;
                }
            }
            row("sim.shard.bankCmdsMin", double(mn),
                "commands routed to the least-loaded bank");
            row("sim.shard.bankCmdsMax", double(mx),
                "commands routed to the most-loaded bank");
            row("sim.shard.ringHighWater",
                double(shard_->ringHighWater),
                "max SPSC ring occupancy observed");
            row("sim.shard.pushStalls", double(shard_->pushStalls),
                "ring-full back-pressure events at the producer");
            row("sim.shard.barrierStalls",
                double(shard_->barrierStalls),
                "epoch barriers where the coordinator blocked");
        }

        if (par_) {
            row("sim.parallel.workers", double(par_->workers),
                "host staging threads of the parallel engine");
            row("sim.parallel.threaded", par_->threaded ? 1.0 : 0.0,
                "1 when stages ran on dedicated worker threads");
            row("sim.parallel.windows", double(par_->windows),
                "time windows executed (min c2c latency each)");
            row("sim.parallel.events", double(par_->events),
                "events popped by the coordinator");
            rate("sim.parallel.eventsPerWindow",
                 par_->eventsPerWindow(),
                 "mean events retired per time window");
            row("sim.parallel.laneEvents", double(par_->laneEvents),
                "lane turns dispatched for staging");
            row("sim.parallel.sections", double(par_->sections),
                "staged workload sections opened");
            row("sim.parallel.intents", double(par_->intents),
                "memory intents retired in event order");
            row("sim.parallel.barrierStalls",
                double(par_->barrierStalls),
                "retirements where the coordinator blocked on a "
                "worker");
            row("sim.parallel.rollbacks", double(par_->rollbacks),
                "speculation rollbacks (always 0: conservative "
                "engine)");
            row("sim.parallel.apply.batches",
                double(par_->commuteBatches),
                "commute-aware batches committed concurrently");
            row("sim.parallel.apply.applied",
                double(par_->commuteApplied),
                "intents applied through commute batches");
            row("sim.parallel.apply.conflicts",
                double(par_->commuteConflicts),
                "batches cut short by a commutativity-class clash");
            row("sim.parallel.apply.serialFallbacks",
                double(par_->commuteSerialFallbacks),
                "intents retired alone in exact serial order");
        }

        if (fast_) {
            row("sim.fastpath.attempts", double(fast_->attempts),
                "accesses probed for the zero-event fast path");
            row("sim.fastpath.hits", double(fast_->hits()),
                "accesses retired without touching the event queue");
            row("sim.fastpath.loadHits", double(fast_->loadHits),
                "fast-path load hits");
            row("sim.fastpath.storeHits", double(fast_->storeHits),
                "fast-path store hits");
            row("sim.fastpath.genRejections",
                double(fast_->genRejections),
                "probes rejected by a stale generation tag");
            row("sim.fastpath.eventBypasses",
                double(fast_->eventBypasses),
                "wake-ups retired inline via the queue bypass");
            rate("sim.fastpath.hitRate", fast_->hitRate(),
                 "fraction of probed accesses retired fast");
        }

        if (tx_) {
            row("sim.txmode.retryAborts", double(tx_->retryAborts),
                "aborts charged against the retry budget");
            row("sim.txmode.fallbackEntries",
                double(tx_->fallbackEntries),
                "times the serialized fallback lock engaged");
            row("sim.txmode.fallbackAccesses",
                double(tx_->fallbackAccesses),
                "accesses executed under the fallback lock");
            row("sim.txmode.fallbackCommits",
                double(tx_->fallbackCommits),
                "commits that released the fallback lock");
            row("sim.txmode.fallbackCycles",
                double(tx_->fallbackCycles),
                "memory-system cycles of serialized execution");
            row("sim.txmode.fallbackWrapRemaps",
                double(tx_->fallbackWrapRemaps),
                "VID-window resets absorbed while the lock was held");
            row("sim.txmode.earlyFallbacks",
                double(tx_->earlyFallbacks),
                "fallbacks taken early via the abort threshold");
            row("sim.txmode.limitedSetAborts",
                double(tx_->limitedSetAborts),
                "capacity aborts from the K-line set limit");
        }
    }

  private:
    const SysStats& s_;
    const IndexStats* idx_;
    const ShardStats* shard_;
    const ParStats* par_;
    const MachineConfig* cfg_;
    const TxModeStats* tx_;
    const FastStats* fast_;
};

} // namespace hmtx::sim

#endif // HMTX_SIM_STATS_REPORT_HH
