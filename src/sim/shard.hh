/**
 * @file
 * Sharded parallel execution engine for the simulator's bulk protocol
 * operations (simulator-side machinery, not architectural).
 *
 * The memory system's heavyweight operations — group commit walks,
 * global aborts, VID resets, dirty flushes — all reduce to "visit
 * every interesting line and every overflow entry". The engine
 * partitions that work into address-hashed *banks* (the same
 * partition the per-cache registries, the presence filter, main
 * memory, and the overflow table use), routes per-bank commands over
 * host-side SPSC rings to dedicated worker threads, and synchronizes
 * with a deterministic *epoch barrier*: an epoch's commands are
 * enqueued to every bank, the coordinator blocks until all banks have
 * drained, and only then does the bulk operation observe or publish
 * cross-bank state.
 *
 * Determinism argument (why results are bit-identical to the
 * sequential engine at any bank count):
 *  - operations on the *same* line address always land in the same
 *    bank, and each bank's ring is FIFO, so their relative order is
 *    exactly the sequential phase order;
 *  - operations on *different* addresses commute: a bulk walk's
 *    per-line transition reads and writes only that line, its set,
 *    its bank's presence/registry entries, and its bank's memory and
 *    overflow banks;
 *  - numeric walk outputs are accumulated per bank in a scratch area
 *    and folded in ascending bank order after the barrier, so integer
 *    sums see a fixed association order.
 *
 * With workers disabled (the default on single-CPU hosts) the same
 * commands flow through the same rings but are drained inline by the
 * coordinator, bank by bank — one code path, two schedules.
 */

#ifndef HMTX_SIM_SHARD_HH
#define HMTX_SIM_SHARD_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <thread>
#include <vector>

#include "runtime/queue.hh"
#include "sim/stats.hh"

namespace hmtx::sim
{

/**
 * One command routed to a bank worker. A bulk operation is compiled
 * into a short phase-ordered command list that every bank receives;
 * within a bank the FIFO ring preserves that order (e.g. a flush
 * folds the overflow bank before walking cache segments, exactly like
 * the sequential code).
 */
struct BankCmd
{
    enum class Op : std::uint8_t
    {
        /** Walk one cache's registry (or full-scan) slice: `arg` is
         *  the cache index. */
        CacheSegment,
        /** Fold this bank's overflow-table partition. */
        OverflowSegment,
        /** End of epoch: report completion to the barrier. */
        Barrier,
        /** Shut the worker down (engine destruction). */
        Stop,
    };

    Op op = Op::Barrier;
    std::uint32_t arg = 0;
};

/**
 * Per-bank scratch accumulators a walk writes instead of the shared
 * stat counters. Slot meaning is per-operation (touched lines,
 * writebacks, ...); slot 3 is reserved by the cache system for
 * registry-walk line counts.
 */
struct WalkScratch
{
    std::array<std::uint64_t, 4> n{};
};

/**
 * The bank scheduler: owns the rings, the workers, and the barrier.
 * The embedding CacheSystem supplies an executor callback translating
 * (bank, command) into actual walk work; the engine itself knows
 * nothing about the protocol.
 */
class ShardEngine
{
  public:
    using Exec =
        std::function<void(unsigned bank, const BankCmd& cmd,
                           WalkScratch& scratch)>;

    /**
     * @param banks    bank count (power of two, >= 1)
     * @param threaded spawn one dedicated worker thread per bank;
     *                 otherwise commands are drained inline
     */
    ShardEngine(unsigned banks, bool threaded);
    ~ShardEngine();

    ShardEngine(const ShardEngine&) = delete;
    ShardEngine& operator=(const ShardEngine&) = delete;

    unsigned banks() const { return unsigned(banks_.size()); }
    bool threaded() const { return threaded_; }

    /**
     * Runs one epoch: broadcasts @p cmds (plus the trailing barrier
     * command) to every bank's ring, executes them via @p exec — on
     * the workers when threaded, inline otherwise — and returns once
     * every bank has drained. Scratch areas are zeroed at epoch start;
     * read them per bank with scratch() afterwards and fold in
     * ascending bank order for deterministic sums.
     */
    void runEpoch(const Exec& exec, const std::vector<BankCmd>& cmds);

    /** Bank @p b's scratch output of the last epoch. */
    const WalkScratch& scratch(unsigned b) const
    {
        return banks_[b].scratch;
    }

    const ShardStats& stats() const { return stats_; }

  private:
    struct Bank
    {
        explicit Bank(std::size_t ringCap) : ring(ringCap) {}
        runtime::SpscRing<BankCmd> ring;
        WalkScratch scratch;
        std::thread worker;
    };

    /** Ring capacity: small on purpose so wide machines (more cache
     *  segments than slots) exercise producer back-pressure. */
    static constexpr std::size_t kRingCapacity = 16;

    void workerLoop(unsigned bank);
    void push(unsigned bank, const BankCmd& cmd);

    /** deque: Bank holds atomics (immovable) and must never relocate. */
    std::deque<Bank> banks_;
    bool threaded_ = false;
    ShardStats stats_;

    /** Executor of the epoch in flight (set before the first push of
     *  an epoch; workers read it only after popping a command, which
     *  the ring's release/acquire pair orders). */
    const Exec* exec_ = nullptr;

    /** Banks that completed their barrier command, cumulative. */
    std::atomic<std::uint64_t> done_{0};
    /** Cumulative barrier target (epochs * banks). */
    std::uint64_t doneTarget_ = 0;
};

} // namespace hmtx::sim

#endif // HMTX_SIM_SHARD_HH
