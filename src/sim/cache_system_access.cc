/**
 * @file
 * CacheSystem access half: loads, stores, SLA confirmation, and the
 * peer-fixup protocol actions they trigger. Marking and classification
 * decisions come from the pure engine in core/protocol.hh; all fabric
 * timing goes through the Interconnect.
 */

#include <algorithm>
#include <cassert>
#include <stdexcept>
#include <string>

#include "sim/cache_system.hh"

namespace hmtx::sim
{

// --- protocol actions ---------------------------------------------------

void
CacheSystem::applyReadMark(CoreId core, Line& l, Vid vid, AccessResult& r)
{
    (void)core;
    const ReadMarkAction act = classifyReadMark(l.state, l.tag, vid);
    if (act == ReadMarkAction::None)
        return;
    if (act == ReadMarkAction::RaiseHigh) {
        r.needSla = true;
        // Mark raise without syncLine: invalidate fast-path tags
        // explicitly (a stale fast-store tag would silently succeed
        // where the slow path aborts on the dependence this mark
        // records).
        fpClear(l);
        l.tag.high = vid;
        l.highFromWrongPath = false;
        return;
    }
    Vid high = vid;
    bool raised = true;
    if (act == ReadMarkAction::UpgradeWithBus) {
        // Gain writable access (§4.2) before going speculative. The
        // peer copies being destroyed may be latest-version S-S lines
        // carrying live distributed read marks (§4.3); fold those into
        // the new owner or a later conflicting store would miss its
        // dependence abort.
        busAcquire(r, l.base);
        l.dirty = l.dirty || anyNonSpecDirty(l.base, &l);
        DroppedMark dm = invalidateNonSpecPeers(l.base, &l);
        if (dm.high >= high) {
            // An inherited peer mark already covers this VID: the
            // read planted nothing new, exactly as a hit under a
            // live owner mark would.
            high = dm.high;
            l.highFromWrongPath = dm.wrongPath;
            raised = false;
        }
    }
    l.state = specUpgradeState(l.dirty);
    l.tag = {kNonSpecVid, high};
    syncLine(l);
    r.needSla = raised;
}

void
CacheSystem::fixPeersForNewVersion(Addr la, const Line* owner, Vid y)
{
    forEachSnoopTarget(la, [&](std::size_t ci) {
        for (auto& l : caches_[ci].set(la).lines) {
            if (&l == owner || l.state == State::Invalid || l.base != la)
                continue;
            reconcile(l);
            if (l.state == State::Invalid)
                continue;
            if (!isSpec(l.state)) {
                // Non-speculative sharers of the pristine version stay
                // usable for VIDs below the new version. They become
                // droppable copies; the S-O owner carries dirtiness.
                l.state = State::SpecShared;
                l.tag = {kNonSpecVid, y};
                l.dirty = false;
                syncLine(l);
            } else if (l.state == State::SpecShared && l.latestCopy) {
                // The version this copy mirrors is now superseded at
                // VID y: the copy keeps serving VIDs below y only.
                l.latestCopy = false;
                if (y <= l.tag.mod)
                    l.state = State::Invalid;
                else
                    l.tag.high = y;
                syncLine(l);
            } else if (l.state == State::SpecShared &&
                       !l.latestCopy && l.tag.high > y) {
                if (y <= l.tag.mod)
                    l.state = State::Invalid;
                else
                    l.tag.high = y;
                syncLine(l);
            }
        }
    });
}

void
CacheSystem::invalidatePeerSpecShared(Addr la, const Line* keep, Vid mod)
{
    forEachSnoopTarget(la, [&](std::size_t ci) {
        for (auto& l : caches_[ci].set(la).lines) {
            if (&l == keep || l.state != State::SpecShared ||
                l.base != la) {
                continue;
            }
            if (l.tag.mod == mod || l.tag.high > mod) {
                l.state = State::Invalid;
                syncLine(l);
            }
        }
    });
}

bool
CacheSystem::anyNonSpecDirty(Addr la, const Line* except)
{
    bool dirty = false;
    forEachSnoopTarget(la, [&](std::size_t ci) {
        if (dirty)
            return;
        for (auto& l : caches_[ci].set(la).lines) {
            if (&l == except || l.state == State::Invalid ||
                l.base != la) {
                continue;
            }
            if (!isSpec(l.state) && l.dirty) {
                dirty = true;
                return;
            }
        }
    });
    return dirty;
}

CacheSystem::DroppedMark
CacheSystem::invalidateNonSpecPeers(Addr la, const Line* keep)
{
    DroppedMark dm;
    forEachSnoopTarget(la, [&](std::size_t ci) {
        for (auto& l : caches_[ci].set(la).lines) {
            if (&l == keep || l.state == State::Invalid || l.base != la)
                continue;
            if (!isSpec(l.state)) {
                l.state = State::Invalid;
                syncLine(l);
            } else if (l.state == State::SpecShared) {
                // Copies are always refetchable from the owner (or
                // memory); a stale one must not keep serving reads
                // after this write. A latest-version copy's highVID is
                // a live local read mark, though — surface it to the
                // caller so the record survives the copy (§4.3).
                if (l.latestCopy && l.tag.high > lcVid_ &&
                    l.tag.high > dm.high) {
                    dm.high = l.tag.high;
                    dm.wrongPath = l.highFromWrongPath;
                }
                l.state = State::Invalid;
                l.latestCopy = false;
                syncLine(l);
            }
        }
    });
    return dm;
}

void
CacheSystem::triggerAbort(const Line* offender)
{
    if (offender && offender->highFromWrongPath)
        ++stats_.falseAbortsWrongPath;
    if (offender) {
        trace_.event(TraceCommit, eq_.curTick(),
                     "ABORT triggered by line %#llx %s(%u,%u)",
                     static_cast<unsigned long long>(offender->base),
                     std::string(stateName(offender->state)).c_str(),
                     offender->tag.mod, offender->tag.high);
    } else {
        trace_.event(TraceCommit, eq_.curTick(),
                     "ABORT triggered (overflowed pristine version)");
    }
    abortAll();
}

// --- bookkeeping ----------------------------------------------------------

CacheSystem::RwSets&
CacheSystem::rwFor(Vid vid)
{
    // Accesses cluster heavily by VID (each core works through one
    // transaction at a time), so cache the last node instead of
    // re-hashing per access. Node pointers are stable across inserts.
    if (rwCached_ && rwCachedVid_ == vid)
        return *rwCached_;
    rwCached_ = &rw_[vid];
    rwCachedVid_ = vid;
    return *rwCached_;
}

void
CacheSystem::recordRead(Vid vid, Addr la, Line* l)
{
    if (l && l->rwGen == rwGen_ && l->rwReadVid == vid)
        return; // this line's read is already in vid's set
    rwFor(vid).reads.insert(la);
    if (l) {
        if (l->rwGen != rwGen_) {
            // Entering the current generation invalidates whatever
            // the other mark said in the previous one.
            l->rwGen = rwGen_;
            l->rwWriteVid = kNonSpecVid;
        }
        l->rwReadVid = vid;
    }
}

void
CacheSystem::recordWrite(Vid vid, Addr la, Line* l)
{
    if (l && l->rwGen == rwGen_ && l->rwWriteVid == vid)
        return; // this line's write is already in vid's set
    rwFor(vid).writes.insert(la);
    if (l) {
        if (l->rwGen != rwGen_) {
            l->rwGen = rwGen_;
            l->rwReadVid = kNonSpecVid;
        }
        l->rwWriteVid = vid;
    }
}

void
CacheSystem::noteShadowWrongPath(Addr la, Vid vid)
{
    Vid& v = shadow_[la];
    v = std::max(v, vid);
}

void
CacheSystem::checkShadowAvoided(Addr la, Vid storeVid)
{
    // Only wrong-path loads under SLAs populate the shadow map; skip
    // the hash probe entirely on the (typical) run without any.
    if (shadow_.empty())
        return;
    auto it = shadow_.find(la);
    if (it == shadow_.end())
        return;
    if (it->second > storeVid) {
        // Without SLAs the wrong-path load would have marked the line
        // with its higher VID and this (successful) store would have
        // triggered a false abort (§5.1, Table 1).
        ++stats_.avoidedAborts;
        shadow_.erase(it);
    } else if (it->second <= lcVid_) {
        shadow_.erase(it);
    }
}

// --- loads -----------------------------------------------------------------

bool
CacheSystem::limitedSetBlocks(Vid vid, Addr la)
{
    if (!policy_.limitsSpecSets())
        return false;
    auto it = rw_.find(vid);
    if (it == rw_.end())
        return policy_.limitedSetExceeded(0);
    const RwSets& s = it->second;
    // Re-touching a line already in the sets never costs a new entry.
    if (s.reads.count(la) || s.writes.count(la))
        return false;
    std::size_t combined = s.reads.size();
    for (Addr w : s.writes)
        if (!s.reads.count(w))
            ++combined;
    return policy_.limitedSetExceeded(combined);
}

AccessResult
CacheSystem::load(CoreId core, Addr a, unsigned size, Vid vid,
                  bool wrongPath)
{
    // Zero-event fast path (DESIGN.md §13): a tagged pure L1 hit
    // skips the policy preamble, findLocal's reconcile pass, and the
    // mark machinery. Wrong-path loads are excluded — they feed the
    // shadow map. The plain-policy gate inside fastEnabled_ makes the
    // skipped preamble a guaranteed no-op.
    if (fastEnabled_ && !wrongPath) {
        AccessResult fr;
        if (fastAccess(core, a, 0, size, vid, false, fr))
            return fr;
    }

    const bool spec = cfg_.hmtxEnabled && vid != kNonSpecVid;
    bool serialized = false;
    if (spec) {
        // Wrong-path loads consult the lock passively: they must run
        // non-speculatively when their VID holds it, but they neither
        // engage it nor count as fallback work.
        serialized = wrongPath ? policy_.serializes(vid)
                               : policy_.onSpecAccess(vid, lcVid_);
        if (!serialized && !wrongPath &&
            limitedSetBlocks(vid, lineAddr(a))) {
            AccessResult r;
            r.latency = cfg_.l1Latency;
            ++stats_.loads;
            ++stats_.specLoads;
            ++stats_.capacityAborts;
            policy_.noteLimitedSetAbort();
            triggerAbort(nullptr);
            r.aborted = true;
            return r;
        }
    }

    const std::uint64_t gen0 = abortGen_;
    AccessResult r = loadImpl(core, a, size, vid, wrongPath, serialized);
    if (!serialized) {
        // A global flush can race the access mid-flight without
        // consuming it: an *optional* allocation (S-S sharer copy,
        // §5.4 refetch merge) evicts a victim whose mark cannot be
        // carried, the capacity abort flushes every speculative line —
        // including the mark this very load planted — and the access
        // then completes against pre-flush state. Architecturally the
        // completed access is the first access of the *restarted*
        // transaction, so it must re-plant its marks (and serve the
        // committed value) on post-flush state: re-run it. Post-flush
        // evictions only meet plain lines, so the retry settles.
        std::uint64_t gen = gen0;
        unsigned guard = 0;
        while (!r.aborted && abortGen_ != gen) {
            if (++guard > 4)
                throw std::logic_error(
                    "load flush-retry did not settle");
            gen = abortGen_;
            AccessResult r2 =
                loadImpl(core, a, size, vid, wrongPath, serialized);
            r2.latency += r.latency;
            r = r2;
        }
    }
    if (serialized) {
        if (r.aborted) {
            // The holder's own access collided with *other* VIDs'
            // speculative state (capacity eviction impossible) and the
            // global flush it raised cleared every speculative line —
            // the holder itself has none. The retry must succeed.
            AccessResult r2 =
                loadImpl(core, a, size, vid, wrongPath, serialized);
            if (r2.aborted)
                throw std::logic_error(
                    "fallback load aborted again after the global "
                    "flush it triggered");
            r2.latency += r.latency;
            r = r2;
        }
        policy_.noteFallbackCycles(r.latency);
    }
    return r;
}

AccessResult
CacheSystem::loadImpl(CoreId core, Addr a, unsigned size, Vid vid,
                      bool wrongPath, bool serialized)
{
    const Addr la = lineAddr(a);
    assert(lineOffset(a) + size <= kLineBytes);

    AccessResult r;
    r.latency = cfg_.l1Latency;
    ++stats_.loads;

    // A serialized fallback access runs with full non-speculative
    // semantics: request VID 0, no marks, no SLA, no read/write sets.
    const bool spec =
        cfg_.hmtxEnabled && vid != kNonSpecVid && !serialized;
    if (wrongPath)
        ++stats_.wrongPathLoads;
    else if (spec)
        ++stats_.specLoads;

    // Wrong-path loads move data around but, with SLAs, never mark
    // lines (§5.1). With SLAs disabled they mark like any other load,
    // which is the false-misspeculation source prior systems suffer.
    const bool mark = spec && (!wrongPath || !cfg_.slaEnabled);
    const Vid reqVid = spec ? vid : lcVid_;

    Cache& l1 = caches_[core];
    Line* v = findLocal(l1, la, reqVid, false);
    if (v) {
        ++stats_.l1Hits;
        r.l1Hit = true;
        v->lastUse = ++useClock_;
        r.value = readData(*v, a, size);
        if (mark) {
            if (v->state == State::SpecShared && v->latestCopy) {
                // Record the read on the local copy; store broadcasts
                // aggregate these distributed marks.
                if (vid > v->tag.high) {
                    r.needSla = true;
                    fpClear(*v); // mark raise without syncLine
                    v->tag.high = vid;
                }
            } else {
                applyReadMark(core, *v, vid, r);
            }
            if (wrongPath && r.needSla)
                v->highFromWrongPath = true;
        } else if (wrongPath && spec && cfg_.slaEnabled) {
            noteShadowWrongPath(la, vid);
        }
    } else {
        ++stats_.l1Misses;
        busAcquire(r, la);
        RemoteHit rh = findRemote(core, la, reqVid, false);
        if (rh.line) {
            ++stats_.snoopHits;
            r.latency += net_->transferLatency() + rh.extraLatency;
            Line& o = *rh.line;
            o.lastUse = ++useClock_;
            r.value = readData(o, a, size);
            if (isSpec(o.state)) {
                // The speculative owner responds; requester keeps a
                // silent S-S copy covering VIDs <= the request's. The
                // owner's mark/sharer mutations below bypass syncLine,
                // so its fast-path tags go explicitly.
                fpClear(o);
                if (mark && reqVid > o.tag.high) {
                    r.needSla = true;
                    o.tag.high = reqVid;
                    o.highFromWrongPath = wrongPath;
                } else if (!mark && wrongPath && spec &&
                           cfg_.slaEnabled) {
                    noteShadowWrongPath(la, vid);
                }
                LineData d = dataOf(o);
                bool latest = isSpecLatest(o.state);
                // Latest-version copies carry a local read mark —
                // zero for non-marking requests (wrong-path loads
                // must not plant marks, §5.1). Superseded copies
                // carry their coverage bound instead.
                VersionTag t{o.tag.mod,
                             latest ? (mark ? reqVid : kNonSpecVid)
                                    : reqVid + 1};
                o.mayHaveSharers = true;
                if (Line* nl = allocateOpt(l1, la)) {
                    nl->state = State::SpecShared;
                    nl->tag = t;
                    nl->latestCopy = latest;
                    dataOf(*nl) = d;
                    syncLine(*nl);
                }
            } else if (mark) {
                // First speculative access: gain writable access and
                // migrate ownership to the requesting core (§4.2).
                // Peer latest-copy read marks fold into the new owner,
                // as in the local upgrade path.
                bool dirty = o.dirty || anyNonSpecDirty(la, &o);
                LineData d = dataOf(o);
                // The dirty committed payload survives only in `d`
                // once the peers are invalidated, and the allocation
                // below may capacity-abort: flush it to memory first.
                if (dirty) {
                    mem_.writeLine(la, d);
                    ++stats_.writebacks;
                }
                DroppedMark dm = invalidateNonSpecPeers(la, nullptr);
                Line* nl = allocate(l1, la);
                if (!nl) {
                    r.aborted = true;
                    return r;
                }
                nl->state = specUpgradeState(dirty);
                nl->tag = {kNonSpecVid, std::max(vid, dm.high)};
                nl->dirty = dirty;
                nl->highFromWrongPath =
                    vid > dm.high ? wrongPath : dm.wrongPath;
                dataOf(*nl) = d;
                syncLine(*nl);
                // A folded peer mark covering this VID means the read
                // planted nothing new (same rule as a hit under a live
                // owner mark).
                r.needSla = vid > dm.high;
            } else {
                // Plain MOESI read miss served cache-to-cache.
                if (o.state == State::Modified)
                    o.state = State::Owned;
                else if (o.state == State::Exclusive)
                    o.state = State::Shared;
                syncLine(o);
                LineData d = dataOf(o);
                Line* nl = allocate(l1, la);
                if (!nl) {
                    r.aborted = true;
                    return r;
                }
                nl->state = State::Shared;
                dataOf(*nl) = d;
                syncLine(*nl);
                if (wrongPath && spec && cfg_.slaEnabled)
                    noteShadowWrongPath(la, vid);
            }
        } else {
            // Satisfied by main memory.
            ++stats_.memFetches;
            r.latency += cfg_.memLatency;
            const LineData& md = mem_.readLine(la);
            LineData d = md;
            if (rh.assertModified) {
                // §5.4: the pristine version overflowed to memory; it
                // returns as S-O(0, reqVid + 1).
                ++stats_.soRefetches;
                // Merge with an existing local copy of the pristine
                // version, if any, to keep responder hits unambiguous.
                Line* exist = nullptr;
                for (auto& l : l1.set(la).lines) {
                    if (l.state != State::Invalid && l.base == la &&
                        isSpec(l.state) && l.tag.mod == kNonSpecVid &&
                        isSpecSuperseded(l.state)) {
                        exist = &l;
                        break;
                    }
                }
                if (exist) {
                    fpClear(*exist); // coverage raise without syncLine
                    exist->tag.high =
                        std::max(exist->tag.high, reqVid + 1);
                    exist->lastUse = ++useClock_;
                } else if (Line* nl = allocateOpt(l1, la)) {
                    // Best effort: if no slot is free the value is
                    // still served; a later conflicting store is
                    // caught conservatively by the §5.4 assertion.
                    nl->state = State::SpecOwned;
                    nl->tag = {kNonSpecVid, reqVid + 1};
                    dataOf(*nl) = d;
                    syncLine(*nl);
                }
                if (mark)
                    r.needSla = true;
            } else {
                Line* nl = allocate(l1, la);
                if (!nl) {
                    r.aborted = true;
                    return r;
                }
                dataOf(*nl) = d;
                if (mark) {
                    nl->state = State::SpecExclusive;
                    nl->tag = {kNonSpecVid, vid};
                    nl->highFromWrongPath = wrongPath;
                    r.needSla = true;
                } else {
                    nl->state = State::Exclusive;
                    if (wrongPath && spec && cfg_.slaEnabled)
                        noteShadowWrongPath(la, vid);
                }
                syncLine(*nl);
            }
            r.value = 0;
            unsigned off = lineOffset(a);
            for (unsigned i = 0; i < size; ++i)
                r.value |= static_cast<std::uint64_t>(d[off + i])
                    << (8 * i);
        }
    }

    if (spec && !wrongPath) {
        // The local L1 hit is the only path hot enough to warrant the
        // rw-mark fast path; misses always pay the set insert.
        recordRead(vid, la, r.l1Hit ? v : nullptr);
        if (r.needSla) {
            // SLA sent once the load retires; occupies the fabric but
            // does not stall the core (§5.1).
            ++stats_.slaNeeded;
            net_->post(eq_.curTick(), FabricOp::Sla, la);
        }
    }

    // §7.1 ablation: Vachharajani's design creates a new line version
    // on every read from a new VID, adding cache pressure.
    if (cfg_.copyOnRead && mark && r.needSla && !r.aborted) {
        // A real allocation, as in Vachharajani's design: the
        // duplicate competes for ways with live lines (and can even
        // force capacity aborts), which is exactly the §7.1 critique.
        Line* dup = allocate(l1, la);
        if (dup) {
            // The duplicate models the redundant per-VID version of
            // Vachharajani's design: it competes for ways like any
            // speculative version (and is flushed once its VID
            // commits), but its empty hit range keeps it from ever
            // serving (or corrupting) a request.
            dup->state = State::SpecOwned;
            dup->tag = {1, 1};
            syncLine(*dup);
            ++stats_.corDuplicates;
        }
    }

    // Plant the fast-path load tag when an identical re-access would
    // be a pure hit: local hit, and the mark logic is a guaranteed
    // no-op on the line's *post*-access state (this access may itself
    // have planted the mark that makes the next one free). The probe
    // re-validates the rw-mark short-circuit dynamically, so recording
    // state needs no freezing here.
    // ...and the line must keep serving this prober across commits
    // (commit() does not bump fastGen_). A nonspec probe re-binds to
    // the moving lcVid_ watermark, so a speculative version — whose
    // nonspec visibility ends when its bounding VID commits (the
    // reconcile the probe skips would retire it) — must never carry a
    // nonspec tag; only plain MOESI lines qualify. A spec prober is
    // fenced by the probe's own-commit watermark, and its live read
    // mark pins tag.high above lcVid_, so no commit of another VID
    // can fold the line out from under the tag.
    if (fastEnabled_ && r.l1Hit && !wrongPath && !serialized) {
        const bool pure = spec
            ? (v->state == State::SpecShared && v->latestCopy
                   ? vid <= v->tag.high
                   : classifyReadMark(v->state, v->tag, vid) ==
                         ReadMarkAction::None)
            : !isSpec(v->state);
        if (pure)
            fpTag(*v, fastEffVid(vid), false);
    }
    return r;
}

// --- stores ------------------------------------------------------------------

AccessResult
CacheSystem::store(CoreId core, Addr a, std::uint64_t value,
                   unsigned size, Vid vid)
{
    // Zero-event fast path (DESIGN.md §13): a tagged silent in-place
    // write skips the policy preamble, the limited-set check (a no-op
    // under the plain-policy gate), and findLocal's reconcile pass.
    if (fastEnabled_) {
        AccessResult fr;
        if (fastAccess(core, a, value, size, vid, true, fr))
            return fr;
    }

    ++stats_.stores;
    if (!cfg_.hmtxEnabled || vid == kNonSpecVid)
        return nonSpecStore(core, a, value, size);

    if (policy_.onSpecAccess(vid, lcVid_)) {
        // Serialized fallback: the lock holder writes committed
        // memory directly. The store can still collide with *other*
        // VIDs' speculative state; the global flush that raises
        // cannot touch the holder (it owns no speculative state), so
        // one retry after the flush always completes.
        AccessResult r = nonSpecStore(core, a, value, size);
        if (r.aborted) {
            AccessResult r2 = nonSpecStore(core, a, value, size);
            if (r2.aborted)
                throw std::logic_error(
                    "fallback store aborted again after the global "
                    "flush it triggered");
            r2.latency += r.latency;
            r = r2;
        }
        policy_.noteFallbackCycles(r.latency);
        return r;
    }

    const Addr la = lineAddr(a);
    assert(lineOffset(a) + size <= kLineBytes);

    if (limitedSetBlocks(vid, la)) {
        AccessResult r;
        r.latency = cfg_.l1Latency;
        ++stats_.specStores;
        ++stats_.capacityAborts;
        policy_.noteLimitedSetAbort();
        triggerAbort(nullptr);
        r.aborted = true;
        return r;
    }

    ++stats_.specStores;

    AccessResult r;
    r.latency = cfg_.l1Latency;
    Cache& l1 = caches_[core];

    Line* v = findLocal(l1, la, vid, true);
    if (v && v->state == State::SpecModified && v->tag.mod == vid &&
        v->tag.high == vid && !v->mayHaveSharers) {
        // We own this version exclusively: silent in-place write.
        writeData(*v, a, value, size);
        v->dirty = true;
        syncLine(*v);
        v->lastUse = ++useClock_;
        r.l1Hit = true;
        ++stats_.l1Hits;
        recordWrite(vid, la, v);
        checkShadowAvoided(la, vid);
        // Re-running this store is a pure in-place hit from here on
        // (state/tags final, rw mark planted); tag it for the fast
        // path. Planted after syncLine, so the tag survives.
        fpTag(*v, vid, true);
        return r;
    }

    busAcquire(r, la);
    Line* owner = v;
    Cache* ownerCache = owner ? &l1 : nullptr;
    RemoteHit rh;
    if (!owner) {
        rh = findRemote(core, la, vid, true);
        owner = rh.line;
        ownerCache = rh.cache;
        if (owner)
            r.latency += net_->transferLatency() + rh.extraLatency;
    }

    if (!owner) {
        if (rh.assertModified) {
            // The superseded pristine version overflowed to memory and
            // a later version exists: this earlier store arrives out
            // of order (§4.3 / §5.4), abort conservatively.
            triggerAbort(nullptr);
            r.aborted = true;
            return r;
        }
        // Cold store miss: build the first speculative version.
        ++stats_.memFetches;
        r.latency += cfg_.memLatency;
        LineData d = mem_.readLine(la);
        Line* nl = allocate(l1, la);
        if (!nl) {
            r.aborted = true;
            return r;
        }
        nl->state = State::SpecModified;
        nl->tag = {vid, vid};
        nl->dirty = true;
        dataOf(*nl) = d;
        writeData(*nl, a, value, size);
        syncLine(*nl);
        ++stats_.newVersions;
        trace_.event(TraceProtocol, eq_.curTick(),
                     "new version S-M(%u,%u) of %#llx at core %u "
                     "(cold)",
                     vid, vid, static_cast<unsigned long long>(la),
                     core);
        recordWrite(vid, la, nl);
        checkShadowAvoided(la, vid);
        return r;
    }

    // Aggregate the distributed read marks from latest-version S-S
    // copies: a peer cache may have served a higher VID locally.
    // This applies both to speculative latest owners (S-M/S-E) and to
    // non-speculative owners whose retired readers left copies.
    VersionTag eff = owner->tag;
    if (!isSpecSuperseded(owner->state)) {
        net_->post(eq_.curTick(), FabricOp::StoreAggregate, la);
        forEachSnoopTarget(la, [&](std::size_t ci) {
            for (auto& l : caches_[ci].set(la).lines) {
                if (l.state == State::SpecShared && l.base == la &&
                    l.latestCopy) {
                    eff.high = std::max(eff.high, l.tag.high);
                    if (l.highFromWrongPath &&
                        l.tag.high > owner->tag.high) {
                        fpClear(*owner); // flag set without syncLine
                        owner->highFromWrongPath = true;
                    }
                }
            }
        });
    }
    StoreAction act = classifyStoreWithMarks(owner->state, eff, vid);
    if (act == StoreAction::Abort) {
        triggerAbort(owner);
        r.aborted = true;
        return r;
    }

    if (act == StoreAction::InPlace) {
        // The version exists (an MTX peer thread created it); pull it
        // into our L1 exclusively and write.
        invalidatePeerSpecShared(la, owner, vid);
        if (ownerCache != &l1) {
            Line copy = *owner;
            LineData d = dataOf(*owner);
            owner->state = State::Invalid;
            syncLine(*owner);
            Line* nl = allocate(l1, la);
            if (!nl) {
                r.aborted = true;
                return r;
            }
            *nl = copy;
            dataOf(*nl) = d;
            owner = nl;
        }
        owner->mayHaveSharers = false;
        writeData(*owner, a, value, size);
        owner->dirty = true;
        syncLine(*owner);
        owner->lastUse = ++useClock_;
        recordWrite(vid, la, owner);
        checkShadowAvoided(la, vid);
        return r;
    }

    // NewVersion: keep the pristine copy in S-O and create S-M(y,y).
    LineData base = dataOf(*owner);
    if (isSpec(owner->state)) {
        owner->state = State::SpecOwned;
        owner->tag.high = vid;
    } else {
        // The hitting copy may be a clean Shared one while a dirty
        // Owned copy lives elsewhere; the surviving S-O owner must
        // inherit the true dirtiness or committed data could be
        // dropped on eviction.
        owner->dirty = owner->dirty || anyNonSpecDirty(la, owner);
        owner->state = State::SpecOwned;
        owner->tag = {kNonSpecVid, vid};
    }
    owner->mayHaveSharers = false;
    syncLine(*owner);
    fixPeersForNewVersion(la, owner, vid);
    Line* nl = allocate(l1, la);
    if (!nl) {
        r.aborted = true;
        return r;
    }
    nl->state = State::SpecModified;
    nl->tag = {vid, vid};
    nl->dirty = true;
    dataOf(*nl) = base;
    writeData(*nl, a, value, size);
    syncLine(*nl);
    ++stats_.newVersions;
    trace_.event(TraceProtocol, eq_.curTick(),
                 "new version S-M(%u,%u) of %#llx at core %u", vid,
                 vid, static_cast<unsigned long long>(la), core);
    recordWrite(vid, la, nl);
    checkShadowAvoided(la, vid);
    return r;
}

AccessResult
CacheSystem::nonSpecStore(CoreId core, Addr a, std::uint64_t value,
                          unsigned size)
{
    const Addr la = lineAddr(a);
    AccessResult r;
    r.latency = cfg_.l1Latency;
    Cache& l1 = caches_[core];

    Line* v = findLocal(l1, la, lcVid_, true);
    if (v && (v->state == State::Modified ||
              v->state == State::Exclusive)) {
        writeData(*v, a, value, size);
        v->state = State::Modified;
        v->dirty = true;
        syncLine(*v);
        v->lastUse = ++useClock_;
        r.l1Hit = true;
        ++stats_.l1Hits;
        // The line is now M and dirty: re-running this store is a pure
        // in-place write. fpTag is a no-op when the caller is the
        // serialized-fallback path (fastEnabled_ is false for the
        // bounded policies), so the tag never lies about a lock hold.
        fpTag(*v, kNonSpecVid, true);
        return r;
    }

    busAcquire(r, la);
    Line* owner = v;
    RemoteHit rh;
    if (!owner) {
        rh = findRemote(core, la, lcVid_, true);
        owner = rh.line;
        if (owner)
            r.latency += net_->transferLatency() + rh.extraLatency;
    }

    if (owner && isSpec(owner->state)) {
        // Committed code is writing data a live transaction touched:
        // conservative abort (the transaction read stale state).
        triggerAbort(owner);
        r.aborted = true;
        return r;
    }
    // Distributed read marks: a live transaction may have recorded
    // its read on a latest-version S-S copy instead of the owner.
    // Find the offender first, then abort: triggerAbort rewrites the
    // whole cache system and must not run mid-snoop.
    Line* offender = nullptr;
    forEachSnoopTarget(la, [&](std::size_t ci) {
        if (offender)
            return;
        for (auto& l : caches_[ci].set(la).lines) {
            if (l.state == State::SpecShared && l.base == la &&
                l.latestCopy && l.tag.high > lcVid_) {
                offender = &l;
                return;
            }
        }
    });
    if (offender) {
        triggerAbort(offender);
        r.aborted = true;
        return r;
    }

    LineData d;
    if (owner) {
        d = dataOf(*owner);
    } else {
        if (rh.assertModified) {
            triggerAbort(nullptr);
            r.aborted = true;
            return r;
        }
        ++stats_.memFetches;
        r.latency += cfg_.memLatency;
        d = mem_.readLine(la);
    }

    // The peers about to be invalidated may include the only dirty
    // copy of the committed line (the owner itself, or an O copy when
    // a clean S copy answered). Its payload lives only in `d` from
    // here on — and the allocation below may capacity-abort, dropping
    // `d` — so flush the committed data to memory first.
    if ((owner && owner->dirty) || anyNonSpecDirty(la, owner)) {
        mem_.writeLine(la, d);
        ++stats_.writebacks;
    }
    invalidateNonSpecPeers(la, nullptr);
    Line* nl = allocate(l1, la);
    if (!nl) {
        r.aborted = true;
        return r;
    }
    nl->state = State::Modified;
    nl->dirty = true;
    dataOf(*nl) = d;
    writeData(*nl, a, value, size);
    syncLine(*nl);
    return r;
}

// --- SLA ----------------------------------------------------------------

bool
CacheSystem::slaConfirm(CoreId core, const SlaEntry& e)
{
    const Addr la = lineAddr(e.addr);
    net_->post(eq_.curTick(), FabricOp::Sla, la);

    Cache& l1 = caches_[core];
    Line* cur = findLocal(l1, la, e.vid, false);
    if (!cur) {
        RemoteHit rh = findRemote(core, la, e.vid, false);
        cur = rh.line;
    }

    std::uint64_t now;
    if (cur) {
        now = readData(*cur, e.addr, e.size);
    } else {
        now = mem_.read(e.addr, e.size);
    }
    if (now != e.value) {
        ++stats_.slaMismatchAborts;
        trace_.event(TraceSla, eq_.curTick(),
                     "SLA mismatch at %#llx vid %u",
                     static_cast<unsigned long long>(e.addr), e.vid);
        triggerAbort(nullptr);
        return false;
    }
    if (cur && cur->state != State::SpecShared) {
        AccessResult dummy;
        applyReadMark(core, *cur, e.vid, dummy);
    }
    ++stats_.slaConfirms;
    return true;
}

// --- zero-event hit fast path (DESIGN.md §13) --------------------------------

/**
 * Probe for a currently-valid fast-path tag. Scans the L1 set
 * directly — no reconcile, no VidComparator counts: the comparator
 * diagnostics are not part of SysStats or any differential comparison,
 * and the tag's validity already proves reconcile would be a no-op
 * (lcVid_ unchanged since the tag was planted).
 *
 * Returns the tagged line when the access can retire on the fast path,
 * nullptr when it must take the full path. A tag for the right VID
 * whose generation is stale counts as a rejection but keeps scanning:
 * two versions of the same line address may coexist in a set, and the
 * protocol's uniqueness invariant only guarantees at most one
 * *currently-valid* tag per (address, VID, direction).
 */
Line*
CacheSystem::fastProbe(CoreId core, Addr a, Vid vid, bool isStore)
{
    ++fastStats_.attempts;
    const Addr la = lineAddr(a);
    const Vid eff = fastEffVid(vid);
    const bool spec = eff != kNonSpecVid;
    for (Line& l : caches_[core].set(la).lines) {
        if (l.base != la || l.state == State::Invalid)
            continue;
        if ((isStore ? l.fpStoreVid : l.fpLoadVid) != eff)
            continue;
        if (l.fpGen != fastGen_) {
            ++fastStats_.genRejections;
            continue;
        }
        if (spec) {
            // Commit watermark: tags planted by now-committed VIDs are
            // dead (commit() does not bump fastGen_ — see the comment
            // there), and a committed line's pending reconcile is real
            // work the fast path must not skip.
            if (vid <= lcVid_)
                return nullptr;
            // Dynamic guards for state the tag cannot vouch for:
            // shadow_ can be populated by a wrong-path load that never
            // touched this line (checkShadowAvoided's side effects
            // would then diverge), and another VID's slow-path access
            // can steal the line's rw mark without invalidating the
            // fast tags. The current rw mark proves the
            // recordRead/recordWrite hash insert is a no-op.
            if (isStore && !shadow_.empty())
                return nullptr;
            if (l.rwGen != rwGen_ ||
                (isStore ? l.rwWriteVid : l.rwReadVid) != vid)
                return nullptr;
        }
        return &l;
    }
    return nullptr;
}

/**
 * Data half of a fast retirement: the only line mutations (payload
 * bytes + LRU stamp). Pure payload moves via dataOf — safe to run on
 * an engine worker thread when the commute-aware apply batches
 * accesses on distinct banks (distinct banks imply distinct lines and
 * payload planes).
 */
std::uint64_t
CacheSystem::fastData(Line& l, Addr a, std::uint64_t value,
                      unsigned size, bool isStore, Tick stamp)
{
    l.lastUse = stamp;
    if (isStore) {
        writeData(l, a, value, size);
        return 0;
    }
    return readData(l, a, size);
}

/**
 * Accounting half of a fast retirement: exactly the SysStats bumps the
 * full path performs on the corresponding pure hit. Coordinator-only.
 */
void
CacheSystem::fastAccount(bool isStore, bool spec)
{
    if (isStore) {
        ++stats_.stores;
        if (spec)
            ++stats_.specStores;
        ++fastStats_.storeHits;
    } else {
        ++stats_.loads;
        if (spec)
            ++stats_.specLoads;
        ++fastStats_.loadHits;
    }
    ++stats_.l1Hits;
}

/**
 * Complete inline fast access: probe, data, accounting. Returns true
 * and fills `r` when the access retired on the fast path.
 */
bool
CacheSystem::fastAccess(CoreId core, Addr a, std::uint64_t value,
                        unsigned size, Vid vid, bool isStore,
                        AccessResult& r)
{
    Line* l = fastProbe(core, a, vid, isStore);
    if (!l)
        return false;
    r.value = fastData(*l, a, value, size, isStore, ++useClock_);
    r.latency = cfg_.l1Latency;
    r.l1Hit = true;
    r.fastHit = true;
    fastAccount(isStore, fastEffVid(vid) != kNonSpecVid);
    return true;
}

} // namespace hmtx::sim
