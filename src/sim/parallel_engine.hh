/**
 * @file
 * Conservative parallel discrete-event engine (DESIGN.md §11).
 *
 * The engine splits every simulated memory operation into two halves:
 *
 *  - STAGE: the workload code between two memory operations runs on a
 *    host worker thread. It is pure with respect to simulator state —
 *    it only computes the next operation's *intent* (kind, address,
 *    value, size) and suspends.
 *  - APPLY: the coordinator thread retires staged intents in exact
 *    event order, performing the protocol access (CacheSystem, fabric
 *    occupancy, branch predictor, SLA queue) at the event's own tick.
 *
 * Because every apply happens on one thread in the same (tick, seq)
 * order the sequential loop would have used, results are bit-identical
 * by construction — the engine is conservative and never needs to roll
 * anything back. Parallelism comes from overlap: while the coordinator
 * retires lane k's access, workers are already staging the user code
 * of every other lane whose event is due at the same tick.
 *
 * The sound dispatch horizon is the current tick. A staged lane may
 * produce either a memory intent (which retires at its own slot and
 * wakes >= tick+1) or a section completion (which resumes executor
 * code at the slot, and that code may schedule at any future tick), so
 * the coordinator never advances simulated time past an undrained
 * in-flight slot. Events *at* the frontier tick dispatch freely:
 * anything a retirement schedules at the same tick receives a larger
 * sequence number than every already-popped event, exactly as in the
 * sequential loop.
 */

#ifndef HMTX_SIM_PARALLEL_ENGINE_HH
#define HMTX_SIM_PARALLEL_ENGINE_HH

#include <atomic>
#include <cassert>
#include <coroutine>
#include <deque>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "core/types.hh"
#include "sim/event_queue.hh"
#include "sim/stats.hh"
#include "sim/task.hh"

namespace hmtx::sim
{

/**
 * One staged memory operation, captured on a worker thread and
 * retired by the coordinator. Pure data: the semantics live in
 * runtime::ThreadContext::applyStaged().
 */
struct LaneIntent
{
    enum class Kind : std::uint8_t
    {
        Load,
        Store,
        Compute,
        Branch,
    };

    Kind kind = Kind::Compute;
    Addr addr = 0;
    std::uint64_t value = 0;
    unsigned size = 8;
    Cycles cycles = 0; // compute cost
    Addr pc = 0;       // branch pc
    bool taken = false;
};

/** Outcome of retiring one LaneIntent, consumed by the lane's
 *  suspended operation when its wake-up turn fires. */
struct StagedResult
{
    Tick wake = 0;
    std::uint64_t value = 0;
    bool abort = false;
    Vid vid = 0;
};

/**
 * The coordinator-side engine. Owns the lane mailboxes, the in-order
 * retirement queue, and the optional worker threads. Generic over the
 * runtime: the per-intent semantics are injected as an apply callback
 * so the sim layer stays independent of runtime::ThreadContext.
 */
class ParallelEngine
{
  public:
    using ApplyFn =
        std::function<StagedResult(std::uint32_t lane, const LaneIntent&)>;

    // Commute-aware apply (DESIGN.md §13). The runtime injects four
    // hooks; the engine stays ignorant of protocol types (the probed
    // line travels as an opaque pointer).
    //
    // ClassifyFn: coordinator-side. True when the intent may join a
    // commute batch. Memory intents qualify when they would retire on
    // the zero-event fast path; `line` is then the probed L1 line and
    // `klass` the commutativity class (the line address — the finest
    // refinement of the §9 bank partition). Compute/branch intents
    // qualify unconditionally with `line == nullptr`: they never
    // touch the memory system, so they commute with every other
    // member and are applied in full on the coordinator. Must be free
    // of architectural side effects.
    using ClassifyFn = std::function<bool(
        std::uint32_t lane, const LaneIntent&, void*& line,
        std::uint64_t& klass)>;
    // FastApplyFn: data half of a fast retirement (payload move, LRU
    // stamp, lane-local counters). Runs on a worker thread; touches
    // only the probed line and the lane's own context, so members of a
    // batch with pairwise-distinct classes commute.
    using FastApplyFn = std::function<StagedResult(
        std::uint32_t lane, const LaneIntent&, void* line, Tick stamp)>;
    // AccountFn: coordinator-side accounting half (shared SysStats
    // bumps), run once per batch member in retirement order.
    using AccountFn =
        std::function<void(std::uint32_t lane, const LaneIntent&)>;
    // ReserveFn: pre-assigns a contiguous run of n LRU stamps in
    // retirement order before the data halves run concurrently;
    // returns the first stamp.
    using ReserveFn = std::function<Tick(unsigned n)>;

    /**
     * @param lanes    number of simulated cores (one lane each)
     * @param workers  host staging threads; 0 = inline on coordinator
     * @param windowTicks  accounting window (min c2c latency, >= 1)
     */
    ParallelEngine(EventQueue& eq, unsigned lanes, unsigned workers,
                   Tick windowTicks);
    ~ParallelEngine();

    /** Injected by the runtime glue once thread contexts exist. */
    void setApply(ApplyFn fn) { apply_ = std::move(fn); }

    /**
     * Enables the commute-aware apply: when the ready prefix of the
     * retirement queue holds >= 2 fast-path-eligible intents on
     * pairwise-distinct classes, their data halves run concurrently on
     * the existing workers while accounting and wake-up scheduling
     * stay in exact retirement order. Never set for configurations
     * where the fast path is disabled.
     */
    void
    setFastPath(ClassifyFn c, FastApplyFn f, AccountFn a, ReserveFn r)
    {
        classify_ = std::move(c);
        fastApply_ = std::move(f);
        account_ = std::move(a);
        reserve_ = std::move(r);
    }

    /** True when lane @p lane is inside a staged section — its memory
     *  operations must capture intents instead of executing. */
    bool
    staging(std::uint32_t lane) const
    {
        return lanes_[lane].staging;
    }

    /**
     * Opens a staged section: @p child (the workload stage coroutine)
     * will run on a worker; @p parent (the suspended executor) resumes
     * on the coordinator when the section completes. Called at the
     * current event slot.
     */
    void beginSection(std::uint32_t lane, std::coroutine_handle<> child,
                      std::coroutine_handle<> parent);

    /** Worker side: records the next operation's intent. */
    void
    stageIntent(std::uint32_t lane, const LaneIntent& in)
    {
        Lane& ln = lanes_[lane];
        ln.intent = in;
        ln.hasIntent = true;
    }

    /** Worker side: records where the lane resumes on its next turn. */
    void
    stageSuspend(std::uint32_t lane, std::coroutine_handle<> h)
    {
        lanes_[lane].resumeNext = h;
    }

    /** Worker side: result of the lane's previously retired intent. */
    const StagedResult&
    stagedResult(std::uint32_t lane) const
    {
        return lanes_[lane].result;
    }

    /** Runs the event loop until no events or sections remain. */
    void run();

    /**
     * Retires every in-flight section synchronously. Machine::spawn
     * calls this after starting each root so spawn-time protocol
     * accesses happen in the same order as the sequential loop.
     */
    void drainAll();

    bool threaded() const { return !threads_.empty(); }
    const ParStats& stats() const { return stats_; }

  private:
    enum : std::uint32_t
    {
        kIdle = 0, // lane owned by coordinator, nothing in flight
        kBusy = 1, // job handed to a worker
        kReady = 2 // worker published the outcome
    };

    struct alignas(64) Lane
    {
        /** Mailbox state; the only cross-thread field. */
        std::atomic<std::uint32_t> phase{kIdle};
        /** Lane is inside a staged section (coordinator-owned; the
         *  worker reads it only via the job handoff). */
        bool staging = false;
        /** Handle to resume on the next dispatch: the section root at
         *  section start, then the suspended op after each turn. */
        std::coroutine_handle<> resumeNext;
        /** Executor continuation resumed at section completion. */
        std::coroutine_handle<> parent;
        /** Set by stageIntent between dispatch and publish. */
        bool hasIntent = false;
        LaneIntent intent;
        StagedResult result;
        /** Tick of the event slot this turn was dispatched at. */
        Tick slotTick = 0;
        /** Fast-job operands (coordinator writes before the ring push,
         *  worker reads after the pop — synchronized by the ring). */
        void* fastLine = nullptr;
        Tick fastStamp = 0;
    };

    /** Runs one staged turn of @p lane (worker thread or inline). */
    void runLane(Lane& ln);

    /** Hands lane @p lane to its worker (or runs it inline) and
     *  appends it to the retirement queue at slot @p when. */
    void dispatch(std::uint32_t lane, Tick when);

    /** True when the retirement-queue head's outcome is published. */
    bool
    headReady() const
    {
        return lanes_[fifo_.front()].phase.load(
                   std::memory_order_acquire) == kReady;
    }

    /** Blocks until the retirement-queue head's outcome is published
     *  (counts a barrier stall when it has to wait). */
    void waitHead();

    /** Retires the retirement-queue head; blocks on the worker if the
     *  outcome is not yet published. */
    void commitHead();

    /**
     * Retires the head knowing it is ready: gathers the maximal
     * fast-eligible prefix on pairwise-distinct classes and commits it
     * as one concurrent batch, else falls back to commitHead().
     */
    void commitReady();

    /** Commits the first @p n queue entries (classified into
     *  batchLines_) concurrently. @pre n >= 2 */
    void commitBatch(std::size_t n);

    void workerMain(unsigned w);

    EventQueue& eq_;
    ApplyFn apply_;
    std::vector<Lane> lanes_;
    /** Lane turns in dispatch (= slot) order awaiting retirement. */
    std::deque<std::uint32_t> fifo_;
    /** Sections opened while a retirement is resuming executor code
     *  belong at the *current* slot: they are collected here and
     *  spliced to the front of fifo_, preserving slot order. */
    std::vector<std::uint32_t> bornInCommit_;
    bool inCommit_ = false;

    /** Per-worker SPSC job rings (coordinator -> worker): a slot holds
     *  a lane index (high bit set = fast-apply job for that lane), or
     *  kStopJob to shut the worker down. */
    static constexpr std::uint32_t kStopJob = ~std::uint32_t{0};
    static constexpr std::uint32_t kFastJobBit = 0x80000000u;
    struct WorkerRing;
    std::vector<std::unique_ptr<WorkerRing>> rings_;
    std::vector<std::thread> threads_;

    // Commute-aware apply hooks and scratch (coordinator-owned).
    ClassifyFn classify_;
    FastApplyFn fastApply_;
    AccountFn account_;
    ReserveFn reserve_;
    /** Probed lines / classes of the batch being gathered, indexed in
     *  queue order. */
    std::vector<void*> batchLines_;
    std::vector<std::uint64_t> batchKlass_;
    /** Fast jobs still running on workers (batch completion barrier). */
    std::atomic<std::uint32_t> fastOutstanding_{0};

    Tick windowTicks_ = 1;
    Tick windowEnd_ = 0;
    ParStats stats_;
};

/**
 * Awaitable wrapping one workload stage invocation. Sequential mode
 * (null engine) is byte-for-byte the plain `co_await task` chain:
 * symmetric transfer into the child, resume of the parent from the
 * child's final suspend. Parallel mode hands the child to the engine
 * and returns to the event loop, letting the stage's user code overlap
 * with other lanes.
 */
class StagedSection
{
  public:
    StagedSection(ParallelEngine* eng, std::uint32_t lane, Task<void> t)
        : eng_(eng), lane_(lane), t_(std::move(t))
    {}

    bool await_ready() const noexcept { return false; }

    std::coroutine_handle<>
    await_suspend(std::coroutine_handle<> parent) noexcept
    {
        if (eng_ == nullptr) {
            t_.setContinuation(parent);
            return t_.handle();
        }
        eng_->beginSection(lane_, t_.handle(), parent);
        return std::noop_coroutine();
    }

    /** Rethrows the child's exception (TxAborted) on the coordinator,
     *  exactly as the sequential `co_await task` would. */
    void await_resume() { t_.rethrow(); }

  private:
    ParallelEngine* eng_;
    std::uint32_t lane_;
    Task<void> t_;
};

} // namespace hmtx::sim

#endif // HMTX_SIM_PARALLEL_ENGINE_HH
