/**
 * @file
 * C++20 coroutine task type used to express simulated threads.
 *
 * Workload and runtime code is written as straight-line coroutines that
 * co_await memory operations and delays; the event queue resumes them
 * when the simulated latency has elapsed. Tasks are lazily started,
 * awaitable (with symmetric transfer to the awaiter on completion), and
 * propagate exceptions — which the runtime uses to unwind a thread out
 * of an aborted transaction (TxAborted).
 */

#ifndef HMTX_SIM_TASK_HH
#define HMTX_SIM_TASK_HH

#include <cassert>
#include <coroutine>
#include <cstddef>
#include <exception>
#include <new>
#include <utility>
#include <vector>

namespace hmtx::sim
{

/**
 * Thrown out of a memory operation when the surrounding multithreaded
 * transaction has aborted; the executor catches it at the stage root
 * and runs recovery (the initMTX handler analog, §3.1).
 */
struct TxAborted
{
    /** VID whose abort unwound this thread (0 if a global abort). */
    unsigned vid = 0;
};

template <typename T = void>
class Task;

namespace detail
{

/**
 * Size-bucketed recycler for coroutine frames. Every simulated memory
 * operation is a short-lived Task whose frame would otherwise hit the
 * global heap twice (allocate + free) — millions of times per run.
 * Freed frames are kept in per-size free lists and handed back to the
 * next coroutine of the same size. The pool is per-thread and only
 * ever as large as the peak number of simultaneously live frames.
 *
 * Thread convention (PR 3 / parallel engine): a frame's storage comes
 * from ::operator new, so releasing it into a *different* thread's
 * free list is safe — the block is simply recycled (and eventually
 * deleted) by that thread. The parallel engine's static lane-to-worker
 * map keeps the common alloc/free pairs on one thread anyway; only
 * abnormal teardown of a suspended lane crosses threads.
 */
class FramePool
{
  public:
    static void*
    allocate(std::size_t n)
    {
        const std::size_t b = bucket(n);
        if (b < kBuckets) {
            auto& fl = lists()[b];
            if (!fl.empty()) {
                void* p = fl.back();
                fl.pop_back();
                return p;
            }
            return ::operator new((b + 1) * kGrain);
        }
        return ::operator new(n);
    }

    static void
    release(void* p, std::size_t n) noexcept
    {
        const std::size_t b = bucket(n);
        if (b < kBuckets) {
            // vector growth can throw; a frame is dropped to the heap
            // rather than propagating from a noexcept delete.
            try {
                lists()[b].push_back(p);
                return;
            } catch (...) {
            }
        }
        ::operator delete(p);
    }

  private:
    static constexpr std::size_t kGrain = 64;
    static constexpr std::size_t kBuckets = 64; // frames up to 4 KiB

    static std::size_t bucket(std::size_t n) { return (n - 1) / kGrain; }

    static std::vector<void*>*
    lists()
    {
        // The destructor returns pooled blocks to the heap at thread
        // exit; a bare vector would free only its own buffer and leak
        // every recycled frame it still holds.
        struct Lists
        {
            std::vector<void*> fl[kBuckets];

            ~Lists()
            {
                for (auto& l : fl)
                    for (void* p : l)
                        ::operator delete(p);
            }
        };
        thread_local Lists l;
        return l.fl;
    }
};

struct FinalAwaiter
{
    bool await_ready() const noexcept { return false; }

    template <typename P>
    std::coroutine_handle<>
    await_suspend(std::coroutine_handle<P> h) noexcept
    {
        auto cont = h.promise().continuation;
        return cont ? cont : std::noop_coroutine();
    }

    void await_resume() const noexcept {}
};

struct PromiseBase
{
    std::coroutine_handle<> continuation;
    std::exception_ptr exception;

    std::suspend_always initial_suspend() noexcept { return {}; }
    FinalAwaiter final_suspend() noexcept { return {}; }
    void unhandled_exception() { exception = std::current_exception(); }

    // Route coroutine frames through the recycler.
    static void* operator new(std::size_t n)
    {
        return FramePool::allocate(n);
    }

    static void operator delete(void* p, std::size_t n) noexcept
    {
        FramePool::release(p, n);
    }
};

} // namespace detail

/**
 * A lazily started coroutine returning T.
 *
 * Ownership: the Task object owns the coroutine frame and destroys it;
 * a Task must stay alive until the coroutine completes (the runtime
 * keeps root tasks in the Machine until the event queue drains).
 */
template <typename T>
class Task
{
  public:
    struct promise_type : detail::PromiseBase
    {
        T value{};

        Task
        get_return_object()
        {
            return Task{Handle::from_promise(*this)};
        }

        void return_value(T v) { value = std::move(v); }
    };

    using Handle = std::coroutine_handle<promise_type>;

    /** Raw handle; the parallel engine resumes staged tasks itself. */
    std::coroutine_handle<> handle() const { return handle_; }

    /** Sets the completion continuation without starting the task. */
    void
    setContinuation(std::coroutine_handle<> c)
    {
        handle_.promise().continuation = c;
    }

    Task() = default;
    explicit Task(Handle h) : handle_(h) {}
    Task(Task&& o) noexcept : handle_(std::exchange(o.handle_, {})) {}

    Task&
    operator=(Task&& o) noexcept
    {
        if (this != &o) {
            destroy();
            handle_ = std::exchange(o.handle_, {});
        }
        return *this;
    }

    Task(const Task&) = delete;
    Task& operator=(const Task&) = delete;
    ~Task() { destroy(); }

    /** True once the coroutine has run to completion. */
    bool done() const { return !handle_ || handle_.done(); }

    /** Starts a root task (runs until its first suspension). */
    void
    start()
    {
        assert(handle_ && !handle_.done());
        handle_.resume();
    }

    /** Rethrows a root task's stored exception, if any. */
    void
    rethrow()
    {
        if (handle_ && handle_.promise().exception)
            std::rethrow_exception(handle_.promise().exception);
    }

    // Awaitable interface: awaiting a Task starts it and resumes the
    // awaiter when it completes.
    bool await_ready() const noexcept { return false; }

    std::coroutine_handle<>
    await_suspend(std::coroutine_handle<> cont) noexcept
    {
        handle_.promise().continuation = cont;
        return handle_;
    }

    T
    await_resume()
    {
        if (handle_.promise().exception)
            std::rethrow_exception(handle_.promise().exception);
        return std::move(handle_.promise().value);
    }

  private:
    void
    destroy()
    {
        if (handle_) {
            handle_.destroy();
            handle_ = {};
        }
    }

    Handle handle_;
};

/** Specialization for coroutines that return nothing. */
template <>
class Task<void>
{
  public:
    struct promise_type : detail::PromiseBase
    {
        Task
        get_return_object()
        {
            return Task{Handle::from_promise(*this)};
        }

        void return_void() {}
    };

    using Handle = std::coroutine_handle<promise_type>;

    /** Raw handle; the parallel engine resumes staged tasks itself. */
    std::coroutine_handle<> handle() const { return handle_; }

    /** Sets the completion continuation without starting the task. */
    void
    setContinuation(std::coroutine_handle<> c)
    {
        handle_.promise().continuation = c;
    }

    Task() = default;
    explicit Task(Handle h) : handle_(h) {}
    Task(Task&& o) noexcept : handle_(std::exchange(o.handle_, {})) {}

    Task&
    operator=(Task&& o) noexcept
    {
        if (this != &o) {
            destroy();
            handle_ = std::exchange(o.handle_, {});
        }
        return *this;
    }

    Task(const Task&) = delete;
    Task& operator=(const Task&) = delete;
    ~Task() { destroy(); }

    bool done() const { return !handle_ || handle_.done(); }

    void
    start()
    {
        assert(handle_ && !handle_.done());
        handle_.resume();
    }

    void
    rethrow()
    {
        if (handle_ && handle_.promise().exception)
            std::rethrow_exception(handle_.promise().exception);
    }

    bool await_ready() const noexcept { return false; }

    std::coroutine_handle<>
    await_suspend(std::coroutine_handle<> cont) noexcept
    {
        handle_.promise().continuation = cont;
        return handle_;
    }

    void
    await_resume()
    {
        if (handle_.promise().exception)
            std::rethrow_exception(handle_.promise().exception);
    }

  private:
    void
    destroy()
    {
        if (handle_) {
            handle_.destroy();
            handle_ = {};
        }
    }

    Handle handle_;
};

} // namespace hmtx::sim

#endif // HMTX_SIM_TASK_HH
