/**
 * @file
 * The HMTX memory system: per-core L1s, a shared L2, a pluggable
 * coherence interconnect, and main memory, running the MOESI protocol
 * extended with the paper's speculative states and version rules (§4).
 *
 * CacheSystem is the *orchestration* layer of the three-layer design
 * (DESIGN.md §8): protocol decisions come from the pure engine in
 * core/protocol.hh, fabric timing from the Interconnect behind
 * sim/interconnect.hh, and this class wires caches, indexes, and data
 * movement together. It is genuinely numCores-parametric; nothing here
 * knows which fabric is configured.
 *
 * The implementation is split across four translation units:
 *  - cache_system.cc         construction, index maintenance, checks
 *  - cache_system_lookup.cc  reconcile/hit/find, allocation, data
 *  - cache_system_access.cc  load/store/SLA and protocol actions
 *  - cache_system_bulk.cc    commit, abort, VID reset, flush
 */

#ifndef HMTX_SIM_CACHE_SYSTEM_HH
#define HMTX_SIM_CACHE_SYSTEM_HH

#include <bit>
#include <cstdint>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "core/comparator.hh"
#include "core/protocol.hh"
#include "core/sla.hh"
#include "core/types.hh"
#include "core/version_rules.hh"
#include "sim/cache.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/interconnect.hh"
#include "sim/memory.hh"
#include "sim/overflow_table.hh"
#include "sim/shard.hh"
#include "sim/stats.hh"
#include "sim/trace.hh"

namespace hmtx::sim
{

/** Outcome of one memory access through the hierarchy. */
struct AccessResult
{
    /** Loaded value (unspecified for stores and aborted accesses). */
    std::uint64_t value = 0;
    /** Total latency in cycles, including bus and memory time. */
    Cycles latency = 0;
    /**
     * For speculative loads: true when the line had not yet logged
     * this VID, so an SLA must be sent once the load retires (§5.1).
     */
    bool needSla = false;
    /** True when the access triggered a (global) abort. */
    bool aborted = false;
    /** True when the request was satisfied by the local L1. */
    bool l1Hit = false;
    /**
     * True when the zero-event fast path retired the access
     * (simulator-side: architectural effects are identical to the full
     * path; the runtime uses this as the event-bypass hint).
     */
    bool fastHit = false;
};

/**
 * Functional-with-latency model of the whole coherent memory system.
 *
 * Accesses complete atomically at issue time (state transitions happen
 * immediately and deterministically) and report the latency the
 * requester must stall for; fabric occupancy is tracked so concurrent
 * traffic serializes. This is the component the paper contributes:
 * everything in §4 and §5 is implemented here and in src/core.
 *
 * Abort model: any detected violation aborts *all* uncommitted
 * transactional state (§4.4: "on an abort for any VID, all uncommitted
 * transactional memory in the cache system is flushed"). An abort
 * generation counter lets thread contexts discover the abort at their
 * next operation and unwind.
 */
class CacheSystem
{
  public:
    CacheSystem(EventQueue& eq, const MachineConfig& cfg);

    /** The interconnect and stats members hold references into this
     *  object; moving would dangle them. */
    CacheSystem(const CacheSystem&) = delete;
    CacheSystem& operator=(const CacheSystem&) = delete;

    /**
     * Performs a load.
     *
     * @param core      requesting core
     * @param a         byte address (must not cross a line boundary)
     * @param size      1, 2, 4 or 8 bytes
     * @param vid       transaction VID; 0 for non-speculative
     * @param wrongPath true for squashed wrong-path loads injected by
     *                  the core model on a branch misprediction (§5.1)
     */
    AccessResult load(CoreId core, Addr a, unsigned size, Vid vid,
                      bool wrongPath = false);

    /** Performs a store. VID 0 is a non-speculative store. */
    AccessResult store(CoreId core, Addr a, std::uint64_t value,
                       unsigned size, Vid vid);

    /**
     * Processes a speculative load acknowledgment (§5.1): re-verifies
     * the value the load observed and, if unchanged, applies the
     * deferred VID marking. A mismatch triggers an abort.
     *
     * @return false if the verification failed (abort was triggered)
     */
    bool slaConfirm(CoreId core, const SlaEntry& e);

    /**
     * Group-commits transaction @p vid across all caches (§4.4).
     * Commits must be consecutive (§4.7); the next legal VID is
     * lcVid() + 1.
     * @return cycles the commit occupied the memory system
     */
    Cycles commit(Vid vid);

    /** Flushes all uncommitted transactional state (§4.4, Figure 7). */
    Cycles abortAll();

    /**
     * VID Reset (§4.6). Only legal once every outstanding transaction
     * has committed; the latest committed VID returns to 0.
     */
    Cycles vidReset();

    /** Highest committed VID (the LC VID register, §5.3). */
    Vid lcVid() const { return lcVid_; }

    /** Abort generation; bumps on every abort. */
    std::uint64_t abortGen() const { return abortGen_; }

    /**
     * Writes every reconciled dirty committed line back to memory and
     * marks it clean. Used at region boundaries so tests can compare
     * memory images.
     */
    void flushDirtyToMemory();

    /** Direct functional access helpers for test/workload setup. */
    MainMemory& memory() { return mem_; }

    const SysStats& stats() const { return stats_; }
    SysStats& stats() { return stats_; }

    const VidComparator& comparator() const { return cmp_; }

    const MachineConfig& config() const { return cfg_; }

    /**
     * The transaction-mode policy (core/tx_policy.hh): owns the
     * commit-walk, fallback-serialization, and limited-set decisions.
     * The runtime consults serializes() to exempt the fallback lock
     * holder from abort unwinding; reports read stats() as
     * sim.txmode.* rows.
     */
    const TxPolicy& txPolicy() const { return policy_; }

    /** The configured coherence fabric (exposed for tests/reports). */
    const Interconnect& interconnect() const { return *net_; }
    /** Mutable fabric access, so the model checker (check/explorer.hh)
     *  can install a DeliveryChooser at the reordering seam. */
    Interconnect& interconnect() { return *net_; }

    /** L1 of @p core (exposed for tests). */
    Cache& l1(CoreId core) { return caches_[core]; }
    /** The shared L2 (exposed for tests). */
    Cache& l2() { return caches_.back(); }
    /** The spec-line overflow table (unbounded-sets extension). */
    const OverflowTable& overflowTable() const { return overflow_; }

    /** Debug trace log (categories per MachineConfig::traceFlags). */
    Trace& trace() { return trace_; }

    /**
     * Protocol self-check: verifies that for every cached address and
     * every VID in [0, maxVid], at most one responder-class version
     * hits. Throws std::logic_error on violation. Used by tests.
     *
     * Read-only: reconciliation against the current LC VID is applied
     * to line *snapshots*, never to the cached state, so tests may
     * interleave this check anywhere without perturbing the run.
     */
    void checkInvariants();

    /**
     * Rebuilds the presence filter and registry invariants from a full
     * scan of every cache and compares them with the incrementally
     * maintained structures; throws std::logic_error on any mismatch.
     * Runs automatically after bulk protocol actions when
     * MachineConfig::indexCrossCheck is set.
     */
    void verifyIndexes();

    /**
     * Sorted line addresses currently recorded in @p vid's read set
     * (Figure 9 validation sets). Exposed for the golden-model
     * differential checker and tests.
     */
    std::vector<Addr> readSetOf(Vid vid) const;
    /** Sorted line addresses in @p vid's write set. */
    std::vector<Addr> writeSetOf(Vid vid) const;

    /** Index diagnostics (simulator-side, not architectural). */
    const IndexStats& indexStats() const { return idxStats_; }

    /** Sharded-engine diagnostics (simulator-side). */
    const ShardStats& shardStats() const { return shard_->stats(); }

    /** Fast-path diagnostics (simulator-side, DESIGN.md §13). */
    const FastStats& fastStats() const { return fastStats_; }
    FastStats& fastStats() { return fastStats_; }

    // --- zero-event fast path (DESIGN.md §13) --------------------------
    //
    // The split API exists for the commute-aware apply: the parallel
    // engine classifies intents on the coordinator (fastProbe), runs
    // the data halves of a non-conflicting batch on worker threads
    // (fastData — touches only the probed line, safe across distinct
    // banks), and accounts stats back on the coordinator (fastAccount).
    // The sequential inline composition of the three is what load() /
    // store() use.

    /**
     * Probe half: returns the line that can retire (core, a, vid) as a
     * pure L1 hit with no protocol side effects, or nullptr when the
     * access must take the full path. Validates the per-line
     * generation tag plus the dynamic guards (shadow map empty,
     * read/write-set marks current) that plant-time checks cannot
     * freeze. Counts FastStats attempts/rejections; never mutates
     * architectural state.
     */
    Line* fastProbe(CoreId core, Addr a, Vid vid, bool isStore);

    /**
     * Data half of a fast retirement: reads (or writes) the payload
     * and stamps the pre-reserved recency tick. Worker-safe as long as
     * concurrent calls touch lines of pairwise-distinct engine banks
     * (distinct banks => distinct sets => distinct lines and payload
     * planes; set vectors never resize on hits).
     */
    std::uint64_t fastData(Line& l, Addr a, std::uint64_t value,
                           unsigned size, bool isStore, Tick stamp);

    /** Stats half of a fast retirement (coordinator side). */
    void fastAccount(bool isStore, bool spec);

    /**
     * Reserves @p n recency-clock stamps in issue order and returns
     * the first; each fast retirement consumes exactly one, so a
     * commute batch pre-assigns stamps before fanning out.
     */
    Tick
    reserveUseClock(unsigned n)
    {
        const Tick first = useClock_ + 1;
        useClock_ += n;
        return first;
    }

    /** True when the fast path is armed for this configuration. */
    bool fastPathEnabled() const { return fastEnabled_; }

    /** Request VID as the fast path keys it: non-speculative accesses
     *  (VID 0, or any VID with HMTX disabled) share one tag slot. */
    Vid
    fastEffVid(Vid vid) const
    {
        return cfg_.hmtxEnabled && vid != kNonSpecVid ? vid
                                                      : kNonSpecVid;
    }

  private:
    // --- protocol-engine bridge ---------------------------------------
    /** Architectural payload of @p l as the protocol engine sees it. */
    static VersionView
    viewOf(const Line& l)
    {
        return {l.state,      l.tag,        l.dirty,
                l.mayHaveSharers, l.latestCopy, l.highFromWrongPath};
    }

    /** Applies an engine-produced image back onto @p l. */
    static void
    applyView(Line& l, const VersionView& v)
    {
        l.state = v.state;
        l.tag = v.tag;
        l.dirty = v.dirty;
        l.mayHaveSharers = v.mayHaveSharers;
        l.latestCopy = v.latestCopy;
        l.highFromWrongPath = v.highFromWrongPath;
    }

    // --- lookup -------------------------------------------------------
    /**
     * Pure lazy-commit transition: folds everything at or below the
     * current LC VID into @p l (§4.4) without touching the index
     * structures. checkInvariants() runs this on snapshots.
     */
    void applyReconcile(Line& l) const;
    /** Reconciles a line against the current LC VID (lazy commit). */
    void reconcile(Line& l);
    /** Reconciles every version of @p la in @p c. */
    void reconcileAddr(Cache& c, Addr la);
    /** True if this version hits request VID @p a (counts compares). */
    bool hits(const Line& l, Addr la, Vid a);
    /**
     * Finds the hitting version in one cache. @p forStore skips S-S
     * copies (stores must consult the responder/owner version).
     */
    Line* findLocal(Cache& c, Addr la, Vid a, bool forStore);
    struct RemoteHit
    {
        Line* line = nullptr;
        Cache* cache = nullptr;
        /** §5.4: some speculative version asserts the line was
         *  speculatively modified with a VID above the request's. */
        bool assertModified = false;
        /** Extra cycles (overflow-table walks) to charge. */
        Cycles extraLatency = 0;
    };
    /** Snoops all caches except @p self's L1. */
    RemoteHit findRemote(CoreId self, Addr la, Vid a, bool forStore);

    // --- allocation & eviction ----------------------------------------
    /**
     * Returns a slot for @p la in @p c, evicting if needed. May
     * trigger a capacity abort (§5.4), in which case nullptr is
     * returned and the caller must report the access as aborted.
     */
    Line* allocate(Cache& c, Addr la);
    /**
     * Best-effort allocation for optional fills (S-S copies, §5.4
     * refetches): returns nullptr instead of evicting.
     */
    Line* allocateOpt(Cache& c, Addr la);
    /** Evicts @p victim from @p c per the §5.4 rules. */
    bool evict(Cache& c, Line& victim);
    /** Eviction preference class; lower evicts first. */
    int victimClass(const Line& l) const;

    // --- protocol actions ---------------------------------------------
    /**
     * Applies the read marking for VID @p vid on owner version @p l
     * (may upgrade a non-exclusive non-speculative line, costing a
     * fabric transaction). Sets r.needSla when the line had not logged
     * this VID yet.
     */
    void applyReadMark(CoreId core, Line& l, Vid vid, AccessResult& r);
    /** Converts peer copies after a new version @p y of @p la. */
    void fixPeersForNewVersion(Addr la, const Line* owner, Vid y);
    /** Invalidates peer S-S copies of version @p mod of @p la. */
    void invalidatePeerSpecShared(Addr la, const Line* keep, Vid mod);
    /** Live read mark recovered from a destroyed latest-version S-S
     *  copy (§4.3); kNonSpecVid when none was dropped. */
    struct DroppedMark
    {
        Vid high = kNonSpecVid;
        bool wrongPath = false;
    };
    /**
     * Invalidates non-speculative copies of @p la except @p keep.
     * Latest-version S-S copies are dropped too; any live (> lcVid)
     * local read mark they carried is returned so the caller can fold
     * it into the surviving owner — destroying a copy must not erase
     * the record that a later VID read this version.
     */
    DroppedMark invalidateNonSpecPeers(Addr la, const Line* keep);
    /**
     * Folds the live local read mark of latest-copy @p victim into the
     * responder version of @p la (in a cache or the overflow table)
     * before the copy is destroyed. Returns false when no speculative
     * responder exists to carry it; the caller must then abort
     * conservatively.
     */
    bool foldCopyMark(Addr la, const Line& victim);
    /** True if any non-speculative copy of @p la but @p except is
     *  dirty (MOESI allows a clean S hit while a dirty O exists). */
    bool anyNonSpecDirty(Addr la, const Line* except);
    /** Triggers a global abort; records why. */
    void triggerAbort(const Line* offender);

    // --- data movement -------------------------------------------------
    /**
     * Payload of cache-resident line @p l, found through the owning
     * cache recorded in its slot bookkeeping (works for any cache in
     * the system, not just the local L1). Must not be called on
     * detached copies (overflow entries carry their payload
     * explicitly).
     */
    LineData&
    dataOf(Line& l)
    {
        return caches_[l.bk.cacheId].dataOf(l);
    }
    const LineData&
    dataOf(const Line& l) const
    {
        return caches_[l.bk.cacheId].dataOf(l);
    }
    std::uint64_t readData(const Line& l, Addr a, unsigned size) const;
    void writeData(Line& l, Addr a, std::uint64_t v, unsigned size);
    /**
     * Serializes a coherence transaction for @p la on the configured
     * interconnect and adds the requester's stall cycles to @p r.
     */
    void busAcquire(AccessResult& r, Addr la = 0);

    // --- index maintenance ----------------------------------------------
    /**
     * Single mutation funnel for the index structures: after any
     * change to a line's state/base/dirty, re-syncs its entry in the
     * presence filter and (if it became spec or dirty) enlists it on
     * its cache's registry. O(1); safe to call redundantly.
     */
    void syncLine(Line& l);
    /** Counts one copy of @p la appearing in cache @p ci. */
    void presenceAdd(std::uint32_t ci, Addr la);
    /** Uncounts one copy of @p la from cache @p ci. */
    void presenceRemove(std::uint32_t ci, Addr la);
    /**
     * Applies @p fn(cacheIndex) in ascending cache order to every
     * cache that may hold a version of @p la — every cache under
     * forceFullScan (or with >64 caches), only presence-filter hits
     * otherwise. The holder mask is snapshotted first, so @p fn may
     * invalidate lines (and thereby shrink the filter) safely.
     */
    template <typename Fn>
    void
    forEachSnoopTarget(Addr la, Fn&& fn)
    {
        if (!filterEnabled_ || cfg_.forceFullScan) {
            for (std::size_t ci = 0; ci < caches_.size(); ++ci)
                fn(ci);
            return;
        }
        auto& bank = presenceBank(la);
        auto it = bank.find(la);
        // Snapshot the holder mask: fn may invalidate lines and
        // thereby shrink (or erase) the filter entry while we iterate.
        const std::uint64_t mask = it == bank.end() ? 0 : it->second;
        const auto holders =
            static_cast<std::uint64_t>(std::popcount(mask));
        idxStats_.snoopsVisited += holders;
        idxStats_.snoopsFiltered += caches_.size() - holders;
        for (std::uint64_t m = mask; m != 0; m &= m - 1)
            fn(static_cast<std::size_t>(std::countr_zero(m)));
    }
    /**
     * Where a bulk walk's overflow-table fold sits relative to its
     * cache segments — the sequential phase order each bank's FIFO
     * ring reproduces (same-address entries must keep their order;
     * see shard.hh).
     */
    enum class OvPhase
    {
        None,
        BeforeLines,
        AfterLines,
    };

    /**
     * Which registry class a bulk walk needs to visit.
     * Commit/abort/VID-reset act only on speculative lines — a dirty
     * committed line is a no-op for all three — so they walk the spec
     * registry alone and stay O(window speculative footprint) even
     * when the caches hold a large dirty working set. Only the
     * region-boundary flush needs the union.
     */
    enum class WalkClass
    {
        /** Speculative lines only (commit/abort/vidReset). */
        Spec,
        /**
         * Spec plus dirty committed lines (flush). A line that is
         * both spec and dirty sits on both class registries and is
         * visited twice; the walk body must be idempotent.
         */
        SpecAndDirty,
    };

    /**
     * Runs one bulk protocol walk on the shard engine: compiles the
     * phase-ordered per-bank command list (cache registry/full-scan
     * segments, plus an optional overflow fold per @p ov), dispatches
     * a single epoch, and returns the per-bank scratches folded in
     * ascending bank order.
     *
     * @p lineFn(Line&, WalkScratch&) runs for every line of the
     * requested @p wc registry class (scratch slots 0-2 are the
     * caller's; slot 3 counts registry lines); @p ovFn(Line&,
     * LineData&, WalkScratch&) for every overflow entry. Both MUST
     * touch only bank-local state — the line/entry itself, its set,
     * its bank's presence, registry, memory, and overflow partitions
     * — because with worker threads they run concurrently across
     * banks. Under MachineConfig::forceFullScan every walk visits
     * the union class (each interesting line once), so Spec walk
     * bodies must be no-ops on non-spec dirty lines rather than
     * rely on never seeing them.
     */
    template <typename LineFn, typename OvFn>
    WalkScratch
    shardedWalk(OvPhase ov, WalkClass wc, LineFn&& lineFn, OvFn&& ovFn)
    {
        std::vector<BankCmd> cmds;
        if (ov == OvPhase::BeforeLines)
            cmds.push_back({BankCmd::Op::OverflowSegment, 0});
        for (std::uint32_t ci = 0; ci < caches_.size(); ++ci)
            cmds.push_back({BankCmd::Op::CacheSegment, ci});
        if (ov == OvPhase::AfterLines)
            cmds.push_back({BankCmd::Op::OverflowSegment, 0});
        if (cfg_.forceFullScan)
            ++idxStats_.fullScanWalks;
        else
            ++idxStats_.registryWalks;

        ShardEngine::Exec exec = [&](unsigned b, const BankCmd& c,
                                     WalkScratch& s) {
            if (c.op == BankCmd::Op::CacheSegment) {
                Cache& cc = caches_[c.arg];
                if (cfg_.forceFullScan) {
                    cc.forEachLineInBank(b, [&](Line& l) {
                        if (Cache::interesting(l))
                            lineFn(l, s);
                    });
                } else {
                    cc.forEachSpecInBank(b, [&](Line& l) {
                        ++s.n[3];
                        lineFn(l, s);
                    });
                    if (wc == WalkClass::SpecAndDirty) {
                        cc.forEachDirtyInBank(b, [&](Line& l) {
                            ++s.n[3];
                            lineFn(l, s);
                        });
                    }
                }
            } else {
                overflow_.forEachInBank(b, [&](Line& l, LineData& d) {
                    ovFn(l, d, s);
                });
            }
        };
        shard_->runEpoch(exec, cmds);

        WalkScratch agg;
        for (unsigned b = 0; b < shard_->banks(); ++b)
            for (std::size_t i = 0; i < agg.n.size(); ++i)
                agg.n[i] += shard_->scratch(b).n[i];
        if (!cfg_.forceFullScan)
            idxStats_.registryWalkLines += agg.n[3];
        return agg;
    }
    /** Runs verifyIndexes() when MachineConfig::indexCrossCheck. */
    void maybeCrossCheck();

    // --- bookkeeping ----------------------------------------------------
    /**
     * Record (vid, la) in the per-VID read/write sets. @p l, when
     * given, is a cache-resident line of address @p la: its rw marks
     * (Line::rwReadVid/rwWriteVid/rwGen) let the common re-touch of an
     * already-recorded line skip the hash-set insert entirely. Marks
     * are validated against rwGen_, which bumps whenever rw_ is
     * cleared wholesale (abort, VID reset).
     */
    void recordRead(Vid vid, Addr la, Line* l = nullptr);
    void recordWrite(Vid vid, Addr la, Line* l = nullptr);
    void noteShadowWrongPath(Addr la, Vid vid);
    void checkShadowAvoided(Addr la, Vid storeVid);

    AccessResult nonSpecStore(CoreId core, Addr a, std::uint64_t value,
                              unsigned size);

    /**
     * Load body shared by the speculative, non-speculative, and
     * serialized-fallback paths; @p serialized forces non-speculative
     * semantics (request VID 0, no marks/SLA) for a fallback holder.
     */
    AccessResult loadImpl(CoreId core, Addr a, unsigned size, Vid vid,
                          bool wrongPath, bool serialized);

    /**
     * LimitedSet policy check: true when touching line @p la under
     * @p vid would exceed the K-line speculative-set bound (the line
     * is not already in the VID's sets and the sets are full). The
     * caller must then raise a capacity abort instead of executing
     * the access.
     */
    bool limitedSetBlocks(Vid vid, Addr la);

    // --- zero-event fast path internals --------------------------------
    /**
     * Inline composition of probe + data + account: retires the access
     * entirely on the fast path when eligible. Returns false (leaving
     * @p r untouched) when the access must take the full path.
     */
    bool fastAccess(CoreId core, Addr a, std::uint64_t value,
                    unsigned size, Vid vid, bool isStore,
                    AccessResult& r);

    /**
     * Plants a fast-path tag on @p l for direction @p isStore under
     * the current generation. Called at the slow-path exits whose
     * post-state makes an identical re-access a pure hit; entering the
     * current generation invalidates whatever the other direction's
     * tag said in a previous one (same discipline as the rw marks).
     */
    void
    fpTag(Line& l, Vid vid, bool isStore)
    {
        if (!fastEnabled_)
            return;
        if (l.fpGen != fastGen_) {
            l.fpGen = fastGen_;
            l.fpLoadVid = kFpNoVid;
            l.fpStoreVid = kFpNoVid;
        }
        (isStore ? l.fpStoreVid : l.fpLoadVid) = vid;
    }

    /**
     * Invalidates @p l's fast-path tags. syncLine() calls this for
     * every indexed mutation; the handful of protocol actions that
     * mutate a line's tag/flags *without* going through syncLine
     * (read-mark raises, sharer-bit sets, mark folds) must call it
     * explicitly — a stale tag there would let a fast store silently
     * succeed where the slow path aborts on a dependence.
     */
    static void fpClear(Line& l) { l.fpGen = 0; }

    EventQueue& eq_;
    /**
     * Logical access clock for replacement recency. Line::lastUse is
     * stamped from this counter, not from eq_.curTick(): simulated
     * time advances differently under different fabrics and commit
     * modes (bus vs directory occupancy, eager walk costs), and tying
     * LRU to it would make victim selection — and therefore hit/miss
     * behaviour — depend on the timing model. A per-access counter
     * keeps replacement a pure function of the access sequence.
     */
    Tick useClock_ = 0;
    MachineConfig cfg_;
    MainMemory mem_;
    /** caches_[0..numCores-1] are L1s; caches_.back() is the L2. */
    std::vector<Cache> caches_;
    Vid lcVid_ = 0;
    std::uint64_t abortGen_ = 0;
    VidComparator cmp_;
    SysStats stats_;
    /** Transaction-mode policy (commit walks, fallback, K bound). */
    TxPolicy policy_;
    /** The coherence fabric (timing/occupancy; references stats_). */
    std::unique_ptr<Interconnect> net_;
    Trace trace_;

    /** Spilled speculative versions (unbounded-sets extension). */
    OverflowTable overflow_;

    /**
     * Address presence filter: for each cached line address, a bitmask
     * of the caches holding a version of it. Purely a performance
     * cache over Line state (the snoop-filter / sharer-vector analog);
     * maintained by syncLine() and consulted by forEachSnoopTarget().
     * Mask-only: when a cache drops its last counted copy the owning
     * set is rescanned to decide whether the bit survives (sets are
     * tiny, and removals are far rarer than the adds/probes the
     * per-cache count vectors used to tax). Empty-masked entries are
     * erased eagerly. Partitioned into the engine's address-hashed
     * banks so concurrent bank walks update disjoint maps.
     */
    std::vector<std::unordered_map<Addr, std::uint64_t>> presence_;
    /** False when caches_.size() > 64 bits of mask; filter disabled. */
    bool filterEnabled_ = true;
    IndexStats idxStats_;

    /** The sharded bulk-walk engine (banks, rings, epoch barrier). */
    std::unique_ptr<ShardEngine> shard_;
    /** Engine bank count minus one; bankOf(la) masks with this. */
    std::uint64_t bankMask_ = 0;

    /** Engine bank owning line address @p la. */
    std::size_t
    bankOf(Addr la) const
    {
        return static_cast<std::size_t>((la >> kLineShift) & bankMask_);
    }

    /** Presence-filter partition owning @p la. */
    std::unordered_map<Addr, std::uint64_t>&
    presenceBank(Addr la)
    {
        return presence_[bankOf(la)];
    }

    /** Wrong-path shadow marks: line -> highest wrong-path VID (§5.1
     *  "aborts avoided via SLA" accounting). */
    std::unordered_map<Addr, Vid> shadow_;

    /** Per-live-VID read/write line sets (Figure 9 accounting). */
    struct RwSets
    {
        std::unordered_set<Addr> reads;
        std::unordered_set<Addr> writes;
    };
    std::unordered_map<Vid, RwSets> rw_;
    /** Returns rw_[vid] through a one-entry cache. */
    RwSets& rwFor(Vid vid);
    /** Last VID whose sets were looked up (see rwFor). */
    Vid rwCachedVid_ = 0;
    RwSets* rwCached_ = nullptr;
    /**
     * Generation validating Line rw marks; bumped whenever rw_ is
     * cleared wholesale (abort, VID reset) so stale marks from a
     * previous transaction era can never suppress a fresh insert.
     * Starts at 1: default-initialized lines (rwGen = 0) are stale.
     */
    std::uint32_t rwGen_ = 1;

    /**
     * Generation validating Line fast-path tags (DESIGN.md §13);
     * bumped by every bulk protocol operation (commit, abortAll,
     * vidReset, flushDirtyToMemory) — i.e. whenever lcVid_, rwGen_, or
     * a bulk walk could change what an access observes — so every
     * valid tag was planted at the current LC VID with the current
     * read/write-set era. Starts at 1: default-initialized lines
     * (fpGen = 0) are stale.
     */
    std::uint64_t fastGen_ = 1;
    /** fastPath knob resolved against the gates that disable it
     *  (copy-on-read ablation, non-plain TxPolicy). */
    bool fastEnabled_ = false;
    FastStats fastStats_;
};

} // namespace hmtx::sim

#endif // HMTX_SIM_CACHE_SYSTEM_HH
