/**
 * @file
 * Memory-resident overflow table for speculative lines (§8 future
 * work): "unlimited read and write sets could be supported by
 * overflowing speculatively modified versions of lines into memory
 * and managing them via data structures", as in Prvulovic et al.
 * [27].
 */

#ifndef HMTX_SIM_OVERFLOW_TABLE_HH
#define HMTX_SIM_OVERFLOW_TABLE_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/types.hh"
#include "sim/cache.hh"

namespace hmtx::sim
{

/**
 * Holds speculative line versions that fell out of the last-level
 * cache, instead of aborting their transaction (§5.4's fallback).
 * Conceptually this is a hash table in main memory walked by a
 * hardware engine; the simulator keeps the entries host-side and the
 * cache system charges the table-walk latency on every spill and
 * refill.
 *
 * Entries keep their full protocol identity (state, VID tags, data,
 * dirtiness), so a refilled line continues exactly where it left off;
 * commit/abort/VID-reset reconciliation is applied lazily by the
 * cache system when it touches an entry, and eagerly on aborts.
 *
 * Entries are partitioned into address-hashed banks (power-of-two
 * count, single bank by default) so the sharded engine's bulk folds
 * can process disjoint banks concurrently. Versions of one address
 * always share a bank, preserving their relative order under any
 * partitioning.
 */
class OverflowTable
{
  public:
    OverflowTable() : banks_(1) {}

    /**
     * Re-partitions into @p banks banks (power of two). Only legal
     * while the table is empty; the owning system banks it once at
     * construction.
     */
    void
    setBanks(unsigned banks)
    {
        banks_.assign(banks < 1 ? 1 : banks, {});
        mask_ = banks_.size() - 1;
    }

    /** Bank index owning address @p a. */
    std::size_t
    bankOf(Addr a) const
    {
        return static_cast<std::size_t>((a >> kLineShift) & mask_);
    }

    /**
     * Spills @p line (metadata) with payload @p data into the table.
     * Spilled entries are detached from any cache, so the table is
     * where metadata and payload travel together.
     */
    void
    spill(const Line& line, const LineData& data)
    {
        auto& v = banks_[bankOf(line.base)][line.base];
        v.lines.push_back(line);
        v.data.push_back(data);
        ++spills_;
    }

    /** All spilled versions of @p la (mutable for reconciliation);
     *  `lines[i]`'s payload is `data[i]`. */
    LineSet*
    versionsOf(Addr la)
    {
        auto& b = banks_[bankOf(la)];
        auto it = b.find(la);
        return it == b.end() ? nullptr : &it->second;
    }

    /**
     * Removes @p idx-th version of @p la (after a refill promoted it
     * back into a cache).
     */
    void
    remove(Addr la, std::size_t idx)
    {
        auto& b = banks_[bankOf(la)];
        auto it = b.find(la);
        if (it == b.end())
            return;
        auto& v = it->second;
        v.lines.erase(v.lines.begin() + static_cast<std::ptrdiff_t>(idx));
        v.data.erase(v.data.begin() + static_cast<std::ptrdiff_t>(idx));
        if (v.lines.empty())
            b.erase(it);
        ++refills_;
    }

    /** Applies @p fn(Line&, LineData&) to every entry, banks in
     *  ascending order; entries left Invalid are erased. */
    template <typename Fn>
    void
    forEach(Fn&& fn)
    {
        for (std::size_t b = 0; b < banks_.size(); ++b)
            forEachInBank(b, fn);
    }

    /**
     * Bank-local variant of forEach(): folds only bank @p b. Safe to
     * run concurrently for distinct banks as long as @p fn itself only
     * touches bank-local state.
     */
    template <typename Fn>
    void
    forEachInBank(std::size_t bankIdx, Fn&& fn)
    {
        auto& bank = banks_[bankIdx];
        for (auto it = bank.begin(); it != bank.end();) {
            auto& v = it->second;
            for (std::size_t i = 0; i < v.lines.size(); ++i)
                fn(v.lines[i], v.data[i]);
            for (std::size_t i = v.lines.size(); i-- > 0;) {
                if (v.lines[i].state == State::Invalid) {
                    v.lines.erase(v.lines.begin() +
                                  static_cast<std::ptrdiff_t>(i));
                    v.data.erase(v.data.begin() +
                                 static_cast<std::ptrdiff_t>(i));
                }
            }
            if (v.lines.empty())
                it = bank.erase(it);
            else
                ++it;
        }
    }

    /**
     * Read-only walk: applies @p fn(const Line&, const LineData&) to
     * every entry without reconciling or erasing anything. Observation
     * paths (checkInvariants) use this so a self-check never perturbs
     * the table the way the lazily-reconciling forEach() variants do.
     */
    template <typename Fn>
    void
    forEachConst(Fn&& fn) const
    {
        for (const auto& bank : banks_)
            for (const auto& [a, v] : bank)
                for (std::size_t i = 0; i < v.lines.size(); ++i)
                    fn(v.lines[i], v.data[i]);
    }

    /** Number of banks the entries are partitioned into. */
    std::size_t bankCount() const { return banks_.size(); }

    /**
     * True when no versions are spilled. The snoop path checks this
     * before probing versionsOf() so runs that never overflow pay no
     * hash lookup at all.
     */
    bool
    empty() const
    {
        for (const auto& b : banks_)
            if (!b.empty())
                return false;
        return true;
    }

    /** Entries currently held. */
    std::size_t
    size() const
    {
        std::size_t n = 0;
        for (const auto& b : banks_)
            for (const auto& [a, v] : b)
                n += v.lines.size();
        return n;
    }

    /** Lines ever spilled. */
    std::uint64_t spills() const { return spills_; }

    /** Lines ever refilled into a cache. */
    std::uint64_t refills() const { return refills_; }

    /** Table-walk cost charged per spill or refill, in cycles. */
    static constexpr Cycles kWalkCycles = 60;

  private:
    std::vector<std::unordered_map<Addr, LineSet>> banks_;
    std::size_t mask_ = 0;
    std::uint64_t spills_ = 0;
    std::uint64_t refills_ = 0;
};

} // namespace hmtx::sim

#endif // HMTX_SIM_OVERFLOW_TABLE_HH
