/**
 * @file
 * Memory-resident overflow table for speculative lines (§8 future
 * work): "unlimited read and write sets could be supported by
 * overflowing speculatively modified versions of lines into memory
 * and managing them via data structures", as in Prvulovic et al.
 * [27].
 */

#ifndef HMTX_SIM_OVERFLOW_TABLE_HH
#define HMTX_SIM_OVERFLOW_TABLE_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/types.hh"
#include "sim/cache.hh"

namespace hmtx::sim
{

/**
 * Holds speculative line versions that fell out of the last-level
 * cache, instead of aborting their transaction (§5.4's fallback).
 * Conceptually this is a hash table in main memory walked by a
 * hardware engine; the simulator keeps the entries host-side and the
 * cache system charges the table-walk latency on every spill and
 * refill.
 *
 * Entries keep their full protocol identity (state, VID tags, data,
 * dirtiness), so a refilled line continues exactly where it left off;
 * commit/abort/VID-reset reconciliation is applied lazily by the
 * cache system when it touches an entry, and eagerly on aborts.
 */
class OverflowTable
{
  public:
    /** Spills @p line into the table. */
    void
    spill(const Line& line)
    {
        entries_[line.base].push_back(line);
        ++spills_;
    }

    /** All spilled versions of @p la (mutable for reconciliation). */
    std::vector<Line>*
    versionsOf(Addr la)
    {
        auto it = entries_.find(la);
        return it == entries_.end() ? nullptr : &it->second;
    }

    /**
     * Removes @p idx-th version of @p la (after a refill promoted it
     * back into a cache).
     */
    void
    remove(Addr la, std::size_t idx)
    {
        auto it = entries_.find(la);
        if (it == entries_.end())
            return;
        it->second.erase(it->second.begin() +
                         static_cast<std::ptrdiff_t>(idx));
        if (it->second.empty())
            entries_.erase(it);
        ++refills_;
    }

    /** Applies @p fn to every entry; entries left Invalid are erased. */
    template <typename Fn>
    void
    forEach(Fn&& fn)
    {
        for (auto it = entries_.begin(); it != entries_.end();) {
            auto& v = it->second;
            for (auto& l : v)
                fn(l);
            std::erase_if(v, [](const Line& l) {
                return l.state == State::Invalid;
            });
            if (v.empty())
                it = entries_.erase(it);
            else
                ++it;
        }
    }

    /**
     * True when no versions are spilled. The snoop path checks this
     * before probing versionsOf() so runs that never overflow pay no
     * hash lookup at all.
     */
    bool empty() const { return entries_.empty(); }

    /** Entries currently held. */
    std::size_t
    size() const
    {
        std::size_t n = 0;
        for (auto& [a, v] : entries_)
            n += v.size();
        return n;
    }

    /** Lines ever spilled. */
    std::uint64_t spills() const { return spills_; }

    /** Lines ever refilled into a cache. */
    std::uint64_t refills() const { return refills_; }

    /** Table-walk cost charged per spill or refill, in cycles. */
    static constexpr Cycles kWalkCycles = 60;

  private:
    std::unordered_map<Addr, std::vector<Line>> entries_;
    std::uint64_t spills_ = 0;
    std::uint64_t refills_ = 0;
};

} // namespace hmtx::sim

#endif // HMTX_SIM_OVERFLOW_TABLE_HH
