/**
 * @file
 * Deterministic pseudo-random number generator for workloads.
 */

#ifndef HMTX_SIM_RNG_HH
#define HMTX_SIM_RNG_HH

#include <cstdint>

namespace hmtx::sim
{

/**
 * SplitMix64-based PRNG. Small, fast, and fully deterministic across
 * platforms, so every simulation run is reproducible bit-for-bit.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
        : state_(seed)
    {}

    /** Next 64 uniformly distributed bits. */
    std::uint64_t
    next()
    {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /** Uniform integer in [0, n). @pre n > 0 */
    std::uint64_t range(std::uint64_t n) { return next() % n; }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability @p p. */
    bool chance(double p) { return uniform() < p; }

  private:
    std::uint64_t state_;
};

} // namespace hmtx::sim

#endif // HMTX_SIM_RNG_HH
