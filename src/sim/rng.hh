/**
 * @file
 * Deterministic pseudo-random number generator for workloads.
 */

#ifndef HMTX_SIM_RNG_HH
#define HMTX_SIM_RNG_HH

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdint>
#include <vector>

namespace hmtx::sim
{

/**
 * SplitMix64-based PRNG. Small, fast, and fully deterministic across
 * platforms, so every simulation run is reproducible bit-for-bit.
 */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ull)
        : state_(seed)
    {}

    /** Next 64 uniformly distributed bits. */
    std::uint64_t
    next()
    {
        std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /** Uniform integer in [0, n). @pre n > 0 */
    std::uint64_t range(std::uint64_t n) { return next() % n; }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli draw with probability @p p. */
    bool chance(double p) { return uniform() < p; }

  private:
    std::uint64_t state_;
};

/**
 * Zipfian rank sampler over [0, n): rank k is drawn with probability
 * P(k) = (k+1)^-theta / H(n, theta), the key-popularity law of
 * OLTP/KV serving traces (theta ~0.99 in YCSB; theta = 0 degenerates
 * to uniform). Implemented as an exact inverse-CDF table — O(n)
 * doubles at construction, O(log n) per draw — rather than the
 * YCSB-style rejection trick, because the table is exact for *any*
 * theta >= 0 (including the theta > 1 high-skew cells the serving
 * sweep measures, where the closed-form approximation breaks down)
 * and the generator runs off the simulation hot path. Draws consume
 * exactly one Rng value, so seeded runs are reproducible.
 */
class ZipfSampler
{
  public:
    ZipfSampler(std::uint64_t n, double theta)
        : theta_(theta)
    {
        assert(n > 0 && theta >= 0.0);
        cdf_.reserve(n);
        double cum = 0.0;
        for (std::uint64_t k = 0; k < n; ++k) {
            cum += weight(k);
            cdf_.push_back(cum);
        }
        total_ = cum;
    }

    /** Number of ranks. */
    std::uint64_t n() const { return cdf_.size(); }

    /** Draws a rank in [0, n) with Zipfian popularity. */
    std::uint64_t
    operator()(Rng& rng) const
    {
        const double u = rng.uniform() * total_;
        auto it = std::upper_bound(cdf_.begin(), cdf_.end(), u);
        const auto k =
            static_cast<std::uint64_t>(it - cdf_.begin());
        return k >= cdf_.size() ? cdf_.size() - 1 : k;
    }

    /** Closed-form P(rank k) — what the unit test pins draws to. */
    double
    probOfRank(std::uint64_t k) const
    {
        return weight(k) / total_;
    }

  private:
    double
    weight(std::uint64_t k) const
    {
        return std::pow(static_cast<double>(k + 1), -theta_);
    }

    double theta_;
    double total_ = 0.0;
    std::vector<double> cdf_;
};

/**
 * Bounded-Pareto sampler over [lo, hi] with shape alpha: the
 * heavy-tailed burst-length law (inverse-CDF method, one Rng draw
 * per sample). Used by the serving generator's ON/OFF arrival
 * process, where a heavy-tailed ON period is what makes open-loop
 * tail latency interesting.
 */
class BoundedParetoSampler
{
  public:
    BoundedParetoSampler(double lo, double hi, double alpha)
        : lo_(lo), alpha_(alpha), loA_(std::pow(lo, alpha)),
          ratioA_(1.0 - std::pow(lo / hi, alpha))
    {
        assert(lo > 0.0 && hi > lo && alpha > 0.0);
    }

    double
    operator()(Rng& rng) const
    {
        // Inverse of F(x) = (1 - lo^a x^-a) / (1 - (lo/hi)^a).
        const double u = rng.uniform();
        return std::pow(loA_ / (1.0 - u * ratioA_), 1.0 / alpha_);
    }

    /** Closed-form quantile (e.g. quantile(0.5) = median). */
    double
    quantile(double q) const
    {
        return std::pow(loA_ / (1.0 - q * ratioA_), 1.0 / alpha_);
    }

    double lo() const { return lo_; }

  private:
    double lo_;
    double alpha_;
    double loA_;
    double ratioA_;
};

} // namespace hmtx::sim

#endif // HMTX_SIM_RNG_HH
