/**
 * @file
 * Lightweight categorized trace facility for debugging simulations,
 * in the spirit of gem5's DPRINTF flags.
 */

#ifndef HMTX_SIM_TRACE_HH
#define HMTX_SIM_TRACE_HH

#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <deque>
#include <string>

#include "core/types.hh"

namespace hmtx::sim
{

/** Trace categories; combine with bitwise OR. */
enum TraceFlags : std::uint32_t
{
    TraceNone = 0,
    /** Coherence protocol actions: hits, new versions, supersedes. */
    TraceProtocol = 1u << 0,
    /** Commits, aborts, VID resets. */
    TraceCommit = 1u << 1,
    /** Evictions, spills, refills. */
    TraceEvict = 1u << 2,
    /** SLA traffic and wrong-path loads. */
    TraceSla = 1u << 3,
    /** Runtime events: queue ops, recovery barriers. */
    TraceRuntime = 1u << 4,
    TraceAll = ~0u,
};

/**
 * A bounded in-memory trace log. Events are recorded only for enabled
 * categories; the ring keeps the most recent entries so a failing test
 * can dump the lead-up to the failure without drowning in output.
 *
 * The simulator components take a Trace reference and call
 * event(flag, fmt, ...); the default-constructed Trace has everything
 * disabled and each call is a single branch.
 */
class Trace
{
  public:
    /**
     * @param flags    enabled categories
     * @param capacity max retained entries
     */
    explicit Trace(std::uint32_t flags = TraceNone,
                   std::size_t capacity = 4096)
        : flags_(flags), capacity_(capacity)
    {}

    /** True if @p flag is enabled. */
    bool on(TraceFlags flag) const { return (flags_ & flag) != 0; }

    /** Enables/disables categories at run time. */
    void setFlags(std::uint32_t flags) { flags_ = flags; }

    /** Records one event if its category is enabled. */
    void
    event(TraceFlags flag, Tick when, const char* fmt, ...)
#if defined(__GNUC__)
        __attribute__((format(printf, 4, 5)))
#endif
    {
        if (!on(flag))
            return;
        char buf[256];
        va_list ap;
        va_start(ap, fmt);
        std::vsnprintf(buf, sizeof(buf), fmt, ap);
        va_end(ap);
        if (entries_.size() >= capacity_) {
            entries_.pop_front();
            ++dropped_;
        }
        entries_.push_back({when, flag, buf});
        ++recorded_;
    }

    struct Entry
    {
        Tick when;
        TraceFlags flag;
        std::string text;
    };

    /** Retained entries, oldest first. */
    const std::deque<Entry>& entries() const { return entries_; }

    /** Events recorded (including those later dropped by the ring). */
    std::uint64_t recorded() const { return recorded_; }

    /** Events dropped by the ring. */
    std::uint64_t dropped() const { return dropped_; }

    /** Formats the retained entries to @p out. */
    void
    dump(std::FILE* out = stderr) const
    {
        for (const Entry& e : entries_)
            std::fprintf(out, "%10llu %s\n",
                         static_cast<unsigned long long>(e.when),
                         e.text.c_str());
    }

    /** Clears the retained entries (counters persist). */
    void clear() { entries_.clear(); }

  private:
    std::uint32_t flags_;
    std::size_t capacity_;
    std::deque<Entry> entries_;
    std::uint64_t recorded_ = 0;
    std::uint64_t dropped_ = 0;
};

} // namespace hmtx::sim

#endif // HMTX_SIM_TRACE_HH
