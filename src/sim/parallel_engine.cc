#include "sim/parallel_engine.hh"

#include <algorithm>

#include "runtime/queue.hh" // header-only SpscRing (PR 3 machinery)

namespace hmtx::sim
{

/** Job ring of one worker: lane indices (or kStopJob) pushed by the
 *  coordinator, popped by the worker. */
struct ParallelEngine::WorkerRing
{
    explicit WorkerRing(std::size_t capacity) : ring(capacity) {}

    runtime::SpscRing<std::uint32_t> ring;
};

ParallelEngine::ParallelEngine(EventQueue& eq, unsigned lanes,
                               unsigned workers, Tick windowTicks)
    : eq_(eq), lanes_(lanes == 0 ? 1 : lanes),
      windowTicks_(windowTicks == 0 ? 1 : windowTicks)
{
    stats_.workers = workers;
    stats_.threaded = workers > 0;
    if (workers == 0)
        return;
    rings_.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
        // At most one in-flight job per lane lands in a ring, so
        // lane-count capacity (plus the stop job) can never overflow.
        rings_.push_back(
            std::make_unique<WorkerRing>(lanes_.size() + 2));
    }
    threads_.reserve(workers);
    for (unsigned w = 0; w < workers; ++w)
        threads_.emplace_back([this, w] { workerMain(w); });
}

ParallelEngine::~ParallelEngine()
{
    for (auto& r : rings_) {
        while (!r->ring.tryPush(kStopJob)) {}
    }
    for (auto& t : threads_)
        t.join();
}

void
ParallelEngine::runLane(Lane& ln)
{
    ln.hasIntent = false;
    auto h = ln.resumeNext;
    ln.resumeNext = {};
    // Runs workload user code up to its next memory operation (which
    // captures an intent via stageIntent/stageSuspend) or to section
    // completion; an exception (TxAborted) stays in the coroutine's
    // promise exactly as in the sequential engine.
    h.resume();
}

void
ParallelEngine::workerMain(unsigned w)
{
    auto& ring = rings_[w]->ring;
    for (;;) {
        ring.waitNonEmpty();
        std::uint32_t lane;
        if (!ring.tryPop(lane))
            continue;
        if (lane == kStopJob)
            return;
        if (lane & kFastJobBit) {
            // Commute-batch data half: apply the payload move for the
            // already-classified intent and report completion. The
            // release on the counter pairs with the coordinator's
            // acquire in commitBatch() and covers ln.result.
            const std::uint32_t li = lane & ~kFastJobBit;
            Lane& fl = lanes_[li];
            fl.result =
                fastApply_(li, fl.intent, fl.fastLine, fl.fastStamp);
            fastOutstanding_.fetch_sub(1, std::memory_order_release);
            fastOutstanding_.notify_all();
            continue;
        }
        Lane& ln = lanes_[lane];
        runLane(ln);
        // Publish only after the coroutine fully suspended: the
        // release pairs with the coordinator's acquire in headReady()
        // and covers every lane field the worker wrote.
        ln.phase.store(kReady, std::memory_order_release);
        ln.phase.notify_one();
    }
}

void
ParallelEngine::dispatch(std::uint32_t lane, Tick when)
{
    Lane& ln = lanes_[lane];
    assert(ln.phase.load(std::memory_order_relaxed) == kIdle);
    ln.slotTick = when;
    ++stats_.laneEvents;
    if (inCommit_)
        bornInCommit_.push_back(lane);
    else
        fifo_.push_back(lane);
    if (threads_.empty()) {
        // Inline mode: same staging/retirement machinery, coordinator
        // thread only.
        runLane(ln);
        ln.phase.store(kReady, std::memory_order_relaxed);
        return;
    }
    ln.phase.store(kBusy, std::memory_order_relaxed);
    const bool ok =
        rings_[lane % rings_.size()]->ring.tryPush(lane);
    assert(ok);
    (void)ok;
}

void
ParallelEngine::beginSection(std::uint32_t lane,
                             std::coroutine_handle<> child,
                             std::coroutine_handle<> parent)
{
    Lane& ln = lanes_[lane];
    assert(!ln.staging);
    ln.staging = true;
    ln.parent = parent;
    ln.resumeNext = child;
    ++stats_.sections;
    // The section opens at the current event slot; its first access
    // retires here, exactly where the sequential loop would have run
    // it inline.
    dispatch(lane, eq_.curTick());
}

void
ParallelEngine::waitHead()
{
    Lane& ln = lanes_[fifo_.front()];
    std::uint32_t p = ln.phase.load(std::memory_order_acquire);
    if (p != kReady) {
        ++stats_.barrierStalls;
        do {
            ln.phase.wait(p, std::memory_order_acquire);
            p = ln.phase.load(std::memory_order_acquire);
        } while (p != kReady);
    }
}

void
ParallelEngine::commitHead()
{
    const std::uint32_t lane = fifo_.front();
    Lane& ln = lanes_[lane];
    waitHead();
    fifo_.pop_front();
    if (ln.hasIntent) {
        // Retire the staged access at its own slot (now_ still equals
        // ln.slotTick: time never advances past an undrained slot).
        assert(eq_.curTick() == ln.slotTick);
        ln.result = apply_(lane, ln.intent);
        assert(ln.result.wake > ln.slotTick);
        eq_.scheduleLane(ln.result.wake, lane);
        ++stats_.intents;
        ln.phase.store(kIdle, std::memory_order_relaxed);
        return;
    }
    // Section completed (or unwound): resume the suspended executor
    // at this slot. Sections it opens while running belong at this
    // same slot and are spliced ahead of older in-flight work.
    ln.staging = false;
    const auto parent = ln.parent;
    ln.parent = {};
    ln.phase.store(kIdle, std::memory_order_relaxed);
    inCommit_ = true;
    parent.resume();
    inCommit_ = false;
    if (!bornInCommit_.empty()) {
        fifo_.insert(fifo_.begin(), bornInCommit_.begin(),
                     bornInCommit_.end());
        bornInCommit_.clear();
    }
}

void
ParallelEngine::commitReady()
{
    if (!classify_) {
        commitHead();
        return;
    }
    // Gather the maximal prefix of published intents that would retire
    // on the zero-event fast path, stopping at the first unpublished
    // turn, section completion, slow-path intent, or class collision.
    // Classification is stable across the batch: the data halves only
    // move payload bytes and LRU stamps, never tags or protocol state.
    batchLines_.clear();
    batchKlass_.clear();
    std::size_t n = 0;
    for (std::size_t i = 0; i < fifo_.size(); ++i) {
        Lane& ln = lanes_[fifo_[i]];
        if (ln.phase.load(std::memory_order_acquire) != kReady ||
            !ln.hasIntent)
            break;
        void* line = nullptr;
        std::uint64_t klass = 0;
        if (!classify_(fifo_[i], ln.intent, line, klass))
            break;
        if (line != nullptr) {
            // Memory member: collides only with earlier *memory*
            // members of its own class — compute/branch members
            // (null line) commute with everything.
            bool conflict = false;
            for (std::size_t j = 0; j < n; ++j) {
                if (batchLines_[j] != nullptr &&
                    batchKlass_[j] == klass) {
                    conflict = true;
                    break;
                }
            }
            if (conflict) {
                // Same commutativity class as an earlier member: the
                // §9 relation does not let these two reorder, so the
                // batch ends here and this intent retires in a later
                // round.
                ++stats_.commuteConflicts;
                break;
            }
        }
        batchLines_.push_back(line);
        batchKlass_.push_back(klass);
        ++n;
    }
    if (n >= 2) {
        commitBatch(n);
        return;
    }
    if (lanes_[fifo_.front()].hasIntent)
        ++stats_.commuteSerialFallbacks;
    commitHead();
}

void
ParallelEngine::commitBatch(std::size_t n)
{
    ++stats_.commuteBatches;
    stats_.commuteApplied += n;
    // LRU stamps are assigned in retirement order *before* the data
    // halves run, so the concurrent applies produce exactly the stamps
    // the serial order would have. Only memory members consume stamps;
    // compute/branch members (null line) never touch the use clock.
    std::size_t nFast = 0;
    for (std::size_t i = 0; i < n; ++i)
        if (batchLines_[i] != nullptr)
            ++nFast;
    const Tick first =
        nFast != 0 ? reserve_(static_cast<unsigned>(nFast)) : 0;
    if (threads_.empty() || nFast < 2) {
        Tick stamp = first;
        for (std::size_t i = 0; i < n; ++i) {
            if (batchLines_[i] == nullptr)
                continue;
            const std::uint32_t lane = fifo_[i];
            Lane& ln = lanes_[lane];
            ln.result =
                fastApply_(lane, ln.intent, batchLines_[i], stamp++);
        }
    } else {
        fastOutstanding_.store(static_cast<std::uint32_t>(nFast),
                               std::memory_order_relaxed);
        Tick stamp = first;
        for (std::size_t i = 0; i < n; ++i) {
            if (batchLines_[i] == nullptr)
                continue;
            const std::uint32_t lane = fifo_[i];
            Lane& ln = lanes_[lane];
            ln.fastLine = batchLines_[i];
            ln.fastStamp = stamp++;
            const bool ok = rings_[lane % rings_.size()]->ring.tryPush(
                lane | kFastJobBit);
            assert(ok);
            (void)ok;
        }
        std::uint32_t left =
            fastOutstanding_.load(std::memory_order_acquire);
        while (left != 0) {
            fastOutstanding_.wait(left, std::memory_order_acquire);
            left = fastOutstanding_.load(std::memory_order_acquire);
        }
    }
    // Accounting and wake-up scheduling in exact retirement order, as
    // if each member had been committed alone. Compute/branch members
    // apply here in full (they commute with the concurrent data halves
    // above: they never read or write cache state).
    for (std::size_t i = 0; i < n; ++i) {
        const std::uint32_t lane = fifo_.front();
        Lane& ln = lanes_[lane];
        assert(eq_.curTick() == ln.slotTick);
        if (batchLines_[i] == nullptr)
            ln.result = apply_(lane, ln.intent);
        else
            account_(lane, ln.intent);
        assert(ln.result.wake > ln.slotTick);
        eq_.scheduleLane(ln.result.wake, lane);
        ++stats_.intents;
        ln.phase.store(kIdle, std::memory_order_relaxed);
        fifo_.pop_front();
    }
}

void
ParallelEngine::drainAll()
{
    while (!fifo_.empty())
        commitHead();
}

void
ParallelEngine::run()
{
    for (;;) {
        // Retire whatever is already published, in slot order; the
        // coordinator's applies overlap the workers' staging. In
        // commute mode, hold retirement while more events are due at
        // the head's own slot: dispatching those lane turns first
        // lets commitReady() gather a multi-intent batch. Sound —
        // staging is pure with respect to simulator state, and the
        // retirement order itself never changes.
        while (!fifo_.empty() && headReady()) {
            if (classify_ && eq_.pending() != 0 &&
                eq_.nextWhen() == lanes_[fifo_.front()].slotTick)
                break;
            commitReady();
        }
        if (!fifo_.empty()) {
            const Tick front = lanes_[fifo_.front()].slotTick;
            if (eq_.pending() == 0 || eq_.nextWhen() > front) {
                // Advancing time past an in-flight slot is unsound
                // (a completing section may schedule work there), so
                // block on the head before touching the queue again —
                // then retire through the gather: by the time the
                // head publishes, the rest of the prefix usually has
                // too, so threaded staging still forms batches.
                waitHead();
                commitReady();
                continue;
            }
        } else if (eq_.pending() == 0) {
            break;
        }
        EventQueue::Popped ev;
        if (!eq_.popNext(ev))
            break;
        ++stats_.events;
        if (ev.when >= windowEnd_) {
            // Window boundary (min c2c latency per window): quiesce
            // all staging before entering the new window.
            while (!fifo_.empty())
                commitHead();
            ++stats_.windows;
            windowEnd_ = (ev.when / windowTicks_ + 1) * windowTicks_;
        }
        if (ev.lane != EventQueue::kNoLane) {
            dispatch(ev.lane, ev.when);
            continue;
        }
        // Executor/callback event: it may touch any simulator state,
        // so every older slot must be retired first.
        while (!fifo_.empty())
            commitHead();
        if (ev.h)
            ev.h.resume();
        else
            (*ev.fn)();
    }
}

} // namespace hmtx::sim
