#include "sim/parallel_engine.hh"

#include "runtime/queue.hh" // header-only SpscRing (PR 3 machinery)

namespace hmtx::sim
{

/** Job ring of one worker: lane indices (or kStopJob) pushed by the
 *  coordinator, popped by the worker. */
struct ParallelEngine::WorkerRing
{
    explicit WorkerRing(std::size_t capacity) : ring(capacity) {}

    runtime::SpscRing<std::uint32_t> ring;
};

ParallelEngine::ParallelEngine(EventQueue& eq, unsigned lanes,
                               unsigned workers, Tick windowTicks)
    : eq_(eq), lanes_(lanes == 0 ? 1 : lanes),
      windowTicks_(windowTicks == 0 ? 1 : windowTicks)
{
    stats_.workers = workers;
    stats_.threaded = workers > 0;
    if (workers == 0)
        return;
    rings_.reserve(workers);
    for (unsigned w = 0; w < workers; ++w) {
        // At most one in-flight job per lane lands in a ring, so
        // lane-count capacity (plus the stop job) can never overflow.
        rings_.push_back(
            std::make_unique<WorkerRing>(lanes_.size() + 2));
    }
    threads_.reserve(workers);
    for (unsigned w = 0; w < workers; ++w)
        threads_.emplace_back([this, w] { workerMain(w); });
}

ParallelEngine::~ParallelEngine()
{
    for (auto& r : rings_) {
        while (!r->ring.tryPush(kStopJob)) {}
    }
    for (auto& t : threads_)
        t.join();
}

void
ParallelEngine::runLane(Lane& ln)
{
    ln.hasIntent = false;
    auto h = ln.resumeNext;
    ln.resumeNext = {};
    // Runs workload user code up to its next memory operation (which
    // captures an intent via stageIntent/stageSuspend) or to section
    // completion; an exception (TxAborted) stays in the coroutine's
    // promise exactly as in the sequential engine.
    h.resume();
}

void
ParallelEngine::workerMain(unsigned w)
{
    auto& ring = rings_[w]->ring;
    for (;;) {
        ring.waitNonEmpty();
        std::uint32_t lane;
        if (!ring.tryPop(lane))
            continue;
        if (lane == kStopJob)
            return;
        Lane& ln = lanes_[lane];
        runLane(ln);
        // Publish only after the coroutine fully suspended: the
        // release pairs with the coordinator's acquire in headReady()
        // and covers every lane field the worker wrote.
        ln.phase.store(kReady, std::memory_order_release);
        ln.phase.notify_one();
    }
}

void
ParallelEngine::dispatch(std::uint32_t lane, Tick when)
{
    Lane& ln = lanes_[lane];
    assert(ln.phase.load(std::memory_order_relaxed) == kIdle);
    ln.slotTick = when;
    ++stats_.laneEvents;
    if (inCommit_)
        bornInCommit_.push_back(lane);
    else
        fifo_.push_back(lane);
    if (threads_.empty()) {
        // Inline mode: same staging/retirement machinery, coordinator
        // thread only.
        runLane(ln);
        ln.phase.store(kReady, std::memory_order_relaxed);
        return;
    }
    ln.phase.store(kBusy, std::memory_order_relaxed);
    const bool ok =
        rings_[lane % rings_.size()]->ring.tryPush(lane);
    assert(ok);
    (void)ok;
}

void
ParallelEngine::beginSection(std::uint32_t lane,
                             std::coroutine_handle<> child,
                             std::coroutine_handle<> parent)
{
    Lane& ln = lanes_[lane];
    assert(!ln.staging);
    ln.staging = true;
    ln.parent = parent;
    ln.resumeNext = child;
    ++stats_.sections;
    // The section opens at the current event slot; its first access
    // retires here, exactly where the sequential loop would have run
    // it inline.
    dispatch(lane, eq_.curTick());
}

void
ParallelEngine::commitHead()
{
    const std::uint32_t lane = fifo_.front();
    Lane& ln = lanes_[lane];
    std::uint32_t p = ln.phase.load(std::memory_order_acquire);
    if (p != kReady) {
        ++stats_.barrierStalls;
        do {
            ln.phase.wait(p, std::memory_order_acquire);
            p = ln.phase.load(std::memory_order_acquire);
        } while (p != kReady);
    }
    fifo_.pop_front();
    if (ln.hasIntent) {
        // Retire the staged access at its own slot (now_ still equals
        // ln.slotTick: time never advances past an undrained slot).
        assert(eq_.curTick() == ln.slotTick);
        ln.result = apply_(lane, ln.intent);
        assert(ln.result.wake > ln.slotTick);
        eq_.scheduleLane(ln.result.wake, lane);
        ++stats_.intents;
        ln.phase.store(kIdle, std::memory_order_relaxed);
        return;
    }
    // Section completed (or unwound): resume the suspended executor
    // at this slot. Sections it opens while running belong at this
    // same slot and are spliced ahead of older in-flight work.
    ln.staging = false;
    const auto parent = ln.parent;
    ln.parent = {};
    ln.phase.store(kIdle, std::memory_order_relaxed);
    inCommit_ = true;
    parent.resume();
    inCommit_ = false;
    if (!bornInCommit_.empty()) {
        fifo_.insert(fifo_.begin(), bornInCommit_.begin(),
                     bornInCommit_.end());
        bornInCommit_.clear();
    }
}

void
ParallelEngine::drainAll()
{
    while (!fifo_.empty())
        commitHead();
}

void
ParallelEngine::run()
{
    for (;;) {
        // Retire whatever is already published, in slot order; the
        // coordinator's applies overlap the workers' staging.
        while (!fifo_.empty() && headReady())
            commitHead();
        if (!fifo_.empty()) {
            const Tick front = lanes_[fifo_.front()].slotTick;
            if (eq_.pending() == 0 || eq_.nextWhen() > front) {
                // Advancing time past an in-flight slot is unsound
                // (a completing section may schedule work there), so
                // block on the head before touching the queue again.
                commitHead();
                continue;
            }
        } else if (eq_.pending() == 0) {
            break;
        }
        EventQueue::Popped ev;
        if (!eq_.popNext(ev))
            break;
        ++stats_.events;
        if (ev.when >= windowEnd_) {
            // Window boundary (min c2c latency per window): quiesce
            // all staging before entering the new window.
            while (!fifo_.empty())
                commitHead();
            ++stats_.windows;
            windowEnd_ = (ev.when / windowTicks_ + 1) * windowTicks_;
        }
        if (ev.lane != EventQueue::kNoLane) {
            dispatch(ev.lane, ev.when);
            continue;
        }
        // Executor/callback event: it may touch any simulator state,
        // so every older slot must be retired first.
        while (!fifo_.empty())
            commitHead();
        if (ev.h)
            ev.h.resume();
        else
            (*ev.fn)();
    }
}

} // namespace hmtx::sim
