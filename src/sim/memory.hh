/**
 * @file
 * Functional main-memory model.
 */

#ifndef HMTX_SIM_MEMORY_HH
#define HMTX_SIM_MEMORY_HH

#include <array>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include "core/types.hh"

namespace hmtx::sim
{

/** One cache line's worth of backing data. */
using LineData = std::array<std::uint8_t, kLineBytes>;

/**
 * Sparse functional main memory. Lines materialize zero-filled on
 * first touch. Main memory only ever holds committed data: speculative
 * versions live in the caches until their transaction commits (the one
 * exception, §5.4, writes back *non-speculative* S-O data, which is by
 * definition committed).
 *
 * Storage is partitioned into address-hashed banks (power-of-two
 * count) so the sharded simulation engine's bulk writeback walks can
 * touch disjoint banks from concurrent workers. With one bank this is
 * exactly the classic single-map layout.
 */
class MainMemory
{
  public:
    explicit MainMemory(unsigned banks = 1)
        : banks_(banks < 1 ? 1 : banks), mask_(banks_.size() - 1)
    {}

    /**
     * Re-partitions into @p banks banks (power of two). Only legal
     * while the memory is untouched: the owning system sizes the
     * banking once at construction, before any traffic.
     */
    void
    setBanks(unsigned banks)
    {
        banks_.assign(banks < 1 ? 1 : banks, {});
        mask_ = banks_.size() - 1;
    }

    /** Bank index owning address @p a. */
    std::size_t
    bankOf(Addr a) const
    {
        return static_cast<std::size_t>((a >> kLineShift) & mask_);
    }

    /** Reads a full line. */
    const LineData&
    readLine(Addr a)
    {
        return bank(a)[lineAddr(a)];
    }

    /** Writes a full line. */
    void
    writeLine(Addr a, const LineData& d)
    {
        bank(a)[lineAddr(a)] = d;
    }

    /**
     * Reads an integer of @p size bytes (little-endian) at @p a.
     * @pre the access does not cross a line boundary
     */
    std::uint64_t
    read(Addr a, unsigned size)
    {
        const LineData& d = bank(a)[lineAddr(a)];
        std::uint64_t v = 0;
        unsigned off = lineOffset(a);
        for (unsigned i = 0; i < size; ++i)
            v |= static_cast<std::uint64_t>(d[off + i]) << (8 * i);
        return v;
    }

    /** Writes an integer of @p size bytes (little-endian) at @p a. */
    void
    write(Addr a, std::uint64_t v, unsigned size)
    {
        LineData& d = bank(a)[lineAddr(a)];
        unsigned off = lineOffset(a);
        for (unsigned i = 0; i < size; ++i)
            d[off + i] = static_cast<std::uint8_t>(v >> (8 * i));
    }

    /** Number of lines ever touched. */
    std::size_t
    touchedLines() const
    {
        std::size_t n = 0;
        for (const auto& b : banks_)
            n += b.size();
        return n;
    }

    /**
     * Pre-sizes the backing tables for at least @p n lines in total.
     * While a bank holds capacity for every key it receives, inserts
     * will not rehash, so references and iterators stay valid — bulk
     * writers use this to insert while a forEachLine() walk is in
     * flight. Each bank reserves the full @p n since the address
     * spread across banks is workload-dependent.
     */
    void
    reserveLines(std::size_t n)
    {
        for (auto& b : banks_)
            b.reserve(n);
    }

    /**
     * Applies @p fn(lineAddr, data) to every touched line, bank by
     * bank in ascending bank order. Iteration order within a bank is
     * the unordered_map's; callers that compare images must not depend
     * on order (the differential tests collect into sorted maps).
     */
    template <typename Fn>
    void
    forEachLine(Fn&& fn) const
    {
        for (const auto& b : banks_)
            for (const auto& [a, d] : b)
                fn(a, d);
    }

  private:
    std::unordered_map<Addr, LineData>&
    bank(Addr a)
    {
        return banks_[bankOf(a)];
    }

    std::vector<std::unordered_map<Addr, LineData>> banks_;
    std::size_t mask_;
};

} // namespace hmtx::sim

#endif // HMTX_SIM_MEMORY_HH
