/**
 * @file
 * Functional main-memory model.
 */

#ifndef HMTX_SIM_MEMORY_HH
#define HMTX_SIM_MEMORY_HH

#include <array>
#include <cstdint>
#include <unordered_map>

#include "core/types.hh"

namespace hmtx::sim
{

/** One cache line's worth of backing data. */
using LineData = std::array<std::uint8_t, kLineBytes>;

/**
 * Sparse functional main memory. Lines materialize zero-filled on
 * first touch. Main memory only ever holds committed data: speculative
 * versions live in the caches until their transaction commits (the one
 * exception, §5.4, writes back *non-speculative* S-O data, which is by
 * definition committed).
 */
class MainMemory
{
  public:
    /** Reads a full line. */
    const LineData&
    readLine(Addr a)
    {
        return lines_[lineAddr(a)];
    }

    /** Writes a full line. */
    void
    writeLine(Addr a, const LineData& d)
    {
        lines_[lineAddr(a)] = d;
    }

    /**
     * Reads an integer of @p size bytes (little-endian) at @p a.
     * @pre the access does not cross a line boundary
     */
    std::uint64_t
    read(Addr a, unsigned size)
    {
        const LineData& d = lines_[lineAddr(a)];
        std::uint64_t v = 0;
        unsigned off = lineOffset(a);
        for (unsigned i = 0; i < size; ++i)
            v |= static_cast<std::uint64_t>(d[off + i]) << (8 * i);
        return v;
    }

    /** Writes an integer of @p size bytes (little-endian) at @p a. */
    void
    write(Addr a, std::uint64_t v, unsigned size)
    {
        LineData& d = lines_[lineAddr(a)];
        unsigned off = lineOffset(a);
        for (unsigned i = 0; i < size; ++i)
            d[off + i] = static_cast<std::uint8_t>(v >> (8 * i));
    }

    /** Number of lines ever touched. */
    std::size_t touchedLines() const { return lines_.size(); }

    /**
     * Pre-sizes the backing table for at least @p n lines. While the
     * table holds capacity for every key, inserts will not rehash, so
     * references and iterators stay valid — bulk writers use this to
     * insert while a forEachLine() walk is in flight.
     */
    void
    reserveLines(std::size_t n)
    {
        lines_.reserve(n);
    }

    /** Applies @p fn(lineAddr, data) to every touched line. */
    template <typename Fn>
    void
    forEachLine(Fn&& fn) const
    {
        for (const auto& [a, d] : lines_)
            fn(a, d);
    }

  private:
    std::unordered_map<Addr, LineData> lines_;
};

} // namespace hmtx::sim

#endif // HMTX_SIM_MEMORY_HH
