/**
 * @file
 * Discrete-event simulation kernel.
 */

#ifndef HMTX_SIM_EVENT_QUEUE_HH
#define HMTX_SIM_EVENT_QUEUE_HH

#include <algorithm>
#include <bit>
#include <coroutine>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <utility>
#include <vector>

#include "core/types.hh"

namespace hmtx::sim
{

/**
 * A deterministic discrete-event queue.
 *
 * Every timed behaviour in the simulator (memory latencies, bus
 * occupancy, core compute delays, coroutine wake-ups) is an event.
 * Events at the same tick fire in schedule order, so a run is fully
 * deterministic for a given workload and seed.
 *
 * Storage is a calendar wheel: events due within the next kWheelTicks
 * cycles go into a per-tick bucket (O(1) push/pop, appends are already
 * in schedule order), and the rare far-future event (saturated-fabric
 * wake-ups, bulk-walk occupancy) waits in an overflow heap until its
 * tick comes up. Firing order is exactly the (when, seq) order the
 * classic binary-heap implementation produced: a bucket that receives
 * migrated overflow events is re-sorted by sequence number before it
 * drains.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Lane tag of events that belong to no parallel-engine lane. */
    static constexpr std::uint32_t kNoLane = ~std::uint32_t{0};

    /**
     * One due event, moved out of the queue by popNext(). `h` is set
     * for coroutine resumptions, `fn` for boxed callbacks, and `lane`
     * for parallel-engine lane turns (h and fn both empty); exactly
     * one of the three is meaningful.
     */
    struct Popped
    {
        Tick when = 0;
        std::uint32_t lane = kNoLane;
        std::coroutine_handle<> h;
        std::unique_ptr<Callback> fn;
    };

    /** Current simulated time. */
    Tick curTick() const { return now_; }

    /** True when no events are pending. */
    bool empty() const { return pending() == 0; }

    /** Number of pending events. */
    std::size_t pending() const { return wheelCount_ + far_.size(); }

    /** Total events ever executed. */
    std::uint64_t executed() const { return executed_; }

    /**
     * Schedules @p cb to run at absolute tick @p when.
     * @pre when >= curTick()
     */
    void
    schedule(Tick when, Callback cb)
    {
        push(Event{when, seq_++, {},
                   std::make_unique<Callback>(std::move(cb))});
    }

    /** Schedules @p cb to run @p delay cycles from now. */
    void
    scheduleIn(Cycles delay, Callback cb)
    {
        schedule(now_ + delay, std::move(cb));
    }

    /**
     * Schedules a coroutine resumption at absolute tick @p when.
     * Equivalent to `schedule(when, [h] { h.resume(); })` but stores
     * the handle directly — the dominant event kind (every memory
     * operation wake-up) skips std::function construction entirely.
     */
    void
    scheduleResume(Tick when, std::coroutine_handle<> h)
    {
        push(Event{when, seq_++, h, {}});
    }

    /** Schedules a coroutine resumption @p delay cycles from now. */
    void
    resumeIn(Cycles delay, std::coroutine_handle<> h)
    {
        scheduleResume(now_ + delay, h);
    }

    /**
     * Schedules a parallel-engine lane turn at absolute tick @p when.
     * Lane events carry no handle or callback: the parallel engine
     * pops them with popNext() and dispatches the lane itself. They
     * must never reach step().
     */
    void
    scheduleLane(Tick when, std::uint32_t lane)
    {
        push(Event{when, seq_++, {}, {}, lane});
    }

    /**
     * Moves the next event out of the queue without executing it,
     * advancing simulated time exactly as step() would. Used by the
     * parallel engine, which needs to see lane tags and control
     * execution order itself.
     * @return false if the queue was empty
     */
    bool
    popNext(Popped& out)
    {
        if (!advance())
            return false;
        auto& b = wheel_[bucketOf(now_)];
        Event ev = std::move(b[drainIdx_++]);
        --wheelCount_;
        ++executed_;
        out.when = ev.when;
        out.lane = ev.lane;
        out.h = ev.h;
        out.fn = std::move(ev.fn);
        return true;
    }

    /**
     * Zero-event time advance (DESIGN.md §13): jump simulated time to
     * @p wake without allocating, scheduling, or executing an event,
     * exactly as if a resumption had been scheduled at @p wake and
     * immediately fired as the sole event of that tick. Legal — and
     * taken — only when nothing else could fire first: the queue is
     * empty, or every pending event lies strictly after @p wake. The
     * target bucket is provably free of pending events in that case
     * (any wheel event aliasing it would itself be pending at or
     * before @p wake), so the jump preserves the wheel invariants.
     * executed() intentionally does not count bypassed wake-ups.
     * @return true when the jump was taken (@p wake is now curTick())
     */
    bool
    tryBypass(Tick wake)
    {
        if (wake < now_)
            return false;
        if (pending() != 0 && nextWhen() <= wake)
            return false;
        // Retire the current tick's bucket exactly as advance() does.
        auto* b = &wheel_[bucketOf(now_)];
        if (drainIdx_ != 0) {
            b->clear();
            drainIdx_ = 0;
            const std::size_t bi = bucketOf(now_);
            occ_[bi >> 6] &= ~(std::uint64_t{1} << (bi & 63));
        }
        now_ = wake;
        return true;
    }

    /**
     * Tick of the next pending event. @pre pending() != 0
     * (Public for the parallel engine's dispatch-horizon check.)
     */
    Tick
    nextWhen() const
    {
        if (drainIdx_ < wheel_[bucketOf(now_)].size())
            return now_;
        const Tick wn = nextWheelTick();
        const Tick fn = far_.empty() ? ~Tick{0} : far_.top().when;
        return std::min(wn, fn);
    }

    /**
     * Executes the next event, advancing simulated time.
     * @return false if the queue was empty
     */
    bool
    step()
    {
        if (!advance())
            return false;
        auto& b = wheel_[bucketOf(now_)];
        // Move the event out first: the callback may append to this
        // very bucket (delay-0 schedules) and reallocate it.
        Event ev = std::move(b[drainIdx_++]);
        --wheelCount_;
        ++executed_;
        if (ev.h)
            ev.h.resume();
        else
            (*ev.fn)();
        return true;
    }

    /** Runs until no events remain. */
    void
    run()
    {
        while (step()) {}
    }

    /** Runs until simulated time would exceed @p limit or queue empties. */
    void
    runUntil(Tick limit)
    {
        while (pending() != 0 && nextWhen() <= limit)
            step();
        if (now_ < limit && pending() == 0)
            now_ = limit;
    }

  private:
    /** Wheel span in ticks; latencies beyond this overflow to the
     *  heap. Must be a power of two. */
    static constexpr std::size_t kWheelTicks = 4096;
    static constexpr std::size_t kMask = kWheelTicks - 1;

    // Coroutine wake-ups are the dominant event kind by orders of
    // magnitude, so the Event is kept small and trivially movable:
    // the handle is stored inline and the occasional general callback
    // is boxed.
    struct Event
    {
        Tick when;
        std::uint64_t seq;
        std::coroutine_handle<> h;    // set → resume directly
        std::unique_ptr<Callback> fn; // otherwise the boxed callback
        std::uint32_t lane = kNoLane; // otherwise a lane turn

        bool
        operator>(const Event& o) const
        {
            return when != o.when ? when > o.when : seq > o.seq;
        }
    };

    static std::size_t bucketOf(Tick t) { return t & kMask; }

    void
    push(Event ev)
    {
        // Tolerate (documented-illegal) past ticks by firing asap
        // instead of corrupting the wheel window.
        if (ev.when < now_)
            ev.when = now_;
        if (ev.when - now_ < kWheelTicks) {
            const std::size_t b = bucketOf(ev.when);
            wheel_[b].push_back(std::move(ev));
            occ_[b >> 6] |= std::uint64_t{1} << (b & 63);
            ++wheelCount_;
        } else {
            far_.push(std::move(ev));
        }
    }

    /**
     * Earliest tick with pending wheel events strictly after now_'s
     * bucket, or ~0 when none. The current bucket is excluded on
     * purpose: its occupancy bit may be stale (set while its events
     * have all been drained — the bit is only cleared when the bucket
     * retires), and both callers handle in-flight current-tick events
     * before calling.
     */
    Tick
    nextWheelTick() const
    {
        if (wheelCount_ == 0)
            return ~Tick{0};
        // Circular bitmap scan starting just after now_'s bucket; the
        // k-th bucket after it holds tick now_ + k (wheel events all
        // lie in [now_, now_ + kWheelTicks)).
        const std::size_t start = bucketOf(now_);
        const std::size_t first = (start + 1) & kMask;
        constexpr std::size_t words = kWheelTicks / 64;
        std::size_t w = first >> 6;
        std::uint64_t m = occ_[w] & (~std::uint64_t{0} << (first & 63));
        for (std::size_t n = 0; n <= words; ++n) {
            while (m != 0) {
                const std::size_t b =
                    (w << 6) | std::size_t(std::countr_zero(m));
                const std::size_t k = (b - start) & kMask;
                if (k != 0)
                    return now_ + k;
                m &= m - 1; // stale bit of the drained current bucket
            }
            w = (w + 1) & (words - 1);
            m = occ_[w];
        }
        return ~Tick{0};
    }

    /**
     * Positions now_/drainIdx_ on the next due event: finishes the
     * current tick's bucket, otherwise retires it, advances to the
     * earliest pending tick, and folds due overflow events into that
     * bucket (restoring global (when, seq) order by a seq sort).
     * @return false when nothing is pending
     */
    bool
    advance()
    {
        auto* b = &wheel_[bucketOf(now_)];
        if (drainIdx_ < b->size())
            return true;
        if (drainIdx_ != 0) {
            b->clear();
            drainIdx_ = 0;
            const std::size_t bi = bucketOf(now_);
            occ_[bi >> 6] &= ~(std::uint64_t{1} << (bi & 63));
        }
        const Tick wn = nextWheelTick();
        const Tick fn = far_.empty() ? ~Tick{0} : far_.top().when;
        const Tick t = std::min(wn, fn);
        if (t == ~Tick{0})
            return false;
        now_ = t;
        b = &wheel_[bucketOf(now_)];
        bool migrated = false;
        while (!far_.empty() && far_.top().when == now_) {
            // priority_queue::top is const; the move is safe because
            // pop() only reads the ordering keys, which stay valid.
            b->push_back(std::move(const_cast<Event&>(far_.top())));
            far_.pop();
            ++wheelCount_;
            migrated = true;
        }
        if (migrated) {
            const std::size_t bi = bucketOf(now_);
            occ_[bi >> 6] |= std::uint64_t{1} << (bi & 63);
            std::sort(b->begin(), b->end(),
                      [](const Event& x, const Event& y) {
                          return x.seq < y.seq;
                      });
        }
        return true;
    }

    std::vector<std::vector<Event>> wheel_ =
        std::vector<std::vector<Event>>(kWheelTicks);
    /** One occupancy bit per bucket (cleared only on bucket retire). */
    std::vector<std::uint64_t> occ_ =
        std::vector<std::uint64_t>(kWheelTicks / 64, 0);
    /** Events scheduled >= kWheelTicks ahead wait here. */
    std::priority_queue<Event, std::vector<Event>, std::greater<>> far_;
    /** Next un-fired slot in the current tick's bucket. */
    std::size_t drainIdx_ = 0;
    std::size_t wheelCount_ = 0;
    Tick now_ = 0;
    std::uint64_t seq_ = 0;
    std::uint64_t executed_ = 0;
};

} // namespace hmtx::sim

#endif // HMTX_SIM_EVENT_QUEUE_HH
