/**
 * @file
 * Discrete-event simulation kernel.
 */

#ifndef HMTX_SIM_EVENT_QUEUE_HH
#define HMTX_SIM_EVENT_QUEUE_HH

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "core/types.hh"

namespace hmtx::sim
{

/**
 * A deterministic discrete-event queue.
 *
 * Every timed behaviour in the simulator (memory latencies, bus
 * occupancy, core compute delays, coroutine wake-ups) is an event.
 * Events at the same tick fire in schedule order, so a run is fully
 * deterministic for a given workload and seed.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Current simulated time. */
    Tick curTick() const { return now_; }

    /** True when no events are pending. */
    bool empty() const { return events_.empty(); }

    /** Number of pending events. */
    std::size_t pending() const { return events_.size(); }

    /** Total events ever executed. */
    std::uint64_t executed() const { return executed_; }

    /**
     * Schedules @p cb to run at absolute tick @p when.
     * @pre when >= curTick()
     */
    void
    schedule(Tick when, Callback cb)
    {
        events_.push(Event{when, seq_++, std::move(cb)});
    }

    /** Schedules @p cb to run @p delay cycles from now. */
    void
    scheduleIn(Cycles delay, Callback cb)
    {
        schedule(now_ + delay, std::move(cb));
    }

    /**
     * Executes the next event, advancing simulated time.
     * @return false if the queue was empty
     */
    bool
    step()
    {
        if (events_.empty())
            return false;
        // Move the callback out before popping so that callbacks may
        // schedule new events (and thus reallocate) safely.
        Event ev = events_.top();
        events_.pop();
        now_ = ev.when;
        ++executed_;
        ev.fn();
        return true;
    }

    /** Runs until no events remain. */
    void
    run()
    {
        while (step()) {}
    }

    /** Runs until simulated time would exceed @p limit or queue empties. */
    void
    runUntil(Tick limit)
    {
        while (!events_.empty() && events_.top().when <= limit)
            step();
        if (now_ < limit && events_.empty())
            now_ = limit;
    }

  private:
    struct Event
    {
        Tick when;
        std::uint64_t seq;
        Callback fn;

        bool
        operator>(const Event& o) const
        {
            return when != o.when ? when > o.when : seq > o.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, std::greater<>> events_;
    Tick now_ = 0;
    std::uint64_t seq_ = 0;
    std::uint64_t executed_ = 0;
};

} // namespace hmtx::sim

#endif // HMTX_SIM_EVENT_QUEUE_HH
