/**
 * @file
 * Discrete-event simulation kernel.
 */

#ifndef HMTX_SIM_EVENT_QUEUE_HH
#define HMTX_SIM_EVENT_QUEUE_HH

#include <coroutine>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <utility>
#include <vector>

#include "core/types.hh"

namespace hmtx::sim
{

/**
 * A deterministic discrete-event queue.
 *
 * Every timed behaviour in the simulator (memory latencies, bus
 * occupancy, core compute delays, coroutine wake-ups) is an event.
 * Events at the same tick fire in schedule order, so a run is fully
 * deterministic for a given workload and seed.
 */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Current simulated time. */
    Tick curTick() const { return now_; }

    /** True when no events are pending. */
    bool empty() const { return events_.empty(); }

    /** Number of pending events. */
    std::size_t pending() const { return events_.size(); }

    /** Total events ever executed. */
    std::uint64_t executed() const { return executed_; }

    /**
     * Schedules @p cb to run at absolute tick @p when.
     * @pre when >= curTick()
     */
    void
    schedule(Tick when, Callback cb)
    {
        events_.push(
            Event{when, seq_++, {},
                  std::make_unique<Callback>(std::move(cb))});
    }

    /** Schedules @p cb to run @p delay cycles from now. */
    void
    scheduleIn(Cycles delay, Callback cb)
    {
        schedule(now_ + delay, std::move(cb));
    }

    /**
     * Schedules a coroutine resumption at absolute tick @p when.
     * Equivalent to `schedule(when, [h] { h.resume(); })` but stores
     * the handle directly — the dominant event kind (every memory
     * operation wake-up) skips std::function construction entirely.
     */
    void
    scheduleResume(Tick when, std::coroutine_handle<> h)
    {
        events_.push(Event{when, seq_++, h, {}});
    }

    /** Schedules a coroutine resumption @p delay cycles from now. */
    void
    resumeIn(Cycles delay, std::coroutine_handle<> h)
    {
        scheduleResume(now_ + delay, h);
    }

    /**
     * Executes the next event, advancing simulated time.
     * @return false if the queue was empty
     */
    bool
    step()
    {
        if (events_.empty())
            return false;
        // Move the callback out before popping so that callbacks may
        // schedule new events (and thus reallocate) safely. Moving
        // (rather than copying) the top element is fine: the ordering
        // keys (when, seq) are trivially copyable and stay valid in
        // the moved-from element for the sift-down done by pop().
        Event ev = std::move(const_cast<Event&>(events_.top()));
        events_.pop();
        now_ = ev.when;
        ++executed_;
        if (ev.h)
            ev.h.resume();
        else
            (*ev.fn)();
        return true;
    }

    /** Runs until no events remain. */
    void
    run()
    {
        while (step()) {}
    }

    /** Runs until simulated time would exceed @p limit or queue empties. */
    void
    runUntil(Tick limit)
    {
        while (!events_.empty() && events_.top().when <= limit)
            step();
        if (now_ < limit && events_.empty())
            now_ = limit;
    }

  private:
    // Coroutine wake-ups are the dominant event kind by orders of
    // magnitude, so the Event is kept small and trivially movable:
    // the handle is stored inline and the occasional general callback
    // is boxed (heap sifts move Events O(log n) times per operation).
    struct Event
    {
        Tick when;
        std::uint64_t seq;
        std::coroutine_handle<> h;    // set → resume directly
        std::unique_ptr<Callback> fn; // otherwise the boxed callback

        bool
        operator>(const Event& o) const
        {
            return when != o.when ? when > o.when : seq > o.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, std::greater<>> events_;
    Tick now_ = 0;
    std::uint64_t seq_ = 0;
    std::uint64_t executed_ = 0;
};

} // namespace hmtx::sim

#endif // HMTX_SIM_EVENT_QUEUE_HH
