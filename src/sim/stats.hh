/**
 * @file
 * System-wide statistics collected by the memory system.
 */

#ifndef HMTX_SIM_STATS_HH
#define HMTX_SIM_STATS_HH

#include <array>
#include <bit>
#include <cstdint>
#include <vector>

#include "core/types.hh"

namespace hmtx::sim
{

/**
 * Counters accumulated by CacheSystem. These feed Table 1 (per-TX
 * speculative accesses, SLA counts, avoided aborts), Figure 9 (read and
 * write set sizes), and Table 3 (activity counts for the power model).
 */
struct SysStats
{
    // Access mix.
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t specLoads = 0;
    std::uint64_t specStores = 0;
    std::uint64_t wrongPathLoads = 0;

    // Hierarchy behaviour.
    std::uint64_t l1Hits = 0;
    std::uint64_t l1Misses = 0;
    std::uint64_t snoopHits = 0;
    std::uint64_t memFetches = 0;
    std::uint64_t writebacks = 0;
    std::uint64_t busTxns = 0;
    /** Directory-fabric transactions (bank lookups). */
    std::uint64_t dirLookups = 0;

    // HMTX protocol events.
    std::uint64_t commits = 0;
    /** Cycles the memory system spent processing commits/aborts:
     *  O(1) per commit with the lazy scheme (§5.3), O(speculative
     *  lines) with the naive §4.4 scheme. */
    std::uint64_t commitProcessingCycles = 0;
    std::uint64_t aborts = 0;
    std::uint64_t falseAbortsWrongPath = 0;
    std::uint64_t capacityAborts = 0;
    std::uint64_t newVersions = 0;
    /** Redundant per-VID read copies allocated under the §7.1
     *  copy-on-read ablation policy. */
    std::uint64_t corDuplicates = 0;
    std::uint64_t vidResets = 0;

    // SLA machinery (§5.1).
    std::uint64_t slaNeeded = 0;
    std::uint64_t slaConfirms = 0;
    std::uint64_t slaMismatchAborts = 0;
    std::uint64_t avoidedAborts = 0;

    // §5.4 overflow handling.
    std::uint64_t soOverflowWritebacks = 0;
    std::uint64_t soRefetches = 0;
    /** Speculative responder lines spilled to the overflow table
     *  (unbounded-sets extension, §8). */
    std::uint64_t specSpills = 0;
    std::uint64_t specRefills = 0;

    /**
     * Cores of the configured machine the execution model left idle
     * (numCores minus the cores the executor actually occupied).
     * Recorded by the runtime drivers so a pipeline schedule narrower
     * than the machine is visible instead of silently wasting cores.
     */
    std::uint64_t idleCores = 0;

    // Read/write set accounting (Figure 9), accumulated at commit.
    std::uint64_t committedTxs = 0;
    std::uint64_t readSetLines = 0;
    std::uint64_t writeSetLines = 0;
    std::uint64_t combinedSetLines = 0;
    std::uint64_t maxCombinedSetLines = 0;

    /** Average read set size per committed transaction, in kB. */
    double
    avgReadSetKB() const
    {
        return committedTxs == 0 ? 0.0
            : static_cast<double>(readSetLines) * kLineBytes / 1024.0 /
                static_cast<double>(committedTxs);
    }

    /** Average write set size per committed transaction, in kB. */
    double
    avgWriteSetKB() const
    {
        return committedTxs == 0 ? 0.0
            : static_cast<double>(writeSetLines) * kLineBytes / 1024.0 /
                static_cast<double>(committedTxs);
    }

    /** Average combined set size per committed transaction, in kB. */
    double
    avgCombinedSetKB() const
    {
        return committedTxs == 0 ? 0.0
            : static_cast<double>(combinedSetLines) * kLineBytes /
                1024.0 / static_cast<double>(committedTxs);
    }

    /** Average speculative accesses per committed transaction. */
    double
    avgSpecAccessesPerTx() const
    {
        return committedTxs == 0 ? 0.0
            : static_cast<double>(specLoads + specStores) /
                static_cast<double>(committedTxs);
    }

    /** Fraction of speculative loads that needed an SLA (Table 1). */
    double
    slaNeededRate() const
    {
        return specLoads == 0 ? 0.0
            : static_cast<double>(slaNeeded) /
                static_cast<double>(specLoads);
    }

    /**
     * Field-wise equality; the differential tests use this to prove
     * the indexed hot paths are observation-equivalent to the
     * full-scan reference.
     */
    bool operator==(const SysStats&) const = default;
};

/**
 * Diagnostics for the simulator-internal index structures (address
 * presence filter + per-cache spec-line registry). Kept separate from
 * SysStats on purpose: these counters describe how the *simulator*
 * found lines, not what the simulated machine did, and they differ
 * between indexed and full-scan runs that are otherwise bit-identical.
 */
struct IndexStats
{
    /** Caches actually visited by a filtered snoop. */
    std::uint64_t snoopsVisited = 0;
    /** Caches skipped because the filter proved them empty. */
    std::uint64_t snoopsFiltered = 0;
    /** Bulk walks served from the spec-line registries. */
    std::uint64_t registryWalks = 0;
    /** Lines visited by those registry walks. */
    std::uint64_t registryWalkLines = 0;
    /** Bulk walks that fell back to a full cache scan. */
    std::uint64_t fullScanWalks = 0;
    /** Times verifyIndexes() rebuilt and compared the indexes. */
    std::uint64_t crossChecks = 0;

    /** Fraction of snoop targets the filter eliminated. */
    double
    snoopFilterRate() const
    {
        const std::uint64_t total = snoopsVisited + snoopsFiltered;
        return total == 0 ? 0.0
            : static_cast<double>(snoopsFiltered) /
                static_cast<double>(total);
    }
};

/**
 * Diagnostics for the sharded simulation engine (bank-partitioned
 * bulk walks). Like IndexStats these are simulator-side — they count
 * how the simulator organized its own work, never what the simulated
 * machine did — and are excluded from the differential-equality
 * comparisons: runs with different shard counts are bit-identical in
 * SysStats but naturally differ here.
 */
struct ShardStats
{
    /** Effective bank count (after the power-of-two clamp). */
    std::uint64_t banks = 1;
    /** True when dedicated worker threads drain the bank rings. */
    bool threaded = false;
    /** Epoch barriers executed (one per bulk protocol operation). */
    std::uint64_t epochs = 0;
    /** Per-bank commands routed through the SPSC rings. */
    std::vector<std::uint64_t> bankCmds;
    /** Max SPSC ring occupancy ever observed. */
    std::uint64_t ringHighWater = 0;
    /** Pushes that found a bank ring full and had to retry. */
    std::uint64_t pushStalls = 0;
    /** Epoch barriers where the coordinator actually blocked. */
    std::uint64_t barrierStalls = 0;

    /** Total commands routed across all banks. */
    std::uint64_t
    totalCmds() const
    {
        std::uint64_t n = 0;
        for (std::uint64_t c : bankCmds)
            n += c;
        return n;
    }
};

/**
 * Diagnostics for the parallel event engine (DESIGN.md §11). Like
 * ShardStats these are simulator-side — they describe how the host
 * organized the work, never what the simulated machine did — and are
 * excluded from differential-equality comparisons: sequential and
 * parallel runs are bit-identical in SysStats but differ here.
 */
struct ParStats
{
    /** Host worker threads staging lane code (0 = inline mode). */
    std::uint64_t workers = 0;
    /** True when dedicated worker threads stage the lanes. */
    bool threaded = false;
    /** Accounting windows executed (min-c2c-latency ticks each). */
    std::uint64_t windows = 0;
    /** Events popped from the queue (lane turns + executor events). */
    std::uint64_t events = 0;
    /** Lane turns dispatched to workers for staging. */
    std::uint64_t laneEvents = 0;
    /** Staged sections opened (one per workload stage invocation). */
    std::uint64_t sections = 0;
    /** Staged memory-op intents retired in event order. */
    std::uint64_t intents = 0;
    /** Retirements where the coordinator blocked on a worker. */
    std::uint64_t barrierStalls = 0;
    /** Speculative rollbacks — always 0: the engine is conservative
     *  (it never executes an access out of order, so it never has to
     *  undo one); reported to make that confirmation visible. */
    std::uint64_t rollbacks = 0;

    // Commute-aware apply (DESIGN.md §13). A "batch" is a ready
    // prefix of >= 2 fast-path-eligible intents on pairwise-distinct
    // banks whose data halves were applied concurrently.
    /** Concurrent-retire batches executed. */
    std::uint64_t commuteBatches = 0;
    /** Intents applied inside those batches. */
    std::uint64_t commuteApplied = 0;
    /** Ready intents excluded from a batch by a bank collision with
     *  an earlier batch member. */
    std::uint64_t commuteConflicts = 0;
    /** Ready intents that fell back to the exact sequential retire
     *  order (miss, protocol action required, or ineligible kind). */
    std::uint64_t commuteSerialFallbacks = 0;

    /** Mean popped events per accounting window. */
    double
    eventsPerWindow() const
    {
        return windows == 0 ? 0.0
                            : double(events) / double(windows);
    }
};

/**
 * Diagnostics for the zero-event hit fast path (DESIGN.md §13). Like
 * ParStats these are simulator-side: the fast path retires an access
 * with identical architectural effects to the full path, so runs with
 * the fast path on and off are bit-identical in SysStats but differ
 * here.
 */
struct FastStats
{
    /** Fast probes attempted (every load/store when enabled). */
    std::uint64_t attempts = 0;
    /** Loads retired by the fast path. */
    std::uint64_t loadHits = 0;
    /** Stores retired by the fast path. */
    std::uint64_t storeHits = 0;
    /** Probes that found a tag for the right VID but rejected it
     *  because the generation was stale (the line or the system was
     *  touched by a protocol action since the tag was planted). */
    std::uint64_t genRejections = 0;
    /** Event-queue schedules bypassed entirely (access retired with
     *  no event allocated; runtime-driven runs only). */
    std::uint64_t eventBypasses = 0;

    /** Total fast-path retirements. */
    std::uint64_t hits() const { return loadHits + storeHits; }

    /** Fraction of fast probes that retired on the fast path. */
    double
    hitRate() const
    {
        return attempts == 0 ? 0.0
            : static_cast<double>(hits()) /
                static_cast<double>(attempts);
    }
};

/**
 * Streaming log-linear latency histogram (HDR style): each power-of-
 * two octave is split into 2^kSubBits linear sub-buckets, so the
 * relative quantization error is bounded by 1/2^kSubBits (~6%) at any
 * magnitude while the whole structure stays a fixed ~8 kB regardless
 * of how many samples it absorbs. record() is O(1), allocation-free
 * and branch-light — cheap enough to sit on the per-retire path of a
 * millions-of-transactions serving run where keeping every latency
 * sample would O(n)-accumulate.
 *
 * Percentiles are nearest-rank over the bucketized distribution and
 * return the selected bucket's lower bound; bucketFloor() exposes the
 * same quantization so an exact sort-based recompute can assert
 * equality (see the kv_serve smoke test).
 */
class LatencyHistogram
{
  public:
    /** Linear sub-buckets per octave = 2^kSubBits. */
    static constexpr unsigned kSubBits = 4;
    /** Values below 2^(kSubBits+1) get exact single-value buckets
     *  (0..31 with kSubBits=4); each octave above contributes
     *  2^kSubBits buckets, up to the top uint64 octave (exp 63). */
    static constexpr unsigned kBuckets =
        (2u << kSubBits) + ((63 - kSubBits) << kSubBits);

    /** Bucket index of @p v (O(1), total order preserved). */
    static unsigned
    bucketOf(std::uint64_t v)
    {
        if (v < (2u << kSubBits))
            return static_cast<unsigned>(v);
        const unsigned exp = 63 - std::countl_zero(v);
        const unsigned sub = static_cast<unsigned>(
            (v >> (exp - kSubBits)) & ((1u << kSubBits) - 1));
        return ((exp - kSubBits + 1) << kSubBits) + sub;
    }

    /** Smallest value landing in bucket @p b (inverse of bucketOf). */
    static std::uint64_t
    lowerBoundOf(unsigned b)
    {
        if (b < (2u << kSubBits))
            return b;
        const unsigned exp = (b >> kSubBits) + kSubBits - 1;
        const std::uint64_t sub = b & ((1u << kSubBits) - 1);
        return ((std::uint64_t{1} << kSubBits) + sub)
               << (exp - kSubBits);
    }

    /** @p v quantized to its bucket's lower bound — what percentile()
     *  reports for samples of @p v. */
    static std::uint64_t
    bucketFloor(std::uint64_t v)
    {
        return lowerBoundOf(bucketOf(v));
    }

    /** Absorbs one sample. O(1), no allocation. */
    void
    record(std::uint64_t v)
    {
        ++counts_[bucketOf(v)];
        ++count_;
        sum_ += v;
        max_ = v > max_ ? v : max_;
        min_ = v < min_ ? v : min_;
    }

    /** Folds @p o's samples into this histogram. */
    void
    merge(const LatencyHistogram& o)
    {
        for (unsigned b = 0; b < kBuckets; ++b)
            counts_[b] += o.counts_[b];
        count_ += o.count_;
        sum_ += o.sum_;
        max_ = o.max_ > max_ ? o.max_ : max_;
        min_ = o.min_ < min_ ? o.min_ : min_;
    }

    std::uint64_t count() const { return count_; }
    std::uint64_t sum() const { return sum_; }
    std::uint64_t max() const { return max_; }
    std::uint64_t min() const { return count_ ? min_ : 0; }

    double
    mean() const
    {
        return count_ == 0
            ? 0.0
            : static_cast<double>(sum_) / static_cast<double>(count_);
    }

    /**
     * Nearest-rank percentile (q in (0, 1]): the bucket lower bound of
     * the ceil(q * count)-th smallest sample. 0 when empty.
     */
    std::uint64_t
    percentile(double q) const
    {
        if (count_ == 0)
            return 0;
        auto rank = static_cast<std::uint64_t>(
            q * static_cast<double>(count_));
        if (static_cast<double>(rank) <
            q * static_cast<double>(count_))
            ++rank; // ceil
        if (rank == 0)
            rank = 1;
        std::uint64_t cum = 0;
        for (unsigned b = 0; b < kBuckets; ++b) {
            cum += counts_[b];
            if (cum >= rank)
                return lowerBoundOf(b);
        }
        return max_; // unreachable while count_ is consistent
    }

  private:
    std::array<std::uint64_t, kBuckets> counts_{};
    std::uint64_t count_ = 0;
    std::uint64_t sum_ = 0;
    std::uint64_t max_ = 0;
    std::uint64_t min_ = ~std::uint64_t{0};
};

/**
 * Counters of the KV/OLTP serving engine (src/workloads/kv_serve.*).
 * Simulator-side like FastStats — they describe the request pipeline
 * the driver ran, not the simulated machine — but their *internal*
 * consistency is architectural truth: every issued transaction
 * attempt ends in exactly one commit or one abort, so
 * committed + aborted == issued always holds (asserted by the smoke
 * test and checkable on any report via consistent()).
 */
struct ServeStats
{
    /** Distinct requests completed (each commits exactly once). */
    std::uint64_t requests = 0;
    /** Transaction attempts started (first dispatch + re-executions). */
    std::uint64_t issued = 0;
    /** Attempts that ended in a commit. */
    std::uint64_t committed = 0;
    /** Attempts that ended in an abort (and were re-issued). */
    std::uint64_t aborted = 0;
    /** Serialized drain passes that ran the oldest transaction alone
     *  to guarantee progress after an abort. */
    std::uint64_t drains = 0;
    /** Bodies restarted from the top because the best-effort fallback
     *  lock engaged mid-transaction: the speculative prefix written
     *  before the lock is ordinary flushable state (the protocol
     *  requires the holder to own none), so the whole request
     *  re-executes under the lock. */
    std::uint64_t lockRestarts = 0;
    /** Requests whose footprint exceeds the limited-set K even alone;
     *  run non-speculatively under a quiesced pipeline (the software
     *  fallback of a bounded HTM) and committed as an empty VID. */
    std::uint64_t nonSpecFallbacks = 0;
    /** VID-window resets the engine performed between batches. */
    std::uint64_t windowResets = 0;
    /** Generator refill batches injected into the per-core rings. */
    std::uint64_t batches = 0;
    /** Cycles cores sat idle waiting for the next open-loop arrival. */
    std::uint64_t idleCycles = 0;
    /** Commit-time request latency (arrival to commit), in cycles. */
    LatencyHistogram latency;

    /** Every attempt ended exactly one way. */
    bool
    consistent() const
    {
        return committed + aborted == issued && committed == requests;
    }
};

} // namespace hmtx::sim

#endif // HMTX_SIM_STATS_HH
