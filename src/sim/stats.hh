/**
 * @file
 * System-wide statistics collected by the memory system.
 */

#ifndef HMTX_SIM_STATS_HH
#define HMTX_SIM_STATS_HH

#include <cstdint>
#include <vector>

#include "core/types.hh"

namespace hmtx::sim
{

/**
 * Counters accumulated by CacheSystem. These feed Table 1 (per-TX
 * speculative accesses, SLA counts, avoided aborts), Figure 9 (read and
 * write set sizes), and Table 3 (activity counts for the power model).
 */
struct SysStats
{
    // Access mix.
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t specLoads = 0;
    std::uint64_t specStores = 0;
    std::uint64_t wrongPathLoads = 0;

    // Hierarchy behaviour.
    std::uint64_t l1Hits = 0;
    std::uint64_t l1Misses = 0;
    std::uint64_t snoopHits = 0;
    std::uint64_t memFetches = 0;
    std::uint64_t writebacks = 0;
    std::uint64_t busTxns = 0;
    /** Directory-fabric transactions (bank lookups). */
    std::uint64_t dirLookups = 0;

    // HMTX protocol events.
    std::uint64_t commits = 0;
    /** Cycles the memory system spent processing commits/aborts:
     *  O(1) per commit with the lazy scheme (§5.3), O(speculative
     *  lines) with the naive §4.4 scheme. */
    std::uint64_t commitProcessingCycles = 0;
    std::uint64_t aborts = 0;
    std::uint64_t falseAbortsWrongPath = 0;
    std::uint64_t capacityAborts = 0;
    std::uint64_t newVersions = 0;
    /** Redundant per-VID read copies allocated under the §7.1
     *  copy-on-read ablation policy. */
    std::uint64_t corDuplicates = 0;
    std::uint64_t vidResets = 0;

    // SLA machinery (§5.1).
    std::uint64_t slaNeeded = 0;
    std::uint64_t slaConfirms = 0;
    std::uint64_t slaMismatchAborts = 0;
    std::uint64_t avoidedAborts = 0;

    // §5.4 overflow handling.
    std::uint64_t soOverflowWritebacks = 0;
    std::uint64_t soRefetches = 0;
    /** Speculative responder lines spilled to the overflow table
     *  (unbounded-sets extension, §8). */
    std::uint64_t specSpills = 0;
    std::uint64_t specRefills = 0;

    /**
     * Cores of the configured machine the execution model left idle
     * (numCores minus the cores the executor actually occupied).
     * Recorded by the runtime drivers so a pipeline schedule narrower
     * than the machine is visible instead of silently wasting cores.
     */
    std::uint64_t idleCores = 0;

    // Read/write set accounting (Figure 9), accumulated at commit.
    std::uint64_t committedTxs = 0;
    std::uint64_t readSetLines = 0;
    std::uint64_t writeSetLines = 0;
    std::uint64_t combinedSetLines = 0;
    std::uint64_t maxCombinedSetLines = 0;

    /** Average read set size per committed transaction, in kB. */
    double
    avgReadSetKB() const
    {
        return committedTxs == 0 ? 0.0
            : static_cast<double>(readSetLines) * kLineBytes / 1024.0 /
                static_cast<double>(committedTxs);
    }

    /** Average write set size per committed transaction, in kB. */
    double
    avgWriteSetKB() const
    {
        return committedTxs == 0 ? 0.0
            : static_cast<double>(writeSetLines) * kLineBytes / 1024.0 /
                static_cast<double>(committedTxs);
    }

    /** Average combined set size per committed transaction, in kB. */
    double
    avgCombinedSetKB() const
    {
        return committedTxs == 0 ? 0.0
            : static_cast<double>(combinedSetLines) * kLineBytes /
                1024.0 / static_cast<double>(committedTxs);
    }

    /** Average speculative accesses per committed transaction. */
    double
    avgSpecAccessesPerTx() const
    {
        return committedTxs == 0 ? 0.0
            : static_cast<double>(specLoads + specStores) /
                static_cast<double>(committedTxs);
    }

    /** Fraction of speculative loads that needed an SLA (Table 1). */
    double
    slaNeededRate() const
    {
        return specLoads == 0 ? 0.0
            : static_cast<double>(slaNeeded) /
                static_cast<double>(specLoads);
    }

    /**
     * Field-wise equality; the differential tests use this to prove
     * the indexed hot paths are observation-equivalent to the
     * full-scan reference.
     */
    bool operator==(const SysStats&) const = default;
};

/**
 * Diagnostics for the simulator-internal index structures (address
 * presence filter + per-cache spec-line registry). Kept separate from
 * SysStats on purpose: these counters describe how the *simulator*
 * found lines, not what the simulated machine did, and they differ
 * between indexed and full-scan runs that are otherwise bit-identical.
 */
struct IndexStats
{
    /** Caches actually visited by a filtered snoop. */
    std::uint64_t snoopsVisited = 0;
    /** Caches skipped because the filter proved them empty. */
    std::uint64_t snoopsFiltered = 0;
    /** Bulk walks served from the spec-line registries. */
    std::uint64_t registryWalks = 0;
    /** Lines visited by those registry walks. */
    std::uint64_t registryWalkLines = 0;
    /** Bulk walks that fell back to a full cache scan. */
    std::uint64_t fullScanWalks = 0;
    /** Times verifyIndexes() rebuilt and compared the indexes. */
    std::uint64_t crossChecks = 0;

    /** Fraction of snoop targets the filter eliminated. */
    double
    snoopFilterRate() const
    {
        const std::uint64_t total = snoopsVisited + snoopsFiltered;
        return total == 0 ? 0.0
            : static_cast<double>(snoopsFiltered) /
                static_cast<double>(total);
    }
};

/**
 * Diagnostics for the sharded simulation engine (bank-partitioned
 * bulk walks). Like IndexStats these are simulator-side — they count
 * how the simulator organized its own work, never what the simulated
 * machine did — and are excluded from the differential-equality
 * comparisons: runs with different shard counts are bit-identical in
 * SysStats but naturally differ here.
 */
struct ShardStats
{
    /** Effective bank count (after the power-of-two clamp). */
    std::uint64_t banks = 1;
    /** True when dedicated worker threads drain the bank rings. */
    bool threaded = false;
    /** Epoch barriers executed (one per bulk protocol operation). */
    std::uint64_t epochs = 0;
    /** Per-bank commands routed through the SPSC rings. */
    std::vector<std::uint64_t> bankCmds;
    /** Max SPSC ring occupancy ever observed. */
    std::uint64_t ringHighWater = 0;
    /** Pushes that found a bank ring full and had to retry. */
    std::uint64_t pushStalls = 0;
    /** Epoch barriers where the coordinator actually blocked. */
    std::uint64_t barrierStalls = 0;

    /** Total commands routed across all banks. */
    std::uint64_t
    totalCmds() const
    {
        std::uint64_t n = 0;
        for (std::uint64_t c : bankCmds)
            n += c;
        return n;
    }
};

/**
 * Diagnostics for the parallel event engine (DESIGN.md §11). Like
 * ShardStats these are simulator-side — they describe how the host
 * organized the work, never what the simulated machine did — and are
 * excluded from differential-equality comparisons: sequential and
 * parallel runs are bit-identical in SysStats but differ here.
 */
struct ParStats
{
    /** Host worker threads staging lane code (0 = inline mode). */
    std::uint64_t workers = 0;
    /** True when dedicated worker threads stage the lanes. */
    bool threaded = false;
    /** Accounting windows executed (min-c2c-latency ticks each). */
    std::uint64_t windows = 0;
    /** Events popped from the queue (lane turns + executor events). */
    std::uint64_t events = 0;
    /** Lane turns dispatched to workers for staging. */
    std::uint64_t laneEvents = 0;
    /** Staged sections opened (one per workload stage invocation). */
    std::uint64_t sections = 0;
    /** Staged memory-op intents retired in event order. */
    std::uint64_t intents = 0;
    /** Retirements where the coordinator blocked on a worker. */
    std::uint64_t barrierStalls = 0;
    /** Speculative rollbacks — always 0: the engine is conservative
     *  (it never executes an access out of order, so it never has to
     *  undo one); reported to make that confirmation visible. */
    std::uint64_t rollbacks = 0;

    // Commute-aware apply (DESIGN.md §13). A "batch" is a ready
    // prefix of >= 2 fast-path-eligible intents on pairwise-distinct
    // banks whose data halves were applied concurrently.
    /** Concurrent-retire batches executed. */
    std::uint64_t commuteBatches = 0;
    /** Intents applied inside those batches. */
    std::uint64_t commuteApplied = 0;
    /** Ready intents excluded from a batch by a bank collision with
     *  an earlier batch member. */
    std::uint64_t commuteConflicts = 0;
    /** Ready intents that fell back to the exact sequential retire
     *  order (miss, protocol action required, or ineligible kind). */
    std::uint64_t commuteSerialFallbacks = 0;

    /** Mean popped events per accounting window. */
    double
    eventsPerWindow() const
    {
        return windows == 0 ? 0.0
                            : double(events) / double(windows);
    }
};

/**
 * Diagnostics for the zero-event hit fast path (DESIGN.md §13). Like
 * ParStats these are simulator-side: the fast path retires an access
 * with identical architectural effects to the full path, so runs with
 * the fast path on and off are bit-identical in SysStats but differ
 * here.
 */
struct FastStats
{
    /** Fast probes attempted (every load/store when enabled). */
    std::uint64_t attempts = 0;
    /** Loads retired by the fast path. */
    std::uint64_t loadHits = 0;
    /** Stores retired by the fast path. */
    std::uint64_t storeHits = 0;
    /** Probes that found a tag for the right VID but rejected it
     *  because the generation was stale (the line or the system was
     *  touched by a protocol action since the tag was planted). */
    std::uint64_t genRejections = 0;
    /** Event-queue schedules bypassed entirely (access retired with
     *  no event allocated; runtime-driven runs only). */
    std::uint64_t eventBypasses = 0;

    /** Total fast-path retirements. */
    std::uint64_t hits() const { return loadHits + storeHits; }

    /** Fraction of fast probes that retired on the fast path. */
    double
    hitRate() const
    {
        return attempts == 0 ? 0.0
            : static_cast<double>(hits()) /
                static_cast<double>(attempts);
    }
};

} // namespace hmtx::sim

#endif // HMTX_SIM_STATS_HH
