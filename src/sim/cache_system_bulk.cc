/**
 * @file
 * CacheSystem bulk half: the whole-machine protocol operations —
 * group commit, global abort, VID reset, and the region-boundary
 * flush. Per-line transitions come from the pure engine in
 * core/protocol.hh; broadcast costs from the Interconnect.
 */

#include <algorithm>
#include <stdexcept>
#include <string>

#include "sim/cache_system.hh"

namespace hmtx::sim
{

Cycles
CacheSystem::commit(Vid vid)
{
    if (vid != lcVid_ + 1) {
        throw std::logic_error(
            "commitMTX: commits must occur consecutively (§4.7); "
            "expected VID " + std::to_string(lcVid_ + 1) + ", got " +
            std::to_string(vid));
    }
    lcVid_ = vid;
    // Fast-path tags survive commits: a tag only ever matches a probe
    // with its own (VID, direction), VIDs advance monotonically until
    // vidReset, and fastProbe rejects VIDs at or below the watermark —
    // so tags whose reconcile the commit un-no-ops are unreachable,
    // and for live VIDs the fold is deferred exactly as lazy commit
    // already defers it (every slow access reconciles first).
    ++stats_.commits;
    ++stats_.committedTxs;
    trace_.event(TraceCommit, eq_.curTick(), "commit VID %u", vid);

    auto it = rw_.find(vid);
    if (it != rw_.end()) {
        std::size_t rl = it->second.reads.size();
        std::size_t wl = it->second.writes.size();
        std::size_t comb = rl;
        for (Addr w : it->second.writes)
            if (!it->second.reads.count(w))
                ++comb;
        stats_.readSetLines += rl;
        stats_.writeSetLines += wl;
        stats_.combinedSetLines += comb;
        stats_.maxCombinedSetLines =
            std::max<std::uint64_t>(stats_.maxCombinedSetLines, comb);
        rwCached_ = nullptr;
        rw_.erase(it);
    }

    policy_.onCommit(vid);

    Cycles cost =
        net_->post(eq_.curTick(), FabricOp::GroupCommit, 0);
    if (policy_.eagerWalk()) {
        // Naive §4.4 scheme: walk and transition every speculative
        // line now. The per-cache registry is exactly the ORB-like
        // structure the paper assumes locates them [34] — without it
        // a full cache walk would cost one cycle per cache line,
        // >500k cycles per commit with Table 2's 32 MB L2. The walk
        // occupies the memory system, stalling every core's misses.
        WalkScratch agg = shardedWalk(
            OvPhase::None, WalkClass::Spec,
            [&](Line& l, WalkScratch& s) {
                if (isSpec(l.state)) {
                    ++s.n[0];
                    reconcile(l);
                }
            },
            [](Line&, LineData&, WalkScratch&) {});
        cost += agg.n[0] * cfg_.eagerPerLineCycles;
        net_->occupy(eq_.curTick(), cost);
    }
    stats_.commitProcessingCycles += cost;
    maybeCrossCheck();
    return cost;
}

Cycles
CacheSystem::abortAll()
{
    ++abortGen_;
    // No fastGen_ bump: the walk below syncLines (and thereby
    // fp-clears) every speculative line, rwGen_ retires all rw marks,
    // and committed lines — the only other tag carriers — are exactly
    // the lines an abort leaves untouched.
    ++stats_.aborts;
    WalkScratch agg = shardedWalk(
        OvPhase::AfterLines, WalkClass::Spec,
        [&](Line& l, WalkScratch& s) {
            if (!isSpec(l.state))
                return; // dirty committed lines survive aborts
            ++s.n[0];
            applyView(l, abortVersion(viewOf(l), lcVid_));
            syncLine(l);
        },
        [&](Line& l, LineData& d, WalkScratch& s) {
            LineTransition tr =
                commitLine(l.state, l.tag, lcVid_, l.dirty);
            tr = abortLine(tr.state, tr.tag, lcVid_, l.dirty);
            if (tr.state != State::Invalid && l.dirty) {
                // Committed data survives the abort: fold it back
                // into memory rather than keeping a nonspec entry
                // spilled.
                mem_.writeLine(l.base, d);
                ++s.n[1];
            }
            l.state = State::Invalid;
            l.tag = {};
        });
    const std::uint64_t touched = agg.n[0];
    stats_.writebacks += agg.n[1];
    rwCached_ = nullptr;
    rw_.clear();
    ++rwGen_; // stale Line rw marks must not suppress future inserts
    shadow_.clear();
    policy_.onAbort();
    Cycles cost =
        net_->post(eq_.curTick(), FabricOp::GroupAbort, 0);
    if (policy_.eagerWalk()) {
        cost += touched * cfg_.eagerPerLineCycles;
        net_->occupy(eq_.curTick(), cost);
    }
    stats_.commitProcessingCycles += cost;
    maybeCrossCheck();
    return cost;
}

Cycles
CacheSystem::vidReset()
{
    // Check the precondition *before* the destructive walk below: the
    // walk folds versions and rewrites memory, so throwing after it
    // would leave the machine reset in all but name — exactly the
    // stale-tag hazard §4.6 warns about.
    ++fastGen_; // VID recycling / bulk rewrite: retire all fast tags
    if (!rw_.empty()) {
        throw std::logic_error(
            "vidReset with outstanding uncommitted transactions");
    }
    WalkScratch agg = shardedWalk(
        OvPhase::BeforeLines, WalkClass::Spec,
        [&](Line& l, WalkScratch& s) {
            // Spec walk: plain dirty committed lines stay cached and
            // dirty across the reset (reconcile would be a no-op on
            // them), so only speculative lines need visiting.
            reconcile(l);
            if (isSpec(l.state)) {
                applyView(l, resetVersion(viewOf(l)));
                syncLine(l);
                ++s.n[0];
            }
        },
        [&](Line& l, LineData& d, WalkScratch& s) {
            reconcile(l);
            if (l.state == State::Invalid)
                return;
            // All transactions committed (precondition): spilled
            // data is committed; fold dirty survivors back into
            // memory.
            if (l.dirty && !isSpecSuperseded(l.state)) {
                mem_.writeLine(l.base, d);
                ++s.n[1];
            }
            l.state = State::Invalid;
        });
    stats_.writebacks += agg.n[1];
    lcVid_ = kNonSpecVid;
    policy_.onVidReset();
    ++rwGen_; // VIDs recycle after the reset; invalidate rw marks
    shadow_.clear();
    ++stats_.vidResets;
    trace_.event(TraceCommit, eq_.curTick(), "VID reset");
    maybeCrossCheck();
    return net_->post(eq_.curTick(), FabricOp::VidReset, 0);
}

void
CacheSystem::flushDirtyToMemory()
{
    ++fastGen_; // VID recycling / bulk rewrite: retire all fast tags
    WalkScratch agg = shardedWalk(
        OvPhase::BeforeLines, WalkClass::SpecAndDirty,
        [&](Line& l, WalkScratch& s) {
            // Union walk: a spec+dirty line appears via both class
            // registries; the second visit sees it already reconciled
            // and written back (clean), so the body is idempotent.
            reconcile(l);
            // Reconciliation may retire a superseded version to
            // Invalid; its stale data must not reach memory.
            if (l.state == State::Invalid)
                return;
            if (!isSpec(l.state) && l.dirty) {
                mem_.writeLine(l.base, dataOf(l));
                l.dirty = false;
                ++s.n[0];
                l.state = l.state == State::Modified
                    ? State::Exclusive
                    : State::Shared;
                syncLine(l);
            }
        },
        [&](Line& l, LineData& d, WalkScratch& s) {
            reconcile(l);
            if (l.state == State::Invalid)
                return;
            if (!isSpec(l.state)) {
                // The spilled version retired: its data is committed.
                if (l.dirty) {
                    mem_.writeLine(l.base, d);
                    ++s.n[0];
                }
                l.state = State::Invalid;
            }
        });
    stats_.writebacks += agg.n[0];
    maybeCrossCheck();
}

} // namespace hmtx::sim
