/**
 * @file
 * The coherence interconnect seam (§8): every way the cache system
 * touches the fabric — serializing a transaction, posting one-way
 * traffic, broadcasting group commit/abort, transferring a line from
 * a remote owner — goes through this interface. The HMTX version
 * rules are fabric-independent; implementations own only timing and
 * occupancy. `SnoopBus` models the paper's evaluated single bus,
 * `DirectoryFabric` the §8 address-interleaved directory banks; a
 * future sharded/NUMA fabric drops in behind the same seam.
 */

#ifndef HMTX_SIM_INTERCONNECT_HH
#define HMTX_SIM_INTERCONNECT_HH

#include <memory>

#include "core/types.hh"
#include "sim/config.hh"
#include "sim/stats.hh"

namespace hmtx::sim
{

/**
 * One-way fabric operations: traffic the requester does not stall
 * for. Broadcast-class operations (group commit/abort, VID reset)
 * reach every cache; SLAs target one line's home; store-mark
 * aggregation collects the distributed read marks of a line's S-S
 * copies during an already-acquired store transaction.
 */
enum class FabricOp : std::uint8_t
{
    /** Speculative load acknowledgment for one line (§5.1). */
    Sla,
    /** Group-commit notification, all caches (§4.4). */
    GroupCommit,
    /** Group-abort notification, all caches (§4.4). */
    GroupAbort,
    /** VID-reset notification, all caches (§4.6). */
    VidReset,
    /**
     * Store-classification aggregation sweep over a line's
     * latest-version S-S copies (§4.3). Free on both modeled fabrics
     * (the preceding acquire() already holds the line's ordering
     * point); a sharded fabric would charge cross-shard collection
     * here.
     */
    StoreAggregate,
};

/**
 * A protocol-decision point where the fabric may legally reorder
 * concurrent message deliveries (DESIGN.md §14). Point-to-point
 * fabrics guarantee no global arrival order: when a message reaches
 * an ordering point (a directory bank) that is already busy, the
 * network is free to queue it behind the in-flight work *or* let it
 * overtake on another virtual channel. The default (no chooser
 * installed) is deterministic FIFO queueing — exactly the pre-hook
 * behaviour. The model checker installs a chooser to enumerate the
 * reordering freedom as explicit decision points; because delivery
 * order is timing-only, every choice must leave the architectural
 * outcome untouched, and the differential runner fails loudly if it
 * does not.
 */
class DeliveryChooser
{
  public:
    virtual ~DeliveryChooser();

    /**
     * Picks one of @p n legal delivery orders for the message at
     * @p la's ordering point (0 = FIFO default, the only order the
     * fabric takes when no chooser is installed). Out-of-range
     * returns are clamped to n - 1.
     */
    virtual unsigned choose(Addr la, unsigned n) = 0;
};

/**
 * Timing/occupancy model of one coherence fabric.
 *
 * The contract mirrors how CacheSystem uses the fabric:
 *
 *  - acquire() serializes one coherence transaction for a line at the
 *    fabric's ordering point and returns the cycles the *requester*
 *    stalls (queueing + transaction time). Implementations advance
 *    their internal occupancy so concurrent traffic serializes.
 *  - post() charges occupancy for one-way traffic without stalling
 *    the requester, and returns the operation's base processing cost
 *    (nonzero only for the broadcast class; commit()/abortAll()
 *    charge it to their reported cost).
 *  - transferLatency() is the latency of moving a line from a remote
 *    owner to the requester once the responder is known.
 *  - occupy() blocks the fabric for a bulk protocol walk (the naive
 *    §4.4 eager commit/abort, which stalls every core's misses on a
 *    bus; a directory has no global medium to block).
 *
 * Implementations bump SysStats fabric counters (busTxns,
 * dirLookups); they never touch line state.
 */
class Interconnect
{
  public:
    virtual ~Interconnect();

    /** Fabric name for reports ("snoop-bus", "directory"). */
    virtual const char* name() const = 0;

    /**
     * Serializes one coherence transaction for @p la starting at
     * @p now; returns the requester's stall cycles.
     */
    virtual Cycles acquire(Tick now, Addr la) = 0;

    /**
     * Charges one-way occupancy for @p op on @p la's ordering point
     * at @p now; returns the operation's base processing cost.
     */
    virtual Cycles post(Tick now, FabricOp op, Addr la) = 0;

    /** Remote-owner to requester transfer latency. */
    virtual Cycles transferLatency() const = 0;

    /**
     * Minimum core-to-core latency of this fabric: the fewest cycles
     * any coherence action by one core needs before another core can
     * observe it (bus arbitration delay / one directory hop). The
     * parallel engine (DESIGN.md §11) uses it as the accounting window
     * for its barrier cadence and sim.parallel.* telemetry.
     */
    virtual Cycles minC2CLatency() const = 0;

    /** Occupies the fabric for @p cycles of bulk protocol walk. */
    virtual void occupy(Tick now, Cycles cycles) = 0;

    /**
     * Installs (or clears, with nullptr) the delivery-order chooser
     * consulted at this fabric's reordering decision points. Fabrics
     * with a total message order (the snoopy bus) have no such points
     * and never consult it. @p c must outlive the fabric or be
     * cleared first.
     */
    void setDeliveryChooser(DeliveryChooser* c) { chooser_ = c; }

  protected:
    /** Resolves one delivery decision: FIFO without a chooser. */
    unsigned
    chooseDelivery(Addr la, unsigned n)
    {
        if (chooser_ == nullptr || n < 2)
            return 0;
        const unsigned pick = chooser_->choose(la, n);
        return pick < n ? pick : n - 1;
    }

  private:
    DeliveryChooser* chooser_ = nullptr;
};

/**
 * Builds the interconnect selected by @p cfg.fabric. @p stats must
 * outlive the returned object (CacheSystem owns both).
 */
std::unique_ptr<Interconnect> makeInterconnect(const MachineConfig& cfg,
                                               SysStats& stats);

} // namespace hmtx::sim

#endif // HMTX_SIM_INTERCONNECT_HH
