/**
 * @file
 * CacheSystem construction, index maintenance, and self-checks. The
 * lookup, access, and bulk-operation halves live in the sibling
 * cache_system_*.cc translation units.
 */

#include "sim/cache_system.hh"

#include <algorithm>
#include <stdexcept>
#include <string>

namespace hmtx::sim
{

CacheSystem::CacheSystem(EventQueue& eq, const MachineConfig& cfg)
    : eq_(eq), cfg_(cfg), mem_(cfg.shardBanks()), cmp_(cfg.vidBits),
      policy_(cfg.txPolicy()), trace_(cfg.traceFlags)
{
    cfg_.validate();
    const unsigned banks = cfg.shardBanks();
    bankMask_ = banks - 1;
    // Worker threads only pay off with real banks, host parallelism,
    // and no explicit opt-out; tests force them on via shardThreads.
    const bool threaded = banks > 1 &&
        (cfg.shardThreads >= 2 ||
         (cfg.shardThreads == 0 &&
          std::thread::hardware_concurrency() > 1));
    shard_ = std::make_unique<ShardEngine>(banks, threaded);
    overflow_.setBanks(banks);

    caches_.reserve(cfg.numCores + 1);
    for (CoreId c = 0; c < cfg.numCores; ++c) {
        caches_.emplace_back("L1." + std::to_string(c), cfg.l1Sets(),
                             cfg.l1Assoc, c);
    }
    caches_.emplace_back("L2", cfg.l2Sets(), cfg.l2Assoc,
                         cfg.numCores);
    for (auto& c : caches_)
        c.setBanks(banks);
    // The presence mask is one bit per cache; fall back to full snoops
    // beyond 64 caches (far above any modeled configuration).
    filterEnabled_ = caches_.size() <= 64;
    presence_.resize(banks);
    if (filterEnabled_) {
        // Pre-size for the L1 working sets so steady-state traffic
        // does not rehash; larger footprints grow amortized.
        const std::size_t l1Slots = std::size_t{cfg.numCores} *
            cfg.l1Sets() * cfg.l1Assoc;
        const std::size_t total = std::min<std::size_t>(
            std::max<std::size_t>(l1Slots, 1024), 1u << 16);
        for (auto& p : presence_)
            p.reserve(std::max<std::size_t>(total / banks, 64));
    }
    net_ = makeInterconnect(cfg_, stats_);
    // Fast path only under the plain HMTX policies: best-effort and
    // limited-set interpose per-access policy state (fallback lock,
    // K bound) the tag cannot vouch for, and copy-on-read makes every
    // new-VID read allocate (never a pure hit).
    fastEnabled_ = cfg_.fastPath && !cfg_.copyOnRead &&
        (cfg_.txMode == TxMode::LazyHmtx ||
         cfg_.txMode == TxMode::EagerHmtx);
}

// --- index maintenance --------------------------------------------------

void
CacheSystem::presenceAdd(std::uint32_t ci, Addr la)
{
    presenceBank(la)[la] |= std::uint64_t{1} << ci;
}

void
CacheSystem::presenceRemove(std::uint32_t ci, Addr la)
{
    auto& bank = presenceBank(la);
    auto it = bank.find(la);
    if (it == bank.end())
        return; // unreachable while bookkeeping is sound
    // The mask carries no per-cache counts: rescan the (tiny) owning
    // set to learn whether another version of la keeps the bit alive.
    // The caller already cleared the departing line's `present` flag.
    for (const auto& l : caches_[ci].set(la).lines)
        if (l.bk.present && l.bk.presentAddr == la)
            return;
    it->second &= ~(std::uint64_t{1} << ci);
    if (it->second == 0)
        bank.erase(it);
}

void
CacheSystem::syncLine(Line& l)
{
    // Every protocol mutation funnels through here; the fast-path tags
    // vouch for the line's exact state, so any such mutation retires
    // them. (Sites that mutate tag/state without calling syncLine
    // carry their own explicit fpClear.)
    fpClear(l);
    const std::uint32_t ci = l.bk.cacheId;
    if (ci == kNoCacheId)
        return; // overflow-table entries and snapshots are unindexed
    const bool valid = l.state != State::Invalid;
    if (filterEnabled_) {
        if (l.bk.present && (!valid || l.bk.presentAddr != l.base)) {
            // Clear the flag before the rescan in presenceRemove so
            // this line no longer counts for its old address.
            l.bk.present = false;
            presenceRemove(ci, l.bk.presentAddr);
        }
        if (valid && !l.bk.present) {
            presenceAdd(ci, l.base);
            l.bk.present = true;
            l.bk.presentAddr = l.base;
        }
    }
    if (valid && (isSpec(l.state) || l.dirty))
        caches_[ci].noteInteresting(l);
}

void
CacheSystem::maybeCrossCheck()
{
    if (cfg_.indexCrossCheck)
        verifyIndexes();
}

// --- validation-set accessors -------------------------------------------

std::vector<Addr>
CacheSystem::readSetOf(Vid vid) const
{
    auto it = rw_.find(vid);
    if (it == rw_.end())
        return {};
    std::vector<Addr> out(it->second.reads.begin(),
                          it->second.reads.end());
    std::sort(out.begin(), out.end());
    return out;
}

std::vector<Addr>
CacheSystem::writeSetOf(Vid vid) const
{
    auto it = rw_.find(vid);
    if (it == rw_.end())
        return {};
    std::vector<Addr> out(it->second.writes.begin(),
                          it->second.writes.end());
    std::sort(out.begin(), out.end());
    return out;
}

// --- self-checks --------------------------------------------------------

void
CacheSystem::checkInvariants()
{
    // Police the index structures first: every existing call site of
    // this self-check also cross-checks the presence filter and the
    // registries against a full scan, for free.
    verifyIndexes();

    // Collect every cached address. The presence filter already keys
    // on exactly the live addresses; fall back to a full scan when it
    // is disabled.
    std::unordered_set<Addr> addrs;
    if (filterEnabled_) {
        for (const auto& bank : presence_)
            for (const auto& [la, p] : bank)
                addrs.insert(la);
    } else {
        for (auto& c : caches_) {
            c.forEachLine([&](Line& l) {
                if (l.state != State::Invalid)
                    addrs.insert(l.base);
            });
        }
    }
    // Spilled versions are live protocol state too: a responder in the
    // overflow table conflicts with cached versions exactly as if it
    // were still in the L2. The presence filter only tracks caches, so
    // collect their addresses separately (const walk — no lazy
    // reconciliation, this check must stay observation-only).
    overflow_.forEachConst([&](const Line& l, const LineData&) {
        if (l.state != State::Invalid)
            addrs.insert(l.base);
    });
    const Vid maxV = cfg_.maxVid();
    for (Addr la : addrs) {
        // The check judges lines as of the current LC VID, so fold the
        // lazy-commit transitions into *snapshots* — the cached state
        // itself stays untouched (this check is read-only).
        std::vector<Line> live;
        for (auto& c : caches_) {
            for (auto& l : c.set(la).lines) {
                if (l.state == State::Invalid || l.base != la)
                    continue;
                Line s = l;
                applyReconcile(s);
                if (s.state != State::Invalid)
                    live.push_back(s);
            }
        }
        overflow_.forEachConst([&](const Line& l, const LineData&) {
            if (l.state == State::Invalid || l.base != la)
                return;
            Line s = l;
            applyReconcile(s);
            if (s.state != State::Invalid)
                live.push_back(s);
        });
        bool anySpec = false, anyNonSpec = false, responder = false;
        for (const Line& s : live) {
            (isSpec(s.state) ? anySpec : anyNonSpec) = true;
            responder = responder || isSpecResponder(s.state);
        }
        // Only responder-class speculative versions conflict with
        // non-speculative copies; S-S copies of committed data
        // legally linger until their readers commit.
        if (anySpec && anyNonSpec && responder) {
            throw std::logic_error(
                "protocol invariant violated: speculative and "
                "non-speculative versions coexist");
        }
        for (Vid a = 0; a <= maxV; ++a) {
            Vid mods[2];
            int n = 0;
            for (const Line& s : live) {
                if (!isSpecResponder(s.state))
                    continue;
                if (versionHits(s.state, s.tag, a)) {
                    if (n < 2)
                        mods[n] = s.tag.mod;
                    ++n;
                }
            }
            if (n > 1 && mods[0] != mods[1]) {
                throw std::logic_error(
                    "protocol invariant violated: multiple distinct "
                    "responder versions hit one VID");
            }
        }
    }
}

void
CacheSystem::verifyIndexes()
{
    ++idxStats_.crossChecks;
    // Rebuild the expected presence masks from a full scan and check
    // the per-slot bookkeeping along the way.
    std::unordered_map<Addr, std::uint64_t> want;
    for (std::size_t ci = 0; ci < caches_.size(); ++ci) {
        caches_[ci].forEachLine([&](Line& l) {
            if (l.bk.cacheId != ci) {
                throw std::logic_error(
                    "index check: slot carries wrong cache id in " +
                    caches_[ci].name());
            }
            if (l.state == State::Invalid) {
                if (filterEnabled_ && l.bk.present) {
                    throw std::logic_error(
                        "index check: invalid line still counted "
                        "present in " + caches_[ci].name());
                }
                return;
            }
            if (filterEnabled_ &&
                (!l.bk.present || l.bk.presentAddr != l.base)) {
                throw std::logic_error(
                    "index check: valid line not counted under its "
                    "address in " + caches_[ci].name());
            }
            if (Cache::specInteresting(l) && !l.bk.onSpecReg) {
                throw std::logic_error(
                    "index check: spec line missing from the spec "
                    "registry of " + caches_[ci].name());
            }
            if (Cache::dirtyInteresting(l) && !l.bk.onDirtyReg) {
                throw std::logic_error(
                    "index check: dirty line missing from the dirty "
                    "registry of " + caches_[ci].name());
            }
            if (filterEnabled_)
                want[l.base] |= std::uint64_t{1} << ci;
        });
    }
    if (filterEnabled_) {
        std::size_t tracked = 0;
        for (const auto& bank : presence_)
            tracked += bank.size();
        if (want.size() != tracked) {
            throw std::logic_error(
                "index check: presence filter tracks " +
                std::to_string(tracked) + " addresses, scan found " +
                std::to_string(want.size()));
        }
        for (const auto& [la, mask] : want) {
            auto& bank = presenceBank(la);
            auto it = bank.find(la);
            if (it == bank.end()) {
                throw std::logic_error(
                    "index check: cached address missing from the "
                    "presence filter");
            }
            if (it->second != mask) {
                throw std::logic_error(
                    "index check: presence mask mismatch");
            }
        }
    }
    // Registries may hold stale (no longer in-class) entries, but
    // every entry must be flagged and unique within its class so lazy
    // purging stays linear. Entries must also sit on the bank owning
    // their slot's set, or concurrent bank walks would race.
    for (auto& c : caches_) {
        std::unordered_set<const Line*> seenSpec, seenDirty;
        c.forEachSpecRegistryEntry([&](const Line* l) {
            if (!l->bk.onSpecReg) {
                throw std::logic_error(
                    "index check: unflagged spec-registry entry in " +
                    c.name());
            }
            if (!seenSpec.insert(l).second) {
                throw std::logic_error(
                    "index check: duplicate spec-registry entry in " +
                    c.name());
            }
        });
        c.forEachDirtyRegistryEntry([&](const Line* l) {
            if (!l->bk.onDirtyReg) {
                throw std::logic_error(
                    "index check: unflagged dirty-registry entry "
                    "in " + c.name());
            }
            if (!seenDirty.insert(l).second) {
                throw std::logic_error(
                    "index check: duplicate dirty-registry entry "
                    "in " + c.name());
            }
        });
    }
}

} // namespace hmtx::sim
