#include "sim/cache_system.hh"

#include <algorithm>
#include <bit>
#include <cassert>
#include <stdexcept>
#include <string>

namespace hmtx::sim
{

CacheSystem::CacheSystem(EventQueue& eq, const MachineConfig& cfg)
    : eq_(eq), cfg_(cfg), cmp_(cfg.vidBits), trace_(cfg.traceFlags)
{
    caches_.reserve(cfg.numCores + 1);
    for (CoreId c = 0; c < cfg.numCores; ++c) {
        caches_.emplace_back("L1." + std::to_string(c), cfg.l1Sets(),
                             cfg.l1Assoc, c);
    }
    caches_.emplace_back("L2", cfg.l2Sets(), cfg.l2Assoc,
                         cfg.numCores);
    // The presence mask is one bit per cache; fall back to full snoops
    // beyond 64 caches (far above any modeled configuration).
    filterEnabled_ = caches_.size() <= 64;
    if (filterEnabled_) {
        // Pre-size for the L1 working sets so steady-state traffic
        // does not rehash; larger footprints grow amortized.
        const std::size_t l1Slots = std::size_t{cfg.numCores} *
            cfg.l1Sets() * cfg.l1Assoc;
        presence_.reserve(std::min<std::size_t>(
            std::max<std::size_t>(l1Slots, 1024), 1u << 16));
    }
    bankFree_.resize(cfg.dirBanks == 0 ? 1 : cfg.dirBanks, 0);
}

// --- index maintenance --------------------------------------------------

void
CacheSystem::presenceAdd(std::uint32_t ci, Addr la)
{
    Presence& p = presence_[la];
    if (p.count.empty())
        p.count.resize(caches_.size(), 0);
    if (p.count[ci]++ == 0)
        p.mask |= std::uint64_t{1} << ci;
}

void
CacheSystem::presenceRemove(std::uint32_t ci, Addr la)
{
    auto it = presence_.find(la);
    if (it == presence_.end())
        return; // unreachable while bookkeeping is sound
    Presence& p = it->second;
    if (--p.count[ci] == 0) {
        p.mask &= ~(std::uint64_t{1} << ci);
        // count > 0 iff the bit is set, so a zero mask means no cache
        // holds the address at all.
        if (p.mask == 0)
            presence_.erase(it);
    }
}

void
CacheSystem::syncLine(Line& l)
{
    const std::uint32_t ci = l.bk.cacheId;
    if (ci == kNoCacheId)
        return; // overflow-table entries and snapshots are unindexed
    const bool valid = l.state != State::Invalid;
    if (filterEnabled_) {
        if (l.bk.present && (!valid || l.bk.presentAddr != l.base)) {
            presenceRemove(ci, l.bk.presentAddr);
            l.bk.present = false;
        }
        if (valid && !l.bk.present) {
            presenceAdd(ci, l.base);
            l.bk.present = true;
            l.bk.presentAddr = l.base;
        }
    }
    if (valid && (isSpec(l.state) || l.dirty))
        caches_[ci].noteInteresting(l);
}

template <typename Fn>
void
CacheSystem::forEachSnoopTarget(Addr la, Fn&& fn)
{
    if (!filterEnabled_ || cfg_.forceFullScan) {
        for (std::size_t ci = 0; ci < caches_.size(); ++ci)
            fn(ci);
        return;
    }
    auto it = presence_.find(la);
    // Snapshot the holder mask: fn may invalidate lines and thereby
    // shrink (or erase) the filter entry while we iterate.
    const std::uint64_t mask =
        it == presence_.end() ? 0 : it->second.mask;
    const auto holders =
        static_cast<std::uint64_t>(std::popcount(mask));
    idxStats_.snoopsVisited += holders;
    idxStats_.snoopsFiltered += caches_.size() - holders;
    for (std::uint64_t m = mask; m != 0; m &= m - 1)
        fn(static_cast<std::size_t>(std::countr_zero(m)));
}

template <typename Fn>
void
CacheSystem::forEachCandidateLine(Fn&& fn)
{
    if (cfg_.forceFullScan) {
        ++idxStats_.fullScanWalks;
        for (auto& c : caches_) {
            c.forEachLine([&](Line& l) {
                if (Cache::interesting(l))
                    fn(l);
            });
        }
        return;
    }
    ++idxStats_.registryWalks;
    for (auto& c : caches_) {
        c.forEachInteresting([&](Line& l) {
            ++idxStats_.registryWalkLines;
            fn(l);
        });
    }
}

void
CacheSystem::maybeCrossCheck()
{
    if (cfg_.indexCrossCheck)
        verifyIndexes();
}

// --- lookup -----------------------------------------------------------

void
CacheSystem::applyReconcile(Line& l) const
{
    if (l.state == State::Invalid || !isSpec(l.state))
        return;
    if (l.state == State::SpecShared && l.latestCopy) {
        // Latest-version copy: highVID is a local read mark, not a
        // coverage bound. The copy must never turn into a plain
        // non-speculative line (that would create a second apparent
        // owner of the version); it lives until superseded,
        // invalidated by a write, evicted, aborted or VID-reset.
        if (l.tag.mod != kNonSpecVid && l.tag.mod <= lcVid_)
            l.tag.mod = kNonSpecVid;
        if (l.tag.high <= lcVid_)
            l.highFromWrongPath = false;
        return;
    }
    LineTransition t = commitLine(l.state, l.tag, lcVid_, l.dirty);
    if (t.state != l.state || !(t.tag == l.tag)) {
        // A retiring owner may have handed out S-S copies; it must
        // land in a shareable state or a later silent write to an
        // M/E line would leave those copies stale.
        if (l.mayHaveSharers) {
            if (t.state == State::Modified)
                t.state = State::Owned;
            else if (t.state == State::Exclusive)
                t.state = State::Shared;
        }
        l.state = t.state;
        l.tag = t.tag;
        if (!isSpec(l.state)) {
            l.mayHaveSharers = false;
            l.highFromWrongPath = false;
            l.latestCopy = false;
            if (l.state == State::Invalid)
                l.dirty = false;
        }
    }
}

void
CacheSystem::reconcile(Line& l)
{
    const State olds = l.state;
    const bool oldDirty = l.dirty;
    applyReconcile(l);
    if (l.state != olds || l.dirty != oldDirty)
        syncLine(l);
}

void
CacheSystem::reconcileAddr(Cache& c, Addr la)
{
    for (auto& l : c.set(la))
        if (l.state != State::Invalid && l.base == la)
            reconcile(l);
}

bool
CacheSystem::hits(const Line& l, Addr la, Vid a)
{
    if (l.state == State::Invalid || l.base != la)
        return false;
    // Count the VID comparisons the hardware would perform (§4.5).
    if (isSpec(l.state)) {
        cmp_.compare(a, l.tag.mod);
        if (isSpecSuperseded(l.state))
            cmp_.compare(a, l.tag.high);
    }
    if (l.state == State::SpecShared && l.latestCopy)
        return a >= l.tag.mod; // serves all later VIDs (§4.1)
    return versionHits(l.state, l.tag, a);
}

Line*
CacheSystem::findLocal(Cache& c, Addr la, Vid a, bool forStore)
{
    // Reconcile and probe in one pass over the set: lazy-commit
    // transitions are strictly per-line, so interleaving them with the
    // probes is equivalent to reconcileAddr() followed by a second
    // scan, at roughly half the cost.
    Line* hit = nullptr;
    for (auto& l : c.set(la)) {
        if (l.state != State::Invalid && l.base == la)
            reconcile(l);
        if (hit)
            continue;
        if (forStore && l.state == State::SpecShared)
            continue;
        if (hits(l, la, a))
            hit = &l;
    }
    return hit;
}

CacheSystem::RemoteHit
CacheSystem::findRemote(CoreId self, Addr la, Vid a, bool forStore)
{
    (void)forStore;
    RemoteHit rh;
    forEachSnoopTarget(la, [&](std::size_t ci) {
        Cache& c = caches_[ci];
        const bool isSelf = (ci == self);
        for (auto& l : c.set(la)) {
            if (l.state == State::Invalid || l.base != la)
                continue;
            reconcile(l);
            if (l.state == State::Invalid)
                continue;
            // §5.4: speculative versions that miss on VID comparison
            // assert that the line was speculatively modified.
            if (isSpecResponder(l.state) && l.tag.mod > a)
                rh.assertModified = true;
            if (isSelf)
                continue; // the local L1 was already searched
            // S-S copies never respond to snoops (§4.1).
            if (l.state == State::SpecShared)
                continue;
            if (!rh.line && hits(l, la, a)) {
                rh.line = &l;
                rh.cache = &c;
            }
        }
    });
    if (cfg_.unboundedSpecSets && !overflow_.empty()) {
        // A miss (or assert) may be resolved by a spilled version:
        // the hardware walk engine searches the overflow table
        // (§8 / [27]).
        if (auto* vs = overflow_.versionsOf(la)) {
            for (auto& l : *vs)
                reconcile(l);
            std::erase_if(*vs, [](const Line& l) {
                return l.state == State::Invalid;
            });
            for (std::size_t i = 0; i < vs->size(); ++i) {
                Line& l = (*vs)[i];
                if (isSpecResponder(l.state) && l.tag.mod > a)
                    rh.assertModified = true;
                if (!rh.line && hits(l, la, a)) {
                    // Refill the version into the requester's L1 and
                    // continue as a normal remote hit.
                    Line copy = l;
                    overflow_.remove(la, i);
                    rh.extraLatency = OverflowTable::kWalkCycles +
                        cfg_.memLatency;
                    ++stats_.specRefills;
                    Line* slot = allocate(caches_[self], la);
                    if (!slot)
                        return rh; // capacity abort during refill
                    *slot = copy;
                    syncLine(*slot);
                    rh.line = slot;
                    rh.cache = &caches_[self];
                    break;
                }
            }
        }
    }
    return rh;
}

// --- allocation & eviction --------------------------------------------

int
CacheSystem::victimClass(const Line& l) const
{
    switch (l.state) {
      case State::Invalid:
        return 0;
      case State::SpecShared:
        // Superseded copies are nearly dead; latest-version copies
        // are live working set (shared read-only data) and compete
        // via LRU like any other resident line.
        return l.latestCopy ? 2 : 1;
      case State::Shared:
      case State::Exclusive:
      case State::Modified:
      case State::Owned:
        // Plain LRU among non-speculative lines: preferring clean
        // victims would evict the current (still-clean) working set
        // in favour of stale dirty data.
        return 2;
      case State::SpecOwned:
        // §5.4: prefer overflowing non-speculative S-O versions.
        return l.tag.mod == kNonSpecVid ? 3 : 4;
      case State::SpecExclusive:
      case State::SpecModified:
        return 4;
    }
    return 5;
}

bool
CacheSystem::evict(Cache& c, Line& victim)
{
    reconcile(victim);
    if (victim.state == State::Invalid)
        return true;

    const bool isL2 = (&c == &caches_.back());
    const Addr la = victim.base;

    auto drop = [&victim, this] {
        victim.state = State::Invalid;
        syncLine(victim);
    };

    switch (victim.state) {
      case State::SpecShared:
        // Droppable copies: the owner version still responds.
        drop();
        return true;
      case State::Shared:
      case State::Exclusive:
        if (isL2) {
            drop(); // clean: memory already has the data
            return true;
        }
        break; // L1 victims spill into the shared L2
      case State::Modified:
      case State::Owned:
        if (isL2) {
            mem_.writeLine(la, victim.data);
            ++stats_.writebacks;
            drop();
            return true;
        }
        break; // move to L2
      case State::SpecOwned:
        if (victim.tag.mod == kNonSpecVid) {
            // §5.4: the pristine pre-speculation data is committed
            // state and may overflow to memory (from any level — it
            // must not displace S-M/S-E lines, whose loss aborts); an
            // S-M line's snoop assertion recovers it later.
            if (victim.dirty) {
                mem_.writeLine(la, victim.data);
                ++stats_.writebacks;
            }
            ++stats_.soOverflowWritebacks;
            drop();
            return true;
        }
        if (isL2) {
            if (cfg_.unboundedSpecSets) {
                overflow_.spill(victim);
                ++stats_.specSpills;
                drop();
                return true;
            }
            ++stats_.capacityAborts;
            triggerAbort(&victim);
            return false;
        }
        break; // move to L2
      case State::SpecExclusive:
      case State::SpecModified:
        if (isL2) {
            if (cfg_.unboundedSpecSets) {
                // §8 / [27]: spill the version into the
                // memory-resident overflow table instead of aborting.
                trace_.event(TraceEvict, eq_.curTick(),
                             "spill %s(%u,%u) %#llx",
                             std::string(stateName(victim.state))
                                 .c_str(),
                             victim.tag.mod, victim.tag.high,
                             static_cast<unsigned long long>(la));
                overflow_.spill(victim);
                ++stats_.specSpills;
                drop();
                return true;
            }
            // Speculative state fell out of the last-level cache: the
            // transaction cannot be tracked any more (§5.4).
            ++stats_.capacityAborts;
            triggerAbort(&victim);
            return false;
        }
        break; // move to L2
      case State::Invalid:
        return true;
    }

    // Move the line from an L1 into the shared L2.
    Line copy = victim;
    drop();
    Line* slot = allocate(caches_.back(), la);
    if (!slot)
        return false;
    *slot = copy;
    syncLine(*slot);
    return true;
}

Line*
CacheSystem::allocateOpt(Cache& c, Addr la)
{
    // Best-effort allocation for optional fills (S-S sharer copies,
    // §5.4 refetches): evict only cheap (non-speculative or copy)
    // victims — displacing responder-class speculative state for a
    // refetchable copy would risk capacity aborts.
    Line* slot = c.freeSlot(la);
    if (!slot) {
        auto& s = c.set(la);
        for (auto& l : s)
            reconcile(l);
        slot = c.freeSlot(la);
        if (!slot) {
            Line* victim = nullptr;
            for (auto& l : s) {
                if (victimClass(l) > 2)
                    continue;
                if (!victim || victimClass(l) < victimClass(*victim) ||
                    (victimClass(l) == victimClass(*victim) &&
                     l.lastUse < victim->lastUse)) {
                    victim = &l;
                }
            }
            if (!victim)
                return nullptr;
            std::uint64_t gen = abortGen_;
            if (!evict(c, *victim) || abortGen_ != gen)
                return nullptr;
            slot = victim;
        }
    }
    *slot = Line{};
    slot->base = la;
    slot->lastUse = eq_.curTick();
    return slot;
}

Line*
CacheSystem::allocate(Cache& c, Addr la)
{
    Line* slot = c.freeSlot(la);
    if (!slot) {
        auto& s = c.set(la);
        for (auto& l : s)
            reconcile(l);
        slot = c.freeSlot(la);
        if (!slot) {
            // Choose the cheapest victim (lowest class, then LRU).
            Line* victim = &s.front();
            for (auto& l : s) {
                int vc = victimClass(l);
                int bc = victimClass(*victim);
                if (vc < bc ||
                    (vc == bc && l.lastUse < victim->lastUse)) {
                    victim = &l;
                }
            }
            std::uint64_t gen = abortGen_;
            if (!evict(c, *victim) || abortGen_ != gen)
                return nullptr;
            slot = victim;
        }
    }
    *slot = Line{};
    slot->base = la;
    slot->lastUse = eq_.curTick();
    return slot;
}

// --- protocol actions ---------------------------------------------------

void
CacheSystem::applyReadMark(CoreId core, Line& l, Vid vid, AccessResult& r)
{
    (void)core;
    if (isSpecResponder(l.state)) {
        if (vid > l.tag.high) {
            r.needSla = true;
            l.tag.high = vid;
            l.highFromWrongPath = false;
        }
        return;
    }
    if (l.state == State::SpecShared)
        return; // owner has already logged a VID >= this one
    // First speculative access to a non-speculative line: gain
    // writable access (§4.2), then transition to a speculative state.
    if (l.state == State::Shared || l.state == State::Owned) {
        busAcquire(r, l.base);
        l.dirty = l.dirty || anyNonSpecDirty(l.base, &l);
        invalidateNonSpecPeers(l.base, &l);
    }
    l.state = l.dirty ? State::SpecModified : State::SpecExclusive;
    l.tag = {kNonSpecVid, vid};
    syncLine(l);
    r.needSla = true;
}

void
CacheSystem::fixPeersForNewVersion(Addr la, const Line* owner, Vid y)
{
    forEachSnoopTarget(la, [&](std::size_t ci) {
        for (auto& l : caches_[ci].set(la)) {
            if (&l == owner || l.state == State::Invalid || l.base != la)
                continue;
            reconcile(l);
            if (l.state == State::Invalid)
                continue;
            if (!isSpec(l.state)) {
                // Non-speculative sharers of the pristine version stay
                // usable for VIDs below the new version. They become
                // droppable copies; the S-O owner carries dirtiness.
                l.state = State::SpecShared;
                l.tag = {kNonSpecVid, y};
                l.dirty = false;
                syncLine(l);
            } else if (l.state == State::SpecShared && l.latestCopy) {
                // The version this copy mirrors is now superseded at
                // VID y: the copy keeps serving VIDs below y only.
                l.latestCopy = false;
                if (y <= l.tag.mod)
                    l.state = State::Invalid;
                else
                    l.tag.high = y;
                syncLine(l);
            } else if (l.state == State::SpecShared &&
                       !l.latestCopy && l.tag.high > y) {
                if (y <= l.tag.mod)
                    l.state = State::Invalid;
                else
                    l.tag.high = y;
                syncLine(l);
            }
        }
    });
}

void
CacheSystem::invalidatePeerSpecShared(Addr la, const Line* keep, Vid mod)
{
    forEachSnoopTarget(la, [&](std::size_t ci) {
        for (auto& l : caches_[ci].set(la)) {
            if (&l == keep || l.state != State::SpecShared ||
                l.base != la) {
                continue;
            }
            if (l.tag.mod == mod || l.tag.high > mod) {
                l.state = State::Invalid;
                syncLine(l);
            }
        }
    });
}

bool
CacheSystem::anyNonSpecDirty(Addr la, const Line* except)
{
    bool dirty = false;
    forEachSnoopTarget(la, [&](std::size_t ci) {
        if (dirty)
            return;
        for (auto& l : caches_[ci].set(la)) {
            if (&l == except || l.state == State::Invalid ||
                l.base != la) {
                continue;
            }
            if (!isSpec(l.state) && l.dirty) {
                dirty = true;
                return;
            }
        }
    });
    return dirty;
}

void
CacheSystem::invalidateNonSpecPeers(Addr la, const Line* keep)
{
    forEachSnoopTarget(la, [&](std::size_t ci) {
        for (auto& l : caches_[ci].set(la)) {
            if (&l == keep || l.state == State::Invalid || l.base != la)
                continue;
            if (!isSpec(l.state)) {
                l.state = State::Invalid;
                syncLine(l);
            } else if (l.state == State::SpecShared) {
                // Copies are always refetchable from the owner (or
                // memory); a stale one must not keep serving reads
                // after this write.
                l.state = State::Invalid;
                l.latestCopy = false;
                syncLine(l);
            }
        }
    });
}

void
CacheSystem::triggerAbort(const Line* offender)
{
    if (offender && offender->highFromWrongPath)
        ++stats_.falseAbortsWrongPath;
    if (offender) {
        trace_.event(TraceCommit, eq_.curTick(),
                     "ABORT triggered by line %#llx %s(%u,%u)",
                     static_cast<unsigned long long>(offender->base),
                     std::string(stateName(offender->state)).c_str(),
                     offender->tag.mod, offender->tag.high);
    } else {
        trace_.event(TraceCommit, eq_.curTick(),
                     "ABORT triggered (overflowed pristine version)");
    }
    abortAll();
}

// --- data movement -------------------------------------------------------

std::uint64_t
CacheSystem::readData(const Line& l, Addr a, unsigned size) const
{
    std::uint64_t v = 0;
    unsigned off = lineOffset(a);
    for (unsigned i = 0; i < size; ++i)
        v |= static_cast<std::uint64_t>(l.data[off + i]) << (8 * i);
    return v;
}

void
CacheSystem::writeData(Line& l, Addr a, std::uint64_t v, unsigned size)
{
    unsigned off = lineOffset(a);
    for (unsigned i = 0; i < size; ++i)
        l.data[off + i] = static_cast<std::uint8_t>(v >> (8 * i));
}

void
CacheSystem::busAcquire(AccessResult& r, Addr la)
{
    Tick now = eq_.curTick();
    if (cfg_.fabric == Fabric::Directory) {
        // Address-interleaved directory bank: only transactions to
        // the same bank serialize; the rest proceed concurrently.
        std::size_t b = (la >> kLineShift) % bankFree_.size();
        Tick start = std::max(now, bankFree_[b]);
        bankFree_[b] = start + cfg_.busCycles;
        r.latency += (start - now) + cfg_.dirLookup + cfg_.dirHop;
        ++stats_.dirLookups;
        ++stats_.busTxns;
        return;
    }
    Tick start = std::max(now, busFree_);
    busFree_ = start + busOccupancy();
    r.latency += (start - now) + cfg_.busCycles;
    ++stats_.busTxns;
}

Cycles
CacheSystem::busOccupancy() const
{
    // A snoopy broadcast occupies the bus for longer as the machine
    // grows: every cache must snoop and the responses must be
    // collected, so occupancy scales with the core count — the very
    // reason the paper's future work moves to a directory (§8).
    unsigned scale = std::max(1u, cfg_.numCores / 4);
    return cfg_.busCycles * scale;
}

void
CacheSystem::busAsync(Addr la)
{
    if (cfg_.fabric == Fabric::Directory) {
        std::size_t b = (la >> kLineShift) % bankFree_.size();
        bankFree_[b] =
            std::max(bankFree_[b], eq_.curTick()) + cfg_.busCycles;
        ++stats_.dirLookups;
        ++stats_.busTxns;
        return;
    }
    busFree_ = std::max(busFree_, eq_.curTick()) + busOccupancy();
    ++stats_.busTxns;
}

Cycles
CacheSystem::remoteLatency() const
{
    if (cfg_.fabric == Fabric::Directory) {
        // Three-hop miss: requester -> directory -> owner -> requester
        // (the lookup itself is charged by busAcquire).
        return 2 * cfg_.dirHop;
    }
    return cfg_.l2Latency;
}

// --- bookkeeping ----------------------------------------------------------

CacheSystem::RwSets&
CacheSystem::rwFor(Vid vid)
{
    // Accesses cluster heavily by VID (each core works through one
    // transaction at a time), so cache the last node instead of
    // re-hashing per access. Node pointers are stable across inserts.
    if (rwCached_ && rwCachedVid_ == vid)
        return *rwCached_;
    rwCached_ = &rw_[vid];
    rwCachedVid_ = vid;
    return *rwCached_;
}

void
CacheSystem::recordRead(Vid vid, Addr la)
{
    rwFor(vid).reads.insert(la);
}

void
CacheSystem::recordWrite(Vid vid, Addr la)
{
    rwFor(vid).writes.insert(la);
}

void
CacheSystem::noteShadowWrongPath(Addr la, Vid vid)
{
    Vid& v = shadow_[la];
    v = std::max(v, vid);
}

void
CacheSystem::checkShadowAvoided(Addr la, Vid storeVid)
{
    // Only wrong-path loads under SLAs populate the shadow map; skip
    // the hash probe entirely on the (typical) run without any.
    if (shadow_.empty())
        return;
    auto it = shadow_.find(la);
    if (it == shadow_.end())
        return;
    if (it->second > storeVid) {
        // Without SLAs the wrong-path load would have marked the line
        // with its higher VID and this (successful) store would have
        // triggered a false abort (§5.1, Table 1).
        ++stats_.avoidedAborts;
        shadow_.erase(it);
    } else if (it->second <= lcVid_) {
        shadow_.erase(it);
    }
}

// --- loads -----------------------------------------------------------------

AccessResult
CacheSystem::load(CoreId core, Addr a, unsigned size, Vid vid,
                  bool wrongPath)
{
    const Addr la = lineAddr(a);
    assert(lineOffset(a) + size <= kLineBytes);

    AccessResult r;
    r.latency = cfg_.l1Latency;
    ++stats_.loads;

    const bool spec = cfg_.hmtxEnabled && vid != kNonSpecVid;
    if (wrongPath)
        ++stats_.wrongPathLoads;
    else if (spec)
        ++stats_.specLoads;

    // Wrong-path loads move data around but, with SLAs, never mark
    // lines (§5.1). With SLAs disabled they mark like any other load,
    // which is the false-misspeculation source prior systems suffer.
    const bool mark = spec && (!wrongPath || !cfg_.slaEnabled);
    const Vid reqVid = spec ? vid : lcVid_;

    Cache& l1 = caches_[core];
    Line* v = findLocal(l1, la, reqVid, false);
    if (v) {
        ++stats_.l1Hits;
        r.l1Hit = true;
        v->lastUse = eq_.curTick();
        r.value = readData(*v, a, size);
        if (mark) {
            if (v->state == State::SpecShared && v->latestCopy) {
                // Record the read on the local copy; store broadcasts
                // aggregate these distributed marks.
                if (vid > v->tag.high) {
                    r.needSla = true;
                    v->tag.high = vid;
                }
            } else {
                applyReadMark(core, *v, vid, r);
            }
            if (wrongPath && r.needSla)
                v->highFromWrongPath = true;
        } else if (wrongPath && spec && cfg_.slaEnabled) {
            noteShadowWrongPath(la, vid);
        }
    } else {
        ++stats_.l1Misses;
        busAcquire(r, la);
        RemoteHit rh = findRemote(core, la, reqVid, false);
        if (rh.line) {
            ++stats_.snoopHits;
            r.latency += remoteLatency() + rh.extraLatency;
            Line& o = *rh.line;
            o.lastUse = eq_.curTick();
            r.value = readData(o, a, size);
            if (isSpec(o.state)) {
                // The speculative owner responds; requester keeps a
                // silent S-S copy covering VIDs <= the request's.
                if (mark && reqVid > o.tag.high) {
                    r.needSla = true;
                    o.tag.high = reqVid;
                    o.highFromWrongPath = wrongPath;
                } else if (!mark && wrongPath && spec &&
                           cfg_.slaEnabled) {
                    noteShadowWrongPath(la, vid);
                }
                LineData d = o.data;
                bool latest = isSpecLatest(o.state);
                // Latest-version copies carry a local read mark —
                // zero for non-marking requests (wrong-path loads
                // must not plant marks, §5.1). Superseded copies
                // carry their coverage bound instead.
                VersionTag t{o.tag.mod,
                             latest ? (mark ? reqVid : kNonSpecVid)
                                    : reqVid + 1};
                o.mayHaveSharers = true;
                if (Line* nl = allocateOpt(l1, la)) {
                    nl->state = State::SpecShared;
                    nl->tag = t;
                    nl->latestCopy = latest;
                    nl->data = d;
                    syncLine(*nl);
                }
            } else if (mark) {
                // First speculative access: gain writable access and
                // migrate ownership to the requesting core (§4.2).
                bool dirty = o.dirty || anyNonSpecDirty(la, &o);
                LineData d = o.data;
                invalidateNonSpecPeers(la, nullptr);
                Line* nl = allocate(l1, la);
                if (!nl) {
                    r.aborted = true;
                    return r;
                }
                nl->state = dirty ? State::SpecModified
                                  : State::SpecExclusive;
                nl->tag = {kNonSpecVid, vid};
                nl->dirty = dirty;
                nl->highFromWrongPath = wrongPath;
                nl->data = d;
                syncLine(*nl);
                r.needSla = true;
            } else {
                // Plain MOESI read miss served cache-to-cache.
                if (o.state == State::Modified)
                    o.state = State::Owned;
                else if (o.state == State::Exclusive)
                    o.state = State::Shared;
                syncLine(o);
                LineData d = o.data;
                Line* nl = allocate(l1, la);
                if (!nl) {
                    r.aborted = true;
                    return r;
                }
                nl->state = State::Shared;
                nl->data = d;
                syncLine(*nl);
                if (wrongPath && spec && cfg_.slaEnabled)
                    noteShadowWrongPath(la, vid);
            }
        } else {
            // Satisfied by main memory.
            ++stats_.memFetches;
            r.latency += cfg_.memLatency;
            const LineData& md = mem_.readLine(la);
            LineData d = md;
            if (rh.assertModified) {
                // §5.4: the pristine version overflowed to memory; it
                // returns as S-O(0, reqVid + 1).
                ++stats_.soRefetches;
                // Merge with an existing local copy of the pristine
                // version, if any, to keep responder hits unambiguous.
                Line* exist = nullptr;
                for (auto& l : l1.set(la)) {
                    if (l.state != State::Invalid && l.base == la &&
                        isSpec(l.state) && l.tag.mod == kNonSpecVid &&
                        isSpecSuperseded(l.state)) {
                        exist = &l;
                        break;
                    }
                }
                if (exist) {
                    exist->tag.high =
                        std::max(exist->tag.high, reqVid + 1);
                    exist->lastUse = eq_.curTick();
                } else if (Line* nl = allocateOpt(l1, la)) {
                    // Best effort: if no slot is free the value is
                    // still served; a later conflicting store is
                    // caught conservatively by the §5.4 assertion.
                    nl->state = State::SpecOwned;
                    nl->tag = {kNonSpecVid, reqVid + 1};
                    nl->data = d;
                    syncLine(*nl);
                }
                if (mark)
                    r.needSla = true;
            } else {
                Line* nl = allocate(l1, la);
                if (!nl) {
                    r.aborted = true;
                    return r;
                }
                nl->data = d;
                if (mark) {
                    nl->state = State::SpecExclusive;
                    nl->tag = {kNonSpecVid, vid};
                    nl->highFromWrongPath = wrongPath;
                    r.needSla = true;
                } else {
                    nl->state = State::Exclusive;
                    if (wrongPath && spec && cfg_.slaEnabled)
                        noteShadowWrongPath(la, vid);
                }
                syncLine(*nl);
            }
            r.value = 0;
            unsigned off = lineOffset(a);
            for (unsigned i = 0; i < size; ++i)
                r.value |= static_cast<std::uint64_t>(d[off + i])
                    << (8 * i);
        }
    }

    if (spec && !wrongPath) {
        recordRead(vid, la);
        if (r.needSla) {
            // SLA sent once the load retires; occupies the bus but
            // does not stall the core (§5.1).
            ++stats_.slaNeeded;
            busAsync(la);
        }
    }

    // §7.1 ablation: Vachharajani's design creates a new line version
    // on every read from a new VID, adding cache pressure.
    if (cfg_.copyOnRead && mark && r.needSla && !r.aborted) {
        // A real allocation, as in Vachharajani's design: the
        // duplicate competes for ways with live lines (and can even
        // force capacity aborts), which is exactly the §7.1 critique.
        Line* dup = allocate(l1, la);
        if (dup) {
            // The duplicate models the redundant per-VID version of
            // Vachharajani's design: it competes for ways like any
            // speculative version (and is flushed once its VID
            // commits), but its empty hit range keeps it from ever
            // serving (or corrupting) a request.
            dup->state = State::SpecOwned;
            dup->tag = {1, 1};
            syncLine(*dup);
            ++stats_.corDuplicates;
        }
    }
    return r;
}

// --- stores ------------------------------------------------------------------

AccessResult
CacheSystem::store(CoreId core, Addr a, std::uint64_t value,
                   unsigned size, Vid vid)
{
    ++stats_.stores;
    if (!cfg_.hmtxEnabled || vid == kNonSpecVid)
        return nonSpecStore(core, a, value, size);

    ++stats_.specStores;
    const Addr la = lineAddr(a);
    assert(lineOffset(a) + size <= kLineBytes);

    AccessResult r;
    r.latency = cfg_.l1Latency;
    Cache& l1 = caches_[core];

    Line* v = findLocal(l1, la, vid, true);
    if (v && v->state == State::SpecModified && v->tag.mod == vid &&
        v->tag.high == vid && !v->mayHaveSharers) {
        // We own this version exclusively: silent in-place write.
        writeData(*v, a, value, size);
        v->dirty = true;
        syncLine(*v);
        v->lastUse = eq_.curTick();
        r.l1Hit = true;
        ++stats_.l1Hits;
        recordWrite(vid, la);
        checkShadowAvoided(la, vid);
        return r;
    }

    busAcquire(r, la);
    Line* owner = v;
    Cache* ownerCache = owner ? &l1 : nullptr;
    RemoteHit rh;
    if (!owner) {
        rh = findRemote(core, la, vid, true);
        owner = rh.line;
        ownerCache = rh.cache;
        if (owner)
            r.latency += remoteLatency() + rh.extraLatency;
    }

    if (!owner) {
        if (rh.assertModified) {
            // The superseded pristine version overflowed to memory and
            // a later version exists: this earlier store arrives out
            // of order (§4.3 / §5.4), abort conservatively.
            triggerAbort(nullptr);
            r.aborted = true;
            return r;
        }
        // Cold store miss: build the first speculative version.
        ++stats_.memFetches;
        r.latency += cfg_.memLatency;
        LineData d = mem_.readLine(la);
        Line* nl = allocate(l1, la);
        if (!nl) {
            r.aborted = true;
            return r;
        }
        nl->state = State::SpecModified;
        nl->tag = {vid, vid};
        nl->dirty = true;
        nl->data = d;
        writeData(*nl, a, value, size);
        syncLine(*nl);
        ++stats_.newVersions;
        trace_.event(TraceProtocol, eq_.curTick(),
                     "new version S-M(%u,%u) of %#llx at core %u "
                     "(cold)",
                     vid, vid, static_cast<unsigned long long>(la),
                     core);
        recordWrite(vid, la);
        checkShadowAvoided(la, vid);
        return r;
    }

    // Aggregate the distributed read marks from latest-version S-S
    // copies: a peer cache may have served a higher VID locally.
    // This applies both to speculative latest owners (S-M/S-E) and to
    // non-speculative owners whose retired readers left copies.
    VersionTag eff = owner->tag;
    if (!isSpecSuperseded(owner->state)) {
        forEachSnoopTarget(la, [&](std::size_t ci) {
            for (auto& l : caches_[ci].set(la)) {
                if (l.state == State::SpecShared && l.base == la &&
                    l.latestCopy) {
                    eff.high = std::max(eff.high, l.tag.high);
                    if (l.highFromWrongPath &&
                        l.tag.high > owner->tag.high) {
                        owner->highFromWrongPath = true;
                    }
                }
            }
        });
    }
    StoreAction act;
    if (vid < eff.high) {
        // A later VID already read this version — possibly recorded
        // on a peer copy rather than the owner (§4.3).
        act = StoreAction::Abort;
    } else {
        act = classifyStore(owner->state, eff, vid);
    }
    if (act == StoreAction::Abort) {
        triggerAbort(owner);
        r.aborted = true;
        return r;
    }

    if (act == StoreAction::InPlace) {
        // The version exists (an MTX peer thread created it); pull it
        // into our L1 exclusively and write.
        invalidatePeerSpecShared(la, owner, vid);
        if (ownerCache != &l1) {
            Line copy = *owner;
            owner->state = State::Invalid;
            syncLine(*owner);
            Line* nl = allocate(l1, la);
            if (!nl) {
                r.aborted = true;
                return r;
            }
            *nl = copy;
            owner = nl;
        }
        owner->mayHaveSharers = false;
        writeData(*owner, a, value, size);
        owner->dirty = true;
        syncLine(*owner);
        owner->lastUse = eq_.curTick();
        recordWrite(vid, la);
        checkShadowAvoided(la, vid);
        return r;
    }

    // NewVersion: keep the pristine copy in S-O and create S-M(y,y).
    LineData base = owner->data;
    if (isSpec(owner->state)) {
        owner->state = State::SpecOwned;
        owner->tag.high = vid;
    } else {
        // The hitting copy may be a clean Shared one while a dirty
        // Owned copy lives elsewhere; the surviving S-O owner must
        // inherit the true dirtiness or committed data could be
        // dropped on eviction.
        owner->dirty = owner->dirty || anyNonSpecDirty(la, owner);
        owner->state = State::SpecOwned;
        owner->tag = {kNonSpecVid, vid};
    }
    owner->mayHaveSharers = false;
    syncLine(*owner);
    fixPeersForNewVersion(la, owner, vid);
    Line* nl = allocate(l1, la);
    if (!nl) {
        r.aborted = true;
        return r;
    }
    nl->state = State::SpecModified;
    nl->tag = {vid, vid};
    nl->dirty = true;
    nl->data = base;
    writeData(*nl, a, value, size);
    syncLine(*nl);
    ++stats_.newVersions;
    trace_.event(TraceProtocol, eq_.curTick(),
                 "new version S-M(%u,%u) of %#llx at core %u", vid,
                 vid, static_cast<unsigned long long>(la), core);
    recordWrite(vid, la);
    checkShadowAvoided(la, vid);
    return r;
}

AccessResult
CacheSystem::nonSpecStore(CoreId core, Addr a, std::uint64_t value,
                          unsigned size)
{
    const Addr la = lineAddr(a);
    AccessResult r;
    r.latency = cfg_.l1Latency;
    Cache& l1 = caches_[core];

    Line* v = findLocal(l1, la, lcVid_, true);
    if (v && (v->state == State::Modified ||
              v->state == State::Exclusive)) {
        writeData(*v, a, value, size);
        v->state = State::Modified;
        v->dirty = true;
        syncLine(*v);
        v->lastUse = eq_.curTick();
        r.l1Hit = true;
        ++stats_.l1Hits;
        return r;
    }

    busAcquire(r, la);
    Line* owner = v;
    RemoteHit rh;
    if (!owner) {
        rh = findRemote(core, la, lcVid_, true);
        owner = rh.line;
        if (owner)
            r.latency += remoteLatency() + rh.extraLatency;
    }

    if (owner && isSpec(owner->state)) {
        // Committed code is writing data a live transaction touched:
        // conservative abort (the transaction read stale state).
        triggerAbort(owner);
        r.aborted = true;
        return r;
    }
    // Distributed read marks: a live transaction may have recorded
    // its read on a latest-version S-S copy instead of the owner.
    // Find the offender first, then abort: triggerAbort rewrites the
    // whole cache system and must not run mid-snoop.
    Line* offender = nullptr;
    forEachSnoopTarget(la, [&](std::size_t ci) {
        if (offender)
            return;
        for (auto& l : caches_[ci].set(la)) {
            if (l.state == State::SpecShared && l.base == la &&
                l.latestCopy && l.tag.high > lcVid_) {
                offender = &l;
                return;
            }
        }
    });
    if (offender) {
        triggerAbort(offender);
        r.aborted = true;
        return r;
    }

    LineData d;
    if (owner) {
        d = owner->data;
    } else {
        if (rh.assertModified) {
            triggerAbort(nullptr);
            r.aborted = true;
            return r;
        }
        ++stats_.memFetches;
        r.latency += cfg_.memLatency;
        d = mem_.readLine(la);
    }

    invalidateNonSpecPeers(la, nullptr);
    Line* nl = allocate(l1, la);
    if (!nl) {
        r.aborted = true;
        return r;
    }
    nl->state = State::Modified;
    nl->dirty = true;
    nl->data = d;
    writeData(*nl, a, value, size);
    syncLine(*nl);
    return r;
}

// --- SLA, commit, abort, reset ------------------------------------------

bool
CacheSystem::slaConfirm(CoreId core, const SlaEntry& e)
{
    const Addr la = lineAddr(e.addr);
    busAsync(la);

    Cache& l1 = caches_[core];
    Line* cur = findLocal(l1, la, e.vid, false);
    if (!cur) {
        RemoteHit rh = findRemote(core, la, e.vid, false);
        cur = rh.line;
    }

    std::uint64_t now;
    if (cur) {
        now = readData(*cur, e.addr, e.size);
    } else {
        now = mem_.read(e.addr, e.size);
    }
    if (now != e.value) {
        ++stats_.slaMismatchAborts;
        trace_.event(TraceSla, eq_.curTick(),
                     "SLA mismatch at %#llx vid %u",
                     static_cast<unsigned long long>(e.addr), e.vid);
        triggerAbort(nullptr);
        return false;
    }
    if (cur && cur->state != State::SpecShared) {
        AccessResult dummy;
        applyReadMark(core, *cur, e.vid, dummy);
    }
    ++stats_.slaConfirms;
    return true;
}

Cycles
CacheSystem::commit(Vid vid)
{
    if (vid != lcVid_ + 1) {
        throw std::logic_error(
            "commitMTX: commits must occur consecutively (§4.7); "
            "expected VID " + std::to_string(lcVid_ + 1) + ", got " +
            std::to_string(vid));
    }
    lcVid_ = vid;
    ++stats_.commits;
    ++stats_.committedTxs;
    trace_.event(TraceCommit, eq_.curTick(), "commit VID %u", vid);

    auto it = rw_.find(vid);
    if (it != rw_.end()) {
        std::size_t rl = it->second.reads.size();
        std::size_t wl = it->second.writes.size();
        std::size_t comb = rl;
        for (Addr w : it->second.writes)
            if (!it->second.reads.count(w))
                ++comb;
        stats_.readSetLines += rl;
        stats_.writeSetLines += wl;
        stats_.combinedSetLines += comb;
        stats_.maxCombinedSetLines =
            std::max<std::uint64_t>(stats_.maxCombinedSetLines, comb);
        rwCached_ = nullptr;
        rw_.erase(it);
    }

    Cycles cost = cfg_.busCycles;
    busAsync();
    if (!cfg_.lazyCommit) {
        // Naive §4.4 scheme: walk and transition every speculative
        // line now. The per-cache registry is exactly the ORB-like
        // structure the paper assumes locates them [34] — without it
        // a full cache walk would cost one cycle per cache line,
        // >500k cycles per commit with Table 2's 32 MB L2. The walk
        // occupies the memory system, stalling every core's misses.
        std::uint64_t touched = 0;
        forEachCandidateLine([&](Line& l) {
            if (isSpec(l.state)) {
                ++touched;
                reconcile(l);
            }
        });
        cost += touched * cfg_.eagerPerLineCycles;
        busFree_ = std::max(busFree_, eq_.curTick()) + cost;
    }
    stats_.commitProcessingCycles += cost;
    maybeCrossCheck();
    return cost;
}

Cycles
CacheSystem::abortAll()
{
    ++abortGen_;
    ++stats_.aborts;
    std::uint64_t touched = 0;
    forEachCandidateLine([&](Line& l) {
        if (!isSpec(l.state))
            return; // dirty committed lines are untouched by aborts
        ++touched;
        if (l.state == State::SpecShared && l.latestCopy) {
            // Copies are refetchable; dropping them keeps every
            // version with exactly one apparent owner.
            l.state = State::Invalid;
            l.tag = {};
        } else {
            bool sharers = l.mayHaveSharers;
            LineTransition t = commitLine(l.state, l.tag, lcVid_,
                                          l.dirty);
            t = abortLine(t.state, t.tag, lcVid_, l.dirty);
            if (sharers) {
                if (t.state == State::Modified)
                    t.state = State::Owned;
                else if (t.state == State::Exclusive)
                    t.state = State::Shared;
            }
            l.state = t.state;
            l.tag = t.tag;
        }
        l.latestCopy = false;
        l.mayHaveSharers = false;
        l.highFromWrongPath = false;
        syncLine(l);
    });
    overflow_.forEach([&](Line& l) {
        LineTransition tr =
            commitLine(l.state, l.tag, lcVid_, l.dirty);
        tr = abortLine(tr.state, tr.tag, lcVid_, l.dirty);
        if (tr.state != State::Invalid && l.dirty) {
            // Committed data survives the abort: fold it back into
            // memory rather than keeping a nonspec entry spilled.
            mem_.writeLine(l.base, l.data);
            ++stats_.writebacks;
        }
        l.state = State::Invalid;
        l.tag = {};
    });
    rwCached_ = nullptr;
    rw_.clear();
    shadow_.clear();
    Cycles cost = cfg_.busCycles;
    if (!cfg_.lazyCommit) {
        cost += touched * cfg_.eagerPerLineCycles;
        busFree_ = std::max(busFree_, eq_.curTick()) + cost;
    }
    stats_.commitProcessingCycles += cost;
    busAsync();
    maybeCrossCheck();
    return cost;
}

Cycles
CacheSystem::vidReset()
{
    std::uint64_t specLeft = 0;
    overflow_.forEach([&](Line& l) {
        reconcile(l);
        if (l.state == State::Invalid)
            return;
        // All transactions committed (precondition): spilled data is
        // committed; fold dirty survivors back into memory.
        if (l.dirty && !isSpecSuperseded(l.state)) {
            mem_.writeLine(l.base, l.data);
            ++stats_.writebacks;
        }
        l.state = State::Invalid;
    });
    forEachCandidateLine([&](Line& l) {
        reconcile(l);
        if (isSpec(l.state)) {
            if (l.state == State::SpecShared && l.latestCopy) {
                l.state = State::Invalid;
                l.tag = {};
            } else {
                bool sharers = l.mayHaveSharers;
                LineTransition t =
                    resetLine(l.state, l.tag, l.dirty);
                if (sharers) {
                    if (t.state == State::Modified)
                        t.state = State::Owned;
                    else if (t.state == State::Exclusive)
                        t.state = State::Shared;
                }
                l.state = t.state;
                l.tag = t.tag;
            }
            l.latestCopy = false;
            l.mayHaveSharers = false;
            syncLine(l);
            ++specLeft;
        }
    });
    if (!rw_.empty()) {
        throw std::logic_error(
            "vidReset with outstanding uncommitted transactions");
    }
    (void)specLeft;
    lcVid_ = kNonSpecVid;
    shadow_.clear();
    ++stats_.vidResets;
    trace_.event(TraceCommit, eq_.curTick(), "VID reset");
    busAsync();
    maybeCrossCheck();
    return cfg_.busCycles;
}

void
CacheSystem::flushDirtyToMemory()
{
    overflow_.forEach([&](Line& l) {
        reconcile(l);
        if (l.state == State::Invalid)
            return;
        if (!isSpec(l.state)) {
            // The spilled version retired: its data is committed.
            if (l.dirty) {
                mem_.writeLine(l.base, l.data);
                ++stats_.writebacks;
            }
            l.state = State::Invalid;
        }
    });
    forEachCandidateLine([&](Line& l) {
        reconcile(l);
        // Reconciliation may retire a superseded version to
        // Invalid; its stale data must not reach memory.
        if (l.state == State::Invalid)
            return;
        if (!isSpec(l.state) && l.dirty) {
            mem_.writeLine(l.base, l.data);
            l.dirty = false;
            ++stats_.writebacks;
            l.state = l.state == State::Modified ? State::Exclusive
                                                 : State::Shared;
            syncLine(l);
        }
    });
    maybeCrossCheck();
}

void
CacheSystem::checkInvariants()
{
    // Police the index structures first: every existing call site of
    // this self-check also cross-checks the presence filter and the
    // registries against a full scan, for free.
    verifyIndexes();

    // Collect every cached address. The presence filter already keys
    // on exactly the live addresses; fall back to a full scan when it
    // is disabled.
    std::unordered_set<Addr> addrs;
    if (filterEnabled_) {
        addrs.reserve(presence_.size());
        for (const auto& [la, p] : presence_)
            addrs.insert(la);
    } else {
        for (auto& c : caches_) {
            c.forEachLine([&](Line& l) {
                if (l.state != State::Invalid)
                    addrs.insert(l.base);
            });
        }
    }
    const Vid maxV = cfg_.maxVid();
    for (Addr la : addrs) {
        // The check judges lines as of the current LC VID, so fold the
        // lazy-commit transitions into *snapshots* — the cached state
        // itself stays untouched (this check is read-only).
        std::vector<Line> live;
        for (auto& c : caches_) {
            for (auto& l : c.set(la)) {
                if (l.state == State::Invalid || l.base != la)
                    continue;
                Line s = l;
                applyReconcile(s);
                if (s.state != State::Invalid)
                    live.push_back(s);
            }
        }
        bool anySpec = false, anyNonSpec = false, responder = false;
        for (const Line& s : live) {
            (isSpec(s.state) ? anySpec : anyNonSpec) = true;
            responder = responder || isSpecResponder(s.state);
        }
        // Only responder-class speculative versions conflict with
        // non-speculative copies; S-S copies of committed data
        // legally linger until their readers commit.
        if (anySpec && anyNonSpec && responder) {
            throw std::logic_error(
                "protocol invariant violated: speculative and "
                "non-speculative versions coexist");
        }
        for (Vid a = 0; a <= maxV; ++a) {
            Vid mods[2];
            int n = 0;
            for (const Line& s : live) {
                if (!isSpecResponder(s.state))
                    continue;
                if (versionHits(s.state, s.tag, a)) {
                    if (n < 2)
                        mods[n] = s.tag.mod;
                    ++n;
                }
            }
            if (n > 1 && mods[0] != mods[1]) {
                throw std::logic_error(
                    "protocol invariant violated: multiple distinct "
                    "responder versions hit one VID");
            }
        }
    }
}

void
CacheSystem::verifyIndexes()
{
    ++idxStats_.crossChecks;
    // Rebuild the expected presence counts from a full scan and check
    // the per-slot bookkeeping along the way.
    std::unordered_map<Addr, std::vector<std::uint16_t>> want;
    for (std::size_t ci = 0; ci < caches_.size(); ++ci) {
        caches_[ci].forEachLine([&](Line& l) {
            if (l.bk.cacheId != ci) {
                throw std::logic_error(
                    "index check: slot carries wrong cache id in " +
                    caches_[ci].name());
            }
            if (l.state == State::Invalid) {
                if (filterEnabled_ && l.bk.present) {
                    throw std::logic_error(
                        "index check: invalid line still counted "
                        "present in " + caches_[ci].name());
                }
                return;
            }
            if (filterEnabled_ &&
                (!l.bk.present || l.bk.presentAddr != l.base)) {
                throw std::logic_error(
                    "index check: valid line not counted under its "
                    "address in " + caches_[ci].name());
            }
            if (Cache::interesting(l) && !l.bk.onRegistry) {
                throw std::logic_error(
                    "index check: spec/dirty line missing from the "
                    "registry of " + caches_[ci].name());
            }
            if (filterEnabled_) {
                auto& v = want[l.base];
                if (v.empty())
                    v.resize(caches_.size(), 0);
                ++v[ci];
            }
        });
    }
    if (filterEnabled_) {
        if (want.size() != presence_.size()) {
            throw std::logic_error(
                "index check: presence filter tracks " +
                std::to_string(presence_.size()) + " addresses, scan "
                "found " + std::to_string(want.size()));
        }
        for (const auto& [la, counts] : want) {
            auto it = presence_.find(la);
            if (it == presence_.end()) {
                throw std::logic_error(
                    "index check: cached address missing from the "
                    "presence filter");
            }
            std::uint64_t mask = 0;
            for (std::size_t ci = 0; ci < counts.size(); ++ci)
                if (counts[ci] != 0)
                    mask |= std::uint64_t{1} << ci;
            if (it->second.mask != mask) {
                throw std::logic_error(
                    "index check: presence mask mismatch");
            }
            for (std::size_t ci = 0; ci < counts.size(); ++ci) {
                if (it->second.count[ci] != counts[ci]) {
                    throw std::logic_error(
                        "index check: presence count mismatch");
                }
            }
        }
    }
    // Registries may hold stale (no longer interesting) entries, but
    // every entry must be flagged and unique so lazy purging stays
    // linear.
    for (auto& c : caches_) {
        std::unordered_set<const Line*> seen;
        for (const Line* l : c.registry()) {
            if (!l->bk.onRegistry) {
                throw std::logic_error(
                    "index check: unflagged registry entry in " +
                    c.name());
            }
            if (!seen.insert(l).second) {
                throw std::logic_error(
                    "index check: duplicate registry entry in " +
                    c.name());
            }
        }
    }
}

} // namespace hmtx::sim
