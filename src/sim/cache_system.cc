/**
 * @file
 * CacheSystem construction, index maintenance, and self-checks. The
 * lookup, access, and bulk-operation halves live in the sibling
 * cache_system_*.cc translation units.
 */

#include "sim/cache_system.hh"

#include <stdexcept>
#include <string>

namespace hmtx::sim
{

CacheSystem::CacheSystem(EventQueue& eq, const MachineConfig& cfg)
    : eq_(eq), cfg_(cfg), cmp_(cfg.vidBits), trace_(cfg.traceFlags)
{
    caches_.reserve(cfg.numCores + 1);
    for (CoreId c = 0; c < cfg.numCores; ++c) {
        caches_.emplace_back("L1." + std::to_string(c), cfg.l1Sets(),
                             cfg.l1Assoc, c);
    }
    caches_.emplace_back("L2", cfg.l2Sets(), cfg.l2Assoc,
                         cfg.numCores);
    // The presence mask is one bit per cache; fall back to full snoops
    // beyond 64 caches (far above any modeled configuration).
    filterEnabled_ = caches_.size() <= 64;
    if (filterEnabled_) {
        // Pre-size for the L1 working sets so steady-state traffic
        // does not rehash; larger footprints grow amortized.
        const std::size_t l1Slots = std::size_t{cfg.numCores} *
            cfg.l1Sets() * cfg.l1Assoc;
        presence_.reserve(std::min<std::size_t>(
            std::max<std::size_t>(l1Slots, 1024), 1u << 16));
    }
    net_ = makeInterconnect(cfg_, stats_);
}

// --- index maintenance --------------------------------------------------

void
CacheSystem::presenceAdd(std::uint32_t ci, Addr la)
{
    Presence& p = presence_[la];
    if (p.count.empty())
        p.count.resize(caches_.size(), 0);
    if (p.count[ci]++ == 0)
        p.mask |= std::uint64_t{1} << ci;
}

void
CacheSystem::presenceRemove(std::uint32_t ci, Addr la)
{
    auto it = presence_.find(la);
    if (it == presence_.end())
        return; // unreachable while bookkeeping is sound
    Presence& p = it->second;
    if (--p.count[ci] == 0) {
        p.mask &= ~(std::uint64_t{1} << ci);
        // count > 0 iff the bit is set, so a zero mask means no cache
        // holds the address at all.
        if (p.mask == 0)
            presence_.erase(it);
    }
}

void
CacheSystem::syncLine(Line& l)
{
    const std::uint32_t ci = l.bk.cacheId;
    if (ci == kNoCacheId)
        return; // overflow-table entries and snapshots are unindexed
    const bool valid = l.state != State::Invalid;
    if (filterEnabled_) {
        if (l.bk.present && (!valid || l.bk.presentAddr != l.base)) {
            presenceRemove(ci, l.bk.presentAddr);
            l.bk.present = false;
        }
        if (valid && !l.bk.present) {
            presenceAdd(ci, l.base);
            l.bk.present = true;
            l.bk.presentAddr = l.base;
        }
    }
    if (valid && (isSpec(l.state) || l.dirty))
        caches_[ci].noteInteresting(l);
}

void
CacheSystem::maybeCrossCheck()
{
    if (cfg_.indexCrossCheck)
        verifyIndexes();
}

// --- self-checks --------------------------------------------------------

void
CacheSystem::checkInvariants()
{
    // Police the index structures first: every existing call site of
    // this self-check also cross-checks the presence filter and the
    // registries against a full scan, for free.
    verifyIndexes();

    // Collect every cached address. The presence filter already keys
    // on exactly the live addresses; fall back to a full scan when it
    // is disabled.
    std::unordered_set<Addr> addrs;
    if (filterEnabled_) {
        addrs.reserve(presence_.size());
        for (const auto& [la, p] : presence_)
            addrs.insert(la);
    } else {
        for (auto& c : caches_) {
            c.forEachLine([&](Line& l) {
                if (l.state != State::Invalid)
                    addrs.insert(l.base);
            });
        }
    }
    const Vid maxV = cfg_.maxVid();
    for (Addr la : addrs) {
        // The check judges lines as of the current LC VID, so fold the
        // lazy-commit transitions into *snapshots* — the cached state
        // itself stays untouched (this check is read-only).
        std::vector<Line> live;
        for (auto& c : caches_) {
            for (auto& l : c.set(la)) {
                if (l.state == State::Invalid || l.base != la)
                    continue;
                Line s = l;
                applyReconcile(s);
                if (s.state != State::Invalid)
                    live.push_back(s);
            }
        }
        bool anySpec = false, anyNonSpec = false, responder = false;
        for (const Line& s : live) {
            (isSpec(s.state) ? anySpec : anyNonSpec) = true;
            responder = responder || isSpecResponder(s.state);
        }
        // Only responder-class speculative versions conflict with
        // non-speculative copies; S-S copies of committed data
        // legally linger until their readers commit.
        if (anySpec && anyNonSpec && responder) {
            throw std::logic_error(
                "protocol invariant violated: speculative and "
                "non-speculative versions coexist");
        }
        for (Vid a = 0; a <= maxV; ++a) {
            Vid mods[2];
            int n = 0;
            for (const Line& s : live) {
                if (!isSpecResponder(s.state))
                    continue;
                if (versionHits(s.state, s.tag, a)) {
                    if (n < 2)
                        mods[n] = s.tag.mod;
                    ++n;
                }
            }
            if (n > 1 && mods[0] != mods[1]) {
                throw std::logic_error(
                    "protocol invariant violated: multiple distinct "
                    "responder versions hit one VID");
            }
        }
    }
}

void
CacheSystem::verifyIndexes()
{
    ++idxStats_.crossChecks;
    // Rebuild the expected presence counts from a full scan and check
    // the per-slot bookkeeping along the way.
    std::unordered_map<Addr, std::vector<std::uint16_t>> want;
    for (std::size_t ci = 0; ci < caches_.size(); ++ci) {
        caches_[ci].forEachLine([&](Line& l) {
            if (l.bk.cacheId != ci) {
                throw std::logic_error(
                    "index check: slot carries wrong cache id in " +
                    caches_[ci].name());
            }
            if (l.state == State::Invalid) {
                if (filterEnabled_ && l.bk.present) {
                    throw std::logic_error(
                        "index check: invalid line still counted "
                        "present in " + caches_[ci].name());
                }
                return;
            }
            if (filterEnabled_ &&
                (!l.bk.present || l.bk.presentAddr != l.base)) {
                throw std::logic_error(
                    "index check: valid line not counted under its "
                    "address in " + caches_[ci].name());
            }
            if (Cache::interesting(l) && !l.bk.onRegistry) {
                throw std::logic_error(
                    "index check: spec/dirty line missing from the "
                    "registry of " + caches_[ci].name());
            }
            if (filterEnabled_) {
                auto& v = want[l.base];
                if (v.empty())
                    v.resize(caches_.size(), 0);
                ++v[ci];
            }
        });
    }
    if (filterEnabled_) {
        if (want.size() != presence_.size()) {
            throw std::logic_error(
                "index check: presence filter tracks " +
                std::to_string(presence_.size()) + " addresses, scan "
                "found " + std::to_string(want.size()));
        }
        for (const auto& [la, counts] : want) {
            auto it = presence_.find(la);
            if (it == presence_.end()) {
                throw std::logic_error(
                    "index check: cached address missing from the "
                    "presence filter");
            }
            std::uint64_t mask = 0;
            for (std::size_t ci = 0; ci < counts.size(); ++ci)
                if (counts[ci] != 0)
                    mask |= std::uint64_t{1} << ci;
            if (it->second.mask != mask) {
                throw std::logic_error(
                    "index check: presence mask mismatch");
            }
            for (std::size_t ci = 0; ci < counts.size(); ++ci) {
                if (it->second.count[ci] != counts[ci]) {
                    throw std::logic_error(
                        "index check: presence count mismatch");
                }
            }
        }
    }
    // Registries may hold stale (no longer interesting) entries, but
    // every entry must be flagged and unique so lazy purging stays
    // linear.
    for (auto& c : caches_) {
        std::unordered_set<const Line*> seen;
        for (const Line* l : c.registry()) {
            if (!l->bk.onRegistry) {
                throw std::logic_error(
                    "index check: unflagged registry entry in " +
                    c.name());
            }
            if (!seen.insert(l).second) {
                throw std::logic_error(
                    "index check: duplicate registry entry in " +
                    c.name());
            }
        }
    }
}

} // namespace hmtx::sim
