/**
 * @file
 * Machine configuration (Table 2 of the paper) and HMTX feature knobs.
 */

#ifndef HMTX_SIM_CONFIG_HH
#define HMTX_SIM_CONFIG_HH

#include <cstdint>
#include <stdexcept>

#include "core/tx_policy.hh"
#include "core/types.hh"

namespace hmtx::sim
{

/**
 * Coherence interconnect model (§8 future work). The snoopy bus of
 * the evaluated design serializes every coherence transaction; the
 * directory fabric resolves misses through address-interleaved
 * directory banks with point-to-point hops, so independent
 * transactions proceed concurrently and the protocol scales to more
 * cores. The HMTX version rules are identical on both fabrics.
 */
enum class Fabric
{
    SnoopBus,
    Directory,
};

/**
 * Event-loop engine driving the simulation (DESIGN.md §11). Both
 * engines produce bit-identical results; the parallel engine stages
 * workload code on host worker threads while the protocol state is
 * still mutated in exact event order on the coordinator.
 */
enum class SimEngine
{
    Sequential,
    Parallel,
};

/**
 * Architectural configuration, defaulted to Table 2: a 4-core 2.0 GHz
 * machine with 64 KB 8-way L1s (2-cycle), a shared 32 MB 32-way L2
 * (40-cycle), 64 B lines, MOESI, and 200-cycle memory.
 *
 * The HMTX knobs correspond to the design options the paper discusses:
 * SLA (§5.1), lazy vs. naive commit/abort processing (§5.3/§4.4), VID
 * width (§4.5/§4.6), and the Vachharajani copy-on-read policy the
 * related-work section argues against (§7.1).
 */
struct MachineConfig
{
    /** Number of cores (Table 2 evaluates 4). */
    unsigned numCores = 4;

    /** L1 data cache capacity in KB. */
    unsigned l1SizeKB = 64;
    /** L1 associativity. */
    unsigned l1Assoc = 8;
    /** L1 hit latency in cycles. */
    Cycles l1Latency = 2;

    /** Shared L2 capacity in KB (32 MB in Table 2). */
    unsigned l2SizeKB = 32 * 1024;
    /** L2 associativity. */
    unsigned l2Assoc = 32;
    /** L2 / cache-to-cache transfer latency in cycles. */
    Cycles l2Latency = 40;

    /** Main memory latency in cycles. */
    Cycles memLatency = 200;

    /** Bus occupancy per coherence transaction, in cycles. */
    Cycles busCycles = 4;

    /** Interconnect model; the paper evaluates the snoopy bus. */
    Fabric fabric = Fabric::SnoopBus;
    /** Directory fabric: number of address-interleaved banks. */
    unsigned dirBanks = 8;
    /** Directory fabric: bank lookup/occupancy cycles. */
    Cycles dirLookup = 12;
    /** Directory fabric: one network hop, cycles. */
    Cycles dirHop = 14;

    /**
     * Unbounded speculative sets (§8 future work / [27]): speculative
     * versions evicted from the last-level cache spill into a
     * memory-resident overflow table instead of aborting, and refill
     * on demand.
     */
    bool unboundedSpecSets = false;

    /** Trace categories enabled at construction (sim/trace.hh). */
    std::uint32_t traceFlags = 0;

    /** VID field width m; the evaluated design uses 6 (§4.5). */
    unsigned vidBits = 6;

    /** Master enable for the HMTX extensions. */
    bool hmtxEnabled = true;

    /**
     * Speculative load acknowledgments (§5.1). When disabled,
     * wrong-path loads mark lines with their VID and can cause false
     * misspeculation, as in all prior systems.
     */
    bool slaEnabled = true;

    /**
     * Transaction-mode axis (core/tx_policy.hh). LazyHmtx is the
     * paper's O(1) watermark commit (§5.3); EagerHmtx models the naive
     * §4.4 scheme where every commit/abort walks all speculative lines
     * and charges time per line; BestEffort and LimitedSet are the
     * capacity-bounded HTM variants (serialized fallback after N
     * aborts / first-K-lines speculative sets).
     */
    TxMode txMode = TxMode::LazyHmtx;

    /** BestEffort: speculative attempts before arming the fallback. */
    unsigned btxMaxRetries = 2;

    /** BestEffort: cumulative-abort threshold collapsing the retry
     *  budget to one attempt (0 = disabled). */
    unsigned btxAbortThreshold = 0;

    /** LimitedSet: max distinct speculative lines per VID. */
    unsigned limitedSetK = 4;

    /**
     * Vachharajani-style policy that creates a new cache line version
     * on every read from a new VID (§7.1 ablation). HMTX proper only
     * copies on speculative writes.
     */
    bool copyOnRead = false;

    /** Wrong-path loads injected per branch misprediction. */
    unsigned wrongPathLoads = 2;

    /** Pipeline refill penalty of a branch misprediction, in cycles. */
    Cycles mispredictPenalty = 12;

    /** Depth of the per-core SLA buffer (§5.1). */
    unsigned slaCapacity = 32;

    /** Cycles charged per line processed by the naive commit walk. */
    Cycles eagerPerLineCycles = 2;

    /**
     * Abort-recovery budget: the runtime raises an error once a run
     * recovers this many times (false-misspeculation livelock, the
     * failure mode §5.1 exists to prevent).
     */
    std::uint64_t maxRecoveries = 1u << 20;

    /**
     * Reference mode for differential tests and benchmarks: bypass the
     * address presence filter and the per-cache spec-line registry and
     * run every snoop/bulk walk as a full scan, exactly like the
     * pre-index simulator. Simulated behaviour (timings, stats, memory
     * images) is identical either way; only the simulator's own
     * wall-clock cost changes.
     */
    bool forceFullScan = false;

    /**
     * Debug aid: after every commit/abortAll/vidReset/flush, rebuild
     * the index structures from a full scan and throw std::logic_error
     * on any mismatch (see CacheSystem::verifyIndexes()). Expensive;
     * meant for tests.
     */
    bool indexCrossCheck = false;

    /**
     * Sharded simulation engine (simulator-side, not architectural):
     * requested number of address-hashed banks the directory slices,
     * main memory, the overflow table, and the per-cache spec-line
     * registries are partitioned into. Bulk protocol operations
     * (commit walks, global aborts, VID resets, flushes) then run
     * bank-parallel behind deterministic epoch barriers. The value is
     * clamped to the largest power of two that divides both cache set
     * counts (see shardBanks()), so a cache slot's set decides its
     * bank once and for all and slots never migrate between banks.
     * 1 = classic single-banked engine. Simulated behaviour (stats,
     * timings, memory images) is bit-identical for every value.
     */
    unsigned shards = 1;

    /**
     * Worker threading for the sharded engine: 0 = auto (dedicated
     * worker threads when more than one bank is configured and the
     * host has more than one CPU), 1 = always inline on the calling
     * thread (banked data structures, sequential walks), >=2 = force
     * dedicated worker threads (one per bank) regardless of host CPU
     * count — used by tests to exercise the concurrent paths.
     */
    unsigned shardThreads = 0;

    /**
     * Event-loop engine (DESIGN.md §11). Sequential is the classic
     * single-threaded loop; Parallel stages per-core workload code on
     * host workers inside a same-tick dispatch window and retires the
     * resulting protocol accesses in exact event order, so results are
     * bit-identical for either value.
     */
    SimEngine engine = SimEngine::Sequential;

    /**
     * Worker threading for the parallel engine, mirroring the
     * shardThreads convention: 0 = auto (worker threads when the host
     * has more than one CPU, clamped to min(numCores, host CPUs)),
     * 1 = always inline on the coordinator thread (same staging and
     * retirement order, no host threads), >=2 = force that many worker
     * threads (clamped to numCores) regardless of host CPU count —
     * used by tests to exercise the concurrent paths.
     */
    unsigned engineThreads = 0;

    /**
     * Zero-event hit fast path (DESIGN.md §13, simulator-side): a
     * guarded inline path retires an access without probing the full
     * protocol machinery — and, under the runtime, without scheduling
     * an event — when the local L1 copy is already in the exact
     * required state for the requesting VID. Eligibility is validated
     * by per-line generation tags that every protocol action on the
     * line (and every bulk operation) invalidates, so simulated
     * behaviour (stats, timings, memory images) is bit-identical with
     * the fast path on or off. Off by default; benches and tests
     * enable it explicitly.
     */
    bool fastPath = false;

    /**
     * Commute-aware apply for the parallel engine (DESIGN.md §13):
     * when the ready prefix of staged intents contains several
     * fast-path-eligible accesses on pairwise-distinct banks (the §9
     * address partition), the coordinator applies their data halves
     * concurrently on the existing host workers instead of strictly
     * one at a time; any intent that misses, conflicts, or shares a
     * bank with an earlier one falls back to the exact sequential
     * order. Inert unless fastPath is set and engine == Parallel.
     */
    bool applyCommute = true;

    /** Largest usable VID for this configuration. */
    Vid maxVid() const { return (Vid{1} << vidBits) - 1; }

    /** The TxPolicy knobs this configuration selects. */
    TxPolicyConfig
    txPolicy() const
    {
        return {txMode, btxMaxRetries, btxAbortThreshold, limitedSetK};
    }

    /**
     * Rejects contradictory or unsupported knob combinations with a
     * descriptive std::invalid_argument. CacheSystem calls this at
     * construction, so a bad config fails loudly instead of silently
     * simulating something other than what was asked for.
     */
    void
    validate() const
    {
        validateTxPolicyConfig(txPolicy());
        const bool bounded = txMode == TxMode::BestEffort ||
            txMode == TxMode::LimitedSet;
        if (bounded && unboundedSpecSets)
            throw std::invalid_argument(
                "MachineConfig: unboundedSpecSets contradicts the "
                "capacity-bounded txMode (best-effort / limited-set "
                "exist to model machines *without* the overflow "
                "table); disable one of the two");
        if (bounded && engine == SimEngine::Parallel)
            throw std::invalid_argument(
                "MachineConfig: engine=Parallel is not supported with "
                "the best-effort/limited-set modes: the staged engine "
                "pre-issues lane accesses that the fallback lock and "
                "the K bound must observe in exact order; use the "
                "sequential engine for these cells");
    }

    /** Number of sets in the L1. */
    unsigned
    l1Sets() const
    {
        return l1SizeKB * 1024 / kLineBytes / l1Assoc;
    }

    /** Number of sets in the L2. */
    unsigned
    l2Sets() const
    {
        return l2SizeKB * 1024 / kLineBytes / l2Assoc;
    }

    /**
     * Effective bank count of the sharded engine: the largest power of
     * two that is <= max(shards, 1) and divides both l1Sets() and
     * l2Sets(). The divisibility constraint pins every cache set — and
     * therefore every slot — to one bank for the lifetime of the run,
     * which is what keeps the per-bank registries stable under slot
     * reuse.
     */
    unsigned
    shardBanks() const
    {
        unsigned b = 1;
        const unsigned want = shards == 0 ? 1 : shards;
        while (b * 2 <= want && l1Sets() % (b * 2) == 0 &&
               l2Sets() % (b * 2) == 0) {
            b *= 2;
        }
        return b;
    }
};

} // namespace hmtx::sim

#endif // HMTX_SIM_CONFIG_HH
