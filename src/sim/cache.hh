/**
 * @file
 * Set-associative cache storage holding versioned lines.
 */

#ifndef HMTX_SIM_CACHE_HH
#define HMTX_SIM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/spec_state.hh"
#include "core/types.hh"
#include "core/version_rules.hh"
#include "sim/memory.hh"

namespace hmtx::sim
{

/**
 * One physical cache line slot. Multiple versions of the same address
 * may occupy slots of the same set, distinguished by their VersionTag
 * (§4.1). Invalid slots are reused rather than erased so references
 * into a set stay valid across protocol actions.
 */
struct Line
{
    /** Line-aligned base address (valid only when state != Invalid). */
    Addr base = 0;
    /** Coherence state, including the speculative states. */
    State state = State::Invalid;
    /** (modVID, highVID) version tags (§4.1). */
    VersionTag tag{};
    /** True when the data differs from main memory. */
    bool dirty = false;
    /**
     * True when peer caches may hold S-S copies of this version; a
     * write-in-place must then broadcast to invalidate them.
     */
    bool mayHaveSharers = false;
    /**
     * For S-S lines only: this is a copy of the *latest* version of
     * the line (its owner is S-M/S-E), so it serves any request VID
     * >= modVID and records the highest local reader in highVID —
     * that is what makes sharing read-only speculative data efficient
     * across transactions (§4.1). Store broadcasts aggregate these
     * distributed read marks and supersede or invalidate the copies.
     * When false, an S-S line is a copy of a superseded version and
     * highVID is the usual coverage bound (hit iff mod <= a < high).
     */
    bool latestCopy = false;
    /**
     * True when highVID was last raised by a wrong-path load (only
     * possible with SLAs disabled); used to classify false aborts.
     */
    bool highFromWrongPath = false;
    /** LRU timestamp. */
    Tick lastUse = 0;
    /** Line contents. */
    LineData data{};
};

/**
 * Dumb set-associative storage: geometry, lookup and slot allocation.
 * All protocol intelligence lives in CacheSystem so the full snoopy
 * state is manipulated in one place.
 */
class Cache
{
  public:
    /**
     * @param name  for debugging/stat output (e.g. "L1.0", "L2")
     * @param sets  number of sets
     * @param assoc associativity (max versions+addresses per set)
     */
    Cache(std::string name, unsigned sets, unsigned assoc)
        : name_(std::move(name)), setCount_(sets), assoc_(assoc),
          sets_(sets)
    {}

    const std::string& name() const { return name_; }
    unsigned assoc() const { return assoc_; }
    unsigned setCount() const { return setCount_; }

    /** Set index for an address. */
    std::size_t
    setIndex(Addr a) const
    {
        return (a >> kLineShift) % setCount_;
    }

    /** All slots of the set containing @p a. */
    std::vector<Line>& set(Addr a) { return sets_[setIndex(a)]; }

    /** Applies @p fn to every slot in the cache. */
    template <typename Fn>
    void
    forEachLine(Fn&& fn)
    {
        for (auto& s : sets_)
            for (auto& l : s)
                fn(l);
    }

    /** Number of valid slots currently held. */
    std::size_t
    validLines() const
    {
        std::size_t n = 0;
        for (const auto& s : sets_)
            for (const auto& l : s)
                if (l.state != State::Invalid)
                    ++n;
        return n;
    }

    /**
     * Returns an empty slot in the set of @p a, growing the set up to
     * the associativity limit; returns nullptr when the set is full
     * (the caller must evict first).
     */
    Line*
    freeSlot(Addr a)
    {
        auto& s = set(a);
        // Reserve up front on first touch so growth never reallocates:
        // protocol code holds Line* across slot allocations in the
        // same set.
        if (s.capacity() < assoc_)
            s.reserve(assoc_);
        for (auto& l : s)
            if (l.state == State::Invalid)
                return &l;
        if (s.size() < assoc_) {
            s.emplace_back();
            return &s.back();
        }
        return nullptr;
    }

  private:
    std::string name_;
    unsigned setCount_;
    unsigned assoc_;
    std::vector<std::vector<Line>> sets_;
};

} // namespace hmtx::sim

#endif // HMTX_SIM_CACHE_HH
