/**
 * @file
 * Set-associative cache storage holding versioned lines.
 *
 * Storage is split into two planes per set (the SoA layout the sharded
 * engine scans): a contiguous *metadata* plane of compact Line records
 * (base/state/VID tags/flags — what every probe, snoop and bulk walk
 * reads) and a parallel *data* plane of 64-byte line payloads that only
 * actual data movement touches. A set probe therefore streams a few
 * host cache lines of metadata instead of striding through payload-
 * laden line objects.
 */

#ifndef HMTX_SIM_CACHE_HH
#define HMTX_SIM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/spec_state.hh"
#include "core/types.hh"
#include "core/version_rules.hh"
#include "sim/memory.hh"

namespace hmtx::sim
{

/** Cache id of a Line slot not owned by any Cache (e.g. a local copy). */
constexpr std::uint32_t kNoCacheId = 0xffffffffu;

/**
 * "No fast-path tag" sentinel for Line::fpLoadVid/fpStoreVid. Outside
 * the architectural VID range (VIDs are at most 2^vidBits - 1 and
 * vidBits is far below 32), so it can never equal a request VID.
 */
constexpr Vid kFpNoVid = ~Vid{0};

/**
 * Simulator-internal bookkeeping attached to each cache slot so the
 * index structures (CacheSystem's presence filter and the per-cache
 * spec/dirty registry) can be maintained incrementally. This is not
 * architectural state: it never influences simulated behaviour, only
 * how fast the simulator finds lines. It is deliberately *not* copied
 * by Line's copy operations — a slot's identity stays with the slot.
 */
struct LineBookkeeping
{
    /** Index of the owning Cache in CacheSystem::caches_. */
    std::uint32_t cacheId = kNoCacheId;
    /** True while this slot is counted in the presence filter. */
    bool present = false;
    /** True while this slot sits on the owning cache's *speculative*
     *  registry (lines in a spec state). */
    bool onSpecReg = false;
    /** True while this slot sits on the owning cache's *dirty*
     *  registry (valid lines holding data memory does not). */
    bool onDirtyReg = false;
    /** Address under which `present` was counted (may lag `base`). */
    Addr presentAddr = 0;
};

/**
 * One physical cache line slot's *metadata*. Multiple versions of the
 * same address may occupy slots of the same set, distinguished by
 * their VersionTag (§4.1). Invalid slots are reused rather than erased
 * so references into a set stay valid across protocol actions.
 *
 * The 64-byte payload lives in the owning set's parallel data plane
 * (Cache::dataOf); detached copies (overflow-table spills) carry their
 * payload separately.
 *
 * Copying a Line copies only the architectural payload; the `bk`
 * bookkeeping stays with the destination slot (see LineBookkeeping).
 */
struct Line
{
    /** Line-aligned base address (valid only when state != Invalid). */
    Addr base = 0;
    /** Coherence state, including the speculative states. */
    State state = State::Invalid;
    /** True when the data differs from main memory. */
    bool dirty = false;
    /**
     * True when peer caches may hold S-S copies of this version; a
     * write-in-place must then broadcast to invalidate them.
     */
    bool mayHaveSharers = false;
    /**
     * For S-S lines only: this is a copy of the *latest* version of
     * the line (its owner is S-M/S-E), so it serves any request VID
     * >= modVID and records the highest local reader in highVID —
     * that is what makes sharing read-only speculative data efficient
     * across transactions (§4.1). Store broadcasts aggregate these
     * distributed read marks and supersede or invalidate the copies.
     * When false, an S-S line is a copy of a superseded version and
     * highVID is the usual coverage bound (hit iff mod <= a < high).
     */
    bool latestCopy = false;
    /**
     * True when highVID was last raised by a wrong-path load (only
     * possible with SLAs disabled); used to classify false aborts.
     */
    bool highFromWrongPath = false;
    /** (modVID, highVID) version tags (§4.1). */
    VersionTag tag{};
    /**
     * Read/write-set recording marks (simulator-side dedup, not
     * architectural): the last VID whose read (resp. write) of this
     * line was entered into the per-VID set accounting, valid only
     * while `rwGen` matches CacheSystem's current LC generation (the
     * generation bumps on every commit/abort/VID reset). Lets the
     * per-access hot path skip the hash-set insert for the common
     * re-touch of a line the transaction already recorded.
     */
    Vid rwReadVid = kNonSpecVid;
    Vid rwWriteVid = kNonSpecVid;
    std::uint32_t rwGen = 0;
    /**
     * Zero-event fast-path tags (simulator-side, DESIGN.md §13): the
     * VIDs whose last load (resp. store) of this line went through the
     * full protocol path and left the line in a state where an
     * identical re-access is a pure L1 hit with no protocol side
     * effects. Valid only while `fpGen` matches CacheSystem's fast-path
     * generation; any protocol mutation of the line clears fpGen, and
     * every bulk operation bumps the global generation, so a stale tag
     * can never satisfy an access the slow path would treat
     * differently. kFpNoVid means "no tag": VID 0 is a legitimate
     * (non-speculative) request VID, so the absent-tag sentinel must
     * live outside the architectural VID range.
     */
    Vid fpLoadVid = kFpNoVid;
    Vid fpStoreVid = kFpNoVid;
    std::uint64_t fpGen = 0;
    /** LRU timestamp. */
    Tick lastUse = 0;
    /** Index bookkeeping; slot identity, excluded from copies. */
    LineBookkeeping bk{};

    Line() = default;
    Line(const Line& o) { assignPayload(o); }
    Line(Line&& o) noexcept { assignPayload(o); }

    Line&
    operator=(const Line& o)
    {
        if (this != &o)
            assignPayload(o);
        return *this;
    }

    Line&
    operator=(Line&& o) noexcept
    {
        if (this != &o)
            assignPayload(o);
        return *this;
    }

  private:
    void
    assignPayload(const Line& o)
    {
        base = o.base;
        state = o.state;
        tag = o.tag;
        dirty = o.dirty;
        mayHaveSharers = o.mayHaveSharers;
        latestCopy = o.latestCopy;
        highFromWrongPath = o.highFromWrongPath;
        rwReadVid = o.rwReadVid;
        rwWriteVid = o.rwWriteVid;
        rwGen = o.rwGen;
        // Fast-path tags stay with the *protocol action* that planted
        // them, never with the bytes: a copied/moved line (allocation,
        // eviction migration, spill refill) starts untagged, so slot
        // reuse can never resurrect a stale tag.
        fpLoadVid = kFpNoVid;
        fpStoreVid = kFpNoVid;
        fpGen = 0;
        lastUse = o.lastUse;
    }
};

/**
 * One set's two storage planes. `lines[i]`'s payload is `data[i]`;
 * the vectors grow in lockstep (up to the associativity limit) so
 * pointers into both stay stable.
 */
struct LineSet
{
    std::vector<Line> lines;
    std::vector<LineData> data;
};

/**
 * Dumb set-associative storage: geometry, lookup and slot allocation.
 * All protocol intelligence lives in CacheSystem so the full snoopy
 * state is manipulated in one place.
 */
class Cache
{
  public:
    /**
     * @param name  for debugging/stat output (e.g. "L1.0", "L2")
     * @param sets  number of sets
     * @param assoc associativity (max versions+addresses per set)
     * @param id    index of this cache in its CacheSystem (stamped on
     *              every slot so index maintenance can find the owner)
     */
    Cache(std::string name, unsigned sets, unsigned assoc,
          std::uint32_t id = kNoCacheId)
        : name_(std::move(name)), id_(id), setCount_(sets),
          assoc_(assoc), sets_(sets), specRegs_(1), dirtyRegs_(1)
    {}

    const std::string& name() const { return name_; }
    std::uint32_t id() const { return id_; }
    unsigned assoc() const { return assoc_; }
    unsigned setCount() const { return setCount_; }

    /**
     * Partitions the registry into @p banks address-hashed banks for
     * the sharded engine. @p banks must be a power of two dividing the
     * set count — then a set (and so a slot, whatever address it is
     * reused for) belongs to exactly one bank forever, and bank-local
     * walks may run concurrently. Call before any line turns
     * interesting.
     */
    void
    setBanks(unsigned banks)
    {
        if (banks < 1 || setCount_ % banks != 0 ||
            (banks & (banks - 1)) != 0) {
            banks = 1;
        }
        specRegs_.assign(banks, {});
        dirtyRegs_.assign(banks, {});
        bankMask_ = banks - 1;
    }

    /** Number of registry banks. */
    unsigned bankCount() const { return bankMask_ + 1; }

    /** Bank owning the set of @p a (== bank owning the slot). */
    unsigned
    bankOf(Addr a) const
    {
        return static_cast<unsigned>((a >> kLineShift) & bankMask_);
    }

    /**
     * True when @p l needs to be visited by *some* bulk protocol walk
     * (commit/abort/VID-reset/flush): it is speculative in some way or
     * holds data memory does not. Clean non-speculative lines are
     * no-ops for all of those walks. This is the union of the two
     * registry classes below; the full-scan fallback and the
     * invariant checks still use it.
     */
    static bool
    interesting(const Line& l)
    {
        return l.state != State::Invalid && (isSpec(l.state) || l.dirty);
    }

    /**
     * Registry class 1: lines in a speculative state. The
     * commit/abort/VID-reset walks act *only* on these — a dirty
     * committed line is a no-op for all three — so keeping them on
     * their own registry makes those walks scale with the VID
     * window's speculative footprint instead of the dirty working
     * set (which a serving workload keeps resident for the whole
     * run).
     */
    static bool
    specInteresting(const Line& l)
    {
        return l.state != State::Invalid && isSpec(l.state);
    }

    /**
     * Registry class 2: valid lines holding data memory does not.
     * Only the region-boundary flush needs these; a line that is both
     * spec and dirty sits on both registries.
     */
    static bool
    dirtyInteresting(const Line& l)
    {
        return l.state != State::Invalid && l.dirty;
    }

    /**
     * Puts @p l on this cache's class registries of interesting lines
     * (the ORB analog, §4.4) — the spec registry if it is in a
     * speculative state, the dirty registry if it holds unwritten
     * data — if it is not already there. Slots are never removed
     * eagerly; the walks purge stale entries lazily. @p l must be a
     * slot of this cache. Entries land on the bank owning the slot's
     * set, so concurrent bank-local walks touch disjoint registry
     * storage.
     */
    void
    noteInteresting(Line& l)
    {
        if (isSpec(l.state) && !l.bk.onSpecReg) {
            l.bk.onSpecReg = true;
            specRegs_[bankOf(l.base)].push_back(&l);
        }
        if (l.dirty && l.state != State::Invalid && !l.bk.onDirtyReg) {
            l.bk.onDirtyReg = true;
            dirtyRegs_[bankOf(l.base)].push_back(&l);
        }
    }

    /**
     * Applies @p fn to every speculative line in bank @p b, dropping
     * registry entries that went stale since they were added. Entries
     * whose line @p fn itself retires (e.g. a commit walk reconciling
     * a line to non-spec) are also dropped, so repeated walks stay
     * proportional to live speculative state. Safe to run
     * concurrently for distinct banks as long as @p fn itself only
     * touches bank-local state. @p fn may re-enlist the line on the
     * *dirty* registry (via noteInteresting) but must not make a
     * non-spec line speculative.
     */
    template <typename Fn>
    void
    forEachSpecInBank(unsigned b, Fn&& fn)
    {
        walkReg(specRegs_[b], &specInteresting,
                &LineBookkeeping::onSpecReg, fn);
    }

    /**
     * Applies @p fn to every dirty valid line in bank @p b, with the
     * same lazy-purge discipline as forEachSpecInBank(). Lines that
     * are both spec and dirty appear here too — a walk needing the
     * union (flush) visits both registries and must tolerate seeing
     * such a line twice.
     */
    template <typename Fn>
    void
    forEachDirtyInBank(unsigned b, Fn&& fn)
    {
        walkReg(dirtyRegs_[b], &dirtyInteresting,
                &LineBookkeeping::onDirtyReg, fn);
    }

    /** Current registry lengths, stale entries and dual-class
     *  duplicates included (diagnostics). */
    std::size_t
    registrySize() const
    {
        std::size_t n = 0;
        for (const auto& r : specRegs_)
            n += r.size();
        for (const auto& r : dirtyRegs_)
            n += r.size();
        return n;
    }

    /** Applies @p fn(const Line*) to every raw spec-registry entry,
     *  banks in ascending order (index cross-check). */
    template <typename Fn>
    void
    forEachSpecRegistryEntry(Fn&& fn) const
    {
        for (const auto& r : specRegs_)
            for (const Line* l : r)
                fn(l);
    }

    /** Dirty-registry analog of forEachSpecRegistryEntry(). */
    template <typename Fn>
    void
    forEachDirtyRegistryEntry(Fn&& fn) const
    {
        for (const auto& r : dirtyRegs_)
            for (const Line* l : r)
                fn(l);
    }

    /** Set index for an address. */
    std::size_t
    setIndex(Addr a) const
    {
        return (a >> kLineShift) % setCount_;
    }

    /** Both planes of the set containing @p a. */
    LineSet& set(Addr a) { return sets_[setIndex(a)]; }

    /**
     * Payload of cache-resident line @p l (which must be a slot of
     * this cache, with its base set).
     */
    LineData&
    dataOf(Line& l)
    {
        LineSet& s = sets_[setIndex(l.base)];
        return s.data[static_cast<std::size_t>(&l - s.lines.data())];
    }
    const LineData&
    dataOf(const Line& l) const
    {
        const LineSet& s = sets_[setIndex(l.base)];
        return s.data[static_cast<std::size_t>(&l - s.lines.data())];
    }

    /** Applies @p fn to every metadata slot in the cache. */
    template <typename Fn>
    void
    forEachLine(Fn&& fn)
    {
        for (auto& s : sets_)
            for (auto& l : s.lines)
                fn(l);
    }

    /**
     * Applies @p fn to every metadata slot whose set belongs to bank
     * @p b (the full-scan analog of the registry walks). Because
     * the bank count divides the set count, this visits sets
     * b, b+banks, b+2*banks, ...
     */
    template <typename Fn>
    void
    forEachLineInBank(unsigned b, Fn&& fn)
    {
        const unsigned step = bankCount();
        for (std::size_t si = b; si < sets_.size(); si += step)
            for (auto& l : sets_[si].lines)
                fn(l);
    }

    /** Number of valid slots currently held. */
    std::size_t
    validLines() const
    {
        std::size_t n = 0;
        for (const auto& s : sets_)
            for (const auto& l : s.lines)
                if (l.state != State::Invalid)
                    ++n;
        return n;
    }

    /**
     * Returns an empty slot in the set of @p a, growing the set up to
     * the associativity limit; returns nullptr when the set is full
     * (the caller must evict first).
     */
    Line*
    freeSlot(Addr a)
    {
        auto& s = set(a);
        // Reserve up front on first touch so growth never reallocates:
        // protocol code holds Line* across slot allocations in the
        // same set.
        if (s.lines.capacity() < assoc_) {
            s.lines.reserve(assoc_);
            s.data.reserve(assoc_);
        }
        for (auto& l : s.lines)
            if (l.state == State::Invalid)
                return &l;
        if (s.lines.size() < assoc_) {
            s.lines.emplace_back();
            s.data.emplace_back();
            s.lines.back().bk.cacheId = id_;
            return &s.lines.back();
        }
        return nullptr;
    }

  private:
    /**
     * Shared walk-and-purge body of the class registries: visits
     * every entry of @p reg still satisfying @p pred, dropping (and
     * unflagging via @p flag) entries that no longer do — before the
     * visit for entries gone stale since they were added, after it
     * for entries @p fn itself retires.
     */
    template <typename Pred, typename Fn>
    static void
    walkReg(std::vector<Line*>& reg, Pred pred,
            bool LineBookkeeping::* flag, Fn&& fn)
    {
        std::size_t i = 0;
        while (i < reg.size()) {
            Line& l = *reg[i];
            if (!pred(l)) {
                l.bk.*flag = false;
                reg[i] = reg.back();
                reg.pop_back();
                continue;
            }
            fn(l);
            if (!pred(l)) {
                l.bk.*flag = false;
                reg[i] = reg.back();
                reg.pop_back();
                continue;
            }
            ++i;
        }
    }

    std::string name_;
    std::uint32_t id_;
    unsigned setCount_;
    unsigned assoc_;
    std::vector<LineSet> sets_;
    /** Per-bank class registries of slots that were spec
     *  (resp. dirty) when last touched (lazily purged); single bank
     *  unless setBanks() ran. */
    std::vector<std::vector<Line*>> specRegs_;
    std::vector<std::vector<Line*>> dirtyRegs_;
    /** bankCount() - 1; bank of a set = setIndex & bankMask_. */
    unsigned bankMask_ = 0;
};

} // namespace hmtx::sim

#endif // HMTX_SIM_CACHE_HH
