/**
 * @file
 * Set-associative cache storage holding versioned lines.
 */

#ifndef HMTX_SIM_CACHE_HH
#define HMTX_SIM_CACHE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/spec_state.hh"
#include "core/types.hh"
#include "core/version_rules.hh"
#include "sim/memory.hh"

namespace hmtx::sim
{

/** Cache id of a Line slot not owned by any Cache (e.g. a local copy). */
constexpr std::uint32_t kNoCacheId = 0xffffffffu;

/**
 * Simulator-internal bookkeeping attached to each cache slot so the
 * index structures (CacheSystem's presence filter and the per-cache
 * spec/dirty registry) can be maintained incrementally. This is not
 * architectural state: it never influences simulated behaviour, only
 * how fast the simulator finds lines. It is deliberately *not* copied
 * by Line's copy operations — a slot's identity stays with the slot.
 */
struct LineBookkeeping
{
    /** Index of the owning Cache in CacheSystem::caches_. */
    std::uint32_t cacheId = kNoCacheId;
    /** True while this slot is counted in the presence filter. */
    bool present = false;
    /** True while this slot sits on the owning cache's registry. */
    bool onRegistry = false;
    /** Address under which `present` was counted (may lag `base`). */
    Addr presentAddr = 0;
};

/**
 * One physical cache line slot. Multiple versions of the same address
 * may occupy slots of the same set, distinguished by their VersionTag
 * (§4.1). Invalid slots are reused rather than erased so references
 * into a set stay valid across protocol actions.
 *
 * Copying a Line copies only the architectural payload; the `bk`
 * bookkeeping stays with the destination slot (see LineBookkeeping).
 */
struct Line
{
    /** Line-aligned base address (valid only when state != Invalid). */
    Addr base = 0;
    /** Coherence state, including the speculative states. */
    State state = State::Invalid;
    /** (modVID, highVID) version tags (§4.1). */
    VersionTag tag{};
    /** True when the data differs from main memory. */
    bool dirty = false;
    /**
     * True when peer caches may hold S-S copies of this version; a
     * write-in-place must then broadcast to invalidate them.
     */
    bool mayHaveSharers = false;
    /**
     * For S-S lines only: this is a copy of the *latest* version of
     * the line (its owner is S-M/S-E), so it serves any request VID
     * >= modVID and records the highest local reader in highVID —
     * that is what makes sharing read-only speculative data efficient
     * across transactions (§4.1). Store broadcasts aggregate these
     * distributed read marks and supersede or invalidate the copies.
     * When false, an S-S line is a copy of a superseded version and
     * highVID is the usual coverage bound (hit iff mod <= a < high).
     */
    bool latestCopy = false;
    /**
     * True when highVID was last raised by a wrong-path load (only
     * possible with SLAs disabled); used to classify false aborts.
     */
    bool highFromWrongPath = false;
    /** LRU timestamp. */
    Tick lastUse = 0;
    /** Line contents. */
    LineData data{};
    /** Index bookkeeping; slot identity, excluded from copies. */
    LineBookkeeping bk{};

    Line() = default;
    Line(const Line& o) { assignPayload(o); }
    Line(Line&& o) noexcept { assignPayload(o); }

    Line&
    operator=(const Line& o)
    {
        if (this != &o)
            assignPayload(o);
        return *this;
    }

    Line&
    operator=(Line&& o) noexcept
    {
        if (this != &o)
            assignPayload(o);
        return *this;
    }

  private:
    void
    assignPayload(const Line& o)
    {
        base = o.base;
        state = o.state;
        tag = o.tag;
        dirty = o.dirty;
        mayHaveSharers = o.mayHaveSharers;
        latestCopy = o.latestCopy;
        highFromWrongPath = o.highFromWrongPath;
        lastUse = o.lastUse;
        data = o.data;
    }
};

/**
 * Dumb set-associative storage: geometry, lookup and slot allocation.
 * All protocol intelligence lives in CacheSystem so the full snoopy
 * state is manipulated in one place.
 */
class Cache
{
  public:
    /**
     * @param name  for debugging/stat output (e.g. "L1.0", "L2")
     * @param sets  number of sets
     * @param assoc associativity (max versions+addresses per set)
     * @param id    index of this cache in its CacheSystem (stamped on
     *              every slot so index maintenance can find the owner)
     */
    Cache(std::string name, unsigned sets, unsigned assoc,
          std::uint32_t id = kNoCacheId)
        : name_(std::move(name)), id_(id), setCount_(sets),
          assoc_(assoc), sets_(sets)
    {}

    const std::string& name() const { return name_; }
    std::uint32_t id() const { return id_; }
    unsigned assoc() const { return assoc_; }
    unsigned setCount() const { return setCount_; }

    /**
     * True when @p l needs to be visited by the bulk protocol walks
     * (commit/abort/VID-reset/flush): it is speculative in some way or
     * holds data memory does not. Clean non-speculative lines are
     * no-ops for all of those walks.
     */
    static bool
    interesting(const Line& l)
    {
        return l.state != State::Invalid && (isSpec(l.state) || l.dirty);
    }

    /**
     * Puts @p l on this cache's registry of interesting lines (the ORB
     * analog, §4.4) if it is not already there. Slots are never
     * removed eagerly; forEachInteresting() purges stale entries
     * lazily. @p l must be a slot of this cache.
     */
    void
    noteInteresting(Line& l)
    {
        if (!l.bk.onRegistry) {
            l.bk.onRegistry = true;
            registry_.push_back(&l);
        }
    }

    /**
     * Applies @p fn to every interesting (spec or dirty) line in this
     * cache, dropping registry entries that went stale since they were
     * added. Entries whose line @p fn itself retires (e.g. a commit
     * walk reconciling a line to non-spec clean) are also dropped, so
     * repeated walks stay proportional to live speculative state.
     */
    template <typename Fn>
    void
    forEachInteresting(Fn&& fn)
    {
        std::size_t i = 0;
        while (i < registry_.size()) {
            Line& l = *registry_[i];
            if (!interesting(l)) {
                l.bk.onRegistry = false;
                registry_[i] = registry_.back();
                registry_.pop_back();
                continue;
            }
            fn(l);
            if (!interesting(l)) {
                l.bk.onRegistry = false;
                registry_[i] = registry_.back();
                registry_.pop_back();
                continue;
            }
            ++i;
        }
    }

    /** Current registry length, stale entries included (diagnostics). */
    std::size_t registrySize() const { return registry_.size(); }

    /** Raw registry entries, for the index cross-check. */
    const std::vector<Line*>& registry() const { return registry_; }

    /** Set index for an address. */
    std::size_t
    setIndex(Addr a) const
    {
        return (a >> kLineShift) % setCount_;
    }

    /** All slots of the set containing @p a. */
    std::vector<Line>& set(Addr a) { return sets_[setIndex(a)]; }

    /** Applies @p fn to every slot in the cache. */
    template <typename Fn>
    void
    forEachLine(Fn&& fn)
    {
        for (auto& s : sets_)
            for (auto& l : s)
                fn(l);
    }

    /** Number of valid slots currently held. */
    std::size_t
    validLines() const
    {
        std::size_t n = 0;
        for (const auto& s : sets_)
            for (const auto& l : s)
                if (l.state != State::Invalid)
                    ++n;
        return n;
    }

    /**
     * Returns an empty slot in the set of @p a, growing the set up to
     * the associativity limit; returns nullptr when the set is full
     * (the caller must evict first).
     */
    Line*
    freeSlot(Addr a)
    {
        auto& s = set(a);
        // Reserve up front on first touch so growth never reallocates:
        // protocol code holds Line* across slot allocations in the
        // same set.
        if (s.capacity() < assoc_)
            s.reserve(assoc_);
        for (auto& l : s)
            if (l.state == State::Invalid)
                return &l;
        if (s.size() < assoc_) {
            s.emplace_back();
            s.back().bk.cacheId = id_;
            return &s.back();
        }
        return nullptr;
    }

  private:
    std::string name_;
    std::uint32_t id_;
    unsigned setCount_;
    unsigned assoc_;
    std::vector<std::vector<Line>> sets_;
    /** Slots that were interesting when last touched (lazily purged). */
    std::vector<Line*> registry_;
};

} // namespace hmtx::sim

#endif // HMTX_SIM_CACHE_HH
