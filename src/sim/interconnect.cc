#include "sim/interconnect.hh"

#include <algorithm>
#include <vector>

namespace hmtx::sim
{

Interconnect::~Interconnect() = default;
DeliveryChooser::~DeliveryChooser() = default;

namespace
{

/** True for the all-cache broadcast notifications. */
bool
isBroadcast(FabricOp op)
{
    return op == FabricOp::GroupCommit || op == FabricOp::GroupAbort ||
        op == FabricOp::VidReset;
}

/**
 * The paper's evaluated fabric: one snoopy bus every coherence
 * transaction crosses. A broadcast occupies the bus for longer as the
 * machine grows — every cache must snoop and the responses must be
 * collected — so occupancy scales with the core count, the very
 * reason §8 moves to a directory.
 */
class SnoopBus final : public Interconnect
{
  public:
    SnoopBus(const MachineConfig& cfg, SysStats& stats)
        : cfg_(cfg), stats_(stats)
    {}

    const char* name() const override { return "snoop-bus"; }

    Cycles
    acquire(Tick now, Addr) override
    {
        Tick start = std::max(now, free_);
        free_ = start + occupancy();
        ++stats_.busTxns;
        return (start - now) + cfg_.busCycles;
    }

    Cycles
    post(Tick now, FabricOp op, Addr) override
    {
        if (op == FabricOp::StoreAggregate)
            return 0; // collected on the already-held bus
        free_ = std::max(free_, now) + occupancy();
        ++stats_.busTxns;
        return isBroadcast(op) ? cfg_.busCycles : 0;
    }

    Cycles transferLatency() const override { return cfg_.l2Latency; }

    Cycles
    minC2CLatency() const override
    {
        // Nothing crosses cores faster than one bus arbitration.
        return cfg_.busCycles;
    }

    void
    occupy(Tick now, Cycles cycles) override
    {
        // The naive §4.4 walk holds the bus, stalling every core's
        // misses for its duration.
        free_ = std::max(free_, now) + cycles;
    }

  private:
    /** Bus occupancy per snoop transaction (grows with core count). */
    Cycles
    occupancy() const
    {
        unsigned scale = std::max(1u, cfg_.numCores / 4);
        return cfg_.busCycles * scale;
    }

    const MachineConfig& cfg_;
    SysStats& stats_;
    Tick free_ = 0;
};

/**
 * §8 scaling fabric: address-interleaved directory banks with
 * point-to-point hops. Only transactions to the same bank serialize;
 * independent lines proceed concurrently, so the fabric keeps scaling
 * where the bus saturates.
 */
class DirectoryFabric final : public Interconnect
{
  public:
    DirectoryFabric(const MachineConfig& cfg, SysStats& stats)
        : cfg_(cfg), stats_(stats),
          bankFree_(cfg.dirBanks == 0 ? 1 : cfg.dirBanks, 0)
    {}

    const char* name() const override { return "directory"; }

    Cycles
    acquire(Tick now, Addr la) override
    {
        Tick& bank = bankOf(la);
        ++stats_.dirLookups;
        ++stats_.busTxns;
        // Delivery decision point (DESIGN.md §14): a request reaching
        // a busy bank may queue behind the in-flight work (FIFO, the
        // default) or overtake it on another virtual channel — the
        // bank then services it in the gap and its pending work slips
        // later. Point-to-point networks guarantee neither order;
        // both must be architecturally equivalent.
        if (now < bank && chooseDelivery(la, 2) == 1) {
            bank += cfg_.busCycles;
            return cfg_.dirLookup + cfg_.dirHop;
        }
        Tick start = std::max(now, bank);
        bank = start + cfg_.busCycles;
        return (start - now) + cfg_.dirLookup + cfg_.dirHop;
    }

    Cycles
    post(Tick now, FabricOp op, Addr la) override
    {
        if (op == FabricOp::StoreAggregate)
            return 0; // sharer list lives at the acquired bank
        Tick& bank = bankOf(la);
        ++stats_.dirLookups;
        ++stats_.busTxns;
        // One-way traffic admits the same overtake freedom as
        // acquire(), but the requester never stalls for it, so both
        // orders leave identical bank occupancy — no decision point.
        bank = std::max(bank, now) + cfg_.busCycles;
        return isBroadcast(op) ? cfg_.busCycles : 0;
    }

    Cycles
    transferLatency() const override
    {
        // Three-hop miss: requester -> directory -> owner ->
        // requester (the lookup itself is charged by acquire()).
        return 2 * cfg_.dirHop;
    }

    Cycles
    minC2CLatency() const override
    {
        // Any cross-core observation needs at least one hop to the
        // line's home directory bank.
        return cfg_.dirHop;
    }

    void
    occupy(Tick, Cycles) override
    {
        // No global medium to block: the eager walk proceeds in each
        // cache's controller without stalling fabric traffic.
    }

  private:
    Tick&
    bankOf(Addr la)
    {
        return bankFree_[(la >> kLineShift) % bankFree_.size()];
    }

    const MachineConfig& cfg_;
    SysStats& stats_;
    /** Per-bank next-free ticks. */
    std::vector<Tick> bankFree_;
};

} // namespace

std::unique_ptr<Interconnect>
makeInterconnect(const MachineConfig& cfg, SysStats& stats)
{
    if (cfg.fabric == Fabric::Directory)
        return std::make_unique<DirectoryFabric>(cfg, stats);
    return std::make_unique<SnoopBus>(cfg, stats);
}

} // namespace hmtx::sim
