/**
 * @file
 * Sleep-set DFS over the interleavings of a small program, each leaf
 * replayed through the differential runner (DESIGN.md §14).
 */

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <vector>

#include "check/explorer.hh"
#include "sim/cache_system.hh"
#include "sim/rng.hh"

namespace hmtx::check
{

namespace
{

bool
isAccess(OpKind k)
{
    switch (k) {
    case OpKind::Load:
    case OpKind::Store:
    case OpKind::NonSpecLoad:
    case OpKind::NonSpecStore:
    case OpKind::WrongPathLoad:
        return true;
    default:
        return false;
    }
}

/**
 * Replays forced delivery decisions and records how many decision
 * points the fabric consulted. Each matrix cell gets its own instance
 * (its own decision sequence); all instances of one replay share the
 * same forced vector, and decisions beyond it take the FIFO default.
 */
class RecordingChooser final : public sim::DeliveryChooser
{
  public:
    explicit RecordingChooser(const std::vector<unsigned>& forced)
        : forced_(forced)
    {}

    unsigned
    choose(Addr, unsigned n) override
    {
        const std::size_t i = count_++;
        if (i < forced_.size())
            return std::min(forced_[i], n - 1);
        return 0;
    }

    std::size_t decisions() const { return count_; }

  private:
    const std::vector<unsigned>& forced_;
    std::size_t count_ = 0;
};

class Explorer
{
  public:
    Explorer(const Schedule& prog, const ExploreConfig& cfg)
        : prog_(prog), cfg_(cfg)
    {
        unsigned maxCore = 0;
        for (const Op& op : prog.ops)
            maxCore = std::max(maxCore, unsigned(op.core));
        if (maxCore >= prog.cfg.numCores)
            throw std::invalid_argument(
                "explore: op core " + std::to_string(maxCore) +
                " outside the " + std::to_string(prog.cfg.numCores) +
                "-core machine");
        threads_.resize(prog.cfg.numCores);
        for (const Op& op : prog.ops)
            threads_[op.core].push_back(op);
        pos_.assign(threads_.size(), 0);
        prefix_.reserve(prog.ops.size());
        for (const Op& op : prog.ops)
            hasSlaOps_ = hasSlaOps_ || op.kind == OpKind::SlaConfirm ||
                op.kind == OpKind::SlaMismatch;
    }

    ExploreResult
    run()
    {
        dfs(std::vector<bool>(threads_.size(), false));
        return std::move(res_);
    }

  private:
    void
    dfs(const std::vector<bool>& sleep)
    {
        if (stop_)
            return;
        std::vector<unsigned> enabled;
        for (unsigned c = 0; c < threads_.size(); ++c)
            if (pos_[c] < threads_[c].size())
                enabled.push_back(c);
        if (enabled.empty()) {
            runLeaf();
            return;
        }
        // Godefroid sleep sets: a core still asleep here heads a
        // subtree whose every trace is already covered through an
        // explored sibling; waking happens below, when an executed op
        // is *dependent* with the sleeper's next op.
        std::vector<bool> sl = sleep;
        for (unsigned c : enabled) {
            if (cfg_.prune && sl[c]) {
                ++res_.stats.pruned;
                continue;
            }
            const Op& next = threads_[c][pos_[c]];
            std::vector<bool> childSleep(threads_.size(), false);
            if (cfg_.prune)
                for (unsigned d = 0; d < threads_.size(); ++d)
                    if (d != c && sl[d] &&
                        pos_[d] < threads_[d].size() &&
                        opsIndependent(threads_[d][pos_[d]], next,
                                       hasSlaOps_, cfg_.groupMask))
                        childSleep[d] = true;
            prefix_.push_back(next);
            ++pos_[c];
            dfs(childSleep);
            --pos_[c];
            prefix_.pop_back();
            if (stop_)
                return;
            sl[c] = true;
        }
    }

    void
    runLeaf()
    {
        if (res_.stats.explored >= cfg_.maxInterleavings) {
            res_.stats.budgetExhausted = true;
            stop_ = true;
            return;
        }
        ++res_.stats.explored;
        Schedule leaf;
        leaf.cfg = prog_.cfg;
        leaf.ops = prefix_;
        if (cfg_.deliveryPoints == 0) {
            replay(leaf, {}, nullptr);
            return;
        }
        // Branch over the first deliveryPoints directory delivery
        // decisions: the base replay runs all-FIFO and reports how
        // many points exist; every deeper prefix re-runs with one
        // decision flipped to "overtake". Each replay covers the
        // all-FIFO extension of its forced prefix, so this visits
        // every choice vector of the bounded tree exactly once.
        std::size_t seen = 0;
        replay(leaf, {}, &seen);
        res_.stats.deliveryPointsSeen += seen;
        deliveryDfs(leaf, {}, seen);
    }

    void
    deliveryDfs(const Schedule& leaf,
                const std::vector<unsigned>& forced, std::size_t seen)
    {
        const std::size_t depth =
            std::min<std::size_t>(seen, cfg_.deliveryPoints);
        for (std::size_t i = forced.size(); i < depth && !stop_; ++i) {
            std::vector<unsigned> f2 = forced;
            f2.resize(i + 1, 0);
            f2[i] = 1;
            std::size_t subSeen = 0;
            ++res_.stats.deliveryRuns;
            replay(leaf, f2, &subSeen);
            if (stop_)
                return;
            deliveryDfs(leaf, f2, subSeen);
        }
    }

    void
    replay(const Schedule& leaf, const std::vector<unsigned>& forced,
           std::size_t* decisionsOut)
    {
        std::vector<std::unique_ptr<RecordingChooser>> choosers;
        RunHooks hooks;
        hooks.onCell = [&](const char*, sim::CacheSystem& sys) {
            choosers.push_back(
                std::make_unique<RecordingChooser>(forced));
            sys.interconnect().setDeliveryChooser(
                choosers.back().get());
        };
        Coverage cov;
        Divergence d =
            runSchedule(leaf, &cov, cfg_.groupMask,
                        decisionsOut != nullptr ? &hooks : nullptr);
        if (decisionsOut != nullptr)
            for (const auto& ch : choosers)
                *decisionsOut =
                    std::max(*decisionsOut, ch->decisions());
        // Environmental-abort tripwire for the pruning argument: in a
        // limited-set-only pass the mandatory K-th-line aborts are
        // predicted (and accounted by the same cell), so only the
        // excess is environmental.
        std::uint64_t env = cov.capacityAborts;
        if (cfg_.groupMask == kGroupLtd)
            env = env > cov.limitedSetAborts
                ? env - cov.limitedSetAborts
                : 0;
        if (env != 0)
            ++res_.stats.envAborts;
        if (d.found) {
            res_.div = d;
            res_.witness = leaf;
            stop_ = true;
        }
    }

    const Schedule& prog_;
    const ExploreConfig& cfg_;
    std::vector<std::vector<Op>> threads_;
    std::vector<unsigned> pos_;
    std::vector<Op> prefix_;
    bool hasSlaOps_ = false;
    bool stop_ = false;
    ExploreResult res_;
};

} // namespace

bool
opsIndependent(const Op& a, const Op& b, bool hasSlaOps,
               unsigned groupMask)
{
    if (a.core == b.core)
        return false; // program order is binding
    // Bulk/global ops (commit, abort, VID reset, SLA acks) touch the
    // whole machine; never reorder around them.
    if (!isAccess(a.kind) || !isAccess(b.kind))
        return false;
    // Same line: the §4.1 tags, marks, and versions live per line.
    if (lineAddr(a.addr) == lineAddr(b.addr))
        return false;
    // Stores of either kind can raise a *global* abort (a §4.3
    // dependence violation, or non-speculative-under-speculative),
    // whose flush is visible on every other line.
    if (a.kind == OpKind::Store || a.kind == OpKind::NonSpecStore ||
        b.kind == OpKind::Store || b.kind == OpKind::NonSpecStore)
        return false;
    const bool aCp = a.kind == OpKind::Load; // correct-path spec load
    const bool bCp = b.kind == OpKind::Load;
    // Limited-set cells: a correct-path access past the K bound
    // raises a mandatory global capacity abort, so even a load's
    // order is visible machine-wide.
    if ((groupMask & kGroupLtd) && (aCp || bCp))
        return false;
    // Best-effort cells: every correct-path spec access advances the
    // fallback state machine (which access of LC+1 takes the lock).
    if ((groupMask & kGroupBtx) && aCp && bCp)
        return false;
    // Two correct-path loads may both enqueue deferred SLAs; explicit
    // SLA ops consume that queue in FIFO order.
    if (hasSlaOps && aCp && bCp)
        return false;
    // What remains: loads (spec, non-spec, wrong-path) to different
    // lines — per-line marks, per-word values, no policy coupling.
    return true;
}

ExploreResult
explore(const Schedule& program, const ExploreConfig& cfg)
{
    Explorer e(program, cfg);
    return e.run();
}

Schedule
generateProgram(std::uint64_t seed, unsigned cores, unsigned numOps)
{
    sim::Rng rng(seed * 0x9e3779b97f4a7c15ull +
                 0x94d049bb133111ebull);
    Schedule s;
    s.isProgram = true;
    FuzzConfig& c = s.cfg;
    c.numCores = std::max(2u, cores);
    c.l1KB = 1;
    c.l1Assoc = 2;
    c.l2KB = 8;
    c.l2Assoc = 8;
    // Mostly the paper's m=6 window; sometimes 4 bits so short
    // programs still meet the §4.6 wraparound machinery.
    c.vidBits = rng.chance(0.25) ? 4 : 6;
    c.unboundedSpecSets = false;
    c.slaEnabled = !rng.chance(0.25);
    for (unsigned& sh : c.shards)
        sh = 1;
    for (unsigned& t : c.shardThreads)
        t = 1;
    for (unsigned& t : c.engineThreads)
        t = 1;
    c.btxRetries = 1 + static_cast<unsigned>(rng.range(2));
    c.btxThreshold = 0;
    // Tiny K so the K-th-line boundary is inside a 4-8 op program.
    c.limitedK = 1 + static_cast<unsigned>(rng.range(3));
    c.fastPathMask =
        rng.chance(0.5) ? (1u << 10) - 1 : 0u;
    // The address pool is the opposite of the fuzzer's: 2-3 lines in
    // *distinct* L1 and L2 sets, far under every capacity bound, so
    // no environmental capacity abort can fire and the sleep-set
    // argument (§14) holds unconditionally.
    const unsigned nLines = 2 + (rng.chance(0.35) ? 1u : 0u);
    std::vector<Addr> pool;
    for (unsigned i = 0; i < nLines; ++i)
        pool.push_back(0x40000 + i * kLineBytes);
    auto pickAddr = [&] {
        Addr line = pool[rng.range(pool.size())];
        return line + (rng.chance(0.3) ? 8 : 0);
    };
    auto pickVidOff = [&] {
        return static_cast<std::uint8_t>(1 + rng.range(2) +
                                         (rng.chance(0.2) ? 1 : 0));
    };
    s.ops.reserve(numOps);
    while (s.ops.size() < numOps) {
        Op op;
        op.core = static_cast<std::uint8_t>(rng.range(c.numCores));
        op.vidOff = pickVidOff();
        op.size = 8;
        const std::uint64_t roll = rng.range(100);
        if (roll < 34) {
            op.kind = OpKind::Load;
            op.addr = pickAddr();
        } else if (roll < 60) {
            op.kind = OpKind::Store;
            op.addr = pickAddr();
            op.value = rng.next();
        } else if (roll < 74) {
            op.kind = OpKind::Commit;
        } else if (roll < 82) {
            op.kind = OpKind::NonSpecLoad;
            op.addr = pickAddr();
        } else if (roll < 88) {
            op.kind = OpKind::NonSpecStore;
            op.addr = pickAddr();
            op.value = rng.next();
        } else if (roll < 94) {
            op.kind = OpKind::WrongPathLoad;
            op.addr = pickAddr();
        } else if (roll < 97) {
            op.kind = OpKind::SlaConfirm;
        } else if (roll < 98) {
            op.kind = OpKind::SlaMismatch;
            op.value = 1 + rng.range(0xff);
        } else if (roll < 99) {
            op.kind = OpKind::AbortAll;
        } else {
            op.kind = OpKind::VidReset;
        }
        s.ops.push_back(op);
    }
    return s;
}

} // namespace hmtx::check
