/**
 * @file
 * The differential runner: golden model vs. the grouped 10-cell config
 * matrix. Each group (full-HMTX, best-effort, limited-set) runs the
 * schedule independently against its own golden model — commit modes
 * differ architecturally by design, so cross-cell comparison is only
 * meaningful within a group.
 */

#include <cstdio>
#include <deque>
#include <map>
#include <memory>
#include <set>
#include <thread>
#include <vector>

#include "check/differ.hh"
#include "check/golden.hh"
#include "sim/cache_system.hh"
#include "sim/parallel_engine.hh"
#include "sim/rng.hh"
#include "sim/task.hh"

namespace hmtx::check
{

namespace
{

/** Full-HMTX group: cells 0-3 drive the CacheSystem directly; cells
 *  4-5 route every scripted access through the parallel event engine
 *  (DESIGN.md §11) so the staged-retirement path faces the same fuzz
 *  pressure. */
constexpr int kCells = 6;
constexpr int kEngineCellBase = 4;

const char* const kCellNames[kCells] = {
    "bus/lazy",      "bus/eager",      "dir/lazy",
    "dir/eager",     "bus/lazy/peng",  "dir/eager/peng"};

const char*
groupName(unsigned g)
{
    switch (g) {
    case kGroupHmtx: return "hmtx";
    case kGroupBtx: return "btx";
    case kGroupLtd: return "ltd";
    default: return "?";
    }
}

/** Policy the golden model and the mode cells of @p group share. */
TxPolicyConfig
groupPolicy(const FuzzConfig& c, unsigned g)
{
    TxPolicyConfig pc;
    if (g == kGroupBtx) {
        pc.mode = TxMode::BestEffort;
        pc.btxMaxRetries = c.btxRetries;
        pc.btxAbortThreshold = c.btxThreshold;
    } else if (g == kGroupLtd) {
        pc.mode = TxMode::LimitedSet;
        pc.limitedSetK = c.limitedK;
    }
    return pc;
}

sim::MachineConfig
cellConfig(const FuzzConfig& c, int i)
{
    sim::MachineConfig mc;
    mc.numCores = c.numCores;
    mc.l1SizeKB = c.l1KB;
    mc.l1Assoc = c.l1Assoc;
    mc.l2SizeKB = c.l2KB;
    mc.l2Assoc = c.l2Assoc;
    mc.vidBits = c.vidBits;
    mc.unboundedSpecSets = c.unboundedSpecSets;
    mc.slaEnabled = c.slaEnabled;
    // Per-cell zero-event fast-path toggle (DESIGN.md §13): cells with
    // the bit clear run the classic event path, so cross-cell
    // comparison doubles as a fast-on vs fast-off differential.
    mc.fastPath = (c.fastPathMask >> i) & 1;
    if (i >= kEngineCellBase) {
        // Engine cells mirror the two matrix corners with the default
        // (unsharded) memory system; the variation under test is the
        // staged access path itself.
        mc.fabric = i == kEngineCellBase ? sim::Fabric::SnoopBus
                                         : sim::Fabric::Directory;
        mc.txMode = i == kEngineCellBase ? TxMode::LazyHmtx
                                         : TxMode::EagerHmtx;
        return mc;
    }
    mc.fabric = i < 2 ? sim::Fabric::SnoopBus : sim::Fabric::Directory;
    mc.txMode = (i % 2) == 0 ? TxMode::LazyHmtx
                             : TxMode::EagerHmtx;
    mc.shards = c.shards[i];
    mc.shardThreads = c.shardThreads[i];
    // One cell polices the incremental indexes after every bulk op;
    // another runs the reference full-scan path, so index bugs show up
    // as cross-cell divergence even between cross-checks.
    mc.indexCrossCheck = i == 0;
    mc.forceFullScan = i == 1;
    return mc;
}

/** Config for one {fabric} cell of a mode group (btx or ltd). */
sim::MachineConfig
modeCellConfig(const FuzzConfig& c, unsigned g, sim::Fabric f)
{
    sim::MachineConfig mc;
    mc.numCores = c.numCores;
    mc.l1SizeKB = c.l1KB;
    mc.l1Assoc = c.l1Assoc;
    mc.l2SizeKB = c.l2KB;
    mc.l2Assoc = c.l2Assoc;
    mc.vidBits = c.vidBits;
    // Bounded modes exist to cap speculative footprints; the config
    // layer rejects them with unbounded spec sets.
    mc.unboundedSpecSets = false;
    mc.slaEnabled = c.slaEnabled;
    mc.fabric = f;
    const TxPolicyConfig pc = groupPolicy(c, g);
    mc.txMode = pc.mode;
    mc.btxMaxRetries = pc.btxMaxRetries;
    mc.btxAbortThreshold = pc.btxAbortThreshold;
    mc.limitedSetK = pc.limitedSetK;
    // Bits 6-9 of the mask: the bounded modes gate the knob off again
    // internally, so this fuzzes that the gate really holds.
    const unsigned bit = 6 + (g == kGroupLtd ? 2 : 0) +
        (f == sim::Fabric::Directory ? 1 : 0);
    mc.fastPath = (c.fastPathMask >> bit) & 1;
    return mc;
}

/** Staging-worker policy for an engine cell (runtime convention:
 *  0 auto, 1 inline, >=2 forced, always clamped to the core count). */
unsigned
engineWorkers(unsigned cores, unsigned threads)
{
    const unsigned host =
        std::max(1u, std::thread::hardware_concurrency());
    if (threads == 1)
        return 0;
    if (threads == 0)
        return host > 1 ? std::min(cores, host) : 0;
    return std::min(cores, threads);
}

bool
usesAddr(OpKind k)
{
    switch (k) {
    case OpKind::Load:
    case OpKind::Store:
    case OpKind::NonSpecLoad:
    case OpKind::NonSpecStore:
    case OpKind::WrongPathLoad:
        return true;
    default:
        return false;
    }
}

std::uint64_t
sizeMask(unsigned size)
{
    return size >= 8 ? ~std::uint64_t{0}
                     : (std::uint64_t{1} << (8 * size)) - 1;
}

std::string
hex(std::uint64_t v)
{
    char buf[24];
    std::snprintf(buf, sizeof(buf), "0x%llx",
                  static_cast<unsigned long long>(v));
    return buf;
}

struct Cell;

/** Awaits one staged turn: the worker records where the lane resumes
 *  and the coordinator retires the staged intent at its event slot. */
struct StagedTurn
{
    sim::ParallelEngine* eng;
    std::uint32_t lane;
    bool await_ready() const noexcept { return false; }
    void
    await_suspend(std::coroutine_handle<> h) noexcept
    {
        eng->stageSuspend(lane, h);
    }
    void await_resume() const noexcept {}
};

struct Cell
{
    const char* name;
    sim::EventQueue eq;
    sim::CacheSystem sys;
    /** Engine cells only; null for the direct-drive cells. */
    std::unique_ptr<sim::ParallelEngine> eng;
    /** Per-access staging context (one scripted access in flight at a
     *  time): the apply callback needs the VID and wrong-path flag,
     *  and stashes the full AccessResult for the comparison. */
    Vid vid = 0;
    bool wrongPath = false;
    sim::AccessResult res{};

    Cell(const char* n, const sim::MachineConfig& mc,
         unsigned engineThreads, bool useEngine)
        : name(n), sys(eq, mc)
    {
        if (!useEngine)
            return;
        const Tick window = std::max<Cycles>(
            1, sys.interconnect().minC2CLatency());
        eng = std::make_unique<sim::ParallelEngine>(
            eq, mc.numCores,
            engineWorkers(mc.numCores, engineThreads), window);
        eng->setApply([this](std::uint32_t lane,
                             const sim::LaneIntent& in) {
            res = in.kind == sim::LaneIntent::Kind::Store
                ? sys.store(static_cast<CoreId>(lane), in.addr,
                            in.value, in.size, vid)
                : sys.load(static_cast<CoreId>(lane), in.addr,
                           in.size, vid, wrongPath);
            return sim::StagedResult{eq.curTick() + 1 + res.latency,
                                     res.value, res.aborted, vid};
        });
    }

    /**
     * One scripted access. Direct cells call the CacheSystem
     * synchronously; engine cells stage the access as a one-op
     * section and run the event loop, so the value flows through
     * dispatch -> worker staging -> in-order retirement.
     */
    sim::AccessResult
    access(bool isStore, CoreId core, Addr a, std::uint64_t v,
           unsigned size, Vid accessVid, bool wp = false)
    {
        if (!eng) {
            return isStore ? sys.store(core, a, v, size, accessVid)
                           : sys.load(core, a, size, accessVid, wp);
        }
        vid = accessVid;
        wrongPath = wp;
        sim::LaneIntent in;
        in.kind = isStore ? sim::LaneIntent::Kind::Store
                          : sim::LaneIntent::Kind::Load;
        in.addr = a;
        in.value = v;
        in.size = size;
        sim::Task<void> root = opRoot(core, in);
        root.start();
        eng->run();
        root.rethrow();
        return res;
    }

  private:
    sim::Task<void>
    opBody(std::uint32_t lane, sim::LaneIntent in)
    {
        eng->stageIntent(lane, in);
        co_await StagedTurn{eng.get(), lane};
    }

    sim::Task<void>
    opRoot(std::uint32_t lane, sim::LaneIntent in)
    {
        co_await sim::StagedSection(eng.get(), lane,
                                    opBody(lane, in));
    }
};

/** One pending deferred-mark acknowledgment (§5.1). */
struct PendingSla
{
    CoreId core;
    SlaEntry e;
};

class Runner
{
  public:
    Runner(const Schedule& s, unsigned group,
           const RunHooks* hooks = nullptr)
        : s_(s), gold_(s.cfg.slaEnabled, groupPolicy(s.cfg, group))
    {
        if (group == kGroupHmtx) {
            for (int i = 0; i < kCells; ++i) {
                const bool engine = i >= kEngineCellBase;
                cells_.push_back(std::make_unique<Cell>(
                    kCellNames[i], cellConfig(s.cfg, i),
                    engine ? s.cfg.engineThreads[i - kEngineCellBase]
                           : 1,
                    engine));
            }
        } else {
            const bool btx = group == kGroupBtx;
            cells_.push_back(std::make_unique<Cell>(
                btx ? "bus/btx" : "bus/ltd",
                modeCellConfig(s.cfg, group, sim::Fabric::SnoopBus), 1,
                false));
            cells_.push_back(std::make_unique<Cell>(
                btx ? "dir/btx" : "dir/ltd",
                modeCellConfig(s.cfg, group, sim::Fabric::Directory),
                1, false));
        }
        maxVid_ = cells_[0]->sys.config().maxVid();
        if (hooks != nullptr && hooks->onCell)
            for (auto& c : cells_)
                hooks->onCell(c->name, c->sys);
        seedMemory();
    }

    Divergence
    run(Coverage* cov, bool primary)
    {
        for (std::size_t i = 0; i < s_.ops.size() && !div_.found; ++i) {
            step(i);
            if (!div_.found && (i + 1) % 32 == 0)
                checkInvariants(i);
        }
        if (!div_.found)
            finalChecks();
        if (cov)
            accumulate(*cov, primary);
        return div_;
    }

  private:
    // --- divergence reporting ----------------------------------------

    void
    fail(std::size_t idx, std::string what)
    {
        if (div_.found)
            return;
        div_.found = true;
        div_.opIndex = idx;
        if (idx != static_cast<std::size_t>(-1)) {
            const Op& op = s_.ops[idx];
            what = "op#" + std::to_string(idx) + " " + describe(op) +
                   ": " + what;
        }
        div_.what = std::move(what);
    }

    // --- setup -------------------------------------------------------

    void
    seedMemory()
    {
        std::set<Addr> words;
        for (const Op& op : s_.ops)
            if (usesAddr(op.kind))
                words.insert(op.addr & ~Addr{7});
        for (Addr w : words) {
            sim::Rng r(w ^ 0x5bd1e995a967f2d3ull);
            std::uint64_t v = r.next();
            gold_.seed(w, v);
            for (auto& c : cells_)
                c->sys.memory().write(w, v, 8);
        }
    }

    // --- cross-cell execution ----------------------------------------

    /**
     * Runs @p fn on every cell; verifies the cells agree on the
     * AccessResult (minus latency), the abort-generation delta, the
     * capacity-abort delta, and lcVid. Returns false once diverged.
     * @p out receives cell 0's result; @p genDelta / @p capacity the
     * agreed abort deltas.
     */
    template <typename Fn>
    bool
    runAll(std::size_t idx, Fn&& fn, sim::AccessResult& out,
           std::uint64_t& genDelta, bool& capacity)
    {
        sim::AccessResult r0{};
        std::uint64_t gen0 = 0, cap0 = 0;
        for (std::size_t ci = 0; ci < cells_.size(); ++ci) {
            Cell& c = *cells_[ci];
            const std::uint64_t g = c.sys.abortGen();
            const std::uint64_t cap = c.sys.stats().capacityAborts;
            sim::AccessResult r;
            try {
                r = fn(c);
            } catch (const std::exception& ex) {
                fail(idx, std::string(c.name) + " threw: " + ex.what());
                return false;
            }
            const std::uint64_t gd = c.sys.abortGen() - g;
            const std::uint64_t cd =
                c.sys.stats().capacityAborts - cap;
            if (ci == 0) {
                r0 = r;
                gen0 = gd;
                cap0 = cd;
            } else if (gd != gen0 || cd != cap0) {
                fail(idx, std::string("abort disagreement: cell ") +
                         c.name + " gen+" + std::to_string(gd) +
                         " cap+" + std::to_string(cd) + ", cell " +
                         cells_[0]->name + " gen+" +
                         std::to_string(gen0) + " cap+" +
                         std::to_string(cap0));
                return false;
            } else if (r.value != r0.value ||
                       r.aborted != r0.aborted ||
                       r.needSla != r0.needSla ||
                       r.l1Hit != r0.l1Hit) {
                fail(idx,
                     std::string("result disagreement vs ") + c.name +
                         ": value " + hex(r0.value) + "/" +
                         hex(r.value) + " aborted " +
                         std::to_string(r0.aborted) + "/" +
                         std::to_string(r.aborted) + " needSla " +
                         std::to_string(r0.needSla) + "/" +
                         std::to_string(r.needSla) + " l1Hit " +
                         std::to_string(r0.l1Hit) + "/" +
                         std::to_string(r.l1Hit));
                return false;
            }
        }
        for (auto& c : cells_) {
            if (c->sys.lcVid() != cells_[0]->sys.lcVid()) {
                fail(idx, std::string("lcVid disagreement: ") +
                              c->name + "=" +
                              std::to_string(c->sys.lcVid()));
                return false;
            }
        }
        out = r0;
        genDelta = gen0;
        capacity = cap0 != 0;
        return true;
    }

    /**
     * Golden resync after real aborts. The flush itself is idempotent,
     * but the golden's TxPolicy counts consecutive aborts exactly as
     * every cell's does, so abortAll() must run once per real
     * abort-generation tick to keep the fallback state machines in
     * lockstep.
     */
    void
    syncAbort(std::uint64_t n = 1)
    {
        for (std::uint64_t i = 0; i < n; ++i)
            gold_.abortAll();
        pending_.clear();
    }

    /**
     * Classifies a real abort the golden did not predict: capacity
     * aborts are environmental and resync the golden; anything else is
     * a divergence. Returns false on divergence.
     */
    bool
    acceptEnvAbort(std::size_t idx, std::uint64_t gen, bool capacity,
                   const char* what)
    {
        if (!capacity) {
            fail(idx, std::string(what) +
                          ": abort not predicted by golden model and "
                          "no capacity abort recorded");
            return false;
        }
        syncAbort(gen);
        return true;
    }

    // --- op execution ------------------------------------------------

    void
    step(std::size_t idx)
    {
        const Op& op = s_.ops[idx];
        switch (op.kind) {
        case OpKind::Load:
        case OpKind::WrongPathLoad:
            doLoad(idx, op, op.kind == OpKind::WrongPathLoad);
            return;
        case OpKind::NonSpecLoad:
            doLoad(idx, op, false);
            return;
        case OpKind::Store:
        case OpKind::NonSpecStore:
            doStore(idx, op);
            return;
        case OpKind::Commit:
            doCommit(idx);
            return;
        case OpKind::AbortAll:
            doAbortAll(idx);
            return;
        case OpKind::VidReset:
            doVidReset(idx);
            return;
        case OpKind::SlaConfirm:
            doSlaOp(idx, 0);
            return;
        case OpKind::SlaMismatch:
            doSlaOp(idx, op.value ? op.value : 1);
            return;
        }
    }

    Vid
    vidFor(const Op& op) const
    {
        if (op.kind == OpKind::NonSpecLoad ||
            op.kind == OpKind::NonSpecStore)
            return kNonSpecVid;
        return cells_[0]->sys.lcVid() + op.vidOff;
    }

    void
    doLoad(std::size_t idx, const Op& op, bool wrongPath)
    {
        const Vid vid = vidFor(op);
        if (vid > maxVid_)
            return; // outside the VID window; skip
        ++executed_;
        // Mirror the cells' policy consultation. A serialized access
        // (best-effort fallback lock held by this VID) has full
        // non-speculative semantics; wrong-path loads consult the lock
        // passively, exactly as CacheSystem::load does.
        bool serialized = false;
        if (vid != kNonSpecVid)
            serialized = wrongPath ? gold_.policy().serializes(vid)
                                   : gold_.beginSpecAccess(vid);
        const bool ltdAbort = !serialized && !wrongPath &&
            vid != kNonSpecVid &&
            gold_.limitedSetWouldAbort(op.addr, vid);
        const Vid effVid = serialized ? kNonSpecVid : vid;
        std::uint64_t want = gold_.valueAt(op.addr, op.size, effVid);
        sim::AccessResult r;
        std::uint64_t gen = 0;
        bool capacity = false;
        if (!runAll(idx,
                    [&](Cell& c) {
                        return c.access(false, op.core, op.addr, 0,
                                        op.size, vid, wrongPath);
                    },
                    r, gen, capacity))
            return;
        if (ltdAbort) {
            // The limited-set predictor is deterministic: the cells
            // key the same decision off identically maintained line
            // sets, so the capacity abort is mandatory.
            if (gen == 0 || !capacity) {
                fail(idx, "golden predicted a limited-set capacity "
                          "abort (vid " + std::to_string(vid) +
                          "), load succeeded");
                return;
            }
            syncAbort(gen);
            return; // the abort consumed the access
        }
        if (gen != 0) {
            // Loads never violate a dependence; only environmental
            // (capacity) aborts are acceptable here.
            if (!acceptEnvAbort(idx, gen, capacity, "load"))
                return;
            if (r.aborted)
                return; // the flush consumed the access itself
            // The flush raced the access mid-flight (a victim fold
            // failed during allocation); the load then completed
            // against the post-abort state and became the first read
            // of the restarted transaction. Mirror it in the golden
            // model and re-derive the expected value post-flush.
            want = gold_.valueAt(op.addr, op.size, effVid);
        }
        if (r.value != want) {
            fail(idx, "load value " + hex(r.value) +
                          " != golden " + hex(want) + " (vid " +
                          std::to_string(vid) +
                          (serialized ? ", serialized)" : ")"));
            return;
        }
        gold_.applyLoad(op.addr, effVid, wrongPath);
        if (r.needSla && !wrongPath && vid != kNonSpecVid &&
            s_.cfg.slaEnabled) {
            pending_.push_back(
                {op.core, {op.addr, vid, r.value, op.size}});
        }
    }

    void
    doStore(std::size_t idx, const Op& op)
    {
        const Vid vid = vidFor(op);
        if (vid > maxVid_)
            return;
        ++executed_;
        const bool serialized =
            vid != kNonSpecVid && gold_.beginSpecAccess(vid);
        const bool ltdAbort = !serialized && vid != kNonSpecVid &&
            gold_.limitedSetWouldAbort(op.addr, vid);
        const Vid effVid = serialized ? kNonSpecVid : vid;
        const bool predictAbort =
            !ltdAbort && gold_.storeAborts(op.addr, effVid);
        sim::AccessResult r;
        std::uint64_t gen = 0;
        bool capacity = false;
        if (!runAll(idx,
                    [&](Cell& c) {
                        return c.access(true, op.core, op.addr,
                                        op.value, op.size, vid);
                    },
                    r, gen, capacity))
            return;
        if (ltdAbort) {
            if (gen == 0 || !capacity) {
                fail(idx, "golden predicted a limited-set capacity "
                          "abort (vid " + std::to_string(vid) +
                          "), store succeeded");
                return;
            }
            syncAbort(gen);
            return; // the abort consumed the store
        }
        if (gen != 0) {
            if (!capacity) {
                // A dependence abort: legal only if predicted. It
                // consumes a speculative store; a serialized
                // (fallback-holder) store retries internally after the
                // flush it raised and always completes — fold it into
                // the committed image below.
                if (!predictAbort) {
                    fail(idx, "store: abort not predicted by golden "
                              "model and no capacity abort recorded");
                    return;
                }
                syncAbort(gen);
                if (!serialized)
                    return;
            } else {
                // Environmental flush. If the store itself was
                // consumed, nothing was recorded. Otherwise it
                // completed against the post-abort state (where any
                // predicted dependence is gone too) — mirror it in the
                // golden model below.
                syncAbort(gen);
                if (r.aborted)
                    return;
            }
        } else if (predictAbort) {
            fail(idx, "golden predicted a dependence abort "
                      "(vid " + std::to_string(vid) +
                      (serialized ? ", serialized" : "") +
                      "), store succeeded");
            return;
        }
        gold_.applyStore(op.addr, op.value & sizeMask(op.size),
                         op.size, effVid);
    }

    /**
     * Confirms one pending SLA across cells. @p perturb != 0 models a
     * value-check mismatch (§5.1): the acknowledged value is skewed
     * before the cache re-verifies it. Returns false if the run
     * diverged *or* an abort consumed the speculative state (callers
     * drain-then-commit must skip the commit).
     */
    bool
    confirm(std::size_t idx, PendingSla p, std::uint64_t perturb)
    {
        SlaEntry e = p.e;
        if (perturb)
            e.value = (e.value + perturb) & sizeMask(e.size);
        const std::uint64_t want =
            gold_.valueAt(e.addr, e.size, e.vid);
        const bool predictMismatch = want != e.value;
        ++executed_;

        bool ok0 = false;
        std::uint64_t gen0 = 0, cap0 = 0;
        for (std::size_t ci = 0; ci < cells_.size(); ++ci) {
            Cell& c = *cells_[ci];
            const std::uint64_t g = c.sys.abortGen();
            const std::uint64_t cap = c.sys.stats().capacityAborts;
            bool ok;
            try {
                ok = c.sys.slaConfirm(p.core, e);
            } catch (const std::exception& ex) {
                fail(idx, std::string(c.name) + " threw: " + ex.what());
                return false;
            }
            const std::uint64_t gd = c.sys.abortGen() - g;
            const std::uint64_t cd =
                c.sys.stats().capacityAborts - cap;
            if (ci == 0) {
                ok0 = ok;
                gen0 = gd;
                cap0 = cd;
            } else if (ok != ok0 || gd != gen0 || cd != cap0) {
                fail(idx, std::string("slaConfirm disagreement vs ") +
                              c.name + ": ok " + std::to_string(ok0) +
                              "/" + std::to_string(ok));
                return false;
            }
        }
        if (gen0 != 0) {
            if (predictMismatch || cap0 != 0) {
                syncAbort(gen0);
                return false; // state flushed; not a divergence
            }
            fail(idx, "slaConfirm aborted but golden predicted a "
                      "matching value " + hex(want));
            return false;
        }
        if (predictMismatch) {
            fail(idx, "golden predicted SLA mismatch (" + hex(want) +
                          " != acked " + hex(e.value) +
                          "), confirm succeeded");
            return false;
        }
        if (!ok0) {
            fail(idx, "slaConfirm returned false without aborting");
            return false;
        }
        gold_.applyConfirm(e.addr, e.vid);
        return true;
    }

    void
    doSlaOp(std::size_t idx, std::uint64_t perturb)
    {
        if (pending_.empty())
            return;
        PendingSla p = pending_.front();
        pending_.pop_front();
        confirm(idx, p, perturb);
    }

    void
    doCommit(std::size_t idx)
    {
        const Vid v = cells_[0]->sys.lcVid() + 1;
        if (v > maxVid_)
            return; // window exhausted; a VidReset op must run first
        // Branch resolution precedes commit: drain this VID's pending
        // acknowledgments (the runtime's SlaUnit::drain()).
        for (std::size_t i = 0; i < pending_.size();) {
            if (pending_[i].e.vid != v) {
                ++i;
                continue;
            }
            PendingSla p = pending_[i];
            pending_.erase(pending_.begin() +
                           static_cast<std::ptrdiff_t>(i));
            if (!confirm(idx, p, 0))
                return; // diverged, or an abort flushed the VID
        }
        ++executed_;
        // Maximal validation sets (Figure 9): all cells and the golden
        // model must agree on the committing VID's R/W sets.
        const std::vector<Addr> wantR = gold_.readSet(v);
        const std::vector<Addr> wantW = gold_.writeSet(v);
        for (auto& c : cells_) {
            if (c->sys.readSetOf(v) != wantR ||
                c->sys.writeSetOf(v) != wantW) {
                fail(idx, std::string("R/W set mismatch vs golden at "
                                      "commit of VID ") +
                              std::to_string(v) + " on " + c->name +
                              " (R " +
                              std::to_string(
                                  c->sys.readSetOf(v).size()) +
                              "/" + std::to_string(wantR.size()) +
                              " W " +
                              std::to_string(
                                  c->sys.writeSetOf(v).size()) +
                              "/" + std::to_string(wantW.size()) +
                              " lines)");
                return;
            }
        }
        for (auto& c : cells_) {
            try {
                c->sys.commit(v);
            } catch (const std::exception& ex) {
                fail(idx,
                     std::string(c->name) + " threw: " + ex.what());
                return;
            }
        }
        gold_.commit(v);
    }

    void
    doAbortAll(std::size_t idx)
    {
        ++executed_;
        for (auto& c : cells_) {
            try {
                c->sys.abortAll();
            } catch (const std::exception& ex) {
                fail(idx,
                     std::string(c->name) + " threw: " + ex.what());
                return;
            }
        }
        syncAbort();
    }

    void
    doVidReset(std::size_t idx)
    {
        if (!gold_.vidResetLegal())
            return; // transactions outstanding (§4.6); skip
        ++executed_;
        for (auto& c : cells_) {
            try {
                c->sys.vidReset();
            } catch (const std::exception& ex) {
                fail(idx,
                     std::string(c->name) + " threw: " + ex.what());
                return;
            }
        }
        gold_.vidReset();
        pending_.clear();
    }

    // --- checks ------------------------------------------------------

    void
    checkInvariants(std::size_t idx)
    {
        for (auto& c : cells_) {
            try {
                c->sys.checkInvariants();
            } catch (const std::exception& ex) {
                fail(idx, std::string("checkInvariants failed on ") +
                              c->name + ": " + ex.what());
                return;
            }
        }
    }

    void
    finalChecks()
    {
        const std::size_t end = static_cast<std::size_t>(-1);
        checkInvariants(s_.ops.empty() ? end : s_.ops.size() - 1);
        if (div_.found)
            return;
        // Quiesce: flush all speculative state, fold the committed
        // image, write everything back.
        for (auto& c : cells_) {
            try {
                c->sys.abortAll();
                c->sys.vidReset();
                c->sys.flushDirtyToMemory();
            } catch (const std::exception& ex) {
                fail(end, std::string("final quiesce threw on ") +
                              c->name + ": " + ex.what());
                return;
            }
        }
        gold_.abortAll();
        gold_.vidReset();
        // Golden vs. real committed image, word by word.
        for (Addr w : gold_.touchedWords()) {
            const std::uint64_t want = gold_.valueAt(w, 8, 0);
            for (auto& c : cells_) {
                const std::uint64_t got = c->sys.memory().read(w, 8);
                if (got != want) {
                    fail(end, std::string("final memory mismatch at ") +
                                  hex(w) + " on " + c->name + ": " +
                                  hex(got) + " != golden " + hex(want));
                    return;
                }
            }
        }
        // Full image equality across cells (catches stray writes to
        // addresses the golden never tracked).
        auto image = [](Cell& c) {
            std::map<Addr, sim::LineData> m;
            c.sys.memory().forEachLine(
                [&](Addr a, const sim::LineData& d) {
                    static const sim::LineData zero{};
                    if (d != zero)
                        m[a] = d;
                });
            return m;
        };
        const auto img0 = image(*cells_[0]);
        for (std::size_t ci = 1; ci < cells_.size(); ++ci) {
            if (image(*cells_[ci]) != img0) {
                fail(end,
                     std::string("final memory image differs: ") +
                         cells_[ci]->name + " vs " + cells_[0]->name);
                return;
            }
        }
    }

    void
    accumulate(Coverage& cov, bool primary)
    {
        // Base counters come from the first group in the mask only, so
        // a multi-group campaign counts each schedule once; the mode
        // counters are zero outside their group and sum unconditionally.
        if (primary) {
            const auto& st = cells_[0]->sys.stats();
            ++cov.schedules;
            cov.ops += executed_;
            cov.commits += st.commits;
            cov.aborts += st.aborts;
            cov.capacityAborts += st.capacityAborts;
            cov.vidResets += st.vidResets;
            cov.spills += st.specSpills;
            cov.refills += st.specRefills;
            cov.soRefetches += st.soRefetches;
            cov.slaConfirms += st.slaConfirms;
            cov.slaMismatchAborts += st.slaMismatchAborts;
        }
        const TxModeStats& ts = cells_[0]->sys.txPolicy().stats();
        cov.fallbackEntries += ts.fallbackEntries;
        cov.fallbackAccesses += ts.fallbackAccesses;
        cov.fallbackCommits += ts.fallbackCommits;
        cov.fallbackWrapRemaps += ts.fallbackWrapRemaps;
        cov.limitedSetAborts += ts.limitedSetAborts;
        // Fast-path exposure: summed over all cells (zero where the
        // mask bit is clear or the mode gates the knob off).
        for (auto& c : cells_) {
            const sim::FastStats& fs = c->sys.fastStats();
            cov.fastAttempts += fs.attempts;
            cov.fastHits += fs.hits();
            cov.fastGenRejections += fs.genRejections;
        }
    }

    const Schedule& s_;
    GoldenModel gold_;
    std::vector<std::unique_ptr<Cell>> cells_;
    Vid maxVid_ = 63;
    std::deque<PendingSla> pending_;
    std::uint64_t executed_ = 0;
    Divergence div_;
};

} // namespace

Divergence
runSchedule(const Schedule& s, Coverage* cov, unsigned groupMask,
            const RunHooks* hooks)
{
    bool primary = true;
    for (unsigned g : {unsigned(kGroupHmtx), unsigned(kGroupBtx),
                       unsigned(kGroupLtd)}) {
        if (!(groupMask & g))
            continue;
        Runner r(s, g, hooks);
        Divergence d = r.run(cov, primary);
        primary = false;
        if (d.found) {
            d.what = std::string(groupName(g)) + " group: " + d.what;
            return d;
        }
    }
    return {};
}

Schedule
shrinkSchedule(const Schedule& s, unsigned maxRuns, unsigned groupMask)
{
    Schedule cur = s;
    if (!runSchedule(cur, nullptr, groupMask).found)
        return cur;
    unsigned runs = 1;
    std::size_t chunk = cur.ops.size() / 2;
    if (chunk == 0)
        chunk = 1;
    while (runs < maxRuns) {
        bool removedAny = false;
        for (std::size_t i = 0;
             i + chunk <= cur.ops.size() && runs < maxRuns;) {
            Schedule cand = cur;
            cand.ops.erase(
                cand.ops.begin() + static_cast<std::ptrdiff_t>(i),
                cand.ops.begin() + static_cast<std::ptrdiff_t>(i + chunk));
            ++runs;
            if (runSchedule(cand, nullptr, groupMask).found) {
                cur.ops = std::move(cand.ops);
                removedAny = true;
            } else {
                i += chunk;
            }
        }
        if (chunk == 1) {
            if (!removedAny)
                break;
        } else {
            chunk = chunk / 2 ? chunk / 2 : 1;
        }
    }
    return cur;
}

} // namespace hmtx::check
