/**
 * @file
 * Golden model of MTX memory semantics (§3, §4): versioned memory as
 * per-word sorted version lists plus per-line access marks. No caches,
 * no coherence states, no timing — just the architecturally visible
 * contract the whole memory system must honour:
 *
 *  - a load with VID a observes the store with the largest writer
 *    VID <= a, or the committed base value (§4.1 visibility);
 *  - a store with VID y aborts iff any higher VID already accessed the
 *    line (§4.3 flow/output dependences, aggregated read marks);
 *  - a non-speculative store aborts iff the line carries uncommitted
 *    speculative state;
 *  - group commit is a watermark move (§4.4), abort flushes everything
 *    above the watermark (Figure 7), VID reset folds the committed
 *    image and restarts the window (§4.6).
 *
 * The differential fuzzer (check/differ.hh) runs random schedules
 * against CacheSystem and this model simultaneously; any disagreement
 * in values, abort outcomes, R/W sets, or the final memory image is a
 * bug in one of them.
 */

#ifndef HMTX_CHECK_GOLDEN_HH
#define HMTX_CHECK_GOLDEN_HH

#include <cstdint>
#include <map>
#include <set>
#include <unordered_map>
#include <vector>

#include "core/tx_policy.hh"
#include "core/types.hh"

namespace hmtx::check
{

/**
 * Pure-semantics reference for the HMTX memory system.
 *
 * Prediction (const) and application (mutating) are split so a driver
 * can ask "what should happen" before touching the real system, then
 * fold in only the outcome that actually occurred — e.g. a capacity
 * abort (§5.4), which no timing-free model can predict, is applied as
 * abortAll() instead of the operation's success path.
 *
 * Granularity mirrors the hardware: values are tracked per 8-byte
 * word (accesses never straddle a word), dependence marks per cache
 * line (the tags of §4.1 are line tags).
 */
class GoldenModel
{
  public:
    /**
     * @param slaEnabled mirror of MachineConfig::slaEnabled: when
     *        false, wrong-path loads plant read marks like any other
     *        load (the false-misspeculation source §5.1 removes)
     * @param policy mirror of the cells' TxPolicyConfig: the golden
     *        model runs the same TxPolicy state machine the cells do,
     *        so fallback serialization (best-effort mode) and
     *        limited-set capacity aborts are predicted, not treated as
     *        environmental noise
     */
    explicit GoldenModel(bool slaEnabled = true,
                         const TxPolicyConfig& policy = {})
        : slaEnabled_(slaEnabled), policy_(policy)
    {}

    /** Highest committed VID. */
    Vid lc() const { return lc_; }

    /** The mirrored commit-mode policy (read-only). */
    const TxPolicy& policy() const { return policy_; }

    /**
     * Mirrors the policy consultation a cell performs at the top of
     * every correct-path speculative access (load or store with
     * VID != 0). Returns true when the access runs *serialized* — the
     * best-effort fallback lock is (or becomes) held by @p vid — in
     * which case the access has full non-speculative semantics: the
     * expected value is valueAt(.., kNonSpecVid), no marks or R/W-set
     * entries land, and a store folds the committed image. Mutating:
     * advances the fallback state machine exactly as each cell does.
     */
    bool beginSpecAccess(Vid vid)
    { return policy_.onSpecAccess(vid, lc_); }

    /** Seeds the committed base value of the word containing @p a. */
    void seed(Addr a, std::uint64_t v) { wordOf(a).base = v; }

    // --- prediction (const) -------------------------------------------

    /**
     * Value a load of @p size bytes at @p a with VID @p vid must
     * observe. VID 0 reads the committed image (visibility at the LC
     * VID, §5.3).
     */
    std::uint64_t valueAt(Addr a, unsigned size, Vid vid) const;

    /**
     * True when a store at @p a with VID @p vid must trigger a global
     * abort: some higher VID already accessed the line (speculative
     * store, §4.3), or the line carries uncommitted speculative state
     * (non-speculative store, VID 0).
     */
    bool storeAborts(Addr a, Vid vid) const;

    /**
     * True when a VID reset is legal: every speculative access
     * recorded since the last reset/abort has committed (§4.6).
     */
    bool vidResetLegal() const { return rw_.empty(); }

    /**
     * True when a limited-set cell must capacity-abort a correct-path
     * speculative access at @p a with VID @p vid: the line is new to
     * the VID's combined read/write set and the set already holds K
     * lines. Mirrors CacheSystem::limitedSetBlocks exactly — both key
     * off identically maintained per-VID line sets. Always false
     * outside limited-set mode.
     */
    bool limitedSetWouldAbort(Addr a, Vid vid) const;

    // --- application (mutating) ---------------------------------------

    /**
     * Applies a load's marking side effects. Wrong-path loads mark
     * only when SLAs are disabled (§5.1) and never enter the read set.
     * VID 0 (non-speculative) loads have no side effects.
     */
    void applyLoad(Addr a, Vid vid, bool wrongPath);

    /**
     * Applies a store of @p v (@p size bytes) at @p a with VID @p vid.
     * @pre !storeAborts(a, vid)
     */
    void applyStore(Addr a, std::uint64_t v, unsigned size, Vid vid);

    /**
     * Applies the marking of a successful SLA confirmation (§5.1): the
     * deferred read mark lands only if the load still hits the latest
     * version.
     */
    void applyConfirm(Addr a, Vid vid);

    /** Group commit of @p vid. @pre vid == lc() + 1 (§4.7). */
    void commit(Vid vid);

    /** Flushes everything above the LC watermark (§4.4, Figure 7). */
    void abortAll();

    /** VID reset (§4.6). @pre vidResetLegal() */
    void vidReset();

    // --- validation sets (Figure 9) -----------------------------------

    /** Sorted line addresses in @p vid's read set. */
    std::vector<Addr> readSet(Vid vid) const;
    /** Sorted line addresses in @p vid's write set. */
    std::vector<Addr> writeSet(Vid vid) const;

    /** Words ever touched, for final-image comparison (sorted). */
    std::vector<Addr> touchedWords() const;

  private:
    /**
     * One 8-byte word: committed base value plus the surviving
     * speculative/committed store versions keyed by writer VID.
     * Invariant: every version is newer than the base image, so
     * visibility is "largest writer <= VID, else base".
     */
    struct Word
    {
        std::uint64_t base = 0;
        std::map<Vid, std::uint64_t> vers;
    };

    /**
     * Per-line dependence marks, mirroring the aggregated tags of
     * §4.2/§4.3: `writer` is the modVID of the latest version (0 when
     * the latest version is non-speculative) and `mark` the highest
     * VID that accessed the latest version (its effective highVID,
     * distributed read marks included). mark >= writer always.
     */
    struct LineCtl
    {
        Vid writer = kNonSpecVid;
        Vid mark = kNonSpecVid;
    };

    Word& wordOf(Addr a) { return words_[a & ~Addr{7}]; }
    const Word* wordIf(Addr a) const;
    LineCtl& lineOf(Addr a) { return lines_[lineAddr(a)]; }
    const LineCtl* lineIf(Addr a) const;

    std::uint64_t wordValueAt(const Word* w, Vid vid) const;

    bool slaEnabled_;
    TxPolicy policy_;
    Vid lc_ = kNonSpecVid;
    std::unordered_map<Addr, Word> words_;
    std::unordered_map<Addr, LineCtl> lines_;
    /** Per-live-VID read/write line sets; erased on commit, cleared
     *  on abort. Non-empty keys are always > lc_. */
    std::map<Vid, std::pair<std::set<Addr>, std::set<Addr>>> rw_;
};

} // namespace hmtx::check

#endif // HMTX_CHECK_GOLDEN_HH
