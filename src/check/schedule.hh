/**
 * @file
 * Fuzz schedules: a random program over the MTX op-set plus a
 * line-oriented text serialization used for shrunken-divergence replay
 * files (the .sched files under tests/fuzz/corpus).
 *
 * Schedules are written to stay legal under op deletion: speculative
 * VIDs are encoded as offsets above the LC watermark at execution
 * time, commits always target LC+1, and the runner silently skips ops
 * whose preconditions no longer hold (e.g. a VID reset while
 * transactions are outstanding). That is what makes ddmin shrinking
 * (check/differ.hh) sound: any subsequence of a schedule is itself a
 * valid schedule.
 */

#ifndef HMTX_CHECK_SCHEDULE_HH
#define HMTX_CHECK_SCHEDULE_HH

#include <cstdint>
#include <string>
#include <vector>

#include "core/types.hh"

namespace hmtx::check
{

/** One fuzzed memory-system operation. */
enum class OpKind : std::uint8_t
{
    Load,         ///< correct-path speculative load (marks, read set)
    Store,        ///< speculative store (may trigger a §4.3 abort)
    NonSpecLoad,  ///< VID-0 load of the committed image
    NonSpecStore, ///< VID-0 store (aborts under speculative state)
    WrongPathLoad,///< branch-speculative load (§5.1 SLA source)
    Commit,       ///< commitMTX of VID LC+1 (§4.4)
    AbortAll,     ///< global abort (§4.4)
    VidReset,     ///< VID-window reset (§4.6)
    SlaConfirm,   ///< ack the oldest pending SLA with its loaded value
    SlaMismatch,  ///< ack the oldest pending SLA with a perturbed value
};

struct Op
{
    OpKind kind = OpKind::Load;
    std::uint8_t core = 0;
    /** VID = LC + vidOff at execution time (1..8); ignored by VID-0
     *  and bulk ops. */
    std::uint8_t vidOff = 1;
    std::uint8_t size = 8; ///< access size; (addr & 7) + size <= 8
    Addr addr = 0;
    std::uint64_t value = 0; ///< store payload
};

/**
 * Semantic knobs shared by every cell of the config matrix; the
 * matrix itself (fabric × commit mode × shards) lives in the runner.
 */
struct FuzzConfig
{
    unsigned numCores = 2;
    unsigned l1KB = 1;
    unsigned l1Assoc = 2;
    unsigned l2KB = 8;
    unsigned l2Assoc = 8;
    unsigned vidBits = 6;
    bool unboundedSpecSets = false;
    bool slaEnabled = true;
    /** Shard counts for the four matrix cells, recorded at generation
     *  time (host cell uses the generating machine's CPU count) so a
     *  replay reruns the exact same partitioning. */
    unsigned shards[4] = {1, 1, 1, 1};
    /** Worker-thread policy per cell (0 auto, 1 inline, >=2 forced). */
    unsigned shardThreads[4] = {1, 1, 1, 1};
    /** Parallel-engine worker policy for the two engine-backed matrix
     *  cells (same encoding as shardThreads). Older replay files omit
     *  this line; the defaults keep those cells inline. */
    unsigned engineThreads[2] = {1, 1};
    /** Best-effort group policy: retry budget before the fallback lock
     *  arms, and the total-abort threshold for early fallback (0 =
     *  disabled). Older replay files omit the `btx` line. */
    unsigned btxRetries = 2;
    unsigned btxThreshold = 0;
    /** Limited-set group policy: speculative lines tracked per VID.
     *  Older replay files omit the `limitedk` line. */
    unsigned limitedK = 4;
    /** Zero-event fast-path toggle, one bit per matrix cell (bits 0-5:
     *  the hmtx cells in kCellNames order; bits 6-7: btx bus/dir;
     *  bits 8-9: ltd bus/dir, where the config layer gates the knob
     *  off again — fuzzing that the gate holds). Cells with the bit
     *  clear run the classic event path, so every schedule is also a
     *  fast-on vs fast-off differential. Older replay files omit the
     *  `fastpath` line (all cells off). */
    unsigned fastPathMask = 0;
};

/** Bits of Schedule::omittedKnobs: optional config lines a replay
 *  file may omit (they postdate the v1 format). parse() records what
 *  was missing so replay tools can print the defaults they assumed —
 *  a pre-PR-7/PR-8 witness then replays unambiguously. */
enum OmittedKnob : unsigned
{
    kOmitEngineThreads = 1u << 0,
    kOmitBtx = 1u << 1,
    kOmitLimitedK = 1u << 2,
    kOmitFastPath = 1u << 3,
};

struct Schedule
{
    FuzzConfig cfg;
    std::vector<Op> ops;
    /**
     * Branching extension of the replay format (`program` header
     * line): only each core's *own* op order is binding; the
     * cross-core interleaving is free. The model checker
     * (check/explorer.hh) enumerates every merge of the per-core
     * sequences; plain replay (differ::runSchedule) runs the file
     * order, which is one legal interleaving. A divergence witness is
     * always serialized flattened — the diverging interleaving in
     * file order with the flag clear — so every witness replays
     * byte-for-byte through the ordinary fuzzer and corpus test.
     */
    bool isProgram = false;
    /** Parse provenance: OmittedKnob bits for absent optional lines.
     *  Ignored by serialize() (which always emits every knob). */
    unsigned omittedKnobs = 0;
};

/**
 * Generates a random schedule of @p numOps operations. The same
 * (seed, numOps) pair always yields the same schedule. Address pools
 * deliberately collide in a handful of tiny-cache sets so eviction,
 * overflow-table spills, and capacity aborts fire constantly.
 */
Schedule generate(std::uint64_t seed, unsigned numOps);

/** Serializes to the replay text format (see DESIGN.md §10). */
std::string serialize(const Schedule& s);

/** One-line human-readable form of @p op for divergence reports. */
std::string describe(const Op& op);

/**
 * Parses a replay file. Returns false and sets @p err on malformed
 * input; accepts exactly what serialize() emits plus blank lines and
 * `#` comments. Hand-edited witnesses fail loudly rather than
 * replaying the wrong schedule: duplicate header lines, config lines
 * after the first op, out-of-range shard/cell/knob encodings, and
 * truncated or over-long op lines are all explicit errors.
 */
bool parse(const std::string& text, Schedule& out, std::string& err);

} // namespace hmtx::check

#endif // HMTX_CHECK_SCHEDULE_HH
