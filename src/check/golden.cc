/**
 * @file
 * GoldenModel implementation. Everything here is a direct transcription
 * of the §3/§4 semantics; the point is that none of it knows about
 * caches, fabrics, shards, or the overflow table.
 */

#include <algorithm>
#include <cassert>

#include "check/golden.hh"

namespace hmtx::check
{

const GoldenModel::Word*
GoldenModel::wordIf(Addr a) const
{
    auto it = words_.find(a & ~Addr{7});
    return it == words_.end() ? nullptr : &it->second;
}

const GoldenModel::LineCtl*
GoldenModel::lineIf(Addr a) const
{
    auto it = lines_.find(lineAddr(a));
    return it == lines_.end() ? nullptr : &it->second;
}

std::uint64_t
GoldenModel::wordValueAt(const Word* w, Vid vid) const
{
    if (!w)
        return 0;
    // §4.1 visibility: the store with the largest writer VID <= vid;
    // committed stores have already folded their VIDs' order into the
    // same list, so one upper_bound covers both.
    auto it = w->vers.upper_bound(vid);
    if (it == w->vers.begin())
        return w->base;
    return std::prev(it)->second;
}

std::uint64_t
GoldenModel::valueAt(Addr a, unsigned size, Vid vid) const
{
    unsigned off = static_cast<unsigned>(a & 7);
    assert(off + size <= 8 && "accesses must not straddle a word");
    if (vid == kNonSpecVid)
        vid = lc_; // non-speculative accesses see the committed image
    std::uint64_t word = wordValueAt(wordIf(a), vid);
    std::uint64_t v = word >> (8 * off);
    if (size < 8)
        v &= (std::uint64_t{1} << (8 * size)) - 1;
    return v;
}

bool
GoldenModel::storeAborts(Addr a, Vid vid) const
{
    const LineCtl* lc = lineIf(a);
    Vid mark = lc ? lc->mark : kNonSpecVid;
    Vid writer = lc ? lc->writer : kNonSpecVid;
    if (vid == kNonSpecVid) {
        // A non-speculative store may not land under uncommitted
        // speculative accesses: it has no version order to slot into.
        return writer > lc_ || mark > lc_;
    }
    // §4.3: a store below any VID that already accessed the line is a
    // flow/output-dependence violation. `mark` aggregates the latest
    // version's writer and every read mark on it; a store below the
    // latest *writer* additionally means the store hits a superseded
    // version, which aborts for the same reason. mark >= writer, so
    // one compare covers both.
    return vid < mark;
}

bool
GoldenModel::limitedSetWouldAbort(Addr a, Vid vid) const
{
    if (!policy_.limitsSpecSets())
        return false;
    auto it = rw_.find(vid);
    if (it == rw_.end())
        return policy_.limitedSetExceeded(0);
    const auto& [reads, writes] = it->second;
    const Addr la = lineAddr(a);
    // Re-touching a line already in the sets never costs a new entry.
    if (reads.count(la) || writes.count(la))
        return false;
    std::size_t combined = reads.size();
    for (Addr w : writes)
        if (!reads.count(w))
            ++combined;
    return policy_.limitedSetExceeded(combined);
}

void
GoldenModel::applyLoad(Addr a, Vid vid, bool wrongPath)
{
    if (vid == kNonSpecVid)
        return; // committed-image reads leave no marks
    // §5.1: with SLAs the wrong-path load defers its mark to the ack;
    // without them it marks immediately (and may cause false aborts).
    bool marks = !wrongPath || !slaEnabled_;
    if (marks)
        applyConfirm(a, vid);
    if (!wrongPath)
        rw_[vid].first.insert(lineAddr(a));
}

void
GoldenModel::applyConfirm(Addr a, Vid vid)
{
    LineCtl& lc = lineOf(a);
    // A read marks only the version it hits; reads of superseded
    // versions are already bounded by the superseding writer's VID
    // and need no mark (§4.2).
    if (vid >= lc.writer)
        lc.mark = std::max(lc.mark, vid);
}

void
GoldenModel::applyStore(Addr a, std::uint64_t v, unsigned size, Vid vid)
{
    assert(!storeAborts(a, vid));
    unsigned off = static_cast<unsigned>(a & 7);
    assert(off + size <= 8 && "accesses must not straddle a word");
    Word& w = wordOf(a);
    Vid at = vid == kNonSpecVid ? lc_ : vid;
    // Read-modify-write of the containing word at the store's VID:
    // bytes outside the store come from the version visible to it.
    std::uint64_t merged = wordValueAt(&w, at);
    if (size == 8) {
        merged = v;
    } else {
        std::uint64_t mask = ((std::uint64_t{1} << (8 * size)) - 1)
                             << (8 * off);
        merged = (merged & ~mask) | ((v << (8 * off)) & mask);
    }
    if (vid == kNonSpecVid) {
        // Non-speculative store: every surviving version is committed
        // (the abort predicate guaranteed it); fold the word and write
        // the new committed image.
        w.vers.clear();
        w.base = merged;
        return;
    }
    w.vers[vid] = merged;
    LineCtl& lc = lineOf(a);
    lc.writer = std::max(lc.writer, vid);
    lc.mark = std::max(lc.mark, vid);
    rw_[vid].second.insert(lineAddr(a));
}

void
GoldenModel::commit(Vid vid)
{
    assert(vid == lc_ + 1 && "commits must occur consecutively (§4.7)");
    policy_.onCommit(vid);
    lc_ = vid;
    // Committed versions stay in the word lists (they are the
    // committed image for later VIDs); line marks <= lc_ are inert
    // because every future access carries a VID > lc_.
    rw_.erase(vid);
}

void
GoldenModel::abortAll()
{
    policy_.onAbort();
    for (auto& [addr, w] : words_)
        w.vers.erase(w.vers.upper_bound(lc_), w.vers.end());
    // All surviving state is committed: marks reset exactly as the
    // hardware clears mod/high tags (Figure 7).
    for (auto& [addr, lc] : lines_)
        lc = LineCtl{};
    rw_.clear();
}

void
GoldenModel::vidReset()
{
    assert(vidResetLegal());
    policy_.onVidReset();
    for (auto& [addr, w] : words_) {
        w.base = wordValueAt(&w, lc_);
        w.vers.clear();
    }
    for (auto& [addr, lc] : lines_)
        lc = LineCtl{};
    lc_ = kNonSpecVid;
}

std::vector<Addr>
GoldenModel::readSet(Vid vid) const
{
    auto it = rw_.find(vid);
    if (it == rw_.end())
        return {};
    return {it->second.first.begin(), it->second.first.end()};
}

std::vector<Addr>
GoldenModel::writeSet(Vid vid) const
{
    auto it = rw_.find(vid);
    if (it == rw_.end())
        return {};
    return {it->second.second.begin(), it->second.second.end()};
}

std::vector<Addr>
GoldenModel::touchedWords() const
{
    std::vector<Addr> out;
    out.reserve(words_.size());
    for (const auto& [addr, w] : words_)
        out.push_back(addr);
    std::sort(out.begin(), out.end());
    return out;
}

} // namespace hmtx::check
