/**
 * @file
 * Schedule generation and the replay text format.
 */

#include <cstdio>
#include <set>
#include <sstream>
#include <thread>
#include <unordered_map>

#include "check/schedule.hh"
#include "sim/rng.hh"

namespace hmtx::check
{

namespace
{

/** Token <-> kind table for the replay format. */
const std::pair<OpKind, const char*> kKindTokens[] = {
    {OpKind::Load, "L"},          {OpKind::Store, "S"},
    {OpKind::NonSpecLoad, "NL"},  {OpKind::NonSpecStore, "NS"},
    {OpKind::WrongPathLoad, "WP"},{OpKind::Commit, "C"},
    {OpKind::AbortAll, "A"},      {OpKind::VidReset, "R"},
    {OpKind::SlaConfirm, "K"},    {OpKind::SlaMismatch, "KX"},
};

const char*
tokenOf(OpKind k)
{
    for (const auto& [kind, tok] : kKindTokens)
        if (kind == k)
            return tok;
    return "?";
}

bool
kindOf(const std::string& tok, OpKind& out)
{
    for (const auto& [kind, t] : kKindTokens) {
        if (tok == t) {
            out = kind;
            return true;
        }
    }
    return false;
}

/** Picks an access size and a word-aligned-legal offset for it. */
void
pickSizeOffset(sim::Rng& rng, unsigned& size, unsigned& off)
{
    switch (rng.range(6)) {
    case 0:
        size = 4;
        off = rng.chance(0.5) ? 4 : 0;
        break;
    case 1:
        size = rng.chance(0.5) ? 2 : 1;
        off = rng.range(8 - size + 1);
        break;
    default:
        size = 8;
        off = 0;
        break;
    }
}

} // namespace

Schedule
generate(std::uint64_t seed, unsigned numOps)
{
    sim::Rng rng(seed * 0x9e3779b97f4a7c15ull + 0x6d5a56f1c9f1d3b7ull);
    Schedule s;

    s.cfg.numCores = rng.chance(0.3) ? 4 : 2;
    s.cfg.l1KB = 1;
    s.cfg.l1Assoc = 2;
    s.cfg.l2KB = 8;
    s.cfg.l2Assoc = rng.chance(0.25) ? 4 : 8;
    // Mostly the paper's m=6 window; sometimes a 4-bit window so the
    // fuzz stream slams into VID overflow and the reset path (§4.6).
    s.cfg.vidBits = rng.chance(0.3) ? 4 : 6;
    s.cfg.unboundedSpecSets = rng.chance(0.4);
    s.cfg.slaEnabled = !rng.chance(0.2);

    unsigned host = std::max(1u, std::thread::hardware_concurrency());
    const unsigned shardChoices[3] = {1, 2, host};
    for (int c = 0; c < 4; ++c) {
        unsigned sh = shardChoices[rng.range(3)];
        s.cfg.shards[c] = sh;
        // Exercise inline, forced-thread, and auto worker policies.
        s.cfg.shardThreads[c] =
            sh == 1 ? 1 : (rng.chance(0.5) ? 2 : 0);
    }
    // Engine-backed cells: exercise inline, forced-thread, and auto
    // staging-worker policies just like the shard cells.
    for (unsigned& t : s.cfg.engineThreads)
        t = rng.chance(0.5) ? 1 : (rng.chance(0.5) ? 2 : 0);

    // Best-effort group: small retry budgets so the fallback lock
    // engages constantly; half the schedules add an early-fallback
    // threshold (>= the budget — the config layer rejects less).
    s.cfg.btxRetries = 1 + static_cast<unsigned>(rng.range(3));
    s.cfg.btxThreshold = rng.chance(0.5)
        ? 0
        : s.cfg.btxRetries + static_cast<unsigned>(rng.range(8));
    // Limited-set group: tiny K so the K-th-line boundary and the
    // capacity-abort path fire on nearly every transaction.
    s.cfg.limitedK = 1 + static_cast<unsigned>(rng.range(6));
    // Zero-event fast path: random per-cell toggles, so each schedule
    // doubles as a fast-on vs fast-off differential across cells.
    s.cfg.fastPathMask = static_cast<unsigned>(rng.range(1u << 10));

    // Address pool: a clutch of lines that all collide in one set of
    // the tiny L1 *and* L2 (stride = max set span), plus a few
    // scattered lines. Collisions force evictions, overflow spills,
    // pristine-S-O writebacks, and capacity aborts.
    unsigned l1Sets = s.cfg.l1KB * 1024 / kLineBytes / s.cfg.l1Assoc;
    unsigned l2Sets = s.cfg.l2KB * 1024 / kLineBytes / s.cfg.l2Assoc;
    Addr stride =
        static_cast<Addr>(std::max(l1Sets, l2Sets)) * kLineBytes;
    std::vector<Addr> pool;
    unsigned colliders = 3 + static_cast<unsigned>(rng.range(5));
    for (unsigned i = 0; i < colliders; ++i)
        pool.push_back(0x40000 + i * stride);
    unsigned scattered = 2 + static_cast<unsigned>(rng.range(3));
    for (unsigned i = 0; i < scattered; ++i)
        pool.push_back(0x80000 + (i * 7 + 1) * kLineBytes);

    auto pickAddr = [&](sim::Rng& r) {
        Addr line = pool[r.range(pool.size())];
        return line + (r.chance(0.35) ? 8 : 0); // two words per line
    };
    auto pickVidOff = [&](sim::Rng& r) {
        // Biased low so commits can keep up with the window.
        auto off = 1 + r.range(4);
        if (r.chance(0.25))
            off += r.range(4);
        return static_cast<std::uint8_t>(off);
    };

    s.ops.reserve(numOps);
    while (s.ops.size() < numOps) {
        Op op;
        op.core = static_cast<std::uint8_t>(rng.range(s.cfg.numCores));
        op.vidOff = pickVidOff(rng);
        unsigned size = 8, off = 0;
        std::uint64_t roll = rng.range(100);
        if (roll < 24) {
            op.kind = OpKind::Load;
            pickSizeOffset(rng, size, off);
            op.addr = pickAddr(rng) + off;
        } else if (roll < 46) {
            op.kind = OpKind::Store;
            pickSizeOffset(rng, size, off);
            op.addr = pickAddr(rng) + off;
            op.value = rng.next();
        } else if (roll < 52) {
            op.kind = OpKind::NonSpecLoad;
            pickSizeOffset(rng, size, off);
            op.addr = pickAddr(rng) + off;
        } else if (roll < 56) {
            op.kind = OpKind::NonSpecStore;
            pickSizeOffset(rng, size, off);
            op.addr = pickAddr(rng) + off;
            op.value = rng.next();
        } else if (roll < 62) {
            op.kind = OpKind::WrongPathLoad;
            pickSizeOffset(rng, size, off);
            op.addr = pickAddr(rng) + off;
        } else if (roll < 76) {
            op.kind = OpKind::Commit;
        } else if (roll < 84) {
            op.kind = OpKind::SlaConfirm;
        } else if (roll < 86) {
            op.kind = OpKind::SlaMismatch;
            op.value = 1 + rng.range(0xff); // value perturbation
        } else if (roll < 89) {
            op.kind = OpKind::AbortAll;
        } else if (roll < 92) {
            op.kind = OpKind::VidReset;
        } else {
            // Evict burst: walk several distinct colliding lines with
            // plain loads to churn the tiny sets.
            unsigned n = 3 + static_cast<unsigned>(rng.range(4));
            for (unsigned i = 0; i < n && s.ops.size() < numOps; ++i) {
                Op e;
                e.kind = rng.chance(0.5) ? OpKind::NonSpecLoad
                                         : OpKind::Load;
                e.core =
                    static_cast<std::uint8_t>(rng.range(s.cfg.numCores));
                e.vidOff = pickVidOff(rng);
                e.size = 8;
                e.addr = pool[(i * 3 + rng.range(pool.size())) %
                              pool.size()];
                s.ops.push_back(e);
            }
            continue;
        }
        op.size = static_cast<std::uint8_t>(size);
        s.ops.push_back(op);
    }
    return s;
}

std::string
describe(const Op& op)
{
    char buf[96];
    std::snprintf(buf, sizeof(buf),
                  "%s core=%u vid=lc+%u size=%u addr=0x%llx val=0x%llx",
                  tokenOf(op.kind), unsigned(op.core),
                  unsigned(op.vidOff), unsigned(op.size),
                  static_cast<unsigned long long>(op.addr),
                  static_cast<unsigned long long>(op.value));
    return buf;
}

std::string
serialize(const Schedule& s)
{
    std::ostringstream os;
    os << "hmtx-fuzz-schedule v1\n";
    const FuzzConfig& c = s.cfg;
    os << "cores " << c.numCores << "\n"
       << "l1kb " << c.l1KB << "\n"
       << "l1assoc " << c.l1Assoc << "\n"
       << "l2kb " << c.l2KB << "\n"
       << "l2assoc " << c.l2Assoc << "\n"
       << "vidbits " << c.vidBits << "\n"
       << "unbounded " << (c.unboundedSpecSets ? 1 : 0) << "\n"
       << "sla " << (c.slaEnabled ? 1 : 0) << "\n";
    os << "shards";
    for (unsigned sh : c.shards)
        os << ' ' << sh;
    os << "\nshardthreads";
    for (unsigned t : c.shardThreads)
        os << ' ' << t;
    os << "\nenginethreads";
    for (unsigned t : c.engineThreads)
        os << ' ' << t;
    os << "\nbtx " << c.btxRetries << ' ' << c.btxThreshold << "\n"
       << "limitedk " << c.limitedK << "\n"
       << "fastpath " << c.fastPathMask << "\n";
    if (s.isProgram)
        os << "program 1\n";
    for (const Op& op : s.ops) {
        char buf[96];
        std::snprintf(buf, sizeof(buf), "%s %u %u %u 0x%llx 0x%llx\n",
                      tokenOf(op.kind), unsigned(op.core),
                      unsigned(op.vidOff), unsigned(op.size),
                      static_cast<unsigned long long>(op.addr),
                      static_cast<unsigned long long>(op.value));
        os << buf;
    }
    os << "end\n";
    return os.str();
}

bool
parse(const std::string& text, Schedule& out, std::string& err)
{
    std::istringstream is(text);
    std::string line;
    out = Schedule{};
    out.omittedKnobs = kOmitEngineThreads | kOmitBtx | kOmitLimitedK |
        kOmitFastPath;
    bool sawVersion = false, sawEnd = false;
    unsigned lineNo = 0;
    // Hand-edited witnesses must fail loudly, not replay the wrong
    // schedule: every config token may appear at most once, and only
    // before the first op line.
    std::set<std::string> seenCfg;
    while (std::getline(is, line)) {
        ++lineNo;
        if (line.empty() || line[0] == '#')
            continue;
        if (!sawVersion) {
            if (line != "hmtx-fuzz-schedule v1") {
                err = "line 1: expected 'hmtx-fuzz-schedule v1'";
                return false;
            }
            sawVersion = true;
            continue;
        }
        std::istringstream ls(line);
        std::string tok;
        ls >> tok;
        auto fail = [&](const std::string& what) {
            err = "line " + std::to_string(lineNo) + ": " + what;
            return false;
        };
        /** The line must hold nothing beyond the parsed fields. */
        auto lineDone = [&] {
            std::string extra;
            return !(ls >> extra);
        };
        FuzzConfig& c = out.cfg;
        OpKind kind;
        if (tok == "end") {
            sawEnd = true;
            break;
        } else if (kindOf(tok, kind)) {
            Op op;
            op.kind = kind;
            unsigned core, vidOff, size;
            std::uint64_t addr, value;
            if (!(ls >> core >> vidOff >> size >> std::hex >> addr >>
                  value))
                return fail("truncated or malformed op line (want "
                            "KIND core vidOff size addr value)");
            if (!lineDone())
                return fail("trailing fields after op");
            if (core > 255)
                return fail("core out of range");
            if (vidOff < 1 || vidOff > 64)
                return fail("vidOff out of range");
            if (size < 1 || size > 8 || (addr & 7) + size > 8)
                return fail("access straddles a word");
            op.core = static_cast<std::uint8_t>(core);
            op.vidOff = static_cast<std::uint8_t>(vidOff);
            op.size = static_cast<std::uint8_t>(size);
            op.addr = addr;
            op.value = value;
            out.ops.push_back(op);
            continue;
        }
        // Config lines, each legal exactly once and only in the
        // header (before any op).
        if (!out.ops.empty())
            return fail("config line '" + tok + "' after the first op");
        if (!seenCfg.insert(tok).second)
            return fail("duplicate '" + tok + "' line");
        if (tok == "cores") {
            if (!(ls >> c.numCores))
                return fail("bad cores");
            if (c.numCores < 1 || c.numCores > 64)
                return fail("cores out of range (1..64)");
        } else if (tok == "l1kb") {
            if (!(ls >> c.l1KB) || c.l1KB == 0)
                return fail("bad l1kb");
        } else if (tok == "l1assoc") {
            if (!(ls >> c.l1Assoc) || c.l1Assoc == 0)
                return fail("bad l1assoc");
        } else if (tok == "l2kb") {
            if (!(ls >> c.l2KB) || c.l2KB == 0)
                return fail("bad l2kb");
        } else if (tok == "l2assoc") {
            if (!(ls >> c.l2Assoc) || c.l2Assoc == 0)
                return fail("bad l2assoc");
        } else if (tok == "vidbits") {
            if (!(ls >> c.vidBits))
                return fail("bad vidbits");
            if (c.vidBits < 2 || c.vidBits > 16)
                return fail("vidbits out of range (2..16)");
        } else if (tok == "unbounded") {
            unsigned v;
            if (!(ls >> v) || v > 1)
                return fail("bad unbounded (want 0 or 1)");
            c.unboundedSpecSets = v != 0;
        } else if (tok == "sla") {
            unsigned v;
            if (!(ls >> v) || v > 1)
                return fail("bad sla (want 0 or 1)");
            c.slaEnabled = v != 0;
        } else if (tok == "shards") {
            for (unsigned& sh : c.shards) {
                if (!(ls >> sh))
                    return fail("bad shards (want 4 cell counts)");
                if (sh < 1 || sh > 4096)
                    return fail("shard count out of range (1..4096)");
            }
        } else if (tok == "shardthreads") {
            for (unsigned& t : c.shardThreads) {
                if (!(ls >> t))
                    return fail("bad shardthreads (want 4 cell "
                                "policies)");
                if (t > 4096)
                    return fail("shardthreads out of range (0..4096)");
            }
        } else if (tok == "enginethreads") {
            for (unsigned& t : c.engineThreads) {
                if (!(ls >> t))
                    return fail("bad enginethreads (want 2 cell "
                                "policies)");
                if (t > 4096)
                    return fail("enginethreads out of range "
                                "(0..4096)");
            }
            out.omittedKnobs &= ~kOmitEngineThreads;
        } else if (tok == "btx") {
            if (!(ls >> c.btxRetries >> c.btxThreshold))
                return fail("bad btx");
            if (c.btxRetries == 0)
                return fail("btx retries must be >= 1");
            if (c.btxThreshold != 0 && c.btxThreshold < c.btxRetries)
                return fail("btx threshold below retry budget");
            out.omittedKnobs &= ~kOmitBtx;
        } else if (tok == "limitedk") {
            if (!(ls >> c.limitedK) || c.limitedK == 0)
                return fail("bad limitedk");
            out.omittedKnobs &= ~kOmitLimitedK;
        } else if (tok == "fastpath") {
            if (!(ls >> c.fastPathMask))
                return fail("bad fastpath");
            if (c.fastPathMask >= (1u << 10))
                return fail("fastpath mask out of range (10 cell "
                            "bits)");
            out.omittedKnobs &= ~kOmitFastPath;
        } else if (tok == "program") {
            unsigned v;
            if (!(ls >> v) || v > 1)
                return fail("bad program (want 0 or 1)");
            out.isProgram = v != 0;
        } else {
            return fail("unknown token '" + tok + "'");
        }
        if (!lineDone())
            return fail("trailing fields after '" + tok + "'");
    }
    if (!sawVersion) {
        err = "empty schedule file";
        return false;
    }
    if (!sawEnd) {
        err = "missing 'end' line";
        return false;
    }
    return true;
}

} // namespace hmtx::check
