/**
 * @file
 * Bounded-exhaustive interleaving model checker (DESIGN.md §14).
 *
 * The fuzzer (check/differ.hh) samples the schedule space; this layer
 * *enumerates* it for small programs. A program is a Schedule whose
 * per-core op order is binding while the cross-core interleaving is
 * free (Schedule::isProgram); explore() walks every merge of the
 * per-core sequences at the protocol-decision preemption points —
 * which core issues its next access, and (optionally) which way each
 * DirectoryFabric delivery decision goes — and replays each complete
 * interleaving through the differential runner against the
 * GoldenModel. Any divergence comes back with the flattened
 * interleaving as a replayable witness.
 *
 * Pruning is sleep-set DPOR (landslide-style, Godefroid's algorithm)
 * keyed on the line-address commutativity classes the commute-aware
 * apply already uses (§13): accesses to different lines commute;
 * same-line accesses, potentially-aborting ops (stores, every bulk
 * op), and ops coupled through the TxPolicy state machine or the SLA
 * FIFO do not. With the relation below, sleep sets visit exactly one
 * linearization per Mazurkiewicz trace, so a clean pruned pass proves
 * every interleaving clean — see §14 for the soundness argument and
 * its one stated assumption (no environmental capacity aborts, which
 * generateProgram guarantees by construction and ExploreStats
 * reports as a tripwire).
 */

#ifndef HMTX_CHECK_EXPLORER_HH
#define HMTX_CHECK_EXPLORER_HH

#include <cstdint>

#include "check/differ.hh"
#include "check/schedule.hh"

namespace hmtx::check
{

/** Knobs for one exhaustive exploration of a program. */
struct ExploreConfig
{
    /** Cell groups every interleaving replays against (differ.hh). */
    unsigned groupMask = kGroupAll;
    /** Sleep-set/DPOR pruning; off = enumerate every interleaving. */
    bool prune = true;
    /** Max complete interleavings to replay before giving up (the
     *  space is multinomial in the per-core op counts). */
    std::uint64_t maxInterleavings = 1u << 20;
    /**
     * Directory delivery-order exploration: branch on the first N
     * DeliveryChooser decision points of each interleaving (2^N
     * replays worst-case per interleaving). 0 = FIFO only, no
     * chooser installed — the pre-§14 behaviour.
     */
    unsigned deliveryPoints = 0;
};

/** What one exploration did, for reports and coverage assertions. */
struct ExploreStats
{
    /** Complete interleavings replayed through the differ. */
    std::uint64_t explored = 0;
    /** Branch choices cut by the sleep sets (each cuts a subtree). */
    std::uint64_t pruned = 0;
    /** Extra replays spent on delivery-order branching. */
    std::uint64_t deliveryRuns = 0;
    /** Delivery decision points the fabric reported (max per replay,
     *  summed over interleavings; 0 unless deliveryPoints > 0). */
    std::uint64_t deliveryPointsSeen = 0;
    /**
     * Replays in which an *environmental* capacity abort fired.
     * The pruning soundness argument (§14) assumes none; a nonzero
     * count means the program over-pressured the tiny caches and the
     * pruned pass must not be read as exhaustive.
     */
    std::uint64_t envAborts = 0;
    /** maxInterleavings was hit; the pass is a prefix, not a proof. */
    bool budgetExhausted = false;
};

/** Outcome of explore(). */
struct ExploreResult
{
    /** First divergence met, untouched (found == false when clean). */
    Divergence div;
    /** The diverging interleaving, flattened to a plain replayable
     *  schedule (valid only when div.found). */
    Schedule witness;
    ExploreStats stats;
};

/**
 * Exhaustively explores @p program (its ops split by core, per-core
 * order preserved). Stops at the first divergence or when the budget
 * is exhausted. Throws std::invalid_argument if an op names a core
 * outside cfg.numCores.
 */
ExploreResult explore(const Schedule& program,
                      const ExploreConfig& cfg = {});

/**
 * The independence relation the sleep sets prune with — exposed so
 * tests can pin it down. @p a and @p b are ops of *different* cores;
 * @p hasSlaOps tells whether the surrounding program contains
 * explicit SlaConfirm/SlaMismatch ops (they consume the pending-SLA
 * FIFO, coupling correct-path loads); @p groupMask is the cell-group
 * mask the exploration replays against (the bounded modes couple
 * spec accesses through the TxPolicy state machine).
 */
bool opsIndependent(const Op& a, const Op& b, bool hasSlaOps,
                    unsigned groupMask);

/**
 * Generates a random small program for model checking: @p cores
 * per-core sequences totalling @p numOps ops over 2-3 cache lines
 * chosen to collide in *no* L1/L2 set, so environmental capacity
 * aborts cannot fire and the pruning argument holds (§14). The same
 * (seed, cores, numOps) triple always yields the same program.
 */
Schedule generateProgram(std::uint64_t seed, unsigned cores,
                         unsigned numOps);

} // namespace hmtx::check

#endif // HMTX_CHECK_EXPLORER_HH
