/**
 * @file
 * Differential execution of fuzz schedules: one schedule runs against
 * the GoldenModel and six real CacheSystem cells — {SnoopBus,
 * DirectoryFabric} × {lazy, eager commit} with per-cell shard counts,
 * plus two cells that route every access through the parallel event
 * engine's staged-retirement path (DESIGN.md §11) — and every
 * architecturally visible outcome is compared:
 *
 *  - per-op: load values vs. the golden visibility rule, abort
 *    outcomes vs. the golden dependence rule, and value/aborted/
 *    needSla/l1Hit/lcVid/abortGen equality across cells;
 *  - per-commit: read/write validation sets vs. the golden sets;
 *  - periodically and at the end: checkInvariants() on every cell;
 *  - at the end: the flushed memory image vs. the golden committed
 *    image, and full image equality across cells.
 *
 * Capacity aborts (§5.4) are environmental — no timing-free model can
 * predict them — so a real abort the golden did not predict is
 * accepted iff the cells' capacityAborts counters moved, and the
 * golden resynchronizes via abortAll().
 */

#ifndef HMTX_CHECK_DIFFER_HH
#define HMTX_CHECK_DIFFER_HH

#include <cstdint>
#include <string>

#include "check/schedule.hh"

namespace hmtx::check
{

/** Outcome of one differential run. */
struct Divergence
{
    bool found = false;
    /** Index of the diverging op, or SIZE_MAX for end-of-run checks. */
    std::size_t opIndex = static_cast<std::size_t>(-1);
    std::string what;
};

/** Aggregated coverage counters across a batch (from cell 0). */
struct Coverage
{
    std::uint64_t schedules = 0;
    std::uint64_t ops = 0;
    std::uint64_t commits = 0;
    std::uint64_t aborts = 0;
    std::uint64_t capacityAborts = 0;
    std::uint64_t vidResets = 0;
    std::uint64_t spills = 0;
    std::uint64_t refills = 0;
    std::uint64_t soRefetches = 0;
    std::uint64_t slaConfirms = 0;
    std::uint64_t slaMismatchAborts = 0;
};

/** Runs @p s against the golden model and the config matrix. */
Divergence runSchedule(const Schedule& s, Coverage* cov = nullptr);

/**
 * ddmin-style shrink: repeatedly deletes op chunks while the schedule
 * keeps diverging (any divergence counts — the minimal schedule may
 * surface the same bug through a different check). Runs at most
 * @p maxRuns differential executions.
 */
Schedule shrinkSchedule(const Schedule& s, unsigned maxRuns = 4000);

} // namespace hmtx::check

#endif // HMTX_CHECK_DIFFER_HH
