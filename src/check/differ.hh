/**
 * @file
 * Differential execution of fuzz schedules: one schedule runs against
 * the GoldenModel and ten real CacheSystem cells in three groups —
 * the six full-HMTX cells ({SnoopBus, DirectoryFabric} × {lazy, eager
 * commit} with per-cell shard counts, plus two cells that route every
 * access through the parallel event engine's staged-retirement path,
 * DESIGN.md §11), two best-effort cells ({bus, dir} with the retry/
 * fallback-lock policy), and two limited-set cells ({bus, dir}
 * tracking only the first K speculative lines per VID) — and every
 * architecturally visible outcome is compared:
 *
 *  - per-op: load values vs. the golden visibility rule, abort
 *    outcomes vs. the golden dependence rule, and value/aborted/
 *    needSla/l1Hit/lcVid/abortGen equality across cells;
 *  - per-commit: read/write validation sets vs. the golden sets;
 *  - periodically and at the end: checkInvariants() on every cell;
 *  - at the end: the flushed memory image vs. the golden committed
 *    image, and full image equality across cells.
 *
 * Capacity aborts (§5.4) are environmental — no timing-free model can
 * predict them — so a real abort the golden did not predict is
 * accepted iff the cells' capacityAborts counters moved, and the
 * golden resynchronizes via abortAll().
 */

#ifndef HMTX_CHECK_DIFFER_HH
#define HMTX_CHECK_DIFFER_HH

#include <cstdint>
#include <functional>
#include <string>

#include "check/schedule.hh"

namespace hmtx::sim
{
class CacheSystem;
}

namespace hmtx::check
{

/** Outcome of one differential run. */
struct Divergence
{
    bool found = false;
    /** Index of the diverging op, or SIZE_MAX for end-of-run checks. */
    std::size_t opIndex = static_cast<std::size_t>(-1);
    std::string what;
};

/** Aggregated coverage counters across a batch (from cell 0). */
struct Coverage
{
    std::uint64_t schedules = 0;
    std::uint64_t ops = 0;
    std::uint64_t commits = 0;
    std::uint64_t aborts = 0;
    std::uint64_t capacityAborts = 0;
    std::uint64_t vidResets = 0;
    std::uint64_t spills = 0;
    std::uint64_t refills = 0;
    std::uint64_t soRefetches = 0;
    std::uint64_t slaConfirms = 0;
    std::uint64_t slaMismatchAborts = 0;
    /** From the best-effort group's cells (TxModeStats). */
    std::uint64_t fallbackEntries = 0;
    std::uint64_t fallbackAccesses = 0;
    std::uint64_t fallbackCommits = 0;
    std::uint64_t fallbackWrapRemaps = 0;
    /** From the limited-set group's cells. */
    std::uint64_t limitedSetAborts = 0;
    /** Zero-event fast path (DESIGN.md §13), summed over every cell
     *  whose fastPathMask bit was set. */
    std::uint64_t fastAttempts = 0;
    std::uint64_t fastHits = 0;
    std::uint64_t fastGenRejections = 0;
};

/**
 * Cell groups of the differential matrix. Each group runs the whole
 * schedule independently against its own golden model: cells of
 * different commit modes diverge architecturally by design, so
 * cross-cell comparison is only meaningful within a group.
 *
 *  - kGroupHmtx: the six full-HMTX cells — {bus, dir} × {lazy, eager}
 *    with per-cell shard policies, plus the two parallel-engine cells;
 *  - kGroupBtx: {bus, dir} best-effort cells (fallback serialization);
 *  - kGroupLtd: {bus, dir} limited-set cells (first-K-lines tracking).
 */
enum GroupSet : unsigned
{
    kGroupHmtx = 1u << 0,
    kGroupBtx = 1u << 1,
    kGroupLtd = 1u << 2,
    kGroupAll = kGroupHmtx | kGroupBtx | kGroupLtd,
};

/**
 * Optional per-run instrumentation. The model checker
 * (check/explorer.hh) uses onCell to install a DeliveryChooser on
 * each cell's fabric before the schedule replays; plain fuzzing
 * passes no hooks and runs exactly as before.
 */
struct RunHooks
{
    /** Called once per constructed matrix cell, before any op runs. */
    std::function<void(const char* cellName, sim::CacheSystem&)> onCell;
};

/** Runs @p s against the golden model and the selected cell groups. */
Divergence runSchedule(const Schedule& s, Coverage* cov = nullptr,
                       unsigned groupMask = kGroupAll,
                       const RunHooks* hooks = nullptr);

/**
 * ddmin-style shrink: repeatedly deletes op chunks while the schedule
 * keeps diverging (any divergence counts — the minimal schedule may
 * surface the same bug through a different check). Runs at most
 * @p maxRuns differential executions.
 */
Schedule shrinkSchedule(const Schedule& s, unsigned maxRuns = 4000,
                        unsigned groupMask = kGroupAll);

} // namespace hmtx::check

#endif // HMTX_CHECK_DIFFER_HH
