/**
 * @file
 * Abstract memory interface workloads are written against, so the same
 * workload code runs under HMTX (speculative, versioned accesses) and
 * under the SMTX baseline (non-speculative accesses plus software
 * logging/forwarding costs).
 */

#ifndef HMTX_RUNTIME_MEMIF_HH
#define HMTX_RUNTIME_MEMIF_HH

#include <cstdint>

#include "core/types.hh"
#include "runtime/thread_context.hh"
#include "sim/task.hh"

namespace hmtx::runtime
{

/**
 * Memory operations as seen by workload code. Implementations route
 * them to the simulated core with whatever extra behaviour the
 * execution model requires (HMTX: nothing, the hardware does the
 * validation; SMTX: per-access logging and forwarding).
 */
class MemIf
{
  public:
    virtual ~MemIf() = default;

    /** Loads @p size bytes at @p a. */
    virtual sim::Task<std::uint64_t> load(Addr a, unsigned size = 8)
        = 0;

    /** Stores @p size bytes of @p v at @p a. */
    virtual sim::Task<void> store(Addr a, std::uint64_t v,
                                  unsigned size = 8) = 0;

    /** Models @p c cycles of computation. */
    virtual sim::Task<void> compute(Cycles c) = 0;

    /**
     * Models a conditional branch and returns @p taken so workloads
     * can branch on data they just computed.
     */
    virtual sim::Task<bool> branch(Addr pc, bool taken) = 0;
};

/**
 * Straight pass-through to the thread context, used by sequential
 * execution and by all HMTX paradigms (the transaction VID is already
 * set in the context's VID register by the executor).
 */
class DirectMem final : public MemIf
{
  public:
    explicit DirectMem(ThreadContext& tc) : tc_(tc) {}

    sim::Task<std::uint64_t>
    load(Addr a, unsigned size = 8) override
    {
        co_return co_await tc_.load(a, size);
    }

    sim::Task<void>
    store(Addr a, std::uint64_t v, unsigned size = 8) override
    {
        co_await tc_.store(a, v, size);
    }

    sim::Task<void>
    compute(Cycles c) override
    {
        co_await tc_.compute(c);
    }

    sim::Task<bool>
    branch(Addr pc, bool taken) override
    {
        co_return co_await tc_.branch(pc, taken) != 0;
    }

  private:
    ThreadContext& tc_;
};

} // namespace hmtx::runtime

#endif // HMTX_RUNTIME_MEMIF_HH
