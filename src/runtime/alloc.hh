/**
 * @file
 * Bump allocator for the simulated address space.
 */

#ifndef HMTX_RUNTIME_ALLOC_HH
#define HMTX_RUNTIME_ALLOC_HH

#include <algorithm>
#include <cassert>
#include <cstddef>
#include <cstdint>
#include <new>
#include <type_traits>
#include <vector>

#include "core/types.hh"

namespace hmtx::runtime
{

/**
 * Carves simulated physical addresses out of a flat heap. Workloads
 * allocate their data structures here during setup; the addresses are
 * then accessed through the coherent cache hierarchy at run time.
 */
class SimAllocator
{
  public:
    /** @param base first heap address (default leaves low memory for
     *              runtime structures) */
    explicit SimAllocator(Addr base = 0x1000000)
        : next_(base)
    {}

    /** Allocates @p bytes with the given power-of-two alignment. */
    Addr
    alloc(std::size_t bytes, std::size_t align = 8)
    {
        assert(align != 0 && (align & (align - 1)) == 0);
        next_ = (next_ + align - 1) & ~static_cast<Addr>(align - 1);
        Addr a = next_;
        next_ += bytes;
        return a;
    }

    /** Allocates @p n full cache lines, line-aligned. */
    Addr
    allocLines(std::size_t n)
    {
        return alloc(n * kLineBytes, kLineBytes);
    }

    /** Allocates an array of @p n 64-bit words. */
    Addr allocWords(std::size_t n) { return alloc(n * 8, 8); }

    /** Total bytes handed out so far. */
    Addr used() const { return next_; }

  private:
    Addr next_;
};

/**
 * Host-side bump arena for per-core request/transaction scratch.
 * Backing storage is grabbed once (construction or the first laps)
 * and reused forever after: reset() recycles the whole arena in O(1)
 * without releasing memory, so a steady-state serving loop performs
 * zero heap allocations per request no matter how many millions of
 * transactions it pushes. highWater() exposes the peak footprint —
 * the kv_serve smoke test asserts it is independent of the request
 * count (no O(n-txns) growth).
 */
class ScratchArena
{
  public:
    explicit ScratchArena(std::size_t capacity = 1 << 16)
    {
        buf_.resize(capacity);
    }

    /**
     * Allocates @p n objects of trivially-destructible type T,
     * value-initialized, 8-byte aligned. Growth only happens if a
     * single batch outgrows the arena (doubling, amortized — and
     * visible in highWater(), so tests catch an unexpectedly growing
     * footprint).
     */
    template <typename T>
    T*
    alloc(std::size_t n = 1)
    {
        static_assert(alignof(T) <= 8,
                      "scratch arena guarantees 8-byte alignment");
        static_assert(std::is_trivially_destructible_v<T>,
                      "reset() never runs destructors");
        const std::size_t bytes = (n * sizeof(T) + 7) & ~std::size_t{7};
        if (used_ + bytes > buf_.size())
            buf_.resize(std::max(buf_.size() * 2, used_ + bytes));
        T* p = reinterpret_cast<T*>(buf_.data() + used_);
        for (std::size_t i = 0; i < n; ++i)
            new (p + i) T();
        used_ += bytes;
        high_ = used_ > high_ ? used_ : high_;
        return p;
    }

    /** Recycles every allocation. O(1); keeps the backing storage. */
    void reset() { used_ = 0; }

    /** Bytes currently allocated since the last reset(). */
    std::size_t used() const { return used_; }

    /** Peak bytes ever allocated between resets. */
    std::size_t highWater() const { return high_; }

    /** Current backing capacity in bytes. */
    std::size_t capacity() const { return buf_.size(); }

  private:
    std::vector<unsigned char> buf_;
    std::size_t used_ = 0;
    std::size_t high_ = 0;
};

} // namespace hmtx::runtime

#endif // HMTX_RUNTIME_ALLOC_HH
