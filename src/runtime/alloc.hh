/**
 * @file
 * Bump allocator for the simulated address space.
 */

#ifndef HMTX_RUNTIME_ALLOC_HH
#define HMTX_RUNTIME_ALLOC_HH

#include <cassert>
#include <cstddef>

#include "core/types.hh"

namespace hmtx::runtime
{

/**
 * Carves simulated physical addresses out of a flat heap. Workloads
 * allocate their data structures here during setup; the addresses are
 * then accessed through the coherent cache hierarchy at run time.
 */
class SimAllocator
{
  public:
    /** @param base first heap address (default leaves low memory for
     *              runtime structures) */
    explicit SimAllocator(Addr base = 0x1000000)
        : next_(base)
    {}

    /** Allocates @p bytes with the given power-of-two alignment. */
    Addr
    alloc(std::size_t bytes, std::size_t align = 8)
    {
        assert(align != 0 && (align & (align - 1)) == 0);
        next_ = (next_ + align - 1) & ~static_cast<Addr>(align - 1);
        Addr a = next_;
        next_ += bytes;
        return a;
    }

    /** Allocates @p n full cache lines, line-aligned. */
    Addr
    allocLines(std::size_t n)
    {
        return alloc(n * kLineBytes, kLineBytes);
    }

    /** Allocates an array of @p n 64-bit words. */
    Addr allocWords(std::size_t n) { return alloc(n * 8, 8); }

    /** Total bytes handed out so far. */
    Addr used() const { return next_; }

  private:
    Addr next_;
};

} // namespace hmtx::runtime

#endif // HMTX_RUNTIME_ALLOC_HH
