#include "runtime/machine.hh"

#include <algorithm>
#include <stdexcept>
#include <thread>
#include <utility>

#include "runtime/thread_context.hh"

namespace hmtx::runtime
{

namespace
{

/**
 * Host worker threads for the parallel engine, mirroring the
 * shardThreads policy (cache_system.cc): 0 = auto (threads only on a
 * multi-CPU host), 1 = inline, >=2 = forced. Workers are clamped to
 * the simulated core count (one lane per core, a lane never spans
 * workers) and, in auto mode, to the host CPU count.
 */
unsigned
engineWorkers(const sim::MachineConfig& cfg)
{
    const unsigned host =
        std::max(1u, std::thread::hardware_concurrency());
    if (cfg.engineThreads == 1)
        return 0;
    if (cfg.engineThreads == 0)
        return host > 1 ? std::min(cfg.numCores, host) : 0;
    return std::min(cfg.numCores, cfg.engineThreads);
}

} // namespace

Machine::Machine(const sim::MachineConfig& cfg)
    : cfg_(cfg), sys_(eq_, cfg)
{
    ctxs_.reserve(cfg.numCores);
    for (CoreId c = 0; c < cfg.numCores; ++c)
        ctxs_.push_back(std::make_unique<ThreadContext>(*this, c));
    if (cfg.engine == sim::SimEngine::Parallel) {
        peng_ = std::make_unique<sim::ParallelEngine>(
            eq_, cfg.numCores, engineWorkers(cfg),
            std::max<Cycles>(1, sys_.interconnect().minC2CLatency()));
        peng_->setApply(
            [this](std::uint32_t lane, const sim::LaneIntent& in) {
                return ctxs_[lane]->applyStaged(in);
            });
        if (cfg.applyCommute && sys_.fastPathEnabled()) {
            peng_->setFastPath(
                [this](std::uint32_t lane, const sim::LaneIntent& in,
                       void*& line, std::uint64_t& klass) {
                    return ctxs_[lane]->tryFastStaged(in, line, klass);
                },
                [this](std::uint32_t lane, const sim::LaneIntent& in,
                       void* line, Tick stamp) {
                    return ctxs_[lane]->fastStaged(in, line, stamp);
                },
                [this](std::uint32_t lane, const sim::LaneIntent& in) {
                    ctxs_[lane]->accountFastStaged(in);
                },
                [this](unsigned n) { return sys_.reserveUseClock(n); });
        }
    }
}

Machine::~Machine() = default;

void
Machine::spawn(sim::Task<void> t)
{
    roots_.push_back(std::move(t));
    roots_.back().start();
    // A root runs executor code until its first suspension; retire any
    // sections it opened so the next root sees the same simulator
    // state it would under the sequential engine.
    if (peng_)
        peng_->drainAll();
}

void
Machine::run()
{
    if (peng_)
        peng_->run();
    else
        eq_.run();
    for (auto& t : roots_) {
        t.rethrow();
        if (!t.done()) {
            throw std::logic_error(
                "Machine::run: event queue drained but a task is "
                "still blocked (runtime deadlock)");
        }
    }
}

} // namespace hmtx::runtime
