#include "runtime/machine.hh"

#include <stdexcept>
#include <utility>

#include "runtime/thread_context.hh"

namespace hmtx::runtime
{

Machine::Machine(const sim::MachineConfig& cfg)
    : cfg_(cfg), sys_(eq_, cfg)
{
    ctxs_.reserve(cfg.numCores);
    for (CoreId c = 0; c < cfg.numCores; ++c)
        ctxs_.push_back(std::make_unique<ThreadContext>(*this, c));
}

Machine::~Machine() = default;

void
Machine::spawn(sim::Task<void> t)
{
    roots_.push_back(std::move(t));
    roots_.back().start();
}

void
Machine::run()
{
    eq_.run();
    for (auto& t : roots_) {
        t.rethrow();
        if (!t.done()) {
            throw std::logic_error(
                "Machine::run: event queue drained but a task is "
                "still blocked (runtime deadlock)");
        }
    }
}

} // namespace hmtx::runtime
