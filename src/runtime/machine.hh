/**
 * @file
 * Top-level simulated machine: event queue, memory system, cores and
 * thread contexts wired per Table 2.
 */

#ifndef HMTX_RUNTIME_MACHINE_HH
#define HMTX_RUNTIME_MACHINE_HH

#include <memory>
#include <vector>

#include "runtime/alloc.hh"
#include "sim/branch_predictor.hh"
#include "sim/cache_system.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/task.hh"

namespace hmtx::runtime
{

class ThreadContext;

/**
 * Owns every simulation component for one run and drives the event
 * loop. One ThreadContext exists per core; executors spawn root
 * coroutines bound to those contexts and then run() the machine until
 * everything completes.
 */
class Machine
{
  public:
    explicit Machine(const sim::MachineConfig& cfg);
    ~Machine();

    Machine(const Machine&) = delete;
    Machine& operator=(const Machine&) = delete;

    sim::EventQueue& eq() { return eq_; }
    sim::CacheSystem& sys() { return sys_; }
    SimAllocator& heap() { return heap_; }
    const sim::MachineConfig& config() const { return cfg_; }

    /** The execution context of core @p c. */
    ThreadContext& ctx(CoreId c) { return *ctxs_[c]; }

    /** Current simulated time. */
    Tick now() const { return eq_.curTick(); }

    /**
     * Registers and starts a root task. The machine keeps it alive for
     * the rest of the run.
     */
    void spawn(sim::Task<void> t);

    /**
     * Runs the event loop until it drains. Throws if any root task
     * ended with an exception or is still blocked (deadlock).
     */
    void run();

  private:
    sim::MachineConfig cfg_;
    sim::EventQueue eq_;
    sim::CacheSystem sys_;
    SimAllocator heap_;
    std::vector<std::unique_ptr<ThreadContext>> ctxs_;
    std::vector<sim::Task<void>> roots_;
};

} // namespace hmtx::runtime

#endif // HMTX_RUNTIME_MACHINE_HH
