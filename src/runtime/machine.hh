/**
 * @file
 * Top-level simulated machine: event queue, memory system, cores and
 * thread contexts wired per Table 2.
 */

#ifndef HMTX_RUNTIME_MACHINE_HH
#define HMTX_RUNTIME_MACHINE_HH

#include <memory>
#include <vector>

#include "runtime/alloc.hh"
#include "sim/branch_predictor.hh"
#include "sim/cache_system.hh"
#include "sim/config.hh"
#include "sim/event_queue.hh"
#include "sim/parallel_engine.hh"
#include "sim/task.hh"

namespace hmtx::runtime
{

class ThreadContext;

/**
 * Owns every simulation component for one run and drives the event
 * loop. One ThreadContext exists per core; executors spawn root
 * coroutines bound to those contexts and then run() the machine until
 * everything completes.
 */
class Machine
{
  public:
    explicit Machine(const sim::MachineConfig& cfg);
    ~Machine();

    Machine(const Machine&) = delete;
    Machine& operator=(const Machine&) = delete;

    sim::EventQueue& eq() { return eq_; }
    sim::CacheSystem& sys() { return sys_; }
    SimAllocator& heap() { return heap_; }
    const sim::MachineConfig& config() const { return cfg_; }

    /** The execution context of core @p c. */
    ThreadContext& ctx(CoreId c) { return *ctxs_[c]; }

    /** Current simulated time. */
    Tick now() const { return eq_.curTick(); }

    /**
     * Registers and starts a root task. The machine keeps it alive for
     * the rest of the run. Under the parallel engine, any staged
     * sections the root opens are retired before spawn returns, so
     * spawn-time protocol accesses keep the sequential order.
     */
    void spawn(sim::Task<void> t);

    /**
     * Runs the event loop (sequential or parallel per cfg.engine)
     * until it drains. Throws if any root task ended with an exception
     * or is still blocked (deadlock).
     */
    void run();

    /** Parallel engine, or null under the sequential engine. */
    sim::ParallelEngine* parallel() { return peng_.get(); }
    const sim::ParallelEngine* parallel() const { return peng_.get(); }

    /**
     * Wraps one workload stage of core @p c for execution under the
     * configured engine: `co_await m.section(c, wl.stage(...))` is the
     * engine-agnostic spelling of `co_await wl.stage(...)` — identical
     * behaviour sequentially, staged on a worker in parallel mode.
     */
    sim::StagedSection
    section(CoreId c, sim::Task<void> t)
    {
        return {peng_.get(), c, std::move(t)};
    }

  private:
    sim::MachineConfig cfg_;
    sim::EventQueue eq_;
    sim::CacheSystem sys_;
    SimAllocator heap_;
    std::vector<std::unique_ptr<ThreadContext>> ctxs_;
    std::vector<sim::Task<void>> roots_;
    /** Declared last: its worker threads must stop before the lanes'
     *  coroutine frames (roots_) or contexts are torn down. */
    std::unique_ptr<sim::ParallelEngine> peng_;
};

} // namespace hmtx::runtime

#endif // HMTX_RUNTIME_MACHINE_HH
