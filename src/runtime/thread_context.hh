/**
 * @file
 * Per-core execution context exposing the MTX ISA (§3.1) and timed
 * memory operations to workload coroutines.
 */

#ifndef HMTX_RUNTIME_THREAD_CONTEXT_HH
#define HMTX_RUNTIME_THREAD_CONTEXT_HH

#include <array>
#include <coroutine>
#include <cstdint>

#include "core/sla.hh"
#include "core/types.hh"
#include "sim/branch_predictor.hh"
#include "sim/event_queue.hh"
#include "sim/parallel_engine.hh"
#include "sim/rng.hh"
#include "sim/stats.hh"
#include "sim/task.hh"

namespace hmtx::runtime
{

class Machine;

/**
 * Awaitable returned by every timed ThreadContext operation.
 *
 * Two modes: the sequential form carries the already-computed outcome
 * (the operation executed at call time) and schedules its wake-up; the
 * staged form (parallel engine, `eng` set) only parked an intent — it
 * records the suspension point with the lane and reads the outcome the
 * coordinator produced once the lane's wake turn resumes it.
 */
struct OpAwait
{
    sim::EventQueue* eq = nullptr;
    Tick wake = 0;
    std::uint64_t value = 0;
    bool abort = false;
    Vid vid = 0;
    /** Set in staged mode; the lane's retired result replaces the
     *  inline fields above. */
    sim::ParallelEngine* eng = nullptr;
    std::uint32_t lane = 0;
    /** The access retired on the zero-event fast path (DESIGN.md §13):
     *  if nothing else can fire before `wake`, skip the event queue
     *  entirely and continue the coroutine without suspending. */
    bool fastHint = false;
    /** Bypass counter sink, set alongside fastHint. */
    sim::FastStats* fstats = nullptr;

    bool await_ready() const noexcept { return false; }

    bool
    await_suspend(std::coroutine_handle<> h) const
    {
        if (eng != nullptr) {
            eng->stageSuspend(lane, h);
            return true;
        }
        if (fastHint && eq->tryBypass(wake)) {
            if (fstats != nullptr)
                ++fstats->eventBypasses;
            return false; // zero events: continue inline at `wake`
        }
        eq->scheduleResume(wake, h);
        return true;
    }

    std::uint64_t
    await_resume() const
    {
        if (eng != nullptr) {
            const sim::StagedResult& r = eng->stagedResult(lane);
            if (r.abort)
                throw sim::TxAborted{r.vid};
            return r.value;
        }
        if (abort)
            throw sim::TxAborted{vid};
        return value;
    }
};

/**
 * The software-visible core interface. A ThreadContext models one
 * hardware thread: it holds the per-thread VID register that
 * beginMTX(vid) sets (§3.1), the SLA buffer (§5.1), a branch unit that
 * injects wrong-path loads on mispredictions, and simple in-order
 * timing (1 cycle issue + memory latency).
 *
 * Every operation throws sim::TxAborted when the surrounding MTX was
 * aborted — the analog of the hardware vectoring the thread to the
 * recovery address registered with initMTX(pc). Executors catch it at
 * the stage root and run recovery.
 */
class ThreadContext
{
  public:
    ThreadContext(Machine& m, CoreId core);

    CoreId core() const { return core_; }

    /** Current VID register value (0 = non-speculative). */
    Vid vid() const { return vid_; }

    /**
     * beginMTX(vid): all following memory operations carry @p vid.
     * beginMTX(0) returns to non-speculative execution without
     * committing (§3.1). Takes one cycle, modeled in the next await.
     */
    void beginMtx(Vid vid);

    /**
     * commitMTX(vid): atomically group-commits the transaction across
     * all caches (§4.4) and returns to non-speculative execution.
     * Throws sim::TxAborted if the transaction was already aborted.
     */
    OpAwait commitMtx(Vid vid);

    /**
     * abortMTX: software-detected misspeculation (e.g. control-flow
     * speculation checked in a late pipeline stage, Figure 3). Flushes
     * all transactional state.
     */
    void abortMtx();

    /** Timed load of @p size bytes. */
    OpAwait load(Addr a, unsigned size = 8);

    /** Timed store of @p size bytes. */
    OpAwait store(Addr a, std::uint64_t v, unsigned size = 8);

    /** Models @p c cycles of pure computation. */
    OpAwait compute(Cycles c);

    /**
     * Models a conditional branch at @p pc with outcome @p taken.
     * Consults the gshare predictor; a misprediction costs the refill
     * penalty and injects wrong-path loads (§5.1). The awaited value
     * is @p taken (so workloads can use it directly).
     */
    OpAwait branch(Addr pc, bool taken);

    /** Dynamic instructions issued by this context. */
    std::uint64_t instructions() const { return insts_; }

    /** Branch unit of this core. */
    const sim::BranchPredictor& predictor() const { return bp_; }

    /** SLA buffer of this core. */
    const SlaUnit& slaUnit() const { return sla_; }

    /**
     * Retires one staged intent for this core's lane (parallel engine
     * apply callback). Runs on the coordinator at the intent's own
     * event slot and performs the operation's full effect — protocol
     * access, predictor/RNG/SLA updates, instruction count — in the
     * sequential engine's exact order.
     */
    sim::StagedResult applyStaged(const sim::LaneIntent& in);

    /**
     * Commute-aware apply, classify hook (coordinator): true when
     * @p in would retire on the zero-event fast path for this lane's
     * current VID. Fills the probed line and the commutativity class
     * (the line address). No architectural side effects.
     */
    bool tryFastStaged(const sim::LaneIntent& in, void*& line,
                       std::uint64_t& klass);

    /**
     * Commute-aware apply, data half (worker-safe): payload move, LRU
     * stamp, and this lane's local counters for a classified intent.
     */
    sim::StagedResult fastStaged(const sim::LaneIntent& in, void* line,
                                 Tick stamp);

    /** Commute-aware apply, accounting half (coordinator, in
     *  retirement order): the shared SysStats bumps of a fast hit. */
    void accountFastStaged(const sim::LaneIntent& in);

  private:
    bool abortedSinceBegin() const;
    OpAwait abortedOp();
    void noteAddr(Addr a);

    /** Engine to stage on when this lane is inside a staged section,
     *  else null (execute inline, sequential semantics). */
    sim::ParallelEngine* stagingEngine() const;

    // Full operation effects, factored out so the sequential path and
    // the parallel engine's in-order retirement share one body.
    OpAwait applyLoad(Addr a, unsigned size);
    OpAwait applyStore(Addr a, std::uint64_t v, unsigned size);
    OpAwait applyCompute(Cycles c);
    OpAwait applyBranch(Addr pc, bool taken);

    Machine& m_;
    CoreId core_;
    Vid vid_ = kNonSpecVid;
    std::uint64_t abortGenSeen_ = 0;
    std::uint64_t insts_ = 0;
    sim::BranchPredictor bp_;
    SlaUnit sla_;
    sim::Rng rng_;
    std::array<Addr, 8> recent_{};
    unsigned recentCount_ = 0;
};

} // namespace hmtx::runtime

#endif // HMTX_RUNTIME_THREAD_CONTEXT_HH
