/**
 * @file
 * Per-core execution context exposing the MTX ISA (§3.1) and timed
 * memory operations to workload coroutines.
 */

#ifndef HMTX_RUNTIME_THREAD_CONTEXT_HH
#define HMTX_RUNTIME_THREAD_CONTEXT_HH

#include <array>
#include <coroutine>
#include <cstdint>

#include "core/sla.hh"
#include "core/types.hh"
#include "sim/branch_predictor.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"
#include "sim/task.hh"

namespace hmtx::runtime
{

class Machine;

/** Awaitable returned by every timed ThreadContext operation. */
struct OpAwait
{
    sim::EventQueue* eq = nullptr;
    Tick wake = 0;
    std::uint64_t value = 0;
    bool abort = false;
    Vid vid = 0;

    bool await_ready() const noexcept { return false; }

    void
    await_suspend(std::coroutine_handle<> h) const
    {
        eq->scheduleResume(wake, h);
    }

    std::uint64_t
    await_resume() const
    {
        if (abort)
            throw sim::TxAborted{vid};
        return value;
    }
};

/**
 * The software-visible core interface. A ThreadContext models one
 * hardware thread: it holds the per-thread VID register that
 * beginMTX(vid) sets (§3.1), the SLA buffer (§5.1), a branch unit that
 * injects wrong-path loads on mispredictions, and simple in-order
 * timing (1 cycle issue + memory latency).
 *
 * Every operation throws sim::TxAborted when the surrounding MTX was
 * aborted — the analog of the hardware vectoring the thread to the
 * recovery address registered with initMTX(pc). Executors catch it at
 * the stage root and run recovery.
 */
class ThreadContext
{
  public:
    ThreadContext(Machine& m, CoreId core);

    CoreId core() const { return core_; }

    /** Current VID register value (0 = non-speculative). */
    Vid vid() const { return vid_; }

    /**
     * beginMTX(vid): all following memory operations carry @p vid.
     * beginMTX(0) returns to non-speculative execution without
     * committing (§3.1). Takes one cycle, modeled in the next await.
     */
    void beginMtx(Vid vid);

    /**
     * commitMTX(vid): atomically group-commits the transaction across
     * all caches (§4.4) and returns to non-speculative execution.
     * Throws sim::TxAborted if the transaction was already aborted.
     */
    OpAwait commitMtx(Vid vid);

    /**
     * abortMTX: software-detected misspeculation (e.g. control-flow
     * speculation checked in a late pipeline stage, Figure 3). Flushes
     * all transactional state.
     */
    void abortMtx();

    /** Timed load of @p size bytes. */
    OpAwait load(Addr a, unsigned size = 8);

    /** Timed store of @p size bytes. */
    OpAwait store(Addr a, std::uint64_t v, unsigned size = 8);

    /** Models @p c cycles of pure computation. */
    OpAwait compute(Cycles c);

    /**
     * Models a conditional branch at @p pc with outcome @p taken.
     * Consults the gshare predictor; a misprediction costs the refill
     * penalty and injects wrong-path loads (§5.1). The awaited value
     * is @p taken (so workloads can use it directly).
     */
    OpAwait branch(Addr pc, bool taken);

    /** Dynamic instructions issued by this context. */
    std::uint64_t instructions() const { return insts_; }

    /** Branch unit of this core. */
    const sim::BranchPredictor& predictor() const { return bp_; }

    /** SLA buffer of this core. */
    const SlaUnit& slaUnit() const { return sla_; }

  private:
    bool abortedSinceBegin() const;
    OpAwait abortedOp();
    void noteAddr(Addr a);

    Machine& m_;
    CoreId core_;
    Vid vid_ = kNonSpecVid;
    std::uint64_t abortGenSeen_ = 0;
    std::uint64_t insts_ = 0;
    sim::BranchPredictor bp_;
    SlaUnit sla_;
    sim::Rng rng_;
    std::array<Addr, 8> recent_{};
    unsigned recentCount_ = 0;
};

} // namespace hmtx::runtime

#endif // HMTX_RUNTIME_THREAD_CONTEXT_HH
