#include "runtime/thread_context.hh"

#include "runtime/machine.hh"

namespace hmtx::runtime
{

ThreadContext::ThreadContext(Machine& m, CoreId core)
    : m_(m), core_(core),
      sla_(m.config().slaCapacity),
      rng_(0xC0FFEE + core)
{}

bool
ThreadContext::abortedSinceBegin() const
{
    // The best-effort fallback holder runs non-speculatively under the
    // global lock: aborts flush everyone else's state, never its own,
    // so it does not unwind (the lock would otherwise never release).
    return vid_ != kNonSpecVid &&
        m_.sys().abortGen() != abortGenSeen_ &&
        !m_.sys().txPolicy().serializes(vid_);
}

OpAwait
ThreadContext::abortedOp()
{
    // Resume next cycle and throw: the thread unwinds to its recovery
    // handler without touching the memory system further.
    return OpAwait{&m_.eq(), m_.now() + 1, 0, true, vid_};
}

void
ThreadContext::noteAddr(Addr a)
{
    recent_[recentCount_++ % recent_.size()] = a;
}

void
ThreadContext::beginMtx(Vid vid)
{
    ++insts_;
    vid_ = vid;
    abortGenSeen_ = m_.sys().abortGen();
}

OpAwait
ThreadContext::commitMtx(Vid vid)
{
    ++insts_;
    if (abortedSinceBegin())
        return abortedOp();
    Cycles c = m_.sys().commit(vid);
    vid_ = kNonSpecVid;
    return OpAwait{&m_.eq(), m_.now() + 1 + c, 0, false, vid};
}

void
ThreadContext::abortMtx()
{
    ++insts_;
    m_.sys().abortAll();
    vid_ = kNonSpecVid;
}

sim::ParallelEngine*
ThreadContext::stagingEngine() const
{
    sim::ParallelEngine* eng = m_.parallel();
    return eng != nullptr && eng->staging(core_) ? eng : nullptr;
}

sim::StagedResult
ThreadContext::applyStaged(const sim::LaneIntent& in)
{
    OpAwait r;
    switch (in.kind) {
      case sim::LaneIntent::Kind::Load:
        r = applyLoad(in.addr, in.size);
        break;
      case sim::LaneIntent::Kind::Store:
        r = applyStore(in.addr, in.value, in.size);
        break;
      case sim::LaneIntent::Kind::Compute:
        r = applyCompute(in.cycles);
        break;
      case sim::LaneIntent::Kind::Branch:
        r = applyBranch(in.pc, in.taken);
        break;
    }
    return {r.wake, r.value, r.abort, r.vid};
}

bool
ThreadContext::tryFastStaged(const sim::LaneIntent& in, void*& line,
                             std::uint64_t& klass)
{
    const bool isStore = in.kind == sim::LaneIntent::Kind::Store;
    if (!isStore && in.kind != sim::LaneIntent::Kind::Load) {
        // Compute/branch turns never touch the memory system: under
        // the §9 relation they commute with every other intent. They
        // join the batch as coordinator-serial members (null line).
        line = nullptr;
        klass = 0;
        return true;
    }
    if (!m_.sys().fastPathEnabled() || abortedSinceBegin())
        return false;
    sim::Line* l = m_.sys().fastProbe(core_, in.addr, vid_, isStore);
    if (l == nullptr)
        return false;
    line = l;
    klass = lineAddr(in.addr);
    return true;
}

sim::StagedResult
ThreadContext::fastStaged(const sim::LaneIntent& in, void* line,
                          Tick stamp)
{
    const bool isStore = in.kind == sim::LaneIntent::Kind::Store;
    ++insts_;
    noteAddr(in.addr);
    const std::uint64_t v = m_.sys().fastData(
        *static_cast<sim::Line*>(line), in.addr, in.value, in.size,
        isStore, stamp);
    return {m_.now() + 1 + m_.config().l1Latency,
            isStore ? in.value : v, false, vid_};
}

void
ThreadContext::accountFastStaged(const sim::LaneIntent& in)
{
    m_.sys().fastAccount(in.kind == sim::LaneIntent::Kind::Store,
                         m_.sys().fastEffVid(vid_) != kNonSpecVid);
}

OpAwait
ThreadContext::load(Addr a, unsigned size)
{
    if (sim::ParallelEngine* eng = stagingEngine()) {
        eng->stageIntent(core_, {sim::LaneIntent::Kind::Load, a, 0,
                                 size, 0, 0, false});
        return OpAwait{nullptr, 0, 0, false, 0, eng, core_};
    }
    return applyLoad(a, size);
}

OpAwait
ThreadContext::applyLoad(Addr a, unsigned size)
{
    ++insts_;
    if (abortedSinceBegin())
        return abortedOp();
    sim::AccessResult r = m_.sys().load(core_, a, size, vid_);
    noteAddr(a);
    if (r.needSla && !sla_.full())
        sla_.push({a, vid_, r.value, size});
    OpAwait op{&m_.eq(), m_.now() + 1 + r.latency, r.value,
               r.aborted, vid_};
    op.fastHint = r.fastHit && !r.aborted;
    op.fstats = &m_.sys().fastStats();
    return op;
}

OpAwait
ThreadContext::store(Addr a, std::uint64_t v, unsigned size)
{
    if (sim::ParallelEngine* eng = stagingEngine()) {
        eng->stageIntent(core_, {sim::LaneIntent::Kind::Store, a, v,
                                 size, 0, 0, false});
        return OpAwait{nullptr, 0, 0, false, 0, eng, core_};
    }
    return applyStore(a, v, size);
}

OpAwait
ThreadContext::applyStore(Addr a, std::uint64_t v, unsigned size)
{
    ++insts_;
    if (abortedSinceBegin())
        return abortedOp();
    sim::AccessResult r = m_.sys().store(core_, a, v, size, vid_);
    noteAddr(a);
    OpAwait op{&m_.eq(), m_.now() + 1 + r.latency, v, r.aborted,
               vid_};
    op.fastHint = r.fastHit && !r.aborted;
    op.fstats = &m_.sys().fastStats();
    return op;
}

OpAwait
ThreadContext::compute(Cycles c)
{
    if (sim::ParallelEngine* eng = stagingEngine()) {
        eng->stageIntent(core_, {sim::LaneIntent::Kind::Compute, 0, 0,
                                 8, c, 0, false});
        return OpAwait{nullptr, 0, 0, false, 0, eng, core_};
    }
    return applyCompute(c);
}

OpAwait
ThreadContext::applyCompute(Cycles c)
{
    insts_ += c; // roughly one instruction per cycle of compute
    if (abortedSinceBegin())
        return abortedOp();
    return OpAwait{&m_.eq(), m_.now() + (c == 0 ? 1 : c), 0, false,
                   vid_};
}

OpAwait
ThreadContext::branch(Addr pc, bool taken)
{
    if (sim::ParallelEngine* eng = stagingEngine()) {
        eng->stageIntent(core_, {sim::LaneIntent::Kind::Branch, 0, 0,
                                 8, 0, pc, taken});
        return OpAwait{nullptr, 0, 0, false, 0, eng, core_};
    }
    return applyBranch(pc, taken);
}

OpAwait
ThreadContext::applyBranch(Addr pc, bool taken)
{
    ++insts_;
    if (abortedSinceBegin())
        return abortedOp();
    bool correct = bp_.predict(pc, taken);
    Cycles cost = 1;
    if (!correct) {
        cost += m_.config().mispredictPenalty;
        // The wrong path executed a few loads before the redirect;
        // they touch the caches but, with SLAs, never mark lines
        // (§5.1). The addresses come from the thread's recent working
        // set, as wrong-path code typically touches nearby data.
        unsigned n = std::min<unsigned>(m_.config().wrongPathLoads,
                                        recentCount_);
        for (unsigned i = 0; i < n; ++i) {
            Addr base = recent_[rng_.range(
                std::min<std::uint64_t>(recentCount_,
                                        recent_.size()))];
            std::int64_t off =
                (static_cast<std::int64_t>(rng_.range(3)) - 1) *
                static_cast<std::int64_t>(kLineBytes);
            Addr wp = base + static_cast<Addr>(off);
            sim::AccessResult r =
                m_.sys().load(core_, lineAddr(wp), 8, vid_, true);
            if (r.aborted && !m_.sys().txPolicy().serializes(vid_))
                return OpAwait{&m_.eq(), m_.now() + cost, 0, true,
                               vid_};
        }
    }
    // Branch resolution retires the loads it guarded; their buffered
    // acknowledgments go out (the cache model applied the markings at
    // load time; wrong-path loads never enter the buffer).
    sla_.drain();
    return OpAwait{&m_.eq(), m_.now() + cost, taken ? 1u : 0u, false,
                   vid_};
}

} // namespace hmtx::runtime
