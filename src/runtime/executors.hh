/**
 * @file
 * Execution-model drivers: sequential, HMTX pipeline (DSWP/PS-DSWP),
 * HMTX DOALL, and DOACROSS, with VID-window management (§4.6) and
 * abort recovery (the initMTX handler analog).
 */

#ifndef HMTX_RUNTIME_EXECUTORS_HH
#define HMTX_RUNTIME_EXECUTORS_HH

#include <cstdint>
#include <string>

#include "core/tx_policy.hh"
#include "core/vid.hh"
#include "runtime/machine.hh"
#include "runtime/signal.hh"
#include "runtime/workload.hh"
#include "sim/stats.hh"

namespace hmtx::runtime
{

/** Everything measured during one workload run. */
struct ExecResult
{
    /** Execution model label ("sequential", "HMTX PS-DSWP x3", ...). */
    std::string model;
    /** Hot-loop execution time in cycles. */
    Tick cycles = 0;
    /** Output digest; must match across execution models. */
    std::uint64_t checksum = 0;
    /** Dynamic instructions across all cores. */
    std::uint64_t instructions = 0;
    /** Committed transactions. */
    std::uint64_t transactions = 0;
    /** VID resets performed (§4.6). */
    std::uint64_t vidResets = 0;
    /** Cycles stage 1 stalled waiting for a VID reset (§4.6). */
    Tick vidStallCycles = 0;
    /** Conditional branches and mispredictions (hot loop, Table 1). */
    std::uint64_t branches = 0;
    std::uint64_t mispredicts = 0;
    /** Memory-system statistics snapshot. */
    sim::SysStats stats;
    /** Transaction-mode policy counters (fallback/limited-set). */
    TxModeStats txStats;
    /** Simulator-side index diagnostics (not architectural). */
    sim::IndexStats indexStats;
    /** Sharded-engine diagnostics (simulator-side, like indexStats). */
    sim::ShardStats shardStats;
    /** Parallel-engine diagnostics (simulator-side, like shardStats;
     *  excluded from differential equality). */
    sim::ParStats parStats;
    /** Zero-event fast-path diagnostics (simulator-side, like
     *  parStats; excluded from differential equality). */
    sim::FastStats fastStats;
    /** SMTX runs only: value-validation failures detected by the
     *  commit process (0 for every abort-free run). */
    std::uint64_t smtxMisspeculations = 0;

    /** Branch misprediction rate (Table 1). */
    double
    mispredictRate() const
    {
        return branches ? static_cast<double>(mispredicts) / branches
                        : 0.0;
    }
};

/**
 * Shared VID-window sequencing: maps iteration numbers to (epoch, VID)
 * pairs, gates transaction begin on the epoch (stalling at window
 * exhaustion until the reset, §4.6), and serializes commits in
 * original program order (§4.7).
 */
class VidCoordinator
{
  public:
    /**
     * @param m         machine to coordinate
     * @param recovering executor flag; waiters throw sim::TxAborted
     *                   when it becomes true so they reach the
     *                   recovery barrier
     */
    VidCoordinator(Machine& m, const bool* recovering);

    /** Usable VIDs per window. */
    Vid maxVid() const { return maxVid_; }

    /** VID that iteration @p iter runs under. */
    Vid vidOf(std::uint64_t iter) const
    {
        return static_cast<Vid>(iter % maxVid_) + 1;
    }

    /**
     * Waits for iteration @p iter's window epoch, then sets the VID
     * register (beginMTX). Returns the VID.
     */
    sim::Task<Vid> beginIter(ThreadContext& tc, std::uint64_t iter);

    /**
     * Waits for iteration @p iter's in-order commit turn, commits, and
     * performs the VID reset when the window is exhausted.
     */
    sim::Task<void> commitIter(ThreadContext& tc, std::uint64_t iter);

    /** Iterations committed so far (monotonic, in order). */
    std::uint64_t committedIters() const { return committed_; }

    /** Cycles spent stalled waiting for VID resets (ablation §4.6). */
    Tick stallCycles() const { return stall_; }

    /** VID resets performed. */
    std::uint64_t resets() const { return resets_; }

    /** Wakes all waiters (recovery: they re-check and unwind). */
    void kickWaiters() { sig_.notifyAll(); }

    /** Re-aligns the window to the committed state after an abort. */
    void rollbackToCommitted();

  private:
    Machine& m_;
    const bool* recovering_;
    Vid maxVid_;
    std::uint64_t epoch_ = 0;
    std::uint64_t committed_ = 0;
    Tick stall_ = 0;
    std::uint64_t resets_ = 0;
    Signal sig_;
};

/** Drivers for each execution model. Each builds a fresh Machine. */
class Runner
{
  public:
    /** Original sequential loop on one core. */
    static ExecResult runSequential(LoopWorkload& wl,
                                    const sim::MachineConfig& cfg);

    /**
     * HMTX pipeline execution: stage 1 on core 0 and @p workers
     * replicated stage-2 workers (1 = DSWP, >1 = PS-DSWP), as in
     * Figure 1(c)/(d) and Figure 3.
     */
    static ExecResult runPipeline(LoopWorkload& wl,
                                  const sim::MachineConfig& cfg,
                                  unsigned workers);

    /** HMTX DOALL: whole iterations across @p workers cores. */
    static ExecResult runDoall(LoopWorkload& wl,
                               const sim::MachineConfig& cfg,
                               unsigned workers);

    /** DOACROSS with the loop-carried dependence passed core-to-core
     *  (Figure 1(b)); used by the Figure 1 schedule bench. */
    static ExecResult runDoacross(LoopWorkload& wl,
                                  const sim::MachineConfig& cfg,
                                  unsigned workers);

    /**
     * Dispatches on the workload's paradigm with all cores of @p cfg:
     * PS-DSWP/DSWP get numCores-1 workers, DOALL gets numCores.
     */
    static ExecResult runHmtx(LoopWorkload& wl,
                              const sim::MachineConfig& cfg);
};

} // namespace hmtx::runtime

#endif // HMTX_RUNTIME_EXECUTORS_HH
