#include "runtime/executors.hh"

#include <algorithm>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "runtime/queue.hh"
#include "runtime/thread_context.hh"
#include "runtime/tx_output.hh"

namespace hmtx::runtime
{

// --- VidCoordinator -----------------------------------------------------

VidCoordinator::VidCoordinator(Machine& m, const bool* recovering)
    : m_(m), recovering_(recovering),
      maxVid_(m.config().maxVid()), sig_(m.eq())
{}

sim::Task<Vid>
VidCoordinator::beginIter(ThreadContext& tc, std::uint64_t iter)
{
    // A thread must never enter a fresh transaction while recovery is
    // pending: it would race the replay of its own iteration.
    if (recovering_ && *recovering_)
        throw sim::TxAborted{};
    const std::uint64_t e = iter / maxVid_;
    const Vid v = vidOf(iter);
    const Tick t0 = m_.now();
    while (epoch_ != e) {
        // The window is exhausted: new transactions wait until the
        // one with the maximum VID commits and the reset runs (§4.6).
        co_await sig_.wait();
        if (recovering_ && *recovering_)
            throw sim::TxAborted{};
    }
    stall_ += m_.now() - t0;
    tc.beginMtx(v);
    co_return v;
}

sim::Task<void>
VidCoordinator::commitIter(ThreadContext& tc, std::uint64_t iter)
{
    const std::uint64_t e = iter / maxVid_;
    const Vid v = vidOf(iter);
    // The fallback lock holder must commit before joining recovery:
    // its serialized stores already reached committed memory, so
    // unwinding here would re-execute them on replay. It is VID
    // LC+1 by construction, so it never waits in the loop below and
    // recovery completes right after it commits and releases the lock.
    if (recovering_ && *recovering_ &&
        !m_.sys().txPolicy().serializes(v)) {
        throw sim::TxAborted{};
    }
    while (epoch_ != e || m_.sys().lcVid() != v - 1) {
        // Commits must occur consecutively (§4.7): wait for our turn.
        co_await sig_.wait();
        if (recovering_ && *recovering_ &&
            !m_.sys().txPolicy().serializes(v)) {
            throw sim::TxAborted{};
        }
    }
    co_await tc.commitMtx(v);
    ++committed_;
    if (v == maxVid_) {
        // Every VID of the window has committed; reset (§4.6).
        m_.sys().vidReset();
        ++epoch_;
        ++resets_;
    }
    sig_.notifyAll();
}

void
VidCoordinator::rollbackToCommitted()
{
    epoch_ = committed_ / maxVid_;
    sig_.notifyAll();
}

// --- shared pipeline/DOALL plumbing ---------------------------------------

namespace
{

constexpr std::uint64_t kDoneToken = ~std::uint64_t{0};

/** State shared by the tasks of one parallel run. */
struct Shared
{
    Shared(LoopWorkload& w, Machine& mach, unsigned tasks)
        : wl(w), m(mach), coord(mach, &recovering), nTasks(tasks),
          barrier(mach.eq()), doneSig(mach.eq()),
          txOut(w.txOutput())
    {}

    LoopWorkload& wl;
    Machine& m;
    VidCoordinator coord;
    std::vector<std::unique_ptr<SimQueue>> queues;

    unsigned nTasks;
    bool recovering = false;
    unsigned atBarrier = 0;
    std::uint64_t restartIter = 0;
    bool done = false;
    std::uint64_t abortsRecovered = 0;
    Signal barrier;
    Signal doneSig;
    /** Workload's transactional output stream, if any (§4.7). */
    TxOutput* txOut = nullptr;

    /** Marks completion once the last iteration committed. */
    void
    checkDone()
    {
        if (coord.committedIters() == wl.iterations()) {
            done = true;
            doneSig.notifyAll();
        }
    }
};

/**
 * Recovery barrier (the initMTX recovery-code analog): the first
 * thread to unwind flags recovery and wakes every blocked thread; the
 * last one to arrive resets queues, re-aligns the VID window with the
 * committed prefix of the iteration space, and releases everyone.
 */
sim::Task<void>
recoveryBarrier(Shared& sh, ThreadContext& tc)
{
    tc.beginMtx(kNonSpecVid);
    if (!sh.recovering) {
        sh.recovering = true;
        ++sh.abortsRecovered;
        if (sh.abortsRecovered > sh.m.config().maxRecoveries) {
            throw std::runtime_error(
                "abort-recovery livelock: " +
                std::to_string(sh.abortsRecovered) +
                " recoveries (false misspeculation storm; see "
                "\u00a75.1)");
        }
        for (auto& q : sh.queues)
            q->abortWake();
        sh.coord.kickWaiters();
        sh.doneSig.notifyAll();
    }
    ++sh.atBarrier;
    if (sh.atBarrier == sh.nTasks) {
        // Defensive flush: a thread that slipped into a fresh
        // transaction between the hardware abort and the recovery
        // flag may have left speculative state behind.
        sh.m.sys().abortAll();
        if (sh.txOut) {
            // Uncommitted buffered output vanishes with the rest of
            // the speculative state (§4.7); committed output stays.
            sh.txOut->abortAll(sh.m.sys().lcVid());
        }
        sh.restartIter = sh.coord.committedIters();
        for (auto& q : sh.queues)
            q->reset();
        sh.coord.rollbackToCommitted();
        sh.atBarrier = 0;
        sh.recovering = false;
        sh.barrier.notifyAll();
        co_return;
    }
    while (sh.recovering)
        co_await sh.barrier.wait();
}

/** Stage 1: runs the sequential pipeline stage and feeds workers. */
sim::Task<void>
stage1Task(Shared& sh, unsigned workers)
{
    ThreadContext& tc = sh.m.ctx(0);
    DirectMem mem(tc);
    const std::uint64_t n = sh.wl.iterations();
    std::uint64_t i = 0;
    for (;;) {
        bool recover = false;
        try {
            while (i < n) {
                if (sh.recovering)
                    throw sim::TxAborted{};
                co_await sh.coord.beginIter(tc, i);
                co_await sh.m.section(tc.core(),
                                      sh.wl.stage1(mem, i));
                // Done with our part of the MTX; back to bookkeeping
                // (Figure 3(b): beginMTX(0) does not commit).
                tc.beginMtx(kNonSpecVid);
                co_await sh.queues[i % workers]->produce(tc, i);
                ++i;
            }
            for (unsigned w = 0; w < workers; ++w)
                co_await sh.queues[w]->produce(tc, kDoneToken);
            // Stand by until everything committed: a late abort sends
            // us back to re-produce uncommitted iterations.
            while (!sh.done) {
                if (sh.recovering)
                    throw sim::TxAborted{};
                co_await sh.doneSig.wait();
            }
        } catch (const sim::TxAborted&) {
            recover = true; // co_await is illegal inside a handler
        }
        if (!recover)
            co_return;
        co_await recoveryBarrier(sh, tc);
        i = sh.restartIter;
    }
}

/** Replicated stage 2 worker w (cores 1 + w). */
sim::Task<void>
workerTask(Shared& sh, unsigned w)
{
    ThreadContext& tc = sh.m.ctx(1 + w);
    DirectMem mem(tc);
    for (;;) {
        bool recover = false;
        try {
            for (;;) {
                if (sh.recovering)
                    throw sim::TxAborted{};
                std::uint64_t i =
                    co_await sh.queues[w]->consume(tc);
                if (i == kDoneToken)
                    break;
                tc.beginMtx(sh.coord.vidOf(i));
                co_await sh.m.section(tc.core(),
                                      sh.wl.stage2(mem, i));
                co_await sh.coord.commitIter(tc, i);
                if (sh.txOut)
                    sh.txOut->commit(sh.coord.vidOf(i));
                sh.checkDone();
            }
            while (!sh.done) {
                if (sh.recovering)
                    throw sim::TxAborted{};
                co_await sh.doneSig.wait();
            }
        } catch (const sim::TxAborted&) {
            recover = true;
        }
        if (!recover)
            co_return;
        co_await recoveryBarrier(sh, tc);
    }
}

/** DOALL worker: whole iterations, round-robin. */
sim::Task<void>
doallTask(Shared& sh, unsigned w, unsigned workers)
{
    ThreadContext& tc = sh.m.ctx(w);
    DirectMem mem(tc);
    const std::uint64_t n = sh.wl.iterations();
    std::uint64_t i = w;
    for (;;) {
        bool recover = false;
        try {
            for (; i < n; i += workers) {
                if (sh.recovering)
                    throw sim::TxAborted{};
                co_await sh.coord.beginIter(tc, i);
                co_await sh.m.section(tc.core(),
                                      sh.wl.stage1(mem, i));
                co_await sh.m.section(tc.core(),
                                      sh.wl.stage2(mem, i));
                co_await sh.coord.commitIter(tc, i);
                if (sh.txOut)
                    sh.txOut->commit(sh.coord.vidOf(i));
                sh.checkDone();
            }
            while (!sh.done) {
                if (sh.recovering)
                    throw sim::TxAborted{};
                co_await sh.doneSig.wait();
            }
        } catch (const sim::TxAborted&) {
            recover = true;
        }
        if (!recover)
            co_return;
        co_await recoveryBarrier(sh, tc);
        // Resume at the first uncommitted iteration this worker owns.
        std::uint64_t c = sh.restartIter;
        i = c + ((w + workers - c % workers) % workers);
    }
}

/**
 * DOACROSS worker: whole iterations in transactions, with the
 * loop-carried dependence token passed core-to-core every iteration
 * (Figure 1(b)). No recovery path: used for schedule comparison runs.
 */
sim::Task<void>
doacrossTask(Shared& sh, unsigned w, unsigned workers)
{
    ThreadContext& tc = sh.m.ctx(w);
    DirectMem mem(tc);
    const std::uint64_t n = sh.wl.iterations();
    for (std::uint64_t i = w; i < n; i += workers) {
        if (i > 0) {
            std::uint64_t tok = co_await sh.queues[w]->consume(tc);
            (void)tok;
        }
        co_await sh.coord.beginIter(tc, i);
        co_await sh.m.section(tc.core(), sh.wl.stage1(mem, i));
        // The next iteration's thread may start only now: hand over
        // the loop-carried dependence.
        tc.beginMtx(kNonSpecVid);
        if (i + 1 < n)
            co_await sh.queues[(w + 1) % workers]->produce(tc, i + 1);
        tc.beginMtx(sh.coord.vidOf(i));
        co_await sh.m.section(tc.core(), sh.wl.stage2(mem, i));
        co_await sh.coord.commitIter(tc, i);
        sh.checkDone();
    }
}

ExecResult
collect(Machine& m, LoopWorkload& wl, Shared* sh, std::string model)
{
    ExecResult r;
    r.model = std::move(model);
    r.cycles = m.now();
    m.sys().flushDirtyToMemory();
    r.checksum = wl.checksum(m);
    r.stats = m.sys().stats();
    r.txStats = m.sys().txPolicy().stats();
    r.indexStats = m.sys().indexStats();
    r.shardStats = m.sys().shardStats();
    if (const sim::ParallelEngine* pe = m.parallel())
        r.parStats = pe->stats();
    r.fastStats = m.sys().fastStats();
    r.transactions = r.stats.committedTxs;
    for (CoreId c = 0; c < m.config().numCores; ++c) {
        r.instructions += m.ctx(c).instructions();
        r.branches += m.ctx(c).predictor().branches();
        r.mispredicts += m.ctx(c).predictor().mispredicts();
    }
    if (sh) {
        r.vidResets = sh->coord.resets();
        r.vidStallCycles = sh->coord.stallCycles();
    }
    return r;
}

sim::Task<void>
sequentialRoot(Machine& m, LoopWorkload& wl)
{
    DirectMem mem(m.ctx(0));
    co_await m.section(0, wl.runSequential(mem));
}

/**
 * Clamps a requested worker count to the cores the machine actually
 * has (minus @p reserved cores the schedule occupies otherwise) and
 * records how many cores the resulting schedule leaves idle. Without
 * the clamp a caller asking for more workers than cores would index
 * past the machine's thread contexts; without the stat a schedule
 * narrower than the machine would waste cores silently.
 */
unsigned
clampWorkers(Machine& m, unsigned workers, unsigned reserved)
{
    const unsigned cores = m.config().numCores;
    const unsigned avail = cores > reserved ? cores - reserved : 1;
    workers = std::clamp(workers, 1u, avail);
    const unsigned used = reserved + workers;
    m.sys().stats().idleCores = cores > used ? cores - used : 0;
    return workers;
}

} // namespace

// --- Runner ------------------------------------------------------------------

ExecResult
Runner::runSequential(LoopWorkload& wl, const sim::MachineConfig& cfg)
{
    Machine m(cfg);
    wl.setup(m);
    m.sys().stats().idleCores = cfg.numCores - 1;
    m.spawn(sequentialRoot(m, wl));
    m.run();
    return collect(m, wl, nullptr, "sequential");
}

ExecResult
Runner::runPipeline(LoopWorkload& wl, const sim::MachineConfig& cfg,
                    unsigned workers)
{
    if (cfg.txMode == TxMode::BestEffort) {
        throw std::invalid_argument(
            "runPipeline: txMode=best-effort is incompatible with "
            "pipelined schedules: a stage-1 fallback holder writes "
            "committed memory before handing the iteration off, and "
            "abort recovery would re-execute those writes; use a "
            "DOALL schedule (the holder commits before joining "
            "recovery) or a full-HMTX mode");
    }
    Machine m(cfg);
    wl.setup(m);
    // Stage 1 owns core 0; replicated stage-2 workers fill the rest.
    workers = clampWorkers(m, workers, 1);
    Shared sh(wl, m, workers + 1);
    for (unsigned w = 0; w < workers; ++w)
        sh.queues.push_back(std::make_unique<SimQueue>(m, 8));
    m.spawn(stage1Task(sh, workers));
    for (unsigned w = 0; w < workers; ++w)
        m.spawn(workerTask(sh, w));
    m.run();
    std::string model = workers > 1
        ? "HMTX PS-DSWP x" + std::to_string(workers)
        : "HMTX DSWP";
    return collect(m, wl, &sh, std::move(model));
}

ExecResult
Runner::runDoall(LoopWorkload& wl, const sim::MachineConfig& cfg,
                 unsigned workers)
{
    Machine m(cfg);
    wl.setup(m);
    workers = clampWorkers(m, workers, 0);
    Shared sh(wl, m, workers);
    for (unsigned w = 0; w < workers; ++w)
        m.spawn(doallTask(sh, w, workers));
    m.run();
    return collect(m, wl, &sh,
                   "HMTX DOALL x" + std::to_string(workers));
}

ExecResult
Runner::runDoacross(LoopWorkload& wl, const sim::MachineConfig& cfg,
                    unsigned workers)
{
    if (cfg.txMode == TxMode::BestEffort) {
        throw std::invalid_argument(
            "runDoacross: txMode=best-effort is incompatible with "
            "DOACROSS schedules: a fallback holder writes committed "
            "memory before the dependence hand-off, and the schedule "
            "has no recovery path that could replay consistently; "
            "use a DOALL schedule or a full-HMTX mode");
    }
    Machine m(cfg);
    wl.setup(m);
    workers = clampWorkers(m, workers, 0);
    Shared sh(wl, m, workers);
    for (unsigned w = 0; w < workers; ++w)
        sh.queues.push_back(std::make_unique<SimQueue>(m, 8));
    for (unsigned w = 0; w < workers; ++w)
        m.spawn(doacrossTask(sh, w, workers));
    m.run();
    return collect(m, wl, &sh,
                   "DOACROSS x" + std::to_string(workers));
}

ExecResult
Runner::runHmtx(LoopWorkload& wl, const sim::MachineConfig& cfg)
{
    if (wl.paradigm() == Paradigm::Doall)
        return runDoall(wl, cfg, cfg.numCores);
    return runPipeline(wl, cfg, cfg.numCores - 1);
}

} // namespace hmtx::runtime
