/**
 * @file
 * Interface for parallelizable loop workloads (the benchmarks of §6).
 */

#ifndef HMTX_RUNTIME_WORKLOAD_HH
#define HMTX_RUNTIME_WORKLOAD_HH

#include <cstdint>
#include <string>

#include "runtime/machine.hh"
#include "runtime/memif.hh"
#include "sim/task.hh"

namespace hmtx::runtime
{

class TxOutput;

/** Parallelization paradigm of a workload's hot loop (Table 1). */
enum class Paradigm
{
    PsDswp,
    Dswp,
    Doall,
};

/** Human-readable paradigm name as printed in Table 1. */
constexpr const char*
paradigmName(Paradigm p)
{
    switch (p) {
      case Paradigm::PsDswp: return "PS-DSWP";
      case Paradigm::Dswp:   return "DSWP";
      case Paradigm::Doall:  return "DOALL";
    }
    return "?";
}

/**
 * A hot loop split into the two pipeline stages used by the paper's
 * parallelizations: stage 1 is the sequential traversal/production
 * part (kept in program order on one core), stage 2 the heavy work
 * that PS-DSWP replicates across the remaining cores. DOALL workloads
 * put everything in stage 2. Inter-stage values flow through shared
 * simulated memory, leveraging HMTX's versioned memory instead of
 * explicit queues (§3.2).
 *
 * Workload code performs every access through a MemIf, so the same
 * loop body runs under sequential, HMTX, and SMTX execution.
 */
class LoopWorkload
{
  public:
    virtual ~LoopWorkload() = default;

    /** Benchmark name as it appears in Table 1. */
    virtual std::string name() const = 0;

    /** Parallelization paradigm (Table 1). */
    virtual Paradigm paradigm() const { return Paradigm::PsDswp; }

    /** Number of hot-loop iterations to simulate. */
    virtual std::uint64_t iterations() const = 0;

    /**
     * Fraction of native whole-program time spent in the hot loop
     * (Table 1, "Hot Loop Native Exec Time %"); used to derive
     * whole-program speedups via Amdahl's law (Figure 2).
     */
    virtual double hotLoopFraction() const { return 1.0; }

    /**
     * Number of accesses per iteration that the expert-minimized SMTX
     * version still has to forward/validate (§2.3: "minimal read and
     * write sets").
     */
    virtual unsigned minRwSetPerIter() const { return 2; }

    /** Allocates and initializes the workload's data structures. */
    virtual void setup(Machine& m) = 0;

    /** Pipeline stage 1 of iteration @p iter (runs inside the MTX). */
    virtual sim::Task<void> stage1(MemIf& mem, std::uint64_t iter) = 0;

    /** Pipeline stage 2 of iteration @p iter (runs inside the MTX). */
    virtual sim::Task<void> stage2(MemIf& mem, std::uint64_t iter) = 0;

    /**
     * The original sequential loop; the default runs stage1 + stage2
     * per iteration on one core.
     */
    virtual sim::Task<void>
    runSequential(MemIf& mem)
    {
        const std::uint64_t n = iterations();
        for (std::uint64_t i = 0; i < n; ++i) {
            co_await stage1(mem, i);
            co_await stage2(mem, i);
        }
    }

    /**
     * Transactional output stream of this workload (§4.7), or nullptr
     * if it produces none. When provided, the executors release each
     * transaction's buffered records at its commit and discard
     * uncommitted records at abort recovery, so the released stream
     * always equals the sequential program's output.
     */
    virtual TxOutput* txOutput() { return nullptr; }

    /**
     * Deterministic digest of the workload's output state, read
     * host-side after CacheSystem::flushDirtyToMemory(). Equal
     * checksums across execution models prove the parallelization
     * preserved the program's semantics.
     */
    virtual std::uint64_t checksum(Machine& m) = 0;
};

} // namespace hmtx::runtime

#endif // HMTX_RUNTIME_WORKLOAD_HH
