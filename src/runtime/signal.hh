/**
 * @file
 * Coroutine condition-variable analog for the simulated runtime.
 */

#ifndef HMTX_RUNTIME_SIGNAL_HH
#define HMTX_RUNTIME_SIGNAL_HH

#include <coroutine>
#include <utility>
#include <vector>

#include "sim/event_queue.hh"

namespace hmtx::runtime
{

/**
 * A broadcast wake-up primitive. Tasks co_await wait() and are resumed
 * (one simulated cycle later) by the next notifyAll(). Like a condition
 * variable, waiters must re-check their predicate after waking —
 * executors use this for in-order commit turns, VID-window epochs and
 * abort-recovery barriers.
 */
class Signal
{
  public:
    explicit Signal(sim::EventQueue& eq) : eq_(eq) {}

    struct Awaiter
    {
        Signal& sig;

        bool await_ready() const noexcept { return false; }

        void
        await_suspend(std::coroutine_handle<> h)
        {
            sig.waiters_.push_back(h);
        }

        void await_resume() const noexcept {}
    };

    /** Suspends until the next notifyAll(). */
    Awaiter wait() { return Awaiter{*this}; }

    /** Wakes every waiter at curTick() + 1. */
    void
    notifyAll()
    {
        auto ws = std::exchange(waiters_, {});
        for (auto h : ws)
            eq_.resumeIn(1, h);
    }

    /** Number of tasks currently blocked. */
    std::size_t waiting() const { return waiters_.size(); }

  private:
    sim::EventQueue& eq_;
    std::vector<std::coroutine_handle<>> waiters_;
};

} // namespace hmtx::runtime

#endif // HMTX_RUNTIME_SIGNAL_HH
