/**
 * @file
 * Single-producer/single-consumer queue backed by simulated memory.
 */

#ifndef HMTX_RUNTIME_QUEUE_HH
#define HMTX_RUNTIME_QUEUE_HH

#include <cstdint>

#include "runtime/signal.hh"
#include "sim/task.hh"

namespace hmtx::runtime
{

class Machine;
class ThreadContext;

/**
 * The produce/consume primitive DSWP pipelines use to pass VIDs (and,
 * under DOACROSS, loop-carried values) between stages (Figure 3).
 *
 * The slots and indices live in simulated memory, so every operation
 * generates real coherence traffic (the head/tail lines ping-pong
 * between the producing and consuming cores). Control flow (blocking
 * when empty/full) is host-side via Signals. Queue operations are
 * non-speculative bookkeeping; callers issue them from VID 0, per the
 * beginMTX(0) idiom of Figure 3(b).
 */
class SimQueue
{
  public:
    /**
     * @param m        machine whose heap backs the queue
     * @param capacity number of 64-bit slots
     */
    SimQueue(Machine& m, unsigned capacity);

    /** Enqueues @p v, blocking while full. Throws sim::TxAborted if
     *  abortWake() fires while blocked. */
    sim::Task<void> produce(ThreadContext& tc, std::uint64_t v);

    /** Dequeues, blocking while empty. Throws sim::TxAborted if
     *  abortWake() fires while blocked. */
    sim::Task<std::uint64_t> consume(ThreadContext& tc);

    /** Entries currently queued. */
    std::uint64_t size() const { return tail_ - head_; }

    /**
     * Wakes every blocked producer/consumer with an abort so pipeline
     * recovery can collect all threads at the barrier.
     */
    void abortWake();

    /** Empties the queue and clears the abort flag (recovery). */
    void reset();

  private:
    Machine& m_;
    unsigned cap_;
    Addr slots_;
    Addr headAddr_;
    Addr tailAddr_;
    std::uint64_t head_ = 0;
    std::uint64_t tail_ = 0;
    bool abortFlag_ = false;
    Signal notEmpty_;
    Signal notFull_;
};

} // namespace hmtx::runtime

#endif // HMTX_RUNTIME_QUEUE_HH
