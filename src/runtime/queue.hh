/**
 * @file
 * Single-producer/single-consumer queues: SimQueue passes values
 * between pipeline stages through *simulated* memory (it models the
 * DSWP produce/consume primitive), while SpscRing is a host-side
 * lock-free ring the sharded simulation engine uses to route bank
 * commands to worker threads.
 */

#ifndef HMTX_RUNTIME_QUEUE_HH
#define HMTX_RUNTIME_QUEUE_HH

#include <atomic>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "runtime/signal.hh"
#include "sim/task.hh"

namespace hmtx::runtime
{

/**
 * Bounded lock-free single-producer/single-consumer ring over host
 * memory. One thread may push, one (possibly different) thread may
 * pop; indices are monotonically increasing so the full/empty
 * distinction never needs a wasted slot. Pushes publish with a
 * release store the consumer's acquire load synchronizes with, which
 * is all the ordering a SPSC ring needs.
 *
 * The producer additionally tracks the high-water occupancy it has
 * observed (a producer-side statistic, read only between epochs).
 */
template <typename T>
class SpscRing
{
  public:
    /** @param capacity slot count; rounded up to a power of two. */
    explicit SpscRing(std::size_t capacity)
        : slots_(std::bit_ceil(capacity < 2 ? std::size_t{2}
                                            : capacity)),
          mask_(slots_.size() - 1)
    {}

    /** Producer side. Returns false when the ring is full. */
    bool
    tryPush(const T& v)
    {
        const std::size_t t = tail_.load(std::memory_order_relaxed);
        const std::size_t h = head_.load(std::memory_order_acquire);
        if (t - h > mask_)
            return false;
        slots_[t & mask_] = v;
        tail_.store(t + 1, std::memory_order_release);
        tail_.notify_one();
        if (t + 1 - h > highWater_)
            highWater_ = t + 1 - h;
        return true;
    }

    /** Consumer side. Returns false when the ring is empty. */
    bool
    tryPop(T& out)
    {
        const std::size_t h = head_.load(std::memory_order_relaxed);
        const std::size_t t = tail_.load(std::memory_order_acquire);
        if (h == t)
            return false;
        out = slots_[h & mask_];
        head_.store(h + 1, std::memory_order_release);
        head_.notify_one();
        return true;
    }

    /** Consumer side: blocks until the ring becomes non-empty. */
    void
    waitNonEmpty() const
    {
        const std::size_t h = head_.load(std::memory_order_relaxed);
        std::size_t t = tail_.load(std::memory_order_acquire);
        while (t == h) {
            tail_.wait(t, std::memory_order_acquire);
            t = tail_.load(std::memory_order_acquire);
        }
    }

    /** Entries currently queued (racy outside the owning threads). */
    std::size_t
    size() const
    {
        return tail_.load(std::memory_order_acquire) -
            head_.load(std::memory_order_acquire);
    }

    std::size_t capacity() const { return slots_.size(); }

    /** Max occupancy ever observed by the producer. */
    std::size_t highWater() const { return highWater_; }

  private:
    std::vector<T> slots_;
    std::size_t mask_;
    /** Producer-side statistic; no concurrent reader. */
    std::size_t highWater_ = 0;
    alignas(64) std::atomic<std::size_t> head_{0};
    alignas(64) std::atomic<std::size_t> tail_{0};
};

class Machine;
class ThreadContext;

/**
 * The produce/consume primitive DSWP pipelines use to pass VIDs (and,
 * under DOACROSS, loop-carried values) between stages (Figure 3).
 *
 * The slots and indices live in simulated memory, so every operation
 * generates real coherence traffic (the head/tail lines ping-pong
 * between the producing and consuming cores). Control flow (blocking
 * when empty/full) is host-side via Signals. Queue operations are
 * non-speculative bookkeeping; callers issue them from VID 0, per the
 * beginMTX(0) idiom of Figure 3(b).
 */
class SimQueue
{
  public:
    /**
     * @param m        machine whose heap backs the queue
     * @param capacity number of 64-bit slots
     */
    SimQueue(Machine& m, unsigned capacity);

    /** Enqueues @p v, blocking while full. Throws sim::TxAborted if
     *  abortWake() fires while blocked. */
    sim::Task<void> produce(ThreadContext& tc, std::uint64_t v);

    /** Dequeues, blocking while empty. Throws sim::TxAborted if
     *  abortWake() fires while blocked. */
    sim::Task<std::uint64_t> consume(ThreadContext& tc);

    /** Entries currently queued. */
    std::uint64_t size() const { return tail_ - head_; }

    /**
     * Wakes every blocked producer/consumer with an abort so pipeline
     * recovery can collect all threads at the barrier.
     */
    void abortWake();

    /** Empties the queue and clears the abort flag (recovery). */
    void reset();

  private:
    Machine& m_;
    unsigned cap_;
    Addr slots_;
    Addr headAddr_;
    Addr tailAddr_;
    std::uint64_t head_ = 0;
    std::uint64_t tail_ = 0;
    bool abortFlag_ = false;
    Signal notEmpty_;
    Signal notFull_;
};

} // namespace hmtx::runtime

#endif // HMTX_RUNTIME_QUEUE_HH
