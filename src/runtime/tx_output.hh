/**
 * @file
 * Transactional output buffering (§4.7): "output must be handled
 * specially inside a transaction. Outputs are explicitly buffered to
 * ensure no speculative effects occur until commit."
 */

#ifndef HMTX_RUNTIME_TX_OUTPUT_HH
#define HMTX_RUNTIME_TX_OUTPUT_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "core/types.hh"

namespace hmtx::runtime
{

/**
 * A speculation-safe output stream. Records emitted inside a
 * transaction are buffered under its VID and only released — in
 * original program order — when that VID commits; records of aborted
 * transactions are discarded with the rest of their speculative
 * effects. Records emitted outside any transaction (VID 0) release
 * immediately.
 *
 * This is the simple explicit-buffering scheme of §4.7; the paper
 * notes a transactional I/O system [20] could be used instead.
 */
class TxOutput
{
  public:
    /** Emits @p record from transaction @p vid (0 = non-speculative). */
    void
    emit(Vid vid, std::string record)
    {
        if (vid == kNonSpecVid) {
            released_.push_back(std::move(record));
            ++immediate_;
        } else {
            pending_[vid].push_back(std::move(record));
            ++buffered_;
        }
    }

    /**
     * Transaction @p vid committed: release its buffered records.
     * Commits arrive in program order (§4.7), so the released stream
     * is the sequential program's output.
     */
    void
    commit(Vid vid)
    {
        auto it = pending_.find(vid);
        if (it == pending_.end())
            return;
        for (auto& r : it->second)
            released_.push_back(std::move(r));
        pending_.erase(it);
    }

    /**
     * All uncommitted transactions aborted: their buffered output
     * vanishes, like every other speculative effect. Records of
     * transactions at or below the committed watermark @p lcVid are
     * committed state and release instead (in program order).
     */
    void
    abortAll(Vid lcVid = kNonSpecVid)
    {
        for (auto it = pending_.begin(); it != pending_.end();) {
            if (it->first <= lcVid) {
                for (auto& r : it->second)
                    released_.push_back(std::move(r));
            } else {
                discarded_ += it->second.size();
            }
            it = pending_.erase(it);
        }
    }

    /** A VID reset (§4.6) recycles the namespace; every transaction
     *  has committed, so everything pending releases. */
    void
    vidReset()
    {
        abortAll(~Vid{0});
    }

    /** The committed output stream, in program order. */
    const std::vector<std::string>& released() const
    {
        return released_;
    }

    /** Records currently buffered in uncommitted transactions. */
    std::size_t
    pendingCount() const
    {
        std::size_t n = 0;
        for (auto& [vid, recs] : pending_)
            n += recs.size();
        return n;
    }

    /** Records discarded by aborts. */
    std::uint64_t discarded() const { return discarded_; }

    /** Records buffered speculatively over the run. */
    std::uint64_t buffered() const { return buffered_; }

    /** Records emitted non-speculatively. */
    std::uint64_t immediate() const { return immediate_; }

  private:
    std::map<Vid, std::vector<std::string>> pending_;
    std::vector<std::string> released_;
    std::uint64_t buffered_ = 0;
    std::uint64_t immediate_ = 0;
    std::uint64_t discarded_ = 0;
};

} // namespace hmtx::runtime

#endif // HMTX_RUNTIME_TX_OUTPUT_HH
