#include "runtime/queue.hh"

#include "runtime/machine.hh"
#include "runtime/thread_context.hh"

namespace hmtx::runtime
{

SimQueue::SimQueue(Machine& m, unsigned capacity)
    : m_(m), cap_(capacity),
      slots_(m.heap().allocWords(capacity)),
      headAddr_(m.heap().allocLines(1)),
      tailAddr_(m.heap().allocLines(1)),
      notEmpty_(m.eq()), notFull_(m.eq())
{}

sim::Task<void>
SimQueue::produce(ThreadContext& tc, std::uint64_t v)
{
    while (tail_ - head_ >= cap_) {
        co_await notFull_.wait();
        if (abortFlag_)
            throw sim::TxAborted{};
    }
    co_await tc.store(slots_ + (tail_ % cap_) * 8, v);
    co_await tc.store(tailAddr_, tail_ + 1);
    ++tail_;
    notEmpty_.notifyAll();
}

sim::Task<std::uint64_t>
SimQueue::consume(ThreadContext& tc)
{
    while (head_ == tail_) {
        co_await notEmpty_.wait();
        if (abortFlag_)
            throw sim::TxAborted{};
    }
    std::uint64_t v = co_await tc.load(slots_ + (head_ % cap_) * 8);
    co_await tc.store(headAddr_, head_ + 1);
    ++head_;
    notFull_.notifyAll();
    co_return v;
}

void
SimQueue::abortWake()
{
    abortFlag_ = true;
    notEmpty_.notifyAll();
    notFull_.notifyAll();
}

void
SimQueue::reset()
{
    head_ = tail_ = 0;
    abortFlag_ = false;
}

} // namespace hmtx::runtime
