/**
 * @file
 * The normative HMTX version rules (§4.1-§4.4 of the paper).
 *
 * These pure functions decide, for one cache line version with coherence
 * state and (modVID, highVID) tags, whether a request hits, what a
 * speculative store must do, and how the line transitions on commit
 * (Figure 6) and abort (Figure 7). They contain no simulator state so
 * they can be tested exhaustively; the cache model in src/sim drives
 * them.
 */

#ifndef HMTX_CORE_VERSION_RULES_HH
#define HMTX_CORE_VERSION_RULES_HH

#include "core/spec_state.hh"
#include "core/types.hh"

namespace hmtx
{

/** The (modVID, highVID) tag pair carried by every cache line (§4.1). */
struct VersionTag
{
    /**
     * VID of the transaction whose speculative store created this
     * version; 0 for all non-speculative versions.
     */
    Vid mod = kNonSpecVid;

    /** Highest VID that has accessed this version of the line. */
    Vid high = kNonSpecVid;

    bool operator==(const VersionTag&) const = default;
};

/**
 * Hit predicate for a request with VID @p a against a version in state
 * @p st with tags @p t (§4.1):
 *
 *   S-M / S-E (m,h): hit iff a >= m
 *   S-O / S-S (m,h): hit iff m <= a < h
 *   non-speculative: hit (tag match is checked by the cache itself);
 *                    callers pass the cache's LC VID as @p a for
 *                    non-speculative requests (§5.3).
 *
 * @param st coherence state of the candidate version
 * @param t  version tags of the candidate
 * @param a  VID of the request (LC VID for non-speculative requests)
 * @return true if the request hits this version
 */
bool versionHits(State st, VersionTag t, Vid a);

/** What a speculative store must do once its hitting version is known. */
enum class StoreAction : std::uint8_t
{
    /** Write into the hitting version in place (store VID == modVID). */
    InPlace,
    /**
     * Retain the hitting version unmodified as S-O(m, y) and create a
     * new S-M(y, y) version holding the stored data (§4.2).
     */
    NewVersion,
    /**
     * Dependence violation: a later access already touched the line
     * (store VID < highVID, or the hit landed on a superseded S-O/S-S
     * version) (§4.3).
     */
    Abort,
};

/**
 * Classifies a speculative store with VID @p y that hit a version in
 * state @p st with tags @p t (§4.2, §4.3, Figure 4).
 *
 * Non-speculative versions always yield NewVersion (the first
 * speculative write to a line keeps the pristine copy in S-O and builds
 * the S-M version next to it).
 */
StoreAction classifyStore(State st, VersionTag t, Vid y);

/** Result of applying a commit or abort rule to one line version. */
struct LineTransition
{
    State state = State::Invalid;
    VersionTag tag{};
    bool operator==(const LineTransition&) const = default;
};

/**
 * Commit transition for one line version (Figure 6, §4.4).
 *
 * Commits are consecutive, so a single committed-VID watermark @p c
 * fully determines the outcome:
 *   - modVID <= c: the modification is committed, modVID := 0;
 *   - highVID <= c: every accessor completed, the line retires to a
 *     non-speculative state (S-M -> M, S-E -> E, S-O / S-S -> I).
 *
 * @param st    current state (must be speculative)
 * @param t     current tags
 * @param c     highest committed VID (the cache's LC VID)
 * @param dirty whether the data differs from memory
 */
LineTransition commitLine(State st, VersionTag t, Vid c, bool dirty);

/**
 * Abort transition for one line version (Figure 7, §4.4 and §5.3).
 *
 * All uncommitted speculative state is flushed:
 *   - modVID > c (uncommitted speculative modification): Invalid;
 *   - otherwise the data is committed: highVID clears and the line
 *     returns to a non-speculative state preserving dirtiness. S-O
 *     survivors may have peer S-S copies, so they conservatively land
 *     in Owned (dirty) or Shared (clean); S-S copies land in Shared.
 *
 * @param st    current state (must be speculative)
 * @param t     current tags
 * @param c     highest committed VID at the time of the abort
 * @param dirty whether the data differs from memory
 */
LineTransition abortLine(State st, VersionTag t, Vid c, bool dirty);

/**
 * VID-reset transition (§4.6). After the software has drained all
 * outstanding transactions, all tags reset to (0, 0); latest versions
 * (S-M / S-E) thereby become committed non-speculative lines and
 * superseded versions (S-O / S-S) can never hit again and are dropped.
 */
LineTransition resetLine(State st, VersionTag t, bool dirty);

} // namespace hmtx

#endif // HMTX_CORE_VERSION_RULES_HH
