/**
 * @file
 * TxPolicy helpers: mode names and knob validation.
 */

#include "core/tx_policy.hh"

#include <stdexcept>
#include <string>

namespace hmtx
{

const char*
txModeName(TxMode m)
{
    switch (m) {
      case TxMode::LazyHmtx:
        return "lazy-hmtx";
      case TxMode::EagerHmtx:
        return "eager-hmtx";
      case TxMode::BestEffort:
        return "best-effort";
      case TxMode::LimitedSet:
        return "limited-set";
    }
    return "unknown";
}

void
validateTxPolicyConfig(const TxPolicyConfig& cfg)
{
    if (cfg.mode == TxMode::LimitedSet && cfg.limitedSetK == 0)
        throw std::invalid_argument(
            "MachineConfig: limitedSetK == 0 with txMode=limited-set "
            "would capacity-abort every speculative access; set K >= 1 "
            "or use txMode=best-effort for a non-speculative path");
    if (cfg.mode == TxMode::BestEffort) {
        if (cfg.btxMaxRetries == 0)
            throw std::invalid_argument(
                "MachineConfig: btxMaxRetries == 0 with "
                "txMode=best-effort never arms the fallback after an "
                "abort yet never retries; set a retry budget >= 1");
        if (cfg.btxAbortThreshold != 0 &&
            cfg.btxAbortThreshold < cfg.btxMaxRetries)
            throw std::invalid_argument(
                "MachineConfig: btxAbortThreshold (" +
                std::to_string(cfg.btxAbortThreshold) +
                ") below btxMaxRetries (" +
                std::to_string(cfg.btxMaxRetries) +
                ") is contradictory: the early-fallback threshold "
                "would fire before the first retry budget is even "
                "consumed; use threshold >= maxRetries or 0 to "
                "disable it");
    }
}

} // namespace hmtx
