/**
 * @file
 * Speculative Load Acknowledgment (SLA) buffering (§5.1).
 */

#ifndef HMTX_CORE_SLA_HH
#define HMTX_CORE_SLA_HH

#include <cstdint>
#include <utility>
#include <vector>

#include "core/types.hh"

namespace hmtx
{

/** One pending speculative load acknowledgment (§5.1). */
struct SlaEntry
{
    /** Byte address of the acknowledged load. */
    Addr addr = 0;
    /** VID of the transaction that issued the load. */
    Vid vid = kNonSpecVid;
    /** Value the load observed; re-verified by the cache on receipt. */
    std::uint64_t value = 0;
    /** Access size in bytes. */
    unsigned size = 8;
};

/**
 * Per-core buffer of pending SLAs, "a structure similar to the store
 * queue" (§5.1).
 *
 * A branch-speculative load does not mark the line with its VID when it
 * executes; once the load commits (its guarding branches resolved
 * correctly), an SLA carrying (address, VID, observed value) is sent to
 * the cache system, which re-verifies the value and only then applies
 * the speculative marking. Loads squashed by a branch misprediction are
 * simply dropped from the buffer, which is what prevents wrong-path
 * loads from causing false misspeculation.
 *
 * The cache tells the core whether an SLA is even needed (the line may
 * already carry this VID); thanks to locality most loads need none
 * (Table 1, "% of Spec Loads Needing SLA").
 */
class SlaUnit
{
  public:
    /** @param capacity buffer depth before the core must drain */
    explicit SlaUnit(unsigned capacity = 32)
        : capacity_(capacity)
    {}

    /** Buffer depth. */
    unsigned capacity() const { return capacity_; }

    /** True if a push would overflow and force a drain first. */
    bool full() const { return pending_.size() >= capacity_; }

    /** Number of buffered acknowledgments. */
    std::size_t size() const { return pending_.size(); }

    /**
     * Buffers an acknowledgment for a load that the cache reported as
     * needing one.
     * @pre !full()
     */
    void
    push(const SlaEntry& e)
    {
        pending_.push_back(e);
        ++enqueued_;
    }

    /**
     * Removes and returns every buffered entry; called when the
     * guarding branches of the buffered loads have resolved correctly
     * and the acknowledgments can be sent to the cache system.
     */
    std::vector<SlaEntry>
    drain()
    {
        sent_ += pending_.size();
        return std::exchange(pending_, {});
    }

    /**
     * Drops all buffered entries; called when a branch misprediction
     * squashes the loads that produced them.
     * @return number of squashed acknowledgments
     */
    std::size_t
    squash()
    {
        std::size_t n = pending_.size();
        squashed_ += n;
        pending_.clear();
        return n;
    }

    /** Total acknowledgments ever buffered. */
    std::uint64_t enqueued() const { return enqueued_; }

    /** Total acknowledgments sent to the cache system. */
    std::uint64_t sent() const { return sent_; }

    /** Total acknowledgments squashed with their loads. */
    std::uint64_t squashed() const { return squashed_; }

  private:
    unsigned capacity_;
    std::vector<SlaEntry> pending_;
    std::uint64_t enqueued_ = 0;
    std::uint64_t sent_ = 0;
    std::uint64_t squashed_ = 0;
};

} // namespace hmtx

#endif // HMTX_CORE_SLA_HH
