#include "core/version_rules.hh"

#include <cassert>

namespace hmtx
{

bool
versionHits(State st, VersionTag t, Vid a)
{
    switch (st) {
      case State::Invalid:
        return false;
      case State::Shared:
      case State::Exclusive:
      case State::Owned:
      case State::Modified:
        // Tag comparison is done by the cache; every valid
        // non-speculative version is a candidate for any VID.
        return true;
      case State::SpecModified:
      case State::SpecExclusive:
        return a >= t.mod;
      case State::SpecOwned:
      case State::SpecShared:
        return a >= t.mod && a < t.high;
    }
    return false;
}

StoreAction
classifyStore(State st, VersionTag t, Vid y)
{
    assert(y != kNonSpecVid);
    assert(versionHits(st, t, y));

    if (isSpecSuperseded(st)) {
        // A later access already superseded this version; the store
        // arrives out of order (§4.3, output/flow dependence cases).
        return StoreAction::Abort;
    }
    if (isSpecLatest(st)) {
        if (y < t.high) {
            // A higher VID already read (or, conservatively, accessed)
            // this version; the store would violate a flow dependence.
            return StoreAction::Abort;
        }
        if (y == t.mod) {
            // Our own transaction already owns this version.
            return StoreAction::InPlace;
        }
        return StoreAction::NewVersion;
    }
    // First speculative write to a non-speculative line: keep the
    // pristine copy and build a new version.
    return StoreAction::NewVersion;
}

namespace
{

/** Retire a fully committed line to its non-speculative state. */
LineTransition
retire(State st, bool dirty)
{
    switch (st) {
      case State::SpecModified:
        return {State::Modified, {}};
      case State::SpecExclusive:
        // S-E is clean by construction; return to a clean state and
        // avoid an unnecessary writeback (§4.1).
        return {dirty ? State::Modified : State::Exclusive, {}};
      case State::SpecOwned:
      case State::SpecShared:
        // Superseded versions are dead once every accessor committed.
        return {State::Invalid, {}};
      default:
        return {st, {}};
    }
}

} // namespace

LineTransition
commitLine(State st, VersionTag t, Vid c, bool dirty)
{
    if (!isSpec(st))
        return {st, t};
    if (st == State::SpecShared && t.high <= c + 1) {
        // An S-S copy covers VIDs < high, so its highest possible
        // accessor is high - 1; once that commits the copy is dead.
        // (Owner-class S-O versions must instead survive until `high`
        // itself commits: they feed non-speculative reads while the
        // superseding write is still uncommitted.)
        return retire(st, dirty);
    }
    if (t.high <= c)
        return retire(st, dirty);
    if (t.mod != kNonSpecVid && t.mod <= c) {
        // The creating transaction committed but later accessors are
        // still outstanding: only the modVID clears (Figure 6).
        return {st, {kNonSpecVid, t.high}};
    }
    return {st, t};
}

LineTransition
abortLine(State st, VersionTag t, Vid c, bool dirty)
{
    if (!isSpec(st))
        return {st, t};
    if (t.mod > c) {
        // Uncommitted speculative modification: flush (Figure 7).
        return {State::Invalid, {}};
    }
    if (t.high <= c) {
        // The line had fully retired before the abort but was not yet
        // reconciled; apply the commit outcome.
        return retire(st, dirty);
    }
    // Committed (or never-modified) data read by an aborted
    // transaction: the data survives, the speculative marking clears.
    switch (st) {
      case State::SpecModified:
        return {State::Modified, {}};
      case State::SpecExclusive:
        return {dirty ? State::Modified : State::Exclusive, {}};
      case State::SpecOwned:
        // The superseding version was flushed; this copy is the live
        // one again. Peer S-S copies may exist, so land in a
        // shareable state.
        return {dirty ? State::Owned : State::Shared, {}};
      case State::SpecShared:
        return {State::Shared, {}};
      default:
        return {st, t};
    }
}

LineTransition
resetLine(State st, VersionTag t, bool dirty)
{
    if (!isSpec(st))
        return {st, t};
    // A VID reset is only legal once every outstanding transaction has
    // committed (§4.6), so latest versions hold committed data and
    // superseded versions can never hit again.
    (void)t;
    switch (st) {
      case State::SpecModified:
        return {State::Modified, {}};
      case State::SpecExclusive:
        return {dirty ? State::Modified : State::Exclusive, {}};
      case State::SpecOwned:
      case State::SpecShared:
        return {State::Invalid, {}};
      default:
        return {st, t};
    }
}

} // namespace hmtx
