/**
 * @file
 * Model of the cascaded low/high VID comparator (§4.5).
 */

#ifndef HMTX_CORE_COMPARATOR_HH
#define HMTX_CORE_COMPARATOR_HH

#include <cstdint>

#include "core/types.hh"

namespace hmtx
{

/**
 * Energy/latency model of the per-line VID comparators (§4.5).
 *
 * Because VIDs in flight are consecutive, they are almost always equal
 * or very close. The hardware therefore splits each m-bit comparison:
 * the high m/2 bits are checked for equality while the low m/2 bits do
 * a magnitude comparison. Only when the high bits differ does a
 * cascading full comparison run, which is slower and costs extra
 * dynamic energy. This class performs the comparison and accounts for
 * which path was taken; the power model (src/power) integrates the
 * counts into Table 3's dynamic-power rows.
 */
class VidComparator
{
  public:
    /** @param bits total VID width m (6 in the evaluated design) */
    explicit VidComparator(unsigned bits = 6)
        : lowBits_(bits / 2),
          lowMask_((Vid{1} << (bits / 2)) - 1)
    {}

    /**
     * Compares a request VID against a line VID.
     *
     * @param req  VID carried by the request
     * @param line VID stored on the line (modVID or highVID)
     * @return negative/zero/positive like a three-way comparison
     */
    int
    compare(Vid req, Vid line)
    {
        ++comparisons_;
        if ((req >> lowBits_) == (line >> lowBits_)) {
            ++fastPath_;
        } else {
            ++cascaded_;
        }
        if (req < line)
            return -1;
        return req == line ? 0 : 1;
    }

    /** Total comparisons performed. */
    std::uint64_t comparisons() const { return comparisons_; }

    /** Comparisons resolved by the low-bit fast path. */
    std::uint64_t fastPath() const { return fastPath_; }

    /** Comparisons that needed the cascading high-bit stage. */
    std::uint64_t cascaded() const { return cascaded_; }

    /** Extra hit-latency cycles charged for cascaded comparisons. */
    static constexpr Cycles kCascadePenalty = 1;

    /** Resets the activity counters. */
    void
    clear()
    {
        comparisons_ = fastPath_ = cascaded_ = 0;
    }

  private:
    unsigned lowBits_;
    Vid lowMask_;
    std::uint64_t comparisons_ = 0;
    std::uint64_t fastPath_ = 0;
    std::uint64_t cascaded_ = 0;
};

} // namespace hmtx

#endif // HMTX_CORE_COMPARATOR_HH
