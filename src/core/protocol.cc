#include "core/protocol.hh"

namespace hmtx
{

namespace
{

/**
 * A retiring owner may have handed out S-S copies; it must land in a
 * shareable state or a later silent write to an M/E line would leave
 * those copies stale.
 */
LineTransition
shareIfSharers(LineTransition t, bool mayHaveSharers)
{
    if (mayHaveSharers) {
        if (t.state == State::Modified)
            t.state = State::Owned;
        else if (t.state == State::Exclusive)
            t.state = State::Shared;
    }
    return t;
}

} // namespace

VersionView
reconcileVersion(VersionView v, Vid lc)
{
    if (v.state == State::Invalid || !isSpec(v.state))
        return v;
    if (v.state == State::SpecShared && v.latestCopy) {
        // Latest-version copy: highVID is a local read mark, not a
        // coverage bound. The copy must never turn into a plain
        // non-speculative line (that would create a second apparent
        // owner of the version); it lives until superseded,
        // invalidated by a write, evicted, aborted or VID-reset.
        if (v.tag.mod != kNonSpecVid && v.tag.mod <= lc)
            v.tag.mod = kNonSpecVid;
        if (v.tag.high <= lc)
            v.highFromWrongPath = false;
        return v;
    }
    LineTransition t = commitLine(v.state, v.tag, lc, v.dirty);
    if (t.state != v.state || !(t.tag == v.tag)) {
        t = shareIfSharers(t, v.mayHaveSharers);
        v.state = t.state;
        v.tag = t.tag;
        if (!isSpec(v.state)) {
            v.mayHaveSharers = false;
            v.highFromWrongPath = false;
            v.latestCopy = false;
            if (v.state == State::Invalid)
                v.dirty = false;
        }
    }
    return v;
}

VersionView
abortVersion(VersionView v, Vid lc)
{
    if (!isSpec(v.state))
        return v;
    if (v.state == State::SpecShared && v.latestCopy) {
        // Copies are refetchable; dropping them keeps every version
        // with exactly one apparent owner.
        v.state = State::Invalid;
        v.tag = {};
    } else {
        LineTransition t = commitLine(v.state, v.tag, lc, v.dirty);
        t = abortLine(t.state, t.tag, lc, v.dirty);
        t = shareIfSharers(t, v.mayHaveSharers);
        v.state = t.state;
        v.tag = t.tag;
    }
    v.latestCopy = false;
    v.mayHaveSharers = false;
    v.highFromWrongPath = false;
    return v;
}

VersionView
resetVersion(VersionView v)
{
    if (!isSpec(v.state))
        return v;
    if (v.state == State::SpecShared && v.latestCopy) {
        v.state = State::Invalid;
        v.tag = {};
    } else {
        LineTransition t = resetLine(v.state, v.tag, v.dirty);
        t = shareIfSharers(t, v.mayHaveSharers);
        v.state = t.state;
        v.tag = t.tag;
    }
    v.latestCopy = false;
    v.mayHaveSharers = false;
    return v;
}

bool
versionServes(const VersionView& v, Vid a)
{
    if (v.state == State::Invalid)
        return false;
    if (v.state == State::SpecShared && v.latestCopy)
        return a >= v.tag.mod; // serves all later VIDs (§4.1)
    return versionHits(v.state, v.tag, a);
}

int
victimClass(const VersionView& v)
{
    switch (v.state) {
      case State::Invalid:
        return 0;
      case State::SpecShared:
        // Superseded copies are nearly dead; latest-version copies
        // are live working set (shared read-only data) and compete
        // via LRU like any other resident line.
        return v.latestCopy ? 2 : 1;
      case State::Shared:
      case State::Exclusive:
      case State::Modified:
      case State::Owned:
        // Plain LRU among non-speculative lines: preferring clean
        // victims would evict the current (still-clean) working set
        // in favour of stale dirty data.
        return 2;
      case State::SpecOwned:
        // §5.4: prefer overflowing non-speculative S-O versions.
        return v.tag.mod == kNonSpecVid ? 3 : 4;
      case State::SpecExclusive:
      case State::SpecModified:
        return 4;
    }
    return 5;
}

StoreAction
classifyStoreWithMarks(State st, VersionTag eff, Vid y)
{
    if (y < eff.high) {
        // A later VID already read this version — possibly recorded
        // on a peer copy rather than the owner (§4.3).
        return StoreAction::Abort;
    }
    return classifyStore(st, eff, y);
}

ReadMarkAction
classifyReadMark(State st, VersionTag t, Vid vid)
{
    if (isSpecResponder(st))
        return vid > t.high ? ReadMarkAction::RaiseHigh
                            : ReadMarkAction::None;
    if (st == State::SpecShared)
        return ReadMarkAction::None; // owner already logged >= this
    // First speculative access to a non-speculative line: gain
    // writable access if shared (§4.2), then go speculative.
    if (st == State::Shared || st == State::Owned)
        return ReadMarkAction::UpgradeWithBus;
    return ReadMarkAction::Upgrade;
}

} // namespace hmtx
