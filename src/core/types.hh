/**
 * @file
 * Fundamental types shared by the HMTX protocol layer and the simulator.
 *
 * The HMTX protocol layer (src/core) is the paper's primary contribution:
 * it is pure logic with no dependency on the event-driven simulator, so it
 * can be unit tested exhaustively and reused by other cache models.
 */

#ifndef HMTX_CORE_TYPES_HH
#define HMTX_CORE_TYPES_HH

#include <cstdint>

namespace hmtx
{

/** Simulated time, in clock cycles of the 2.0 GHz machine (Table 2). */
using Tick = std::uint64_t;

/** A duration in cycles. */
using Cycles = std::uint64_t;

/** Simulated physical address. */
using Addr = std::uint64_t;

/** Core identifier (0-based). */
using CoreId = std::uint32_t;

/**
 * Transaction version identifier (§3).
 *
 * VID 0 is reserved for non-speculative execution. VIDs are assigned in
 * original sequential program order; the hardware stores them in m bits
 * (m = 6 in the evaluated configuration, §4.5), so the usable window is
 * [1, 2^m - 1] between VID resets (§4.6). Inside the simulator a VID is
 * kept in a wide integer; VidWindow enforces the m-bit constraint.
 */
using Vid = std::uint32_t;

/** The non-speculative VID. */
inline constexpr Vid kNonSpecVid = 0;

/** Cache line size in bytes (Table 2). */
inline constexpr unsigned kLineBytes = 64;

/** log2 of the line size. */
inline constexpr unsigned kLineShift = 6;

/** Returns the line-aligned base address containing @p a. */
constexpr Addr
lineAddr(Addr a)
{
    return a & ~static_cast<Addr>(kLineBytes - 1);
}

/** Returns the byte offset of @p a within its cache line. */
constexpr unsigned
lineOffset(Addr a)
{
    return static_cast<unsigned>(a & (kLineBytes - 1));
}

} // namespace hmtx

#endif // HMTX_CORE_TYPES_HH
