/**
 * @file
 * m-bit VID window management (§4.5, §4.6).
 */

#ifndef HMTX_CORE_VID_HH
#define HMTX_CORE_VID_HH

#include <cassert>
#include <cstdint>

#include "core/types.hh"

namespace hmtx
{

/**
 * Allocates VIDs in original program order within the finite m-bit
 * window the hardware supports (§4.6).
 *
 * VIDs are handed out consecutively starting at 1. Once 2^m - 1 has
 * been allocated the window is exhausted: the software must delay new
 * transactions until the transaction with the maximum VID commits, send
 * a VID Reset to the memory system, and continue from VID 1. The
 * runtime (src/runtime) drives that sequence; this class only does the
 * arithmetic and bookkeeping so the policy is testable in isolation.
 */
class VidWindow
{
  public:
    /**
     * @param bits width m of the hardware VID fields; the evaluated
     *             configuration uses 6 (§4.5)
     */
    explicit VidWindow(unsigned bits = 6)
        : bits_(bits)
    {
        assert(bits >= 1 && bits <= 20);
    }

    /** Width m of the VID fields. */
    unsigned bits() const { return bits_; }

    /** Largest usable VID, 2^m - 1. */
    Vid maxVid() const { return (Vid{1} << bits_) - 1; }

    /** True once every VID in the current window has been allocated. */
    bool exhausted() const { return next_ > maxVid(); }

    /** Last VID handed out in the current window (0 if none yet). */
    Vid lastAllocated() const { return next_ - 1; }

    /**
     * Allocates the next VID.
     * @pre !exhausted()
     */
    Vid
    allocate()
    {
        assert(!exhausted());
        return next_++;
    }

    /**
     * Records a VID Reset (§4.6): the caller has drained all
     * outstanding transactions and reset the memory system; allocation
     * restarts at 1.
     */
    void
    reset()
    {
        next_ = 1;
        ++resets_;
    }

    /** Number of VID Resets performed so far. */
    std::uint64_t resets() const { return resets_; }

  private:
    unsigned bits_;
    Vid next_ = 1;
    std::uint64_t resets_ = 0;
};

} // namespace hmtx

#endif // HMTX_CORE_VID_HH
