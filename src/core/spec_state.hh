/**
 * @file
 * Coherence states of the HMTX protocol: the five MOESI states plus the
 * four speculative states introduced by the paper (§4.1, Figure 4).
 */

#ifndef HMTX_CORE_SPEC_STATE_HH
#define HMTX_CORE_SPEC_STATE_HH

#include <cstdint>
#include <string_view>

namespace hmtx
{

/**
 * Coherence state of one cache line version.
 *
 * The base protocol is snoopy MOESI [Sweazey & Smith]. HMTX adds four
 * speculative states (§4.1):
 *
 *  - SpecModified (S-M):  the "latest" speculative version of the line
 *    with respect to original program order; dirty on commit.
 *  - SpecOwned (S-O):     a speculatively accessed version later
 *    superseded by a speculative write with a higher VID; a write that
 *    hits it aborts.
 *  - SpecExclusive (S-E): like S-M but no version of the line has been
 *    modified since entering the cache; returns to a clean state on
 *    commit. modVID is always 0.
 *  - SpecShared (S-S):    a read-only peer copy of a speculatively
 *    accessed line; never responds to snoops.
 */
enum class State : std::uint8_t
{
    Invalid,
    Shared,
    Exclusive,
    Owned,
    Modified,
    SpecShared,
    SpecExclusive,
    SpecOwned,
    SpecModified,
};

/** True for the four speculative states. */
constexpr bool
isSpec(State s)
{
    return s >= State::SpecShared;
}

/** True if this state holds valid data. */
constexpr bool
isValid(State s)
{
    return s != State::Invalid;
}

/**
 * True if this version responds to snooped requests. Exactly one copy of
 * each version is in a responder state; S-S copies stay silent (§4.1).
 */
constexpr bool
isSpecResponder(State s)
{
    return s == State::SpecExclusive || s == State::SpecOwned ||
        s == State::SpecModified;
}

/**
 * True for speculative states that represent the latest version of the
 * line (hit rule: request VID >= modVID).
 */
constexpr bool
isSpecLatest(State s)
{
    return s == State::SpecModified || s == State::SpecExclusive;
}

/**
 * True for speculative states representing a superseded (or peer-copy)
 * version (hit rule: modVID <= request VID < highVID).
 */
constexpr bool
isSpecSuperseded(State s)
{
    return s == State::SpecOwned || s == State::SpecShared;
}

/** Human-readable state name, matching the paper's notation. */
constexpr std::string_view
stateName(State s)
{
    switch (s) {
      case State::Invalid:        return "I";
      case State::Shared:         return "S";
      case State::Exclusive:      return "E";
      case State::Owned:          return "O";
      case State::Modified:       return "M";
      case State::SpecShared:     return "S-S";
      case State::SpecExclusive:  return "S-E";
      case State::SpecOwned:      return "S-O";
      case State::SpecModified:   return "S-M";
    }
    return "?";
}

} // namespace hmtx

#endif // HMTX_CORE_SPEC_STATE_HH
