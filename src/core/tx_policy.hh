/**
 * @file
 * Pluggable transaction-mode policy (TxMode axis of the config matrix).
 *
 * The protocol engine itself is mode-agnostic: it versions lines, walks
 * them on commit/abort, and reports conflicts. What differs between the
 * paper's lazy/eager HMTX cells and the two capacity-bounded variants
 * (best-effort HTM with a serialized software fallback, and a limited
 * first-K-lines speculative set) is *policy*: when a commit walk is
 * charged eagerly, when a transaction gives up on speculation, and when
 * a speculative access must capacity-abort. This class owns those
 * decisions so the cache model contains no mode conditionals of its own,
 * and so the golden model can run the *same* policy object in lockstep
 * and predict fallback serialization and limited-set aborts exactly.
 *
 * Best-effort fallback state machine (after bblum's htm_mutex and the
 * HAFT tx_ibm MAX_RETRIES/THRESHOLD exemplars):
 *
 *     speculating --abort x N--> armed --first access of VID lc+1-->
 *     serialized (global lock held, accesses run non-speculatively)
 *     --commit of the fallback VID--> speculating
 *
 * Aborts while the lock is held never target the holder (its accesses
 * are non-speculative, so a global flush cannot touch its state); the
 * lock is released only by the holder's commit. A cumulative abort
 * threshold (when nonzero) drops the per-transaction retry budget to a
 * single attempt once total aborts cross it — the HAFT-style "stop
 * believing in HTM" early fallback.
 *
 * This layer is pure logic with no simulator dependencies, like the
 * rest of src/core, so src/check can instantiate an identical policy
 * for the golden model.
 */

#ifndef HMTX_CORE_TX_POLICY_HH
#define HMTX_CORE_TX_POLICY_HH

#include <cstddef>
#include <cstdint>

#include "core/types.hh"

namespace hmtx
{

/** Transaction-mode axis of the config matrix. */
enum class TxMode
{
    /** Full HMTX, O(1) lazy commit via the LC VID watermark (§5.3). */
    LazyHmtx,
    /** Full HMTX, naive O(lines) eager commit/abort walks (§4.4). */
    EagerHmtx,
    /**
     * Best-effort HTM: after N conflict/capacity aborts the next
     * transaction (VID == LC+1) runs serialized under a global lock,
     * non-speculatively, and cannot abort.
     */
    BestEffort,
    /**
     * Limited speculative sets: only the first K distinct lines per
     * VID may enter the read/write sets; the (K+1)-th capacity-aborts.
     */
    LimitedSet,
};

/** Stable lowercase name for config echo lines and JSON records. */
const char* txModeName(TxMode m);

/** The mode knobs a TxPolicy is built from (subset of MachineConfig). */
struct TxPolicyConfig
{
    TxMode mode = TxMode::LazyHmtx;
    /** BestEffort: speculative attempts before arming the fallback. */
    unsigned btxMaxRetries = 2;
    /** BestEffort: cumulative aborts after which the retry budget
     *  collapses to one attempt (0 disables the threshold). */
    unsigned btxAbortThreshold = 0;
    /** LimitedSet: max distinct speculative lines per VID. */
    unsigned limitedSetK = 4;
};

/**
 * Validates the mode knobs in isolation; throws std::invalid_argument
 * with a descriptive message. MachineConfig::validate() layers the
 * engine/overflow compatibility rules on top.
 */
void validateTxPolicyConfig(const TxPolicyConfig& cfg);

/** Counters for the mode-policy layer, reported as sim.txmode.* rows. */
struct TxModeStats
{
    /** Times the serialized fallback path was engaged. */
    std::uint64_t fallbackEntries = 0;
    /** Accesses executed non-speculatively under the fallback lock. */
    std::uint64_t fallbackAccesses = 0;
    /** Fallback transactions that committed (releasing the lock). */
    std::uint64_t fallbackCommits = 0;
    /** VID-window wraparounds remapping a held fallback VID to 1. */
    std::uint64_t fallbackWrapRemaps = 0;
    /** Memory-system cycles spent in serialized fallback accesses. */
    std::uint64_t fallbackCycles = 0;
    /** Capacity aborts raised by the limited-set K bound. */
    std::uint64_t limitedSetAborts = 0;
    /** Aborts charged against the best-effort retry budget. */
    std::uint64_t retryAborts = 0;
    /** Fallback armings forced early by the cumulative threshold. */
    std::uint64_t earlyFallbacks = 0;

    bool operator==(const TxModeStats&) const = default;
};

/**
 * The per-machine policy instance. CacheSystem consults it on every
 * speculative access and notifies it of commits, global aborts, and
 * VID resets; the golden model drives an identical instance with the
 * same event stream, so both sides agree on every serialization and
 * capacity decision without the checker peeking at simulator state.
 */
class TxPolicy
{
  public:
    explicit TxPolicy(const TxPolicyConfig& cfg = {}) : cfg_(cfg) {}

    TxMode mode() const { return cfg_.mode; }
    const TxPolicyConfig& config() const { return cfg_; }
    const TxModeStats& stats() const { return stats_; }

    /** True when commit/abort charge the naive O(lines) walk (§4.4).
     *  Only EagerHmtx does; the capacity-bounded modes keep the lazy
     *  watermark commit — they differ in *set* policy, not walks. */
    bool eagerWalk() const { return cfg_.mode == TxMode::EagerHmtx; }

    /** True when speculative sets are bounded to the first K lines. */
    bool limitsSpecSets() const
    {
        return cfg_.mode == TxMode::LimitedSet;
    }

    /** Given @p combined distinct lines already in a VID's sets, would
     *  touching one more line exceed the K bound? */
    bool limitedSetExceeded(std::size_t combined) const
    {
        return combined >= cfg_.limitedSetK;
    }

    /** True when accesses of @p vid run serialized under the lock. */
    bool serializes(Vid vid) const
    {
        return held_ && vid == fallbackVid_;
    }

    bool fallbackHeld() const { return held_; }
    bool fallbackArmed() const { return armed_; }
    Vid fallbackVid() const { return fallbackVid_; }

    /**
     * Called at every correct-path speculative access before it
     * executes. Returns true when the access must run serialized
     * (non-speculatively, under the global fallback lock). The lock is
     * taken by the first access of VID @p lcVid + 1 after the retry
     * budget is exhausted — the oldest uncommitted transaction, so the
     * holder's commit is never blocked by an earlier VID.
     */
    bool
    onSpecAccess(Vid vid, Vid lcVid)
    {
        if (cfg_.mode != TxMode::BestEffort)
            return false;
        if (held_) {
            if (vid != fallbackVid_)
                return false;
            ++stats_.fallbackAccesses;
            return true;
        }
        if (armed_ && vid == lcVid + 1) {
            held_ = true;
            fallbackVid_ = vid;
            armed_ = false;
            aborts_ = 0;
            ++stats_.fallbackEntries;
            ++stats_.fallbackAccesses;
            return true;
        }
        return false;
    }

    /** Called once per global abort (every abortGen bump). */
    void
    onAbort()
    {
        if (cfg_.mode != TxMode::BestEffort)
            return;
        ++stats_.retryAborts;
        ++totalAborts_;
        ++aborts_;
        // The lock holder never aborts, but a global flush can still
        // happen while the lock is held (a *non-holder* speculative
        // VID conflicting); it charges the budget like any other.
        const bool thresholdHit = cfg_.btxAbortThreshold != 0 &&
            totalAborts_ >= cfg_.btxAbortThreshold;
        const unsigned budget =
            thresholdHit ? 1u : cfg_.btxMaxRetries;
        if (!armed_ && aborts_ >= budget) {
            armed_ = true;
            if (thresholdHit && aborts_ < cfg_.btxMaxRetries)
                ++stats_.earlyFallbacks;
        }
    }

    /** Called after the group commit of @p vid succeeds. */
    void
    onCommit(Vid vid)
    {
        if (cfg_.mode != TxMode::BestEffort)
            return;
        // Forward progress: any commit resets the consecutive count.
        aborts_ = 0;
        if (held_ && vid == fallbackVid_) {
            held_ = false;
            fallbackVid_ = kNonSpecVid;
            ++stats_.fallbackCommits;
        }
    }

    /** Called after a VID-window reset (§4.6). A reset is only legal
     *  with no uncommitted speculative state; the fallback holder
     *  qualifies (its accesses are non-speculative), so a held lock
     *  survives the wraparound with its VID renumbered to 1. */
    void
    onVidReset()
    {
        if (held_) {
            fallbackVid_ = 1;
            ++stats_.fallbackWrapRemaps;
        }
    }

    /** Accumulates serialized-access latency into the stats. */
    void noteFallbackCycles(std::uint64_t c)
    {
        stats_.fallbackCycles += c;
    }

    /** Accounts one limited-set capacity abort (the caller raises the
     *  actual abort through the normal protocol path). */
    void noteLimitedSetAbort() { ++stats_.limitedSetAborts; }

  private:
    TxPolicyConfig cfg_;
    TxModeStats stats_;
    /** Consecutive aborts since the last commit (BestEffort). */
    unsigned aborts_ = 0;
    /** Cumulative aborts, feeding the early-fallback threshold. */
    std::uint64_t totalAborts_ = 0;
    /** Retry budget exhausted; next LC+1 access engages the lock. */
    bool armed_ = false;
    /** Global fallback lock held. */
    bool held_ = false;
    /** VID running serialized while the lock is held. */
    Vid fallbackVid_ = kNonSpecVid;
};

} // namespace hmtx

#endif // HMTX_CORE_TX_POLICY_HH
