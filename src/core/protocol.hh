/**
 * @file
 * The HMTX protocol engine: the complete per-version decision surface
 * of §4.1-§4.4, §4.6 and §5.3/§5.4 as side-effect-free functions.
 *
 * version_rules.hh holds the normative primitive transitions straight
 * from the paper's figures (hit rule, Figure 4 store classification,
 * Figure 6/7 commit/abort, §4.6 reset). This layer composes them with
 * the implementation flags a real line carries — sharer copies,
 * latest-version S-S semantics, wrong-path marks — so that every
 * protocol decision the cache system makes is expressible on a plain
 * value (`VersionView`) with no machine attached. The simulator's
 * CacheSystem is thereby reduced to orchestration: it converts lines
 * to views, asks this engine, and applies the returned image.
 */

#ifndef HMTX_CORE_PROTOCOL_HH
#define HMTX_CORE_PROTOCOL_HH

#include "core/spec_state.hh"
#include "core/types.hh"
#include "core/version_rules.hh"

namespace hmtx
{

/**
 * Architectural payload of one cache line version as the protocol
 * engine sees it: coherence state, version tags, and the sharing /
 * provenance flags that refine the paper's base transitions. No
 * simulator bookkeeping, no data bytes — decisions never depend on
 * either.
 */
struct VersionView
{
    State state = State::Invalid;
    VersionTag tag{};
    /** True when the data differs from main memory. */
    bool dirty = false;
    /** True when peer caches may hold S-S copies of this version. */
    bool mayHaveSharers = false;
    /** True for S-S copies of the *latest* version (distributed read
     *  marks; see DESIGN.md §2). */
    bool latestCopy = false;
    /** True when highVID was last raised by a wrong-path load. */
    bool highFromWrongPath = false;

    bool operator==(const VersionView&) const = default;
};

/**
 * Lazy-commit reconciliation (§5.3): folds every commit at or below
 * the LC VID watermark @p lc into the version. Latest-version S-S
 * copies only shed committed marks (they must never turn into a
 * second apparent owner); everything else follows Figure 6, with
 * retiring owners that handed out S-S copies landing in a shareable
 * state (M->O, E->S). Idempotent for a fixed @p lc.
 */
VersionView reconcileVersion(VersionView v, Vid lc);

/**
 * Global-abort transition for one version (§4.4, Figure 7): commits
 * up to @p lc are folded first, then all uncommitted speculative
 * state is flushed. Latest-version S-S copies are dropped (they are
 * refetchable and keeping them could orphan a version's ownership).
 */
VersionView abortVersion(VersionView v, Vid lc);

/**
 * VID-reset transition (§4.6). Only legal once every outstanding
 * transaction has committed; the caller must reconcile first. Latest
 * versions retire to committed non-speculative states, superseded
 * versions and copies die.
 */
VersionView resetVersion(VersionView v);

/**
 * Hit predicate for a request with VID @p a (§4.1), extended with the
 * latest-copy S-S semantics: a copy of the latest version serves any
 * VID >= its modVID locally. Non-speculative versions serve every
 * request (tag match is the cache's job; callers pass the LC VID for
 * non-speculative requests).
 */
bool versionServes(const VersionView& v, Vid a);

/**
 * Eviction preference class (§5.4); lower evicts first.
 *
 *  0 invalid, 1 superseded S-S copies (nearly dead), 2 plain LRU
 *  residents (non-speculative lines and latest-version copies),
 *  3 pristine S-O versions (may overflow to memory), 4 responder-class
 *  speculative state (loss aborts).
 */
int victimClass(const VersionView& v);

/**
 * Store classification against the *effective* tag of the hitting
 * version — the owner's tag with the distributed read marks from
 * latest-version S-S copies aggregated into highVID (§4.2/§4.3). Any
 * store below the aggregated highVID violates a flow dependence and
 * aborts, even when the owner itself never logged that reader.
 */
StoreAction classifyStoreWithMarks(State st, VersionTag eff, Vid y);

/** What a speculative read must do to mark the version it hit. */
enum class ReadMarkAction : std::uint8_t
{
    /** Version already logged an equal-or-higher VID: nothing to do. */
    None,
    /** Speculative responder: raise highVID to the request, SLA due. */
    RaiseHigh,
    /**
     * Non-speculative exclusive-class line (M/E): transition in place
     * to S-M/S-E per dirtiness, SLA due.
     */
    Upgrade,
    /**
     * Non-speculative shared-class line (S/O): a fabric transaction
     * must first gain writable access and invalidate peer copies, then
     * as Upgrade.
     */
    UpgradeWithBus,
};

/**
 * Classifies the read marking for VID @p vid on a version it hit
 * (§4.2, §5.1). S-S copies are never marked through this path: the
 * owner (or the copy's own local mark, for latest copies) carries the
 * log.
 */
ReadMarkAction classifyReadMark(State st, VersionTag t, Vid vid);

/** Speculative state a non-speculative line upgrades into (§4.2). */
constexpr State
specUpgradeState(bool dirty)
{
    return dirty ? State::SpecModified : State::SpecExclusive;
}

} // namespace hmtx

#endif // HMTX_CORE_PROTOCOL_HH
