#!/usr/bin/env bash
# Tier-1 gate: builds and runs the full test suite in the Release
# configuration and again under ASan+UBSan (see CMakePresets.json).
# Run from anywhere:
#
#   ci/check.sh [preset ...]
#
# With no arguments both presets run; pass a subset (e.g. `ci/check.sh
# release`) to iterate faster. Any test failure or sanitizer report
# fails the script.

set -euo pipefail

ROOT=$(cd "$(dirname "$0")/.." && pwd)
PRESETS=("$@")
if [ ${#PRESETS[@]} -eq 0 ]; then
    PRESETS=(release asan-ubsan)
fi

JOBS=$(nproc 2>/dev/null || echo 4)
cd "$ROOT"

for preset in "${PRESETS[@]}"; do
    echo "==== preset: $preset ===="
    cmake --preset "$preset"
    cmake --build --preset "$preset" -j "$JOBS"
    # Halt on the first error inside the sanitizer runtime rather
    # than limping on with corrupted state.
    UBSAN_OPTIONS=halt_on_error=1 \
    ASAN_OPTIONS=detect_leaks=1 \
        ctest --preset "$preset" -j "$JOBS"
done

# Golden-model differential fuzzing (DESIGN.md §10): a fixed-seed
# batch beyond what the fuzz_smoke ctest already covered, split across
# the commit-mode cell groups — half the budget runs every cell on one
# schedule, a quarter leans on the best-effort pair and a quarter on
# the limited-set pair (disjoint seed ranges, so the focused batches
# are not a subset of the first). Override FUZZ_SCHEDULES for longer
# campaigns (FUZZ_SCHEDULES=0 skips).
FUZZ_SCHEDULES=${FUZZ_SCHEDULES:-2000}
if printf '%s\n' "${PRESETS[@]}" | grep -qx release \
    && [ "$FUZZ_SCHEDULES" -gt 0 ]; then
    FUZZ_BIN="$ROOT/build-release/tests/fuzz/hmtx_fuzz"
    if [ ! -x "$FUZZ_BIN" ]; then
        echo "FATAL: $FUZZ_BIN missing after the release build" >&2
        exit 1
    fi
    FUZZ_HALF=$((FUZZ_SCHEDULES / 2))
    FUZZ_QUARTER=$((FUZZ_SCHEDULES / 4))
    fuzz_batch() { # <label> <cells> <seed0> <schedules>
        echo "==== fuzz ($1 cells): $4 differential schedules ===="
        if ! "$FUZZ_BIN" --schedules "$4" --ops 160 \
            --cells "$2" --seed0 "$3" \
            --corpus-out "$ROOT/tests/fuzz/corpus"; then
            echo "FATAL: differential fuzzing ($1 cells) diverged;" \
                 "shrunken replay written to tests/fuzz/corpus" \
                 "(rerun with hmtx_fuzz --replay <file>" \
                 "--cells $2)" >&2
            exit 1
        fi
    }
    fuzz_batch all all 1 "$FUZZ_HALF"
    [ "$FUZZ_QUARTER" -gt 0 ] && \
        fuzz_batch best-effort btx 500001 "$FUZZ_QUARTER"
    [ "$FUZZ_QUARTER" -gt 0 ] && \
        fuzz_batch limited-set ltd 600001 "$FUZZ_QUARTER"
fi

# Bounded-exhaustive model checking (DESIGN.md §14): enumerate every
# interleaving of MC_BUDGET small 2-core programs per cell group and
# replay each through the differential matrix, sleep-set-pruned. A
# divergence writes a flattened witness to tests/fuzz/corpus exactly
# like a fuzz divergence. Override MC_BUDGET for longer campaigns
# (MC_BUDGET=0 skips).
MC_BUDGET=${MC_BUDGET:-300}
if printf '%s\n' "${PRESETS[@]}" | grep -qx release \
    && [ "$MC_BUDGET" -gt 0 ]; then
    MC_BIN="$ROOT/build-release/tests/fuzz/hmtx_mc"
    if [ ! -x "$MC_BIN" ]; then
        echo "FATAL: $MC_BIN missing after the release build" >&2
        exit 1
    fi
    mc_batch() { # <label> <cells> <seed0> <extra args...>
        local label=$1 cells=$2 seed0=$3
        shift 3
        echo "==== model check ($label cells): $MC_BUDGET programs ===="
        if ! "$MC_BIN" --programs "$MC_BUDGET" --cells "$cells" \
            --seed0 "$seed0" --corpus-out "$ROOT/tests/fuzz/corpus" \
            "$@"; then
            echo "FATAL: bounded-exhaustive model checking ($label" \
                 "cells) diverged; shrunken replay written to" \
                 "tests/fuzz/corpus (rerun with hmtx_fuzz --replay" \
                 "<file> --cells $cells)" >&2
            exit 1
        fi
    }
    mc_batch all all 1 --ops 6
    mc_batch best-effort btx 100001 --ops 7
    mc_batch limited-set ltd 200001 --ops 7
    mc_batch delivery-order all 300001 --ops 5 --delivery 3
fi

# Parallel event engine (DESIGN.md §11): the bit-identity smoke across
# the full {bus,directory} x {lazy,eager} x {inline,threaded} matrix,
# plus a small threaded fuzz batch from a distinct seed range (the main
# batch above already runs the engine-backed matrix cells on every
# schedule; this one additionally exercises the --threads batch mode).
if printf '%s\n' "${PRESETS[@]}" | grep -qx release; then
    echo "==== parallel engine: differential smoke ===="
    "$ROOT/build-release/tests/workloads/parallel_differential_test"
    echo "==== parallel engine: threaded fuzz batch ===="
    if ! "$ROOT/build-release/tests/fuzz/hmtx_fuzz" --schedules 400 \
        --ops 120 --seed0 900001 --threads 2 \
        --corpus-out "$ROOT/tests/fuzz/corpus"; then
        echo "FATAL: threaded differential fuzzing diverged; shrunken" \
             "replay written to tests/fuzz/corpus" >&2
        exit 1
    fi
fi

# Bench smoke + hot-path regression gate (Release timings only; the
# sanitizer build's numbers are meaningless). Compares the indexed
# Table-2-geometry bulk ops against the committed baseline and fails
# on a >25% slowdown.
if printf '%s\n' "${PRESETS[@]}" | grep -qx release; then
    if [ ! -f "$ROOT/BENCH_hotpath.json" ]; then
        # A silently skipped gate looks exactly like a passing one in
        # CI logs; a missing baseline must be loud.
        echo "FATAL: BENCH_hotpath.json baseline is missing;" \
             "regenerate it with bench/run_bench.sh (or" \
             "restore the committed copy) — refusing to skip the" \
             "hot-path regression gate" >&2
        exit 1
    fi
    echo "==== bench: commit-mode crossover smoke ===="
    cmake --build --preset release -j "$JOBS" \
        --target ext_mode_crossover
    CI_MODES_JSON=$(mktemp)
    if ! "$ROOT/build-release/bench/ext_mode_crossover" \
        "$CI_MODES_JSON" > /dev/null; then
        echo "FATAL: ext_mode_crossover found no HMTX/best-effort" \
             "crossover (or failed to converge) — the bounded-mode" \
             "capacity behaviour regressed" >&2
        exit 1
    fi
    rm -f "$CI_MODES_JSON"

    echo "==== bench: hot-path regression gate ===="
    cmake --build --preset release -j "$JOBS" --target micro_hotpath
    if ! "$ROOT/build-release/bench/micro_hotpath" --smoke; then
        echo "FATAL: micro_hotpath --smoke failed to run" >&2
        exit 1
    fi
    CI_MICRO_JSON=$(mktemp)
    if ! "$ROOT/build-release/bench/micro_hotpath" \
        --benchmark_filter='BM_(EagerCommit|AbortAll)/1/0|BM_HitFastPath' \
        --benchmark_out="$CI_MICRO_JSON" \
        --benchmark_out_format=json --benchmark_min_time=0.2; then
        echo "FATAL: micro_hotpath benchmark run failed" >&2
        exit 1
    fi
    python3 - "$CI_MICRO_JSON" "$ROOT/BENCH_hotpath.json" <<'EOF'
import json
import sys

cur_path, base_path = sys.argv[1:]
with open(cur_path) as f:
    cur = json.load(f)
with open(base_path) as f:
    base = json.load(f)

if cur.get("context", {}).get("hmtx_build_type") != "Release":
    sys.exit("FATAL: regression gate ran on a non-Release build")

def times(report):
    return {b["name"]: (b["real_time"], b.get("time_unit", "ns"))
            for b in report.get("benchmarks", [])
            if b.get("run_type", "iteration") == "iteration"}

cur_t = times(cur)
base_t = times(base.get("micro_hotpath", {}))
failed = False
for name in ("BM_EagerCommit/1/0", "BM_AbortAll/1/0"):
    c, b = cur_t.get(name), base_t.get(name)
    if c is None or b is None:
        sys.exit(f"FATAL: {name} missing from current run or baseline")
    if c[1] != b[1]:
        sys.exit(f"FATAL: {name} time units differ "
                 f"({c[1]} vs {b[1]})")
    ratio = c[0] / b[0]
    verdict = "FAIL" if ratio > 1.25 else "ok"
    print(f"  {name}: {c[0]:.1f}{c[1]} vs baseline {b[0]:.1f}{b[1]} "
          f"({ratio:.2f}x) {verdict}")
    if ratio > 1.25:
        failed = True
if failed:
    sys.exit("FATAL: hot-path benchmarks regressed >25% vs "
             "BENCH_hotpath.json")
print("bench regression gate: ok")

# Fast-path speedup gate (DESIGN.md section 13): the zero-event hit
# fast path must keep the hit-dominated stream >= 20% faster than the
# full per-access walk. Both cells run in this same process, so the
# gate needs no baseline and stays active on a 1-CPU host.
off, on = cur_t.get("BM_HitFastPath/0"), cur_t.get("BM_HitFastPath/1")
if off is None or on is None:
    sys.exit("FATAL: BM_HitFastPath cells missing from the gated run")
if off[1] != on[1]:
    sys.exit(f"FATAL: BM_HitFastPath time units differ "
             f"({off[1]} vs {on[1]})")
fp_speedup = off[0] / on[0]
print(f"  BM_HitFastPath: off {off[0]:.1f}{off[1]}, on "
      f"{on[0]:.1f}{on[1]} ({fp_speedup:.2f}x)")
if fp_speedup < 1.20:
    sys.exit(f"FATAL: fast path only {fp_speedup:.2f}x faster on the "
             "hit-dominated stream (gate: >= 1.20x)")
print("fast-path speedup gate: ok")
EOF
fi

# Serving throughput floor (DESIGN.md section 15): one streaming gate
# cell of the KV/OLTP serving engine (60k requests, lazy/snoop-bus;
# the run itself verifies the oracle and the attempt accounting, so
# this doubles as the serving smoke). Host requests/sec must stay
# within 25% of the committed BENCH_serving.json profile.
if printf '%s\n' "${PRESETS[@]}" | grep -qx release; then
    if [ ! -f "$ROOT/BENCH_serving.json" ]; then
        echo "FATAL: BENCH_serving.json baseline is missing;" \
             "regenerate it with bench/run_bench.sh (or restore the" \
             "committed copy) — refusing to skip the serving" \
             "throughput gate" >&2
        exit 1
    fi
    echo "==== bench: serving smoke + throughput floor ===="
    cmake --build --preset release -j "$JOBS" --target ext_kv_serving
    CI_SERVE_LINE=$("$ROOT/build-release/bench/ext_kv_serving" --gate)
    echo "  $CI_SERVE_LINE"
    python3 - "$ROOT/BENCH_serving.json" "${CI_SERVE_LINE##* }" <<'EOF'
import json
import sys

base_path, rate = sys.argv[1:]
cur = float(rate)
with open(base_path) as f:
    base = json.load(f)
ref = float(base["profile"]["streaming_requests_per_sec"])
ratio = cur / ref
print(f"  serving gate cell: {cur:.0f} req/s vs baseline "
      f"{ref:.0f} req/s ({ratio:.2f}x)")
if cur < ref / 1.25:
    sys.exit("FATAL: serving engine host throughput regressed >25% "
             "vs BENCH_serving.json")
print("serving throughput gate: ok")
EOF
fi

echo "All presets green."
