#!/usr/bin/env bash
# Tier-1 gate: builds and runs the full test suite in the Release
# configuration and again under ASan+UBSan (see CMakePresets.json).
# Run from anywhere:
#
#   ci/check.sh [preset ...]
#
# With no arguments both presets run; pass a subset (e.g. `ci/check.sh
# release`) to iterate faster. Any test failure or sanitizer report
# fails the script.

set -euo pipefail

ROOT=$(cd "$(dirname "$0")/.." && pwd)
PRESETS=("$@")
if [ ${#PRESETS[@]} -eq 0 ]; then
    PRESETS=(release asan-ubsan)
fi

JOBS=$(nproc 2>/dev/null || echo 4)
cd "$ROOT"

for preset in "${PRESETS[@]}"; do
    echo "==== preset: $preset ===="
    cmake --preset "$preset"
    cmake --build --preset "$preset" -j "$JOBS"
    # Halt on the first error inside the sanitizer runtime rather
    # than limping on with corrupted state.
    UBSAN_OPTIONS=halt_on_error=1 \
    ASAN_OPTIONS=detect_leaks=1 \
        ctest --preset "$preset" -j "$JOBS"
done

# Bench smoke + hot-path regression gate (Release timings only; the
# sanitizer build's numbers are meaningless). Compares the indexed
# Table-2-geometry bulk ops against the committed baseline and fails
# on a >25% slowdown.
if printf '%s\n' "${PRESETS[@]}" | grep -qx release \
    && [ -f "$ROOT/BENCH_hotpath.json" ]; then
    echo "==== bench: hot-path regression gate ===="
    cmake --build --preset release -j "$JOBS" --target micro_hotpath
    "$ROOT/build-release/bench/micro_hotpath" --smoke
    CI_MICRO_JSON=$(mktemp)
    "$ROOT/build-release/bench/micro_hotpath" \
        --benchmark_filter='BM_(EagerCommit|AbortAll)/1/0' \
        --benchmark_out="$CI_MICRO_JSON" \
        --benchmark_out_format=json --benchmark_min_time=0.2
    python3 - "$CI_MICRO_JSON" "$ROOT/BENCH_hotpath.json" <<'EOF'
import json
import sys

cur_path, base_path = sys.argv[1:]
with open(cur_path) as f:
    cur = json.load(f)
with open(base_path) as f:
    base = json.load(f)

if cur.get("context", {}).get("hmtx_build_type") != "Release":
    sys.exit("FATAL: regression gate ran on a non-Release build")

def times(report):
    return {b["name"]: (b["real_time"], b.get("time_unit", "ns"))
            for b in report.get("benchmarks", [])
            if b.get("run_type", "iteration") == "iteration"}

cur_t = times(cur)
base_t = times(base.get("micro_hotpath", {}))
failed = False
for name in ("BM_EagerCommit/1/0", "BM_AbortAll/1/0"):
    c, b = cur_t.get(name), base_t.get(name)
    if c is None or b is None:
        sys.exit(f"FATAL: {name} missing from current run or baseline")
    if c[1] != b[1]:
        sys.exit(f"FATAL: {name} time units differ "
                 f"({c[1]} vs {b[1]})")
    ratio = c[0] / b[0]
    verdict = "FAIL" if ratio > 1.25 else "ok"
    print(f"  {name}: {c[0]:.1f}{c[1]} vs baseline {b[0]:.1f}{b[1]} "
          f"({ratio:.2f}x) {verdict}")
    if ratio > 1.25:
        failed = True
if failed:
    sys.exit("FATAL: hot-path benchmarks regressed >25% vs "
             "BENCH_hotpath.json")
print("bench regression gate: ok")
EOF
fi

echo "All presets green."
