#!/usr/bin/env bash
# Tier-1 gate: builds and runs the full test suite in the Release
# configuration and again under ASan+UBSan (see CMakePresets.json).
# Run from anywhere:
#
#   ci/check.sh [preset ...]
#
# With no arguments both presets run; pass a subset (e.g. `ci/check.sh
# release`) to iterate faster. Any test failure or sanitizer report
# fails the script.

set -euo pipefail

ROOT=$(cd "$(dirname "$0")/.." && pwd)
PRESETS=("$@")
if [ ${#PRESETS[@]} -eq 0 ]; then
    PRESETS=(release asan-ubsan)
fi

JOBS=$(nproc 2>/dev/null || echo 4)
cd "$ROOT"

for preset in "${PRESETS[@]}"; do
    echo "==== preset: $preset ===="
    cmake --preset "$preset"
    cmake --build --preset "$preset" -j "$JOBS"
    # Halt on the first error inside the sanitizer runtime rather
    # than limping on with corrupted state.
    UBSAN_OPTIONS=halt_on_error=1 \
    ASAN_OPTIONS=detect_leaks=1 \
        ctest --preset "$preset" -j "$JOBS"
done

echo "All presets green."
