/**
 * @file
 * Tests of the cascaded VID comparator model (§4.5).
 */

#include <gtest/gtest.h>

#include "core/comparator.hh"

namespace hmtx
{
namespace
{

TEST(VidComparator, ThreeWayResultIsCorrect)
{
    VidComparator c(6);
    EXPECT_LT(c.compare(1, 5), 0);
    EXPECT_EQ(c.compare(5, 5), 0);
    EXPECT_GT(c.compare(9, 5), 0);
}

TEST(VidComparator, NearbyVidsUseFastPath)
{
    VidComparator c(6);
    // High 3 bits equal: low-bit magnitude comparison suffices.
    c.compare(2, 5);
    c.compare(4, 4);
    EXPECT_EQ(c.comparisons(), 2u);
    EXPECT_EQ(c.fastPath(), 2u);
    EXPECT_EQ(c.cascaded(), 0u);
}

TEST(VidComparator, DistantVidsCascade)
{
    VidComparator c(6);
    // 2 = 000.010, 60 = 111.100: high bits differ.
    c.compare(2, 60);
    EXPECT_EQ(c.cascaded(), 1u);
}

TEST(VidComparator, ConsecutiveVidStreamIsMostlyFast)
{
    // The design rationale (§4.5): VIDs in flight are consecutive, so
    // the overwhelming majority of comparisons resolve in the fast
    // path.
    VidComparator c(6);
    for (Vid v = 1; v < 63; ++v)
        c.compare(v, v + 1);
    EXPECT_GT(c.fastPath(), c.cascaded() * 5);
}

TEST(VidComparator, ClearResetsCounters)
{
    VidComparator c(6);
    c.compare(1, 2);
    c.clear();
    EXPECT_EQ(c.comparisons(), 0u);
    EXPECT_EQ(c.fastPath(), 0u);
    EXPECT_EQ(c.cascaded(), 0u);
}

} // namespace
} // namespace hmtx
