/**
 * @file
 * Unit tests of the TxPolicy state machine (commit-mode axis): the
 * best-effort retry/fallback lock, the early-fallback threshold, the
 * limited-set K bound, and the config validation that guards the
 * knobs.
 */

#include <gtest/gtest.h>

#include <stdexcept>

#include "core/tx_policy.hh"

namespace hmtx
{
namespace
{

TxPolicyConfig
btxConfig(unsigned retries, unsigned threshold = 0)
{
    TxPolicyConfig c;
    c.mode = TxMode::BestEffort;
    c.btxMaxRetries = retries;
    c.btxAbortThreshold = threshold;
    return c;
}

// --- retry budget ----------------------------------------------------------

/** The boundary matters: N-1 consecutive aborts retry, the N-th arms. */
TEST(TxPolicy, ArmsExactlyAtRetryBudget)
{
    TxPolicy p(btxConfig(3));
    p.onAbort();
    p.onAbort();
    EXPECT_FALSE(p.fallbackArmed()); // N-1: still retrying
    EXPECT_FALSE(p.onSpecAccess(1, 0));
    p.onAbort();
    EXPECT_TRUE(p.fallbackArmed()); // N: give up on speculation
    EXPECT_EQ(p.stats().retryAborts, 3u);
    EXPECT_EQ(p.stats().earlyFallbacks, 0u);
}

/** Forward progress resets the consecutive count. */
TEST(TxPolicy, CommitResetsConsecutiveAborts)
{
    TxPolicy p(btxConfig(2));
    p.onAbort();
    p.onCommit(1);
    p.onAbort();
    EXPECT_FALSE(p.fallbackArmed()); // never 2 in a row
    p.onAbort();
    EXPECT_TRUE(p.fallbackArmed());
}

/** Only the oldest uncommitted transaction (LC+1) takes the lock. */
TEST(TxPolicy, OnlyLcPlusOneEngagesTheLock)
{
    TxPolicy p(btxConfig(1));
    p.onAbort();
    ASSERT_TRUE(p.fallbackArmed());
    EXPECT_FALSE(p.onSpecAccess(5, 0)); // a younger VID: still spec
    EXPECT_TRUE(p.fallbackArmed());
    EXPECT_FALSE(p.fallbackHeld());
    EXPECT_TRUE(p.onSpecAccess(1, 0)); // LC+1 engages
    EXPECT_TRUE(p.fallbackHeld());
    EXPECT_FALSE(p.fallbackArmed());
    EXPECT_EQ(p.fallbackVid(), 1u);
    EXPECT_EQ(p.stats().fallbackEntries, 1u);
}

/** While held: the holder serializes, everyone else speculates. */
TEST(TxPolicy, OnlyTheHolderSerializes)
{
    TxPolicy p(btxConfig(1));
    p.onAbort();
    ASSERT_TRUE(p.onSpecAccess(3, 2));
    EXPECT_TRUE(p.serializes(3));
    EXPECT_FALSE(p.serializes(4));
    EXPECT_TRUE(p.onSpecAccess(3, 2));  // holder access
    EXPECT_FALSE(p.onSpecAccess(4, 2)); // non-holder stays spec
    EXPECT_EQ(p.stats().fallbackAccesses, 2u);
}

TEST(TxPolicy, HolderCommitReleasesTheLock)
{
    TxPolicy p(btxConfig(1));
    p.onAbort();
    ASSERT_TRUE(p.onSpecAccess(1, 0));
    p.onCommit(2); // some other VID: lock survives
    EXPECT_TRUE(p.fallbackHeld());
    p.onCommit(1); // the holder: released
    EXPECT_FALSE(p.fallbackHeld());
    EXPECT_FALSE(p.serializes(1));
    EXPECT_EQ(p.stats().fallbackCommits, 1u);
}

/** Aborts while the lock is held keep charging the budget, and the
 *  next LC+1 after release can re-engage. */
TEST(TxPolicy, LockReengagesAfterRelease)
{
    TxPolicy p(btxConfig(1));
    p.onAbort();
    ASSERT_TRUE(p.onSpecAccess(1, 0));
    p.onCommit(1);
    ASSERT_FALSE(p.fallbackHeld());
    p.onAbort(); // budget 1: re-arms immediately
    EXPECT_TRUE(p.fallbackArmed());
    EXPECT_TRUE(p.onSpecAccess(2, 1));
    EXPECT_EQ(p.stats().fallbackEntries, 2u);
}

// --- early-fallback threshold ----------------------------------------------

/** Once cumulative aborts cross the threshold, the budget collapses to
 *  one attempt even though the consecutive count never reaches N. */
TEST(TxPolicy, ThresholdForcesEarlyFallback)
{
    TxPolicy p(btxConfig(3, 5));
    for (int i = 0; i < 4; ++i) {
        p.onAbort();
        p.onCommit(static_cast<Vid>(i + 1)); // keep consecutive at 1
        EXPECT_FALSE(p.fallbackArmed());
    }
    p.onAbort(); // 5th total: threshold hit, budget is now 1
    EXPECT_TRUE(p.fallbackArmed());
    EXPECT_EQ(p.stats().earlyFallbacks, 1u);
}

/** Below the threshold the full budget applies. */
TEST(TxPolicy, ThresholdInertBelowTheLine)
{
    TxPolicy p(btxConfig(2, 10));
    p.onAbort();
    EXPECT_FALSE(p.fallbackArmed());
    p.onAbort();
    EXPECT_TRUE(p.fallbackArmed()); // via the normal budget
    EXPECT_EQ(p.stats().earlyFallbacks, 0u);
}

// --- VID-window wraparound -------------------------------------------------

/** A reset while the lock is held renames the holder to VID 1 (the
 *  oldest VID of the fresh window) instead of losing the lock. */
TEST(TxPolicy, VidResetRemapsHeldFallbackVid)
{
    TxPolicy p(btxConfig(1));
    p.onAbort();
    ASSERT_TRUE(p.onSpecAccess(15, 14));
    p.onVidReset();
    EXPECT_TRUE(p.fallbackHeld());
    EXPECT_EQ(p.fallbackVid(), 1u);
    EXPECT_TRUE(p.serializes(1));
    EXPECT_FALSE(p.serializes(15));
    EXPECT_EQ(p.stats().fallbackWrapRemaps, 1u);
    p.onCommit(1);
    EXPECT_FALSE(p.fallbackHeld());
}

TEST(TxPolicy, VidResetWithoutLockIsInert)
{
    TxPolicy p(btxConfig(2));
    p.onVidReset();
    EXPECT_EQ(p.stats().fallbackWrapRemaps, 0u);
    EXPECT_FALSE(p.fallbackHeld());
}

// --- non-best-effort modes -------------------------------------------------

TEST(TxPolicy, OtherModesNeverSerialize)
{
    for (TxMode m : {TxMode::LazyHmtx, TxMode::EagerHmtx,
                     TxMode::LimitedSet}) {
        TxPolicyConfig c;
        c.mode = m;
        TxPolicy p(c);
        for (int i = 0; i < 8; ++i)
            p.onAbort();
        EXPECT_FALSE(p.fallbackArmed()) << txModeName(m);
        EXPECT_FALSE(p.onSpecAccess(1, 0)) << txModeName(m);
        EXPECT_EQ(p.stats().retryAborts, 0u) << txModeName(m);
    }
}

TEST(TxPolicy, EagerWalkOnlyInEagerMode)
{
    TxPolicyConfig c;
    for (TxMode m : {TxMode::LazyHmtx, TxMode::EagerHmtx,
                     TxMode::BestEffort, TxMode::LimitedSet}) {
        c.mode = m;
        EXPECT_EQ(TxPolicy(c).eagerWalk(), m == TxMode::EagerHmtx)
            << txModeName(m);
    }
}

// --- limited-set bound -----------------------------------------------------

TEST(TxPolicy, LimitedSetBoundaryIsExact)
{
    TxPolicyConfig c;
    c.mode = TxMode::LimitedSet;
    c.limitedSetK = 4;
    TxPolicy p(c);
    EXPECT_TRUE(p.limitsSpecSets());
    EXPECT_FALSE(p.limitedSetExceeded(3)); // 4th line still fits
    EXPECT_TRUE(p.limitedSetExceeded(4));  // 5th does not
}

TEST(TxPolicy, OnlyLimitedSetModeBoundsSets)
{
    for (TxMode m : {TxMode::LazyHmtx, TxMode::EagerHmtx,
                     TxMode::BestEffort}) {
        TxPolicyConfig c;
        c.mode = m;
        EXPECT_FALSE(TxPolicy(c).limitsSpecSets()) << txModeName(m);
    }
}

// --- validation (satellite: misconfiguration rejection) --------------------

TEST(TxPolicyConfigValidation, RejectsZeroK)
{
    TxPolicyConfig c;
    c.mode = TxMode::LimitedSet;
    c.limitedSetK = 0;
    EXPECT_THROW(validateTxPolicyConfig(c), std::invalid_argument);
    try {
        validateTxPolicyConfig(c);
    } catch (const std::invalid_argument& e) {
        EXPECT_NE(std::string(e.what()).find("limitedSetK"),
                  std::string::npos);
    }
}

TEST(TxPolicyConfigValidation, RejectsZeroRetries)
{
    TxPolicyConfig c = btxConfig(0);
    EXPECT_THROW(validateTxPolicyConfig(c), std::invalid_argument);
    try {
        validateTxPolicyConfig(c);
    } catch (const std::invalid_argument& e) {
        EXPECT_NE(std::string(e.what()).find("btxMaxRetries"),
                  std::string::npos);
    }
}

TEST(TxPolicyConfigValidation, RejectsThresholdBelowRetries)
{
    EXPECT_THROW(validateTxPolicyConfig(btxConfig(3, 2)),
                 std::invalid_argument);
    EXPECT_NO_THROW(validateTxPolicyConfig(btxConfig(3, 3)));
    EXPECT_NO_THROW(validateTxPolicyConfig(btxConfig(3, 0)));
}

TEST(TxPolicyConfigValidation, AcceptsOtherModesWithZeroKnobs)
{
    // The bounded-mode knobs are inert outside their mode.
    TxPolicyConfig c;
    c.mode = TxMode::LazyHmtx;
    c.limitedSetK = 0;
    c.btxMaxRetries = 0;
    EXPECT_NO_THROW(validateTxPolicyConfig(c));
}

TEST(TxModeNames, AreStable)
{
    EXPECT_STREQ(txModeName(TxMode::LazyHmtx), "lazy-hmtx");
    EXPECT_STREQ(txModeName(TxMode::EagerHmtx), "eager-hmtx");
    EXPECT_STREQ(txModeName(TxMode::BestEffort), "best-effort");
    EXPECT_STREQ(txModeName(TxMode::LimitedSet), "limited-set");
}

} // namespace
} // namespace hmtx
