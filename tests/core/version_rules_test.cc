/**
 * @file
 * Exhaustive tests of the HMTX version rules (§4.1-§4.4): the hit
 * predicate, store classification, and the commit (Figure 6), abort
 * (Figure 7) and VID-reset (§4.6) transitions.
 */

#include <gtest/gtest.h>

#include "core/version_rules.hh"

namespace hmtx
{
namespace
{

TEST(VersionHits, NonSpeculativeStatesHitAnyVid)
{
    for (State st : {State::Shared, State::Exclusive, State::Owned,
                     State::Modified}) {
        for (Vid a : {0u, 1u, 5u, 63u})
            EXPECT_TRUE(versionHits(st, {0, 0}, a)) << stateName(st);
    }
    EXPECT_FALSE(versionHits(State::Invalid, {0, 0}, 0));
}

TEST(VersionHits, SpecLatestHitsAtOrAboveModVid)
{
    // S-M(m,h): hit iff a >= m (§4.1).
    VersionTag t{3, 5};
    for (State st : {State::SpecModified, State::SpecExclusive}) {
        EXPECT_FALSE(versionHits(st, t, 0));
        EXPECT_FALSE(versionHits(st, t, 2));
        EXPECT_TRUE(versionHits(st, t, 3));
        EXPECT_TRUE(versionHits(st, t, 5));
        EXPECT_TRUE(versionHits(st, t, 63));
    }
}

TEST(VersionHits, SpecSupersededHitsInHalfOpenRange)
{
    // S-O(m,h): hit iff m <= a < h (§4.1).
    VersionTag t{2, 6};
    for (State st : {State::SpecOwned, State::SpecShared}) {
        EXPECT_FALSE(versionHits(st, t, 1));
        EXPECT_TRUE(versionHits(st, t, 2));
        EXPECT_TRUE(versionHits(st, t, 5));
        EXPECT_FALSE(versionHits(st, t, 6));
        EXPECT_FALSE(versionHits(st, t, 7));
    }
}

TEST(VersionHits, PristineVersionRange)
{
    // S-O(0, y) retains the pre-speculation data for accesses below
    // the superseding write's VID y (§4.2).
    VersionTag t{0, 3};
    EXPECT_TRUE(versionHits(State::SpecOwned, t, 0));
    EXPECT_TRUE(versionHits(State::SpecOwned, t, 2));
    EXPECT_FALSE(versionHits(State::SpecOwned, t, 3));
}

/**
 * Parameterized sweep: the hit ranges of a well-formed version chain
 * S-O(0,3), S-O(3,7), S-M(7,7) must partition [0, maxVid] with no
 * overlaps and no gaps, which is what makes "requests only hit on one
 * version" (§4.1) true.
 */
class ChainCoverage : public ::testing::TestWithParam<Vid>
{};

TEST_P(ChainCoverage, ExactlyOneVersionHits)
{
    Vid a = GetParam();
    int hits = 0;
    hits += versionHits(State::SpecOwned, {0, 3}, a) ? 1 : 0;
    hits += versionHits(State::SpecOwned, {3, 7}, a) ? 1 : 0;
    hits += versionHits(State::SpecModified, {7, 7}, a) ? 1 : 0;
    EXPECT_EQ(hits, 1) << "request VID " << a;
}

INSTANTIATE_TEST_SUITE_P(AllVids, ChainCoverage,
                         ::testing::Range<Vid>(0, 64));

TEST(ClassifyStore, OwnVersionWritesInPlace)
{
    EXPECT_EQ(classifyStore(State::SpecModified, {4, 4}, 4),
              StoreAction::InPlace);
}

TEST(ClassifyStore, LaterStoreCreatesNewVersion)
{
    EXPECT_EQ(classifyStore(State::SpecModified, {2, 2}, 5),
              StoreAction::NewVersion);
    EXPECT_EQ(classifyStore(State::SpecExclusive, {0, 3}, 3),
              StoreAction::NewVersion);
    // First write to a non-speculative line.
    EXPECT_EQ(classifyStore(State::Modified, {0, 0}, 1),
              StoreAction::NewVersion);
    EXPECT_EQ(classifyStore(State::Exclusive, {0, 0}, 7),
              StoreAction::NewVersion);
}

TEST(ClassifyStore, StoreBelowHighVidAborts)
{
    // A later VID already read the version: flow-dependence violation
    // (§4.3).
    EXPECT_EQ(classifyStore(State::SpecModified, {2, 6}, 4),
              StoreAction::Abort);
    EXPECT_EQ(classifyStore(State::SpecExclusive, {0, 6}, 3),
              StoreAction::Abort);
}

TEST(ClassifyStore, StoreHittingSupersededVersionAborts)
{
    // The hit itself proves a later write superseded this version
    // (§4.2: "speculative writes that hit this version trigger an
    // abort").
    EXPECT_EQ(classifyStore(State::SpecOwned, {0, 6}, 3),
              StoreAction::Abort);
    EXPECT_EQ(classifyStore(State::SpecOwned, {2, 6}, 4),
              StoreAction::Abort);
}

TEST(ClassifyStore, SameVidStoreAfterHigherReadAborts)
{
    // Re-entering a version is only allowed while no higher VID has
    // touched it.
    EXPECT_EQ(classifyStore(State::SpecModified, {4, 9}, 4),
              StoreAction::Abort);
}

// --- Commit transitions (Figure 6) ------------------------------------

TEST(CommitLine, FullyCommittedLatestVersionRetires)
{
    EXPECT_EQ(commitLine(State::SpecModified, {3, 3}, 3, true),
              (LineTransition{State::Modified, {}}));
    EXPECT_EQ(commitLine(State::SpecExclusive, {0, 3}, 3, false),
              (LineTransition{State::Exclusive, {}}));
}

TEST(CommitLine, SupersededVersionsInvalidateOnceAccessorsCommit)
{
    EXPECT_EQ(commitLine(State::SpecOwned, {0, 2}, 2, true),
              (LineTransition{State::Invalid, {}}));
    EXPECT_EQ(commitLine(State::SpecShared, {1, 2}, 5, false),
              (LineTransition{State::Invalid, {}}));
}

TEST(CommitLine, CommittedModClearsWhileAccessorsOutstanding)
{
    // S-M(2,5) after commit of 2: modification is committed but VID 5
    // is still live, so only modVID clears (Figure 6).
    EXPECT_EQ(commitLine(State::SpecModified, {2, 5}, 2, true),
              (LineTransition{State::SpecModified, {0, 5}}));
    EXPECT_EQ(commitLine(State::SpecOwned, {2, 5}, 3, true),
              (LineTransition{State::SpecOwned, {0, 5}}));
}

TEST(CommitLine, UncommittedLinesUnchanged)
{
    EXPECT_EQ(commitLine(State::SpecModified, {4, 6}, 2, true),
              (LineTransition{State::SpecModified, {4, 6}}));
    EXPECT_EQ(commitLine(State::SpecExclusive, {0, 6}, 2, false),
              (LineTransition{State::SpecExclusive, {0, 6}}));
}

TEST(CommitLine, NonSpecLinesUntouched)
{
    EXPECT_EQ(commitLine(State::Modified, {0, 0}, 9, true),
              (LineTransition{State::Modified, {0, 0}}));
}

// --- Abort transitions (Figure 7) --------------------------------------

TEST(AbortLine, UncommittedModificationsFlush)
{
    EXPECT_EQ(abortLine(State::SpecModified, {4, 4}, 2, true),
              (LineTransition{State::Invalid, {}}));
    EXPECT_EQ(abortLine(State::SpecOwned, {4, 7}, 2, true),
              (LineTransition{State::Invalid, {}}));
}

TEST(AbortLine, CommittedDataSurvivesWithClearedTags)
{
    // modVID == 0: the data is committed; only the speculative
    // marking clears (Figure 7).
    EXPECT_EQ(abortLine(State::SpecModified, {0, 5}, 2, true),
              (LineTransition{State::Modified, {}}));
    EXPECT_EQ(abortLine(State::SpecExclusive, {0, 5}, 2, false),
              (LineTransition{State::Exclusive, {}}));
    EXPECT_EQ(abortLine(State::SpecOwned, {0, 5}, 2, true),
              (LineTransition{State::Owned, {}}));
    EXPECT_EQ(abortLine(State::SpecOwned, {0, 5}, 2, false),
              (LineTransition{State::Shared, {}}));
    EXPECT_EQ(abortLine(State::SpecShared, {0, 5}, 2, false),
              (LineTransition{State::Shared, {}}));
}

TEST(AbortLine, CommittedButUnreconciledModRetires)
{
    // S-M(2,2) after commit of 2, then an abort: the line had fully
    // retired logically; the abort must not destroy committed data.
    EXPECT_EQ(abortLine(State::SpecModified, {2, 2}, 2, true),
              (LineTransition{State::Modified, {}}));
    EXPECT_EQ(abortLine(State::SpecOwned, {0, 2}, 2, true),
              (LineTransition{State::Invalid, {}}));
}

TEST(AbortLine, CommittedModWithLiveReaderSurvives)
{
    EXPECT_EQ(abortLine(State::SpecModified, {2, 5}, 2, true),
              (LineTransition{State::Modified, {}}));
}

// --- VID reset (§4.6) ----------------------------------------------------

TEST(ResetLine, LatestVersionsBecomeCommitted)
{
    EXPECT_EQ(resetLine(State::SpecModified, {0, 5}, true),
              (LineTransition{State::Modified, {}}));
    EXPECT_EQ(resetLine(State::SpecExclusive, {0, 5}, false),
              (LineTransition{State::Exclusive, {}}));
}

TEST(ResetLine, SupersededVersionsDie)
{
    EXPECT_EQ(resetLine(State::SpecOwned, {0, 5}, true),
              (LineTransition{State::Invalid, {}}));
    EXPECT_EQ(resetLine(State::SpecShared, {0, 5}, false),
              (LineTransition{State::Invalid, {}}));
}

/**
 * Property: for every speculative state and tag combination, commit
 * with c >= high always produces a non-speculative state, and abort
 * never leaves speculative state behind.
 */
class TransitionSweep
    : public ::testing::TestWithParam<std::tuple<int, Vid, Vid>>
{
  protected:
    static State
    stateOf(int i)
    {
        static const State states[] = {
            State::SpecShared, State::SpecExclusive, State::SpecOwned,
            State::SpecModified};
        return states[i];
    }
};

TEST_P(TransitionSweep, CommitAtHighRetires)
{
    auto [si, m, h] = GetParam();
    State st = stateOf(si);
    if (st == State::SpecExclusive && m != 0)
        GTEST_SKIP() << "S-E always has modVID 0";
    if (m > h)
        GTEST_SKIP() << "modVID never exceeds highVID";
    LineTransition t = commitLine(st, {m, h}, h, true);
    EXPECT_FALSE(isSpec(t.state))
        << stateName(st) << "(" << m << "," << h << ")";
}

TEST_P(TransitionSweep, AbortLeavesNoSpeculativeState)
{
    auto [si, m, h] = GetParam();
    State st = stateOf(si);
    if (st == State::SpecExclusive && m != 0)
        GTEST_SKIP();
    if (m > h)
        GTEST_SKIP();
    for (Vid c : {Vid{0}, Vid{1}, Vid{3}, Vid{7}}) {
        LineTransition t = abortLine(st, {m, h}, c, true);
        EXPECT_FALSE(isSpec(t.state));
        EXPECT_EQ(t.tag, (VersionTag{0, 0}));
    }
}

INSTANTIATE_TEST_SUITE_P(
    AllSpecStates, TransitionSweep,
    ::testing::Combine(::testing::Range(0, 4),
                       ::testing::Values<Vid>(0, 1, 3, 7),
                       ::testing::Values<Vid>(0, 1, 3, 7)));

} // namespace
} // namespace hmtx
