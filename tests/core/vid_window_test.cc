/**
 * @file
 * Tests of the m-bit VID window allocator (§4.6).
 */

#include <gtest/gtest.h>

#include "core/vid.hh"

namespace hmtx
{
namespace
{

TEST(VidWindow, AllocatesConsecutivelyFromOne)
{
    VidWindow w(6);
    EXPECT_EQ(w.maxVid(), 63u);
    EXPECT_EQ(w.allocate(), 1u);
    EXPECT_EQ(w.allocate(), 2u);
    EXPECT_EQ(w.allocate(), 3u);
    EXPECT_EQ(w.lastAllocated(), 3u);
}

TEST(VidWindow, ExhaustsAfterMaxVid)
{
    VidWindow w(3);
    for (Vid v = 1; v <= 7; ++v) {
        ASSERT_FALSE(w.exhausted());
        EXPECT_EQ(w.allocate(), v);
    }
    EXPECT_TRUE(w.exhausted());
}

TEST(VidWindow, ResetRestartsAtOne)
{
    VidWindow w(3);
    while (!w.exhausted())
        w.allocate();
    w.reset();
    EXPECT_FALSE(w.exhausted());
    EXPECT_EQ(w.allocate(), 1u);
    EXPECT_EQ(w.resets(), 1u);
}

TEST(VidWindow, WindowSizeScalesWithBits)
{
    EXPECT_EQ(VidWindow(3).maxVid(), 7u);
    EXPECT_EQ(VidWindow(4).maxVid(), 15u);
    EXPECT_EQ(VidWindow(6).maxVid(), 63u);
    EXPECT_EQ(VidWindow(8).maxVid(), 255u);
}

} // namespace
} // namespace hmtx
