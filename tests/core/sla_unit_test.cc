/**
 * @file
 * Tests of the SLA buffer (§5.1).
 */

#include <gtest/gtest.h>

#include "core/sla.hh"

namespace hmtx
{
namespace
{

TEST(SlaUnit, BuffersAndDrains)
{
    SlaUnit u(4);
    u.push({0x100, 2, 42, 8});
    u.push({0x140, 2, 7, 4});
    EXPECT_EQ(u.size(), 2u);

    auto drained = u.drain();
    ASSERT_EQ(drained.size(), 2u);
    EXPECT_EQ(drained[0].addr, 0x100u);
    EXPECT_EQ(drained[0].value, 42u);
    EXPECT_EQ(drained[1].vid, 2u);
    EXPECT_EQ(u.size(), 0u);
    EXPECT_EQ(u.sent(), 2u);
}

TEST(SlaUnit, SquashDropsWithoutSending)
{
    // A branch misprediction squashes the loads; their SLAs must never
    // reach the cache system — that is the whole point of §5.1.
    SlaUnit u(4);
    u.push({0x100, 3, 1, 8});
    u.push({0x180, 3, 2, 8});
    EXPECT_EQ(u.squash(), 2u);
    EXPECT_EQ(u.size(), 0u);
    EXPECT_EQ(u.sent(), 0u);
    EXPECT_EQ(u.squashed(), 2u);
}

TEST(SlaUnit, CapacityIsEnforcedByCaller)
{
    SlaUnit u(2);
    u.push({0x0, 1, 0, 8});
    EXPECT_FALSE(u.full());
    u.push({0x40, 1, 0, 8});
    EXPECT_TRUE(u.full());
}

TEST(SlaUnit, CountsAccumulateAcrossBatches)
{
    SlaUnit u(8);
    u.push({0x0, 1, 0, 8});
    u.drain();
    u.push({0x40, 2, 0, 8});
    u.squash();
    u.push({0x80, 3, 0, 8});
    u.drain();
    EXPECT_EQ(u.enqueued(), 3u);
    EXPECT_EQ(u.sent(), 2u);
    EXPECT_EQ(u.squashed(), 1u);
}

} // namespace
} // namespace hmtx
