/**
 * @file
 * Unit tests for the pure protocol engine (core/protocol.hh): the
 * whole per-version decision surface — reconcile, abort, reset, hit
 * serving, victim classes, store classification with distributed read
 * marks, and read-mark classification — exercised on plain values with
 * no machine attached.
 */

#include <gtest/gtest.h>

#include "core/protocol.hh"

namespace hmtx
{
namespace
{

VersionView
view(State st, Vid mod, Vid high, bool dirty = false,
     bool sharers = false, bool latest = false, bool wrongPath = false)
{
    return {st, {mod, high}, dirty, sharers, latest, wrongPath};
}

// --- reconcileVersion ---------------------------------------------------

TEST(ReconcileVersion, NonSpecAndInvalidAreUntouched)
{
    for (State st : {State::Invalid, State::Shared, State::Exclusive,
                     State::Modified, State::Owned}) {
        VersionView v = view(st, 0, 0, true);
        EXPECT_EQ(reconcileVersion(v, 5), v);
    }
}

TEST(ReconcileVersion, UncommittedSpecIsUntouched)
{
    VersionView v = view(State::SpecModified, 4, 4, true);
    EXPECT_EQ(reconcileVersion(v, 3), v);
}

TEST(ReconcileVersion, CommittedLatestRetiresToNonSpec)
{
    // S-M(2,2) with everything <= LC: retires to M (Figure 6).
    VersionView v = reconcileVersion(
        view(State::SpecModified, 2, 2, true), 2);
    EXPECT_EQ(v.state, State::Modified);
    EXPECT_EQ(v.tag, (VersionTag{0, 0}));
    EXPECT_TRUE(v.dirty);

    v = reconcileVersion(view(State::SpecExclusive, 0, 3), 3);
    EXPECT_EQ(v.state, State::Exclusive);
}

TEST(ReconcileVersion, RetiringOwnerWithSharersLandsShareable)
{
    // A retiring owner that handed out S-S copies must not land in a
    // silently-writable state.
    VersionView v = reconcileVersion(
        view(State::SpecModified, 2, 2, true, /*sharers=*/true), 2);
    EXPECT_EQ(v.state, State::Owned);
    EXPECT_FALSE(v.mayHaveSharers) << "flag clears on retirement";

    v = reconcileVersion(
        view(State::SpecExclusive, 0, 2, false, /*sharers=*/true), 2);
    EXPECT_EQ(v.state, State::Shared);
}

TEST(ReconcileVersion, SupersededVersionDiesOnceReadersCommit)
{
    VersionView v = reconcileVersion(
        view(State::SpecOwned, 1, 3, true), 3);
    EXPECT_EQ(v.state, State::Invalid);
    EXPECT_FALSE(v.dirty) << "stale data must not look writable-back";
}

TEST(ReconcileVersion, LatestCopyOnlyShedsCommittedMarks)
{
    // A latest-version S-S copy never becomes a second owner: only its
    // local marks fold.
    VersionView c = view(State::SpecShared, 2, 4, false, false,
                         /*latest=*/true, /*wrongPath=*/true);
    VersionView v = reconcileVersion(c, 3);
    EXPECT_EQ(v.state, State::SpecShared);
    EXPECT_TRUE(v.latestCopy);
    EXPECT_EQ(v.tag.mod, kNonSpecVid) << "committed modVID folds to 0";
    EXPECT_EQ(v.tag.high, 4u) << "live read mark survives";
    EXPECT_TRUE(v.highFromWrongPath) << "mark above LC stays flagged";

    v = reconcileVersion(c, 4);
    EXPECT_FALSE(v.highFromWrongPath) << "committed mark unflags";
    EXPECT_EQ(v.state, State::SpecShared) << "copy still never retires";
}

TEST(ReconcileVersion, IdempotentForFixedWatermark)
{
    for (Vid lc : {0u, 1u, 2u, 3u, 5u}) {
        VersionView v = view(State::SpecOwned, 1, 3, true, true);
        VersionView once = reconcileVersion(v, lc);
        EXPECT_EQ(reconcileVersion(once, lc), once) << "lc=" << lc;
    }
}

// --- abortVersion -------------------------------------------------------

TEST(AbortVersion, UncommittedModificationIsFlushed)
{
    VersionView v = abortVersion(view(State::SpecModified, 3, 3, true),
                                 1);
    EXPECT_EQ(v.state, State::Invalid);
}

TEST(AbortVersion, CommittedDataSurvivesWithMarksCleared)
{
    // S-M(1,3) at LC=1: the modification committed, only the
    // uncommitted reader marks flush (Figure 7 after Figure 6).
    VersionView v = abortVersion(
        view(State::SpecModified, 1, 3, true, false, false, true), 1);
    EXPECT_EQ(v.state, State::Modified);
    EXPECT_EQ(v.tag, (VersionTag{0, 0}));
    EXPECT_TRUE(v.dirty);
    EXPECT_FALSE(v.highFromWrongPath);
}

TEST(AbortVersion, SurvivorWithSharersLandsShareable)
{
    VersionView v = abortVersion(
        view(State::SpecModified, 1, 3, true, /*sharers=*/true), 1);
    EXPECT_EQ(v.state, State::Owned);
    EXPECT_FALSE(v.mayHaveSharers);
}

TEST(AbortVersion, LatestCopyIsDropped)
{
    VersionView v = abortVersion(
        view(State::SpecShared, 0, 2, false, false, /*latest=*/true),
        3);
    EXPECT_EQ(v.state, State::Invalid);
    EXPECT_FALSE(v.latestCopy);
}

TEST(AbortVersion, NonSpecIsUntouched)
{
    VersionView v = view(State::Modified, 0, 0, true);
    EXPECT_EQ(abortVersion(v, 2), v);
}

// --- resetVersion -------------------------------------------------------

TEST(ResetVersion, LatestVersionsRetireSupersededDie)
{
    VersionView v = resetVersion(view(State::SpecModified, 3, 3, true));
    EXPECT_EQ(v.state, State::Modified);
    EXPECT_EQ(v.tag, (VersionTag{0, 0}));

    v = resetVersion(view(State::SpecOwned, 1, 3, true));
    EXPECT_EQ(v.state, State::Invalid);
}

TEST(ResetVersion, RetiringOwnerWithSharersLandsShareable)
{
    VersionView v = resetVersion(
        view(State::SpecModified, 3, 3, true, /*sharers=*/true));
    EXPECT_EQ(v.state, State::Owned);
    EXPECT_FALSE(v.mayHaveSharers);
}

TEST(ResetVersion, LatestCopyIsDropped)
{
    VersionView v = resetVersion(
        view(State::SpecShared, 0, 2, false, false, /*latest=*/true));
    EXPECT_EQ(v.state, State::Invalid);
    EXPECT_FALSE(v.latestCopy);
}

// --- versionServes ------------------------------------------------------

TEST(VersionServes, MatchesBaseHitRule)
{
    // S-M(2,_) serves a >= 2; S-O(2,5) serves 2 <= a < 5 (§4.1).
    EXPECT_FALSE(versionServes(view(State::SpecModified, 2, 2), 1));
    EXPECT_TRUE(versionServes(view(State::SpecModified, 2, 2), 2));
    EXPECT_TRUE(versionServes(view(State::SpecModified, 2, 2), 7));
    EXPECT_TRUE(versionServes(view(State::SpecOwned, 2, 5), 4));
    EXPECT_FALSE(versionServes(view(State::SpecOwned, 2, 5), 5));
    EXPECT_FALSE(versionServes(view(State::Invalid, 0, 0), 0));
}

TEST(VersionServes, LatestCopyServesAllLaterVids)
{
    // A copy of the latest version ignores its local read mark: it
    // serves any VID >= modVID, exactly like the owner would.
    VersionView c = view(State::SpecShared, 2, 3, false, false,
                         /*latest=*/true);
    EXPECT_FALSE(versionServes(c, 1));
    EXPECT_TRUE(versionServes(c, 3));
    EXPECT_TRUE(versionServes(c, 9)) << "beyond the local mark";
}

TEST(VersionServes, SupersededCopyIsBoundedByHigh)
{
    VersionView c = view(State::SpecShared, 2, 5);
    EXPECT_TRUE(versionServes(c, 4));
    EXPECT_FALSE(versionServes(c, 5));
}

// --- victimClass --------------------------------------------------------

TEST(VictimClass, OrdersEvictionPreference)
{
    EXPECT_EQ(victimClass(view(State::Invalid, 0, 0)), 0);
    EXPECT_EQ(victimClass(view(State::SpecShared, 1, 3)), 1)
        << "superseded copies are nearly dead";
    EXPECT_EQ(victimClass(view(State::SpecShared, 1, 3, false, false,
                               /*latest=*/true)),
              2)
        << "latest copies compete via LRU";
    EXPECT_EQ(victimClass(view(State::Shared, 0, 0)), 2);
    EXPECT_EQ(victimClass(view(State::Modified, 0, 0, true)), 2);
    EXPECT_EQ(victimClass(view(State::SpecOwned, 0, 3, true)), 3)
        << "pristine S-O may overflow to memory (§5.4)";
    EXPECT_EQ(victimClass(view(State::SpecOwned, 1, 3, true)), 4);
    EXPECT_EQ(victimClass(view(State::SpecModified, 2, 2, true)), 4)
        << "losing a responder aborts; evict last";
}

// --- classifyStoreWithMarks ---------------------------------------------

TEST(ClassifyStoreWithMarks, DistributedMarkForcesAbort)
{
    // The owner never logged the reader, but a latest-copy mark was
    // aggregated into the effective tag: the store still violates the
    // flow dependence (§4.3).
    EXPECT_EQ(classifyStoreWithMarks(State::SpecModified, {2, 5}, 4),
              StoreAction::Abort);
    EXPECT_EQ(classifyStoreWithMarks(State::SpecExclusive, {0, 3}, 2),
              StoreAction::Abort);
}

TEST(ClassifyStoreWithMarks, MatchesBaseClassifierOtherwise)
{
    EXPECT_EQ(classifyStoreWithMarks(State::SpecModified, {2, 2}, 2),
              StoreAction::InPlace);
    EXPECT_EQ(classifyStoreWithMarks(State::SpecModified, {2, 2}, 4),
              StoreAction::NewVersion);
    EXPECT_EQ(classifyStoreWithMarks(State::Exclusive, {0, 0}, 3),
              StoreAction::NewVersion);
}

// --- classifyReadMark ---------------------------------------------------

TEST(ClassifyReadMark, ResponderRaisesOrIgnores)
{
    EXPECT_EQ(classifyReadMark(State::SpecModified, {2, 3}, 5),
              ReadMarkAction::RaiseHigh);
    EXPECT_EQ(classifyReadMark(State::SpecModified, {2, 5}, 5),
              ReadMarkAction::None)
        << "equal-or-lower VIDs are already logged";
    EXPECT_EQ(classifyReadMark(State::SpecOwned, {1, 5}, 3),
              ReadMarkAction::None)
        << "high=5 already covers the VID-3 reader";
    EXPECT_EQ(classifyReadMark(State::SpecOwned, {1, 5}, 7),
              ReadMarkAction::RaiseHigh)
        << "S-O responds for its window and logs like an owner";
}

TEST(ClassifyReadMark, CopiesAreNeverMarkedHere)
{
    EXPECT_EQ(classifyReadMark(State::SpecShared, {1, 5}, 3),
              ReadMarkAction::None);
}

TEST(ClassifyReadMark, NonSpecUpgrades)
{
    EXPECT_EQ(classifyReadMark(State::Exclusive, {0, 0}, 2),
              ReadMarkAction::Upgrade);
    EXPECT_EQ(classifyReadMark(State::Modified, {0, 0}, 2),
              ReadMarkAction::Upgrade);
    EXPECT_EQ(classifyReadMark(State::Shared, {0, 0}, 2),
              ReadMarkAction::UpgradeWithBus)
        << "shared-class lines must first gain writable access";
    EXPECT_EQ(classifyReadMark(State::Owned, {0, 0}, 2),
              ReadMarkAction::UpgradeWithBus);
}

TEST(SpecUpgradeState, FollowsDirtiness)
{
    EXPECT_EQ(specUpgradeState(true), State::SpecModified);
    EXPECT_EQ(specUpgradeState(false), State::SpecExclusive);
}

// --- cross-checks against the normative primitives ----------------------

TEST(EngineCrossCheck, ReconcileAgreesWithCommitLineWithoutFlags)
{
    // With no sharer/copy flags set, the engine must reproduce the
    // normative Figure 6 transitions exactly.
    const State specs[] = {State::SpecModified, State::SpecExclusive,
                           State::SpecOwned, State::SpecShared};
    for (State st : specs) {
        for (Vid mod : {0u, 1u, 2u, 3u}) {
            for (Vid high : {0u, 2u, 4u}) {
                for (Vid lc : {0u, 1u, 2u, 3u, 4u}) {
                    VersionView v = view(st, mod, high, true);
                    VersionView got = reconcileVersion(v, lc);
                    LineTransition want =
                        commitLine(st, {mod, high}, lc, true);
                    EXPECT_EQ(got.state, want.state)
                        << stateName(st) << "(" << mod << "," << high
                        << ") lc=" << lc;
                    EXPECT_EQ(got.tag, want.tag);
                }
            }
        }
    }
}

} // namespace
} // namespace hmtx
