/**
 * @file
 * Tests of the SMTX baseline runtime: correctness under both
 * validation modes, the dedicated commit core, and the defining cost
 * asymmetry (maximal validation is far more expensive than minimal,
 * §2.3 / Figure 2).
 */

#include <gtest/gtest.h>

#include "runtime/executors.hh"
#include "smtx/smtx.hh"
#include "workloads/alvinn.hh"
#include "workloads/gzip.hh"
#include "workloads/linked_list.hh"
#include "workloads/stress.hh"

namespace hmtx::smtx
{
namespace
{

sim::MachineConfig
cfg()
{
    sim::MachineConfig c;
    c.l2SizeKB = 512;
    return c;
}

workloads::LinkedListWorkload::Params
wlParams()
{
    workloads::LinkedListWorkload::Params p;
    p.nodes = 100;
    p.workRounds = 30;
    return p;
}

TEST(Smtx, MinimalModeMatchesSequential)
{
    workloads::LinkedListWorkload seq(wlParams()), par(wlParams());
    runtime::ExecResult rs =
        runtime::Runner::runSequential(seq, cfg());
    runtime::ExecResult rp =
        SmtxRunner::run(par, cfg(), RwSetMode::Minimal);
    EXPECT_EQ(rp.checksum, rs.checksum);
}

TEST(Smtx, MaximalModeMatchesSequential)
{
    workloads::LinkedListWorkload seq(wlParams()), par(wlParams());
    runtime::ExecResult rs =
        runtime::Runner::runSequential(seq, cfg());
    runtime::ExecResult rp =
        SmtxRunner::run(par, cfg(), RwSetMode::Maximal);
    EXPECT_EQ(rp.checksum, rs.checksum);
}

TEST(Smtx, MaximalValidationIsMuchSlowerThanMinimal)
{
    // The core claim of §2.2/Figure 2: validation volume decides
    // SMTX performance. The linked list is too small to show it;
    // gzip's hundreds of accesses per iteration are the real case.
    workloads::GzipWorkload::Params p;
    p.blocks = 12;
    p.wordsPerBlock = 400;
    workloads::GzipWorkload a(p), b(p);
    runtime::ExecResult rmin =
        SmtxRunner::run(a, cfg(), RwSetMode::Minimal);
    runtime::ExecResult rmax =
        SmtxRunner::run(b, cfg(), RwSetMode::Maximal);
    EXPECT_GT(rmax.cycles, rmin.cycles * 3 / 2);
    EXPECT_GT(rmax.stats.busTxns, rmin.stats.busTxns);
}

TEST(Smtx, DoallParadigmWorks)
{
    workloads::AlvinnWorkload::Params p;
    p.patterns = 8;
    p.inputs = 8;
    p.hidden = 8;
    p.outputs = 4;
    workloads::AlvinnWorkload seq(p), par(p);
    runtime::ExecResult rs =
        runtime::Runner::runSequential(seq, cfg());
    runtime::ExecResult rp =
        SmtxRunner::run(par, cfg(), RwSetMode::Maximal);
    EXPECT_EQ(rp.checksum, rs.checksum);
}

TEST(Smtx, NoHmtxHardwareIsUsed)
{
    // SMTX runs on commodity hardware: no speculative accesses reach
    // the cache system.
    workloads::LinkedListWorkload par(wlParams());
    runtime::ExecResult rp =
        SmtxRunner::run(par, cfg(), RwSetMode::Maximal);
    EXPECT_EQ(rp.stats.specLoads, 0u);
    EXPECT_EQ(rp.stats.specStores, 0u);
    EXPECT_EQ(rp.stats.commits, 0u);
}

TEST(Smtx, ValidationPassesOnAbortFreeRuns)
{
    // Value-based validation at the commit process (§2.3): on a
    // conflict-free run every logged load matches the committed
    // image in program order.
    workloads::LinkedListWorkload par(wlParams());
    runtime::ExecResult r =
        SmtxRunner::run(par, cfg(), RwSetMode::Maximal);
    EXPECT_EQ(r.smtxMisspeculations, 0u);
    EXPECT_GT(r.stats.writebacks + r.stats.memFetches, 0u);
}

TEST(Smtx, ValidationDetectsRealConflicts)
{
    // The stress workload's injected violation: a stage-2 store to a
    // line that later iterations' stage 1 already read. Under the
    // shared-memory substitution the run completes with wrong
    // intermediate reads — and the commit process's value validation
    // must flag them, as real SMTX would before rolling back.
    workloads::StressWorkload::Params p;
    p.iterations = 40;
    p.scratchWords = 16;
    p.conflictRate = 0.25;
    p.seed = 99;
    workloads::StressWorkload wl(p);
    runtime::ExecResult r =
        SmtxRunner::run(wl, cfg(), RwSetMode::Maximal);
    ASSERT_GT(wl.conflictsInjected(), 0u);
    EXPECT_GT(r.smtxMisspeculations, 0u);
}

} // namespace
} // namespace hmtx::smtx
