/**
 * @file
 * Tests of the simulated-memory SPSC queue.
 */

#include <gtest/gtest.h>

#include <vector>

#include "runtime/machine.hh"
#include "runtime/queue.hh"
#include "runtime/thread_context.hh"

namespace hmtx::runtime
{
namespace
{

sim::MachineConfig
cfg()
{
    sim::MachineConfig c;
    c.l2SizeKB = 256;
    return c;
}

sim::Task<void>
producer(Machine& m, SimQueue& q, unsigned n)
{
    for (unsigned i = 0; i < n; ++i)
        co_await q.produce(m.ctx(0), 100 + i);
}

sim::Task<void>
consumer(Machine& m, SimQueue& q, unsigned n,
         std::vector<std::uint64_t>& out)
{
    for (unsigned i = 0; i < n; ++i)
        out.push_back(co_await q.consume(m.ctx(1)));
}

TEST(SimQueue, FifoAcrossCores)
{
    Machine m(cfg());
    SimQueue q(m, 4);
    std::vector<std::uint64_t> out;
    m.spawn(producer(m, q, 20));
    m.spawn(consumer(m, q, 20, out));
    m.run();
    ASSERT_EQ(out.size(), 20u);
    for (unsigned i = 0; i < 20; ++i)
        EXPECT_EQ(out[i], 100 + i);
}

TEST(SimQueue, BlocksWhenFullAndEmpty)
{
    // Producer pushes 20 through a capacity-2 queue: it must block;
    // the run can only complete if blocking works both ways.
    Machine m(cfg());
    SimQueue q(m, 2);
    std::vector<std::uint64_t> out;
    m.spawn(producer(m, q, 20));
    m.spawn(consumer(m, q, 20, out));
    m.run();
    EXPECT_EQ(out.size(), 20u);
    EXPECT_EQ(q.size(), 0u);
}

sim::Task<void>
abortedConsumer(Machine& m, SimQueue& q, bool& threw)
{
    try {
        co_await q.consume(m.ctx(1));
    } catch (const sim::TxAborted&) {
        threw = true;
    }
}

TEST(SimQueue, AbortWakeUnblocksWithException)
{
    Machine m(cfg());
    SimQueue q(m, 2);
    bool threw = false;
    m.spawn(abortedConsumer(m, q, threw));
    m.eq().runUntil(1000);
    EXPECT_FALSE(threw); // still blocked
    q.abortWake();
    m.run();
    EXPECT_TRUE(threw);
}

TEST(SimQueue, ResetClearsStateForReuse)
{
    Machine m(cfg());
    SimQueue q(m, 4);
    q.abortWake();
    q.reset();
    std::vector<std::uint64_t> out;
    m.spawn(producer(m, q, 3));
    m.spawn(consumer(m, q, 3, out));
    m.run();
    EXPECT_EQ(out.size(), 3u);
}

TEST(SimQueue, GeneratesCoherenceTraffic)
{
    // The queue lives in simulated memory: produce/consume from two
    // cores must ping-pong lines on the bus.
    Machine m(cfg());
    SimQueue q(m, 4);
    std::vector<std::uint64_t> out;
    m.spawn(producer(m, q, 16));
    m.spawn(consumer(m, q, 16, out));
    m.run();
    EXPECT_GT(m.sys().stats().busTxns, 8u);
}

} // namespace
} // namespace hmtx::runtime
