/**
 * @file
 * Tests of the simulated-memory SPSC queue.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <thread>
#include <vector>

#include "runtime/machine.hh"
#include "runtime/queue.hh"
#include "runtime/thread_context.hh"

namespace hmtx::runtime
{
namespace
{

sim::MachineConfig
cfg()
{
    sim::MachineConfig c;
    c.l2SizeKB = 256;
    return c;
}

sim::Task<void>
producer(Machine& m, SimQueue& q, unsigned n)
{
    for (unsigned i = 0; i < n; ++i)
        co_await q.produce(m.ctx(0), 100 + i);
}

sim::Task<void>
consumer(Machine& m, SimQueue& q, unsigned n,
         std::vector<std::uint64_t>& out)
{
    for (unsigned i = 0; i < n; ++i)
        out.push_back(co_await q.consume(m.ctx(1)));
}

TEST(SimQueue, FifoAcrossCores)
{
    Machine m(cfg());
    SimQueue q(m, 4);
    std::vector<std::uint64_t> out;
    m.spawn(producer(m, q, 20));
    m.spawn(consumer(m, q, 20, out));
    m.run();
    ASSERT_EQ(out.size(), 20u);
    for (unsigned i = 0; i < 20; ++i)
        EXPECT_EQ(out[i], 100 + i);
}

TEST(SimQueue, BlocksWhenFullAndEmpty)
{
    // Producer pushes 20 through a capacity-2 queue: it must block;
    // the run can only complete if blocking works both ways.
    Machine m(cfg());
    SimQueue q(m, 2);
    std::vector<std::uint64_t> out;
    m.spawn(producer(m, q, 20));
    m.spawn(consumer(m, q, 20, out));
    m.run();
    EXPECT_EQ(out.size(), 20u);
    EXPECT_EQ(q.size(), 0u);
}

sim::Task<void>
abortedConsumer(Machine& m, SimQueue& q, bool& threw)
{
    try {
        co_await q.consume(m.ctx(1));
    } catch (const sim::TxAborted&) {
        threw = true;
    }
}

TEST(SimQueue, AbortWakeUnblocksWithException)
{
    Machine m(cfg());
    SimQueue q(m, 2);
    bool threw = false;
    m.spawn(abortedConsumer(m, q, threw));
    m.eq().runUntil(1000);
    EXPECT_FALSE(threw); // still blocked
    q.abortWake();
    m.run();
    EXPECT_TRUE(threw);
}

TEST(SimQueue, ResetClearsStateForReuse)
{
    Machine m(cfg());
    SimQueue q(m, 4);
    q.abortWake();
    q.reset();
    std::vector<std::uint64_t> out;
    m.spawn(producer(m, q, 3));
    m.spawn(consumer(m, q, 3, out));
    m.run();
    EXPECT_EQ(out.size(), 3u);
}

TEST(SimQueue, GeneratesCoherenceTraffic)
{
    // The queue lives in simulated memory: produce/consume from two
    // cores must ping-pong lines on the bus.
    Machine m(cfg());
    SimQueue q(m, 4);
    std::vector<std::uint64_t> out;
    m.spawn(producer(m, q, 16));
    m.spawn(consumer(m, q, 16, out));
    m.run();
    EXPECT_GT(m.sys().stats().busTxns, 8u);
}

// --- host-side SPSC ring (sharded-engine command transport) -------------

TEST(SpscRing, CapacityRoundsUpToPowerOfTwo)
{
    SpscRing<int> r(5);
    EXPECT_EQ(r.capacity(), 8u);
    SpscRing<int> r2(1);
    EXPECT_EQ(r2.capacity(), 2u);
}

TEST(SpscRing, PushPopFifoAndFullEmpty)
{
    SpscRing<int> r(4);
    int v = 0;
    EXPECT_FALSE(r.tryPop(v));
    for (int i = 0; i < 4; ++i)
        EXPECT_TRUE(r.tryPush(i));
    EXPECT_FALSE(r.tryPush(99)) << "ring must report full";
    for (int i = 0; i < 4; ++i) {
        ASSERT_TRUE(r.tryPop(v));
        EXPECT_EQ(v, i) << "FIFO order";
    }
    EXPECT_FALSE(r.tryPop(v));
    // Wrap-around: indices are monotonic, slots are reused.
    for (int round = 0; round < 3; ++round) {
        for (int i = 0; i < 3; ++i)
            EXPECT_TRUE(r.tryPush(round * 10 + i));
        for (int i = 0; i < 3; ++i) {
            ASSERT_TRUE(r.tryPop(v));
            EXPECT_EQ(v, round * 10 + i);
        }
    }
}

TEST(SpscRing, HighWaterTracksMaxOccupancy)
{
    SpscRing<int> r(8);
    EXPECT_EQ(r.highWater(), 0u);
    r.tryPush(1);
    r.tryPush(2);
    EXPECT_EQ(r.highWater(), 2u);
    int v;
    r.tryPop(v);
    r.tryPush(3);
    EXPECT_EQ(r.highWater(), 2u) << "high-water never decreases";
    r.tryPush(4);
    r.tryPush(5);
    EXPECT_EQ(r.highWater(), 4u);
}

TEST(SpscRing, CrossThreadTransferDeliversEverythingInOrder)
{
    // One producer, one consumer, enough items to wrap many times.
    SpscRing<std::uint64_t> r(16);
    constexpr std::uint64_t kN = 100000;
    std::thread consumer([&] {
        std::uint64_t expect = 0;
        while (expect < kN) {
            std::uint64_t v;
            if (r.tryPop(v)) {
                ASSERT_EQ(v, expect);
                ++expect;
            } else {
                r.waitNonEmpty();
            }
        }
    });
    for (std::uint64_t i = 0; i < kN; ++i)
        while (!r.tryPush(i))
            std::this_thread::yield();
    consumer.join();
    EXPECT_EQ(r.size(), 0u);
    EXPECT_GT(r.highWater(), 0u);
}

} // namespace
} // namespace hmtx::runtime
