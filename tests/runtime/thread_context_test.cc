/**
 * @file
 * Tests of the per-core thread context: MTX ISA semantics, timing,
 * branch unit and wrong-path load injection.
 */

#include <gtest/gtest.h>

#include "runtime/machine.hh"
#include "runtime/thread_context.hh"

namespace hmtx::runtime
{
namespace
{

sim::MachineConfig
cfg()
{
    sim::MachineConfig c;
    c.l2SizeKB = 256;
    return c;
}

sim::Task<void>
basicTx(Machine& m, std::uint64_t& observed)
{
    ThreadContext& tc = m.ctx(0);
    tc.beginMtx(1);
    co_await tc.store(0x1000, 42);
    observed = co_await tc.load(0x1000);
    co_await tc.commitMtx(1);
}

TEST(ThreadContext, BeginStoreLoadCommit)
{
    Machine m(cfg());
    std::uint64_t observed = 0;
    m.spawn(basicTx(m, observed));
    m.run();
    EXPECT_EQ(observed, 42u);
    EXPECT_EQ(m.sys().lcVid(), 1u);
    EXPECT_EQ(m.sys().memory().read(0x1000, 8), 0u); // not flushed yet
    m.sys().flushDirtyToMemory();
    EXPECT_EQ(m.sys().memory().read(0x1000, 8), 42u);
}

sim::Task<void>
abortedTx(Machine& m, bool& threw)
{
    ThreadContext& tc = m.ctx(0);
    tc.beginMtx(1);
    co_await tc.store(0x2000, 7);
    // Someone else aborts everything.
    m.sys().abortAll();
    try {
        co_await tc.load(0x2000);
    } catch (const sim::TxAborted&) {
        threw = true;
    }
}

TEST(ThreadContext, OpsThrowAfterAbort)
{
    Machine m(cfg());
    bool threw = false;
    m.spawn(abortedTx(m, threw));
    m.run();
    EXPECT_TRUE(threw);
}

sim::Task<void>
abortedCommit(Machine& m, bool& threw)
{
    ThreadContext& tc = m.ctx(0);
    tc.beginMtx(1);
    co_await tc.store(0x2100, 7);
    m.sys().abortAll();
    try {
        co_await tc.commitMtx(1);
    } catch (const sim::TxAborted&) {
        threw = true;
    }
}

TEST(ThreadContext, CommitOfAbortedTxThrowsInsteadOfCommitting)
{
    Machine m(cfg());
    bool threw = false;
    m.spawn(abortedCommit(m, threw));
    m.run();
    EXPECT_TRUE(threw);
    EXPECT_EQ(m.sys().lcVid(), 0u);
}

sim::Task<void>
timedOps(Machine& m, Tick& afterLoad, Tick& afterCompute)
{
    ThreadContext& tc = m.ctx(0);
    co_await tc.load(0x3000); // cold miss: memory latency
    afterLoad = m.now();
    co_await tc.compute(50);
    afterCompute = m.now();
}

TEST(ThreadContext, LatenciesAdvanceSimulatedTime)
{
    Machine m(cfg());
    Tick afterLoad = 0, afterCompute = 0;
    m.spawn(timedOps(m, afterLoad, afterCompute));
    m.run();
    EXPECT_GE(afterLoad, m.config().memLatency);
    EXPECT_EQ(afterCompute, afterLoad + 50);
}

sim::Task<void>
branchStorm(Machine& m, unsigned n)
{
    ThreadContext& tc = m.ctx(0);
    tc.beginMtx(1);
    // Touch some lines so wrong-path loads have a working set.
    co_await tc.load(0x4000);
    co_await tc.load(0x4040);
    sim::Rng rng(99);
    for (unsigned i = 0; i < n; ++i)
        co_await tc.branch(0x4, rng.chance(0.5)); // unpredictable
    co_await tc.commitMtx(1);
}

TEST(ThreadContext, MispredictionsInjectWrongPathLoads)
{
    Machine m(cfg());
    m.spawn(branchStorm(m, 200));
    m.run();
    const ThreadContext& tc = m.ctx(0);
    EXPECT_GT(tc.predictor().mispredicts(), 10u);
    // Wrong-path loads reached the cache system but marked nothing
    // (SLA enabled by default): no aborts.
    EXPECT_GT(m.sys().stats().wrongPathLoads, 10u);
    EXPECT_EQ(m.sys().stats().aborts, 0u);
}

sim::Task<void>
predictableBranches(Machine& m, unsigned n)
{
    ThreadContext& tc = m.ctx(0);
    for (unsigned i = 0; i < n; ++i)
        co_await tc.branch(0x8, true); // always taken: learnable
}

TEST(ThreadContext, PredictorLearnsRegularPatterns)
{
    Machine m(cfg());
    m.spawn(predictableBranches(m, 500));
    m.run();
    EXPECT_LT(m.ctx(0).predictor().mispredictRate(), 0.05);
}

} // namespace
} // namespace hmtx::runtime
