/**
 * @file
 * End-to-end executor tests on the linked-list workload: every
 * execution model must produce the sequential checksum, and the
 * pipeline models must actually overlap work.
 */

#include <gtest/gtest.h>

#include "runtime/executors.hh"
#include "workloads/linked_list.hh"

namespace hmtx::runtime
{
namespace
{

sim::MachineConfig
cfg()
{
    sim::MachineConfig c;
    c.l2SizeKB = 512;
    return c;
}

workloads::LinkedListWorkload::Params
wlParams()
{
    workloads::LinkedListWorkload::Params p;
    p.nodes = 120;
    p.workRounds = 40;
    return p;
}

TEST(Executors, SequentialIsDeterministic)
{
    workloads::LinkedListWorkload a(wlParams()), b(wlParams());
    ExecResult ra = Runner::runSequential(a, cfg());
    ExecResult rb = Runner::runSequential(b, cfg());
    EXPECT_EQ(ra.checksum, rb.checksum);
    EXPECT_EQ(ra.cycles, rb.cycles);
    EXPECT_NE(ra.checksum, 0u);
}

TEST(Executors, DswpMatchesSequentialAndCommitsEverything)
{
    workloads::LinkedListWorkload seq(wlParams()), par(wlParams());
    ExecResult rs = Runner::runSequential(seq, cfg());
    ExecResult rp = Runner::runPipeline(par, cfg(), 1);
    EXPECT_EQ(rp.checksum, rs.checksum);
    EXPECT_EQ(rp.transactions, wlParams().nodes);
    EXPECT_EQ(rp.stats.aborts, 0u);
}

TEST(Executors, PsDswpMatchesSequentialAndBeatsOneWorker)
{
    workloads::LinkedListWorkload seq(wlParams()), one(wlParams()),
        three(wlParams());
    ExecResult rs = Runner::runSequential(seq, cfg());
    ExecResult r1 = Runner::runPipeline(one, cfg(), 1);
    ExecResult r3 = Runner::runPipeline(three, cfg(), 3);
    EXPECT_EQ(r3.checksum, rs.checksum);
    EXPECT_EQ(r3.stats.aborts, 0u);
    // The parallel stage is replicated 3x: clearly faster than DSWP.
    EXPECT_LT(r3.cycles, r1.cycles);
    // And the pipeline must beat sequential execution.
    EXPECT_LT(r3.cycles, rs.cycles);
}

TEST(Executors, DoacrossMatchesSequential)
{
    workloads::LinkedListWorkload seq(wlParams()), da(wlParams());
    ExecResult rs = Runner::runSequential(seq, cfg());
    ExecResult rd = Runner::runDoacross(da, cfg(), 4);
    EXPECT_EQ(rd.checksum, rs.checksum);
    EXPECT_EQ(rd.stats.aborts, 0u);
}

TEST(Executors, VidWindowResetsWhenExhausted)
{
    // 120 iterations through a 3-bit window (7 usable VIDs) forces
    // many VID resets (§4.6); execution must stay correct.
    sim::MachineConfig c = cfg();
    c.vidBits = 3;
    workloads::LinkedListWorkload seq(wlParams()), par(wlParams());
    ExecResult rs = Runner::runSequential(seq, cfg());
    ExecResult rp = Runner::runPipeline(par, c, 3);
    EXPECT_EQ(rp.checksum, rs.checksum);
    EXPECT_GE(rp.vidResets, 120 / 7 - 1);
    EXPECT_GT(rp.vidStallCycles, 0u);
}

TEST(Executors, WiderVidsStallLess)
{
    sim::MachineConfig narrow = cfg();
    narrow.vidBits = 3;
    sim::MachineConfig wide = cfg();
    wide.vidBits = 8;
    workloads::LinkedListWorkload a(wlParams()), b(wlParams());
    ExecResult rn = Runner::runPipeline(a, narrow, 3);
    ExecResult rw = Runner::runPipeline(b, wide, 3);
    EXPECT_GT(rn.vidResets, rw.vidResets);
    EXPECT_GE(rn.vidStallCycles, rw.vidStallCycles);
}

TEST(Executors, TransactionsRecordReadWriteSets)
{
    workloads::LinkedListWorkload par(wlParams());
    ExecResult r = Runner::runPipeline(par, cfg(), 3);
    // Every committed transaction logged reads and writes (Figure 9
    // accounting).
    EXPECT_EQ(r.stats.committedTxs, wlParams().nodes);
    EXPECT_GT(r.stats.readSetLines, 0u);
    EXPECT_GT(r.stats.writeSetLines, 0u);
}

} // namespace
} // namespace hmtx::runtime
