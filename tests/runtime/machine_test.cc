/**
 * @file
 * Tests of Machine, SimAllocator and Signal.
 */

#include <gtest/gtest.h>

#include "runtime/machine.hh"
#include "runtime/signal.hh"
#include "runtime/thread_context.hh"

namespace hmtx::runtime
{
namespace
{

sim::MachineConfig
cfg()
{
    sim::MachineConfig c;
    c.l2SizeKB = 256;
    return c;
}

TEST(SimAllocator, AlignmentAndDisjointness)
{
    SimAllocator a(0x1000);
    Addr x = a.alloc(10, 8);
    Addr y = a.alloc(1, 64);
    Addr z = a.allocLines(2);
    EXPECT_EQ(x % 8, 0u);
    EXPECT_EQ(y % 64, 0u);
    EXPECT_EQ(z % 64, 0u);
    EXPECT_GE(y, x + 10);
    EXPECT_GE(z, y + 1);
    EXPECT_EQ(a.allocWords(4) % 8, 0u);
}

TEST(Machine, ContextsAreBoundToCores)
{
    Machine m(cfg());
    for (CoreId c = 0; c < m.config().numCores; ++c)
        EXPECT_EQ(m.ctx(c).core(), c);
}

sim::Task<void>
blockForever(Machine& m, Signal& s)
{
    (void)m;
    co_await s.wait();
}

TEST(Machine, ReportsDeadlockedTasks)
{
    Machine m(cfg());
    Signal s(m.eq());
    m.spawn(blockForever(m, s));
    EXPECT_THROW(m.run(), std::logic_error);
}

sim::Task<void>
waiter(Signal& s, int& wakes)
{
    co_await s.wait();
    ++wakes;
    co_await s.wait();
    ++wakes;
}

sim::Task<void>
notifier(Machine& m, Signal& s)
{
    co_await m.ctx(0).compute(10);
    s.notifyAll();
    co_await m.ctx(0).compute(10);
    s.notifyAll();
}

TEST(Signal, BroadcastWakesAllWaitersEachTime)
{
    Machine m(cfg());
    Signal s(m.eq());
    int w1 = 0, w2 = 0;
    m.spawn(waiter(s, w1));
    m.spawn(waiter(s, w2));
    m.spawn(notifier(m, s));
    m.run();
    EXPECT_EQ(w1, 2);
    EXPECT_EQ(w2, 2);
}

sim::Task<void>
oneTick(Machine& m, Tick& end)
{
    co_await m.ctx(0).compute(25);
    end = m.now();
}

TEST(Machine, RunDrivesSimulatedTime)
{
    Machine m(cfg());
    Tick end = 0;
    m.spawn(oneTick(m, end));
    m.run();
    EXPECT_EQ(end, 25u);
    EXPECT_GE(m.now(), 25u);
}

} // namespace
} // namespace hmtx::runtime
