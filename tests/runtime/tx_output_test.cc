/**
 * @file
 * Tests of transactional output buffering (§4.7), standalone and
 * integrated into a speculative pipeline with a misspeculating
 * iteration.
 */

#include <gtest/gtest.h>

#include "runtime/executors.hh"
#include "runtime/tx_output.hh"
#include "workloads/linked_list.hh"

namespace hmtx::runtime
{
namespace
{

TEST(TxOutput, BuffersUntilCommit)
{
    TxOutput out;
    out.emit(1, "a1");
    out.emit(2, "b2");
    out.emit(1, "a2");
    EXPECT_TRUE(out.released().empty());
    EXPECT_EQ(out.pendingCount(), 3u);

    out.commit(1);
    EXPECT_EQ(out.released(),
              (std::vector<std::string>{"a1", "a2"}));
    out.commit(2);
    EXPECT_EQ(out.released(),
              (std::vector<std::string>{"a1", "a2", "b2"}));
}

TEST(TxOutput, NonSpeculativeOutputIsImmediate)
{
    TxOutput out;
    out.emit(0, "boot");
    EXPECT_EQ(out.released().size(), 1u);
    EXPECT_EQ(out.immediate(), 1u);
}

TEST(TxOutput, AbortDiscardsSpeculativeOutput)
{
    TxOutput out;
    out.emit(1, "committed");
    out.commit(1);
    out.emit(2, "doomed-a");
    out.emit(3, "doomed-b");
    out.abortAll(/*lcVid=*/1);
    EXPECT_EQ(out.released().size(), 1u);
    EXPECT_EQ(out.discarded(), 2u);
    EXPECT_EQ(out.pendingCount(), 0u);
    // The replayed transaction re-emits and commits normally.
    out.emit(2, "replayed");
    out.commit(2);
    EXPECT_EQ(out.released().back(), "replayed");
}

/**
 * Linked-list workload whose stage 2 "prints" each node's result,
 * with one transient misspeculation mid-run: the released stream must
 * equal the sequential program's output exactly once per iteration,
 * in order, despite the abort and replay.
 */
class PrintingWorkload : public workloads::LinkedListWorkload
{
  public:
    PrintingWorkload(Params p, Machine** m, bool injectAbort)
        : LinkedListWorkload(p), m_(m), injectAbort_(injectAbort)
    {}

    TxOutput* txOutput() override { return &out_; }
    const TxOutput& out() const { return out_; }

    void
    setup(Machine& mach) override
    {
        LinkedListWorkload::setup(mach);
        *m_ = &mach;
        fired_ = false;
    }

    sim::Task<void>
    stage2(MemIf& mem, std::uint64_t iter) override
    {
        co_await LinkedListWorkload::stage2(mem, iter);
        // Emit under the iteration's transaction VID.
        out_.emit(static_cast<Vid>(
                      iter % (*m_)->config().maxVid()) +
                      1,
                  "iter " + std::to_string(iter));
        if (injectAbort_ && iter == 12 && !fired_) {
            fired_ = true;
            (*m_)->sys().abortAll();
            co_await mem.compute(1);
        }
    }

  private:
    TxOutput out_;
    Machine** m_;
    bool injectAbort_;
    bool fired_ = false;
};

TEST(TxOutput, PipelineOutputMatchesProgramOrderDespiteAbort)
{
    workloads::LinkedListWorkload::Params p;
    p.nodes = 30;
    p.workRounds = 10;

    Machine* mPtr = nullptr;
    PrintingWorkload wl(p, &mPtr, true);

    sim::MachineConfig cfg;
    runtime::ExecResult r = Runner::runPipeline(wl, cfg, 2);
    EXPECT_GE(r.stats.aborts, 1u);
    EXPECT_EQ(r.transactions, 30u);

    ASSERT_EQ(wl.out().released().size(), 30u);
    for (unsigned i = 0; i < 30; ++i)
        EXPECT_EQ(wl.out().released()[i],
                  "iter " + std::to_string(i));
    EXPECT_GT(wl.out().discarded(), 0u);
}

TEST(TxOutput, AbortFreePipelineReleasesEverythingInOrder)
{
    workloads::LinkedListWorkload::Params p;
    p.nodes = 25;
    p.workRounds = 10;

    Machine* mPtr = nullptr;
    PrintingWorkload wl(p, &mPtr, false);
    sim::MachineConfig cfg;
    Runner::runPipeline(wl, cfg, 3);

    ASSERT_EQ(wl.out().released().size(), 25u);
    for (unsigned i = 0; i < 25; ++i)
        EXPECT_EQ(wl.out().released()[i],
                  "iter " + std::to_string(i));
    EXPECT_EQ(wl.out().discarded(), 0u);
    EXPECT_EQ(wl.out().pendingCount(), 0u);
}

} // namespace
} // namespace hmtx::runtime
