/**
 * @file
 * Abort-recovery tests: a transient dependence violation (or an
 * explicit software abortMTX) mid-run must roll back, replay from the
 * last committed iteration, and still produce the sequential result.
 */

#include <gtest/gtest.h>

#include "runtime/executors.hh"
#include "runtime/thread_context.hh"
#include "workloads/linked_list.hh"

namespace hmtx::runtime
{
namespace
{

sim::MachineConfig
cfg()
{
    sim::MachineConfig c;
    c.l2SizeKB = 512;
    return c;
}

/**
 * Linked-list workload that injects one transient conflict: the first
 * time iteration `conflictIter` executes stage 2, it stores to a
 * global line that a later iteration's stage 1 has (by then) already
 * read — a real flow-dependence violation that the HMTX system must
 * detect. On replay the store is skipped (the "misspeculation" was
 * transient, as with control-flow speculation).
 */
class ConflictingWorkload : public workloads::LinkedListWorkload
{
  public:
    ConflictingWorkload(Params p, std::uint64_t conflictIter)
        : LinkedListWorkload(p), conflictIter_(conflictIter)
    {}

    void
    setup(Machine& m) override
    {
        LinkedListWorkload::setup(m);
        globalLine_ = m.heap().allocLines(1);
        fired_ = false;
    }

    sim::Task<void>
    stage1(MemIf& mem, std::uint64_t iter) override
    {
        // Every stage 1 reads the global, so a delayed write from an
        // earlier iteration's stage 2 violates a flow dependence.
        co_await mem.load(globalLine_);
        co_await LinkedListWorkload::stage1(mem, iter);
    }

    sim::Task<void>
    stage2(MemIf& mem, std::uint64_t iter) override
    {
        if (iter == conflictIter_ && !fired_) {
            fired_ = true;
            // Dawdle first so later iterations have read the global
            // line by the time the violating store issues.
            co_await mem.compute(4000);
            co_await mem.store(globalLine_, 0xDEAD);
        }
        co_await LinkedListWorkload::stage2(mem, iter);
    }

  private:
    std::uint64_t conflictIter_;
    Addr globalLine_ = 0;
    bool fired_ = false;
};

TEST(Recovery, TransientConflictIsDetectedAndReplayed)
{
    workloads::LinkedListWorkload::Params p;
    p.nodes = 60;
    p.workRounds = 24;

    workloads::LinkedListWorkload seq(p);
    ExecResult rs = Runner::runSequential(seq, cfg());

    ConflictingWorkload par(p, 20);
    ExecResult rp = Runner::runPipeline(par, cfg(), 3);

    EXPECT_GE(rp.stats.aborts, 1u);
    EXPECT_EQ(rp.transactions, p.nodes);
    EXPECT_EQ(rp.checksum, rs.checksum);
}

TEST(Recovery, ConflictInDoallIsDetectedAndReplayed)
{
    workloads::LinkedListWorkload::Params p;
    p.nodes = 60;
    p.workRounds = 24;

    workloads::LinkedListWorkload seq(p);
    ExecResult rs = Runner::runSequential(seq, cfg());

    ConflictingWorkload par(p, 15);
    ExecResult rp = Runner::runDoall(par, cfg(), 4);

    EXPECT_GE(rp.stats.aborts, 1u);
    EXPECT_EQ(rp.checksum, rs.checksum);
}

/**
 * Workload whose stage 2 calls abortMTX once, as the Figure 3(c)
 * early-exit control-flow check would.
 */
class SoftwareAbortWorkload : public workloads::LinkedListWorkload
{
  public:
    SoftwareAbortWorkload(Params p, std::uint64_t abortIter,
                          Machine** mOut)
        : LinkedListWorkload(p), abortIter_(abortIter), mOut_(mOut)
    {}

    void
    setup(Machine& m) override
    {
        LinkedListWorkload::setup(m);
        *mOut_ = &m;
        fired_ = false;
    }

    sim::Task<void>
    stage2(MemIf& mem, std::uint64_t iter) override
    {
        co_await LinkedListWorkload::stage2(mem, iter);
        if (iter == abortIter_ && !fired_) {
            fired_ = true;
            // Software-detected misspeculation (abortMTX, §3.1).
            (*mOut_)->sys().abortAll();
            // The next operation of any speculative thread unwinds.
            co_await mem.compute(1);
        }
    }

  private:
    std::uint64_t abortIter_;
    Machine** mOut_;
    bool fired_ = false;
};

TEST(Recovery, ExplicitAbortMtxReplays)
{
    workloads::LinkedListWorkload::Params p;
    p.nodes = 40;
    p.workRounds = 16;

    workloads::LinkedListWorkload seq(p);
    ExecResult rs = Runner::runSequential(seq, cfg());

    Machine* mPtr = nullptr;
    SoftwareAbortWorkload par(p, 10, &mPtr);
    ExecResult rp = Runner::runPipeline(par, cfg(), 2);

    EXPECT_GE(rp.stats.aborts, 1u);
    EXPECT_EQ(rp.checksum, rs.checksum);
}

} // namespace
} // namespace hmtx::runtime
