/**
 * @file
 * Replay-format hardening (DESIGN.md §10). Witness files get
 * hand-edited during bug triage; a typo must fail parse() loudly, not
 * silently replay a different schedule. These tests pin the explicit
 * error paths — duplicate headers, out-of-range encodings, truncated
 * or over-long op lines — and the round-trip property that makes the
 * corpus stable: serialize(parse(x)) == x for everything serialize()
 * can emit, including the `program` branching extension (§14).
 */

#include <gtest/gtest.h>

#include "check/explorer.hh"
#include "check/schedule.hh"

namespace
{

using namespace hmtx;
using namespace hmtx::check;

std::string
parseErr(const std::string& text)
{
    Schedule s;
    std::string err;
    EXPECT_FALSE(parse(text, s, err)) << "parsed: " << text;
    EXPECT_FALSE(err.empty());
    return err;
}

Schedule
parseOk(const std::string& text)
{
    Schedule s;
    std::string err;
    EXPECT_TRUE(parse(text, s, err)) << err;
    return s;
}

/** A minimal valid file, assembled line by line so tests can splice
 *  mutations anywhere. */
std::string
minimalText(const std::string& extraHeader = "",
            const std::string& opLines = "L 0 1 8 0x40000 0x0\n")
{
    return "hmtx-fuzz-schedule v1\n"
           "cores 2\n"
           "l1kb 1\n"
           "l1assoc 2\n"
           "l2kb 8\n"
           "l2assoc 8\n"
           "vidbits 6\n"
           "unbounded 0\n"
           "sla 1\n"
           "shards 1 1 1 1\n"
           "shardthreads 1 1 1 1\n"
           "enginethreads 1 1\n"
           "btx 2 0\n"
           "limitedk 4\n"
           "fastpath 0\n" +
        extraHeader + opLines + "end\n";
}

TEST(ScheduleParse, RoundTripFuzzSchedules)
{
    for (std::uint64_t seed = 1; seed <= 30; ++seed) {
        Schedule s = generate(seed, 100);
        std::string text = serialize(s);
        Schedule back = parseOk(text);
        EXPECT_EQ(serialize(back), text) << "seed " << seed;
        EXPECT_EQ(back.omittedKnobs, 0u);
        EXPECT_FALSE(back.isProgram);
    }
}

TEST(ScheduleParse, RoundTripPrograms)
{
    for (std::uint64_t seed = 1; seed <= 30; ++seed) {
        Schedule s = generateProgram(seed, 2 + seed % 2, 6);
        std::string text = serialize(s);
        Schedule back = parseOk(text);
        EXPECT_EQ(serialize(back), text) << "seed " << seed;
        EXPECT_TRUE(back.isProgram);
    }
}

TEST(ScheduleParse, DuplicateHeaderLine)
{
    EXPECT_NE(parseErr(minimalText("cores 2\n"))
                  .find("duplicate 'cores'"),
              std::string::npos);
    EXPECT_NE(parseErr(minimalText("fastpath 1\n"))
                  .find("duplicate 'fastpath'"),
              std::string::npos);
}

TEST(ScheduleParse, ConfigAfterFirstOp)
{
    std::string err = parseErr(
        minimalText("", "L 0 1 8 0x40000 0x0\nvidbits 4\n"));
    EXPECT_NE(err.find("after the first op"), std::string::npos);
}

TEST(ScheduleParse, OutOfRangeEncodings)
{
    auto swap = [&](const std::string& from, const std::string& to) {
        std::string t = minimalText();
        t.replace(t.find(from), from.size(), to);
        return parseErr(t);
    };
    EXPECT_NE(swap("cores 2", "cores 0").find("cores out of range"),
              std::string::npos);
    EXPECT_NE(swap("cores 2", "cores 65").find("cores out of range"),
              std::string::npos);
    EXPECT_NE(swap("vidbits 6", "vidbits 1").find("vidbits"),
              std::string::npos);
    EXPECT_NE(swap("unbounded 0", "unbounded 2").find("unbounded"),
              std::string::npos);
    EXPECT_NE(swap("shards 1 1 1 1", "shards 0 1 1 1")
                  .find("shard count out of range"),
              std::string::npos);
    EXPECT_NE(swap("shards 1 1 1 1", "shards 1 1 1")
                  .find("want 4 cell counts"),
              std::string::npos);
    EXPECT_NE(swap("enginethreads 1 1", "enginethreads 1")
                  .find("want 2 cell"),
              std::string::npos);
    EXPECT_NE(swap("btx 2 0", "btx 0 0").find("retries"),
              std::string::npos);
    EXPECT_NE(swap("btx 2 0", "btx 3 2").find("threshold"),
              std::string::npos);
    EXPECT_NE(swap("limitedk 4", "limitedk 0").find("limitedk"),
              std::string::npos);
    EXPECT_NE(swap("fastpath 0", "fastpath 1024").find("fastpath"),
              std::string::npos);
}

TEST(ScheduleParse, TruncatedOpLine)
{
    std::string err =
        parseErr(minimalText("", "L 0 1 8 0x40000\n"));
    EXPECT_NE(err.find("truncated or malformed op line"),
              std::string::npos);
    EXPECT_NE(parseErr(minimalText("", "S 1\n"))
                  .find("truncated or malformed"),
              std::string::npos);
}

TEST(ScheduleParse, TrailingFields)
{
    EXPECT_NE(parseErr(minimalText("", "L 0 1 8 0x40000 0x0 0x9\n"))
                  .find("trailing fields"),
              std::string::npos);
    std::string t = minimalText();
    t.replace(t.find("cores 2"), 7, "cores 2 2");
    EXPECT_NE(parseErr(t).find("trailing fields"), std::string::npos);
}

TEST(ScheduleParse, OpRangeChecks)
{
    EXPECT_NE(parseErr(minimalText("", "L 300 1 8 0x40000 0x0\n"))
                  .find("core out of range"),
              std::string::npos);
    EXPECT_NE(parseErr(minimalText("", "L 0 0 8 0x40000 0x0\n"))
                  .find("vidOff"),
              std::string::npos);
    EXPECT_NE(parseErr(minimalText("", "L 0 1 8 0x40004 0x0\n"))
                  .find("straddles"),
              std::string::npos);
}

TEST(ScheduleParse, UnknownTokenAndMissingEnd)
{
    EXPECT_NE(parseErr(minimalText("wibble 3\n"))
                  .find("unknown token"),
              std::string::npos);
    std::string t = minimalText();
    t.resize(t.size() - 4); // drop "end\n"
    EXPECT_NE(parseErr(t).find("missing 'end'"), std::string::npos);
}

/** Pre-PR-7/PR-8 witnesses omit the newer knob lines; parse() must
 *  record exactly which defaults it filled in (the --replay driver
 *  prints them). */
TEST(ScheduleParse, OmittedKnobProvenance)
{
    std::string t = minimalText();
    auto drop = [](std::string text, const std::string& line) {
        std::size_t p = text.find(line);
        text.erase(p, text.find('\n', p) - p + 1);
        return text;
    };
    EXPECT_EQ(parseOk(t).omittedKnobs, 0u);
    Schedule s = parseOk(drop(t, "enginethreads"));
    EXPECT_EQ(s.omittedKnobs, unsigned(kOmitEngineThreads));
    EXPECT_EQ(s.cfg.engineThreads[0], 1u);
    std::string old = drop(drop(drop(drop(t, "enginethreads"), "btx"),
                                "limitedk"),
                           "fastpath");
    Schedule v1 = parseOk(old);
    EXPECT_EQ(v1.omittedKnobs,
              kOmitEngineThreads | kOmitBtx | kOmitLimitedK |
                  kOmitFastPath);
    EXPECT_EQ(v1.cfg.btxRetries, 2u);
    EXPECT_EQ(v1.cfg.limitedK, 4u);
    EXPECT_EQ(v1.cfg.fastPathMask, 0u);
}

TEST(ScheduleParse, ProgramFlag)
{
    Schedule s = parseOk(minimalText("program 1\n"));
    EXPECT_TRUE(s.isProgram);
    EXPECT_FALSE(parseOk(minimalText("program 0\n")).isProgram);
    EXPECT_NE(parseErr(minimalText("program 2\n")).find("program"),
              std::string::npos);
}

} // namespace
