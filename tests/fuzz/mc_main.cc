/**
 * @file
 * Standalone bounded-exhaustive model-checking driver (DESIGN.md §14).
 *
 *   hmtx_mc [--programs N] [--cores N] [--ops N] [--seed0 S]
 *           [--cells GROUPS] [--budget N] [--delivery N]
 *           [--no-prune] [--no-shrink] [--corpus-out DIR]
 *
 * Where the fuzzer (hmtx_fuzz) samples long schedules, this driver
 * *enumerates*: each seed yields a small multi-core program
 * (generateProgram), and explore() replays every interleaving of its
 * per-core sequences — sleep-set-pruned unless --no-prune — through
 * the differential runner. On the first divergence the diverging
 * interleaving is ddmin-shrunk and written as an ordinary flattened
 * replay file, so `hmtx_fuzz --replay` and corpus_replay_test rerun
 * it unchanged. --delivery N additionally branches on the first N
 * directory delivery decisions of every interleaving.
 */

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <stdexcept>
#include <string>

#include "check/differ.hh"
#include "check/explorer.hh"
#include "check/schedule.hh"

using namespace hmtx;
using namespace hmtx::check;

namespace
{

void
usage()
{
    std::cerr <<
        "usage: hmtx_mc [--programs N] [--cores N] [--ops N]\n"
        "               [--seed0 S] [--cells GROUPS] [--budget N]\n"
        "               [--delivery N] [--no-prune] [--no-shrink]\n"
        "               [--corpus-out DIR]\n"
        "GROUPS: comma list of hmtx, btx, ltd, or all (default)\n";
}

bool
parseCells(const std::string& arg, unsigned& mask)
{
    mask = 0;
    std::size_t pos = 0;
    while (pos <= arg.size()) {
        std::size_t comma = arg.find(',', pos);
        std::string tok = arg.substr(
            pos, comma == std::string::npos ? std::string::npos
                                            : comma - pos);
        if (tok == "all")
            mask |= kGroupAll;
        else if (tok == "hmtx")
            mask |= kGroupHmtx;
        else if (tok == "btx")
            mask |= kGroupBtx;
        else if (tok == "ltd")
            mask |= kGroupLtd;
        else
            return false;
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return mask != 0;
}

int
reportDivergence(const ExploreResult& r, bool shrink,
                 const std::string& corpusDir, std::uint64_t seed,
                 unsigned groupMask)
{
    std::cerr << "DIVERGENCE (program seed " << seed
              << ", interleaving " << r.stats.explored << ", op "
              << r.div.opIndex << "): " << r.div.what << "\n";

    Schedule minimal = r.witness;
    if (shrink) {
        std::cerr << "shrinking " << minimal.ops.size() << " ops...\n";
        minimal = shrinkSchedule(minimal, 4000, groupMask);
        std::cerr << "minimal schedule: " << minimal.ops.size()
                  << " ops\n";
        Divergence dmin = runSchedule(minimal, nullptr, groupMask);
        if (dmin.found)
            std::cerr << "minimal divergence: " << dmin.what << "\n";
    }

    std::string out = serialize(minimal);
    std::string path =
        (corpusDir.empty() ? std::string(".") : corpusDir) +
        "/mc-seed" + std::to_string(seed) + ".sched";
    std::ofstream f(path);
    if (f.good()) {
        f << out;
        std::cerr << "wrote " << path << "\n";
    } else {
        std::cerr << "could not write " << path << "\n";
    }
    std::cerr << "--- replay file ---\n" << out;
    return 1;
}

} // namespace

int
main(int argc, char** argv)
{
    std::uint64_t programs = 50;
    unsigned cores = 2;
    unsigned ops = 6;
    std::uint64_t seed0 = 1;
    unsigned groupMask = kGroupAll;
    std::uint64_t budget = 1u << 16;
    unsigned delivery = 0;
    bool prune = true;
    bool shrink = true;
    std::string corpusDir;

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&](const char* flag) -> const char* {
            if (i + 1 >= argc) {
                std::cerr << flag << " needs an argument\n";
                usage();
                std::exit(2);
            }
            return argv[++i];
        };
        if (a == "--programs")
            programs = std::strtoull(next("--programs"), nullptr, 0);
        else if (a == "--cores")
            cores = static_cast<unsigned>(
                std::strtoul(next("--cores"), nullptr, 0));
        else if (a == "--ops")
            ops = static_cast<unsigned>(
                std::strtoul(next("--ops"), nullptr, 0));
        else if (a == "--seed0")
            seed0 = std::strtoull(next("--seed0"), nullptr, 0);
        else if (a == "--budget")
            budget = std::strtoull(next("--budget"), nullptr, 0);
        else if (a == "--delivery")
            delivery = static_cast<unsigned>(
                std::strtoul(next("--delivery"), nullptr, 0));
        else if (a == "--no-prune")
            prune = false;
        else if (a == "--no-shrink")
            shrink = false;
        else if (a == "--corpus-out")
            corpusDir = next("--corpus-out");
        else if (a == "--cells") {
            if (!parseCells(next("--cells"), groupMask)) {
                std::cerr << "bad --cells value\n";
                usage();
                return 2;
            }
        } else {
            std::cerr << "unknown argument: " << a << "\n";
            usage();
            return 2;
        }
    }
    if (cores < 2 || ops == 0) {
        std::cerr << "need --cores >= 2 and --ops >= 1\n";
        return 2;
    }

    ExploreConfig ec;
    ec.groupMask = groupMask;
    ec.prune = prune;
    ec.maxInterleavings = budget;
    ec.deliveryPoints = delivery;

    ExploreStats total;
    std::uint64_t exhausted = 0;
    for (std::uint64_t seed = seed0; seed < seed0 + programs; ++seed) {
        Schedule prog = generateProgram(seed, cores, ops);
        ExploreResult r;
        try {
            r = explore(prog, ec);
        } catch (const std::invalid_argument& e) {
            std::cerr << "seed " << seed << ": " << e.what() << "\n";
            return 2;
        }
        total.explored += r.stats.explored;
        total.pruned += r.stats.pruned;
        total.deliveryRuns += r.stats.deliveryRuns;
        total.deliveryPointsSeen += r.stats.deliveryPointsSeen;
        total.envAborts += r.stats.envAborts;
        if (r.stats.budgetExhausted)
            ++exhausted;
        if (r.div.found)
            return reportDivergence(r, shrink, corpusDir, seed,
                                    groupMask);
        if ((seed - seed0 + 1) % 100 == 0)
            std::cerr << (seed - seed0 + 1) << "/" << programs
                      << " programs clean\n";
    }

    std::cout << "mc campaign clean: " << programs << " programs ("
              << cores << " cores x " << ops << " ops)\n"
              << "  interleavings explored=" << total.explored
              << " pruned=" << total.pruned << "\n"
              << "  deliveryRuns=" << total.deliveryRuns
              << " deliveryPointsSeen=" << total.deliveryPointsSeen
              << "\n"
              << "  envAborts=" << total.envAborts
              << " budgetExhausted=" << exhausted << "\n";
    if (total.envAborts != 0)
        std::cout << "  WARNING: environmental capacity aborts fired; "
                     "the pruned pass is not exhaustive (§14)\n";
    return 0;
}
