/**
 * @file
 * Standalone differential fuzzing driver (DESIGN.md §10).
 *
 *   hmtx_fuzz [--schedules N] [--ops N] [--seed0 S] [--threads N]
 *             [--corpus-out DIR] [--no-shrink]
 *   hmtx_fuzz --replay FILE [--shrink]
 *
 * Batch mode generates N schedules from consecutive seeds and runs
 * each against the golden model across the 6-cell config matrix. On
 * the first divergence it ddmin-shrinks the schedule, writes the
 * minimal replay file (to --corpus-out if given, else the cwd), prints
 * it, and exits nonzero. On success it prints a coverage summary so CI
 * logs show what the campaign actually exercised.
 *
 * --threads N runs the batch on N worker threads. Schedules are
 * independent (generate(seed, ops) is a pure function of the seed, so
 * every thread's RNG stream derives from the base seed), workers claim
 * seeds from a shared counter, and a divergence is reported for the
 * *smallest* diverging seed — every seed below it is still checked —
 * then re-run single-threaded for a deterministic report and shrink.
 * Results are therefore identical to a single-threaded campaign.
 *
 * Replay mode parses one schedule file and runs it; with --shrink it
 * first minimizes a diverging schedule before reporting.
 */

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "check/differ.hh"
#include "check/schedule.hh"

using namespace hmtx;
using namespace hmtx::check;

namespace
{

void
usage()
{
    std::cerr <<
        "usage: hmtx_fuzz [--schedules N] [--ops N] [--seed0 S]\n"
        "                 [--threads N] [--corpus-out DIR]\n"
        "                 [--no-shrink] [--cells GROUPS]\n"
        "       hmtx_fuzz --replay FILE [--shrink] [--cells GROUPS]\n"
        "GROUPS: comma list of hmtx, btx, ltd, or all (default)\n";
}

bool
parseCells(const std::string& arg, unsigned& mask)
{
    mask = 0;
    std::size_t pos = 0;
    while (pos <= arg.size()) {
        std::size_t comma = arg.find(',', pos);
        std::string tok = arg.substr(
            pos, comma == std::string::npos ? std::string::npos
                                            : comma - pos);
        if (tok == "all")
            mask |= kGroupAll;
        else if (tok == "hmtx")
            mask |= kGroupHmtx;
        else if (tok == "btx")
            mask |= kGroupBtx;
        else if (tok == "ltd")
            mask |= kGroupLtd;
        else
            return false;
        if (comma == std::string::npos)
            break;
        pos = comma + 1;
    }
    return mask != 0;
}

int
reportDivergence(const Schedule &sched, const Divergence &d, bool shrink,
                 const std::string &corpusDir, std::uint64_t seed,
                 unsigned groupMask)
{
    std::cerr << "DIVERGENCE (seed " << seed << ", op "
              << d.opIndex << "): " << d.what << "\n";

    Schedule minimal = sched;
    if (shrink) {
        std::cerr << "shrinking " << sched.ops.size() << " ops...\n";
        minimal = shrinkSchedule(sched, 4000, groupMask);
        std::cerr << "minimal schedule: " << minimal.ops.size()
                  << " ops\n";
        Divergence dmin = runSchedule(minimal, nullptr, groupMask);
        if (dmin.found)
            std::cerr << "minimal divergence: " << dmin.what << "\n";
    }

    std::string out = serialize(minimal);
    std::string path = (corpusDir.empty() ? std::string(".") : corpusDir) +
        "/div-seed" + std::to_string(seed) + ".sched";
    std::ofstream f(path);
    if (f.good()) {
        f << out;
        std::cerr << "wrote " << path << "\n";
    } else {
        std::cerr << "could not write " << path << "\n";
    }
    std::cerr << "--- replay file ---\n" << out;
    return 1;
}

/**
 * Multi-threaded campaign over seeds [seed0, seed0 + schedules).
 * Workers claim seeds in increasing order from a shared counter and
 * record the minimum diverging seed; seeds above that minimum are
 * skipped, seeds below it always complete, so the returned seed (if
 * any) is exactly the one a single-threaded campaign would hit first.
 * Per-thread Coverage is summed into @p cov on a clean campaign.
 */
std::uint64_t
runBatchThreaded(std::uint64_t seed0, std::uint64_t schedules,
                 unsigned ops, unsigned threads, unsigned groupMask,
                 Coverage &cov)
{
    constexpr std::uint64_t kNone = ~std::uint64_t{0};
    std::atomic<std::uint64_t> nextSeed{seed0};
    std::atomic<std::uint64_t> firstBad{kNone};
    std::atomic<std::uint64_t> clean{0};
    const std::uint64_t end = seed0 + schedules;

    std::vector<Coverage> covs(threads);
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (unsigned t = 0; t < threads; ++t) {
        pool.emplace_back([&, t] {
            for (;;) {
                const std::uint64_t seed = nextSeed.fetch_add(1);
                if (seed >= end || seed >= firstBad.load())
                    return;
                Schedule s = generate(seed, ops);
                if (runSchedule(s, &covs[t], groupMask).found) {
                    std::uint64_t cur = firstBad.load();
                    while (seed < cur &&
                           !firstBad.compare_exchange_weak(cur, seed)) {
                    }
                    continue;
                }
                const std::uint64_t n = clean.fetch_add(1) + 1;
                if (n % 500 == 0)
                    std::cerr << n << "/" << schedules
                              << " schedules clean\n";
            }
        });
    }
    for (std::thread &th : pool)
        th.join();

    if (firstBad.load() != kNone)
        return firstBad.load();
    for (const Coverage &c : covs) {
        cov.schedules += c.schedules;
        cov.ops += c.ops;
        cov.commits += c.commits;
        cov.aborts += c.aborts;
        cov.capacityAborts += c.capacityAborts;
        cov.vidResets += c.vidResets;
        cov.spills += c.spills;
        cov.refills += c.refills;
        cov.soRefetches += c.soRefetches;
        cov.slaConfirms += c.slaConfirms;
        cov.slaMismatchAborts += c.slaMismatchAborts;
        cov.fallbackEntries += c.fallbackEntries;
        cov.fallbackAccesses += c.fallbackAccesses;
        cov.fallbackCommits += c.fallbackCommits;
        cov.fallbackWrapRemaps += c.fallbackWrapRemaps;
        cov.limitedSetAborts += c.limitedSetAborts;
        cov.fastAttempts += c.fastAttempts;
        cov.fastHits += c.fastHits;
        cov.fastGenRejections += c.fastGenRejections;
    }
    return kNone;
}

} // namespace

int
main(int argc, char **argv)
{
    std::uint64_t schedules = 200;
    unsigned ops = 160;
    std::uint64_t seed0 = 1;
    unsigned threads = 1;
    std::string corpusDir;
    std::string replayFile;
    bool shrink = true;
    bool replayShrink = false;
    unsigned groupMask = kGroupAll;

    for (int i = 1; i < argc; ++i) {
        std::string a = argv[i];
        auto next = [&](const char *flag) -> const char * {
            if (i + 1 >= argc) {
                std::cerr << flag << " needs an argument\n";
                usage();
                std::exit(2);
            }
            return argv[++i];
        };
        if (a == "--schedules")
            schedules = std::strtoull(next("--schedules"), nullptr, 0);
        else if (a == "--ops")
            ops = static_cast<unsigned>(
                std::strtoul(next("--ops"), nullptr, 0));
        else if (a == "--seed0")
            seed0 = std::strtoull(next("--seed0"), nullptr, 0);
        else if (a == "--threads")
            threads = std::max(
                1u, static_cast<unsigned>(
                        std::strtoul(next("--threads"), nullptr, 0)));
        else if (a == "--corpus-out")
            corpusDir = next("--corpus-out");
        else if (a == "--no-shrink")
            shrink = false;
        else if (a == "--replay")
            replayFile = next("--replay");
        else if (a == "--shrink")
            replayShrink = true;
        else if (a == "--cells") {
            if (!parseCells(next("--cells"), groupMask)) {
                std::cerr << "bad --cells value\n";
                usage();
                return 2;
            }
        } else {
            std::cerr << "unknown argument: " << a << "\n";
            usage();
            return 2;
        }
    }

    if (!replayFile.empty()) {
        std::ifstream in(replayFile);
        if (!in.good()) {
            std::cerr << "cannot open " << replayFile << "\n";
            return 2;
        }
        std::stringstream buf;
        buf << in.rdbuf();
        Schedule s;
        std::string err;
        if (!parse(buf.str(), s, err)) {
            std::cerr << replayFile << ": parse error: " << err << "\n";
            return 2;
        }
        // Pre-PR-7/PR-8 witnesses omit the newer knob lines; say what
        // defaults this replay actually assumed so the run is
        // unambiguous.
        if (s.omittedKnobs != 0) {
            std::cerr << replayFile
                      << ": older replay format, assuming defaults:";
            if (s.omittedKnobs & kOmitEngineThreads)
                std::cerr << " enginethreads="
                          << s.cfg.engineThreads[0] << ","
                          << s.cfg.engineThreads[1];
            if (s.omittedKnobs & kOmitBtx)
                std::cerr << " btxRetries=" << s.cfg.btxRetries
                          << " btxThreshold=" << s.cfg.btxThreshold;
            if (s.omittedKnobs & kOmitLimitedK)
                std::cerr << " limitedK=" << s.cfg.limitedK;
            if (s.omittedKnobs & kOmitFastPath)
                std::cerr << " fastPathMask=" << s.cfg.fastPathMask;
            std::cerr << "\n";
        }
        Coverage rcov;
        Divergence d = runSchedule(s, &rcov, groupMask);
        if (!d.found) {
            std::cout << replayFile << ": no divergence ("
                      << s.ops.size() << " ops)\n"
                      << "  fallbackEntries=" << rcov.fallbackEntries
                      << " fallbackAccesses=" << rcov.fallbackAccesses
                      << " fallbackCommits=" << rcov.fallbackCommits
                      << " wrapRemaps=" << rcov.fallbackWrapRemaps
                      << " limitedSetAborts=" << rcov.limitedSetAborts
                      << "\n"
                      << "  fastAttempts=" << rcov.fastAttempts
                      << " fastHits=" << rcov.fastHits
                      << " fastGenRejections=" << rcov.fastGenRejections
                      << "\n";
            return 0;
        }
        return reportDivergence(s, d, replayShrink, corpusDir, 0,
                                groupMask);
    }

    Coverage cov;
    if (threads > 1) {
        const std::uint64_t bad = runBatchThreaded(
            seed0, schedules, ops, threads, groupMask, cov);
        if (bad != ~std::uint64_t{0}) {
            // Deterministic single-threaded re-run of the minimum
            // diverging seed for the report and the shrink.
            Schedule s = generate(bad, ops);
            Divergence d = runSchedule(s, nullptr, groupMask);
            return reportDivergence(s, d, shrink, corpusDir, bad,
                                    groupMask);
        }
    } else {
        for (std::uint64_t seed = seed0; seed < seed0 + schedules;
             ++seed) {
            Schedule s = generate(seed, ops);
            Divergence d = runSchedule(s, &cov, groupMask);
            if (d.found)
                return reportDivergence(s, d, shrink, corpusDir, seed,
                                        groupMask);
            if ((seed - seed0 + 1) % 500 == 0)
                std::cerr << (seed - seed0 + 1) << "/" << schedules
                          << " schedules clean\n";
        }
    }

    std::cout << "fuzz campaign clean: " << cov.schedules
              << " schedules, " << cov.ops << " ops\n"
              << "  commits=" << cov.commits
              << " aborts=" << cov.aborts
              << " capacityAborts=" << cov.capacityAborts
              << " vidResets=" << cov.vidResets << "\n"
              << "  spills=" << cov.spills
              << " refills=" << cov.refills
              << " soRefetches=" << cov.soRefetches << "\n"
              << "  slaConfirms=" << cov.slaConfirms
              << " slaMismatchAborts=" << cov.slaMismatchAborts << "\n"
              << "  fallbackEntries=" << cov.fallbackEntries
              << " fallbackAccesses=" << cov.fallbackAccesses
              << " fallbackCommits=" << cov.fallbackCommits
              << " wrapRemaps=" << cov.fallbackWrapRemaps
              << " limitedSetAborts=" << cov.limitedSetAborts << "\n"
              << "  fastAttempts=" << cov.fastAttempts
              << " fastHits=" << cov.fastHits
              << " fastGenRejections=" << cov.fastGenRejections << "\n";
    return 0;
}
