/**
 * @file
 * Fixed-seed differential fuzz batch (DESIGN.md §10). Every schedule
 * runs against the golden model and the 4-cell config matrix; any
 * divergence fails the test and prints the full replay file so the
 * failure can be reproduced and shrunk with:
 *
 *   build-release/tests/fuzz/hmtx_fuzz --replay <file>
 *
 * The batch is sized to stay well under 30 s even under ASan+UBSan;
 * the long randomized campaigns live in ci/check.sh.
 */

#include <gtest/gtest.h>

#include "check/differ.hh"
#include "check/schedule.hh"

namespace
{

using namespace hmtx;
using namespace hmtx::check;

void
runSeedBlock(std::uint64_t first, std::uint64_t count, unsigned ops)
{
    Coverage cov;
    for (std::uint64_t seed = first; seed < first + count; ++seed) {
        Schedule s = generate(seed, ops);
        Divergence d = runSchedule(s, &cov);
        ASSERT_FALSE(d.found)
            << "seed " << seed << " diverged: " << d.what
            << "\n--- replay file ---\n"
            << serialize(s);
    }
    // The batch must actually exercise the machinery it claims to
    // cover; these floors catch a generator regression that silently
    // stops producing commits/aborts/spills.
    EXPECT_GT(cov.commits, count);
    EXPECT_GT(cov.aborts, count / 4);
    EXPECT_GT(cov.slaConfirms, count / 4);
}

TEST(FuzzSmoke, SeedsBlockA) { runSeedBlock(1, 12, 150); }
TEST(FuzzSmoke, SeedsBlockB) { runSeedBlock(101, 12, 150); }
TEST(FuzzSmoke, SeedsBlockC) { runSeedBlock(201, 12, 150); }
TEST(FuzzSmoke, SeedsBlockD) { runSeedBlock(301, 12, 150); }

TEST(FuzzSmoke, ScheduleRoundTrips)
{
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        Schedule s = generate(seed, 120);
        std::string text = serialize(s);
        Schedule back;
        std::string err;
        ASSERT_TRUE(parse(text, back, err)) << err;
        ASSERT_EQ(back.ops.size(), s.ops.size());
        EXPECT_EQ(serialize(back), text);
    }
}

} // namespace
