/**
 * @file
 * Bounded-exhaustive model checking (DESIGN.md §14) as a ctest.
 *
 * The headline test enumerates *every* interleaving of a block of
 * generated 2-core programs of up to 6 ops and replays each through
 * the differential runner — on the six full-HMTX matrix cells
 * ({bus, dir} x {lazy, eager} x engines), once with the zero-event
 * fast path off and once with it on, and on the bounded-mode
 * {bus, dir} x {btx, ltd} cells. Any divergence fails the test with
 * the flattened interleaving as a replay file. Explored-vs-pruned
 * counts are printed so CI logs show how much of the space the sleep
 * sets cut.
 *
 * StateSpaceCount pins the enumerator itself against closed forms:
 * the merges of two 3-op sequences number C(6,3) = 20, and sleep-set
 * pruning over a fully independent program must visit exactly one of
 * them, while a fully dependent program must visit all of them.
 */

#include <gtest/gtest.h>

#include <iostream>
#include <stdexcept>

#include "check/differ.hh"
#include "check/explorer.hh"
#include "check/schedule.hh"

namespace
{

using namespace hmtx;
using namespace hmtx::check;

/** Explores seeds [first, first+count) exhaustively; any divergence
 *  or budget overrun fails. Returns summed stats for the log. */
ExploreStats
exploreBlock(std::uint64_t first, std::uint64_t count, unsigned ops,
             unsigned groupMask, unsigned fastPathMask)
{
    ExploreStats total;
    ExploreConfig ec;
    ec.groupMask = groupMask;
    ec.maxInterleavings = 1u << 16;
    for (std::uint64_t seed = first; seed < first + count; ++seed) {
        Schedule prog = generateProgram(seed, 2, ops);
        prog.cfg.fastPathMask = fastPathMask;
        ExploreResult r = explore(prog, ec);
        EXPECT_FALSE(r.div.found)
            << "program seed " << seed << " diverged: " << r.div.what
            << "\n--- replay file (diverging interleaving) ---\n"
            << serialize(r.witness);
        EXPECT_FALSE(r.stats.budgetExhausted) << "seed " << seed;
        total.explored += r.stats.explored;
        total.pruned += r.stats.pruned;
        total.envAborts += r.stats.envAborts;
    }
    // The pruning soundness argument assumes no environmental
    // capacity aborts; generateProgram picks non-colliding lines
    // precisely so this stays zero (§14).
    EXPECT_EQ(total.envAborts, 0u);
    return total;
}

TEST(McBounded, HmtxCellsFastPathOff)
{
    ExploreStats s = exploreBlock(1, 60, 6, kGroupHmtx, 0);
    EXPECT_GT(s.explored, 60u);
    std::cout << "[mc] hmtx fp-off: explored=" << s.explored
              << " pruned=" << s.pruned << "\n";
}

TEST(McBounded, HmtxCellsFastPathOn)
{
    ExploreStats s = exploreBlock(1, 60, 6, kGroupHmtx, 0x3f);
    EXPECT_GT(s.explored, 60u);
    std::cout << "[mc] hmtx fp-on: explored=" << s.explored
              << " pruned=" << s.pruned << "\n";
}

TEST(McBounded, BtxLtdCells)
{
    ExploreStats s =
        exploreBlock(1, 40, 5, kGroupBtx | kGroupLtd, 0x3c0);
    EXPECT_GT(s.explored, 40u);
    std::cout << "[mc] btx+ltd: explored=" << s.explored
              << " pruned=" << s.pruned << "\n";
}

TEST(McBounded, ShorterPrograms)
{
    ExploreStats s = exploreBlock(100, 40, 4, kGroupAll, 0);
    EXPECT_GT(s.explored, 40u);
    std::cout << "[mc] all cells 4-op: explored=" << s.explored
              << " pruned=" << s.pruned << "\n";
}

/** A pruned pass must reach the same verdict as the full one. */
TEST(McBounded, PrunedMatchesUnprunedVerdict)
{
    for (std::uint64_t seed = 20; seed < 24; ++seed) {
        Schedule prog = generateProgram(seed, 2, 5);
        ExploreConfig full;
        full.prune = false;
        ExploreConfig pruned;
        ExploreResult rf = explore(prog, full);
        ExploreResult rp = explore(prog, pruned);
        EXPECT_EQ(rf.div.found, rp.div.found) << "seed " << seed;
        EXPECT_LE(rp.stats.explored, rf.stats.explored);
    }
}

/** Delivery-order branching on the directory cells stays clean and
 *  actually reruns interleavings when decision points exist. */
TEST(McBounded, DeliveryOrderExploration)
{
    ExploreConfig ec;
    ec.deliveryPoints = 3;
    ExploreStats total;
    for (std::uint64_t seed = 1; seed < 7; ++seed) {
        Schedule prog = generateProgram(seed, 2, 5);
        ExploreResult r = explore(prog, ec);
        EXPECT_FALSE(r.div.found)
            << "seed " << seed << ": " << r.div.what
            << "\n--- replay file ---\n" << serialize(r.witness);
        total.explored += r.stats.explored;
        total.deliveryRuns += r.stats.deliveryRuns;
        total.deliveryPointsSeen += r.stats.deliveryPointsSeen;
    }
    std::cout << "[mc] delivery: explored=" << total.explored
              << " deliveryRuns=" << total.deliveryRuns
              << " pointsSeen=" << total.deliveryPointsSeen << "\n";
}

Op
makeOp(OpKind kind, unsigned core, Addr addr)
{
    Op op;
    op.kind = kind;
    op.core = static_cast<std::uint8_t>(core);
    op.vidOff = 1;
    op.size = 8;
    op.addr = addr;
    op.value = 0x1234;
    return op;
}

Schedule
tinyProgram()
{
    Schedule s;
    s.isProgram = true;
    s.cfg.numCores = 2;
    return s;
}

/** Closed form: merges of 3+3 ops = C(6,3) = 20 interleavings; a
 *  fully independent program has one Mazurkiewicz trace, so the
 *  pruned pass must replay exactly one of them. */
TEST(StateSpaceCount, IndependentLoads)
{
    Schedule s = tinyProgram();
    for (int i = 0; i < 3; ++i) {
        s.ops.push_back(makeOp(OpKind::Load, 0, 0x40000));
        s.ops.push_back(makeOp(OpKind::Load, 1, 0x40040));
    }
    ExploreConfig full;
    full.groupMask = kGroupHmtx;
    full.prune = false;
    ExploreResult rf = explore(s, full);
    EXPECT_FALSE(rf.div.found) << rf.div.what;
    EXPECT_EQ(rf.stats.explored, 20u);
    EXPECT_EQ(rf.stats.pruned, 0u);

    ExploreConfig pruned;
    pruned.groupMask = kGroupHmtx;
    ExploreResult rp = explore(s, pruned);
    EXPECT_FALSE(rp.div.found) << rp.div.what;
    EXPECT_EQ(rp.stats.explored, 1u);
    EXPECT_GT(rp.stats.pruned, 0u);
    std::cout << "[mc] independent 3+3: full=20 pruned-explored="
              << rp.stats.explored << " cut=" << rp.stats.pruned
              << "\n";
}

/** Same-line speculative stores never commute: the pruned pass must
 *  still visit all C(4,2) = 6 merges of 2+2 ops. */
TEST(StateSpaceCount, DependentStores)
{
    Schedule s = tinyProgram();
    for (int i = 0; i < 2; ++i) {
        s.ops.push_back(makeOp(OpKind::Store, 0, 0x40000));
        s.ops.push_back(makeOp(OpKind::Store, 1, 0x40000));
    }
    for (bool prune : {false, true}) {
        ExploreConfig ec;
        ec.groupMask = kGroupHmtx;
        ec.prune = prune;
        ExploreResult r = explore(s, ec);
        EXPECT_FALSE(r.div.found) << r.div.what;
        EXPECT_EQ(r.stats.explored, 6u) << "prune=" << prune;
        EXPECT_EQ(r.stats.pruned, 0u) << "prune=" << prune;
    }
}

/** Pins the independence relation the sleep sets rely on. */
TEST(StateSpaceCount, IndependenceRelation)
{
    const Op l0 = makeOp(OpKind::Load, 0, 0x40000);
    const Op l1 = makeOp(OpKind::Load, 1, 0x40040);
    const Op l1same = makeOp(OpKind::Load, 1, 0x40008);
    const Op s1 = makeOp(OpKind::Store, 1, 0x40040);
    const Op ns1 = makeOp(OpKind::NonSpecStore, 1, 0x40040);
    const Op wp1 = makeOp(OpKind::WrongPathLoad, 1, 0x40040);
    const Op c1 = makeOp(OpKind::Commit, 1, 0);

    // Different-line loads commute on the full-HMTX cells...
    EXPECT_TRUE(opsIndependent(l0, l1, false, kGroupHmtx));
    EXPECT_TRUE(opsIndependent(l0, wp1, false, kGroupHmtx));
    // ...but not same-line, same-core, around stores, or bulk ops.
    EXPECT_FALSE(opsIndependent(l0, l1same, false, kGroupHmtx));
    EXPECT_FALSE(opsIndependent(l0, makeOp(OpKind::Load, 0, 0x40040),
                                false, kGroupHmtx));
    EXPECT_FALSE(opsIndependent(l0, s1, false, kGroupHmtx));
    EXPECT_FALSE(opsIndependent(l0, ns1, false, kGroupHmtx));
    EXPECT_FALSE(opsIndependent(l0, c1, false, kGroupHmtx));
    // SLA ops couple correct-path loads through the pending FIFO.
    EXPECT_FALSE(opsIndependent(l0, l1, true, kGroupHmtx));
    EXPECT_TRUE(opsIndependent(l0, wp1, true, kGroupHmtx));
    // Bounded modes: ltd makes any correct-path access globally
    // visible (capacity aborts), btx couples spec-load pairs through
    // the fallback state machine.
    EXPECT_FALSE(opsIndependent(l0, l1, false, kGroupLtd));
    EXPECT_FALSE(opsIndependent(l0, l1, false, kGroupBtx));
    EXPECT_TRUE(opsIndependent(
        makeOp(OpKind::NonSpecLoad, 0, 0x40000), wp1, false,
        kGroupLtd));
}

TEST(StateSpaceCount, BadCoreThrows)
{
    Schedule s = tinyProgram();
    s.ops.push_back(makeOp(OpKind::Load, 5, 0x40000));
    EXPECT_THROW(explore(s), std::invalid_argument);
}

} // namespace
