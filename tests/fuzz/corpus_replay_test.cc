/**
 * @file
 * Replays every shrunken divergence schedule checked into
 * tests/fuzz/corpus/ (DESIGN.md §10). Each corpus file is a schedule
 * that once exposed a real protocol or golden-model bug; replaying it
 * here turns every past fuzzer catch into a permanent regression test.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "check/differ.hh"
#include "check/schedule.hh"

namespace
{

using namespace hmtx;
using namespace hmtx::check;
namespace fs = std::filesystem;

std::vector<fs::path>
corpusFiles()
{
    std::vector<fs::path> out;
    fs::path dir(HMTX_FUZZ_CORPUS_DIR);
    if (!fs::exists(dir))
        return out;
    for (const auto &entry : fs::directory_iterator(dir)) {
        if (entry.is_regular_file() && entry.path().extension() == ".sched")
            out.push_back(entry.path());
    }
    std::sort(out.begin(), out.end());
    return out;
}

TEST(CorpusReplay, AllSchedulesConverge)
{
    auto files = corpusFiles();
    // The corpus starts empty on a fresh checkout and grows as the
    // fuzzer finds (and we fix) bugs; an empty directory is not a
    // failure.
    for (const auto &path : files) {
        std::ifstream in(path);
        ASSERT_TRUE(in.good()) << "cannot open " << path;
        std::stringstream buf;
        buf << in.rdbuf();

        Schedule s;
        std::string err;
        ASSERT_TRUE(parse(buf.str(), s, err))
            << path << ": parse error: " << err;

        Divergence d = runSchedule(s);
        EXPECT_FALSE(d.found)
            << path << " diverged again (regression): " << d.what;
    }
    RecordProperty("corpus_size", static_cast<int>(files.size()));
}

} // namespace
