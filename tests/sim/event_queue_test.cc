/**
 * @file
 * Tests of the discrete-event kernel.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.hh"

namespace hmtx::sim
{
namespace
{

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.curTick(), 30u);
}

TEST(EventQueue, SameTickRunsInScheduleOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 5; ++i)
        eq.schedule(7, [&order, i] { order.push_back(i); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, CallbacksMayScheduleMoreEvents)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(1, [&] {
        ++fired;
        eq.scheduleIn(5, [&] { ++fired; });
    });
    eq.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(eq.curTick(), 6u);
}

TEST(EventQueue, RunUntilStopsAtLimit)
{
    EventQueue eq;
    int fired = 0;
    eq.schedule(5, [&] { ++fired; });
    eq.schedule(15, [&] { ++fired; });
    eq.runUntil(10);
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(eq.pending(), 1u);
}

TEST(EventQueue, StepReturnsFalseWhenEmpty)
{
    EventQueue eq;
    EXPECT_FALSE(eq.step());
    EXPECT_TRUE(eq.empty());
}

} // namespace
} // namespace hmtx::sim
