/**
 * @file
 * CacheSystem-level tests of the commit-mode axis: MachineConfig
 * validation of the TxPolicy knobs, best-effort fallback engagement
 * and serialization, fallback behaviour across global aborts and VID
 * window resets, and the limited-set K bound on speculative sets.
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

#include "sim/cache_system.hh"
#include "sim/event_queue.hh"

namespace hmtx::sim
{
namespace
{

MachineConfig
btxConfig(unsigned retries = 1, unsigned threshold = 0)
{
    MachineConfig cfg;
    cfg.txMode = TxMode::BestEffort;
    cfg.btxMaxRetries = retries;
    cfg.btxAbortThreshold = threshold;
    return cfg;
}

MachineConfig
ltdConfig(unsigned k)
{
    MachineConfig cfg;
    cfg.txMode = TxMode::LimitedSet;
    cfg.limitedSetK = k;
    return cfg;
}

std::string
thrownMessage(const MachineConfig& cfg)
{
    try {
        cfg.validate();
    } catch (const std::invalid_argument& e) {
        return e.what();
    }
    return {};
}

// --- validation (satellite: misconfiguration rejection) --------------------

TEST(TxModeValidation, RejectsZeroLimitedSetK)
{
    MachineConfig cfg = ltdConfig(0);
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
    EXPECT_NE(thrownMessage(cfg).find("limitedSetK"),
              std::string::npos);
    // The constructor enforces it too: a miswired cell cannot even be
    // built.
    EventQueue eq;
    EXPECT_THROW(CacheSystem(eq, cfg), std::invalid_argument);
}

TEST(TxModeValidation, RejectsZeroRetryBudget)
{
    MachineConfig cfg = btxConfig(0);
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
    EXPECT_NE(thrownMessage(cfg).find("btxMaxRetries"),
              std::string::npos);
}

TEST(TxModeValidation, RejectsThresholdBelowRetries)
{
    MachineConfig cfg = btxConfig(4, 2);
    EXPECT_THROW(cfg.validate(), std::invalid_argument);
    EXPECT_NE(thrownMessage(cfg).find("btxAbortThreshold"),
              std::string::npos);
    cfg.btxAbortThreshold = 4; // == retries is the legal floor
    EXPECT_NO_THROW(cfg.validate());
}

TEST(TxModeValidation, RejectsUnboundedSetsInBoundedModes)
{
    for (MachineConfig cfg : {btxConfig(), ltdConfig(4)}) {
        cfg.unboundedSpecSets = true;
        EXPECT_THROW(cfg.validate(), std::invalid_argument);
        EXPECT_NE(thrownMessage(cfg).find("unboundedSpecSets"),
                  std::string::npos);
    }
}

TEST(TxModeValidation, RejectsParallelEngineInBoundedModes)
{
    for (MachineConfig cfg : {btxConfig(), ltdConfig(4)}) {
        cfg.engine = SimEngine::Parallel;
        EXPECT_THROW(cfg.validate(), std::invalid_argument);
        EXPECT_NE(thrownMessage(cfg).find("engine=Parallel"),
                  std::string::npos);
    }
}

TEST(TxModeValidation, AcceptsTheHmtxModesUnchanged)
{
    for (TxMode m : {TxMode::LazyHmtx, TxMode::EagerHmtx}) {
        MachineConfig cfg;
        cfg.txMode = m;
        cfg.unboundedSpecSets = true;
        cfg.engine = SimEngine::Parallel;
        EXPECT_NO_THROW(cfg.validate()) << txModeName(m);
    }
}

// --- best-effort fallback --------------------------------------------------

/** Forces a dependence abort: @p writer stores under a line already
 *  read by a higher VID, which the protocol must flush globally. */
void
forceAbort(CacheSystem& sys, Addr a, Vid readerVid, Vid writerVid)
{
    AccessResult rd = sys.load(0, a, 8, readerVid);
    ASSERT_FALSE(rd.aborted);
    AccessResult wr = sys.store(1, a, 1, 8, writerVid);
    ASSERT_TRUE(wr.aborted);
}

TEST(BestEffort, FallbackEngagesAndSerializes)
{
    EventQueue eq;
    CacheSystem sys(eq, btxConfig(1));
    sys.memory().write(0x1000, 10, 8);
    sys.memory().write(0x2000, 20, 8);

    forceAbort(sys, 0x1000, 2, 1);
    EXPECT_TRUE(sys.txPolicy().fallbackArmed());
    EXPECT_FALSE(sys.txPolicy().fallbackHeld());

    // The retry of VID 1 (= LC+1) takes the lock on its first access.
    AccessResult r = sys.load(1, 0x1000, 8, 1);
    EXPECT_FALSE(r.aborted);
    EXPECT_EQ(r.value, 10u);
    EXPECT_TRUE(sys.txPolicy().fallbackHeld());
    EXPECT_EQ(sys.txPolicy().fallbackVid(), 1u);
    EXPECT_EQ(sys.txPolicy().stats().fallbackEntries, 1u);

    // Serialized stores are non-speculative: the value reaches
    // committed memory without any commit.
    ASSERT_FALSE(sys.store(1, 0x2000, 77, 8, 1).aborted);
    sys.flushDirtyToMemory();
    EXPECT_EQ(sys.memory().read(0x2000, 8), 77u);
    EXPECT_GT(sys.txPolicy().stats().fallbackCycles, 0u);

    sys.commit(1);
    EXPECT_FALSE(sys.txPolicy().fallbackHeld());
    EXPECT_EQ(sys.txPolicy().stats().fallbackCommits, 1u);
    sys.checkInvariants();
}

TEST(BestEffort, RetryBoundaryIsExact)
{
    EventQueue eq;
    CacheSystem sys(eq, btxConfig(2));
    sys.memory().write(0x1000, 10, 8);

    forceAbort(sys, 0x1000, 2, 1);
    EXPECT_FALSE(sys.txPolicy().fallbackArmed()); // N-1 aborts: retry
    ASSERT_FALSE(sys.load(1, 0x3000, 8, 1).aborted);
    EXPECT_FALSE(sys.txPolicy().fallbackHeld()); // still speculative

    // That retry dies the same way; the N-th abort arms the lock.
    AccessResult wr = sys.store(1, 0x3040, 1, 8, 3);
    ASSERT_FALSE(wr.aborted);
    ASSERT_FALSE(sys.load(0, 0x3040, 8, 4).aborted);
    ASSERT_TRUE(sys.store(1, 0x3040, 2, 8, 3).aborted);
    EXPECT_TRUE(sys.txPolicy().fallbackArmed());
    EXPECT_EQ(sys.txPolicy().stats().retryAborts, 2u);

    ASSERT_FALSE(sys.load(1, 0x1000, 8, 1).aborted);
    EXPECT_TRUE(sys.txPolicy().fallbackHeld());
    sys.checkInvariants();
}

/** Satellite edge case: a capacity-style global flush while the lock
 *  is held. The holder owns no speculative state, so the lock (and
 *  its serialized semantics) survives the flush. */
TEST(BestEffort, GlobalAbortWhileLockHeldKeepsTheLock)
{
    EventQueue eq;
    CacheSystem sys(eq, btxConfig(1));
    sys.memory().write(0x1000, 10, 8);
    sys.memory().write(0x2000, 20, 8);

    forceAbort(sys, 0x1000, 2, 1);
    ASSERT_FALSE(sys.load(1, 0x1000, 8, 1).aborted);
    ASSERT_TRUE(sys.txPolicy().fallbackHeld());

    // A younger VID speculates alongside the holder...
    ASSERT_FALSE(sys.load(2, 0x2000, 8, 2).aborted);
    // ...and a global flush (as a capacity overflow would raise)
    // clears it without releasing the lock.
    sys.abortAll();
    EXPECT_TRUE(sys.txPolicy().fallbackHeld());
    EXPECT_TRUE(sys.txPolicy().serializes(1));

    // The holder's serialized store can collide with fresh speculative
    // state; the self-triggered flush retries internally and the store
    // still lands in committed memory.
    ASSERT_FALSE(sys.load(2, 0x2000, 8, 2).aborted);
    const std::uint64_t abortsBefore = sys.stats().aborts;
    AccessResult st = sys.store(1, 0x2000, 55, 8, 1);
    EXPECT_FALSE(st.aborted);
    EXPECT_GT(sys.stats().aborts, abortsBefore);
    EXPECT_TRUE(sys.txPolicy().fallbackHeld());
    sys.flushDirtyToMemory();
    EXPECT_EQ(sys.memory().read(0x2000, 8), 55u);

    sys.commit(1);
    EXPECT_FALSE(sys.txPolicy().fallbackHeld());
    sys.checkInvariants();
}

/** Satellite edge case: VID-window wraparound while the fallback lock
 *  is held. The holder has no speculative state, so the reset is
 *  legal; the lock follows the holder to its post-reset VID (1). */
TEST(BestEffort, VidResetWhileHeldRemapsTheHolder)
{
    EventQueue eq;
    CacheSystem sys(eq, btxConfig(1));
    sys.memory().write(0x1000, 10, 8);

    sys.commit(1); // LC = 1 so the engaging VID is 2, not 1
    forceAbort(sys, 0x1000, 3, 2);
    ASSERT_FALSE(sys.load(1, 0x1000, 8, 2).aborted);
    ASSERT_TRUE(sys.txPolicy().fallbackHeld());
    ASSERT_EQ(sys.txPolicy().fallbackVid(), 2u);

    sys.vidReset();
    EXPECT_TRUE(sys.txPolicy().fallbackHeld());
    EXPECT_EQ(sys.txPolicy().fallbackVid(), 1u);
    EXPECT_TRUE(sys.txPolicy().serializes(1));
    EXPECT_FALSE(sys.txPolicy().serializes(2));
    EXPECT_EQ(sys.txPolicy().stats().fallbackWrapRemaps, 1u);

    // The renamed holder still serializes and still releases.
    ASSERT_FALSE(sys.store(1, 0x1040, 9, 8, 1).aborted);
    sys.flushDirtyToMemory();
    EXPECT_EQ(sys.memory().read(0x1040, 8), 9u);
    sys.commit(1);
    EXPECT_FALSE(sys.txPolicy().fallbackHeld());
    EXPECT_EQ(sys.txPolicy().stats().fallbackCommits, 1u);
    sys.checkInvariants();
}

// --- limited-set mode ------------------------------------------------------

TEST(LimitedSet, KthLineFitsKPlusFirstAborts)
{
    EventQueue eq;
    CacheSystem sys(eq, ltdConfig(2));
    ASSERT_FALSE(sys.load(0, 0x1000, 8, 1).aborted);
    ASSERT_FALSE(sys.load(0, 0x1040, 8, 1).aborted); // K-th line: fits
    AccessResult r = sys.load(0, 0x1080, 8, 1); // K+1-th: aborts
    EXPECT_TRUE(r.aborted);
    EXPECT_EQ(sys.txPolicy().stats().limitedSetAborts, 1u);
    EXPECT_EQ(sys.stats().capacityAborts, 1u);
    sys.checkInvariants();
}

TEST(LimitedSet, RetouchingTrackedLinesIsFree)
{
    EventQueue eq;
    CacheSystem sys(eq, ltdConfig(2));
    ASSERT_FALSE(sys.load(0, 0x1000, 8, 1).aborted);
    ASSERT_FALSE(sys.store(0, 0x1040, 5, 8, 1).aborted);
    // Re-touching either line — even crossing load/store — costs no
    // new entry; only a third distinct line trips the bound.
    EXPECT_FALSE(sys.load(0, 0x1040, 8, 1).aborted);
    EXPECT_FALSE(sys.store(0, 0x1000, 6, 8, 1).aborted);
    EXPECT_EQ(sys.txPolicy().stats().limitedSetAborts, 0u);
    EXPECT_TRUE(sys.store(0, 0x1080, 7, 8, 1).aborted);
    EXPECT_EQ(sys.txPolicy().stats().limitedSetAborts, 1u);
    sys.checkInvariants();
}

TEST(LimitedSet, CommitClearsTheBudget)
{
    EventQueue eq;
    CacheSystem sys(eq, ltdConfig(2));
    ASSERT_FALSE(sys.load(0, 0x1000, 8, 1).aborted);
    ASSERT_FALSE(sys.load(0, 0x1040, 8, 1).aborted);
    sys.commit(1);
    // The next transaction starts a fresh K-line budget.
    EXPECT_FALSE(sys.load(0, 0x1080, 8, 2).aborted);
    EXPECT_FALSE(sys.load(0, 0x10c0, 8, 2).aborted);
    EXPECT_EQ(sys.txPolicy().stats().limitedSetAborts, 0u);
    sys.checkInvariants();
}

TEST(LimitedSet, BudgetsArePerVid)
{
    EventQueue eq;
    CacheSystem sys(eq, ltdConfig(1));
    // Two concurrent transactions each track their own single line.
    ASSERT_FALSE(sys.load(0, 0x1000, 8, 1).aborted);
    ASSERT_FALSE(sys.load(1, 0x2000, 8, 2).aborted);
    EXPECT_TRUE(sys.load(1, 0x2040, 8, 2).aborted);
    sys.checkInvariants();
}

} // namespace
} // namespace hmtx::sim
