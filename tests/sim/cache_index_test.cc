/**
 * @file
 * Tests of the simulator-side acceleration indexes: the address
 * presence filter and the per-cache speculative/dirty line registry.
 * The indexes are pure caches over the authoritative Line state, so
 * the tests drive the protocol through representative flows and then
 * ask verifyIndexes() to rebuild both from a full scan and compare —
 * plus corruption tests proving the cross-check actually detects
 * drift, and a test that checkInvariants() is observation-only.
 */

#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "sim/cache_system.hh"
#include "sim/event_queue.hh"

namespace hmtx::sim
{
namespace
{

MachineConfig
smallConfig()
{
    MachineConfig cfg;
    cfg.l2SizeKB = 256; // keep walks cheap in tests
    return cfg;
}

class IndexFixture : public ::testing::Test
{
  protected:
    IndexFixture() : sys(eq, smallConfig()) {}

    /** Loads, spec stores, forwarding, commits — a protocol workout. */
    void
    workout()
    {
        for (unsigned i = 0; i < 64; ++i)
            sys.load(i % 4, 0x8000 + Addr{i} * 64, 8, 0);
        for (unsigned i = 0; i < 16; ++i)
            sys.store(i % 4, 0x1000 + Addr{i} * 64, i + 1, 8,
                      1 + (i % 4));
        sys.load(2, 0x1000, 8, 2); // uncommitted forwarding
        for (Vid v = 1; v <= 4; ++v)
            sys.commit(v);
    }

    EventQueue eq;
    CacheSystem sys;
};

TEST_F(IndexFixture, IndexesConsistentAcrossProtocolFlows)
{
    workout();
    EXPECT_NO_THROW(sys.verifyIndexes());

    sys.vidReset();
    EXPECT_NO_THROW(sys.verifyIndexes());

    for (unsigned i = 0; i < 8; ++i)
        sys.store(i % 4, 0x2000 + Addr{i} * 64, i, 8, 1);
    sys.abortAll();
    EXPECT_NO_THROW(sys.verifyIndexes());

    sys.flushDirtyToMemory();
    EXPECT_NO_THROW(sys.verifyIndexes());
}

TEST_F(IndexFixture, IndexesConsistentAfterCapacityEvictions)
{
    // More lines than the 256 KB L2 holds: fills, evictions and
    // writebacks all funnel through syncLine.
    for (unsigned i = 0; i < 8192; ++i)
        sys.store(i % 4, 0x100000 + Addr{i} * 64, i, 8, 0);
    EXPECT_NO_THROW(sys.verifyIndexes());
    EXPECT_GT(sys.stats().writebacks, 0u);
}

TEST_F(IndexFixture, RegistryDrainsOncePurged)
{
    workout();
    sys.vidReset();
    sys.flushDirtyToMemory();
    // After reset + flush no line is speculative or dirty; the lazy
    // purge in the flush walk leaves every registry empty.
    for (CoreId c = 0; c < 4; ++c)
        EXPECT_EQ(sys.l1(c).registrySize(), 0u) << "core " << c;
    EXPECT_EQ(sys.l2().registrySize(), 0u);
}

TEST_F(IndexFixture, SnoopFilterActuallyFilters)
{
    workout();
    sys.vidReset(); // lazy commit defers the walk to the reset
    const IndexStats& idx = sys.indexStats();
    EXPECT_GT(idx.snoopsFiltered, 0u);
    EXPECT_GT(idx.snoopFilterRate(), 0.0);
    EXPECT_GT(idx.registryWalks, 0u);
    EXPECT_EQ(idx.fullScanWalks, 0u);
}

TEST_F(IndexFixture, CheckInvariantsIsReadOnly)
{
    workout();

    std::vector<Line> before;
    std::vector<LineData> beforeData;
    auto snapshot = [&](std::vector<Line>& out,
                        std::vector<LineData>& dout) {
        out.clear();
        dout.clear();
        auto grab = [&](Cache& c) {
            c.forEachLine([&](Line& l) {
                out.push_back(l);
                if (l.state != State::Invalid)
                    dout.push_back(c.dataOf(l));
            });
        };
        for (CoreId c = 0; c < 4; ++c)
            grab(sys.l1(c));
        grab(sys.l2());
    };
    snapshot(before, beforeData);
    SysStats statsBefore = sys.stats();

    sys.checkInvariants();

    std::vector<Line> after;
    std::vector<LineData> afterData;
    snapshot(after, afterData);
    ASSERT_EQ(before.size(), after.size());
    for (std::size_t i = 0; i < before.size(); ++i) {
        const Line& a = before[i];
        const Line& b = after[i];
        EXPECT_EQ(a.state, b.state) << "line " << i;
        EXPECT_EQ(a.tag.mod, b.tag.mod) << "line " << i;
        EXPECT_EQ(a.tag.high, b.tag.high) << "line " << i;
        EXPECT_EQ(a.dirty, b.dirty) << "line " << i;
        EXPECT_EQ(a.base, b.base) << "line " << i;
    }
    ASSERT_EQ(beforeData.size(), afterData.size());
    for (std::size_t i = 0; i < beforeData.size(); ++i)
        EXPECT_EQ(beforeData[i], afterData[i]) << "data " << i;
    EXPECT_TRUE(statsBefore == sys.stats());
}

TEST_F(IndexFixture, DetectsRegistryDrift)
{
    sys.load(0, 0x3000, 8, 0);
    EXPECT_NO_THROW(sys.verifyIndexes());
    // Dirty the line behind syncLine's back: it is now "interesting"
    // but on no registry.
    bool poked = false;
    sys.l1(0).forEachLine([&](Line& l) {
        if (!poked && l.state != State::Invalid && !l.dirty) {
            l.dirty = true;
            poked = true;
        }
    });
    ASSERT_TRUE(poked);
    EXPECT_THROW(sys.verifyIndexes(), std::logic_error);
}

TEST_F(IndexFixture, DetectsPresenceDrift)
{
    sys.load(0, 0x4000, 8, 0);
    EXPECT_NO_THROW(sys.verifyIndexes());
    // Invalidate behind syncLine's back: the presence filter still
    // lists the cache for this address.
    bool poked = false;
    sys.l1(0).forEachLine([&](Line& l) {
        if (!poked && l.state != State::Invalid) {
            l.state = State::Invalid;
            poked = true;
        }
    });
    ASSERT_TRUE(poked);
    EXPECT_THROW(sys.verifyIndexes(), std::logic_error);
}

TEST(IndexModesTest, FullScanModeKeepsIndexesConsistent)
{
    // forceFullScan bypasses the indexes for lookups but still
    // maintains them, so flipping the flag mid-run stays legal.
    MachineConfig cfg = smallConfig();
    cfg.forceFullScan = true;
    EventQueue eq;
    CacheSystem sys(eq, cfg);
    for (unsigned i = 0; i < 16; ++i)
        sys.store(i % 4, 0x1000 + Addr{i} * 64, i, 8, 1 + (i % 4));
    for (Vid v = 1; v <= 4; ++v)
        sys.commit(v);
    sys.vidReset();
    EXPECT_NO_THROW(sys.verifyIndexes());
    EXPECT_GT(sys.indexStats().fullScanWalks, 0u);
    EXPECT_EQ(sys.indexStats().registryWalks, 0u);
}

TEST(IndexModesTest, CrossCheckRunsWhenEnabled)
{
    MachineConfig cfg = smallConfig();
    cfg.indexCrossCheck = true;
    EventQueue eq;
    CacheSystem sys(eq, cfg);
    sys.store(0, 0x1000, 5, 8, 1);
    sys.commit(1);
    sys.abortAll();
    EXPECT_GT(sys.indexStats().crossChecks, 0u);
}

} // namespace
} // namespace hmtx::sim
