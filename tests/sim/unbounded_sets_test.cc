/**
 * @file
 * Tests of the unbounded-speculative-sets extension (§8 future work /
 * [27]): speculative versions spill to a memory-resident overflow
 * table instead of aborting, refill on demand, and preserve every
 * protocol property.
 */

#include <gtest/gtest.h>

#include "runtime/executors.hh"
#include "sim/cache_system.hh"
#include "sim/event_queue.hh"
#include "workloads/bzip2.hh"

namespace hmtx::sim
{
namespace
{

/** Tiny hierarchy so speculative state overflows immediately. */
MachineConfig
tinyConfig(bool unbounded)
{
    MachineConfig cfg;
    cfg.l1SizeKB = 1;
    cfg.l1Assoc = 2;
    cfg.l2SizeKB = 2;
    cfg.l2Assoc = 2;
    cfg.unboundedSpecSets = unbounded;
    return cfg;
}

/** Addresses that all land in L1/L2 set 0. */
Addr
conflictAddr(const CacheSystem& sys, unsigned i)
{
    unsigned stride = std::max(sys.config().l1Sets(),
                               sys.config().l2Sets()) *
        kLineBytes;
    return 0x100000 + static_cast<Addr>(i) * stride * 2;
}

TEST(UnboundedSets, BoundedAbortsWhereUnboundedSpills)
{
    EventQueue eqB, eqU;
    CacheSystem bounded(eqB, tinyConfig(false));
    CacheSystem unbounded(eqU, tinyConfig(true));

    bool abortedB = false;
    for (unsigned i = 0; i < 10; ++i) {
        abortedB |= bounded
                        .store(0, conflictAddr(bounded, i), i + 1, 8, 1)
                        .aborted;
        ASSERT_FALSE(unbounded
                         .store(0, conflictAddr(unbounded, i), i + 1,
                                8, 1)
                         .aborted)
            << "write " << i;
    }
    EXPECT_TRUE(abortedB);
    EXPECT_GT(bounded.stats().capacityAborts, 0u);
    EXPECT_EQ(unbounded.stats().capacityAborts, 0u);
    EXPECT_GT(unbounded.stats().specSpills, 0u);
}

TEST(UnboundedSets, SpilledVersionsRefillWithTheirData)
{
    EventQueue eq;
    CacheSystem sys(eq, tinyConfig(true));
    for (unsigned i = 0; i < 10; ++i)
        sys.store(0, conflictAddr(sys, i), 100 + i, 8, 1);
    ASSERT_GT(sys.stats().specSpills, 0u);
    // Every version is still reachable — spilled ones refill.
    for (unsigned i = 0; i < 10; ++i) {
        AccessResult r = sys.load(1, conflictAddr(sys, i), 8, 1);
        EXPECT_FALSE(r.aborted);
        EXPECT_EQ(r.value, 100 + i) << i;
    }
    EXPECT_GT(sys.stats().specRefills, 0u);
}

TEST(UnboundedSets, RefillChargesTableWalkLatency)
{
    EventQueue eq;
    CacheSystem sys(eq, tinyConfig(true));
    for (unsigned i = 0; i < 10; ++i)
        sys.store(0, conflictAddr(sys, i), i, 8, 1);
    std::uint64_t before = sys.stats().specRefills;
    AccessResult r = sys.load(1, conflictAddr(sys, 0), 8, 1);
    if (sys.stats().specRefills > before) {
        EXPECT_GE(r.latency, OverflowTable::kWalkCycles +
                      sys.config().memLatency);
    }
}

TEST(UnboundedSets, DependenceViolationsStillDetectedWhileSpilled)
{
    EventQueue eq;
    CacheSystem sys(eq, tinyConfig(true));
    // Reads by VID 5 spill out of the caches...
    for (unsigned i = 0; i < 10; ++i)
        sys.store(0, conflictAddr(sys, i), i, 8, 5);
    ASSERT_GT(sys.stats().specSpills, 0u);
    // ...yet a VID-2 store to a spilled line must still abort.
    AccessResult r = sys.store(1, conflictAddr(sys, 0), 9, 8, 2);
    EXPECT_TRUE(r.aborted);
}

TEST(UnboundedSets, GroupCommitCoversSpilledLines)
{
    EventQueue eq;
    CacheSystem sys(eq, tinyConfig(true));
    for (unsigned i = 0; i < 10; ++i)
        sys.store(0, conflictAddr(sys, i), 100 + i, 8, 1);
    sys.commit(1);
    sys.flushDirtyToMemory();
    for (unsigned i = 0; i < 10; ++i)
        EXPECT_EQ(sys.memory().read(conflictAddr(sys, i), 8),
                  100 + i);
    EXPECT_EQ(sys.overflowTable().size(), 0u);
}

TEST(UnboundedSets, AbortDiscardsSpilledUncommittedState)
{
    EventQueue eq;
    CacheSystem sys(eq, tinyConfig(true));
    for (unsigned i = 0; i < 10; ++i)
        sys.memory().write(conflictAddr(sys, i), 7, 8);
    for (unsigned i = 0; i < 10; ++i)
        sys.store(0, conflictAddr(sys, i), 100 + i, 8, 1);
    sys.abortAll();
    EXPECT_EQ(sys.overflowTable().size(), 0u);
    for (unsigned i = 0; i < 10; ++i)
        EXPECT_EQ(sys.load(0, conflictAddr(sys, i), 8, 0).value, 7u);
}

TEST(UnboundedSets, LargeFootprintBenchmarkCompletesOnTinyCaches)
{
    // bzip2 (the largest R/W sets of Figure 9) on a toy hierarchy:
    // bounded mode cannot run it; unbounded mode completes with the
    // sequential result.
    workloads::Bzip2Workload::Params p;
    p.blocks = 4;
    p.wordsPerBlock = 512;

    sim::MachineConfig big; // reference result on the real machine
    workloads::Bzip2Workload seqWl(p);
    runtime::ExecResult seq =
        runtime::Runner::runSequential(seqWl, big);

    sim::MachineConfig tiny;
    tiny.l1SizeKB = 4;
    tiny.l1Assoc = 2;
    tiny.l2SizeKB = 16;
    tiny.l2Assoc = 4;
    tiny.unboundedSpecSets = true;
    tiny.maxRecoveries = 100;
    workloads::Bzip2Workload par(p);
    runtime::ExecResult r = runtime::Runner::runHmtx(par, tiny);
    EXPECT_EQ(r.checksum, seq.checksum);
    EXPECT_EQ(r.stats.capacityAborts, 0u);
    EXPECT_GT(r.stats.specSpills, 0u);
}

} // namespace
} // namespace hmtx::sim
