/**
 * @file
 * Tests of the functional main-memory model.
 */

#include <gtest/gtest.h>

#include "sim/memory.hh"

namespace hmtx::sim
{
namespace
{

TEST(MainMemory, ZeroFilledOnFirstTouch)
{
    MainMemory m;
    EXPECT_EQ(m.read(0x123450, 8), 0u);
    EXPECT_EQ(m.read(0xFFFFFFFF00, 4), 0u);
}

TEST(MainMemory, LittleEndianSubWordAccess)
{
    MainMemory m;
    m.write(0x1000, 0x1122334455667788ull, 8);
    EXPECT_EQ(m.read(0x1000, 1), 0x88u);
    EXPECT_EQ(m.read(0x1001, 1), 0x77u);
    EXPECT_EQ(m.read(0x1000, 2), 0x7788u);
    EXPECT_EQ(m.read(0x1000, 4), 0x55667788u);
    EXPECT_EQ(m.read(0x1004, 4), 0x11223344u);
}

TEST(MainMemory, PartialWritesLeaveNeighboursIntact)
{
    MainMemory m;
    m.write(0x2000, 0xAAAAAAAAAAAAAAAAull, 8);
    m.write(0x2002, 0xBB, 1);
    EXPECT_EQ(m.read(0x2000, 8), 0xAAAAAAAAAABBAAAAull);
}

TEST(MainMemory, LineGranularReadWrite)
{
    MainMemory m;
    LineData d{};
    for (unsigned i = 0; i < kLineBytes; ++i)
        d[i] = static_cast<std::uint8_t>(i);
    m.writeLine(0x3007, d); // any address within the line
    EXPECT_EQ(m.read(0x3000, 1), 0u);
    EXPECT_EQ(m.read(0x3010, 1), 0x10u);
    const LineData& rd = m.readLine(0x303F);
    EXPECT_EQ(rd[63], 63u);
}

TEST(MainMemory, SparseTracking)
{
    MainMemory m;
    m.write(0x0, 1, 8);
    m.write(0x40, 1, 8);
    m.write(0x7F, 1, 1); // same line as 0x40
    EXPECT_EQ(m.touchedLines(), 2u);
}

TEST(LineHelpers, AlignmentMath)
{
    EXPECT_EQ(lineAddr(0x1234), 0x1200u);
    EXPECT_EQ(lineOffset(0x1234), 0x34u);
    EXPECT_EQ(lineAddr(0x1240), 0x1240u);
    EXPECT_EQ(lineOffset(0x1240), 0u);
}

} // namespace
} // namespace hmtx::sim
