/**
 * @file
 * Tests of the coroutine Task type and its interaction with the event
 * queue.
 */

#include <gtest/gtest.h>

#include "sim/event_queue.hh"
#include "sim/task.hh"

namespace hmtx::sim
{
namespace
{

/** Awaitable that resumes after a delay on the event queue. */
struct Delay
{
    EventQueue& eq;
    Cycles cycles;

    bool await_ready() const noexcept { return cycles == 0; }

    void
    await_suspend(std::coroutine_handle<> h)
    {
        eq.scheduleIn(cycles, [h] { h.resume(); });
    }

    void await_resume() const noexcept {}
};

Task<int>
addAfterDelay(EventQueue& eq, int a, int b)
{
    co_await Delay{eq, 10};
    co_return a + b;
}

Task<void>
outer(EventQueue& eq, int& result)
{
    int x = co_await addAfterDelay(eq, 2, 3);
    int y = co_await addAfterDelay(eq, x, 10);
    result = y;
}

TEST(Task, NestedAwaitPropagatesValues)
{
    EventQueue eq;
    int result = 0;
    Task<void> t = outer(eq, result);
    t.start();
    eq.run();
    EXPECT_TRUE(t.done());
    EXPECT_EQ(result, 15);
    EXPECT_EQ(eq.curTick(), 20u);
}

Task<void>
thrower(EventQueue& eq)
{
    co_await Delay{eq, 5};
    throw TxAborted{7};
}

Task<void>
catcher(EventQueue& eq, unsigned& caughtVid)
{
    try {
        co_await thrower(eq);
    } catch (const TxAborted& e) {
        caughtVid = e.vid;
    }
}

TEST(Task, ExceptionsUnwindThroughAwaits)
{
    EventQueue eq;
    unsigned vid = 0;
    Task<void> t = catcher(eq, vid);
    t.start();
    eq.run();
    EXPECT_TRUE(t.done());
    EXPECT_EQ(vid, 7u);
}

TEST(Task, RootExceptionIsStoredAndRethrown)
{
    EventQueue eq;
    Task<void> t = thrower(eq);
    t.start();
    eq.run();
    EXPECT_TRUE(t.done());
    EXPECT_THROW(t.rethrow(), TxAborted);
}

Task<void>
interleaved(EventQueue& eq, std::vector<int>& log, int id, Cycles step)
{
    for (int i = 0; i < 3; ++i) {
        co_await Delay{eq, step};
        log.push_back(id);
    }
}

TEST(Task, TasksInterleaveDeterministically)
{
    EventQueue eq;
    std::vector<int> log;
    Task<void> a = interleaved(eq, log, 1, 10);
    Task<void> b = interleaved(eq, log, 2, 15);
    a.start();
    b.start();
    eq.run();
    // a wakes at 10,20,30; b at 15,30,45. The tie at t=30 resolves in
    // schedule order: b scheduled its wake-up at t=15, before a did at
    // t=20, so b fires first.
    EXPECT_EQ(log, (std::vector<int>{1, 2, 1, 2, 1, 2}));
}

Task<int>
immediate()
{
    co_return 42;
}

Task<void>
awaitImmediate(int& out)
{
    out = co_await immediate();
}

TEST(Task, ImmediateCompletionWorks)
{
    int out = 0;
    Task<void> t = awaitImmediate(out);
    t.start();
    EXPECT_TRUE(t.done());
    EXPECT_EQ(out, 42);
}

} // namespace
} // namespace hmtx::sim
