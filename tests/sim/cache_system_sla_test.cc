/**
 * @file
 * Tests of the speculative-load-acknowledgment machinery (§5.1):
 * wrong-path loads must not cause false misspeculation when SLAs are
 * enabled, must cause it when they are disabled (as in prior systems),
 * and SLA value verification must catch changed data.
 */

#include <gtest/gtest.h>

#include "sim/cache_system.hh"
#include "sim/event_queue.hh"

namespace hmtx::sim
{
namespace
{

MachineConfig
configWithSla(bool sla)
{
    MachineConfig cfg;
    cfg.l2SizeKB = 256;
    cfg.slaEnabled = sla;
    return cfg;
}

TEST(Sla, WrongPathLoadDoesNotMarkWithSla)
{
    EventQueue eq;
    CacheSystem sys(eq, configWithSla(true));
    sys.memory().write(0x100, 7, 8);

    // A squashed wrong-path load from VID 5 touches the line...
    sys.load(0, 0x100, 8, 5, /*wrongPath=*/true);
    // ...then an earlier transaction stores to it. Without SLAs this
    // would be a (false) flow violation; with them it must succeed.
    AccessResult r = sys.store(1, 0x100, 9, 8, 2);
    EXPECT_FALSE(r.aborted);
    EXPECT_EQ(sys.stats().aborts, 0u);
    EXPECT_EQ(sys.stats().avoidedAborts, 1u);
}

TEST(Sla, WrongPathLoadCausesFalseAbortWithoutSla)
{
    EventQueue eq;
    CacheSystem sys(eq, configWithSla(false));
    sys.memory().write(0x100, 7, 8);

    sys.load(0, 0x100, 8, 5, /*wrongPath=*/true);
    AccessResult r = sys.store(1, 0x100, 9, 8, 2);
    EXPECT_TRUE(r.aborted);
    EXPECT_EQ(sys.stats().falseAbortsWrongPath, 1u);
}

TEST(Sla, NeedSlaOnlyOnFirstTouchPerVid)
{
    EventQueue eq;
    CacheSystem sys(eq, configWithSla(true));
    sys.memory().write(0x200, 1, 8);

    // First speculative load of the line: the VID is not logged yet.
    EXPECT_TRUE(sys.load(0, 0x200, 8, 3).needSla);
    // Memory-access locality: subsequent accesses need no SLA (§5.1).
    EXPECT_FALSE(sys.load(0, 0x200, 8, 3).needSla);
    EXPECT_FALSE(sys.load(0, 0x208, 8, 3).needSla); // same line
    // A later VID is a new marking, though.
    EXPECT_TRUE(sys.load(0, 0x200, 8, 4).needSla);
    EXPECT_EQ(sys.stats().slaNeeded, 2u);
}

TEST(Sla, StoreCoversSubsequentLoadsOfSameVid)
{
    EventQueue eq;
    CacheSystem sys(eq, configWithSla(true));
    sys.store(0, 0x240, 5, 8, 2);
    // The speculative store already logged VID 2 on the line.
    EXPECT_FALSE(sys.load(0, 0x240, 8, 2).needSla);
}

TEST(Sla, ConfirmVerifiesValue)
{
    EventQueue eq;
    CacheSystem sys(eq, configWithSla(true));
    sys.memory().write(0x300, 11, 8);

    AccessResult r = sys.load(0, 0x300, 8, 2);
    ASSERT_TRUE(r.needSla);
    // Matching value: the acknowledgment applies the marking.
    EXPECT_TRUE(sys.slaConfirm(0, {0x300, 2, r.value, 8}));
    EXPECT_EQ(sys.stats().slaConfirms, 1u);
    // Now a store from an earlier VID must detect the (now-marked)
    // read and abort.
    EXPECT_TRUE(sys.store(1, 0x300, 12, 8, 1).aborted);
}

TEST(Sla, ConfirmMismatchAborts)
{
    EventQueue eq;
    CacheSystem sys(eq, configWithSla(true));
    sys.memory().write(0x340, 11, 8);

    AccessResult r = sys.load(0, 0x340, 8, 2);
    ASSERT_TRUE(r.needSla);
    // The value changes before the SLA arrives (e.g. a store from the
    // same transaction's other thread raced): verification fails.
    EXPECT_FALSE(sys.slaConfirm(0, {0x340, 2, r.value + 1, 8}));
    EXPECT_EQ(sys.stats().slaMismatchAborts, 1u);
    EXPECT_EQ(sys.stats().aborts, 1u);
}

/**
 * The value-check rules must hold identically on both interconnects:
 * the fabric only changes how the acknowledgment finds the line, not
 * what the verification decides (§5.1).
 */
class SlaFabric : public ::testing::TestWithParam<Fabric>
{
  protected:
    MachineConfig
    config() const
    {
        MachineConfig cfg = configWithSla(true);
        cfg.fabric = GetParam();
        return cfg;
    }
};

TEST_P(SlaFabric, ConfirmMatchAppliesMarking)
{
    EventQueue eq;
    CacheSystem sys(eq, config());
    sys.memory().write(0x400, 21, 8);

    AccessResult r = sys.load(0, 0x400, 8, 3);
    ASSERT_TRUE(r.needSla);
    EXPECT_TRUE(sys.slaConfirm(0, {0x400, 3, r.value, 8}));
    EXPECT_EQ(sys.stats().slaConfirms, 1u);
    EXPECT_EQ(sys.stats().slaMismatchAborts, 0u);
    // The confirmed marking is live: an earlier-VID store is a flow
    // violation against the now-recorded read.
    EXPECT_TRUE(sys.store(1, 0x400, 22, 8, 2).aborted);
}

TEST_P(SlaFabric, ConfirmMatchFromRemoteCore)
{
    EventQueue eq;
    CacheSystem sys(eq, config());
    sys.memory().write(0x440, 31, 8);

    // The line lives in core 0's L1; the acknowledgment arrives at
    // core 1 (a different MTX thread issued the load). The fabric has
    // to route the verification to the live copy.
    AccessResult r = sys.load(0, 0x440, 8, 4);
    ASSERT_TRUE(r.needSla);
    EXPECT_TRUE(sys.slaConfirm(1, {0x440, 4, r.value, 8}));
    EXPECT_EQ(sys.stats().slaConfirms, 1u);
}

TEST_P(SlaFabric, ConfirmMismatchAbortsAndFlushes)
{
    EventQueue eq;
    CacheSystem sys(eq, config());
    sys.memory().write(0x480, 41, 8);

    AccessResult r = sys.load(0, 0x480, 8, 3);
    ASSERT_TRUE(r.needSla);
    EXPECT_FALSE(sys.slaConfirm(0, {0x480, 3, r.value ^ 1, 8}));
    EXPECT_EQ(sys.stats().slaMismatchAborts, 1u);
    EXPECT_EQ(sys.stats().aborts, 1u);
    // The misspeculation flushed the transaction: the same store that
    // a confirmed marking would abort now proceeds.
    EXPECT_FALSE(sys.store(1, 0x480, 42, 8, 2).aborted);
}

INSTANTIATE_TEST_SUITE_P(BothFabrics, SlaFabric,
                         ::testing::Values(Fabric::SnoopBus,
                                           Fabric::Directory),
                         [](const auto& info) {
                             return info.param == Fabric::SnoopBus
                                        ? "SnoopBus"
                                        : "Directory";
                         });

TEST(Sla, ShadowAccountingClearsOnCommit)
{
    EventQueue eq;
    CacheSystem sys(eq, configWithSla(true));
    sys.memory().write(0x380, 1, 8);

    sys.load(0, 0x380, 8, 1, /*wrongPath=*/true);
    sys.commit(1);
    // VID 1 committed; a store by VID 2 is not an avoided abort (the
    // wrong-path VID is no longer live).
    sys.store(0, 0x380, 3, 8, 2);
    EXPECT_EQ(sys.stats().avoidedAborts, 0u);
}

} // namespace
} // namespace hmtx::sim
