/**
 * @file
 * Tests of the workload samplers: the base SplitMix64 Rng and the
 * Zipfian / bounded-Pareto distributions the serving generator draws
 * from. The distribution tests pin *empirical* frequencies of large
 * seeded draws against the closed forms, so any change to the sampler
 * arithmetic (or to Rng itself) that shifts the generated workloads
 * shows up as a test failure rather than silently re-shaping every
 * bench.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "sim/rng.hh"

namespace hmtx::sim
{
namespace
{

TEST(Rng, DeterministicAcrossInstances)
{
    Rng a(42), b(42), c(43);
    bool anyDiff = false;
    for (int i = 0; i < 100; ++i) {
        const std::uint64_t va = a.next();
        EXPECT_EQ(va, b.next());
        anyDiff = anyDiff || va != c.next();
    }
    EXPECT_TRUE(anyDiff);
}

TEST(Zipf, HeadFrequenciesMatchClosedForm)
{
    // theta = 0.99 (the YCSB default): rank 0 of 1000 keys carries
    // ~13% of the mass. 200k draws give ~0.1% standard error on the
    // head ranks; accept 5% relative slack.
    constexpr std::uint64_t kN = 1000;
    constexpr int kDraws = 200000;
    ZipfSampler zipf(kN, 0.99);
    Rng rng(12345);
    std::vector<std::uint64_t> hits(kN, 0);
    for (int i = 0; i < kDraws; ++i) {
        const std::uint64_t k = zipf(rng);
        ASSERT_LT(k, kN);
        ++hits[k];
    }
    for (std::uint64_t k = 0; k < 5; ++k) {
        const double want = zipf.probOfRank(k);
        const double got =
            static_cast<double>(hits[k]) / kDraws;
        EXPECT_NEAR(got, want, want * 0.05) << "rank " << k;
    }
    // The closed form itself: P(k) = (k+1)^-theta / H(n, theta).
    double h = 0.0;
    for (std::uint64_t k = 1; k <= kN; ++k)
        h += std::pow(static_cast<double>(k), -0.99);
    EXPECT_NEAR(zipf.probOfRank(0), 1.0 / h, 1e-12);
    EXPECT_NEAR(zipf.probOfRank(9), std::pow(10.0, -0.99) / h, 1e-12);
}

TEST(Zipf, HighSkewThetaAboveOneStillExact)
{
    // theta > 1 is outside the YCSB approximation's domain but inside
    // the serving sweep's: the inverse-CDF table must stay exact.
    constexpr std::uint64_t kN = 4096;
    constexpr int kDraws = 200000;
    ZipfSampler zipf(kN, 1.2);
    Rng rng(99);
    std::uint64_t head = 0;
    for (int i = 0; i < kDraws; ++i)
        head += zipf(rng) == 0;
    const double want = zipf.probOfRank(0);
    EXPECT_GT(want, 0.2); // theta=1.2 concentrates hard on the head
    EXPECT_NEAR(static_cast<double>(head) / kDraws, want,
                want * 0.05);
}

TEST(Zipf, ThetaZeroIsUniform)
{
    constexpr std::uint64_t kN = 64;
    constexpr int kDraws = 128000;
    ZipfSampler zipf(kN, 0.0);
    Rng rng(7);
    std::vector<std::uint64_t> hits(kN, 0);
    for (int i = 0; i < kDraws; ++i)
        ++hits[zipf(rng)];
    for (std::uint64_t k = 0; k < kN; ++k) {
        EXPECT_NEAR(static_cast<double>(hits[k]) / kDraws,
                    1.0 / kN, 0.2 / kN)
            << "rank " << k;
    }
}

TEST(Zipf, SeededDrawsReproduce)
{
    ZipfSampler zipf(512, 0.9);
    Rng a(31337), b(31337);
    for (int i = 0; i < 1000; ++i)
        ASSERT_EQ(zipf(a), zipf(b));
}

TEST(BoundedPareto, SamplesStayInBounds)
{
    BoundedParetoSampler p(10.0, 10000.0, 1.5);
    Rng rng(5);
    for (int i = 0; i < 100000; ++i) {
        const double x = p(rng);
        ASSERT_GE(x, 10.0);
        ASSERT_LE(x, 10000.0);
    }
}

TEST(BoundedPareto, MedianMatchesClosedForm)
{
    BoundedParetoSampler p(10.0, 10000.0, 1.5);
    Rng rng(6);
    constexpr int kDraws = 200000;
    const double median = p.quantile(0.5);
    int below = 0;
    for (int i = 0; i < kDraws; ++i)
        below += p(rng) < median;
    // Half the mass sits below the closed-form median.
    EXPECT_NEAR(static_cast<double>(below) / kDraws, 0.5, 0.01);
    // And the closed form itself: F(quantile(q)) == q by inversion,
    // spot-check the endpoints' neighborhood.
    EXPECT_NEAR(p.quantile(0.0), 10.0, 1e-9);
    EXPECT_LT(p.quantile(0.999), 10000.0 + 1e-6);
    EXPECT_GT(median, 10.0);
    EXPECT_LT(median, 100.0); // alpha 1.5 keeps the median near lo
}

} // namespace
} // namespace hmtx::sim
