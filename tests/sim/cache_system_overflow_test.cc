/**
 * @file
 * Tests of speculative memory overflowing the caches (§5.4): pristine
 * S-O versions may spill to memory and be recovered via the snoop
 * assertion; any other speculative line falling out of the last-level
 * cache must abort the transaction.
 */

#include <gtest/gtest.h>

#include "sim/cache_system.hh"
#include "sim/event_queue.hh"

namespace hmtx::sim
{
namespace
{

/** A deliberately tiny hierarchy so evictions are easy to force. */
MachineConfig
tinyConfig()
{
    MachineConfig cfg;
    cfg.l1SizeKB = 1; // 8 sets x 2 ways
    cfg.l1Assoc = 2;
    cfg.l2SizeKB = 2; // 16 sets x 2 ways
    cfg.l2Assoc = 2;
    return cfg;
}

class OverflowFixture : public ::testing::Test
{
  protected:
    OverflowFixture() : sys(eq, tinyConfig()) {}

    /** Addresses all mapping to L1 set 0 and L2 set 0. */
    Addr
    conflictAddr(unsigned i) const
    {
        unsigned l1Stride = sys.config().l1Sets() * kLineBytes;
        unsigned l2Stride = sys.config().l2Sets() * kLineBytes;
        return static_cast<Addr>(i) * std::max(l1Stride, l2Stride) *
            2;
    }

    EventQueue eq;
    CacheSystem sys;
};

TEST_F(OverflowFixture, PristineVersionsOverflowWithoutAborting)
{
    // Speculative writes create S-O + S-M pairs in one set; the
    // pristine S-O(0,·) versions overflow to memory instead of
    // aborting (§5.4).
    for (unsigned i = 0; i < 4; ++i) {
        sys.memory().write(conflictAddr(i), 100 + i, 8);
        // Read first so a pristine version exists in the cache.
        sys.load(0, conflictAddr(i), 8, 1);
        ASSERT_FALSE(sys.store(0, conflictAddr(i), 200 + i, 8, 1)
                         .aborted)
            << "write " << i;
    }
    EXPECT_EQ(sys.stats().aborts, 0u);
    EXPECT_GT(sys.stats().soOverflowWritebacks, 0u);

    // The speculative versions are all still reachable.
    for (unsigned i = 0; i < 4; ++i)
        EXPECT_EQ(sys.load(1, conflictAddr(i), 8, 1).value, 200 + i);
}

TEST_F(OverflowFixture, OverflowedPristineVersionRefetches)
{
    sys.memory().write(conflictAddr(0), 42, 8);
    sys.store(0, conflictAddr(0), 77, 8, 2);
    // Force the (cold-store, so memory-resident) pristine version to
    // be the only source for an earlier VID.
    AccessResult r = sys.load(1, conflictAddr(0), 8, 1);
    EXPECT_FALSE(r.aborted);
    EXPECT_EQ(r.value, 42u);
    EXPECT_GT(sys.stats().soRefetches, 0u);
    // And the speculative version is unharmed.
    EXPECT_EQ(sys.load(1, conflictAddr(0), 8, 2).value, 77u);
}

TEST_F(OverflowFixture, SpeculativeOverflowBeyondLlcAborts)
{
    // More distinct speculatively *modified* lines in one set family
    // than L1 + L2 can hold: the transaction must abort (§5.4).
    bool aborted = false;
    for (unsigned i = 0; i < 8 && !aborted; ++i)
        aborted = sys.store(0, conflictAddr(i), i, 8, 1).aborted;
    EXPECT_TRUE(aborted);
    EXPECT_GT(sys.stats().capacityAborts, 0u);

    // Rollback left committed state intact.
    for (unsigned i = 0; i < 8; ++i)
        EXPECT_EQ(sys.load(0, conflictAddr(i), 8, 0).value, 0u);
}

TEST_F(OverflowFixture, VictimSelectionPrefersPristineVersions)
{
    // With both S-O(0,·) and S-M lines in a full set, the S-O lines
    // must be chosen for eviction first (§5.4).
    sys.memory().write(conflictAddr(0), 1, 8);
    sys.load(0, conflictAddr(0), 8, 1);
    sys.store(0, conflictAddr(0), 2, 8, 1); // S-O(0,1) + S-M(1,1)
    sys.store(0, conflictAddr(1), 3, 8, 1); // S-M(1,1) another line
    sys.store(0, conflictAddr(2), 4, 8, 1);
    sys.store(0, conflictAddr(3), 5, 8, 1);
    EXPECT_EQ(sys.stats().aborts, 0u);
    EXPECT_EQ(sys.load(1, conflictAddr(0), 8, 1).value, 2u);
    EXPECT_EQ(sys.load(1, conflictAddr(3), 8, 1).value, 5u);
}

} // namespace
} // namespace hmtx::sim
