/**
 * @file
 * Tests of the non-speculative (plain MOESI) behaviour of the memory
 * system: hits, misses, cache-to-cache transfer, write invalidation,
 * eviction and writeback.
 */

#include <gtest/gtest.h>

#include "sim/cache_system.hh"
#include "sim/event_queue.hh"

namespace hmtx::sim
{
namespace
{

MachineConfig
smallConfig()
{
    MachineConfig cfg;
    cfg.l2SizeKB = 256; // keep walks cheap in tests
    return cfg;
}

class BasicFixture : public ::testing::Test
{
  protected:
    BasicFixture() : sys(eq, smallConfig()) {}

    EventQueue eq;
    CacheSystem sys;
};

TEST_F(BasicFixture, ColdLoadFetchesFromMemoryThenHits)
{
    sys.memory().write(0x1000, 77, 8);
    AccessResult r = sys.load(0, 0x1000, 8, 0);
    EXPECT_EQ(r.value, 77u);
    EXPECT_FALSE(r.l1Hit);
    EXPECT_GE(r.latency, sys.config().memLatency);

    r = sys.load(0, 0x1000, 8, 0);
    EXPECT_TRUE(r.l1Hit);
    EXPECT_EQ(r.latency, sys.config().l1Latency);
    EXPECT_EQ(r.value, 77u);
}

TEST_F(BasicFixture, StoreThenLoadSameCore)
{
    sys.store(0, 0x2000, 123, 8, 0);
    AccessResult r = sys.load(0, 0x2000, 8, 0);
    EXPECT_EQ(r.value, 123u);
}

TEST_F(BasicFixture, CacheToCacheTransfer)
{
    sys.store(0, 0x3000, 55, 8, 0);
    AccessResult r = sys.load(1, 0x3000, 8, 0);
    EXPECT_EQ(r.value, 55u);
    EXPECT_FALSE(r.l1Hit);
    // Served by a peer cache, not memory.
    EXPECT_LT(r.latency, sys.config().memLatency);
    EXPECT_EQ(sys.stats().snoopHits, 1u);
}

TEST_F(BasicFixture, WriteInvalidatesPeerCopies)
{
    sys.store(0, 0x4000, 1, 8, 0);
    sys.load(1, 0x4000, 8, 0);
    sys.load(2, 0x4000, 8, 0);
    // Core 1 writes; cores 0 and 2 must observe the new value.
    sys.store(1, 0x4000, 2, 8, 0);
    EXPECT_EQ(sys.load(0, 0x4000, 8, 0).value, 2u);
    EXPECT_EQ(sys.load(2, 0x4000, 8, 0).value, 2u);
}

TEST_F(BasicFixture, SubWordAccesses)
{
    sys.store(0, 0x5000, 0x11223344, 4, 0);
    sys.store(0, 0x5004, 0xAABB, 2, 0);
    EXPECT_EQ(sys.load(0, 0x5000, 4, 0).value, 0x11223344u);
    EXPECT_EQ(sys.load(0, 0x5004, 2, 0).value, 0xAABBu);
    EXPECT_EQ(sys.load(0, 0x5000, 1, 0).value, 0x44u);
}

TEST_F(BasicFixture, DirtyDataSurvivesEvictionPressure)
{
    // Fill one L1 set far beyond its associativity; every value must
    // still be readable afterwards (via L2 or memory).
    MachineConfig cfg = sys.config();
    unsigned stride = cfg.l1Sets() * kLineBytes;
    unsigned n = cfg.l1Assoc * 3;
    for (unsigned i = 0; i < n; ++i)
        sys.store(0, 0x10000 + static_cast<Addr>(i) * stride, i + 1, 8,
                  0);
    for (unsigned i = 0; i < n; ++i) {
        EXPECT_EQ(
            sys.load(0, 0x10000 + static_cast<Addr>(i) * stride, 8, 0)
                .value,
            i + 1u);
    }
}

TEST_F(BasicFixture, FlushWritesDirtyLinesToMemory)
{
    sys.store(0, 0x6000, 99, 8, 0);
    EXPECT_NE(sys.memory().read(0x6000, 8), 99u);
    sys.flushDirtyToMemory();
    EXPECT_EQ(sys.memory().read(0x6000, 8), 99u);
}

TEST_F(BasicFixture, NonSpecLoadsDoNotMarkLines)
{
    sys.store(0, 0x7000, 5, 8, 0);
    sys.load(1, 0x7000, 8, 0);
    sys.checkInvariants();
    EXPECT_EQ(sys.stats().specLoads, 0u);
    // A speculative store must still succeed (nothing was marked).
    AccessResult r = sys.store(2, 0x7000, 6, 8, 1);
    EXPECT_FALSE(r.aborted);
}

} // namespace
} // namespace hmtx::sim
