/**
 * @file
 * Unit tests of the set-associative cache storage layer.
 */

#include <gtest/gtest.h>

#include "sim/cache.hh"

namespace hmtx::sim
{
namespace
{

TEST(CacheStorage, GeometryAndIndexing)
{
    Cache c("L1.test", 128, 8);
    EXPECT_EQ(c.setCount(), 128u);
    EXPECT_EQ(c.assoc(), 8u);
    // Consecutive lines map to consecutive sets, wrapping.
    EXPECT_EQ(c.setIndex(0), 0u);
    EXPECT_EQ(c.setIndex(64), 1u);
    EXPECT_EQ(c.setIndex(128 * 64), 0u);
    // Offsets within a line do not change the set.
    EXPECT_EQ(c.setIndex(0x1008), c.setIndex(0x1000));
}

TEST(CacheStorage, FreeSlotGrowsUpToAssociativity)
{
    Cache c("t", 4, 2);
    Line* a = c.freeSlot(0);
    ASSERT_NE(a, nullptr);
    a->state = State::Exclusive;
    a->base = 0;
    Line* b = c.freeSlot(0);
    ASSERT_NE(b, nullptr);
    b->state = State::Exclusive;
    b->base = 4 * 64;
    EXPECT_EQ(c.freeSlot(0), nullptr); // set full
    // A different set is unaffected.
    EXPECT_NE(c.freeSlot(64), nullptr);
}

TEST(CacheStorage, InvalidSlotsAreReused)
{
    Cache c("t", 4, 2);
    Line* a = c.freeSlot(0);
    a->state = State::Modified;
    Line* b = c.freeSlot(0);
    b->state = State::Modified;
    ASSERT_EQ(c.freeSlot(0), nullptr);
    a->state = State::Invalid;
    EXPECT_EQ(c.freeSlot(0), a); // same slot handed back
}

TEST(CacheStorage, PointerStabilityAcrossGrowth)
{
    // Protocol code holds Line* across allocations in the same set;
    // growth must never reallocate.
    Cache c("t", 1, 32);
    Line* first = c.freeSlot(0);
    first->state = State::Exclusive;
    first->base = 0;
    c.dataOf(*first)[0] = 0xAB;
    for (unsigned i = 1; i < 32; ++i) {
        Line* l = c.freeSlot(0);
        ASSERT_NE(l, nullptr);
        l->state = State::Exclusive;
        l->base = i * 64;
    }
    EXPECT_EQ(c.dataOf(*first)[0], 0xAB);
    EXPECT_EQ(first->base, 0u);
}

TEST(CacheStorage, ValidLineCountAndForEach)
{
    Cache c("t", 8, 4);
    for (unsigned i = 0; i < 5; ++i) {
        Line* l = c.freeSlot(i * 64);
        l->state = State::Shared;
        l->base = i * 64;
    }
    EXPECT_EQ(c.validLines(), 5u);
    unsigned seen = 0;
    c.forEachLine([&](Line& l) {
        if (l.state != State::Invalid)
            ++seen;
    });
    EXPECT_EQ(seen, 5u);
}

} // namespace
} // namespace hmtx::sim
