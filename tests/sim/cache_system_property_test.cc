/**
 * @file
 * Randomized property tests: a pipeline-style interleaving of
 * speculative accesses from many concurrent VIDs is generated so that
 * no true dependence violation occurs; the versioned cache must then
 * (a) never abort, (b) return for every load exactly the value a
 * sequential execution in VID order would have produced, and (c) leave
 * memory equal to the sequential result after all commits. A second
 * suite injects violations and checks they are detected and rolled
 * back.
 */

#include <gtest/gtest.h>

#include <map>
#include <unordered_map>
#include <vector>

#include "sim/cache_system.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"

namespace hmtx::sim
{
namespace
{

MachineConfig
propConfig(bool tiny)
{
    MachineConfig cfg;
    if (tiny) {
        cfg.l1SizeKB = 1;
        cfg.l1Assoc = 2;
        cfg.l2SizeKB = 8;
        cfg.l2Assoc = 8;
    } else {
        cfg.l2SizeKB = 512;
    }
    return cfg;
}

/**
 * Sequential-semantics oracle: per address, the committed base value
 * plus a map of (writer VID -> last value written). A load with VID a
 * must observe the write with the largest VID <= a, or the base value.
 */
class Oracle
{
  public:
    void seed(Addr a, std::uint64_t v) { base_[a] = v; }

    void
    write(Addr a, Vid vid, std::uint64_t v)
    {
        writes_[a][vid] = v;
    }

    std::uint64_t
    read(Addr a, Vid vid) const
    {
        auto it = writes_.find(a);
        if (it != writes_.end()) {
            // Largest writer VID <= vid.
            auto wit = it->second.upper_bound(vid);
            if (wit != it->second.begin()) {
                --wit;
                return wit->second;
            }
        }
        auto bit = base_.find(a);
        return bit == base_.end() ? 0 : bit->second;
    }

    /** Final committed value once every VID committed. */
    std::uint64_t
    finalValue(Addr a) const
    {
        auto it = writes_.find(a);
        if (it != writes_.end() && !it->second.empty())
            return it->second.rbegin()->second;
        auto bit = base_.find(a);
        return bit == base_.end() ? 0 : bit->second;
    }

  private:
    std::unordered_map<Addr, std::uint64_t> base_;
    std::unordered_map<Addr, std::map<Vid, std::uint64_t>> writes_;
};

class ConflictFree : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(ConflictFree, MatchesSequentialSemantics)
{
    const std::uint64_t seedVal = GetParam();
    Rng rng(seedVal);
    const bool tiny = (seedVal % 2) == 0;

    EventQueue eq;
    CacheSystem sys(eq, propConfig(tiny));
    Oracle oracle;

    const unsigned numAddrs = 24;
    std::vector<Addr> addrs;
    for (unsigned i = 0; i < numAddrs; ++i) {
        Addr a = 0x10000 + i * 0x48; // mixes lines and offsets
        a &= ~Addr{7};
        addrs.push_back(a);
        std::uint64_t v = rng.next() & 0xffff;
        sys.memory().write(a, v, 8);
        oracle.seed(a, v);
    }

    // Track, per address, the highest VID that accessed it, mirroring
    // the protocol's abort condition so generated stores never
    // violate a dependence.
    std::unordered_map<Addr, Vid> maxAccessor;
    // In the tiny configuration, cap the live version chain per
    // address so a set cannot be forced into a legitimate capacity
    // abort (§5.4) — that behaviour has its own directed tests.
    const unsigned window = 8; // concurrently active VIDs
    const unsigned maxWritersPerAddr = tiny ? 3 : window;
    std::unordered_map<Addr, std::map<Vid, bool>> writers;

    const unsigned rounds = 6; // 6 * 8 = 48 VIDs < 63
    Vid nextCommit = 1;

    for (unsigned round = 0; round < rounds; ++round) {
        Vid lo = round * window + 1;
        for (unsigned op = 0; op < 400; ++op) {
            Vid vid = lo + static_cast<Vid>(rng.range(window));
            CoreId core = vid % sys.config().numCores;
            Addr a = addrs[rng.range(addrs.size())];
            bool isStore = rng.chance(0.4);
            if (isStore) {
                Vid ma = maxAccessor.count(a) ? maxAccessor[a] : 0;
                if (vid < ma)
                    isStore = false; // would (correctly) abort
            }
            if (isStore && !writers[a].count(vid) &&
                writers[a].size() >= maxWritersPerAddr) {
                isStore = false;
            }
            if (isStore) {
                writers[a][vid] = true;
                std::uint64_t v = rng.next() & 0xffff;
                AccessResult r = sys.store(core, a, v, 8, vid);
                ASSERT_FALSE(r.aborted)
                    << "store vid " << vid << " addr " << a;
                oracle.write(a, vid, v);
                maxAccessor[a] = std::max(maxAccessor[a], vid);
            } else {
                bool wrongPath = rng.chance(0.05);
                AccessResult r = sys.load(core, a, 8, vid, wrongPath);
                ASSERT_FALSE(r.aborted);
                if (!wrongPath) {
                    ASSERT_EQ(r.value, oracle.read(a, vid))
                        << "load vid " << vid << " addr " << std::hex
                        << a << " seed " << seedVal;
                    maxAccessor[a] = std::max(maxAccessor[a], vid);
                }
            }
        }
        for (unsigned i = 0; i < window; ++i)
            sys.commit(nextCommit++);
        ASSERT_EQ(sys.stats().aborts, 0u);
        writers.clear();
    }

    sys.checkInvariants();
    sys.flushDirtyToMemory();
    for (Addr a : addrs)
        EXPECT_EQ(sys.memory().read(a, 8), oracle.finalValue(a))
            << "addr " << std::hex << a << " seed " << seedVal;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConflictFree,
                         ::testing::Range<std::uint64_t>(1, 13));

class WithViolations : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(WithViolations, DetectsAndRollsBack)
{
    Rng rng(GetParam() * 77 + 5);
    EventQueue eq;
    CacheSystem sys(eq, propConfig(false));

    const unsigned numAddrs = 8;
    std::vector<Addr> addrs;
    for (unsigned i = 0; i < numAddrs; ++i) {
        Addr a = 0x20000 + i * 0x40;
        addrs.push_back(a);
        sys.memory().write(a, 1000 + i, 8);
    }

    // Phase 1: make a higher VID read every address.
    for (Addr a : addrs)
        sys.load(0, a, 8, 5);

    // Phase 2: a lower-VID store to any of them must abort.
    Addr victim = addrs[rng.range(addrs.size())];
    AccessResult r = sys.store(1, victim, 7, 8, 2);
    EXPECT_TRUE(r.aborted);
    EXPECT_EQ(sys.stats().aborts, 1u);

    // Phase 3: rollback — committed values all intact.
    for (unsigned i = 0; i < numAddrs; ++i)
        EXPECT_EQ(sys.load(2, addrs[i], 8, 0).value, 1000 + i);
    sys.checkInvariants();

    // Phase 4: the system is reusable; replay succeeds.
    EXPECT_FALSE(sys.store(1, victim, 7, 8, 1).aborted);
    sys.commit(1);
    EXPECT_EQ(sys.load(3, victim, 8, 0).value, 7u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WithViolations,
                         ::testing::Range<std::uint64_t>(0, 6));

} // namespace
} // namespace hmtx::sim
