/**
 * @file
 * Parallel-engine unit and edge-case tests (DESIGN.md §11): the
 * EventQueue lane API, events landing exactly on time-window
 * boundaries, zero-latency self-messages, and the degenerate
 * one-tick-window configuration that reduces the engine to a
 * quiesce-per-event sequential loop.
 */

#include <gtest/gtest.h>

#include <vector>

#include "runtime/executors.hh"
#include "sim/event_queue.hh"
#include "workloads/worklist.hh"

namespace hmtx
{
namespace
{

// ---------------------------------------------------------------------
// EventQueue lane API
// ---------------------------------------------------------------------

TEST(EventQueueLane, PopNextMovesLaneEventOut)
{
    sim::EventQueue eq;
    eq.scheduleLane(5, 2);
    EXPECT_EQ(eq.pending(), 1u);
    EXPECT_EQ(eq.nextWhen(), 5u);

    sim::EventQueue::Popped ev;
    ASSERT_TRUE(eq.popNext(ev));
    EXPECT_EQ(ev.when, 5u);
    EXPECT_EQ(ev.lane, 2u);
    EXPECT_FALSE(static_cast<bool>(ev.h));
    EXPECT_EQ(ev.fn, nullptr);
    EXPECT_EQ(eq.curTick(), 5u); // popNext advances time like step()
    EXPECT_EQ(eq.executed(), 1u);
    EXPECT_FALSE(eq.popNext(ev)); // empty queue
}

TEST(EventQueueLane, SameTickScheduleOrderPreserved)
{
    sim::EventQueue eq;
    int fired = 0;
    eq.scheduleLane(7, 0);
    eq.schedule(7, [&] { ++fired; });
    eq.scheduleLane(7, 3);
    eq.scheduleLane(6, 1); // earlier tick pops first despite later seq

    std::vector<std::uint32_t> order;
    sim::EventQueue::Popped ev;
    while (eq.popNext(ev)) {
        order.push_back(ev.lane);
        if (ev.lane == sim::EventQueue::kNoLane) {
            ASSERT_NE(ev.fn, nullptr);
            (*ev.fn)();
        }
    }
    ASSERT_EQ(order.size(), 4u);
    EXPECT_EQ(order[0], 1u);
    EXPECT_EQ(order[1], 0u);
    EXPECT_EQ(order[2], sim::EventQueue::kNoLane);
    EXPECT_EQ(order[3], 3u);
    EXPECT_EQ(fired, 1);
}

TEST(EventQueueLane, NextWhenTracksFrontier)
{
    sim::EventQueue eq;
    eq.scheduleLane(10, 0);
    eq.scheduleLane(10, 1);
    eq.scheduleLane(12, 2);

    sim::EventQueue::Popped ev;
    ASSERT_TRUE(eq.popNext(ev));
    // A same-tick event is still pending: the frontier must not move.
    EXPECT_EQ(eq.nextWhen(), 10u);
    ASSERT_TRUE(eq.popNext(ev));
    EXPECT_EQ(eq.nextWhen(), 12u);
}

// ---------------------------------------------------------------------
// Engine edge cases, driven through full machine runs
// ---------------------------------------------------------------------

/**
 * Stage 2 computes delays chosen around the engine's time window W
 * (min core-to-core latency): exactly W, one below, one above, a
 * multiple, and zero (a zero-latency self-message — wakes next
 * cycle). Every iteration therefore lands events exactly on, just
 * before, and just after window boundaries.
 */
class WindowEdgeWorkload : public workloads::ChasedListWorkload
{
  public:
    WindowEdgeWorkload(std::uint64_t iters, Cycles window)
        : iters_(iters),
          pattern_{window, window - 1, window + 1, 3 * window, 0}
    {}

    std::string name() const override { return "window_edge"; }
    std::uint64_t iterations() const override { return iters_; }

    void
    setup(runtime::Machine& m) override
    {
        out_.init(m, iters_, 1);
        std::vector<std::uint64_t> payloads(iters_);
        for (std::uint64_t i = 0; i < iters_; ++i)
            payloads[i] = i;
        initWorkList(m, payloads);
    }

    sim::Task<void>
    stage2(runtime::MemIf& mem, std::uint64_t iter) override
    {
        std::uint64_t i = co_await fetchWork(mem, iter);
        std::uint64_t h = 0x9E37 ^ i;
        for (std::size_t k = 0; k < pattern_.size(); ++k) {
            co_await mem.compute(pattern_[(iter + k) %
                                          pattern_.size()]);
            h = workloads::mix64(h + k);
            co_await mem.store(out_.at(i), h);
        }
    }

    std::uint64_t
    checksum(runtime::Machine& m) override
    {
        std::uint64_t s = 0;
        for (std::uint64_t i = 0; i < iters_; ++i)
            s = workloads::mix64(
                s ^ m.sys().memory().read(out_.at(i), 8));
        return s;
    }

  private:
    std::uint64_t iters_;
    std::vector<Cycles> pattern_;
    workloads::IterRegion out_;
};

void
expectIdentical(const runtime::ExecResult& rs,
                const runtime::ExecResult& rp)
{
    EXPECT_EQ(rp.cycles, rs.cycles);
    EXPECT_EQ(rp.checksum, rs.checksum);
    EXPECT_EQ(rp.instructions, rs.instructions);
    EXPECT_TRUE(rp.stats == rs.stats);
}

runtime::ExecResult
runEngine(sim::MachineConfig cfg, sim::SimEngine engine,
          unsigned engineThreads, Cycles window, std::uint64_t iters)
{
    cfg.engine = engine;
    cfg.engineThreads = engineThreads;
    WindowEdgeWorkload wl(iters, window);
    return runtime::Runner::runHmtx(wl, cfg);
}

TEST(ParallelEngineEdge, EventsOnWindowBoundary)
{
    sim::MachineConfig cfg; // snoop bus: window = busCycles = 4
    const Cycles window = cfg.busCycles;
    runtime::ExecResult rs =
        runEngine(cfg, sim::SimEngine::Sequential, 0, window, 40);
    for (unsigned threads : {1u, 2u, 4u}) {
        runtime::ExecResult rp = runEngine(
            cfg, sim::SimEngine::Parallel, threads, window, 40);
        expectIdentical(rs, rp);
        EXPECT_GT(rp.parStats.windows, 0u);
        EXPECT_GT(rp.parStats.eventsPerWindow(), 0.0);
        EXPECT_LE(rp.parStats.laneEvents, rp.parStats.events);
    }
}

TEST(ParallelEngineEdge, DirectoryWindowBoundary)
{
    sim::MachineConfig cfg;
    cfg.fabric = sim::Fabric::Directory; // window = dirHop
    const Cycles window = cfg.dirHop;
    runtime::ExecResult rs =
        runEngine(cfg, sim::SimEngine::Sequential, 0, window, 32);
    runtime::ExecResult rp =
        runEngine(cfg, sim::SimEngine::Parallel, 2, window, 32);
    expectIdentical(rs, rp);
}

/** compute(0) everywhere: every stage turn is a zero-latency
 *  self-message that must still wake strictly after its slot. */
TEST(ParallelEngineEdge, ZeroLatencySelfMessages)
{
    sim::MachineConfig cfg;
    runtime::ExecResult rs =
        runEngine(cfg, sim::SimEngine::Sequential, 0, 1, 24);
    for (unsigned threads : {1u, 2u}) {
        runtime::ExecResult rp =
            runEngine(cfg, sim::SimEngine::Parallel, threads, 1, 24);
        expectIdentical(rs, rp);
    }
}

/**
 * Degenerate configuration: busCycles = 1 makes the window a single
 * tick, so every event crosses a boundary and the engine quiesces
 * after each one — operationally the sequential loop. Must still be
 * bit-identical, and the window count must reflect the per-tick
 * cadence.
 */
TEST(ParallelEngineEdge, OneTickWindowReducesToSequential)
{
    sim::MachineConfig cfg;
    cfg.busCycles = 1;
    runtime::ExecResult rs =
        runEngine(cfg, sim::SimEngine::Sequential, 0, 1, 24);
    for (unsigned threads : {1u, 2u}) {
        runtime::ExecResult rp =
            runEngine(cfg, sim::SimEngine::Parallel, threads, 1, 24);
        expectIdentical(rs, rp);
        EXPECT_GT(rp.parStats.windows, 0u);
        // One-tick windows: at most a handful of same-tick events per
        // window, never the whole run in one window.
        EXPECT_LT(rp.parStats.eventsPerWindow(),
                  double(rp.parStats.events));
        EXPECT_EQ(rp.parStats.rollbacks, 0u);
    }
}

} // namespace
} // namespace hmtx
