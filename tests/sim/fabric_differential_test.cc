/**
 * @file
 * Cross-fabric differential testing of the Interconnect seam: the
 * HMTX version rules are fabric-independent, so an identical access
 * stream driven through a SnoopBus system and a DirectoryFabric
 * system must produce identical *functional* results — per-access
 * values and outcomes, memory images, abort generations, commit
 * watermarks, and every architectural statistic except the
 * directory's own lookup counter. Only timing (latency, which never
 * feeds back into raw streams) may differ.
 *
 * Also exercises the numCores-parametric orchestration: 8-, 16- and
 * 32-core machines must run fig8-style parallel workloads to
 * completion on both fabrics with matching checksums.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <random>
#include <thread>
#include <tuple>

#include "runtime/executors.hh"
#include "sim/cache_system.hh"
#include "sim/event_queue.hh"
#include "workloads/stress.hh"

namespace hmtx
{
namespace
{

/** Full memory image as an ordered map for direct comparison. */
std::map<Addr, sim::LineData>
memImage(sim::CacheSystem& sys)
{
    std::map<Addr, sim::LineData> img;
    sys.memory().forEachLine(
        [&](Addr a, const sim::LineData& d) { img[a] = d; });
    return img;
}

/** Stats with the fabric-specific lookup counter masked out. */
sim::SysStats
fabricNeutral(const sim::SysStats& s)
{
    sim::SysStats n = s;
    n.dirLookups = 0; // the only counter the fabric choice may change
    return n;
}

/**
 * Drives an identical randomized protocol stream into two systems,
 * comparing every functional outcome as it goes. Latency is
 * deliberately NOT compared: that is exactly what the fabrics own.
 * The stream stays legal by construction: commits are consecutive,
 * vidReset only runs when all VIDs used since the last reset have
 * committed or aborted. Ends with an abort + flush so the final
 * memory images are complete.
 */
void
driveIdenticalStreams(sim::CacheSystem& a, sim::CacheSystem& b,
                      std::uint64_t seed, unsigned ops)
{
    std::mt19937_64 rng(seed);
    auto rnd = [&](std::uint64_t n) { return rng() % n; };

    const Vid maxVid = 48; // stay clear of the wrap guard
    const unsigned cores = a.config().numCores;
    bool outstanding = false;

    for (unsigned i = 0; i < ops; ++i) {
        ASSERT_EQ(a.lcVid(), b.lcVid()) << "op " << i;
        const Vid lc = a.lcVid();
        const unsigned kind = rnd(100);
        const CoreId core = CoreId(rnd(cores));
        const Addr addr = 0x1000 + rnd(96) * 64 + rnd(8) * 8;

        if (kind < 40) { // speculative access in the open window
            const Vid vid = Vid(lc + 1 + rnd(4));
            if (vid > maxVid)
                continue;
            outstanding = true;
            sim::AccessResult ra, rb;
            if (rnd(2)) {
                ra = a.load(core, addr, 8, vid);
                rb = b.load(core, addr, 8, vid);
            } else {
                const std::uint64_t v = rng();
                ra = a.store(core, addr, v, 8, vid);
                rb = b.store(core, addr, v, 8, vid);
            }
            ASSERT_EQ(ra.value, rb.value) << "op " << i;
            ASSERT_EQ(ra.aborted, rb.aborted) << "op " << i;
            ASSERT_EQ(ra.l1Hit, rb.l1Hit) << "op " << i;
            ASSERT_EQ(ra.needSla, rb.needSla) << "op " << i;
        } else if (kind < 70) { // non-speculative access
            sim::AccessResult ra, rb;
            if (rnd(2)) {
                ra = a.load(core, addr, 8, 0);
                rb = b.load(core, addr, 8, 0);
            } else {
                const std::uint64_t v = rng();
                ra = a.store(core, addr, v, 8, 0);
                rb = b.store(core, addr, v, 8, 0);
            }
            ASSERT_EQ(ra.value, rb.value) << "op " << i;
            ASSERT_EQ(ra.aborted, rb.aborted) << "op " << i;
        } else if (kind < 85) { // commit the next VID
            if (lc + 1 > maxVid)
                continue;
            a.commit(Vid(lc + 1));
            b.commit(Vid(lc + 1));
        } else if (kind < 92) { // global abort
            a.abortAll();
            b.abortAll();
            outstanding = false;
        } else { // drain the window and reset
            if (outstanding)
                continue; // uncommitted spec VIDs may be live
            if (a.lcVid() != 0) {
                a.vidReset();
                b.vidReset();
            }
        }
        // A committed-past-the-window stream ends the round early.
        if (a.lcVid() >= maxVid) {
            a.abortAll();
            b.abortAll();
            a.vidReset();
            b.vidReset();
            outstanding = false;
        }
        ASSERT_EQ(a.abortGen(), b.abortGen()) << "op " << i;
    }

    a.abortAll();
    b.abortAll();
    a.flushDirtyToMemory();
    b.flushDirtyToMemory();

    EXPECT_EQ(a.lcVid(), b.lcVid());
    EXPECT_EQ(a.abortGen(), b.abortGen());
    EXPECT_EQ(memImage(a), memImage(b));
    a.checkInvariants();
    b.checkInvariants();
}

/** Cross-fabric differential: everything but the directory's own
 *  lookup counter must match. */
void
runFabricDifferential(sim::CacheSystem& a, sim::CacheSystem& b,
                      std::uint64_t seed, unsigned ops)
{
    driveIdenticalStreams(a, b, seed, ops);
    EXPECT_TRUE(fabricNeutral(a.stats()) == fabricNeutral(b.stats()));
    EXPECT_GT(b.stats().dirLookups, 0u)
        << "the directory fabric must actually have been exercised";
    EXPECT_EQ(a.stats().dirLookups, 0u)
        << "the snoop bus must never consult a directory";
}

/**
 * Sequential-vs-sharded differential: the shard count is pure
 * simulator machinery, so *every* architectural statistic — the
 * directory counter included — must be bit-identical, along with
 * values, outcomes, memory images and abort generations. Only the
 * simulator-side ShardStats may (and must) differ.
 */
void
runShardDifferential(sim::CacheSystem& a, sim::CacheSystem& b,
                     std::uint64_t seed, unsigned ops)
{
    driveIdenticalStreams(a, b, seed, ops);
    EXPECT_TRUE(a.stats() == b.stats())
        << "sharding must not change architectural statistics";
    EXPECT_NO_THROW(a.verifyIndexes());
    EXPECT_NO_THROW(b.verifyIndexes());
}

class FabricDifferential
    : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(FabricDifferential, RandomStreamMatchesAcrossFabrics)
{
    sim::MachineConfig snoop;
    snoop.l2SizeKB = 256;
    sim::MachineConfig dir = snoop;
    dir.fabric = sim::Fabric::Directory;
    dir.dirBanks = 8;

    sim::EventQueue eqa, eqb;
    sim::CacheSystem a(eqa, snoop);
    sim::CacheSystem b(eqb, dir);
    runFabricDifferential(a, b, GetParam(), 3000);
}

TEST_P(FabricDifferential, EightCoreStreamMatchesAcrossFabrics)
{
    // Wider machine: more L1s in the snoop set, more directory
    // sharers — the functional results must still be identical.
    sim::MachineConfig snoop;
    snoop.numCores = 8;
    snoop.l2SizeKB = 256;
    sim::MachineConfig dir = snoop;
    dir.fabric = sim::Fabric::Directory;
    dir.dirBanks = 16;

    sim::EventQueue eqa, eqb;
    sim::CacheSystem a(eqa, snoop);
    sim::CacheSystem b(eqb, dir);
    runFabricDifferential(a, b, GetParam() * 17 + 3, 2000);
}

TEST_P(FabricDifferential, UnboundedSetsMatchAcrossFabrics)
{
    // Tiny caches + unbounded speculative sets: spills and refills
    // through the overflow table join the differential surface.
    sim::MachineConfig snoop;
    snoop.l1SizeKB = 4;
    snoop.l1Assoc = 2;
    snoop.l2SizeKB = 32;
    snoop.l2Assoc = 4;
    snoop.unboundedSpecSets = true;
    sim::MachineConfig dir = snoop;
    dir.fabric = sim::Fabric::Directory;
    dir.dirBanks = 4;

    sim::EventQueue eqa, eqb;
    sim::CacheSystem a(eqa, snoop);
    sim::CacheSystem b(eqb, dir);
    runFabricDifferential(a, b, GetParam() * 31 + 7, 1500);
}

INSTANTIATE_TEST_SUITE_P(Seeds, FabricDifferential,
                         ::testing::Range<std::uint64_t>(1, 5));

// --- sequential vs sharded engine ---------------------------------------

/** Host-sized shard request: at least 2 so the banked paths engage
 *  even on single-CPU hosts. */
unsigned
hostShards()
{
    const unsigned n = std::thread::hardware_concurrency();
    return n < 2 ? 2 : n;
}

/** (seed, requested shard count) */
using ShardParam = std::tuple<std::uint64_t, unsigned>;

class ShardDifferential : public ::testing::TestWithParam<ShardParam>
{};

TEST_P(ShardDifferential, SnoopBusStreamMatchesSequentialInline)
{
    const auto [seed, shards] = GetParam();
    sim::MachineConfig seq;
    seq.l2SizeKB = 256;
    sim::MachineConfig shr = seq;
    shr.shards = shards;
    shr.shardThreads = 1; // inline: banked structures, one thread

    sim::EventQueue eqa, eqb;
    sim::CacheSystem a(eqa, seq);
    sim::CacheSystem b(eqb, shr);
    EXPECT_EQ(b.shardStats().banks, std::uint64_t{shr.shardBanks()});
    runShardDifferential(a, b, seed * 7 + 1, 2500);
}

TEST_P(ShardDifferential, DirectoryStreamMatchesSequentialThreaded)
{
    const auto [seed, shards] = GetParam();
    sim::MachineConfig seq;
    seq.l2SizeKB = 256;
    seq.fabric = sim::Fabric::Directory;
    sim::MachineConfig shr = seq;
    shr.shards = shards;
    shr.shardThreads = 2; // dedicated bank workers, even on 1 CPU

    sim::EventQueue eqa, eqb;
    sim::CacheSystem a(eqa, seq);
    sim::CacheSystem b(eqb, shr);
    if (shr.shardBanks() > 1)
        EXPECT_TRUE(b.shardStats().threaded);
    runShardDifferential(a, b, seed * 11 + 5, 2000);
}

TEST_P(ShardDifferential, UnboundedSetsMatchSequentialThreaded)
{
    // Tiny caches + overflow traffic: the banked overflow folds and
    // the bank-partitioned memory writebacks join the surface.
    const auto [seed, shards] = GetParam();
    sim::MachineConfig seq;
    seq.l1SizeKB = 4;
    seq.l1Assoc = 2;
    seq.l2SizeKB = 32;
    seq.l2Assoc = 4;
    seq.unboundedSpecSets = true;
    sim::MachineConfig shr = seq;
    shr.shards = shards;
    shr.shardThreads = 2;

    sim::EventQueue eqa, eqb;
    sim::CacheSystem a(eqa, seq);
    sim::CacheSystem b(eqb, shr);
    runShardDifferential(a, b, seed * 13 + 2, 1500);
}

INSTANTIATE_TEST_SUITE_P(
    SeedsByShards, ShardDifferential,
    ::testing::Combine(::testing::Range<std::uint64_t>(1, 4),
                       ::testing::Values(1u, 2u, 8u, hostShards())));

TEST(ShardEngineModes, InlineAndThreadedSchedulesAgree)
{
    // Same banked partitioning, two drain schedules: the inline
    // coordinator and dedicated workers must be indistinguishable.
    sim::MachineConfig inl;
    inl.l2SizeKB = 256;
    inl.shards = 4;
    inl.shardThreads = 1;
    sim::MachineConfig thr = inl;
    thr.shardThreads = 2;

    sim::EventQueue eqa, eqb;
    sim::CacheSystem a(eqa, inl);
    sim::CacheSystem b(eqb, thr);
    EXPECT_FALSE(a.shardStats().threaded);
    EXPECT_TRUE(b.shardStats().threaded);
    runShardDifferential(a, b, 99, 2500);
    // Identical command routing too: the schedule only changes *who*
    // drains the rings, never what flows through them.
    EXPECT_EQ(a.shardStats().bankCmds, b.shardStats().bankCmds);
    EXPECT_EQ(a.shardStats().epochs, b.shardStats().epochs);
}

TEST(ShardEngineModes, BankClampRespectsSetCounts)
{
    // 4 KB / 2-way L1 has 32 sets: a 64-shard request must clamp to
    // a power of two dividing every cache's set count.
    sim::MachineConfig cfg;
    cfg.l1SizeKB = 4;
    cfg.l1Assoc = 2;
    cfg.l2SizeKB = 256;
    cfg.shards = 64;
    EXPECT_EQ(cfg.shardBanks(), 32u);
    cfg.shards = 5; // non-power-of-two requests round down
    EXPECT_EQ(cfg.shardBanks(), 4u);
    cfg.shards = 0;
    EXPECT_EQ(cfg.shardBanks(), 1u);

    sim::EventQueue eq;
    cfg.shards = 64;
    sim::CacheSystem sys(eq, cfg);
    EXPECT_EQ(sys.shardStats().banks, 32u);
}

// --- numCores-parametric orchestration ----------------------------------

/** Runs the chaos workload on @p cores cores under both fabrics and
 *  checks both complete with the reference checksum. */
void
runManyCores(unsigned cores, bool doall)
{
    workloads::StressWorkload::Params p;
    p.iterations = 4 * cores;
    p.scratchWords = 24;
    p.conflictRate = 0.1;
    p.seed = 13 + cores;

    sim::MachineConfig seqCfg;
    workloads::StressWorkload ws(p);
    runtime::ExecResult seq = runtime::Runner::runSequential(ws, seqCfg);

    for (sim::Fabric f : {sim::Fabric::SnoopBus, sim::Fabric::Directory}) {
        sim::MachineConfig cfg;
        cfg.numCores = cores;
        cfg.fabric = f;
        cfg.dirBanks = 16;
        workloads::StressWorkload w(p);
        runtime::ExecResult r = doall
            ? runtime::Runner::runDoall(w, cfg, cores)
            : runtime::Runner::runPipeline(w, cfg, cores - 1);
        EXPECT_EQ(r.checksum, seq.checksum)
            << cores << " cores, fabric " << int(f);
        EXPECT_EQ(r.stats.idleCores, 0u)
            << "full-width schedules must occupy every core";
        EXPECT_GT(r.transactions, 0u);
    }
}

TEST(ManyCoreOrchestration, EightCoresCompleteOnBothFabrics)
{
    runManyCores(8, /*doall=*/false);
    runManyCores(8, /*doall=*/true);
}

TEST(ManyCoreOrchestration, SixteenCoresCompleteOnBothFabrics)
{
    runManyCores(16, /*doall=*/false);
    runManyCores(16, /*doall=*/true);
}

TEST(ManyCoreOrchestration, ThirtyTwoCoresCompleteOnBothFabrics)
{
    runManyCores(32, /*doall=*/true);
}

TEST(ManyCoreOrchestration, ShardSweepIsDeterministicAcrossSeeds)
{
    // Full-stack determinism: the same parallel workload, run on
    // shards {1, 2, host} under both fabrics, must produce the same
    // checksum and the same architectural stats for every seed —
    // whether the banks are drained inline or by worker threads.
    for (std::uint64_t seed : {5u, 23u, 71u}) {
        workloads::StressWorkload::Params p;
        p.iterations = 48;
        p.scratchWords = 24;
        p.conflictRate = 0.15;
        p.seed = seed;

        for (sim::Fabric f :
             {sim::Fabric::SnoopBus, sim::Fabric::Directory}) {
            struct Variant
            {
                unsigned shards;
                unsigned threads;
            };
            const Variant variants[] = {
                {1, 0}, {2, 1}, {hostShards(), 2}};
            bool have = false;
            std::uint64_t refSum = 0;
            sim::SysStats refStats;
            for (const Variant& v : variants) {
                sim::MachineConfig cfg;
                cfg.numCores = 8;
                cfg.fabric = f;
                cfg.shards = v.shards;
                cfg.shardThreads = v.threads;
                workloads::StressWorkload w(p);
                runtime::ExecResult r =
                    runtime::Runner::runDoall(w, cfg, 8);
                if (!have) {
                    refSum = r.checksum;
                    refStats = r.stats;
                    have = true;
                } else {
                    EXPECT_EQ(r.checksum, refSum)
                        << "seed " << seed << " shards " << v.shards;
                    EXPECT_TRUE(r.stats == refStats)
                        << "seed " << seed << " shards " << v.shards;
                }
            }
        }
    }
}

TEST(ManyCoreOrchestration, NarrowPipelineReportsIdleCores)
{
    // A 2-stage pipeline with 3 replicated workers on an 8-core
    // machine uses 4 cores; the other 4 must be counted, not silent.
    workloads::StressWorkload::Params p;
    p.iterations = 24;
    p.scratchWords = 16;
    p.conflictRate = 0.0;
    p.seed = 3;

    sim::MachineConfig cfg;
    cfg.numCores = 8;
    workloads::StressWorkload w(p);
    runtime::ExecResult r = runtime::Runner::runPipeline(w, cfg, 3);
    EXPECT_EQ(r.stats.idleCores, 4u);

    // Requests beyond the machine clamp instead of indexing past the
    // thread contexts.
    workloads::StressWorkload w2(p);
    sim::MachineConfig four;
    four.numCores = 4;
    runtime::ExecResult r2 = runtime::Runner::runPipeline(w2, four, 9);
    EXPECT_EQ(r2.stats.idleCores, 0u);
    EXPECT_GT(r2.transactions, 0u);
}

} // namespace
} // namespace hmtx
