/**
 * @file
 * Tests of the gshare branch predictor.
 */

#include <gtest/gtest.h>

#include "sim/branch_predictor.hh"
#include "sim/rng.hh"

namespace hmtx::sim
{
namespace
{

TEST(BranchPredictor, LearnsStronglyBiasedBranches)
{
    BranchPredictor bp;
    for (int i = 0; i < 1000; ++i)
        bp.predict(0x40, true);
    EXPECT_LT(bp.mispredictRate(), 0.01);
}

TEST(BranchPredictor, LearnsAlternatingPattern)
{
    // T,N,T,N has a period the 6-bit history resolves.
    BranchPredictor bp;
    for (int i = 0; i < 2000; ++i)
        bp.predict(0x80, (i & 1) != 0);
    EXPECT_LT(bp.mispredictRate(), 0.05);
}

TEST(BranchPredictor, RandomOutcomesMispredictHeavily)
{
    BranchPredictor bp;
    Rng rng(5);
    for (int i = 0; i < 4000; ++i)
        bp.predict(0xC0, rng.chance(0.5));
    EXPECT_GT(bp.mispredictRate(), 0.30);
}

TEST(BranchPredictor, BiasMovesTheRate)
{
    // An 85%-taken data-dependent branch should land near its bias's
    // theoretical floor (~15%), far better than a coin flip.
    BranchPredictor bp;
    Rng rng(6);
    for (int i = 0; i < 6000; ++i)
        bp.predict(0x100, rng.chance(0.85));
    EXPECT_LT(bp.mispredictRate(), 0.25);
    EXPECT_GT(bp.mispredictRate(), 0.05);
}

TEST(BranchPredictor, CountsAreConsistent)
{
    BranchPredictor bp;
    for (int i = 0; i < 137; ++i)
        bp.predict(0x180, i % 3 == 0);
    EXPECT_EQ(bp.branches(), 137u);
    EXPECT_LE(bp.mispredicts(), bp.branches());
}

TEST(BranchPredictor, DistinctPcsTrainIndependently)
{
    BranchPredictor bp;
    // Two sites with opposite fixed outcomes must both train well.
    for (int i = 0; i < 2000; ++i) {
        bp.predict(0x200, true);
        bp.predict(0x300, false);
    }
    EXPECT_LT(bp.mispredictRate(), 0.02);
}

} // namespace
} // namespace hmtx::sim
