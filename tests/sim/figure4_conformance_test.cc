/**
 * @file
 * Edge-by-edge conformance tests for the Figure 4 speculative-access
 * state diagram: for each starting state, every read/write/snooped
 * access lands in exactly the state the protocol prescribes, observed
 * end-to-end through the cache system.
 */

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>

#include "sim/cache_system.hh"
#include "sim/event_queue.hh"

namespace hmtx::sim
{
namespace
{

class Fig4 : public ::testing::Test
{
  protected:
    Fig4()
    {
        cfg.l2SizeKB = 256;
        sys = std::make_unique<CacheSystem>(eq, cfg);
        sys->memory().write(kA, 7, 8);
    }

    /** States of every version of kA's line across the system. */
    std::multiset<std::string>
    states()
    {
        std::multiset<std::string> out;
        for (CoreId c = 0; c < 5; ++c) {
            Cache& cache = c < 4 ? sys->l1(c) : sys->l2();
            for (auto& l : cache.set(kA).lines)
                if (l.state != State::Invalid && l.base == lineAddr(kA))
                    out.insert(std::string(stateName(l.state)) + "(" +
                               std::to_string(l.tag.mod) + "," +
                               std::to_string(l.tag.high) + ")");
        }
        return out;
    }

    static constexpr Addr kA = 0xA00;
    EventQueue eq;
    MachineConfig cfg;
    std::unique_ptr<CacheSystem> sys;
};

TEST_F(Fig4, EdgeE_SpecRead_ToSE)
{
    sys->load(0, kA, 8, 0); // E(0,0)
    ASSERT_EQ(states(), (std::multiset<std::string>{"E(0,0)"}));
    sys->load(0, kA, 8, 2); // E --Read--> S-E
    EXPECT_EQ(states(), (std::multiset<std::string>{"S-E(0,2)"}));
}

TEST_F(Fig4, EdgeM_SpecRead_ToSM)
{
    sys->store(0, kA, 9, 8, 0); // M(0,0), dirty
    sys->load(0, kA, 8, 2);     // M --Read--> S-M (dirty data)
    EXPECT_EQ(states(), (std::multiset<std::string>{"S-M(0,2)"}));
}

TEST_F(Fig4, EdgeSE_SpecWrite_CreatesCopyAndSM)
{
    sys->load(0, kA, 8, 1);     // S-E(0,1)
    sys->store(0, kA, 9, 8, 1); // Write >= h: unmodified copy created
    EXPECT_EQ(states(), (std::multiset<std::string>{"S-O(0,1)",
                                                    "S-M(1,1)"}));
}

TEST_F(Fig4, EdgeSM_ReadUpdatesHigh)
{
    sys->store(0, kA, 9, 8, 1);
    sys->load(0, kA, 8, 3); // S-M --Read (>=m)--> S-M, high := 3
    EXPECT_EQ(states(), (std::multiset<std::string>{"S-M(1,3)"}));
}

TEST_F(Fig4, EdgeSM_LaterWriteCreatesChain)
{
    sys->store(0, kA, 9, 8, 1);
    sys->store(0, kA, 10, 8, 3); // Write > h: new copy created
    EXPECT_EQ(states(), (std::multiset<std::string>{"S-O(1,3)",
                                                    "S-M(3,3)"}));
}

TEST_F(Fig4, EdgeSM_SameVidWrite_InPlace)
{
    sys->store(0, kA, 9, 8, 2);
    sys->store(0, kA, 10, 8, 2); // Write == h and m != 0: in place
    EXPECT_EQ(states(), (std::multiset<std::string>{"S-M(2,2)"}));
    EXPECT_EQ(sys->load(1, kA, 8, 2).value, 10u);
}

TEST_F(Fig4, EdgeSM_EarlierWrite_Abort)
{
    sys->store(0, kA, 9, 8, 2);
    sys->load(0, kA, 8, 5); // high = 5
    AccessResult r = sys->store(1, kA, 1, 8, 3); // Write < h: ABORT
    EXPECT_TRUE(r.aborted);
}

TEST_F(Fig4, EdgeSO_Write_Abort)
{
    sys->load(0, kA, 8, 1);
    sys->store(0, kA, 9, 8, 4); // chain: S-O(0,4) + S-M(4,4)
    AccessResult r = sys->store(1, kA, 1, 8, 2); // hits S-O: ABORT
    EXPECT_TRUE(r.aborted);
}

TEST_F(Fig4, EdgeSnoopedRead_PeerReceivesCopy)
{
    sys->store(0, kA, 9, 8, 2); // S-M(2,2) at core 0
    sys->load(1, kA, 8, 3);     // snooped read from core 1
    auto st = states();
    // Owner stays the responder; the peer holds a silent S-S copy.
    EXPECT_EQ(st.count("S-M(2,3)"), 1u);
    ASSERT_EQ(st.size(), 2u);
    EXPECT_NE(st.lower_bound("S-S")->find("S-S"), std::string::npos);
}

TEST_F(Fig4, EdgeCommit_Figure6)
{
    sys->load(0, kA, 8, 1);
    sys->store(0, kA, 9, 8, 1); // S-O(0,1) + S-M(1,1)
    sys->commit(1);
    sys->load(0, kA, 8, 0); // touch to reconcile lazily
    EXPECT_EQ(states(), (std::multiset<std::string>{"M(0,0)"}));
}

TEST_F(Fig4, EdgeAbort_Figure7)
{
    sys->load(0, kA, 8, 1);     // S-E(0,1)
    sys->store(0, kA, 9, 8, 1); // + S-O(0,1), S-M(1,1)
    sys->abortAll();
    auto st = states();
    // The uncommitted S-M flushed; the pristine data survives
    // non-speculatively (S-E had taken it clean).
    for (const auto& s : st)
        EXPECT_EQ(s.find("S-"), std::string::npos) << s;
    EXPECT_EQ(sys->load(1, kA, 8, 0).value, 7u);
}

} // namespace
} // namespace hmtx::sim
