/**
 * @file
 * Tests of the derived metrics in SysStats and the StatsReport
 * formatter.
 */

#include <gtest/gtest.h>

#include <cstring>

#include "sim/stats.hh"
#include "sim/stats_report.hh"

namespace hmtx::sim
{
namespace
{

TEST(SysStats, DerivedMetricsHandleZeroTransactions)
{
    SysStats s;
    EXPECT_EQ(s.avgReadSetKB(), 0.0);
    EXPECT_EQ(s.avgWriteSetKB(), 0.0);
    EXPECT_EQ(s.avgCombinedSetKB(), 0.0);
    EXPECT_EQ(s.avgSpecAccessesPerTx(), 0.0);
    EXPECT_EQ(s.slaNeededRate(), 0.0);
}

TEST(SysStats, SetSizesConvertLinesToKilobytes)
{
    SysStats s;
    s.committedTxs = 4;
    s.readSetLines = 64;  // 64 lines * 64 B = 4 kB over 4 TXs
    s.writeSetLines = 32;
    s.combinedSetLines = 80;
    EXPECT_DOUBLE_EQ(s.avgReadSetKB(), 1.0);
    EXPECT_DOUBLE_EQ(s.avgWriteSetKB(), 0.5);
    EXPECT_DOUBLE_EQ(s.avgCombinedSetKB(), 1.25);
}

TEST(SysStats, AccessAndSlaRates)
{
    SysStats s;
    s.committedTxs = 10;
    s.specLoads = 900;
    s.specStores = 100;
    s.slaNeeded = 90;
    EXPECT_DOUBLE_EQ(s.avgSpecAccessesPerTx(), 100.0);
    EXPECT_DOUBLE_EQ(s.slaNeededRate(), 0.1);
}

TEST(StatsReport, PrintsEveryStatGroup)
{
    SysStats s;
    s.loads = 123;
    s.commits = 7;
    s.slaNeeded = 3;
    s.specSpills = 2;
    s.committedTxs = 7;

    char buf[16384];
    std::memset(buf, 0, sizeof(buf));
    std::FILE* f = fmemopen(buf, sizeof(buf) - 1, "w");
    ASSERT_NE(f, nullptr);
    StatsReport(s).print(f);
    std::fclose(f);

    std::string out(buf);
    for (const char* key :
         {"mem.loads", "cache.l1MissRate", "fabric.busTxns",
          "hmtx.commits", "sla.needed", "overflow.specSpills",
          "tx.avgSpecAccesses"}) {
        EXPECT_NE(out.find(key), std::string::npos) << key;
    }
    EXPECT_NE(out.find("123"), std::string::npos);
    // Optional groups stay absent unless their stats are supplied.
    EXPECT_EQ(out.find("sim.parallel."), std::string::npos);
    EXPECT_EQ(out.find("sim.shard."), std::string::npos);
    EXPECT_EQ(out.find("config.txMode"), std::string::npos);
    EXPECT_EQ(out.find("sim.txmode."), std::string::npos);
    EXPECT_EQ(out.find("sim.fastpath."), std::string::npos);
}

TEST(StatsReport, EchoesTxModeConfigAndCounters)
{
    SysStats s;
    MachineConfig cfg;
    cfg.txMode = TxMode::BestEffort;
    cfg.btxMaxRetries = 3;
    cfg.btxAbortThreshold = 9;
    cfg.limitedSetK = 5;
    TxModeStats tx;
    tx.fallbackEntries = 4;
    tx.fallbackAccesses = 17;
    tx.fallbackCommits = 4;
    tx.fallbackCycles = 420;
    tx.retryAborts = 11;
    tx.earlyFallbacks = 1;
    tx.limitedSetAborts = 0;

    char buf[16384];
    std::memset(buf, 0, sizeof(buf));
    std::FILE* f = fmemopen(buf, sizeof(buf) - 1, "w");
    ASSERT_NE(f, nullptr);
    StatsReport(s, nullptr, nullptr, nullptr, &cfg, &tx).print(f);
    std::fclose(f);

    std::string out(buf);
    for (const char* key :
         {"config.txMode", "best-effort", "config.btxMaxRetries",
          "config.btxAbortThreshold", "config.limitedSetK",
          "sim.txmode.retryAborts", "sim.txmode.fallbackEntries",
          "sim.txmode.fallbackAccesses", "sim.txmode.fallbackCommits",
          "sim.txmode.fallbackCycles", "sim.txmode.fallbackWrapRemaps",
          "sim.txmode.earlyFallbacks",
          "sim.txmode.limitedSetAborts"}) {
        EXPECT_NE(out.find(key), std::string::npos) << key;
    }
}

TEST(StatsReport, PrintsParallelEngineGroupWhenGiven)
{
    SysStats s;
    ParStats p;
    p.workers = 3;
    p.threaded = true;
    p.windows = 10;
    p.events = 250;
    p.laneEvents = 200;
    p.sections = 40;
    p.intents = 160;
    p.barrierStalls = 5;

    char buf[16384];
    std::memset(buf, 0, sizeof(buf));
    std::FILE* f = fmemopen(buf, sizeof(buf) - 1, "w");
    ASSERT_NE(f, nullptr);
    StatsReport(s, nullptr, nullptr, &p).print(f);
    std::fclose(f);

    std::string out(buf);
    for (const char* key :
         {"sim.parallel.workers", "sim.parallel.threaded",
          "sim.parallel.windows", "sim.parallel.eventsPerWindow",
          "sim.parallel.laneEvents", "sim.parallel.sections",
          "sim.parallel.intents", "sim.parallel.barrierStalls",
          "sim.parallel.rollbacks", "sim.parallel.apply.batches",
          "sim.parallel.apply.applied", "sim.parallel.apply.conflicts",
          "sim.parallel.apply.serialFallbacks"}) {
        EXPECT_NE(out.find(key), std::string::npos) << key;
    }
    EXPECT_DOUBLE_EQ(p.eventsPerWindow(), 25.0);
}

TEST(ParStats, EventsPerWindowHandlesZeroWindows)
{
    ParStats p;
    EXPECT_EQ(p.eventsPerWindow(), 0.0);
}

TEST(StatsReport, PrintsFastPathGroupWhenGiven)
{
    SysStats s;
    FastStats f;
    f.attempts = 200;
    f.loadHits = 40;
    f.storeHits = 10;
    f.genRejections = 6;
    f.eventBypasses = 30;

    char buf[16384];
    std::memset(buf, 0, sizeof(buf));
    std::FILE* out_f = fmemopen(buf, sizeof(buf) - 1, "w");
    ASSERT_NE(out_f, nullptr);
    StatsReport(s, nullptr, nullptr, nullptr, nullptr, nullptr, &f)
        .print(out_f);
    std::fclose(out_f);

    std::string out(buf);
    for (const char* key :
         {"sim.fastpath.attempts", "sim.fastpath.hits",
          "sim.fastpath.loadHits", "sim.fastpath.storeHits",
          "sim.fastpath.genRejections", "sim.fastpath.eventBypasses",
          "sim.fastpath.hitRate"}) {
        EXPECT_NE(out.find(key), std::string::npos) << key;
    }
    EXPECT_EQ(f.hits(), 50u);
    EXPECT_DOUBLE_EQ(f.hitRate(), 0.25);
}

TEST(FastStats, HitRateHandlesZeroAttempts)
{
    FastStats f;
    EXPECT_EQ(f.hits(), 0u);
    EXPECT_EQ(f.hitRate(), 0.0);
}

} // namespace
} // namespace hmtx::sim
