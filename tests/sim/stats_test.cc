/**
 * @file
 * Tests of the derived metrics in SysStats and the StatsReport
 * formatter.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "sim/stats.hh"
#include "sim/stats_report.hh"

namespace hmtx::sim
{
namespace
{

TEST(SysStats, DerivedMetricsHandleZeroTransactions)
{
    SysStats s;
    EXPECT_EQ(s.avgReadSetKB(), 0.0);
    EXPECT_EQ(s.avgWriteSetKB(), 0.0);
    EXPECT_EQ(s.avgCombinedSetKB(), 0.0);
    EXPECT_EQ(s.avgSpecAccessesPerTx(), 0.0);
    EXPECT_EQ(s.slaNeededRate(), 0.0);
}

TEST(SysStats, SetSizesConvertLinesToKilobytes)
{
    SysStats s;
    s.committedTxs = 4;
    s.readSetLines = 64;  // 64 lines * 64 B = 4 kB over 4 TXs
    s.writeSetLines = 32;
    s.combinedSetLines = 80;
    EXPECT_DOUBLE_EQ(s.avgReadSetKB(), 1.0);
    EXPECT_DOUBLE_EQ(s.avgWriteSetKB(), 0.5);
    EXPECT_DOUBLE_EQ(s.avgCombinedSetKB(), 1.25);
}

TEST(SysStats, AccessAndSlaRates)
{
    SysStats s;
    s.committedTxs = 10;
    s.specLoads = 900;
    s.specStores = 100;
    s.slaNeeded = 90;
    EXPECT_DOUBLE_EQ(s.avgSpecAccessesPerTx(), 100.0);
    EXPECT_DOUBLE_EQ(s.slaNeededRate(), 0.1);
}

TEST(StatsReport, PrintsEveryStatGroup)
{
    SysStats s;
    s.loads = 123;
    s.commits = 7;
    s.slaNeeded = 3;
    s.specSpills = 2;
    s.committedTxs = 7;

    char buf[16384];
    std::memset(buf, 0, sizeof(buf));
    std::FILE* f = fmemopen(buf, sizeof(buf) - 1, "w");
    ASSERT_NE(f, nullptr);
    StatsReport(s).print(f);
    std::fclose(f);

    std::string out(buf);
    for (const char* key :
         {"mem.loads", "cache.l1MissRate", "fabric.busTxns",
          "hmtx.commits", "sla.needed", "overflow.specSpills",
          "tx.avgSpecAccesses"}) {
        EXPECT_NE(out.find(key), std::string::npos) << key;
    }
    EXPECT_NE(out.find("123"), std::string::npos);
    // Optional groups stay absent unless their stats are supplied.
    EXPECT_EQ(out.find("sim.parallel."), std::string::npos);
    EXPECT_EQ(out.find("sim.shard."), std::string::npos);
    EXPECT_EQ(out.find("config.txMode"), std::string::npos);
    EXPECT_EQ(out.find("sim.txmode."), std::string::npos);
    EXPECT_EQ(out.find("sim.fastpath."), std::string::npos);
    EXPECT_EQ(out.find("sim.serve."), std::string::npos);
}

TEST(StatsReport, EchoesTxModeConfigAndCounters)
{
    SysStats s;
    MachineConfig cfg;
    cfg.txMode = TxMode::BestEffort;
    cfg.btxMaxRetries = 3;
    cfg.btxAbortThreshold = 9;
    cfg.limitedSetK = 5;
    TxModeStats tx;
    tx.fallbackEntries = 4;
    tx.fallbackAccesses = 17;
    tx.fallbackCommits = 4;
    tx.fallbackCycles = 420;
    tx.retryAborts = 11;
    tx.earlyFallbacks = 1;
    tx.limitedSetAborts = 0;

    char buf[16384];
    std::memset(buf, 0, sizeof(buf));
    std::FILE* f = fmemopen(buf, sizeof(buf) - 1, "w");
    ASSERT_NE(f, nullptr);
    StatsReport(s, nullptr, nullptr, nullptr, &cfg, &tx).print(f);
    std::fclose(f);

    std::string out(buf);
    for (const char* key :
         {"config.txMode", "best-effort", "config.btxMaxRetries",
          "config.btxAbortThreshold", "config.limitedSetK",
          "sim.txmode.retryAborts", "sim.txmode.fallbackEntries",
          "sim.txmode.fallbackAccesses", "sim.txmode.fallbackCommits",
          "sim.txmode.fallbackCycles", "sim.txmode.fallbackWrapRemaps",
          "sim.txmode.earlyFallbacks",
          "sim.txmode.limitedSetAborts"}) {
        EXPECT_NE(out.find(key), std::string::npos) << key;
    }
}

TEST(StatsReport, PrintsParallelEngineGroupWhenGiven)
{
    SysStats s;
    ParStats p;
    p.workers = 3;
    p.threaded = true;
    p.windows = 10;
    p.events = 250;
    p.laneEvents = 200;
    p.sections = 40;
    p.intents = 160;
    p.barrierStalls = 5;

    char buf[16384];
    std::memset(buf, 0, sizeof(buf));
    std::FILE* f = fmemopen(buf, sizeof(buf) - 1, "w");
    ASSERT_NE(f, nullptr);
    StatsReport(s, nullptr, nullptr, &p).print(f);
    std::fclose(f);

    std::string out(buf);
    for (const char* key :
         {"sim.parallel.workers", "sim.parallel.threaded",
          "sim.parallel.windows", "sim.parallel.eventsPerWindow",
          "sim.parallel.laneEvents", "sim.parallel.sections",
          "sim.parallel.intents", "sim.parallel.barrierStalls",
          "sim.parallel.rollbacks", "sim.parallel.apply.batches",
          "sim.parallel.apply.applied", "sim.parallel.apply.conflicts",
          "sim.parallel.apply.serialFallbacks"}) {
        EXPECT_NE(out.find(key), std::string::npos) << key;
    }
    EXPECT_DOUBLE_EQ(p.eventsPerWindow(), 25.0);
}

TEST(ParStats, EventsPerWindowHandlesZeroWindows)
{
    ParStats p;
    EXPECT_EQ(p.eventsPerWindow(), 0.0);
}

TEST(StatsReport, PrintsFastPathGroupWhenGiven)
{
    SysStats s;
    FastStats f;
    f.attempts = 200;
    f.loadHits = 40;
    f.storeHits = 10;
    f.genRejections = 6;
    f.eventBypasses = 30;

    char buf[16384];
    std::memset(buf, 0, sizeof(buf));
    std::FILE* out_f = fmemopen(buf, sizeof(buf) - 1, "w");
    ASSERT_NE(out_f, nullptr);
    StatsReport(s, nullptr, nullptr, nullptr, nullptr, nullptr, &f)
        .print(out_f);
    std::fclose(out_f);

    std::string out(buf);
    for (const char* key :
         {"sim.fastpath.attempts", "sim.fastpath.hits",
          "sim.fastpath.loadHits", "sim.fastpath.storeHits",
          "sim.fastpath.genRejections", "sim.fastpath.eventBypasses",
          "sim.fastpath.hitRate"}) {
        EXPECT_NE(out.find(key), std::string::npos) << key;
    }
    EXPECT_EQ(f.hits(), 50u);
    EXPECT_DOUBLE_EQ(f.hitRate(), 0.25);
}

TEST(FastStats, HitRateHandlesZeroAttempts)
{
    FastStats f;
    EXPECT_EQ(f.hits(), 0u);
    EXPECT_EQ(f.hitRate(), 0.0);
}

TEST(StatsReport, PrintsServeGroupWhenGiven)
{
    SysStats s;
    ServeStats sv;
    sv.requests = 100;
    sv.issued = 120;
    sv.committed = 100;
    sv.aborted = 20;
    sv.drains = 4;
    sv.windowResets = 2;
    sv.batches = 3;
    for (std::uint64_t i = 1; i <= 100; ++i)
        sv.latency.record(i * 10);

    char buf[16384];
    std::memset(buf, 0, sizeof(buf));
    std::FILE* out_f = fmemopen(buf, sizeof(buf) - 1, "w");
    ASSERT_NE(out_f, nullptr);
    StatsReport(s, nullptr, nullptr, nullptr, nullptr, nullptr,
                nullptr, &sv)
        .print(out_f);
    std::fclose(out_f);

    std::string out(buf);
    for (const char* key :
         {"sim.serve.requests", "sim.serve.issued",
          "sim.serve.committed", "sim.serve.aborted",
          "sim.serve.drains", "sim.serve.nonSpecFallbacks",
          "sim.serve.windowResets", "sim.serve.batches",
          "sim.serve.idleCycles", "sim.serve.latencyP50",
          "sim.serve.latencyP99", "sim.serve.latencyP999",
          "sim.serve.latencyMax", "sim.serve.latencyMean"}) {
        EXPECT_NE(out.find(key), std::string::npos) << key;
    }
    EXPECT_TRUE(sv.consistent());
    sv.aborted = 19; // attempt lost without commit or abort
    EXPECT_FALSE(sv.consistent());
}

TEST(LatencyHistogram, ExactBucketsBelowThirtyTwo)
{
    // Values under 2^(kSubBits+1) get single-value buckets, so small
    // latencies suffer zero quantization.
    for (std::uint64_t v = 0; v < 32; ++v) {
        EXPECT_EQ(LatencyHistogram::bucketOf(v), v);
        EXPECT_EQ(LatencyHistogram::bucketFloor(v), v);
    }
}

TEST(LatencyHistogram, BucketBoundsInvertAndStayOrdered)
{
    // lowerBoundOf must invert bucketOf on every bucket boundary, and
    // bucket indexes must be monotone in the value.
    for (unsigned b = 0; b < LatencyHistogram::kBuckets; ++b) {
        const std::uint64_t lo = LatencyHistogram::lowerBoundOf(b);
        EXPECT_EQ(LatencyHistogram::bucketOf(lo), b) << "bucket " << b;
        if (lo > 0)
            EXPECT_EQ(LatencyHistogram::bucketOf(lo - 1), b - 1);
    }
    EXPECT_EQ(LatencyHistogram::bucketOf(~std::uint64_t{0}),
              LatencyHistogram::kBuckets - 1);
}

TEST(LatencyHistogram, QuantizationErrorIsBounded)
{
    // Log-linear with 16 sub-buckets per octave: the bucket floor is
    // never more than 1/16 (~6.25%) below the sample.
    for (std::uint64_t v : {37ull, 100ull, 999ull, 4096ull, 65537ull,
                            1000000ull, 123456789ull}) {
        const std::uint64_t f = LatencyHistogram::bucketFloor(v);
        EXPECT_LE(f, v);
        EXPECT_LT(static_cast<double>(v - f),
                  static_cast<double>(v) / 16.0 + 1.0)
            << v;
    }
}

TEST(LatencyHistogram, PercentilesMatchSortBasedRecompute)
{
    // Streaming percentiles must equal the nearest-rank percentile of
    // the full sorted sample list after identical bucketization — the
    // exactness contract the kv_serve smoke test relies on.
    LatencyHistogram h;
    std::vector<std::uint64_t> vals;
    std::uint64_t x = 88172645463325252ull;
    for (int i = 0; i < 10000; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        const std::uint64_t v = x % 2000000;
        vals.push_back(v);
        h.record(v);
    }
    std::sort(vals.begin(), vals.end());
    EXPECT_EQ(h.count(), vals.size());
    EXPECT_EQ(h.max(), vals.back());
    EXPECT_EQ(h.min(), vals.front());
    for (double q : {0.5, 0.9, 0.99, 0.999, 1.0}) {
        const auto rank = static_cast<std::size_t>(
            std::ceil(q * static_cast<double>(vals.size())));
        EXPECT_EQ(h.percentile(q),
                  LatencyHistogram::bucketFloor(vals[rank - 1]))
            << "q=" << q;
    }
}

TEST(LatencyHistogram, MergeFoldsCounts)
{
    LatencyHistogram a, b;
    for (std::uint64_t v = 1; v <= 50; ++v)
        a.record(v);
    for (std::uint64_t v = 51; v <= 100; ++v)
        b.record(v);
    a.merge(b);
    EXPECT_EQ(a.count(), 100u);
    EXPECT_EQ(a.min(), 1u);
    EXPECT_EQ(a.max(), 100u);
    EXPECT_EQ(a.percentile(0.5), LatencyHistogram::bucketFloor(50));
}

TEST(LatencyHistogram, EmptyHistogramIsAllZero)
{
    LatencyHistogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 0u);
    EXPECT_EQ(h.mean(), 0.0);
    EXPECT_EQ(h.percentile(0.5), 0u);
}

} // namespace
} // namespace hmtx::sim
