/**
 * @file
 * Unit tests of the OverflowTable container.
 */

#include <gtest/gtest.h>

#include "sim/overflow_table.hh"

namespace hmtx::sim
{
namespace
{

Line
mkLine(Addr base, State st, Vid m, Vid h)
{
    Line l;
    l.base = base;
    l.state = st;
    l.tag = {m, h};
    return l;
}

TEST(OverflowTable, SpillAndLookup)
{
    OverflowTable t;
    t.spill(mkLine(0x100, State::SpecModified, 3, 3), LineData{});
    t.spill(mkLine(0x100, State::SpecOwned, 1, 3), LineData{});
    t.spill(mkLine(0x200, State::SpecModified, 2, 2), LineData{});

    ASSERT_NE(t.versionsOf(0x100), nullptr);
    EXPECT_EQ(t.versionsOf(0x100)->lines.size(), 2u);
    EXPECT_EQ(t.versionsOf(0x200)->lines.size(), 1u);
    EXPECT_EQ(t.versionsOf(0x300), nullptr);
    EXPECT_EQ(t.size(), 3u);
    EXPECT_EQ(t.spills(), 3u);
}

TEST(OverflowTable, RemoveErasesEmptyBuckets)
{
    OverflowTable t;
    t.spill(mkLine(0x100, State::SpecModified, 3, 3), LineData{});
    t.remove(0x100, 0);
    EXPECT_EQ(t.versionsOf(0x100), nullptr);
    EXPECT_EQ(t.refills(), 1u);
    EXPECT_EQ(t.size(), 0u);
}

TEST(OverflowTable, ForEachDropsInvalidatedEntries)
{
    OverflowTable t;
    t.spill(mkLine(0x100, State::SpecModified, 3, 3), LineData{});
    t.spill(mkLine(0x100, State::SpecOwned, 1, 3), LineData{});
    t.spill(mkLine(0x200, State::SpecModified, 2, 2), LineData{});
    t.forEach([](Line& l, LineData&) {
        if (l.state == State::SpecOwned)
            l.state = State::Invalid;
    });
    EXPECT_EQ(t.size(), 2u);
    t.forEach([](Line& l, LineData&) { l.state = State::Invalid; });
    EXPECT_EQ(t.size(), 0u);
    EXPECT_EQ(t.versionsOf(0x100), nullptr);
}

TEST(OverflowTable, DataSurvivesRoundTrip)
{
    OverflowTable t;
    Line l = mkLine(0x140, State::SpecModified, 5, 5);
    l.dirty = true;
    LineData d{};
    d[7] = 0xAB;
    t.spill(l, d);
    auto* vs = t.versionsOf(0x140);
    ASSERT_NE(vs, nullptr);
    EXPECT_EQ(vs->data[0][7], 0xAB);
    EXPECT_TRUE(vs->lines[0].dirty);
    EXPECT_EQ(vs->lines[0].tag, (VersionTag{5, 5}));
}

} // namespace
} // namespace hmtx::sim
