/**
 * @file
 * Unit tests of the OverflowTable container.
 */

#include <gtest/gtest.h>

#include "sim/overflow_table.hh"

namespace hmtx::sim
{
namespace
{

Line
mkLine(Addr base, State st, Vid m, Vid h)
{
    Line l;
    l.base = base;
    l.state = st;
    l.tag = {m, h};
    return l;
}

TEST(OverflowTable, SpillAndLookup)
{
    OverflowTable t;
    t.spill(mkLine(0x100, State::SpecModified, 3, 3));
    t.spill(mkLine(0x100, State::SpecOwned, 1, 3));
    t.spill(mkLine(0x200, State::SpecModified, 2, 2));

    ASSERT_NE(t.versionsOf(0x100), nullptr);
    EXPECT_EQ(t.versionsOf(0x100)->size(), 2u);
    EXPECT_EQ(t.versionsOf(0x200)->size(), 1u);
    EXPECT_EQ(t.versionsOf(0x300), nullptr);
    EXPECT_EQ(t.size(), 3u);
    EXPECT_EQ(t.spills(), 3u);
}

TEST(OverflowTable, RemoveErasesEmptyBuckets)
{
    OverflowTable t;
    t.spill(mkLine(0x100, State::SpecModified, 3, 3));
    t.remove(0x100, 0);
    EXPECT_EQ(t.versionsOf(0x100), nullptr);
    EXPECT_EQ(t.refills(), 1u);
    EXPECT_EQ(t.size(), 0u);
}

TEST(OverflowTable, ForEachDropsInvalidatedEntries)
{
    OverflowTable t;
    t.spill(mkLine(0x100, State::SpecModified, 3, 3));
    t.spill(mkLine(0x100, State::SpecOwned, 1, 3));
    t.spill(mkLine(0x200, State::SpecModified, 2, 2));
    t.forEach([](Line& l) {
        if (l.state == State::SpecOwned)
            l.state = State::Invalid;
    });
    EXPECT_EQ(t.size(), 2u);
    t.forEach([](Line& l) { l.state = State::Invalid; });
    EXPECT_EQ(t.size(), 0u);
    EXPECT_EQ(t.versionsOf(0x100), nullptr);
}

TEST(OverflowTable, DataSurvivesRoundTrip)
{
    OverflowTable t;
    Line l = mkLine(0x140, State::SpecModified, 5, 5);
    l.dirty = true;
    l.data[7] = 0xAB;
    t.spill(l);
    auto* vs = t.versionsOf(0x140);
    ASSERT_NE(vs, nullptr);
    EXPECT_EQ((*vs)[0].data[7], 0xAB);
    EXPECT_TRUE((*vs)[0].dirty);
    EXPECT_EQ((*vs)[0].tag, (VersionTag{5, 5}));
}

} // namespace
} // namespace hmtx::sim
