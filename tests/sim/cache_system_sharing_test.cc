/**
 * @file
 * Tests of efficient read-sharing of speculative data (§4.1): S-S
 * copies of the latest version serve later VIDs locally (no bus
 * traffic per transaction), record reads as distributed marks that
 * store broadcasts aggregate, and never plant wrong-path marks.
 */

#include <gtest/gtest.h>

#include "sim/cache_system.hh"
#include "sim/event_queue.hh"

namespace hmtx::sim
{
namespace
{

MachineConfig
smallConfig()
{
    MachineConfig cfg;
    cfg.l2SizeKB = 256;
    return cfg;
}

class SharingFixture : public ::testing::Test
{
  protected:
    SharingFixture() : sys(eq, smallConfig()) {}

    EventQueue eq;
    CacheSystem sys;
};

TEST_F(SharingFixture, LatestCopyServesLaterVidsLocally)
{
    // Read-only shared data (a dictionary, weight matrix, ...):
    // core 0 owns it, core 1 reads it from transaction after
    // transaction. Only the first read may cross the bus.
    sys.memory().write(0x100, 7, 8);
    sys.load(0, 0x100, 8, 1); // owner marking at core 0

    AccessResult first = sys.load(1, 0x100, 8, 2);
    EXPECT_FALSE(first.l1Hit);
    for (Vid v = 3; v <= 10; ++v) {
        AccessResult r = sys.load(1, 0x100, 8, v);
        EXPECT_TRUE(r.l1Hit) << "vid " << v;
        EXPECT_EQ(r.value, 7u);
    }
}

TEST_F(SharingFixture, DistributedReadMarksAbortConflictingStores)
{
    // The read of VID 5 lands on core 1's local copy, not the owner;
    // a VID-3 store must still detect it (§4.3 via aggregation).
    sys.memory().write(0x140, 1, 8);
    sys.load(0, 0x140, 8, 1);
    sys.load(1, 0x140, 8, 2); // creates the local copy at core 1
    AccessResult r5 = sys.load(1, 0x140, 8, 5);
    ASSERT_TRUE(r5.l1Hit); // served by the local copy

    AccessResult st = sys.store(2, 0x140, 9, 8, 3);
    EXPECT_TRUE(st.aborted);
}

TEST_F(SharingFixture, SupersededCopyStopsServingLaterVids)
{
    sys.memory().write(0x180, 1, 8);
    sys.load(0, 0x180, 8, 1);
    sys.load(1, 0x180, 8, 2); // copy at core 1
    ASSERT_FALSE(sys.store(2, 0x180, 50, 8, 6).aborted);
    // VID 7 must see the new version, not core 1's stale copy.
    EXPECT_EQ(sys.load(1, 0x180, 8, 7).value, 50u);
    // VID 3 still sees the pristine version.
    EXPECT_EQ(sys.load(1, 0x180, 8, 3).value, 1u);
    sys.checkInvariants();
}

TEST_F(SharingFixture, WrongPathLoadPlantsNoMarkOnCopies)
{
    // A squashed wrong-path load from VID 24 pulls a copy into its
    // cache; an earlier store must not falsely abort (§5.1).
    sys.memory().write(0x1c0, 1, 8);
    sys.load(0, 0x1c0, 8, 1);
    sys.load(1, 0x1c0, 8, 24, /*wrongPath=*/true);
    AccessResult st = sys.store(2, 0x1c0, 9, 8, 3);
    EXPECT_FALSE(st.aborted);
    EXPECT_EQ(sys.stats().avoidedAborts, 1u);
}

TEST_F(SharingFixture, NonSpecStoreSeesDistributedMarks)
{
    // Committed code writing data a live transaction read through a
    // peer copy must abort conservatively.
    sys.memory().write(0x200, 1, 8);
    sys.load(0, 0x200, 8, 1);
    sys.load(1, 0x200, 8, 4); // mark lives on core 1's copy
    AccessResult st = sys.store(2, 0x200, 9, 8, 0);
    EXPECT_TRUE(st.aborted);
}

TEST_F(SharingFixture, CopiesDieOnAbortAndReset)
{
    sys.memory().write(0x240, 1, 8);
    sys.load(0, 0x240, 8, 1);
    sys.load(1, 0x240, 8, 2);
    sys.abortAll();
    sys.checkInvariants();
    // Replay works and the copy re-forms.
    EXPECT_EQ(sys.load(1, 0x240, 8, 1).value, 1u);
    sys.commit(1);
    sys.commit(2);
    sys.vidReset();
    sys.checkInvariants();
    EXPECT_EQ(sys.load(1, 0x240, 8, 1).value, 1u);
}

TEST_F(SharingFixture, CopiesSurviveCommitsForLaterTransactions)
{
    // The whole point: a committed transaction's copy keeps serving
    // the next transactions without bus traffic.
    sys.memory().write(0x280, 5, 8);
    sys.load(0, 0x280, 8, 1);
    sys.load(1, 0x280, 8, 1);
    sys.commit(1);
    AccessResult r = sys.load(1, 0x280, 8, 2);
    EXPECT_TRUE(r.l1Hit);
    EXPECT_EQ(r.value, 5u);
}

} // namespace
} // namespace hmtx::sim
