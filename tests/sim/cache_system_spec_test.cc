/**
 * @file
 * Tests of the speculative HMTX protocol behaviour: uncommitted value
 * forwarding, dependence-violation detection (§4.3, both temporal
 * orders of every dependence kind), group commit (§4.4), abort
 * rollback, VID reset (§4.6), and the Figure 5 walkthrough.
 */

#include <gtest/gtest.h>

#include "sim/cache_system.hh"
#include "sim/event_queue.hh"

namespace hmtx::sim
{
namespace
{

MachineConfig
smallConfig()
{
    MachineConfig cfg;
    cfg.l2SizeKB = 256;
    return cfg;
}

class SpecFixture : public ::testing::Test
{
  protected:
    SpecFixture() : sys(eq, smallConfig()) {}

    /** Initializes committed memory directly. */
    void seed(Addr a, std::uint64_t v) { sys.memory().write(a, v, 8); }

    EventQueue eq;
    CacheSystem sys;
};

// --- Uncommitted value forwarding (§3, requirement 2) -------------------

TEST_F(SpecFixture, ForwardingToSameVidOnAnotherCore)
{
    // Stage 1 (core 0) speculatively stores; stage 2 (core 1)
    // continues the same transaction and must see the value even
    // though nothing committed.
    seed(0x100, 1);
    ASSERT_FALSE(sys.store(0, 0x100, 42, 8, 1).aborted);
    AccessResult r = sys.load(1, 0x100, 8, 1);
    EXPECT_FALSE(r.aborted);
    EXPECT_EQ(r.value, 42u);
    EXPECT_EQ(sys.memory().read(0x100, 8), 1u); // memory untouched
}

TEST_F(SpecFixture, ForwardingToLaterVids)
{
    seed(0x100, 1);
    sys.store(0, 0x100, 42, 8, 1);
    EXPECT_EQ(sys.load(1, 0x100, 8, 2).value, 42u);
    EXPECT_EQ(sys.load(2, 0x100, 8, 5).value, 42u);
}

TEST_F(SpecFixture, EarlierVidsSeePristineVersion)
{
    // A write by VID 3 must stay invisible to VID 2 (write-after-read
    // ordering by VID, §4.2).
    seed(0x140, 7);
    sys.store(0, 0x140, 99, 8, 3);
    EXPECT_EQ(sys.load(1, 0x140, 8, 2).value, 7u);
    // And the non-speculative view is the committed one.
    EXPECT_EQ(sys.load(2, 0x140, 8, 0).value, 7u);
}

TEST_F(SpecFixture, ChainedVersionsServeTheRightVids)
{
    seed(0x180, 10);
    sys.store(0, 0x180, 11, 8, 1);
    sys.store(1, 0x180, 12, 8, 2);
    sys.store(2, 0x180, 13, 8, 4);
    EXPECT_EQ(sys.load(3, 0x180, 8, 1).value, 11u);
    EXPECT_EQ(sys.load(3, 0x180, 8, 2).value, 12u);
    EXPECT_EQ(sys.load(3, 0x180, 8, 3).value, 12u);
    EXPECT_EQ(sys.load(3, 0x180, 8, 4).value, 13u);
    EXPECT_EQ(sys.load(3, 0x180, 8, 63).value, 13u);
    sys.checkInvariants();
}

// --- Dependence violations (§4.3) ----------------------------------------

TEST_F(SpecFixture, FlowDependenceStoreFirstForwards)
{
    // s_x then l_y with x < y: forwarding, no abort.
    seed(0x200, 0);
    sys.store(0, 0x200, 5, 8, 2);
    AccessResult r = sys.load(1, 0x200, 8, 3);
    EXPECT_FALSE(r.aborted);
    EXPECT_EQ(r.value, 5u);
    EXPECT_EQ(sys.stats().aborts, 0u);
}

TEST_F(SpecFixture, FlowDependenceLoadFirstAborts)
{
    // l_y then s_x with x < y: the load saw stale data; abort (§4.3).
    seed(0x200, 0);
    sys.load(1, 0x200, 8, 3);
    AccessResult r = sys.store(0, 0x200, 5, 8, 2);
    EXPECT_TRUE(r.aborted);
    EXPECT_EQ(sys.stats().aborts, 1u);
}

TEST_F(SpecFixture, AntiDependenceEitherOrderSucceeds)
{
    // l_x and s_y with x < y never conflict (§4.3).
    seed(0x240, 1);
    sys.load(0, 0x240, 8, 2);
    EXPECT_FALSE(sys.store(1, 0x240, 9, 8, 3).aborted);
    EXPECT_EQ(sys.load(2, 0x240, 8, 2).value, 1u);

    seed(0x280, 4);
    sys.store(0, 0x280, 9, 8, 3);
    AccessResult r = sys.load(1, 0x280, 8, 2);
    EXPECT_FALSE(r.aborted);
    EXPECT_EQ(r.value, 4u); // pristine version feeds the earlier VID
    EXPECT_EQ(sys.stats().aborts, 0u);
}

TEST_F(SpecFixture, OutputDependenceInOrderSucceeds)
{
    seed(0x2c0, 0);
    EXPECT_FALSE(sys.store(0, 0x2c0, 1, 8, 2).aborted);
    EXPECT_FALSE(sys.store(1, 0x2c0, 2, 8, 3).aborted);
    EXPECT_EQ(sys.load(2, 0x2c0, 8, 2).value, 1u);
    EXPECT_EQ(sys.load(2, 0x2c0, 8, 3).value, 2u);
}

TEST_F(SpecFixture, OutputDependenceOutOfOrderAborts)
{
    seed(0x2c0, 0);
    sys.store(0, 0x2c0, 2, 8, 3);
    AccessResult r = sys.store(1, 0x2c0, 1, 8, 2);
    EXPECT_TRUE(r.aborted);
}

TEST_F(SpecFixture, SameVidFromTwoCoresCollaborates)
{
    // Two threads of one MTX write the same line in turn: allowed,
    // the version migrates (§3).
    seed(0x300, 0);
    EXPECT_FALSE(sys.store(0, 0x300, 1, 8, 1).aborted);
    EXPECT_FALSE(sys.store(1, 0x300, 2, 8, 1).aborted);
    EXPECT_FALSE(sys.store(0, 0x308, 3, 8, 1).aborted);
    EXPECT_EQ(sys.load(2, 0x300, 8, 1).value, 2u);
    EXPECT_EQ(sys.load(2, 0x308, 8, 1).value, 3u);
    sys.checkInvariants();
}

TEST_F(SpecFixture, NonSpecStoreToLiveSpecDataAborts)
{
    seed(0x340, 0);
    sys.load(0, 0x340, 8, 2);
    AccessResult r = sys.store(1, 0x340, 9, 8, 0);
    EXPECT_TRUE(r.aborted);
}

// --- Group commit (§4.4) ---------------------------------------------------

TEST_F(SpecFixture, GroupCommitPublishesAllCoresWrites)
{
    // One transaction, two threads on two cores, writes in both
    // caches; a single commitMTX must atomically publish everything.
    seed(0x400, 0);
    seed(0x440, 0);
    sys.store(0, 0x400, 10, 8, 1);
    sys.store(1, 0x440, 20, 8, 1);
    // Invisible to the non-speculative view before commit.
    EXPECT_EQ(sys.load(2, 0x400, 8, 0).value, 0u);
    EXPECT_EQ(sys.load(3, 0x440, 8, 0).value, 0u);

    sys.commit(1);
    EXPECT_EQ(sys.load(2, 0x400, 8, 0).value, 10u);
    EXPECT_EQ(sys.load(3, 0x440, 8, 0).value, 20u);
    sys.checkInvariants();
}

TEST_F(SpecFixture, CommitsMustBeConsecutive)
{
    sys.store(0, 0x480, 1, 8, 1);
    sys.store(0, 0x4c0, 2, 8, 2);
    EXPECT_THROW(sys.commit(2), std::logic_error);
    EXPECT_NO_THROW(sys.commit(1));
    EXPECT_NO_THROW(sys.commit(2));
}

TEST_F(SpecFixture, CommittedDataReachesMemoryOnFlush)
{
    seed(0x500, 3);
    sys.store(0, 0x500, 8, 8, 1);
    sys.commit(1);
    sys.flushDirtyToMemory();
    EXPECT_EQ(sys.memory().read(0x500, 8), 8u);
}

TEST_F(SpecFixture, CommitKeepsLaterSpeculativeVersions)
{
    seed(0x540, 0);
    sys.store(0, 0x540, 1, 8, 1);
    sys.store(1, 0x540, 2, 8, 2);
    sys.commit(1);
    // VID 2 is still speculative: non-speculative view sees VID 1's
    // committed value; VID 2 still sees its own.
    EXPECT_EQ(sys.load(2, 0x540, 8, 0).value, 1u);
    EXPECT_EQ(sys.load(3, 0x540, 8, 2).value, 2u);
    sys.commit(2);
    EXPECT_EQ(sys.load(2, 0x540, 8, 0).value, 2u);
}

// --- Abort rollback ----------------------------------------------------------

TEST_F(SpecFixture, AbortRollsBackToCommittedState)
{
    seed(0x600, 100);
    sys.store(0, 0x600, 200, 8, 1);
    sys.store(1, 0x604, 300, 4, 1);
    sys.abortAll();
    EXPECT_EQ(sys.load(0, 0x600, 8, 0).value, 100u);
    EXPECT_EQ(sys.load(1, 0x604, 4, 0).value, 0u);
    sys.checkInvariants();
}

TEST_F(SpecFixture, AbortPreservesEarlierCommits)
{
    seed(0x640, 1);
    sys.store(0, 0x640, 2, 8, 1);
    sys.commit(1);
    sys.store(1, 0x640, 3, 8, 2);
    sys.abortAll();
    EXPECT_EQ(sys.load(2, 0x640, 8, 0).value, 2u);
}

TEST_F(SpecFixture, ExecutionContinuesAfterAbort)
{
    seed(0x680, 5);
    sys.store(0, 0x680, 6, 8, 1);
    sys.abortAll();
    // Replay with the same VID succeeds and commits.
    EXPECT_FALSE(sys.store(0, 0x680, 7, 8, 1).aborted);
    sys.commit(1);
    EXPECT_EQ(sys.load(1, 0x680, 8, 0).value, 7u);
}

// --- VID reset (§4.6) ----------------------------------------------------------

TEST_F(SpecFixture, VidResetAllowsWindowReuse)
{
    seed(0x700, 0);
    sys.store(0, 0x700, 1, 8, 1);
    sys.commit(1);
    sys.store(0, 0x740, 2, 8, 2);
    sys.commit(2);

    sys.vidReset();
    EXPECT_EQ(sys.lcVid(), 0u);
    // VID 1 is usable again; it must see all previously committed
    // state and commit cleanly.
    EXPECT_EQ(sys.load(1, 0x700, 8, 1).value, 1u);
    EXPECT_FALSE(sys.store(1, 0x700, 9, 8, 1).aborted);
    sys.commit(1);
    EXPECT_EQ(sys.load(2, 0x700, 8, 0).value, 9u);
    sys.checkInvariants();
}

/**
 * The §4.6 reset protocol is interconnect traffic like any other
 * broadcast: replay the window-reuse sequence on the directory
 * fabric and require the same architectural outcome, with the lazy
 * LC watermark (§5.3) back at zero.
 */
TEST(VidResetDirectory, WindowReuseOnDirectoryFabric)
{
    MachineConfig cfg = smallConfig();
    cfg.fabric = Fabric::Directory;
    cfg.dirBanks = 8;
    EventQueue eq;
    CacheSystem sys(eq, cfg);

    sys.store(0, 0x700, 1, 8, 1);
    sys.commit(1);
    sys.store(0, 0x740, 2, 8, 2);
    sys.commit(2);

    sys.vidReset();
    EXPECT_EQ(sys.lcVid(), 0u);
    EXPECT_EQ(sys.load(1, 0x700, 8, 1).value, 1u);
    EXPECT_FALSE(sys.store(1, 0x700, 9, 8, 1).aborted);
    sys.commit(1);
    EXPECT_EQ(sys.load(2, 0x700, 8, 0).value, 9u);
    EXPECT_GT(sys.stats().dirLookups, 0u);
    sys.checkInvariants();
}

// --- Figure 5 walkthrough --------------------------------------------------------

/**
 * Replays the exact instruction sequence of Figure 5 (two threads of
 * the Figure 3 linked-list pipeline touching address 0xa's line) and
 * checks the observable behaviour at each step.
 */
TEST_F(SpecFixture, Figure5Trace)
{
    const Addr a = 0xa00; // "0xa" in the figure
    seed(a, 0xBEEF);

    // (1) Thread 1, TX 1: r1 = M[0xa]. Line becomes S-E(0,1).
    AccessResult r1 = sys.load(0, a, 8, 1);
    EXPECT_EQ(r1.value, 0xBEEFu);

    // (2) Thread 1, TX 1: M[0xa] = ... Creates S-O(0,1) + S-M(1,1).
    ASSERT_FALSE(sys.store(0, a, 0x1111, 8, 1).aborted);

    // (3) Thread 1, TX 2: load + store with VID 2.
    EXPECT_EQ(sys.load(0, a, 8, 2).value, 0x1111u);
    ASSERT_FALSE(sys.store(0, a, 0x2222, 8, 2).aborted);
    // Three conceptual versions now exist: pristine, VID 1's, VID 2's.

    // (4) Thread 2, TX 1: the load broadcasts and hits the S-O(1,2)
    // version in cache 1 — uncommitted value forwarding of VID 1's
    // data, not VID 2's.
    AccessResult r4 = sys.load(1, a, 8, 1);
    EXPECT_EQ(r4.value, 0x1111u);

    // An access with VID >= 2 sees VID 2's version.
    EXPECT_EQ(sys.load(1, a, 8, 2).value, 0x2222u);

    // (5) Thread 2 commits TX 1: the pristine S-O(0,1) dies, VID 1's
    // version becomes the committed one, VID 2's stays speculative.
    sys.commit(1);
    EXPECT_EQ(sys.load(2, a, 8, 0).value, 0x1111u);
    EXPECT_EQ(sys.load(3, a, 8, 2).value, 0x2222u);

    sys.commit(2);
    EXPECT_EQ(sys.load(2, a, 8, 0).value, 0x2222u);
    sys.checkInvariants();
}

// --- R/W set accounting (Figure 9) -------------------------------------------------

TEST_F(SpecFixture, ReadWriteSetsAccumulateAtCommit)
{
    seed(0x800, 0);
    sys.load(0, 0x800, 8, 1);
    sys.load(0, 0x840, 8, 1);
    sys.load(0, 0x844, 8, 1); // same line as 0x840
    sys.store(0, 0x880, 1, 8, 1);
    sys.commit(1);
    EXPECT_EQ(sys.stats().readSetLines, 2u);
    EXPECT_EQ(sys.stats().writeSetLines, 1u);
    EXPECT_EQ(sys.stats().combinedSetLines, 3u);
    EXPECT_EQ(sys.stats().committedTxs, 1u);
}

} // namespace
} // namespace hmtx::sim
