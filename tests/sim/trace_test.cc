/**
 * @file
 * Tests of the trace facility and its protocol hook points.
 */

#include <gtest/gtest.h>

#include "sim/cache_system.hh"
#include "sim/event_queue.hh"
#include "sim/trace.hh"

namespace hmtx::sim
{
namespace
{

TEST(Trace, DisabledByDefaultAndCheap)
{
    Trace tr;
    tr.event(TraceProtocol, 0, "should not record %d", 1);
    EXPECT_EQ(tr.recorded(), 0u);
    EXPECT_TRUE(tr.entries().empty());
}

TEST(Trace, RecordsEnabledCategoriesOnly)
{
    Trace tr(TraceCommit);
    tr.event(TraceCommit, 10, "commit %u", 3);
    tr.event(TraceProtocol, 11, "ignored");
    ASSERT_EQ(tr.entries().size(), 1u);
    EXPECT_EQ(tr.entries().front().text, "commit 3");
    EXPECT_EQ(tr.entries().front().when, 10u);
}

TEST(Trace, RingDropsOldestBeyondCapacity)
{
    Trace tr(TraceAll, 4);
    for (int i = 0; i < 10; ++i)
        tr.event(TraceRuntime, i, "e%d", i);
    EXPECT_EQ(tr.entries().size(), 4u);
    EXPECT_EQ(tr.entries().front().text, "e6");
    EXPECT_EQ(tr.dropped(), 6u);
    EXPECT_EQ(tr.recorded(), 10u);
}

TEST(Trace, CacheSystemEmitsProtocolEvents)
{
    EventQueue eq;
    MachineConfig cfg;
    cfg.l2SizeKB = 256;
    cfg.traceFlags = TraceAll;
    CacheSystem sys(eq, cfg);

    sys.store(0, 0x100, 1, 8, 1);
    sys.commit(1);
    EXPECT_GE(sys.trace().recorded(), 2u); // new version + commit

    bool sawVersion = false, sawCommit = false;
    for (const auto& e : sys.trace().entries()) {
        if (e.text.find("new version") != std::string::npos)
            sawVersion = true;
        if (e.text.find("commit VID 1") != std::string::npos)
            sawCommit = true;
    }
    EXPECT_TRUE(sawVersion);
    EXPECT_TRUE(sawCommit);
}

TEST(Trace, AbortsAreTraced)
{
    EventQueue eq;
    MachineConfig cfg;
    cfg.l2SizeKB = 256;
    cfg.traceFlags = TraceCommit;
    CacheSystem sys(eq, cfg);

    sys.load(0, 0x200, 8, 3);
    sys.store(1, 0x200, 1, 8, 2); // flow violation
    bool sawAbort = false;
    for (const auto& e : sys.trace().entries())
        if (e.text.find("ABORT") != std::string::npos)
            sawAbort = true;
    EXPECT_TRUE(sawAbort);
}

} // namespace
} // namespace hmtx::sim
