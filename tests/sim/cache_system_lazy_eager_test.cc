/**
 * @file
 * Property tests that the lazy commit/abort scheme (§5.3) is
 * observationally equivalent to the naive eager scheme (§4.4): same
 * load values, same abort decisions, same final memory image — only
 * the processing cost differs.
 */

#include <gtest/gtest.h>

#include <map>
#include <tuple>
#include <vector>

#include "sim/cache_system.hh"
#include "sim/event_queue.hh"
#include "sim/rng.hh"

namespace hmtx::sim
{
namespace
{

MachineConfig
config(bool lazy, bool tiny, Fabric fabric = Fabric::SnoopBus)
{
    MachineConfig cfg;
    cfg.txMode = lazy ? TxMode::LazyHmtx : TxMode::EagerHmtx;
    cfg.fabric = fabric;
    if (fabric == Fabric::Directory)
        cfg.dirBanks = 8;
    if (tiny) {
        cfg.l1SizeKB = 1;
        cfg.l1Assoc = 2;
        cfg.l2SizeKB = 8;
        cfg.l2Assoc = 8;
    } else {
        cfg.l2SizeKB = 256;
    }
    return cfg;
}

/** One recorded trace event for replay against both schemes. */
struct Op
{
    enum Kind { Load, Store, Commit } kind;
    CoreId core = 0;
    Addr addr = 0;
    std::uint64_t value = 0;
    Vid vid = 0;
};

std::vector<Op>
makeTrace(std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<Op> ops;
    std::vector<Addr> addrs;
    for (unsigned i = 0; i < 16; ++i)
        addrs.push_back(0x40000 + i * 64);

    std::map<Addr, Vid> maxAccessor;
    const unsigned window = 6;
    Vid next = 1;
    for (unsigned round = 0; round < 5; ++round) {
        Vid lo = round * window + 1;
        for (unsigned i = 0; i < 120; ++i) {
            Vid vid = lo + static_cast<Vid>(rng.range(window));
            Addr a = addrs[rng.range(addrs.size())];
            bool store = rng.chance(0.4) && vid >= maxAccessor[a];
            if (store) {
                ops.push_back({Op::Store, CoreId(vid % 4), a,
                               rng.next() & 0xffff, vid});
            } else {
                ops.push_back({Op::Load, CoreId(vid % 4), a, 0, vid});
            }
            maxAccessor[a] = std::max(maxAccessor[a], vid);
        }
        for (unsigned k = 0; k < window; ++k)
            ops.push_back({Op::Commit, 0, 0, 0, next++});
    }
    return ops;
}

/** Replays the trace; returns every load value plus the final image. */
std::vector<std::uint64_t>
replay(CacheSystem& sys, const std::vector<Op>& ops,
       const std::vector<Addr>& addrs)
{
    std::vector<std::uint64_t> obs;
    for (const Op& op : ops) {
        switch (op.kind) {
          case Op::Load: {
              AccessResult r = sys.load(op.core, op.addr, 8, op.vid);
              EXPECT_FALSE(r.aborted);
              obs.push_back(r.value);
              break;
          }
          case Op::Store: {
              AccessResult r =
                  sys.store(op.core, op.addr, op.value, 8, op.vid);
              EXPECT_FALSE(r.aborted);
              break;
          }
          case Op::Commit:
            sys.commit(op.vid);
            break;
        }
    }
    sys.flushDirtyToMemory();
    for (Addr a : addrs)
        obs.push_back(sys.memory().read(a, 8));
    return obs;
}

/** Parameterized over (trace seed, interconnect fabric): the §5.3
 *  equivalence must hold regardless of what carries the traffic. */
class LazyEagerEquivalence
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, Fabric>>
{};

TEST_P(LazyEagerEquivalence, SameObservationsBothSchemes)
{
    const std::uint64_t seed = std::get<0>(GetParam());
    const Fabric fabric = std::get<1>(GetParam());
    const bool tiny = (seed % 2) == 0;
    std::vector<Op> ops = makeTrace(seed);
    std::vector<Addr> addrs;
    for (unsigned i = 0; i < 16; ++i)
        addrs.push_back(0x40000 + i * 64);

    EventQueue eqL, eqE;
    CacheSystem lazy(eqL, config(true, tiny, fabric));
    CacheSystem eager(eqE, config(false, tiny, fabric));
    auto a = replay(lazy, ops, addrs);
    auto b = replay(eager, ops, addrs);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i)
        EXPECT_EQ(a[i], b[i]) << "observation " << i;
    lazy.checkInvariants();
    eager.checkInvariants();
}

TEST_P(LazyEagerEquivalence, AbortRollbackIdenticalBothSchemes)
{
    const std::uint64_t seed = std::get<0>(GetParam()) * 31 + 7;
    const Fabric fabric = std::get<1>(GetParam());
    Rng rng(seed);

    for (bool lazyMode : {true, false}) {
        EventQueue eq;
        CacheSystem sys(eq, config(lazyMode, false, fabric));
        for (unsigned i = 0; i < 8; ++i)
            sys.memory().write(0x50000 + i * 64, 100 + i, 8);
        // Commit one transaction, leave two live, then abort.
        sys.store(0, 0x50000, 1, 8, 1);
        sys.commit(1);
        sys.store(1, 0x50040, 2, 8, 2);
        sys.load(2, 0x50080, 8, 3);
        sys.abortAll();
        sys.flushDirtyToMemory();
        EXPECT_EQ(sys.memory().read(0x50000, 8), 1u) << lazyMode;
        EXPECT_EQ(sys.memory().read(0x50040, 8), 101u) << lazyMode;
    }
}

TEST(LazyEager, EagerChargesPerLineCost)
{
    // The eager-commit cost dominates under either fabric.
    for (Fabric fabric : {Fabric::SnoopBus, Fabric::Directory}) {
        EventQueue eq;
        CacheSystem eager(eq, config(false, false, fabric));
        for (unsigned i = 0; i < 32; ++i)
            eager.store(0, 0x60000 + i * 64, i, 8, 1);
        Cycles c = eager.commit(1);
        // 32 speculative lines at eagerPerLineCycles each, plus the
        // interconnect broadcast.
        EXPECT_GE(c, 32 * eager.config().eagerPerLineCycles);

        EventQueue eq2;
        CacheSystem lazy(eq2, config(true, false, fabric));
        for (unsigned i = 0; i < 32; ++i)
            lazy.store(0, 0x60000 + i * 64, i, 8, 1);
        EXPECT_LT(lazy.commit(1), c);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Seeds, LazyEagerEquivalence,
    ::testing::Combine(::testing::Range<std::uint64_t>(1, 9),
                       ::testing::Values(Fabric::SnoopBus,
                                         Fabric::Directory)));

} // namespace
} // namespace hmtx::sim
