/**
 * @file
 * Tests of the directory coherence fabric (§8 future work): identical
 * protocol semantics to the snoopy bus, bank-level concurrency
 * instead of global serialization.
 */

#include <gtest/gtest.h>

#include "runtime/executors.hh"
#include "sim/cache_system.hh"
#include "sim/event_queue.hh"
#include "workloads/linked_list.hh"

namespace hmtx::sim
{
namespace
{

MachineConfig
fabricConfig(Fabric f, unsigned cores = 4)
{
    MachineConfig cfg;
    cfg.fabric = f;
    cfg.numCores = cores;
    cfg.l2SizeKB = 512;
    return cfg;
}

TEST(DirectoryFabric, SameProtocolSemantics)
{
    // The §4.3 dependence cases behave identically on both fabrics.
    for (Fabric f : {Fabric::SnoopBus, Fabric::Directory}) {
        EventQueue eq;
        CacheSystem sys(eq, fabricConfig(f));
        sys.memory().write(0x100, 7, 8);
        sys.store(0, 0x100, 42, 8, 1);
        EXPECT_EQ(sys.load(1, 0x100, 8, 2).value, 42u); // forwarding
        EXPECT_EQ(sys.load(2, 0x100, 8, 0).value, 7u);  // committed
        EXPECT_TRUE(sys.store(3, 0x100, 9, 8, 1).aborted)
            << "flow violation must abort on both fabrics";
    }
}

TEST(DirectoryFabric, IndependentLinesDoNotSerialize)
{
    // Back-to-back misses to different banks: with the snoopy bus the
    // second waits for the first's bus slot; with the directory the
    // bank occupancies are independent.
    EventQueue eqS, eqD;
    CacheSystem snoop(eqS, fabricConfig(Fabric::SnoopBus));
    CacheSystem dir(eqD, fabricConfig(Fabric::Directory));

    // Saturate the snoopy bus with many same-tick transactions.
    Cycles snoopLast = 0, dirLast = 0;
    for (unsigned i = 0; i < 16; ++i) {
        snoopLast = snoop.load(i % 4, 0x4000 + i * 64, 8, 0).latency;
        dirLast = dir.load(i % 4, 0x4000 + i * 64, 8, 0).latency;
    }
    // All 16 at tick 0: the 16th snoop transaction queued behind 15
    // bus slots; the directory spread them over 8 banks.
    EXPECT_GT(snoopLast, dirLast);
}

TEST(DirectoryFabric, SameBankStillSerializes)
{
    EventQueue eq;
    MachineConfig cfg = fabricConfig(Fabric::Directory);
    cfg.dirBanks = 1; // worst case: everything in one bank
    CacheSystem one(eq, cfg);
    EventQueue eq8;
    CacheSystem eight(eq8, fabricConfig(Fabric::Directory));

    Cycles oneLast = 0, eightLast = 0;
    for (unsigned i = 0; i < 16; ++i) {
        oneLast = one.load(i % 4, 0x8000 + i * 64, 8, 0).latency;
        eightLast = eight.load(i % 4, 0x8000 + i * 64, 8, 0).latency;
    }
    EXPECT_GT(oneLast, eightLast);
}

TEST(DirectoryFabric, WorkloadResultsIdenticalAcrossFabrics)
{
    workloads::LinkedListWorkload::Params p;
    p.nodes = 100;
    p.workRounds = 24;

    workloads::LinkedListWorkload a(p), b(p);
    runtime::ExecResult rs = runtime::Runner::runHmtx(
        a, fabricConfig(Fabric::SnoopBus));
    runtime::ExecResult rd = runtime::Runner::runHmtx(
        b, fabricConfig(Fabric::Directory));
    EXPECT_EQ(rs.checksum, rd.checksum);
    EXPECT_EQ(rd.stats.aborts, 0u);
    EXPECT_GT(rd.stats.dirLookups, 0u);
    EXPECT_EQ(rs.stats.dirLookups, 0u);
}

TEST(DirectoryFabric, EightCoresScaleOnDirectory)
{
    workloads::LinkedListWorkload::Params p;
    p.nodes = 160;
    p.workRounds = 320;

    workloads::LinkedListWorkload seqWl(p);
    runtime::ExecResult seq = runtime::Runner::runSequential(
        seqWl, fabricConfig(Fabric::Directory, 8));

    workloads::LinkedListWorkload par(p);
    runtime::ExecResult r8 = runtime::Runner::runHmtx(
        par, fabricConfig(Fabric::Directory, 8));
    EXPECT_EQ(r8.checksum, seq.checksum);
    EXPECT_EQ(r8.stats.aborts, 0u);
    // 7 stage-2 workers: clearly beyond what 4 cores could reach.
    EXPECT_GT(static_cast<double>(seq.cycles) /
                  static_cast<double>(r8.cycles),
              2.5);
}

} // namespace
} // namespace hmtx::sim
