/**
 * @file
 * Configuration-matrix property: across every combination of
 * coherence fabric, commit scheme, VID width and spec-set bounding,
 * parallel execution preserves the sequential semantics. This guards
 * the feature interactions that no single-feature test covers.
 */

#include <gtest/gtest.h>

#include <tuple>

#include "runtime/executors.hh"
#include "workloads/gzip.hh"
#include "workloads/linked_list.hh"

namespace hmtx::workloads
{
namespace
{

using Combo = std::tuple<sim::Fabric, bool /*lazy*/, unsigned /*vid*/,
                         bool /*unbounded*/>;

class ConfigMatrix : public ::testing::TestWithParam<Combo>
{
  protected:
    static sim::MachineConfig
    make(const Combo& c)
    {
        sim::MachineConfig cfg;
        cfg.l2SizeKB = 512;
        cfg.fabric = std::get<0>(c);
        cfg.txMode = std::get<1>(c) ? TxMode::LazyHmtx
                                    : TxMode::EagerHmtx;
        cfg.vidBits = std::get<2>(c);
        cfg.unboundedSpecSets = std::get<3>(c);
        return cfg;
    }
};

TEST_P(ConfigMatrix, LinkedListPreservesSemantics)
{
    sim::MachineConfig cfg = make(GetParam());

    LinkedListWorkload::Params p;
    p.nodes = 90;
    p.workRounds = 20;
    LinkedListWorkload seq(p), par(p);
    runtime::ExecResult rs = runtime::Runner::runSequential(seq, cfg);
    runtime::ExecResult rp = runtime::Runner::runHmtx(par, cfg);
    EXPECT_EQ(rp.checksum, rs.checksum);
    EXPECT_EQ(rp.transactions, p.nodes);
}

TEST_P(ConfigMatrix, GzipPreservesSemantics)
{
    sim::MachineConfig cfg = make(GetParam());

    GzipWorkload::Params p;
    p.blocks = 10;
    p.wordsPerBlock = 160;
    GzipWorkload seq(p), par(p);
    runtime::ExecResult rs = runtime::Runner::runSequential(seq, cfg);
    runtime::ExecResult rp = runtime::Runner::runHmtx(par, cfg);
    EXPECT_EQ(rp.checksum, rs.checksum);
}

INSTANTIATE_TEST_SUITE_P(
    AllCombos, ConfigMatrix,
    ::testing::Combine(
        ::testing::Values(sim::Fabric::SnoopBus,
                          sim::Fabric::Directory),
        ::testing::Bool(),                  // lazy / eager commit
        ::testing::Values(4u, 6u),          // VID width
        ::testing::Bool()),                 // bounded / unbounded
    [](const ::testing::TestParamInfo<Combo>& info) {
        // (no structured bindings: commas in [] are unprotected
        // inside the INSTANTIATE macro)
        std::string n;
        n += std::get<0>(info.param) == sim::Fabric::SnoopBus
            ? "snoop"
            : "dir";
        n += std::get<1>(info.param) ? "_lazy" : "_eager";
        n += "_m" + std::to_string(std::get<2>(info.param));
        n += std::get<3>(info.param) ? "_unbounded" : "_bounded";
        return n;
    });

} // namespace
} // namespace hmtx::workloads
