/**
 * @file
 * Tests of the workload framework helpers: IterSlots, IterRegion and
 * the chased work list.
 */

#include <gtest/gtest.h>

#include "runtime/executors.hh"
#include "workloads/common.hh"
#include "workloads/worklist.hh"

namespace hmtx::workloads
{
namespace
{

sim::MachineConfig
cfg()
{
    sim::MachineConfig c;
    c.l2SizeKB = 256;
    return c;
}

TEST(IterSlots, SlotsAreLineDisjoint)
{
    runtime::Machine m(cfg());
    IterSlots s;
    s.init(m);
    for (std::uint64_t i = 0; i + 1 < IterSlots::kSlots; ++i) {
        EXPECT_NE(lineAddr(s.slot(i)), lineAddr(s.slot(i + 1)));
    }
    // Reuse after the window wraps.
    EXPECT_EQ(s.slot(0), s.slot(IterSlots::kSlots));
}

TEST(IterRegion, ChunksAreLineDisjointAndLineAligned)
{
    runtime::Machine m(cfg());
    IterRegion r;
    r.init(m, 10, 5); // 5 words = 40 bytes, rounds to one line
    for (unsigned i = 0; i < 10; ++i) {
        EXPECT_EQ(lineOffset(r.at(i)), 0u);
        if (i > 0)
            EXPECT_NE(lineAddr(r.at(i)), lineAddr(r.at(i - 1)));
    }
    // Words within a chunk stay inside its lines.
    EXPECT_EQ(r.at(3, 4), r.at(3) + 32);
}

TEST(IterRegion, MultiLineChunks)
{
    runtime::Machine m(cfg());
    IterRegion r;
    r.init(m, 4, 20); // 160 bytes -> 3 lines per chunk
    EXPECT_EQ(r.at(1) - r.at(0), 3 * kLineBytes);
    EXPECT_EQ(lineOffset(r.at(2)), 0u);
}

TEST(Mix64, DeterministicAndDispersing)
{
    EXPECT_EQ(mix64(42), mix64(42));
    EXPECT_NE(mix64(42), mix64(43));
    // Single-bit input changes flip about half the output bits.
    int bits = __builtin_popcountll(mix64(1) ^ mix64(3));
    EXPECT_GT(bits, 16);
    EXPECT_LT(bits, 48);
}

/** Minimal chased-list workload for exercising the base class. */
class TinyChase : public ChasedListWorkload
{
  public:
    std::string name() const override { return "tiny"; }
    std::uint64_t iterations() const override { return 20; }

    void
    setup(runtime::Machine& m) override
    {
        std::vector<std::uint64_t> payloads(20);
        for (unsigned i = 0; i < 20; ++i)
            payloads[i] = 1000 + i;
        initWorkList(m, payloads);
        out_.init(m, 20, 1);
    }

    sim::Task<void>
    stage2(runtime::MemIf& mem, std::uint64_t iter) override
    {
        std::uint64_t payload = co_await fetchWork(mem, iter);
        co_await mem.store(out_.at(iter), payload * 3);
    }

    std::uint64_t
    checksum(runtime::Machine& m) override
    {
        std::uint64_t s = 0;
        for (unsigned i = 0; i < 20; ++i)
            s = mix64(s ^ m.sys().memory().read(out_.at(i), 8));
        return s;
    }

  private:
    IterRegion out_;
};

TEST(ChasedList, PayloadsFlowThroughVersionedSlots)
{
    TinyChase seq, par;
    runtime::ExecResult rs = runtime::Runner::runSequential(seq, cfg());
    runtime::ExecResult rp = runtime::Runner::runPipeline(par, cfg(), 3);
    EXPECT_EQ(rp.checksum, rs.checksum);
    EXPECT_EQ(rp.stats.aborts, 0u);
}

TEST(ChasedList, DoallWorkersShareTheCursorSafely)
{
    // Regression for the (cursor_, nextIter_) pair-consistency race:
    // concurrent DOALL workers must each chase their own node.
    TinyChase seq, par;
    runtime::ExecResult rs = runtime::Runner::runSequential(seq, cfg());
    runtime::ExecResult rp = runtime::Runner::runDoall(par, cfg(), 4);
    EXPECT_EQ(rp.checksum, rs.checksum);
}

} // namespace
} // namespace hmtx::workloads
