/**
 * @file
 * Deterministic smoke tests for the KV/OLTP serving engine
 * (src/workloads/kv_serve.hh): streaming-percentile exactness against
 * a full sort recompute, oracle + accounting invariants across commit
 * modes, and the O(1)-memory discipline of the request path.
 */

#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "sim/config.hh"
#include "sim/stats.hh"
#include "workloads/kv_serve.hh"

namespace
{

using namespace hmtx;
using workloads::KvServeParams;
using workloads::KvServeResult;
using workloads::runKvServe;

/** The bench's serving geometry (bench/ext_kv_serving.cc): a tiny
 *  hierarchy so the strided scans genuinely overflow it. */
sim::MachineConfig
smokeConfig(TxMode mode)
{
    sim::MachineConfig cfg;
    cfg.numCores = 4;
    cfg.l1SizeKB = 1;
    cfg.l1Assoc = 2;
    cfg.l2SizeKB = 8;
    cfg.l2Assoc = 8;
    cfg.vidBits = 8;
    cfg.txMode = mode;
    if (mode == TxMode::BestEffort) {
        cfg.btxMaxRetries = 2;
        cfg.btxAbortThreshold = 8;
        cfg.unboundedSpecSets = false;
    } else if (mode == TxMode::LimitedSet) {
        cfg.limitedSetK = 4;
        cfg.unboundedSpecSets = false;
    } else {
        cfg.unboundedSpecSets = true;
    }
    cfg.validate();
    return cfg;
}

KvServeParams
smokeParams(std::uint64_t requests)
{
    KvServeParams p;
    p.requests = requests;
    p.tableBuckets = 2048;
    p.keys = 8192;
    p.zipfTheta = 0.9;
    p.writeRatio = 0.5;
    p.transferShare = 0.15;
    p.scanShare = 0.05;
    p.arrivalMeanGap = 1500;
    p.burstDuty = 1.0;
    p.seed = 7;
    return p;
}

/** consistent() plus the oracle verdict, with a readable message. */
void
expectClean(const KvServeResult& r, const char* what)
{
    EXPECT_TRUE(r.oracleOk)
        << what << ": final table diverged from the oracle";
    EXPECT_TRUE(r.serve.consistent())
        << what << ": issued " << r.serve.issued << " != committed "
        << r.serve.committed << " + aborted " << r.serve.aborted;
}

// The streaming histogram must agree with a full sort of the same
// samples at every reported percentile: nearest-rank, quantized to
// the sample's bucket floor (sim::LatencyHistogram::bucketFloor).
TEST(KvServe, StreamingPercentilesMatchSortRecompute)
{
    KvServeParams p = smokeParams(4000);
    p.recordLatencies = true;
    const KvServeResult r =
        runKvServe(smokeConfig(TxMode::LazyHmtx), p);
    expectClean(r, "lazy recorded");

    std::vector<std::uint64_t> lat = r.recordedLatencies;
    ASSERT_EQ(lat.size(), p.requests);
    ASSERT_EQ(r.serve.latency.count(), p.requests);
    std::sort(lat.begin(), lat.end());

    for (const double q : {0.5, 0.99, 0.999}) {
        auto rank = static_cast<std::uint64_t>(
            q * static_cast<double>(lat.size()));
        if (static_cast<double>(rank) <
            q * static_cast<double>(lat.size()))
            ++rank; // ceil
        if (rank == 0)
            rank = 1;
        const std::uint64_t exact = lat[rank - 1];
        EXPECT_EQ(r.serve.latency.percentile(q),
                  sim::LatencyHistogram::bucketFloor(exact))
            << "q=" << q;
    }
    EXPECT_EQ(r.serve.latency.max(), lat.back());
    EXPECT_EQ(r.serve.latency.min(), lat.front());
}

// Oracle + accounting across the commit-mode axis, including both
// bounded machines actually exercising their bounds on this workload:
// best-effort must capacity-abort into the fallback lock (scans
// overflow the hierarchy) and limited-set must route over-K scans
// onto the non-speculative path.
TEST(KvServe, OracleAndAccountingAcrossModes)
{
    const KvServeResult lazy =
        runKvServe(smokeConfig(TxMode::LazyHmtx), smokeParams(3000));
    expectClean(lazy, "lazy");
    EXPECT_EQ(lazy.serve.requests, 3000u);
    EXPECT_EQ(lazy.serve.committed, 3000u);
    EXPECT_GT(lazy.sys.specSpills, 0u)
        << "unbounded HMTX should absorb scan overflow by spilling";

    const KvServeResult btx =
        runKvServe(smokeConfig(TxMode::BestEffort), smokeParams(3000));
    expectClean(btx, "best-effort");
    EXPECT_EQ(btx.serve.committed, 3000u);
    EXPECT_GT(btx.sys.capacityAborts, 0u);
    EXPECT_GT(btx.tx.fallbackEntries, 0u);
    EXPECT_GT(btx.serve.lockRestarts, 0u)
        << "mid-body lock engagement must restart the body (a "
           "speculative prefix under the lock is flushable and its "
           "stores would be silently lost)";

    const KvServeResult ltd =
        runKvServe(smokeConfig(TxMode::LimitedSet), smokeParams(3000));
    expectClean(ltd, "limited-set");
    EXPECT_EQ(ltd.serve.committed, 3000u);
    EXPECT_GT(ltd.serve.nonSpecFallbacks, 0u)
        << "scans exceed K=4 and must take the non-speculative path";
}

// Identical (config, params) pairs must be bit-identical: the engine
// is deterministic, which is what makes the committed BENCH JSON and
// the CI gate reproducible.
TEST(KvServe, Deterministic)
{
    const KvServeResult a =
        runKvServe(smokeConfig(TxMode::BestEffort), smokeParams(2000));
    const KvServeResult b =
        runKvServe(smokeConfig(TxMode::BestEffort), smokeParams(2000));
    EXPECT_EQ(a.makespan, b.makespan);
    EXPECT_EQ(a.serve.issued, b.serve.issued);
    EXPECT_EQ(a.serve.aborted, b.serve.aborted);
    EXPECT_EQ(a.serve.latency.percentile(0.999),
              b.serve.latency.percentile(0.999));
}

// The streaming request path keeps no per-request state: the per-core
// scratch high-water mark must not move with the request count, and
// no latency samples may be retained unless explicitly recorded.
TEST(KvServe, StreamingMemoryIndependentOfRunLength)
{
    const KvServeResult small =
        runKvServe(smokeConfig(TxMode::LazyHmtx), smokeParams(2000));
    const KvServeResult large =
        runKvServe(smokeConfig(TxMode::LazyHmtx), smokeParams(6000));
    expectClean(small, "2k streaming");
    expectClean(large, "6k streaming");
    EXPECT_GT(small.scratchHighWater, 0u);
    EXPECT_EQ(small.scratchHighWater, large.scratchHighWater)
        << "request-path memory must be independent of run length";
    EXPECT_TRUE(small.recordedLatencies.empty());
    EXPECT_TRUE(large.recordedLatencies.empty());
}

} // namespace
