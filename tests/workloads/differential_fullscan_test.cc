/**
 * @file
 * Differential testing of the acceleration indexes: every run is
 * executed twice — once with the presence filter + registry serving
 * lookups (the default) and once with MachineConfig::forceFullScan,
 * which answers every snoop and bulk walk from a full cache scan.
 * The two modes must be observably identical: same per-access
 * results, same architectural statistics (SysStats operator==), same
 * memory images, same abort generations and commit watermarks. The
 * indexed runs also enable indexCrossCheck, so every bulk operation
 * re-verifies the indexes against a scan as the stream runs.
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <random>

#include "runtime/executors.hh"
#include "sim/cache_system.hh"
#include "sim/event_queue.hh"
#include "workloads/stress.hh"

namespace hmtx
{
namespace
{

/** Full memory image as an ordered map for direct comparison. */
std::map<Addr, sim::LineData>
memImage(sim::CacheSystem& sys)
{
    std::map<Addr, sim::LineData> img;
    sys.memory().forEachLine(
        [&](Addr a, const sim::LineData& d) { img[a] = d; });
    return img;
}

/**
 * Drives an identical randomized protocol stream into both systems,
 * comparing every AccessResult as it goes. The stream stays legal by
 * construction: commits are consecutive, vidReset only runs when all
 * VIDs used since the last reset have committed or aborted.
 */
void
runDifferential(sim::CacheSystem& a, sim::CacheSystem& b,
                std::uint64_t seed, unsigned ops)
{
    std::mt19937_64 rng(seed);
    auto rnd = [&](std::uint64_t n) { return rng() % n; };

    const Vid maxVid = 48; // stay clear of the wrap guard
    bool outstanding = false;

    for (unsigned i = 0; i < ops; ++i) {
        ASSERT_EQ(a.lcVid(), b.lcVid()) << "op " << i;
        const Vid lc = a.lcVid();
        const unsigned kind = rnd(100);
        const CoreId core = CoreId(rnd(4));
        const Addr addr = 0x1000 + rnd(96) * 64 + rnd(8) * 8;

        if (kind < 40) { // speculative access in the open window
            const Vid vid = Vid(lc + 1 + rnd(4));
            if (vid > maxVid)
                continue;
            outstanding = true;
            sim::AccessResult ra, rb;
            if (rnd(2)) {
                ra = a.load(core, addr, 8, vid);
                rb = b.load(core, addr, 8, vid);
            } else {
                const std::uint64_t v = rng();
                ra = a.store(core, addr, v, 8, vid);
                rb = b.store(core, addr, v, 8, vid);
            }
            ASSERT_EQ(ra.value, rb.value) << "op " << i;
            ASSERT_EQ(ra.latency, rb.latency) << "op " << i;
            ASSERT_EQ(ra.aborted, rb.aborted) << "op " << i;
            ASSERT_EQ(ra.l1Hit, rb.l1Hit) << "op " << i;
            ASSERT_EQ(ra.needSla, rb.needSla) << "op " << i;
        } else if (kind < 70) { // non-speculative access
            sim::AccessResult ra, rb;
            if (rnd(2)) {
                ra = a.load(core, addr, 8, 0);
                rb = b.load(core, addr, 8, 0);
            } else {
                const std::uint64_t v = rng();
                ra = a.store(core, addr, v, 8, 0);
                rb = b.store(core, addr, v, 8, 0);
            }
            ASSERT_EQ(ra.value, rb.value) << "op " << i;
            ASSERT_EQ(ra.latency, rb.latency) << "op " << i;
            ASSERT_EQ(ra.aborted, rb.aborted) << "op " << i;
        } else if (kind < 85) { // commit the next VID
            if (lc + 1 > maxVid)
                continue;
            ASSERT_EQ(a.commit(Vid(lc + 1)), b.commit(Vid(lc + 1)))
                << "op " << i;
        } else if (kind < 92) { // global abort
            ASSERT_EQ(a.abortAll(), b.abortAll()) << "op " << i;
            outstanding = false;
        } else { // drain the window and reset
            if (outstanding)
                continue; // uncommitted spec VIDs may be live
            if (a.lcVid() != 0) {
                ASSERT_EQ(a.vidReset(), b.vidReset()) << "op " << i;
            }
        }
        // A committed-past-the-window stream ends the round early.
        if (a.lcVid() >= maxVid) {
            a.abortAll();
            b.abortAll();
            a.vidReset();
            b.vidReset();
            outstanding = false;
        }
        ASSERT_EQ(a.abortGen(), b.abortGen()) << "op " << i;
    }

    a.abortAll();
    b.abortAll();
    a.flushDirtyToMemory();
    b.flushDirtyToMemory();

    EXPECT_TRUE(a.stats() == b.stats());
    EXPECT_EQ(a.lcVid(), b.lcVid());
    EXPECT_EQ(a.abortGen(), b.abortGen());
    EXPECT_EQ(memImage(a), memImage(b));
    a.checkInvariants();
    b.checkInvariants();
}

class Differential : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(Differential, RandomStreamMatchesFullScan)
{
    sim::MachineConfig idx;
    idx.l2SizeKB = 256;
    idx.indexCrossCheck = true;
    sim::MachineConfig full = idx;
    full.indexCrossCheck = false;
    full.forceFullScan = true;

    sim::EventQueue eqa, eqb;
    sim::CacheSystem a(eqa, idx);
    sim::CacheSystem b(eqb, full);
    runDifferential(a, b, GetParam(), 3000);
}

TEST_P(Differential, RandomStreamMatchesFullScanUnboundedSets)
{
    // Tiny caches + unbounded speculative sets: spills and refills
    // through the overflow table join the differential surface.
    sim::MachineConfig idx;
    idx.l1SizeKB = 4;
    idx.l1Assoc = 2;
    idx.l2SizeKB = 32;
    idx.l2Assoc = 4;
    idx.unboundedSpecSets = true;
    idx.indexCrossCheck = true;
    sim::MachineConfig full = idx;
    full.indexCrossCheck = false;
    full.forceFullScan = true;

    sim::EventQueue eqa, eqb;
    sim::CacheSystem a(eqa, idx);
    sim::CacheSystem b(eqb, full);
    runDifferential(a, b, GetParam() * 31 + 7, 1500);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Differential,
                         ::testing::Range<std::uint64_t>(1, 5));

TEST(DifferentialRunner, StressPipelineMatchesFullScan)
{
    // Whole-stack differential: the chaos workload end to end, with
    // injected dependence violations, under both modes.
    workloads::StressWorkload::Params p;
    p.iterations = 48;
    p.scratchWords = 32;
    p.conflictRate = 0.15;
    p.seed = 11;

    sim::MachineConfig base;
    base.l2SizeKB = 512;
    sim::MachineConfig full = base;
    full.forceFullScan = true;

    workloads::StressWorkload w1(p), w2(p);
    runtime::ExecResult ri = runtime::Runner::runPipeline(w1, base, 3);
    runtime::ExecResult rf = runtime::Runner::runPipeline(w2, full, 3);

    EXPECT_EQ(ri.checksum, rf.checksum);
    EXPECT_EQ(ri.cycles, rf.cycles);
    EXPECT_EQ(ri.instructions, rf.instructions);
    EXPECT_EQ(ri.transactions, rf.transactions);
    EXPECT_TRUE(ri.stats == rf.stats);
}

TEST(DifferentialRunner, StressDoallMatchesFullScan)
{
    workloads::StressWorkload::Params p;
    p.iterations = 40;
    p.scratchWords = 24;
    p.conflictRate = 0.2;
    p.seed = 5;

    sim::MachineConfig base;
    base.l2SizeKB = 512;
    sim::MachineConfig full = base;
    full.forceFullScan = true;

    workloads::StressWorkload w1(p), w2(p);
    runtime::ExecResult ri = runtime::Runner::runDoall(w1, base, 4);
    runtime::ExecResult rf = runtime::Runner::runDoall(w2, full, 4);

    EXPECT_EQ(ri.checksum, rf.checksum);
    EXPECT_EQ(ri.cycles, rf.cycles);
    EXPECT_TRUE(ri.stats == rf.stats);
}

} // namespace
} // namespace hmtx
