/**
 * @file
 * Chaos testing: randomized transient dependence violations at
 * varying rates, across execution models and configurations. Every
 * violation must be detected and replayed, and the final state must
 * always equal the sequential run's.
 *
 * Note: the injected violating stores are fire-once side effects
 * outside the checksummed output, so the sequential reference runs a
 * separate conflict-free instance.
 */

#include <gtest/gtest.h>

#include "runtime/executors.hh"
#include "workloads/stress.hh"

namespace hmtx::workloads
{
namespace
{

sim::MachineConfig
cfg()
{
    sim::MachineConfig c;
    c.l2SizeKB = 512;
    return c;
}

StressWorkload::Params
params(double conflictRate, std::uint64_t seed)
{
    StressWorkload::Params p;
    p.iterations = 48;
    p.scratchWords = 32;
    p.conflictRate = conflictRate;
    p.seed = seed;
    return p;
}

class Chaos : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(Chaos, PipelineSurvivesInjectedViolations)
{
    const std::uint64_t seed = GetParam();
    StressWorkload seq(params(0.0, seed));
    runtime::ExecResult rs = runtime::Runner::runSequential(seq, cfg());

    for (double rate : {0.05, 0.15, 0.30}) {
        StressWorkload par(params(rate, seed));
        runtime::ExecResult rp =
            runtime::Runner::runPipeline(par, cfg(), 3);
        EXPECT_EQ(rp.checksum, rs.checksum)
            << "rate " << rate << " seed " << seed;
        EXPECT_EQ(rp.transactions, 48u);
        if (par.conflictsInjected() > 0)
            EXPECT_GE(rp.stats.aborts, 1u) << rate;
    }
}

TEST_P(Chaos, DoallSurvivesInjectedViolations)
{
    const std::uint64_t seed = GetParam() * 13 + 1;
    StressWorkload seq(params(0.0, seed));
    runtime::ExecResult rs = runtime::Runner::runSequential(seq, cfg());

    StressWorkload par(params(0.2, seed));
    runtime::ExecResult rp = runtime::Runner::runDoall(par, cfg(), 4);
    EXPECT_EQ(rp.checksum, rs.checksum);
}

TEST_P(Chaos, UnboundedSetsSurviveViolationsOnTinyCaches)
{
    const std::uint64_t seed = GetParam() * 7 + 3;
    StressWorkload seq(params(0.0, seed));
    runtime::ExecResult rs = runtime::Runner::runSequential(seq, cfg());

    sim::MachineConfig tiny;
    tiny.l1SizeKB = 4;
    tiny.l1Assoc = 2;
    tiny.l2SizeKB = 32;
    tiny.l2Assoc = 4;
    tiny.unboundedSpecSets = true;
    tiny.maxRecoveries = 2000;
    StressWorkload par(params(0.15, seed));
    runtime::ExecResult rp =
        runtime::Runner::runPipeline(par, tiny, 3);
    EXPECT_EQ(rp.checksum, rs.checksum);
    EXPECT_EQ(rp.stats.capacityAborts, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Chaos,
                         ::testing::Range<std::uint64_t>(1, 6));

} // namespace
} // namespace hmtx::workloads
