/**
 * @file
 * Checks that the benchmark proxies reproduce the *character* the
 * paper reports for each program (Table 1 and Figure 9): relative
 * per-TX access counts, read/write set orderings, branch behaviour
 * and paradigms.
 */

#include <gtest/gtest.h>

#include <map>

#include "runtime/executors.hh"
#include "workloads/all.hh"

namespace hmtx::workloads
{
namespace
{

std::map<std::string, runtime::ExecResult>&
results()
{
    // Run each benchmark once under HMTX and cache the results for
    // all character checks.
    static std::map<std::string, runtime::ExecResult> r = [] {
        std::map<std::string, runtime::ExecResult> m;
        sim::MachineConfig cfg;
        for (auto& wl : makeSuite())
            m[wl->name()] = runtime::Runner::runHmtx(*wl, cfg);
        return m;
    }();
    return r;
}

double
accessesPerTx(const runtime::ExecResult& r)
{
    return r.transactions == 0 ? 0.0
        : static_cast<double>(r.stats.specLoads +
                              r.stats.specStores) /
            static_cast<double>(r.transactions);
}

TEST(Character, PerTxAccessCountOrderingMatchesTable1)
{
    auto& r = results();
    // Table 1 ordering (scaled ~1000x down): ispell < hmmer < alvinn
    // < crafty < gzip < parser < bzip2, with li also far above
    // parser (li and bzip2 are the two giants, 182M and 131M).
    EXPECT_LT(accessesPerTx(r["ispell"]),
              accessesPerTx(r["456.hmmer"]));
    EXPECT_LT(accessesPerTx(r["456.hmmer"]),
              accessesPerTx(r["052.alvinn"]));
    EXPECT_LT(accessesPerTx(r["052.alvinn"]),
              accessesPerTx(r["186.crafty"]));
    EXPECT_LT(accessesPerTx(r["186.crafty"]),
              accessesPerTx(r["164.gzip"]));
    EXPECT_LT(accessesPerTx(r["164.gzip"]),
              accessesPerTx(r["197.parser"]));
    EXPECT_LT(accessesPerTx(r["197.parser"]),
              accessesPerTx(r["256.bzip2"]));
    EXPECT_LT(accessesPerTx(r["197.parser"]),
              accessesPerTx(r["130.li"]));
}

TEST(Character, Bzip2HasTheLargestCombinedSets)
{
    // Figure 9: 256.bzip2 has by far the largest average combined
    // read/write set; ispell the smallest.
    auto& r = results();
    double bz = r["256.bzip2"].stats.avgCombinedSetKB();
    for (auto& [name, res] : r) {
        if (name == "256.bzip2")
            continue;
        EXPECT_LE(res.stats.avgCombinedSetKB(), bz) << name;
    }
    for (auto& [name, res] : r) {
        if (name == "ispell")
            continue;
        EXPECT_GE(res.stats.avgCombinedSetKB(),
                  r["ispell"].stats.avgCombinedSetKB())
            << name;
    }
}

TEST(Character, CraftyHasTheWorstBranchPrediction)
{
    // Table 1: 186.crafty's hot loop mispredicts most (5.59%);
    // 052.alvinn's regular loops mispredict least (0.245%).
    auto& r = results();
    for (auto& [name, res] : r) {
        if (name == "186.crafty")
            continue;
        EXPECT_LE(res.mispredictRate(),
                  r["186.crafty"].mispredictRate() + 1e-9)
            << name;
    }
    EXPECT_LT(r["052.alvinn"].mispredictRate(), 0.05);
}

TEST(Character, ParadigmsMatchTable1)
{
    for (auto& wl : makeSuite()) {
        if (wl->name() == "052.alvinn")
            EXPECT_EQ(wl->paradigm(), runtime::Paradigm::Doall);
        else
            EXPECT_EQ(wl->paradigm(), runtime::Paradigm::PsDswp)
                << wl->name();
    }
}

TEST(Character, HotLoopFractionsMatchTable1)
{
    std::map<std::string, double> expected = {
        {"052.alvinn", 0.855}, {"130.li", 1.0},
        {"164.gzip", 0.984},   {"186.crafty", 0.995},
        {"197.parser", 1.0},   {"256.bzip2", 0.985},
        {"456.hmmer", 1.0},    {"ispell", 0.865},
    };
    for (auto& wl : makeSuite())
        EXPECT_DOUBLE_EQ(wl->hotLoopFraction(),
                         expected[wl->name()])
            << wl->name();
}

TEST(Character, SmtxComparisonSetMatchesSection61)
{
    EXPECT_TRUE(hasSmtxComparison("130.li"));
    EXPECT_TRUE(hasSmtxComparison("052.alvinn"));
    EXPECT_FALSE(hasSmtxComparison("186.crafty"));
    EXPECT_FALSE(hasSmtxComparison("ispell"));
}

} // namespace
} // namespace hmtx::workloads
